# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/test_accelerator[1]_include.cmake")
include("/root/repo/build/test_adaptive[1]_include.cmake")
include("/root/repo/build/test_baselines[1]_include.cmake")
include("/root/repo/build/test_cycle_model[1]_include.cmake")
include("/root/repo/build/test_dataflow[1]_include.cmake")
include("/root/repo/build/test_detector[1]_include.cmake")
include("/root/repo/build/test_fpga[1]_include.cmake")
include("/root/repo/build/test_integration[1]_include.cmake")
include("/root/repo/build/test_mcache[1]_include.cmake")
include("/root/repo/build/test_models[1]_include.cmake")
include("/root/repo/build/test_nn[1]_include.cmake")
include("/root/repo/build/test_pipeline[1]_include.cmake")
include("/root/repo/build/test_reuse_engines[1]_include.cmake")
include("/root/repo/build/test_rpq[1]_include.cmake")
include("/root/repo/build/test_signature[1]_include.cmake")
include("/root/repo/build/test_tensor[1]_include.cmake")
include("/root/repo/build/test_util[1]_include.cmake")
include("/root/repo/build/test_workloads[1]_include.cmake")
