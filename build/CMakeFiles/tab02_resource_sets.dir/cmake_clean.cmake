file(REMOVE_RECURSE
  "CMakeFiles/tab02_resource_sets.dir/bench/tab02_resource_sets.cpp.o"
  "CMakeFiles/tab02_resource_sets.dir/bench/tab02_resource_sets.cpp.o.d"
  "tab02_resource_sets"
  "tab02_resource_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_resource_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
