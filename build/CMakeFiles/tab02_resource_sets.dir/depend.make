# Empty dependencies file for tab02_resource_sets.
# This may be replaced when dependencies are built.
