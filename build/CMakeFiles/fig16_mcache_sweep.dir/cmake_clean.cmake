file(REMOVE_RECURSE
  "CMakeFiles/fig16_mcache_sweep.dir/bench/fig16_mcache_sweep.cpp.o"
  "CMakeFiles/fig16_mcache_sweep.dir/bench/fig16_mcache_sweep.cpp.o.d"
  "fig16_mcache_sweep"
  "fig16_mcache_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_mcache_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
