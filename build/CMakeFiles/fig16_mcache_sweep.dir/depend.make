# Empty dependencies file for fig16_mcache_sweep.
# This may be replaced when dependencies are built.
