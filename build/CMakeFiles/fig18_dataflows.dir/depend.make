# Empty dependencies file for fig18_dataflows.
# This may be replaced when dependencies are built.
