file(REMOVE_RECURSE
  "CMakeFiles/fig18_dataflows.dir/bench/fig18_dataflows.cpp.o"
  "CMakeFiles/fig18_dataflows.dir/bench/fig18_dataflows.cpp.o.d"
  "fig18_dataflows"
  "fig18_dataflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_dataflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
