file(REMOVE_RECURSE
  "CMakeFiles/fig03_rpq_vs_bloom.dir/bench/fig03_rpq_vs_bloom.cpp.o"
  "CMakeFiles/fig03_rpq_vs_bloom.dir/bench/fig03_rpq_vs_bloom.cpp.o.d"
  "fig03_rpq_vs_bloom"
  "fig03_rpq_vs_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_rpq_vs_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
