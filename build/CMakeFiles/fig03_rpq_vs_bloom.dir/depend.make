# Empty dependencies file for fig03_rpq_vs_bloom.
# This may be replaced when dependencies are built.
