# Empty dependencies file for fig08_signature_pipelining.
# This may be replaced when dependencies are built.
