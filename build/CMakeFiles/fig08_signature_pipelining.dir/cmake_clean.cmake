file(REMOVE_RECURSE
  "CMakeFiles/fig08_signature_pipelining.dir/bench/fig08_signature_pipelining.cpp.o"
  "CMakeFiles/fig08_signature_pipelining.dir/bench/fig08_signature_pipelining.cpp.o.d"
  "fig08_signature_pipelining"
  "fig08_signature_pipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_signature_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
