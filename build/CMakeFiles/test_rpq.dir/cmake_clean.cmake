file(REMOVE_RECURSE
  "CMakeFiles/test_rpq.dir/tests/test_rpq.cpp.o"
  "CMakeFiles/test_rpq.dir/tests/test_rpq.cpp.o.d"
  "test_rpq"
  "test_rpq.pdb"
  "test_rpq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
