# Empty dependencies file for test_rpq.
# This may be replaced when dependencies are built.
