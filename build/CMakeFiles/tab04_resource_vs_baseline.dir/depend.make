# Empty dependencies file for tab04_resource_vs_baseline.
# This may be replaced when dependencies are built.
