file(REMOVE_RECURSE
  "CMakeFiles/tab04_resource_vs_baseline.dir/bench/tab04_resource_vs_baseline.cpp.o"
  "CMakeFiles/tab04_resource_vs_baseline.dir/bench/tab04_resource_vs_baseline.cpp.o.d"
  "tab04_resource_vs_baseline"
  "tab04_resource_vs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_resource_vs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
