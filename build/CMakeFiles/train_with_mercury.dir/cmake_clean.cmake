file(REMOVE_RECURSE
  "CMakeFiles/train_with_mercury.dir/examples/train_with_mercury.cpp.o"
  "CMakeFiles/train_with_mercury.dir/examples/train_with_mercury.cpp.o.d"
  "train_with_mercury"
  "train_with_mercury.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_with_mercury.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
