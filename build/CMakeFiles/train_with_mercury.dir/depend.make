# Empty dependencies file for train_with_mercury.
# This may be replaced when dependencies are built.
