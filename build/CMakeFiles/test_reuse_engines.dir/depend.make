# Empty dependencies file for test_reuse_engines.
# This may be replaced when dependencies are built.
