file(REMOVE_RECURSE
  "CMakeFiles/test_reuse_engines.dir/tests/test_reuse_engines.cpp.o"
  "CMakeFiles/test_reuse_engines.dir/tests/test_reuse_engines.cpp.o.d"
  "test_reuse_engines"
  "test_reuse_engines.pdb"
  "test_reuse_engines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reuse_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
