# Empty dependencies file for fig13_accuracy.
# This may be replaced when dependencies are built.
