file(REMOVE_RECURSE
  "CMakeFiles/fig13_accuracy.dir/bench/fig13_accuracy.cpp.o"
  "CMakeFiles/fig13_accuracy.dir/bench/fig13_accuracy.cpp.o.d"
  "fig13_accuracy"
  "fig13_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
