# Empty dependencies file for fig01_vgg13_similarity.
# This may be replaced when dependencies are built.
