file(REMOVE_RECURSE
  "CMakeFiles/fig01_vgg13_similarity.dir/bench/fig01_vgg13_similarity.cpp.o"
  "CMakeFiles/fig01_vgg13_similarity.dir/bench/fig01_vgg13_similarity.cpp.o.d"
  "fig01_vgg13_similarity"
  "fig01_vgg13_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_vgg13_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
