file(REMOVE_RECURSE
  "CMakeFiles/test_cycle_model.dir/tests/test_cycle_model.cpp.o"
  "CMakeFiles/test_cycle_model.dir/tests/test_cycle_model.cpp.o.d"
  "test_cycle_model"
  "test_cycle_model.pdb"
  "test_cycle_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cycle_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
