# Empty dependencies file for test_cycle_model.
# This may be replaced when dependencies are built.
