# Empty dependencies file for mercury.
# This may be replaced when dependencies are built.
