file(REMOVE_RECURSE
  "libmercury.a"
)
