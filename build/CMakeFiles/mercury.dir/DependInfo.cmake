
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bloom_filter.cpp" "CMakeFiles/mercury.dir/src/baselines/bloom_filter.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/baselines/bloom_filter.cpp.o.d"
  "/root/repo/src/baselines/ucnn.cpp" "CMakeFiles/mercury.dir/src/baselines/ucnn.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/baselines/ucnn.cpp.o.d"
  "/root/repo/src/baselines/unlimited_similarity.cpp" "CMakeFiles/mercury.dir/src/baselines/unlimited_similarity.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/baselines/unlimited_similarity.cpp.o.d"
  "/root/repo/src/baselines/zero_pruning.cpp" "CMakeFiles/mercury.dir/src/baselines/zero_pruning.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/baselines/zero_pruning.cpp.o.d"
  "/root/repo/src/core/adaptive.cpp" "CMakeFiles/mercury.dir/src/core/adaptive.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/core/adaptive.cpp.o.d"
  "/root/repo/src/core/attention_engine.cpp" "CMakeFiles/mercury.dir/src/core/attention_engine.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/core/attention_engine.cpp.o.d"
  "/root/repo/src/core/conv_reuse_engine.cpp" "CMakeFiles/mercury.dir/src/core/conv_reuse_engine.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/core/conv_reuse_engine.cpp.o.d"
  "/root/repo/src/core/fc_engine.cpp" "CMakeFiles/mercury.dir/src/core/fc_engine.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/core/fc_engine.cpp.o.d"
  "/root/repo/src/core/hitmap.cpp" "CMakeFiles/mercury.dir/src/core/hitmap.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/core/hitmap.cpp.o.d"
  "/root/repo/src/core/mcache.cpp" "CMakeFiles/mercury.dir/src/core/mcache.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/core/mcache.cpp.o.d"
  "/root/repo/src/core/mercury_accelerator.cpp" "CMakeFiles/mercury.dir/src/core/mercury_accelerator.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/core/mercury_accelerator.cpp.o.d"
  "/root/repo/src/core/rpq.cpp" "CMakeFiles/mercury.dir/src/core/rpq.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/core/rpq.cpp.o.d"
  "/root/repo/src/core/signature.cpp" "CMakeFiles/mercury.dir/src/core/signature.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/core/signature.cpp.o.d"
  "/root/repo/src/core/signature_table.cpp" "CMakeFiles/mercury.dir/src/core/signature_table.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/core/signature_table.cpp.o.d"
  "/root/repo/src/core/similarity_detector.cpp" "CMakeFiles/mercury.dir/src/core/similarity_detector.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/core/similarity_detector.cpp.o.d"
  "/root/repo/src/fpga/resource_model.cpp" "CMakeFiles/mercury.dir/src/fpga/resource_model.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/fpga/resource_model.cpp.o.d"
  "/root/repo/src/models/model_zoo.cpp" "CMakeFiles/mercury.dir/src/models/model_zoo.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/models/model_zoo.cpp.o.d"
  "/root/repo/src/models/proxies.cpp" "CMakeFiles/mercury.dir/src/models/proxies.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/models/proxies.cpp.o.d"
  "/root/repo/src/nn/attention_layer.cpp" "CMakeFiles/mercury.dir/src/nn/attention_layer.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/nn/attention_layer.cpp.o.d"
  "/root/repo/src/nn/blocks.cpp" "CMakeFiles/mercury.dir/src/nn/blocks.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/nn/blocks.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "CMakeFiles/mercury.dir/src/nn/layers.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/nn/layers.cpp.o.d"
  "/root/repo/src/nn/mercury_hooks.cpp" "CMakeFiles/mercury.dir/src/nn/mercury_hooks.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/nn/mercury_hooks.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "CMakeFiles/mercury.dir/src/nn/network.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/nn/network.cpp.o.d"
  "/root/repo/src/pipeline/detection_frontend.cpp" "CMakeFiles/mercury.dir/src/pipeline/detection_frontend.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/pipeline/detection_frontend.cpp.o.d"
  "/root/repo/src/pipeline/detection_pipeline.cpp" "CMakeFiles/mercury.dir/src/pipeline/detection_pipeline.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/pipeline/detection_pipeline.cpp.o.d"
  "/root/repo/src/pipeline/sharded_mcache.cpp" "CMakeFiles/mercury.dir/src/pipeline/sharded_mcache.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/pipeline/sharded_mcache.cpp.o.d"
  "/root/repo/src/sim/cycle_model.cpp" "CMakeFiles/mercury.dir/src/sim/cycle_model.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/sim/cycle_model.cpp.o.d"
  "/root/repo/src/sim/dataflow.cpp" "CMakeFiles/mercury.dir/src/sim/dataflow.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/sim/dataflow.cpp.o.d"
  "/root/repo/src/sim/global_buffer.cpp" "CMakeFiles/mercury.dir/src/sim/global_buffer.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/sim/global_buffer.cpp.o.d"
  "/root/repo/src/sim/layer_shape.cpp" "CMakeFiles/mercury.dir/src/sim/layer_shape.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/sim/layer_shape.cpp.o.d"
  "/root/repo/src/sim/pe_array.cpp" "CMakeFiles/mercury.dir/src/sim/pe_array.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/sim/pe_array.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "CMakeFiles/mercury.dir/src/tensor/ops.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "CMakeFiles/mercury.dir/src/tensor/tensor.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/tensor/tensor.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/mercury.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/mercury.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/mercury.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/mercury.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/util/thread_pool.cpp.o.d"
  "/root/repo/src/workloads/profiles.cpp" "CMakeFiles/mercury.dir/src/workloads/profiles.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/workloads/profiles.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "CMakeFiles/mercury.dir/src/workloads/synthetic.cpp.o" "gcc" "CMakeFiles/mercury.dir/src/workloads/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
