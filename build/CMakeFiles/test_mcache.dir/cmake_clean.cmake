file(REMOVE_RECURSE
  "CMakeFiles/test_mcache.dir/tests/test_mcache.cpp.o"
  "CMakeFiles/test_mcache.dir/tests/test_mcache.cpp.o.d"
  "test_mcache"
  "test_mcache.pdb"
  "test_mcache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
