# Empty dependencies file for test_mcache.
# This may be replaced when dependencies are built.
