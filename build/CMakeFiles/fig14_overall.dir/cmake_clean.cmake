file(REMOVE_RECURSE
  "CMakeFiles/fig14_overall.dir/bench/fig14_overall.cpp.o"
  "CMakeFiles/fig14_overall.dir/bench/fig14_overall.cpp.o.d"
  "fig14_overall"
  "fig14_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
