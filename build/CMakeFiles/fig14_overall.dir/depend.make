# Empty dependencies file for fig14_overall.
# This may be replaced when dependencies are built.
