# Empty dependencies file for fig15_vgg13_casestudy.
# This may be replaced when dependencies are built.
