file(REMOVE_RECURSE
  "CMakeFiles/fig15_vgg13_casestudy.dir/bench/fig15_vgg13_casestudy.cpp.o"
  "CMakeFiles/fig15_vgg13_casestudy.dir/bench/fig15_vgg13_casestudy.cpp.o.d"
  "fig15_vgg13_casestudy"
  "fig15_vgg13_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_vgg13_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
