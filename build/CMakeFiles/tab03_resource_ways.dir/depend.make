# Empty dependencies file for tab03_resource_ways.
# This may be replaced when dependencies are built.
