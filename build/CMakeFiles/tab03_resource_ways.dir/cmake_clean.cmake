file(REMOVE_RECURSE
  "CMakeFiles/tab03_resource_ways.dir/bench/tab03_resource_ways.cpp.o"
  "CMakeFiles/tab03_resource_ways.dir/bench/tab03_resource_ways.cpp.o.d"
  "tab03_resource_ways"
  "tab03_resource_ways.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_resource_ways.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
