file(REMOVE_RECURSE
  "CMakeFiles/fig17_comparisons.dir/bench/fig17_comparisons.cpp.o"
  "CMakeFiles/fig17_comparisons.dir/bench/fig17_comparisons.cpp.o.d"
  "fig17_comparisons"
  "fig17_comparisons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_comparisons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
