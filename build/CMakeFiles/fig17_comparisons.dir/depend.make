# Empty dependencies file for fig17_comparisons.
# This may be replaced when dependencies are built.
