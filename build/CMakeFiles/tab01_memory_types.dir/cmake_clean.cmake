file(REMOVE_RECURSE
  "CMakeFiles/tab01_memory_types.dir/bench/tab01_memory_types.cpp.o"
  "CMakeFiles/tab01_memory_types.dir/bench/tab01_memory_types.cpp.o.d"
  "tab01_memory_types"
  "tab01_memory_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_memory_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
