# Empty dependencies file for tab01_memory_types.
# This may be replaced when dependencies are built.
