/**
 * @file
 * RuntimePlanner bench (core/runtime_planner.hpp): what does
 * compiling the step's pass graph once buy a multi-layer training
 * step?
 *
 * Four measurements:
 *  - Bit-identity self-check (FATAL on divergence): planned training
 *    — threaded, overlap on, backward + weight-gradient replay — must
 *    reproduce the unplanned losses, logits, and reuse statistics
 *    exactly. Planning is a schedule, never a result.
 *  - Per-step setup: a cold plan bind (compile + execution-slot
 *    build — the schedule work an unplanned step re-derives every
 *    step) vs a warm bind (the steady-state key-match replay).
 *    `*_setup_ms` keys; check_bench gates them as ceilings. Full mode
 *    FATALs unless warm is >= 5x cheaper than cold.
 *  - End-to-end wall: planned vs unplanned training step on the conv
 *    stack, threaded + overlapped. `wall*` keys, never gated.
 *  - Modeled multi-layer step (sim/plan_model.hpp) on the VGG-13 and
 *    MobileNetV2 stacks: per-layer-barrier baseline vs planned
 *    schedule with setup amortized and fused conv→conv edges hiding
 *    successor signature time under the predecessor's trailing
 *    drain. `model_*_step_speedup` keys, gated at the usual 5%.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "nn/layers.hpp"
#include "nn/network.hpp"
#include "sim/cost_model.hpp"
#include "sim/plan_model.hpp"
#include "core/kernels/kernels.hpp"
#include "workloads/synthetic.hpp"

namespace mercury {
namespace bench {
namespace {

struct Shape
{
    int64_t n;
    int64_t hw;
    int64_t c1, c2;
    int classes;
    int steps;
};

Shape
shapeFor(bool smoke_mode)
{
    if (smoke_mode)
        return {4, 8, 8, 12, 3, 2};
    return {8, 12, 16, 32, 4, 3};
}

/** VGG-flavored conv stack: conv-relu-conv-relu-pool twice, then a
 *  dense head. Plain layers, so every edge is plannable. */
std::unique_ptr<Network>
convStack(const Shape &sh, Rng &rng)
{
    auto net = std::make_unique<Network>();
    net->add(std::make_unique<Conv2dLayer>(3, sh.c1, 3, 1, 1, rng, 1));
    net->add(std::make_unique<ReluLayer>());
    net->add(std::make_unique<Conv2dLayer>(sh.c1, sh.c1, 3, 1, 1, rng,
                                           2));
    net->add(std::make_unique<ReluLayer>());
    net->add(std::make_unique<MaxPoolLayer>());
    net->add(std::make_unique<Conv2dLayer>(sh.c1, sh.c2, 3, 1, 1, rng,
                                           3));
    net->add(std::make_unique<ReluLayer>());
    net->add(std::make_unique<Conv2dLayer>(sh.c2, sh.c2, 3, 1, 1, rng,
                                           4));
    net->add(std::make_unique<MaxPoolLayer>());
    net->add(std::make_unique<GlobalAvgPoolLayer>());
    net->add(std::make_unique<DenseLayer>(sh.c2, sh.classes, rng, 5));
    return net;
}

void
configureContext(MercuryContext &ctx, bool planned, int threads)
{
    PipelineConfig pipe;
    pipe.threads = threads;
    pipe.overlap = threads > 1 ? OverlapMode::On : OverlapMode::Off;
    ctx.setPipeline(pipe);
    ctx.setBackwardReuse(true);
    ctx.setWeightGradReuse(true);
    ctx.setPlanExecution(planned);
}

struct Trace
{
    std::vector<float> losses;
    Tensor out;
    ReuseStats fwd, bwd, wgrad;
};

Trace
runTrace(const Shape &sh, const Dataset &ds, bool planned, int threads)
{
    Rng rng(777);
    std::unique_ptr<Network> net = convStack(sh, rng);
    MercuryContext ctx(14, 64, 8, 2, 0xFEED);
    configureContext(ctx, planned, threads);
    Trace tr;
    for (int s = 0; s < sh.steps; ++s)
        tr.losses.push_back(
            net->trainBatch(ds.inputs, ds.labels, 0.05f, &ctx));
    tr.out = net->forward(ds.inputs, &ctx);
    tr.fwd = ctx.totals();
    tr.bwd = ctx.backwardTotals();
    tr.wgrad = ctx.weightGradTotals();
    return tr;
}

bool
statsEq(const ReuseStats &a, const ReuseStats &b)
{
    return a.mix.vectors == b.mix.vectors && a.mix.hit == b.mix.hit &&
           a.mix.mau == b.mix.mau && a.mix.mnu == b.mix.mnu &&
           a.macsTotal == b.macsTotal &&
           a.macsSkipped == b.macsSkipped &&
           a.channelPasses == b.channelPasses;
}

bool
tracesEq(const Trace &a, const Trace &b)
{
    if (a.losses != b.losses || a.out.numel() != b.out.numel())
        return false;
    for (int64_t i = 0; i < a.out.numel(); ++i)
        if (a.out[i] != b.out[i])
            return false;
    return statsEq(a.fwd, b.fwd) && statsEq(a.bwd, b.bwd) &&
           statsEq(a.wgrad, b.wgrad);
}

/** Per-bind milliseconds of `bind`, amortized over a timed loop. */
template <typename Fn>
double
perBindMs(Fn &&bind, int iters)
{
    const double s = bestSeconds([&] {
        for (int i = 0; i < iters; ++i)
            bind();
    });
    return s * 1000.0 / iters;
}

/** One modeled stack entry: full-step speedup planned vs barriered,
 *  through the sim::CostModel facade (backend picked by name, so
 *  MERCURY_SIM_BACKEND=event re-runs this phase on the event sim). */
sim::CostBreakdown
modelStack(const ModelConfig &model, int64_t batch, int sig_bits)
{
    AcceleratorConfig cfg;
    cfg.backwardReuse = true;
    cfg.weightGradReuse = true;
    cfg.planExecution = true;
    const std::unique_ptr<sim::CostModel> cost =
        sim::CostModel::create(cfg);
    std::vector<HitMix> mixes;
    for (const LayerShape &shape : model.layers)
        mixes.push_back(
            HitMix::fromFractions(shape.vectorsPerChannel(), 0.4));
    return cost->stepCost(model.layers, mixes, batch, sig_bits);
}

int
run()
{
    const bool smoke_mode = smoke();
    const Shape sh = shapeFor(smoke_mode);
    const Dataset ds =
        makeImageDataset(sh.n, sh.classes, 3, sh.hw, 9090, 0.03f);

    banner("micro_planner: ahead-of-time pass-graph compilation",
           "planned steps replay a compiled schedule — setup "
           "amortized, conv->conv edges overlapped across layers, "
           "results bit-identical");

    // ---- Phase 1: bit-identity self-check -------------------------
    const Trace plain = runTrace(sh, ds, false, 4);
    const Trace planned = runTrace(sh, ds, true, 4);
    if (!tracesEq(plain, planned)) {
        std::printf("FAIL: planned training diverged from the "
                    "unplanned path\n");
        return 1;
    }
    std::printf("bit-identity: %d planned steps (threads 4, overlap, "
                "dX+dW replay) match unplanned exactly\n\n",
                sh.steps);

    // ---- Phase 2: per-step setup, cold bind vs warm bind ----------
    Rng rng(778);
    std::unique_ptr<Network> net = convStack(sh, rng);
    MercuryContext ctx(14, 64, 8, 2, 0xFEED);
    configureContext(ctx, true, 1);
    const int iters = smoke_mode ? 4 : 64;
    const double cold_ms = perBindMs(
        [&] {
            ctx.resetPlanState();
            net->planStep(ds.inputs, &ctx);
        },
        iters);
    net->planStep(ds.inputs, &ctx); // ensure bound
    const double warm_ms =
        perBindMs([&] { net->planStep(ds.inputs, &ctx); }, iters * 8);
    const double setup_speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
    std::printf("plan bind: cold %.4f ms (compile + slot build), warm "
                "%.4f ms (key-match replay), %.1fx\n",
                cold_ms, warm_ms, setup_speedup);
    if (!smoke_mode && setup_speedup < 5.0) {
        std::printf("FAIL: warm bind only %.1fx cheaper than cold "
                    "(want >= 5x)\n",
                    setup_speedup);
        return 1;
    }

    // ---- Phase 3: end-to-end step wall time -----------------------
    double planned_step_s = 0.0, unplanned_step_s = 0.0;
    {
        Rng rng_w(779);
        std::unique_ptr<Network> net_w = convStack(sh, rng_w);
        MercuryContext cx(14, 64, 8, 2, 0xFEED);
        configureContext(cx, false, 4);
        net_w->trainBatch(ds.inputs, ds.labels, 0.0f, &cx); // warm pools
        unplanned_step_s = bestSeconds([&] {
            net_w->trainBatch(ds.inputs, ds.labels, 0.0f, &cx);
        });
    }
    {
        Rng rng_w(779);
        std::unique_ptr<Network> net_w = convStack(sh, rng_w);
        MercuryContext cx(14, 64, 8, 2, 0xFEED);
        configureContext(cx, true, 4);
        net_w->trainBatch(ds.inputs, ds.labels, 0.0f, &cx); // bind plan
        planned_step_s = bestSeconds([&] {
            net_w->trainBatch(ds.inputs, ds.labels, 0.0f, &cx);
        });
    }
    const double wall_speedup = planned_step_s > 0.0
                                    ? unplanned_step_s / planned_step_s
                                    : 0.0;
    std::printf("step wall: unplanned %.3f ms, planned %.3f ms, "
                "%.3fx (host-dependent, not gated)\n\n",
                unplanned_step_s * 1e3, planned_step_s * 1e3,
                wall_speedup);

    // ---- Phase 4: modeled multi-layer step ------------------------
    const int64_t model_batch = smoke_mode ? 2 : 8;
    const sim::CostBreakdown vgg = modelStack(vgg13(), model_batch, 20);
    const sim::CostBreakdown mob =
        modelStack(mobilenetV2(), model_batch, 20);
    for (const auto &entry :
         {std::pair<const char *, const sim::CostBreakdown &>{"vgg13",
                                                              vgg},
          {"mobilenet_v2", mob}}) {
        const sim::CostBreakdown &m = entry.second;
        std::printf("%s: barrier %llu cycles -> planned %llu "
                    "(%.3fx; %d fused edges hide %llu signature "
                    "cycles, %llu setup cycles amortized)\n",
                    entry.first,
                    static_cast<unsigned long long>(m.barrierCycles),
                    static_cast<unsigned long long>(m.plannedCycles),
                    m.stepSpeedup(), m.fusedEdges,
                    static_cast<unsigned long long>(m.hiddenSignature),
                    static_cast<unsigned long long>(m.setupCycles));
        if (m.stepSpeedup() <= 1.0 || m.fusedEdges <= 0 ||
            m.hiddenSignature == 0) {
            std::printf("FAIL: %s planned schedule does not beat the "
                        "per-layer-barrier baseline\n",
                        entry.first);
            return 1;
        }
    }

    ResultLine line("BENCH_planner.json", "micro_planner");
    line.speedups(vgg.stepSpeedup(),
                  std::isfinite(wall_speedup)
                      ? wall_speedup
                      : std::numeric_limits<double>::quiet_NaN());
    line.num("model_vgg13_step_speedup", vgg.stepSpeedup(), 3);
    line.num("model_mobilenet_step_speedup", mob.stepSpeedup(), 3);
    line.integer("vgg13_fused_edges", vgg.fusedEdges);
    line.integer("mobilenet_fused_edges", mob.fusedEdges);
    // Only the cold bind is check_bench-gated (`_setup_ms` ceiling):
    // the warm bind is sub-microsecond, below a wall gate's noise
    // floor — the >= 5x FATAL above enforces it on every full run.
    line.num("plan_cold_setup_ms", cold_ms, 4);
    line.num("wall_plan_warm_setup_ms", warm_ms, 5);
    line.num("wall_setup_speedup", setup_speedup, 1);
    line.num("wall_step_unplanned_ms", unplanned_step_s * 1e3, 3);
    line.num("wall_step_planned_ms", planned_step_s * 1e3, 3);
    line.num("wall_step_speedup", wall_speedup, 3);
    line.config("batch", sh.n);
    line.config("hw", sh.hw);
    line.config("steps", sh.steps);
    line.config("model_batch", model_batch);
    line.config("bits", 14);
    line.config("cpu", kernels::avx2Ops() ? "avx2" : "scalar");
    stdConfig(line);
    line.print();
    return 0;
}

} // namespace
} // namespace bench
} // namespace mercury

int
main()
{
    return mercury::bench::run();
}
