/**
 * @file
 * Table IV: resource usage and on-chip power of MERCURY (1024-entry,
 * 16-way MCACHE) against the baseline accelerator.
 */

#include "bench_common.hpp"
#include "fpga/resource_model.hpp"

int
main()
{
    using namespace mercury;
    bench::banner("Table IV: MERCURY vs baseline resources & power",
                  "MERCURY increases resources/power by ~1.135x; DSP "
                  "count unchanged (PEs are reused for signatures)");

    FpgaModel model;
    const FpgaResources base_r = model.baselineResources();
    const FpgaResources merc_r = model.resources(64, 16);
    Table a("Table IV-a: resource usage");
    a.header({"method", "slice-LUTs", "slice-registers", "block-RAM",
              "#DSP48E1s"});
    a.row({"Baseline", Table::num(base_r.sliceLuts, 0),
           Table::num(base_r.sliceRegisters, 0),
           Table::num(base_r.blockRam, 1), Table::num(base_r.dsp48, 0)});
    a.row({"MERCURY", Table::num(merc_r.sliceLuts, 0),
           Table::num(merc_r.sliceRegisters, 0),
           Table::num(merc_r.blockRam, 1), Table::num(merc_r.dsp48, 0)});
    a.print();

    const FpgaPower base_p = model.baselinePower();
    const FpgaPower merc_p = model.power(64, 16);
    Table b("Table IV-b: on-chip power (watt)");
    b.header({"method", "clocks", "logic", "signals", "BRAM", "DSPs",
              "static", "total"});
    auto row = [&](const char *name, const FpgaPower &p) {
        b.row({name, Table::num(p.clocks, 3), Table::num(p.logic, 3),
               Table::num(p.signals, 3), Table::num(p.bram, 3),
               Table::num(p.dsps, 3), Table::num(p.staticPower, 3),
               Table::num(p.total(), 3)});
    };
    row("Baseline", base_p);
    row("MERCURY", merc_p);
    b.print();

    std::printf("power ratio MERCURY/baseline: %.3fx (paper: 1.135x)\n\n",
                model.overheadRatio());
    return 0;
}
