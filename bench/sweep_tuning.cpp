/**
 * @file
 * Tuning sweep of the detection-pipeline knobs over ImageNet-scale
 * layer shapes (ROADMAP "larger workloads").
 *
 * ResNet-50 convolutions at 224x224 inputs span detection passes from
 * 49 vectors (7x7 stage-5 maps) to 12544 vectors (112x112 stem) per
 * (image, channel) — three orders of magnitude around the CIFAR-sized
 * passes the defaults were first picked on. This bench sweeps
 * `pipelineBlockRows` x `pipelineShards` over those pass shapes,
 * measures detection rows/sec through the full DetectionFrontend
 * path, reports the best pair per shape, and checks the size bands
 * baked into tunedPipelineFor (sim/config.hpp, the
 * `pipelineBlockRows = 0` auto mode) against the measurement.
 *
 * Emits a BENCH_tuning.json line in the shared result schema. Smoke
 * mode (MERCURY_BENCH_SMOKE=1) shrinks the grid and the pass sizes so
 * CI can exercise the harness in seconds.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pipeline/detection_frontend.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace mercury;

constexpr int kSets = 64;
constexpr int kWays = 16;
constexpr int kVersions = 4;
constexpr int kBits = 16;
constexpr uint64_t kSeed = 1234;

struct PassShape
{
    const char *name;
    int64_t rows; ///< vectors per detection pass
    int64_t dim;  ///< extracted vector dimension
};

} // namespace

int
main()
{
    using namespace mercury;
    const bool smoke = bench::smoke();
    const int threads = std::max(4, ThreadPool::resolveThreads(0));

    // ResNet-50 stages at 224x224 input: rows = outH*outW of one
    // channel pass, dim = kernel area of the per-channel extraction.
    std::vector<PassShape> shapes = {
        {"res50-conv1-7x7-112", 112 * 112, 49},
        {"res50-stage2-3x3-56", 56 * 56, 9},
        {"res50-stage3-3x3-28", 28 * 28, 9},
        {"res50-stage4-3x3-14", 14 * 14, 9},
        {"res50-stage5-3x3-7", 7 * 7, 9},
    };
    std::vector<int64_t> block_grid = {32, 64, 128, 256, 512};
    std::vector<int> shard_grid = {1, 4, 8, 16};
    if (smoke) {
        shapes = {{"smoke-3x3-14", 14 * 14, 9}};
        block_grid = {64, 128};
        shard_grid = {4};
    }

    std::printf("sweep_tuning: detection rows/sec over "
                "pipelineBlockRows x pipelineShards, ImageNet-scale "
                "pass shapes\n");
    std::printf("(MCACHE %dx%d, %d versions, bits %d, threads %d%s)\n\n",
                kSets, kWays, kVersions, kBits, threads,
                smoke ? ", SMOKE MODE - numbers not meaningful" : "");

    double headline_best = 0.0, headline_default = 0.0;
    int64_t headline_block = 0;
    int headline_shards = 0;
    std::string headline_name;

    for (const PassShape &shape : shapes) {
        // Zipf-skewed prototypes: the hot-prototype regime of real
        // activation streams, so probes exercise realistic set
        // contention rather than uniform misses.
        Tensor rows = prototypeVectors(shape.rows, shape.dim,
                                       std::max<int64_t>(shape.rows / 8,
                                                         4),
                                       1e-3f, kSeed, 1.0);

        Table t(std::string("pass ") + shape.name + " (" +
                std::to_string(shape.rows) + " rows, d=" +
                std::to_string(shape.dim) + ")");
        t.header({"blockRows", "shards", "rows/s"});
        double best_rate = 0.0, default_rate = 0.0;
        int64_t best_block = 0;
        int best_shards = 0;
        for (const int64_t block : block_grid) {
            for (const int shards : shard_grid) {
                PipelineConfig pipe;
                pipe.blockRows = block;
                pipe.shards = shards;
                pipe.threads = threads;
                DetectionFrontend fe(kSets, kWays, kVersions, kBits,
                                     kSeed, pipe);
                const double secs = bench::bestSeconds(
                    [&] { fe.detect(rows, kBits); }, 0.5);
                const double rate =
                    static_cast<double>(shape.rows) / secs;
                if (rate > best_rate) {
                    best_rate = rate;
                    best_block = block;
                    best_shards = shards;
                }
                if (block == 64 && shards == 4)
                    default_rate = rate;
                t.row({std::to_string(block), std::to_string(shards),
                       Table::num(rate, 0)});
            }
        }
        t.print();
        const PipelineTuning tuned = tunedPipelineFor(
            shape.rows, ThreadPool::resolveThreads(0));
        std::printf("best: blockRows=%lld shards=%d (%.0f rows/s); "
                    "tunedPipelineFor(%lld) -> blockRows=%lld "
                    "shards=%d\n\n",
                    static_cast<long long>(best_block), best_shards,
                    best_rate, static_cast<long long>(shape.rows),
                    static_cast<long long>(tuned.blockRows),
                    tuned.shards);
        // Headline: the first shape in the list (the largest pass).
        if (headline_name.empty()) {
            headline_name = shape.name;
            headline_best = best_rate;
            headline_default = default_rate;
            headline_block = best_block;
            headline_shards = best_shards;
        }
    }

    bench::ResultLine line("BENCH_tuning.json", "sweep_tuning");
    line.text("headline_pass", headline_name)
        .num("best_rows_per_sec", headline_best, 0)
        .num("default_rows_per_sec", headline_default, 0)
        .speedups(std::nan(""), headline_default > 0.0
                                    ? headline_best / headline_default
                                    : 1.0)
        .config("blockRows", headline_block)
        .config("shards", headline_shards)
        .config("threads", threads)
        .config("bits", kBits);
    bench::stdConfig(line);
    line.print();
    return 0;
}
