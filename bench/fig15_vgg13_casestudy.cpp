/**
 * @file
 * Figure 15: VGG13 case study — (a) MCACHE access-type mix per conv
 * layer (HIT / MAU / MNU), (b) per-layer cycle counts baseline vs
 * MERCURY with the signature/convolution split, (c) unique vectors
 * found per layer.
 */

#include "bench_common.hpp"
#include "sim/dataflow.hpp"

int
main()
{
    using namespace mercury;
    bench::banner("Figure 15: VGG13 case study",
                  "HIT+MAU share grows with depth; early layers have "
                  "the most unique vectors (large inputs); cycles vary "
                  "with layer size");

    const ModelConfig model = vgg13();
    AcceleratorConfig cfg;
    SyntheticSimilaritySource source(model, cfg, 42);
    const auto cost = sim::CostModel::create(cfg);

    Table a("Fig. 15a: MCACHE access type (%)");
    a.header({"layer", "HIT", "MAU", "MNU"});
    Table b("Fig. 15b: per-layer cycles (millions, one image)");
    b.header({"layer", "base-conv", "merc-signature", "merc-conv",
              "speedup"});
    Table c("Fig. 15c: unique vectors per layer");
    c.header({"layer", "unique-vectors"});

    int conv_idx = 0;
    for (const auto &layer : model.layers) {
        if (layer.type != LayerType::Conv)
            continue;
        ++conv_idx;
        const std::string name = "layer-" + std::to_string(conv_idx);
        const HitMix mix = source.channelMix(
            layer, cfg.initialSignatureBits, Phase::Forward);
        const double v = static_cast<double>(mix.vectors);
        a.row({name, Table::num(100.0 * mix.hit / v, 1),
               Table::num(100.0 * mix.mau / v, 1),
               Table::num(100.0 * mix.mnu / v, 1)});

        const LayerCycles cyc =
            cost->layerCost(layer, 1, mix, cfg.initialSignatureBits);
        b.row({name,
               Table::num(static_cast<double>(cyc.baseline) / 1e6, 1),
               Table::num(static_cast<double>(cyc.signature) / 1e6, 1),
               Table::num(static_cast<double>(cyc.computation +
                                              cyc.cacheOverhead) /
                              1e6,
                          1),
               Table::num(cyc.speedup(), 2)});

        // Unique vectors across the whole layer: the per-pass MAU
        // count scaled to the layer's channel-pass vector volume.
        const HitMix full = mix.scaledTo(layer.vectorsPerChannel());
        c.row({name, Table::count(static_cast<uint64_t>(full.mau))});
    }
    a.print();
    b.print();
    c.print();
    return 0;
}
