/**
 * @file
 * Figure 8: timing of signature generation on a row-stationary PE
 * set, without and with the ORg pipelining register, validated
 * against the cycle-accurate reservation-table model. Fig. 8c's
 * point: steady-state cost per signature drops from 2x to x.
 */

#include "bench_common.hpp"
#include "sim/cycle_model.hpp"
#include "sim/dataflow.hpp"
#include "util/logging.hpp"

int
main()
{
    using namespace mercury;
    bench::banner("Figure 8: pipelined signature calculation",
                  "first signature in 2x+1 cycles, then x cycles each "
                  "(vs 2x unpipelined); ~2x steady-state speedup");

    Table t("Fig. 8c: cycles to produce k signatures (x = vector rows)");
    t.header({"x", "signatures", "unpipelined", "pipelined", "speedup"});
    for (uint64_t x : {3u, 5u, 7u, 11u}) {
        for (uint64_t k : {1u, 4u, 16u, 64u, 1024u}) {
            const uint64_t up = unpipelinedPassCycles(k, x);
            const uint64_t pp = pipelinedPassCycles(k, x);
            // Cross-check against the reservation-table simulator for
            // tractable sizes.
            if (k <= 64) {
                PESetSchedule sched(k, x, true);
                if (sched.totalCycles() != pp || !sched.structurallyValid())
                    fatal("pipelined schedule mismatch at x=", x, " k=", k);
            }
            t.row({std::to_string(x), std::to_string(k),
                   std::to_string(up), std::to_string(pp),
                   Table::num(static_cast<double>(up) /
                                  static_cast<double>(pp),
                              2)});
        }
    }
    t.print();

    // The paper's worked example (x = 3): Sig1,1 at cycle 7, Sig2,1 at
    // cycle 10 (Fig. 8b).
    std::printf("worked example x=3: first signature cycle %llu "
                "(paper: 7), second %llu (paper: 10)\n\n",
                static_cast<unsigned long long>(pipelinedCompletion(0, 3)),
                static_cast<unsigned long long>(pipelinedCompletion(1, 3)));

    // Fig. 8's system-level point: generation overlaps with PE work,
    // so detection stays off the critical path. Compare the timing
    // model's serial vs overlapped signature accounting on VGG13-ish
    // conv layers (the overlapDetection knob).
    AcceleratorConfig serial_cfg;
    AcceleratorConfig overlap_cfg;
    overlap_cfg.overlapDetection = OverlapMode::On;
    const auto serial = sim::CostModel::create(serial_cfg);
    const auto overlapped = sim::CostModel::create(overlap_cfg);

    Table ot("overlapped signature accounting (row-stationary, "
             "40% hits)");
    ot.header({"layer", "sig-cycles", "exposed-overlapped",
               "layer-speedup"});
    struct Shape
    {
        const char *name;
        int64_t cin, cout, hw;
    };
    for (const Shape s : {Shape{"vgg13 conv2 64x64x112", 64, 64, 112},
                          Shape{"vgg13 conv4 128x128x56", 128, 128, 56},
                          Shape{"vgg13 conv8 512x512x14", 512, 512, 14}}) {
        const LayerShape shape =
            LayerShape::conv(s.name, s.cin, s.cout, s.hw, s.hw, 3);
        const HitMix mix =
            HitMix::fromFractions(shape.vectorsPerChannel(), 0.4);
        const LayerCycles sc = serial->layerCost(shape, 1, mix, 20);
        const LayerCycles oc = overlapped->layerCost(shape, 1, mix, 20);
        ot.row({s.name, std::to_string(sc.signature),
                std::to_string(oc.signature),
                Table::num(static_cast<double>(sc.mercuryTotal()) /
                               static_cast<double>(oc.mercuryTotal()),
                           3) +
                    "x"});
    }
    ot.print();
    return 0;
}
