/**
 * @file
 * Figure 8: timing of signature generation on a row-stationary PE
 * set, without and with the ORg pipelining register, validated
 * against the cycle-accurate reservation-table model. Fig. 8c's
 * point: steady-state cost per signature drops from 2x to x.
 */

#include "bench_common.hpp"
#include "sim/cycle_model.hpp"
#include "util/logging.hpp"

int
main()
{
    using namespace mercury;
    bench::banner("Figure 8: pipelined signature calculation",
                  "first signature in 2x+1 cycles, then x cycles each "
                  "(vs 2x unpipelined); ~2x steady-state speedup");

    Table t("Fig. 8c: cycles to produce k signatures (x = vector rows)");
    t.header({"x", "signatures", "unpipelined", "pipelined", "speedup"});
    for (uint64_t x : {3u, 5u, 7u, 11u}) {
        for (uint64_t k : {1u, 4u, 16u, 64u, 1024u}) {
            const uint64_t up = unpipelinedPassCycles(k, x);
            const uint64_t pp = pipelinedPassCycles(k, x);
            // Cross-check against the reservation-table simulator for
            // tractable sizes.
            if (k <= 64) {
                PESetSchedule sched(k, x, true);
                if (sched.totalCycles() != pp || !sched.structurallyValid())
                    fatal("pipelined schedule mismatch at x=", x, " k=", k);
            }
            t.row({std::to_string(x), std::to_string(k),
                   std::to_string(up), std::to_string(pp),
                   Table::num(static_cast<double>(up) /
                                  static_cast<double>(pp),
                              2)});
        }
    }
    t.print();

    // The paper's worked example (x = 3): Sig1,1 at cycle 7, Sig2,1 at
    // cycle 10 (Fig. 8b).
    std::printf("worked example x=3: first signature cycle %llu "
                "(paper: 7), second %llu (paper: 10)\n\n",
                static_cast<unsigned long long>(pipelinedCompletion(0, 3)),
                static_cast<unsigned long long>(pipelinedCompletion(1, 3)));
    return 0;
}
