/**
 * @file
 * Figure 1: similarity among input and gradient vectors of VGG13's
 * ten convolution layers, detected with RPQ — (a) input vectors
 * during forward propagation, (b) gradient vectors during backward
 * propagation.
 */

#include "bench_common.hpp"

int
main()
{
    using namespace mercury;
    bench::banner("Figure 1: VGG13 per-layer input/gradient similarity",
                  "input similarity up to 75%, gradient up to 67%, "
                  "decaying with depth");

    const ModelConfig model = vgg13();
    AcceleratorConfig cfg;
    SyntheticSimilaritySource source(model, cfg, 42);

    Table t("Fig. 1 (a)+(b): similarity detected by RPQ, VGG13");
    t.header({"layer", "input-similarity-%", "gradient-similarity-%"});
    int conv_idx = 0;
    double max_in = 0, max_grad = 0;
    for (const auto &layer : model.layers) {
        if (layer.type != LayerType::Conv)
            continue;
        ++conv_idx;
        const HitMix in =
            source.channelMix(layer, cfg.initialSignatureBits,
                              Phase::Forward);
        const HitMix grad =
            source.channelMix(layer, cfg.initialSignatureBits,
                              Phase::BackwardWeight);
        max_in = std::max(max_in, 100.0 * in.hitFraction());
        max_grad = std::max(max_grad, 100.0 * grad.hitFraction());
        t.row({"layer-" + std::to_string(conv_idx),
               Table::num(100.0 * in.hitFraction(), 1),
               Table::num(100.0 * grad.hitFraction(), 1)});
    }
    t.print();
    std::printf("max input similarity    %.1f%% (paper: ~75%%)\n", max_in);
    std::printf("max gradient similarity %.1f%% (paper: ~67%%)\n\n",
                max_grad);
    return 0;
}
