/**
 * @file
 * Microbenchmark of the ReuseRuntime-scheduled grouped/depthwise
 * convolution workload (the MobileNet-style scenario opened by the
 * runtime refactor): a depthwise 3x3 layer and a grouped 3x3 layer
 * run a full training step — forward with capture, replayed dX,
 * replayed dW — through the one streaming scheduler every engine
 * pass now rides.
 *
 * Three views per layer:
 *
 *  1. Bit-identity self-check: serial and overlapped scheduling must
 *     produce identical outputs and statistics (the golden contract
 *     tests/test_runtime.cpp pins; a divergence fails the bench).
 *  2. Modeled accelerator cycles of the full step: forward +
 *     backward(include_weight_grad) with overlapDetection +
 *     backwardReuse + weightGradReuse against the three-pass
 *     baseline — deterministic given the measured mix, and gated by
 *     tools/check_bench.py against the committed baselines.
 *  3. Functional wall time of the full step: the reuse engines
 *     (forward + backwardInput + backwardWeights over one captured
 *     record) against the exact tensor ops (conv2dForward +
 *     conv2dBackwardInput + conv2dBackwardWeight). Layers the
 *     modeled stoppage (§III-D) would switch detection off for —
 *     the depthwise few-filters regime — report the steady-state
 *     post-stoppage step, which is the exact step (wall parity),
 *     with a `*_stopped` flag in the JSON.
 *
 * The per-layer depthwise line is expected to be BELOW 1x: a
 * depthwise channel pass serves exactly one filter, so the signature
 * charge dwarfs the skippable compute — the paper's few-filters
 * effect (Fig. 12), which the adaptive stoppage controller (§III-D)
 * exists to catch. The workload-level story is the inverted-residual
 * BLOCK (expand 1x1, depthwise 3x3, project 1x1): the pointwise
 * layers carry ~7x the depthwise MACs and map to the FC formulation
 * where detection amortizes over the full filter count, so the block
 * step stays well above 1x with the depthwise loss priced in. That
 * block-level number is the headline `modeled_speedup`.
 *
 * Emits a BENCH_overlap.json line (bench = "micro_runtime") in the
 * shared result schema. MERCURY_BENCH_SMOKE=1 shrinks the layers for
 * the CI smoke run; MERCURY_BENCH_REPS=N caps repetitions for the CI
 * wall-clock step; MERCURY_BENCH_THREADS=N pins the pool size and
 * MERCURY_BENCH_OVERLAP=off|on|auto overrides the measured overlap
 * policy (the resolved decision lands in `config`).
 */

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/conv_reuse_engine.hpp"
#include "sim/dataflow.hpp"
#include "sim/layer_shape.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace mercury;

constexpr int kSets = 64;
constexpr int kWays = 16;
constexpr int kVersions = 4;
constexpr int kBits = 16;
constexpr uint64_t kSeed = 59;

/** One grouped-conv workload measured by this bench. */
struct Workload
{
    const char *key;  ///< JSON key prefix (dw / grouped)
    const char *name; ///< table label
    int64_t channels;
    int64_t filters;
    int64_t groups;
    int64_t hw;
};

struct StepResult
{
    double hit_frac = 0.0;
    double wall_speedup = 0.0;
    double model_speedup = 0.0;
    uint64_t model_base_cycles = 0;
    uint64_t model_step_cycles = 0;
    bench::WallTime wall_exact;   ///< exact-ops step (min/median)
    bench::WallTime wall_runtime; ///< reuse-runtime step (min/median)
    bool stopped = false;         ///< §III-D stoppage regime (parity)
};

/** Full-training-step measurement of one grouped workload. */
bool
runWorkload(const Workload &wl, const PipelineConfig &base_pipe,
            OverlapMode omode, StepResult &out)
{
    Dataset ds = makeImageDataset(1, 2, wl.channels, wl.hw, kSeed,
                                  0.02f);
    Rng rng(kSeed + 1);
    Tensor w({wl.filters, wl.channels / wl.groups, 3, 3});
    w.fillNormal(rng);
    ConvSpec spec;
    spec.inChannels = wl.channels;
    spec.outChannels = wl.filters;
    spec.kernelH = spec.kernelW = 3;
    spec.pad = 1;
    spec.groups = wl.groups;
    Tensor grad({1, wl.filters, wl.hw, wl.hw});
    grad.fillNormal(rng);

    DetectionFrontend serial_fe(kSets, kWays, kVersions, kBits, kSeed,
                                base_pipe);
    ConvReuseEngine serial(serial_fe, kBits);
    PipelineConfig overlap_pipe = base_pipe;
    overlap_pipe.overlap = omode;
    DetectionFrontend overlap_fe(kSets, kWays, kVersions, kBits, kSeed,
                                 overlap_pipe);
    ConvReuseEngine overlapped(overlap_fe, kBits);

    // --- 1. Bit-identity self-check (serial == overlapped) ---------
    ReuseStats s_stats, o_stats;
    SignatureRecord s_rec, o_rec;
    const Tensor s_out =
        serial.forward(ds.inputs, w, Tensor(), spec, s_stats, &s_rec);
    const Tensor o_out = overlapped.forward(ds.inputs, w, Tensor(), spec,
                                            o_stats, &o_rec);
    ReuseStats sb, ob, sw, ow;
    const Tensor s_gin = serial.backwardInput(grad, w, spec, wl.hw,
                                              wl.hw, s_rec, sb);
    const Tensor o_gin = overlapped.backwardInput(grad, w, spec, wl.hw,
                                                  wl.hw, o_rec, ob);
    const Tensor s_dw = serial.backwardWeights(ds.inputs, grad, spec,
                                               s_rec, sw);
    const Tensor o_dw = overlapped.backwardWeights(ds.inputs, grad,
                                                   spec, o_rec, ow);
    if (!(s_out == o_out) || !(s_gin == o_gin) || !(s_dw == o_dw) ||
        s_stats.macsSkipped != o_stats.macsSkipped ||
        sb.macsSkipped != ob.macsSkipped ||
        sw.macsSkipped != ow.macsSkipped) {
        std::fprintf(stderr,
                     "FATAL: %s: overlapped runtime scheduling diverges "
                     "from the serial path\n",
                     wl.name);
        return false;
    }

    // --- 2. Modeled cycles of the full step -------------------------
    // Pinned overlap On: the model accounts the accelerator (Fig. 8
    // overlap is hardware there), keeping the recorded modeled keys
    // deterministic and host-independent whatever policy the
    // functional measurement below uses.
    AcceleratorConfig base_cfg; // no reuse knobs: three-pass baseline
    AcceleratorConfig reuse_cfg;
    reuse_cfg.overlapDetection = OverlapMode::On;
    reuse_cfg.backwardReuse = true;
    reuse_cfg.weightGradReuse = true;
    const auto base_model = sim::CostModel::create(base_cfg);
    const auto reuse_model = sim::CostModel::create(reuse_cfg);
    const LayerShape shape =
        LayerShape::conv(wl.name, wl.channels, wl.filters, wl.hw, wl.hw,
                         3, 1, 1, wl.groups);
    const HitMix mix = s_stats.mix;

    const uint64_t base_cycles =
        base_model->baselineCycles(shape, 1) * 3; // fwd + dX + dW
    const LayerCycles fwd = reuse_model->layerCost(shape, 1, mix, kBits);
    const LayerCycles bwd = reuse_model->backwardCost(
        shape, 1, mix, kBits, /*include_weight_grad=*/true);
    const uint64_t step_cycles = fwd.mercuryTotal() + bwd.mercuryTotal();

    // --- 3. Functional wall time of the full step -------------------
    const bench::WallTime w_exact = bench::wallSeconds(
        [&] {
            conv2dForward(ds.inputs, w, Tensor(), spec);
            conv2dBackwardInput(grad, w, spec, wl.hw, wl.hw);
            conv2dBackwardWeight(ds.inputs, grad, spec);
        },
        0.5);
    // §III-D stoppage: when the modeled reuse step costs at least the
    // baseline (the few-filters regime — depthwise layers), the
    // adaptive controller switches the layer's detection off after
    // stoppageT batches and the training driver runs the exact
    // three-pass step from then on. The steady-state runtime step IS
    // the exact step, so wall parity holds by construction; the flag
    // is recorded so the JSON says which regime the number reflects.
    const bool det_stopped = step_cycles >= base_cycles;
    bench::WallTime w_runtime;
    if (det_stopped) {
        w_runtime = w_exact;
        std::printf("%s: modeled reuse step >= baseline — §III-D "
                    "stoppage disables detection; steady-state wall is "
                    "the exact step (parity)\n",
                    wl.name);
    } else {
        w_runtime = bench::wallSeconds(
            [&] {
                ReuseStats s;
                SignatureRecord rec;
                overlapped.forward(ds.inputs, w, Tensor(), spec, s,
                                   &rec);
                overlapped.backwardInput(grad, w, spec, wl.hw, wl.hw,
                                         rec, s);
                overlapped.backwardWeights(ds.inputs, grad, spec, rec,
                                           s);
            },
            0.5);
    }
    const double t_exact = w_exact.best;
    const double t_runtime = w_runtime.best;

    out.hit_frac = mix.hitFraction();
    out.wall_speedup = t_exact / t_runtime;
    out.wall_exact = w_exact;
    out.wall_runtime = w_runtime;
    out.stopped = det_stopped;
    out.model_base_cycles = base_cycles;
    out.model_step_cycles = step_cycles;
    out.model_speedup = static_cast<double>(base_cycles) /
                        static_cast<double>(step_cycles);

    Table table(std::string(wl.name) + " — full training step");
    table.header({"view", "exact/baseline", "runtime", "speedup"});
    table.row({"wall-min-ms", Table::num(t_exact * 1e3, 1),
               Table::num(t_runtime * 1e3, 1),
               Table::num(out.wall_speedup, 2) + "x"});
    table.row({"wall-median-ms", Table::num(w_exact.median * 1e3, 1),
               Table::num(w_runtime.median * 1e3, 1),
               Table::num(w_exact.median / w_runtime.median, 2) + "x"});
    table.row({"modeled cycles", std::to_string(base_cycles),
               std::to_string(step_cycles),
               Table::num(out.model_speedup, 2) + "x"});
    table.print();
    std::printf("%s: hit fraction %.3f, forward skipped %llu of %llu "
                "MACs\n\n",
                wl.name, out.hit_frac,
                static_cast<unsigned long long>(s_stats.macsSkipped),
                static_cast<unsigned long long>(s_stats.macsTotal));
    return true;
}

/** Measured mix of a channel-spanning pointwise pass (d = cin). */
HitMix
pointwiseMix(int64_t rows, int64_t d, uint64_t seed)
{
    Rng rng(seed);
    Tensor proto({std::max<int64_t>(rows / 8, 1), d});
    proto.fillNormal(rng);
    Tensor r({rows, d});
    for (int64_t i = 0; i < rows; ++i)
        for (int64_t j = 0; j < d; ++j)
            r.at2(i, j) = proto.at2(i % proto.dim(0), j) +
                          0.02f * static_cast<float>(rng.normal());
    DetectionFrontend fe(kSets, kWays, kVersions, kBits, seed);
    return fe.detect(r, kBits).mix();
}

/**
 * Modeled full-training-step cycles of one inverted-residual block
 * (expand 1x1 -> depthwise 3x3 -> project 1x1) against the
 * three-pass no-reuse baseline. Per layer, detection either pays or
 * it does not: layers whose reuse step costs more than their
 * baseline run detection-free, which is exactly what the adaptive
 * stoppage controller (§III-D) converges to — for this block that is
 * the depthwise layer (few-filters effect, Fig. 12).
 *
 * @param stopped_out layers the modeled stoppage switched off
 */
double
blockModeledSpeedup(int64_t c_in, int64_t expand_factor, int64_t hw,
                    const HitMix &dw_mix, uint64_t &base_out,
                    uint64_t &step_out, std::string &stopped_out)
{
    const int64_t mid = c_in * expand_factor;
    const LayerShape layers[3] = {
        LayerShape::conv("block.expand", c_in, mid, hw, hw, 1),
        LayerShape::conv("block.dw", mid, mid, hw, hw, 3, 1, 1, mid),
        LayerShape::conv("block.project", mid, c_in, hw, hw, 1),
    };

    AcceleratorConfig base_cfg;
    AcceleratorConfig reuse_cfg;
    reuse_cfg.overlapDetection = OverlapMode::On;
    reuse_cfg.backwardReuse = true;
    reuse_cfg.weightGradReuse = true;
    const auto base_model = sim::CostModel::create(base_cfg);
    const auto reuse_model = sim::CostModel::create(reuse_cfg);

    uint64_t base = 0, step = 0;
    stopped_out.clear();
    for (const LayerShape &shape : layers) {
        // Pointwise layers hash channel-spanning vectors (the
        // pointwise-as-FC mapping); the depthwise layer reuses the
        // functionally measured per-channel mix.
        const HitMix mix =
            shape.kernel == 1
                ? pointwiseMix(std::min<int64_t>(hw * hw, 512),
                               shape.inChannels, kSeed + shape.inChannels)
                : dw_mix;
        const uint64_t layer_base =
            base_model->baselineCycles(shape, 1) * 3;
        uint64_t layer_step =
            reuse_model->layerCost(shape, 1, mix, kBits).mercuryTotal() +
            reuse_model
                ->backwardCost(shape, 1, mix, kBits,
                               /*include_weight_grad=*/true)
                .mercuryTotal();
        if (layer_step >= layer_base) {
            // §III-D stoppage: detection off, all three passes exact.
            layer_step = layer_base;
            if (!stopped_out.empty())
                stopped_out += ", ";
            stopped_out += shape.name;
        }
        base += layer_base;
        step += layer_step;
    }
    base_out = base;
    step_out = step;
    return static_cast<double>(base) / static_cast<double>(step);
}

} // namespace

int
main()
{
    using namespace mercury;
    const bool smoke = bench::smoke();

    // MobileNet-style middle-of-network shapes: a depthwise 3x3 (one
    // filter per channel pass — the degenerate FilterPassSet) and a
    // ResNeXt-style grouped 3x3. Smoke mode shrinks both to toys.
    const Workload depthwise{"dw",
                             smoke ? "smoke-dw-conv" : "dw-conv-32x16x16",
                             smoke ? 8 : 32,
                             smoke ? 8 : 32,
                             smoke ? 8 : 32,
                             smoke ? 8 : 16};
    const Workload grouped{"grouped",
                           smoke ? "smoke-grouped-conv"
                                 : "grouped-conv-32x16x16-g4",
                           smoke ? 8 : 32,
                           smoke ? 8 : 32,
                           smoke ? 4 : 4,
                           smoke ? 8 : 16};

    const int env_threads = bench::benchThreads();
    const int threads = env_threads
                            ? ThreadPool::resolveThreads(env_threads)
                            : std::max(4, ThreadPool::resolveThreads(0));
    const OverlapMode omode = bench::benchOverlap(OverlapMode::Auto);
    std::printf("micro_runtime: grouped/depthwise conv training step "
                "through ReuseRuntime\n");
    std::printf("(MCACHE %dx%d, %d versions, %d-bit signatures; "
                "threads %d on %d hw)\n\n",
                kSets, kWays, kVersions, kBits, threads,
                ThreadPool::resolveThreads(0));

    PipelineConfig base_pipe;
    base_pipe.blockRows = 64;
    base_pipe.shards = 4;
    base_pipe.threads = threads;

    // What an Auto policy resolves to on the grouped workload's
    // channel pass (oh*ow rows) — recorded in the config block.
    PipelineConfig probe_pipe = base_pipe;
    probe_pipe.overlap = omode;
    const OverlapMode resolved =
        probe_pipe.resolvedOverlapFor(grouped.hw * grouped.hw);

    StepResult dw, grp;
    if (!runWorkload(depthwise, base_pipe, omode, dw))
        return 1;
    if (!runWorkload(grouped, base_pipe, omode, grp))
        return 1;

    // Workload-level view: the whole inverted-residual block, with
    // the depthwise layer's few-filters loss priced in against the
    // pointwise layers' FC-mapped wins.
    uint64_t block_base = 0, block_step = 0;
    std::string stopped;
    const double block_speedup = blockModeledSpeedup(
        smoke ? 8 : 32, 2, smoke ? 8 : 16,
        dw.hit_frac > 0 ? HitMix::fromFractions(256, dw.hit_frac)
                        : HitMix::fromFractions(256, 0.0),
        block_base, block_step, stopped);
    Table block("inverted-residual block — modeled full training step");
    block.header({"view", "baseline", "runtime", "speedup"});
    block.row({"modeled cycles", std::to_string(block_base),
               std::to_string(block_step),
               Table::num(block_speedup, 2) + "x"});
    block.print();
    std::printf("block step speedup %.3fx; stoppage disabled detection "
                "on: %s (raw depthwise-layer step %.3fx — the Fig. 12 "
                "few-filters effect §III-D catches)\n\n",
                block_speedup,
                stopped.empty() ? "none" : stopped.c_str(),
                dw.model_speedup);

    // The pointwise layers dominate the block's MACs, so the block
    // step must stay above 1x with the depthwise loss included; hold
    // that as the bench's own acceptance bar (the 5% regression gate
    // rides on the committed JSON baselines).
    if (!smoke && block_speedup <= 1.0) {
        std::fprintf(stderr,
                     "FATAL: modeled block step speedup %.3fx fell to "
                     "or below 1x\n",
                     block_speedup);
        return 1;
    }

    bench::ResultLine line("BENCH_overlap.json", "micro_runtime");
    line.text("layer",
              smoke ? "smoke-inverted-residual" : "inverted-residual-32")
        .num("hit_frac", dw.hit_frac, 3)
        .num("model_dw_step_speedup", dw.model_speedup, 3)
        .integer("model_dw_base_cycles",
                 static_cast<long long>(dw.model_base_cycles))
        .integer("model_dw_step_cycles",
                 static_cast<long long>(dw.model_step_cycles))
        .num("grouped_hit_frac", grp.hit_frac, 3)
        .num("model_grouped_step_speedup", grp.model_speedup, 3)
        .integer("model_grouped_base_cycles",
                 static_cast<long long>(grp.model_base_cycles))
        .integer("model_grouped_step_cycles",
                 static_cast<long long>(grp.model_step_cycles))
        .num("wall_dw_step_speedup", dw.wall_speedup, 3)
        .num("wall_dw_step_median_ms", dw.wall_runtime.median * 1e3, 1)
        .integer("dw_stopped", dw.stopped ? 1 : 0)
        .num("wall_grouped_step_speedup", grp.wall_speedup, 3)
        .num("wall_grouped_step_median_ms",
             grp.wall_runtime.median * 1e3, 1)
        .integer("grouped_stopped", grp.stopped ? 1 : 0)
        .integer("model_block_base_cycles",
                 static_cast<long long>(block_base))
        .integer("model_block_step_cycles",
                 static_cast<long long>(block_step))
        .speedups(block_speedup, grp.wall_speedup)
        .config("bits", kBits)
        .config("threads", threads)
        .config("blockRows", base_pipe.blockRows)
        .config("shards", base_pipe.shards)
        .config("overlap", overlapModeName(omode))
        .config("overlap_resolved", overlapModeName(resolved));
    bench::stdConfig(line);
    line.print();
    return 0;
}
