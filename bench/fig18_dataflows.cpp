/**
 * @file
 * Figure 18: MERCURY deployed on the input-stationary (a) and
 * weight-stationary (b) dataflows for the eleven CNN models.
 */

#include "bench_common.hpp"

int
main()
{
    using namespace mercury;
    bench::banner("Figure 18: input- and weight-stationary dataflows",
                  "IS: avg 1.55x (max 1.72x on VGG-19); WS: avg 1.66x "
                  "(max 1.89x on ResNet101)");

    bench::RunParams params;
    params.batches = 2;
    params.warmup = 4;

    for (auto kind : {DataflowKind::InputStationary,
                      DataflowKind::WeightStationary}) {
        AcceleratorConfig cfg;
        cfg.dataflow = kind;
        std::printf("timing backend: %s (MERCURY_SIM_BACKEND)\n\n",
                    sim::resolvedBackendName(cfg));
        Table t(std::string("Fig. 18: speedup, ") + dataflowName(kind));
        t.header({"model", "speedup"});
        std::vector<double> speedups;
        std::string best_model;
        double best = 0;
        for (const auto &model : cnnModels()) {
            const TrainingReport rep =
                bench::runModel(model, cfg, params);
            t.row({model.name, Table::num(rep.speedup(), 2)});
            speedups.push_back(rep.speedup());
            if (rep.speedup() > best) {
                best = rep.speedup();
                best_model = model.name;
            }
        }
        t.row({"geomean", Table::num(geomean(speedups), 2)});
        t.print();
        std::printf("best: %.2fx on %s\n\n", best, best_model.c_str());
    }
    return 0;
}
