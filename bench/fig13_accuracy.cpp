/**
 * @file
 * Figure 13: validation accuracy of MERCURY-trained models vs the
 * baseline. Full-size ImageNet training is out of scope (see
 * DESIGN.md); each of the twelve families is represented by a
 * scaled-down proxy trained on a synthetic classification set, once
 * exactly and once through the functional reuse engines with
 * identical seeds.
 */

#include "bench_common.hpp"
#include "models/proxies.hpp"
#include "workloads/synthetic.hpp"

int
main()
{
    using namespace mercury;
    bench::banner("Figure 13: validation accuracy, MERCURY vs baseline",
                  "average accuracy drop 0.7%; comparable to baseline "
                  "for all twelve models");

    const int kClasses = 4;
    const int kEpochs = 6;
    const float kLr = 0.03f;

    Table t("Fig. 13: validation accuracy (%)");
    t.header({"model", "baseline", "mercury", "delta"});
    std::vector<double> deltas;
    for (const auto &family : proxyFamilies()) {
        Dataset train, val;
        if (proxyUsesTokens(family)) {
            train = makeTokenDataset(64, kClasses, kProxySeqLen,
                                     kProxyEmbedDim, 301);
            val = makeTokenDataset(32, kClasses, kProxySeqLen,
                                   kProxyEmbedDim, 302);
        } else {
            train = makeImageDataset(64, kClasses, kProxyImageChannels,
                                     kProxyImageHw, 303);
            val = makeImageDataset(32, kClasses, kProxyImageChannels,
                                   kProxyImageHw, 304);
        }

        Rng rng_base(1000);
        auto base = buildProxy(family, rng_base, kClasses);
        for (int e = 0; e < kEpochs; ++e)
            base->trainBatch(train.inputs, train.labels, kLr);
        const double base_acc =
            100.0 * base->accuracy(val.inputs, val.labels);

        Rng rng_merc(1000);
        auto merc = buildProxy(family, rng_merc, kClasses);
        // 28-bit signatures: at proxy scale (9-dim windows) the
        // paper's 20-bit default is looser than on 224x224 models,
        // so the context uses the adaptive controller's grown length.
        MercuryContext ctx(28);
        for (int e = 0; e < kEpochs; ++e)
            merc->trainBatch(train.inputs, train.labels, kLr, &ctx);
        const double merc_acc =
            100.0 * merc->accuracy(val.inputs, val.labels, &ctx);

        deltas.push_back(base_acc - merc_acc);
        t.row({family, Table::num(base_acc, 1), Table::num(merc_acc, 1),
               Table::num(base_acc - merc_acc, 1)});
    }
    t.print();
    std::printf("average accuracy drop: %.2f%% (paper: 0.7%%)\n\n",
                mean(deltas));
    return 0;
}
