/**
 * @file
 * Figure 17: comparative analysis — (a) MERCURY vs UCNN with 6/7/8-bit
 * quantization, (b) vs unlimited zero pruning, (c) vs unlimited
 * similarity detection. All comparison points are maximum-achievable
 * bounds, as in the paper (§VII-D).
 */

#include "baselines/ucnn.hpp"
#include "baselines/unlimited_similarity.hpp"
#include "baselines/zero_pruning.hpp"
#include "bench_common.hpp"

int
main()
{
    using namespace mercury;
    bench::banner("Figure 17: MERCURY vs UCNN / zero pruning / "
                  "unlimited similarity",
                  "MERCURY beats UCNN-7/8bit, comparable to 6-bit; +4% "
                  "vs unlimited zero pruning; +2% vs unlimited "
                  "similarity");

    AcceleratorConfig cfg;
    bench::RunParams params;
    params.batches = 2;
    params.warmup = 4;

    Table a("Fig. 17a: speedup vs UCNN quantization bounds");
    a.header({"model", "UCNN-6bit", "UCNN-7bit", "UCNN-8bit", "MERCURY"});
    Table b("Fig. 17b: speedup vs unlimited zero pruning");
    b.header({"model", "zero-prune(in+w)", "MERCURY"});
    Table c("Fig. 17c: speedup vs unlimited similarity detection");
    c.header({"model", "similarity(in+w)", "MERCURY"});

    std::vector<double> merc, u6, u7, u8, zp, us;
    for (const auto &model : allModels()) {
        const double mercury_speedup =
            bench::runModel(model, cfg, params).speedup();
        const double ucnn6 = ucnnBound(model, 6, 77).speedupBound;
        const double ucnn7 = ucnnBound(model, 7, 77).speedupBound;
        const double ucnn8 = ucnnBound(model, 8, 77).speedupBound;
        const double zero = zeroPruningModelBound(model, 78);
        const double sim = unlimitedSimilarityModelBound(model, 79);

        merc.push_back(mercury_speedup);
        u6.push_back(ucnn6);
        u7.push_back(ucnn7);
        u8.push_back(ucnn8);
        zp.push_back(zero);
        us.push_back(sim);

        a.row({model.name, Table::num(ucnn6, 2), Table::num(ucnn7, 2),
               Table::num(ucnn8, 2), Table::num(mercury_speedup, 2)});
        b.row({model.name, Table::num(zero, 2),
               Table::num(mercury_speedup, 2)});
        c.row({model.name, Table::num(sim, 2),
               Table::num(mercury_speedup, 2)});
    }
    auto add_geo = [](Table &t, std::vector<std::vector<double>*> cols) {
        std::vector<std::string> row{"geomean"};
        for (auto *c : cols)
            row.push_back(Table::num(geomean(*c), 2));
        t.row(row);
    };
    add_geo(a, {&u6, &u7, &u8, &merc});
    add_geo(b, {&zp, &merc});
    add_geo(c, {&us, &merc});
    a.print();
    b.print();
    c.print();

    std::printf("MERCURY vs zero-pruning bound: %+.1f%% "
                "(paper: +4%%)\n",
                100.0 * (geomean(merc) / geomean(zp) - 1.0));
    std::printf("MERCURY vs unlimited-similarity bound: %+.1f%% "
                "(paper: +2%%)\n\n",
                100.0 * (geomean(merc) / geomean(us) - 1.0));
    return 0;
}
