/**
 * @file
 * google-benchmark microbenchmarks of the MERCURY core primitives:
 * RPQ signature generation, MCACHE lookup/insert, the similarity
 * detection pass, and the reuse-enabled convolution against the exact
 * convolution.
 */

#include <benchmark/benchmark.h>

#include "core/conv_reuse_engine.hpp"
#include "core/mcache.hpp"
#include "core/rpq.hpp"
#include "core/similarity_detector.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace mercury {
namespace {

void
BM_RpqSignature(benchmark::State &state)
{
    const int64_t dim = state.range(0);
    const int bits = static_cast<int>(state.range(1));
    RPQEngine rpq(dim, bits, 1);
    std::vector<float> v(static_cast<size_t>(dim));
    Rng rng(2);
    for (auto &x : v)
        x = static_cast<float>(rng.normal());
    for (auto _ : state) {
        Signature s = rpq.signatureOf(v.data(), bits);
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RpqSignature)
    ->Args({9, 20})
    ->Args({9, 64})
    ->Args({49, 20})
    ->Args({256, 32});

void
BM_McacheLookup(benchmark::State &state)
{
    MCache cache(64, 16, 4);
    RPQEngine rpq(16, 32, 3);
    Rng rng(4);
    std::vector<Signature> sigs;
    for (int i = 0; i < 1024; ++i) {
        std::vector<float> v(16);
        for (auto &x : v)
            x = static_cast<float>(rng.normal());
        sigs.push_back(rpq.signatureOf(v.data(), 32));
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookupOrInsert(sigs[i]));
        if (++i == sigs.size()) {
            i = 0;
            state.PauseTiming();
            cache.clear();
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_McacheLookup);

void
BM_DetectionPass(benchmark::State &state)
{
    const int64_t vectors = state.range(0);
    Tensor rows = prototypeVectors(vectors, 9, vectors / 4, 0.01f, 5);
    MCache cache(64, 16, 1);
    RPQEngine rpq(9, 32, 6);
    SimilarityDetector det(rpq, cache, 20);
    for (auto _ : state) {
        DetectionResult res = det.detect(rows);
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(state.iterations() * vectors);
}
BENCHMARK(BM_DetectionPass)->Arg(196)->Arg(784);

void
BM_ConvExact(benchmark::State &state)
{
    Rng rng(7);
    Tensor in({1, 8, 16, 16});
    in.fillNormal(rng);
    Tensor w({16, 8, 3, 3});
    w.fillNormal(rng);
    ConvSpec spec;
    spec.inChannels = 8;
    spec.outChannels = 16;
    spec.kernelH = spec.kernelW = 3;
    spec.pad = 1;
    for (auto _ : state) {
        Tensor out = conv2dForward(in, w, Tensor(), spec);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_ConvExact);

void
BM_ConvWithReuse(benchmark::State &state)
{
    Rng rng(8);
    Dataset ds = makeImageDataset(1, 2, 8, 16, 9, 0.02f);
    Tensor w({16, 8, 3, 3});
    w.fillNormal(rng);
    ConvSpec spec;
    spec.inChannels = 8;
    spec.outChannels = 16;
    spec.kernelH = spec.kernelW = 3;
    spec.pad = 1;
    MCache cache(64, 16, 4);
    ConvReuseEngine engine(cache, 20, 10);
    for (auto _ : state) {
        ReuseStats stats;
        Tensor out = engine.forward(ds.inputs, w, Tensor(), spec, stats);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_ConvWithReuse);

} // namespace
} // namespace mercury

BENCHMARK_MAIN();
