/**
 * @file
 * Figure 14: overall MERCURY performance on the row-stationary
 * machine across the twelve models — (a) layers with similarity
 * detection on/off after adaptation, (b) computational cycle
 * breakdown (signature vs layer computation), (c) speedup.
 */

#include "bench_common.hpp"

int
main()
{
    using namespace mercury;
    bench::banner("Figure 14: adaptivity, cycle breakdown, speedup",
                  "average speedup 1.97x; signatures a small fraction "
                  "of cycles; bigger networks save more");

    AcceleratorConfig cfg; // row-stationary, 1024-entry 16-way MCACHE
    std::printf("timing backend: %s (MERCURY_SIM_BACKEND)\n\n",
                sim::resolvedBackendName(cfg));
    bench::RunParams params;

    Table a("Fig. 14a: similarity detection on/off per model");
    a.header({"model", "layers-on", "layers-off"});
    Table b("Fig. 14b: cycle breakdown (millions of cycles)");
    b.header({"model", "base-compute", "merc-signature", "merc-compute",
              "merc-total"});
    Table c("Fig. 14c: speedup over baseline");
    c.header({"model", "speedup"});

    std::vector<double> speedups;
    for (const auto &model : allModels()) {
        const TrainingReport rep = bench::runModel(model, cfg, params);
        a.row({model.name, std::to_string(rep.layersOn),
               std::to_string(rep.layersOff)});
        b.row({model.name,
               Table::num(static_cast<double>(rep.totals.baseline) / 1e6,
                          0),
               Table::num(static_cast<double>(rep.totals.signature) / 1e6,
                          0),
               Table::num(static_cast<double>(rep.totals.computation +
                                              rep.totals.cacheOverhead) /
                              1e6,
                          0),
               Table::num(static_cast<double>(rep.totals.mercuryTotal()) /
                              1e6,
                          0)});
        c.row({model.name, Table::num(rep.speedup(), 2)});
        speedups.push_back(rep.speedup());
    }
    a.print();
    b.print();
    c.print();
    std::printf("geomean speedup: %.2fx (paper: 1.97x average)\n\n",
                geomean(speedups));
    return 0;
}
