/**
 * @file
 * Serving bench: synthetic many-client traffic against MercuryServer.
 *
 * Two phases:
 *  - Latency/throughput: concurrent client threads replay correlated
 *    per-tenant request streams (workloads/synthetic TrafficGenerator
 *    — the same deterministic source tests/test_serve verifies) and
 *    record per-job p50/p95/p99 tail latency plus aggregate
 *    throughput. Wall-clock keys: host-dependent, never gated.
 *  - Warm-vs-cold hit rate: the same traffic replayed serially on a
 *    cold server and on one warm-started from the cold run's
 *    snapshot. Deterministic, so the modeled warm-over-cold speedup
 *    is a gated regression key: it is the measurable claim that a
 *    persistent MCACHE beats a cold start on correlated traffic.
 *
 * Emits one `BENCH_serve.json {...}` line (tools/check_bench.py).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "nn/layers.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace mercury {
namespace bench {
namespace {

struct Shape
{
    int tenants;
    int64_t requestsPerTenant;
    int64_t batch;
    int64_t dim;
    int classes;
    int64_t hidden;
};

Shape
shapeFor(bool smoke_mode)
{
    if (smoke_mode)
        return {2, 4, 16, 32, 4, 24};
    return {8, 32, 64, 64, 8, 48};
}

ServeConfig
serverFor(const Shape &sh)
{
    ServeConfig cfg;
    cfg.cacheMode = CacheMode::PerTenant;
    cfg.signatureBits = 16;
    cfg.sets = 256;
    cfg.ways = 16;
    cfg.dataVersions = 2;
    cfg.maxSessions = sh.tenants;
    cfg.evictionWindow = 0; // monotone warm-up: the snapshot keeps all
    cfg.modelFactory = [sh](int tenant) {
        Rng rng(9000 + static_cast<uint64_t>(tenant));
        auto net = std::make_unique<Network>();
        net->add(std::make_unique<DenseLayer>(sh.dim, sh.hidden, rng,
                                              /*layer_id=*/1));
        net->add(std::make_unique<ReluLayer>());
        net->add(std::make_unique<DenseLayer>(sh.hidden, sh.classes,
                                              rng, /*layer_id=*/2));
        return net;
    };
    return cfg;
}

TrafficConfig
trafficFor(const Shape &sh)
{
    TrafficConfig tc;
    tc.tenants = sh.tenants;
    tc.requestsPerTenant = sh.requestsPerTenant;
    tc.batch = sh.batch;
    tc.dim = sh.dim;
    tc.classes = sh.classes;
    tc.temporalCorr = 0.7;
    // Enough scatter that the hit fraction sits mid-band: the gated
    // warm-over-cold ratio stays off the 1/(1-h) asymptote where a
    // one-row mix shift would swing it.
    tc.noise = 0.35f;
    tc.driftNoise = 0.02f;
    tc.seed = 4242;
    return tc;
}

JobRequest
jobOf(const TrafficRequest &req)
{
    JobRequest job;
    job.kind = req.index % 2 == 0 ? JobRequest::Kind::Train
                                  : JobRequest::Kind::Inference;
    job.rows = req.rows;
    job.labels = req.labels;
    job.lr = 0.02f;
    return job;
}

double
percentileMs(std::vector<double> sorted_us, double p)
{
    if (sorted_us.empty())
        return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted_us.size() - 1) + 0.5);
    return sorted_us[std::min(idx, sorted_us.size() - 1)] / 1000.0;
}

/** One concurrent replay; fills per-job latencies, returns seconds. */
double
concurrentReplay(const ServeConfig &cfg, const TrafficConfig &tc,
                 std::vector<double> &latencies_us,
                 int64_t &rejected)
{
    MercuryServer server(cfg);
    std::vector<std::vector<double>> per_tenant(
        static_cast<size_t>(tc.tenants));
    std::vector<int64_t> tenant_rejects(
        static_cast<size_t>(tc.tenants));

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int t = 0; t < tc.tenants; ++t) {
        clients.emplace_back([&, t] {
            TrafficGenerator gen(tc);
            SessionHandle session = server.connect(t);
            for (int64_t i = 0; i < tc.requestsPerTenant; ++i) {
                const JobRequest job = jobOf(gen.next(t));
                const auto j0 = std::chrono::steady_clock::now();
                std::shared_ptr<JobTicket> ticket;
                for (;;) {
                    SubmitStatus st = session.submit(job);
                    if (st.accepted) {
                        ticket = st.ticket;
                        break;
                    }
                    ++tenant_rejects[static_cast<size_t>(t)];
                    std::this_thread::sleep_for(
                        std::chrono::duration<double, std::milli>(
                            st.retryAfterMs));
                }
                ticket->wait();
                const std::chrono::duration<double, std::micro> dt =
                    std::chrono::steady_clock::now() - j0;
                per_tenant[static_cast<size_t>(t)].push_back(
                    dt.count());
            }
            session.disconnect();
        });
    }
    for (auto &c : clients)
        c.join();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;

    latencies_us.clear();
    rejected = 0;
    for (int t = 0; t < tc.tenants; ++t) {
        auto &v = per_tenant[static_cast<size_t>(t)];
        latencies_us.insert(latencies_us.end(), v.begin(), v.end());
        rejected += tenant_rejects[static_cast<size_t>(t)];
    }
    return wall.count();
}

/** Serial replay totals over one server (deterministic). */
struct ReplayTotals
{
    int64_t vectors = 0;
    int64_t hits = 0;
    uint64_t macsTotal = 0;
    uint64_t macsSkipped = 0;
    int64_t planLookups = 0;
    int64_t planHits = 0;
    uint64_t modeledBaseline = 0; ///< JobResult::modeledBaselineCycles
    uint64_t modeledMercury = 0;  ///< JobResult::modeledMercuryCycles

    void add(const ReuseStats &s)
    {
        vectors += s.mix.vectors;
        hits += s.mix.hit;
        macsTotal += s.macsTotal;
        macsSkipped += s.macsSkipped;
    }

    double hitFrac() const
    {
        return vectors ? static_cast<double>(hits) /
                             static_cast<double>(vectors)
                       : 0.0;
    }

    /**
     * Modeled accelerator speedup from the hit mix: on the paper's
     * accelerator a HIT's vector is served from the MCACHE data
     * slots, so its compute is skipped. (The software path computes
     * cross-pass HITs exactly — macsSkipped only counts intra-pass
     * skips — so the mix, not macsSkipped, is the cross-request
     * metric.)
     */
    double modelSpeedup() const
    {
        const int64_t kept = vectors - hits;
        return kept > 0 ? static_cast<double>(vectors) /
                              static_cast<double>(kept)
                        : 1.0;
    }

    /** Baseline / MERCURY cycles of the jobs' modeled steps, under
     *  the server's sim::CostModel backend (ServeConfig::sim). */
    double jobStepSpeedup() const
    {
        return modeledMercury > 0 ? static_cast<double>(modeledBaseline) /
                                        static_cast<double>(modeledMercury)
                                  : 1.0;
    }
};

/** The next `n` requests of every tenant's stream, as jobs. */
std::vector<std::vector<JobRequest>>
pullSegment(TrafficGenerator &gen, int64_t n)
{
    std::vector<std::vector<JobRequest>> seg(
        static_cast<size_t>(gen.config().tenants));
    for (int t = 0; t < gen.config().tenants; ++t)
        for (int64_t i = 0; i < n; ++i)
            seg[static_cast<size_t>(t)].push_back(jobOf(gen.next(t)));
    return seg;
}

ReplayTotals
playSegment(MercuryServer &server,
            const std::vector<std::vector<JobRequest>> &segment)
{
    ReplayTotals totals;
    for (size_t t = 0; t < segment.size(); ++t) {
        SessionHandle session = server.connect(static_cast<int>(t));
        for (const JobRequest &job : segment[t]) {
            SubmitStatus st = session.submit(job);
            const JobResult &r = st.ticket->wait();
            totals.add(r.forward);
            totals.add(r.backward);
            totals.add(r.weightGrad);
            totals.planLookups += r.planLookups;
            totals.planHits += r.planHits;
            totals.modeledBaseline += r.modeledBaselineCycles;
            totals.modeledMercury += r.modeledMercuryCycles;
        }
        session.disconnect();
    }
    return totals;
}

int
run()
{
    const bool smoke_mode = smoke();
    const Shape sh = shapeFor(smoke_mode);
    const ServeConfig cfg = serverFor(sh);
    const TrafficConfig tc = trafficFor(sh);

    banner("serve_traffic: many-client serving latency + warm-vs-cold "
           "hit rate",
           "persistent MCACHE turns cross-request similarity into "
           "HITs a cold start has to rediscover");

    // ---- Phase 1: concurrent latency / throughput -----------------
    std::vector<double> latencies_us;
    int64_t rejected = 0;
    double wall_s = 0.0;
    const double best_s = bestSeconds([&] {
        wall_s = concurrentReplay(cfg, tc, latencies_us, rejected);
    });
    (void)best_s; // percentiles come from the last replay
    std::sort(latencies_us.begin(), latencies_us.end());
    const int64_t jobs =
        static_cast<int64_t>(tc.tenants) * tc.requestsPerTenant;
    const double throughput =
        wall_s > 0.0 ? static_cast<double>(jobs) / wall_s : 0.0;

    std::printf("%d tenants x %lld requests: p50 %.3f ms, p95 %.3f "
                "ms, p99 %.3f ms, %.1f jobs/s, %lld backpressure "
                "rejections\n",
                tc.tenants,
                static_cast<long long>(tc.requestsPerTenant),
                percentileMs(latencies_us, 0.50),
                percentileMs(latencies_us, 0.95),
                percentileMs(latencies_us, 0.99), throughput,
                static_cast<long long>(rejected));

    // ---- Phase 2: warm vs cold restart (deterministic) ------------
    // Segment A of every tenant's stream warms a server, which then
    // snapshots at "shutdown". Segment B — the continuation of the
    // same streams, i.e. the traffic the restarted service actually
    // faces — is served once by a server warm-started from the
    // snapshot and once by a cold restart. The warm server's MCACHE
    // already holds the streams' history, so it converts segment-B
    // similarity into HITs the cold restart must rediscover.
    TrafficGenerator gen(tc);
    const auto warmup_seg = pullSegment(gen, tc.requestsPerTenant);
    const auto serve_seg = pullSegment(gen, tc.requestsPerTenant);

    Snapshot snap;
    ReplayTotals warmup;
    {
        MercuryServer first_life(cfg);
        warmup = playSegment(first_life, warmup_seg);
        first_life.saveSnapshot(snap);
    }

    MercuryServer warm_server(cfg);
    std::string error;
    if (!warm_server.loadSnapshot(snap, error)) {
        std::printf("FAIL: warm-start load: %s\n", error.c_str());
        return 1;
    }
    const ReplayTotals warm = playSegment(warm_server, serve_seg);

    MercuryServer cold_server(cfg);
    const ReplayTotals cold = playSegment(cold_server, serve_seg);

    // ---- Phase 3: planned execution (plan-cache hit rate) ---------
    // The same cold replay with ServeConfig::planExecution on: the
    // server-wide PlanCache compiles each (shape, config) step plan
    // once and every later bind — across jobs, sessions, and tenants
    // — hits. Planned serving is bit-identical, which the reuse-stat
    // comparison against the unplanned cold replay enforces here.
    ServeConfig plan_cfg = cfg;
    plan_cfg.planExecution = true;
    MercuryServer plan_server(plan_cfg);
    const ReplayTotals planned = playSegment(plan_server, serve_seg);
    if (planned.vectors != cold.vectors || planned.hits != cold.hits ||
        planned.macsTotal != cold.macsTotal ||
        planned.macsSkipped != cold.macsSkipped) {
        std::printf("FAIL: planned serving stats diverged from the "
                    "unplanned replay\n");
        return 1;
    }
    if (planned.planLookups <= 0 ||
        planned.planHits >= planned.planLookups) {
        std::printf("FAIL: plan counters off: %lld hits of %lld "
                    "lookups (want >=1 compile, >0 lookups)\n",
                    static_cast<long long>(planned.planHits),
                    static_cast<long long>(planned.planLookups));
        return 1;
    }
    const double plan_hit_rate =
        static_cast<double>(planned.planHits) /
        static_cast<double>(planned.planLookups);

    std::printf("warm-up segment: hit %.3f\n", warmup.hitFrac());
    std::printf("cold restart:    hit %.3f, modeled speedup %.3f\n",
                cold.hitFrac(), cold.modelSpeedup());
    std::printf("warm restart:    hit %.3f, modeled speedup %.3f\n",
                warm.hitFrac(), warm.modelSpeedup());
    std::printf("planned serving: plan-cache hit rate %.3f over %lld "
                "binds, stats bit-identical\n",
                plan_hit_rate,
                static_cast<long long>(planned.planLookups));

    // Self-check: the warm start must beat the cold restart on the
    // very same traffic.
    if (warm.hits <= cold.hits || warm.hitFrac() <= cold.hitFrac()) {
        std::printf("FAIL: warm start did not beat cold restart\n");
        return 1;
    }

    ResultLine line("BENCH_serve.json", "serve_traffic");
    line.speedups(warm.modelSpeedup(),
                  std::numeric_limits<double>::quiet_NaN());
    line.num("hit_frac", warm.hitFrac(), 3);
    line.num("warmup_hit_frac", warmup.hitFrac(), 3);
    line.num("cold_hit_frac", cold.hitFrac(), 3);
    line.num("warm_hit_frac", warm.hitFrac(), 3);
    line.num("model_cold_speedup", cold.modelSpeedup(), 3);
    line.num("model_warm_speedup", warm.modelSpeedup(), 3);
    line.num("model_warm_over_cold_speedup",
             warm.modelSpeedup() / cold.modelSpeedup(), 3);
    line.num("model_job_step_speedup", warm.jobStepSpeedup(), 3);
    line.num("wall_p50_ms", percentileMs(latencies_us, 0.50), 3);
    line.num("wall_p95_ms", percentileMs(latencies_us, 0.95), 3);
    line.num("wall_p99_ms", percentileMs(latencies_us, 0.99), 3);
    line.num("wall_throughput_jobs_s", throughput, 1);
    line.integer("jobs", jobs);
    line.integer("wall_rejected", rejected);
    line.num("plan_cache_hit_rate", plan_hit_rate, 3);
    line.integer("plan_lookups", planned.planLookups);
    line.config("tenants", tc.tenants);
    line.config("requests_per_tenant", tc.requestsPerTenant);
    line.config("batch", tc.batch);
    line.config("dim", tc.dim);
    line.config("bits", cfg.signatureBits);
    line.config("mode", "per-tenant");
    stdConfig(line);
    line.print();
    return 0;
}

} // namespace
} // namespace bench
} // namespace mercury

int
main()
{
    return mercury::bench::run();
}
