/**
 * @file
 * Ablations of MERCURY's design choices (not a paper figure, but the
 * knobs §III motivates): synchronous vs asynchronous PE-set design,
 * signature-calculation pipelining, initial signature length, and the
 * adaptive per-layer stoppage.
 */

#include "bench_common.hpp"
#include "sim/cycle_model.hpp"

int
main()
{
    using namespace mercury;
    bench::banner("Ablation: MERCURY design choices",
                  "async > sync (§III-C1); pipelining ~2x on signature "
                  "passes (§III-B2); 20-bit signatures balance reuse "
                  "vs overhead; stoppage rescues unprofitable layers");

    bench::RunParams params;
    params.batches = 2;
    params.warmup = 4;

    // 1. Synchronous vs asynchronous PE-set design.
    Table t1("sync vs async design (speedup over baseline)");
    t1.header({"model", "synchronous", "asynchronous"});
    for (const auto &model : {vgg13(), resnet50(), googlenet()}) {
        AcceleratorConfig sync_cfg;
        sync_cfg.asyncDesign = false;
        AcceleratorConfig async_cfg;
        async_cfg.asyncDesign = true;
        t1.row({model.name,
                Table::num(bench::runModel(model, sync_cfg, params)
                               .speedup(),
                           3),
                Table::num(bench::runModel(model, async_cfg, params)
                               .speedup(),
                           3)});
    }
    t1.print();

    // 2. Filter-buffer depth of the async design.
    Table t2("async shared-filter-buffer slots M (VGG-13)");
    t2.header({"M", "speedup"});
    for (int m : {1, 2, 4, 8}) {
        AcceleratorConfig cfg;
        cfg.filterBufferSlots = m;
        t2.row({std::to_string(m),
                Table::num(bench::runModel(vgg13(), cfg, params)
                               .speedup(),
                           3)});
    }
    t2.print();

    // 3. Signature pipelining (pure cycle model, 1024 signatures).
    Table t3("signature pipelining (x = kernel rows)");
    t3.header({"x", "unpipelined-cycles", "pipelined-cycles", "gain"});
    for (uint64_t x : {3u, 5u, 7u}) {
        const uint64_t up = unpipelinedPassCycles(1024, x);
        const uint64_t pp = pipelinedPassCycles(1024, x);
        t3.row({std::to_string(x), std::to_string(up),
                std::to_string(pp),
                Table::num(static_cast<double>(up) /
                               static_cast<double>(pp),
                           2)});
    }
    t3.print();

    // 4. Initial signature length (VGG-13).
    Table t4("initial signature bits (VGG-13)");
    t4.header({"bits", "speedup", "signature-fraction"});
    for (int bits : {8, 12, 20, 32, 48}) {
        AcceleratorConfig cfg;
        cfg.initialSignatureBits = bits;
        const TrainingReport rep = bench::runModel(vgg13(), cfg, params);
        t4.row({std::to_string(bits), Table::num(rep.speedup(), 3),
                Table::num(rep.signatureFraction(), 3)});
    }
    t4.print();

    // 5. Per-layer stoppage on the model that needs it most.
    Table t5("adaptive stoppage (MobNet-V2)");
    t5.header({"stoppage", "speedup", "layers-off"});
    {
        AcceleratorConfig with_cfg; // default T
        const TrainingReport with_stop =
            bench::runModel(mobilenetV2(), with_cfg, params);
        AcceleratorConfig without_cfg;
        without_cfg.stoppageT = 1 << 20; // effectively never
        const TrainingReport without_stop =
            bench::runModel(mobilenetV2(), without_cfg, params);
        t5.row({"enabled", Table::num(with_stop.speedup(), 3),
                std::to_string(with_stop.layersOff)});
        t5.row({"disabled", Table::num(without_stop.speedup(), 3),
                std::to_string(without_stop.layersOff)});
    }
    t5.print();
    return 0;
}
