/**
 * @file
 * sweep_eventsim: the event-driven memory-hierarchy backend
 * (src/sim/event_model/) validated against the closed-form analytic
 * backend and swept over the knobs only an event sim can see.
 *
 *  - Phase 1 (gated, FATAL): analytic-vs-event agreement on the
 *    pinned VGG-13 and MobileNetV2 validation points. Forward-only
 *    configs are compute-bound, so the event replay must land within
 *    kAgreementBand of the closed forms — the structural fields
 *    (fused edges, hidden signature cycles) must match exactly.
 *  - Phase 2: the event backend across the three dataflows (the same
 *    sweep Fig. 18 runs analytically).
 *  - Phase 3: MCACHE x GlobalBuffer sizing at ImageNet scale with the
 *    gradient-replay knobs on and Sampled fidelity — the regime where
 *    record write/replay traffic is real and the analytic model is
 *    silent, i.e. the event backend's own signal.
 *
 * MERCURY_SIM_BACKEND does not change this bench: both backends are
 * constructed explicitly because the comparison is the product.
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/kernels/kernels.hpp"
#include "sim/cost_model.hpp"
#include "sim/event_model/event_model.hpp"

namespace mercury {
namespace bench {
namespace {

/** Max |event - analytic| / analytic on the pinned forward points.
 *  Measured headroom: worst observed deviation is ~0.004 (MobileNetV2
 *  cold-stream stalls); the band is 2.5x that. */
constexpr double kAgreementBand = 0.01;

/** One synthetic channel-pass mix per layer at a fixed hit rate. */
std::vector<HitMix>
mixesFor(const ModelConfig &model, double hit_frac)
{
    std::vector<HitMix> mixes;
    for (const LayerShape &shape : model.layers)
        mixes.push_back(
            HitMix::fromFractions(shape.vectorsPerChannel(), hit_frac));
    return mixes;
}

struct AgreementPoint
{
    sim::CostBreakdown analytic;
    sim::CostBreakdown event;
    double dev = 0.0; ///< planned-cycle deviation
};

AgreementPoint
compareBackends(AcceleratorConfig cfg, const ModelConfig &model,
                double hit_frac, int64_t batch, int sig_bits)
{
    const std::vector<HitMix> mixes = mixesFor(model, hit_frac);
    cfg.sim.backend = SimBackend::Analytic;
    const std::unique_ptr<sim::CostModel> analytic =
        sim::CostModel::create(cfg);
    cfg.sim.backend = SimBackend::Event;
    const std::unique_ptr<sim::CostModel> event =
        sim::CostModel::create(cfg);

    AgreementPoint p;
    p.analytic =
        analytic->stepCost(model.layers, mixes, batch, sig_bits);
    p.event = event->stepCost(model.layers, mixes, batch, sig_bits);
    p.dev = p.analytic.plannedCycles > 0
                ? std::fabs(static_cast<double>(p.event.plannedCycles) -
                            static_cast<double>(p.analytic.plannedCycles)) /
                      static_cast<double>(p.analytic.plannedCycles)
                : 0.0;
    return p;
}

int
run()
{
    const bool smoke_mode = smoke();
    const int64_t batch = smoke_mode ? 2 : 8;
    const int kBits = 20;

    banner("sweep_eventsim: event-driven memory-hierarchy backend",
           "event replay agrees with the closed forms where compute "
           "is the bottleneck, and exposes record-replay / buffer "
           "contention the closed forms cannot see");

    // ---- Phase 1: pinned analytic-vs-event agreement --------------
    Table t1("analytic vs event, forward-only (gated band " +
             std::to_string(kAgreementBand) + ")");
    t1.header({"model", "hit", "analytic-planned", "event-planned",
               "dev", "stall-cyc"});
    double vgg_dev = 0.0, mob_dev = 0.0;
    double vgg_speedup = 0.0, mob_speedup = 0.0;
    struct Point
    {
        const char *name;
        ModelConfig model;
        double hit;
        double *max_dev;
        double *speedup;
    };
    const std::vector<Point> points = {
        {"vgg13", vgg13(), 0.86, &vgg_dev, &vgg_speedup},
        {"vgg13", vgg13(), 0.40, &vgg_dev, nullptr},
        {"mobilenet_v2", mobilenetV2(), 0.86, &mob_dev, &mob_speedup},
        {"mobilenet_v2", mobilenetV2(), 0.40, &mob_dev, nullptr},
    };
    for (const Point &pt : points) {
        AcceleratorConfig cfg; // forward-only: compute-bound regime
        cfg.planExecution = true;
        const AgreementPoint p =
            compareBackends(cfg, pt.model, pt.hit, batch, kBits);
        t1.row({pt.name, Table::num(pt.hit, 2),
                std::to_string(p.analytic.plannedCycles),
                std::to_string(p.event.plannedCycles),
                Table::num(p.dev, 5),
                std::to_string(p.event.memoryStallCycles)});
        *pt.max_dev = std::max(*pt.max_dev, p.dev);
        if (pt.speedup)
            *pt.speedup = p.event.speedup();
        if (p.dev > kAgreementBand) {
            std::printf("FAIL: %s hit=%.2f: event deviates %.5f from "
                        "the analytic backend (band %.3f)\n",
                        pt.name, pt.hit, p.dev, kAgreementBand);
            return 1;
        }
        if (p.event.fusedEdges != p.analytic.fusedEdges ||
            p.event.hiddenSignature != p.analytic.hiddenSignature) {
            std::printf("FAIL: %s hit=%.2f: step structure diverged "
                        "(fused %d vs %d, hidden %llu vs %llu)\n",
                        pt.name, pt.hit, p.event.fusedEdges,
                        p.analytic.fusedEdges,
                        static_cast<unsigned long long>(
                            p.event.hiddenSignature),
                        static_cast<unsigned long long>(
                            p.analytic.hiddenSignature));
            return 1;
        }
    }
    t1.print();

    // ---- Phase 2: dataflow sweep under the event backend ----------
    Table t2("event backend across dataflows (vgg13, hit 0.86)");
    t2.header({"dataflow", "event-speedup", "planned-cycles",
               "stall-cyc"});
    double is_speedup = 0.0, ws_speedup = 0.0;
    for (DataflowKind kind :
         {DataflowKind::RowStationary, DataflowKind::InputStationary,
          DataflowKind::WeightStationary}) {
        AcceleratorConfig cfg;
        cfg.dataflow = kind;
        cfg.sim.backend = SimBackend::Event;
        const std::unique_ptr<sim::CostModel> event =
            sim::CostModel::create(cfg);
        const ModelConfig model = vgg13();
        const sim::CostBreakdown c = event->stepCost(
            model.layers, mixesFor(model, 0.86), batch, kBits);
        t2.row({dataflowName(kind), Table::num(c.speedup(), 3),
                std::to_string(c.plannedCycles),
                std::to_string(c.memoryStallCycles)});
        if (kind == DataflowKind::InputStationary)
            is_speedup = c.speedup();
        if (kind == DataflowKind::WeightStationary)
            ws_speedup = c.speedup();
    }
    t2.print();

    // ---- Phase 3: MCACHE x GlobalBuffer sizing (event-only) -------
    // Gradient replay on: the forward pass writes SignatureRecords
    // and the backward sweep streams them back, so shrinking the
    // global buffer turns record traffic into exposed DRAM stalls.
    // Sampled fidelity replays two passes per layer in full detail
    // and extrapolates — the ImageNet-scale sweep setting.
    Table t3("MCACHE entries x GB capacity (mobilenet_v2, replay on, "
             "Sampled fidelity): stall fraction of planned cycles");
    t3.header({"entries", "gb-27KB", "gb-108KB", "gb-432KB",
               "insert-serial-cyc"});
    const ModelConfig mob = mobilenetV2();
    for (int entries : {512, 1024, 2048}) {
        std::vector<std::string> row{std::to_string(entries)};
        uint64_t insert_serial = 0;
        for (int64_t gb_kb : {27, 108, 432}) {
            AcceleratorConfig cfg;
            cfg.mcacheWays = 16;
            cfg.mcacheSets = std::max(entries / 16, 1);
            cfg.backwardReuse = true;
            cfg.weightGradReuse = true;
            cfg.planExecution = true;
            cfg.sim.backend = SimBackend::Event;
            cfg.sim.fidelity = SimFidelity::Sampled;
            cfg.sim.gbCapacityBytes = gb_kb * 1024;
            const std::unique_ptr<sim::CostModel> event =
                sim::CostModel::create(cfg);
            const sim::CostBreakdown c = event->stepCost(
                mob.layers, mixesFor(mob, 0.86), batch, kBits);
            const double stall_frac =
                c.plannedCycles > 0
                    ? static_cast<double>(c.memoryStallCycles) /
                          static_cast<double>(c.plannedCycles)
                    : 0.0;
            row.push_back(Table::num(stall_frac, 3));
            if (gb_kb == 108)
                insert_serial = c.components.mcache.insertSerialCycles;
        }
        // The MCACHE-sizing lever under replay: more sets drain the
        // MAU insert queues in fewer serial cycles.
        row.push_back(std::to_string(insert_serial));
        t3.row(row);
    }
    t3.print();

    // Per-component stats of the default event configuration, the
    // per-component occupancy/stall view the analytic backend lacks.
    {
        AcceleratorConfig cfg;
        cfg.backwardReuse = true;
        cfg.weightGradReuse = true;
        cfg.sim.backend = SimBackend::Event;
        cfg.sim.fidelity = SimFidelity::Sampled;
        const std::unique_ptr<sim::CostModel> event =
            sim::CostModel::create(cfg);
        const sim::CostBreakdown c = event->stepCost(
            mob.layers, mixesFor(mob, 0.86), batch, kBits);
        std::printf("component stats (mobilenet_v2, replay on):\n");
        c.components.print(c.plannedCycles);
        std::printf("\n");
    }

    // Wall cost of one event-backend step evaluation (vgg13,
    // per-pass fidelity) — the price of the extra fidelity.
    AcceleratorConfig timing_cfg;
    timing_cfg.sim.backend = SimBackend::Event;
    const std::unique_ptr<sim::CostModel> timed =
        sim::CostModel::create(timing_cfg);
    const ModelConfig vgg = vgg13();
    const std::vector<HitMix> vmixes = mixesFor(vgg, 0.86);
    const double step_s = bestSeconds(
        [&] { (void)timed->stepCost(vgg.layers, vmixes, batch, kBits); });
    std::printf("event stepCost(vgg13, batch %lld): %.3f ms per "
                "evaluation\n\n",
                static_cast<long long>(batch), step_s * 1e3);

    ResultLine line("BENCH_eventsim.json", "sweep_eventsim");
    line.speedups(vgg_speedup, std::nan(""));
    line.num("event_vgg13_speedup", vgg_speedup, 3);
    line.num("event_mobilenet_speedup", mob_speedup, 3);
    line.num("event_is_speedup", is_speedup, 3);
    line.num("event_ws_speedup", ws_speedup, 3);
    line.num("event_vgg13_agreement_dev", vgg_dev, 5);
    line.num("event_mobilenet_agreement_dev", mob_dev, 5);
    line.num("event_step_setup_ms", step_s * 1e3, 4);
    line.config("bits", kBits);
    line.config("batch", batch);
    line.config("cpu", kernels::avx2Ops() ? "avx2" : "scalar");
    AcceleratorConfig std_cfg;
    std_cfg.sim.backend = SimBackend::Event;
    stdConfig(line, std_cfg);
    line.print();
    return 0;
}

} // namespace
} // namespace bench
} // namespace mercury

int
main()
{
    return mercury::bench::run();
}
