/**
 * @file
 * Figure 16: impact of MCACHE organization (512 / 1024 / 2048 entries
 * at 8 / 16 / 32 ways) on MERCURY speedup across the twelve models.
 */

#include "bench_common.hpp"

int
main()
{
    using namespace mercury;
    bench::banner("Figure 16: MCACHE organization sweep",
                  "speedup grows with cache size and associativity; "
                  "1024-entry 16-way is the sweet spot (2048 adds "
                  "little)");

    {
        const AcceleratorConfig cfg;
        std::printf("timing backend: %s (MERCURY_SIM_BACKEND)\n\n",
                    sim::resolvedBackendName(cfg));
    }

    bench::RunParams params;
    params.batches = 2;
    params.warmup = 4;
    params.sampleCap = 384;

    const auto models = allModels();
    for (int entries : {512, 1024, 2048}) {
        Table t("Fig. 16: speedup, cache size = " +
                std::to_string(entries) + " entries");
        t.header({"model", "8-way", "16-way", "32-way"});
        std::vector<std::vector<double>> per_way(3);
        for (const auto &model : models) {
            std::vector<std::string> row{model.name};
            int w_idx = 0;
            for (int ways : {8, 16, 32}) {
                AcceleratorConfig cfg;
                cfg.mcacheWays = ways;
                cfg.mcacheSets = std::max(entries / ways, 1);
                const TrainingReport rep =
                    bench::runModel(model, cfg, params);
                row.push_back(Table::num(rep.speedup(), 2));
                per_way[static_cast<size_t>(w_idx++)].push_back(
                    rep.speedup());
            }
            t.row(row);
        }
        std::vector<std::string> geo{"geomean"};
        for (const auto &ws : per_way)
            geo.push_back(Table::num(geomean(ws), 2));
        t.row(geo);
        t.print();
    }
    return 0;
}
