/**
 * @file
 * Table III: resource usage and on-chip power of MERCURY for 64 sets
 * and a sweep of associativities (128 to 1024 entries).
 */

#include "bench_common.hpp"
#include "fpga/resource_model.hpp"

int
main()
{
    using namespace mercury;
    bench::banner("Table III: resources & power vs MCACHE ways (64 sets)",
                  "2 -> 16 ways raises power ~3.98%");

    FpgaModel model;
    Table a("Table III-a: resource usage");
    a.header({"cache-size", "#ways", "slice-LUTs", "slice-registers",
              "block-RAM", "#DSP48E1s"});
    Table b("Table III-b: on-chip power (watt)");
    b.header({"#ways", "clocks", "logic", "signals", "BRAM", "DSPs",
              "static", "total"});
    for (int ways : {2, 4, 8, 16}) {
        const FpgaResources r = model.resources(64, ways);
        a.row({std::to_string(64 * ways), std::to_string(ways),
               Table::num(r.sliceLuts, 0), Table::num(r.sliceRegisters, 0),
               Table::num(r.blockRam, 1), Table::num(r.dsp48, 0)});
        const FpgaPower p = model.power(64, ways);
        b.row({std::to_string(ways), Table::num(p.clocks, 3),
               Table::num(p.logic, 3), Table::num(p.signals, 3),
               Table::num(p.bram, 3), Table::num(p.dsps, 3),
               Table::num(p.staticPower, 3), Table::num(p.total(), 3)});
    }
    a.print();
    b.print();

    const double growth = 100.0 * (model.power(64, 16).total() /
                                       model.power(64, 2).total() -
                                   1.0);
    std::printf("power growth 2->16 ways: %.2f%% (paper: 3.98%%)\n\n",
                growth);
    return 0;
}
