/**
 * @file
 * Figure 3: unique vectors found by (a) RPQ and (b) a Bloom filter as
 * the signature / filter size grows. Setup from §II-A: ten unique
 * dimension-10 vectors, ten epsilon-similar copies of each (110
 * vectors); an ideal detector finds exactly ten uniques.
 */

#include "baselines/bloom_filter.hpp"
#include "bench_common.hpp"
#include "workloads/synthetic.hpp"

int
main()
{
    using namespace mercury;
    bench::banner("Figure 3: unique vectors found by RPQ vs Bloom filter",
                  "short signatures merge distinct vectors; RPQ "
                  "converges to the true 10 at longer signatures, Bloom "
                  "filters remain less precise");

    const int kTrueUniques = 10;
    Tensor rows = prototypeVectors(110, 10, kTrueUniques, 0.004f, 7);

    Table a("Fig. 3a: RPQ");
    a.header({"signature-bits", "unique-vectors-found"});
    for (int bits : {2, 4, 8, 12, 16, 24, 32, 48, 64}) {
        // Average over several projection seeds.
        std::vector<double> found;
        for (uint64_t seed : {11u, 22u, 33u, 44u})
            found.push_back(rpqUniqueCount(rows, bits, seed));
        a.row({std::to_string(bits), Table::num(mean(found), 1)});
    }
    a.print();

    Table b("Fig. 3b: Bloom filter");
    b.header({"filter-bits", "unique-vectors-found"});
    for (int bits : {8, 16, 32, 64, 128, 256, 1024, 4096}) {
        b.row({std::to_string(bits),
               std::to_string(bloomUniqueCount(rows, bits, 3, 0.25f))});
    }
    b.print();

    std::printf("true unique vectors: %d\n\n", kTrueUniques);
    return 0;
}
