/**
 * @file
 * Per-kernel microbenchmark for the runtime-dispatched SIMD layer:
 * times each KernelOps body (scalar vs AVX2 when the host has it) on
 * RPQ-shaped blocks and reports cycles-per-row and GB/s, emitting one
 * BENCH_kernels.json line that tools/check_bench.py gates.
 *
 * Cycles come from the TSC where the target has one (x86); on other
 * targets the cycle columns print as null and only GB/s is gated.
 */

#include <cstdint>
#include <cstdio>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#include "bench_common.hpp"
#include "core/kernels/kernels.hpp"
#include "core/signature.hpp"

using namespace mercury;

namespace {

inline uint64_t
tsc()
{
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    return 0;
#endif
}

struct Meas
{
    double sec = 1e30;    ///< best-of-reps wall seconds
    double cycles = 1e30; ///< best-of-reps TSC delta (0 off-x86)
};

/**
 * Best-of-reps timing with the same rep policy as bench::bestSeconds,
 * recording wall seconds and TSC cycles for the same invocations.
 */
template <typename Fn>
Meas
measure(Fn &&fn, double min_total = 0.2, int min_reps = 5)
{
    if (bench::smoke()) {
        min_total = 0.005;
        min_reps = 2;
    } else if (const int reps = bench::reducedReps()) {
        min_total = 0.0;
        min_reps = reps;
    }
    using clock = std::chrono::steady_clock;
    Meas m;
    double total = 0.0;
    int reps = 0;
    while (reps < min_reps || total < min_total) {
        const uint64_t c0 = tsc();
        const auto t0 = clock::now();
        fn();
        const std::chrono::duration<double> dt = clock::now() - t0;
        const uint64_t c1 = tsc();
        m.sec = std::min(m.sec, dt.count());
        m.cycles = std::min(m.cycles,
                            static_cast<double>(c1 - c0));
        total += dt.count();
        ++reps;
    }
    if (tsc() == 0)
        m.cycles = std::nan("");
    return m;
}

volatile float g_sink; ///< defeats dead-code elimination

} // namespace

int
main()
{
    bench::banner("micro_kernels: SIMD kernel layer, scalar vs AVX2",
                  "wall-clock mechanism (kernel layer is repo "
                  "infrastructure, not a paper figure)");

    const bool smoke = bench::smoke();
    // RPQ-shaped block: d matches a 3x3x32 conv patch, bits matches
    // the overlapped bench's signature width.
    const int64_t nrows = smoke ? 64 : 4096;
    const int64_t d = 288;
    const int bits = 16;
    const int64_t span = smoke ? 4096 : 1 << 20;

    std::mt19937_64 rng(7);
    std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
    std::vector<float> rows(static_cast<size_t>(nrows * d));
    std::vector<float> cols(static_cast<size_t>(d) * bits);
    std::vector<float> inter(static_cast<size_t>(d) * bits);
    for (float &v : rows)
        v = dist(rng);
    for (int n = 0; n < bits; ++n)
        for (int64_t i = 0; i < d; ++i) {
            const float v = dist(rng);
            cols[static_cast<size_t>(n) * d + i] = v;
            inter[static_cast<size_t>(i) * bits + n] = v;
        }
    std::vector<float> proj(static_cast<size_t>(nrows) * bits);
    const int64_t wpr = Signature::wordsFor(bits);
    std::vector<uint64_t> words(static_cast<size_t>(nrows * wpr));
    std::vector<float> src(static_cast<size_t>(span));
    std::vector<float> dst(static_cast<size_t>(span));
    for (float &v : src)
        v = dist(rng);

    const kernels::KernelOps &sc = kernels::scalarOps();
    const kernels::KernelOps *ax = kernels::avx2Ops();

    struct Result
    {
        double cpr_scalar, cpr_avx2; ///< cycles per row
        double gbps;                 ///< active table GB/s
        double speedup;              ///< scalar sec / avx2 sec
    };
    auto run = [&](double bytes, int64_t per_rows, auto &&call) {
        const Meas ms = measure([&] { call(sc); });
        Meas ma;
        ma.sec = std::nan("");
        ma.cycles = std::nan("");
        if (ax)
            ma = measure([&] { call(*ax); });
        Result r;
        r.cpr_scalar = ms.cycles / static_cast<double>(per_rows);
        r.cpr_avx2 = ma.cycles / static_cast<double>(per_rows);
        const double best_sec = ax ? ma.sec : ms.sec;
        r.gbps = bytes / best_sec * 1e-9;
        r.speedup = ax ? ms.sec / ma.sec : std::nan("");
        return r;
    };

    // 1) RPQ projection: the detection front-end's hashing hot loop.
    const Result project = run(
        static_cast<double>(nrows) * (d + bits) * sizeof(float),
        nrows, [&](const kernels::KernelOps &k) {
            k.projectRows(rows.data(), nrows, d, cols.data(),
                          k.wantsInterleaved ? inter.data() : nullptr,
                          bits, bits, proj.data());
            g_sink = proj[0];
        });

    // 2) Sign-pack: projection block -> signature words.
    const Result sigpack = run(
        static_cast<double>(nrows) *
            (bits * sizeof(float) + wpr * sizeof(uint64_t)),
        nrows, [&](const kernels::KernelOps &k) {
            k.signPack(proj.data(), nrows, bits, wpr, words.data());
            g_sink = static_cast<float>(words[0] & 1u);
        });

    // 3) Span copy: coalesced HIT-row forwarding.
    const Result spancopy =
        run(2.0 * span * sizeof(float), span,
            [&](const kernels::KernelOps &k) {
                k.copySpan(dst.data(), src.data(), span);
                g_sink = dst[0];
            });

    // 4) Scatter (axpy): the dX column-scatter / dW rank-1 update body.
    const Result scatter =
        run(3.0 * span * sizeof(float), span,
            [&](const kernels::KernelOps &k) {
                k.axpy(dst.data(), 0.5f, src.data(), span);
                g_sink = dst[0];
            });

    Table t("kernel bodies (best-of-reps)");
    t.header({"kernel", "scalar cyc/row", "avx2 cyc/row", "speedup",
              "GB/s"});
    auto row = [&](const char *name, const Result &r) {
        t.row({name,
               std::isnan(r.cpr_scalar) ? std::string("-")
                                        : Table::num(r.cpr_scalar, 1),
               std::isnan(r.cpr_avx2) ? std::string("-")
                                      : Table::num(r.cpr_avx2, 1),
               std::isnan(r.speedup) ? std::string("-")
                                     : Table::num(r.speedup, 2),
               Table::num(r.gbps, 2)});
    };
    row("rpq_project", project);
    row("sign_pack", sigpack);
    row("span_copy", spancopy);
    row("scatter_axpy", scatter);
    t.print();

    bench::ResultLine line("BENCH_kernels.json", "micro_kernels");
    line.num("project_scalar_cycles_per_row", project.cpr_scalar, 1)
        .num("project_avx2_cycles_per_row", project.cpr_avx2, 1)
        .num("project_speedup", project.speedup, 3)
        .num("project_gbps", project.gbps, 3)
        .num("sigpack_scalar_cycles_per_row", sigpack.cpr_scalar, 1)
        .num("sigpack_avx2_cycles_per_row", sigpack.cpr_avx2, 1)
        .num("sigpack_speedup", sigpack.speedup, 3)
        .num("sigpack_gbps", sigpack.gbps, 3)
        // The span kernels are memory-bound: scalar-vs-AVX2 speedup
        // there is timer noise around 1.0, so only GB/s is recorded
        // (and gated) for them.
        .num("spancopy_gbps", spancopy.gbps, 3)
        .num("scatter_gbps", scatter.gbps, 3)
        .config("cpu", ax ? "avx2" : "scalar")
        .config("rows", nrows)
        .config("d", d)
        .config("bits", bits)
        .config("span", span);
    bench::stdConfig(line);
    line.print();
    return 0;
}
