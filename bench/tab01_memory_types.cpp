/**
 * @file
 * Table I: memory primitive used for each MERCURY component in the
 * Virtex-7 implementation.
 */

#include "bench_common.hpp"
#include "fpga/resource_model.hpp"

int
main()
{
    using namespace mercury;
    bench::banner("Table I: memory types in the MERCURY design",
                  "block memory for buffers/signature table; slice "
                  "registers for MCACHE and per-PE state");

    Table t("Table I");
    t.header({"memory-type", "mercury-components"});
    for (const auto &row : memoryTypeTable())
        t.row({row.memoryType, row.components});
    t.print();
    return 0;
}
