/**
 * @file
 * Microbenchmark of the batched detection pipeline against the scalar
 * SimilarityDetector path: rows/sec of one full detection pass
 * (signature generation + MCACHE probing + hitmap) across vector
 * dimensions and signature lengths. Emits a BENCH_pipeline.json
 * summary line for the d=1152, bits=16 point the acceptance criteria
 * track.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "core/similarity_detector.hpp"
#include "pipeline/detection_frontend.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace mercury;

constexpr int kSets = 64;
constexpr int kWays = 16;
constexpr int64_t kRows = 2048;
constexpr uint64_t kSeed = 99;

/** Best-of-reps wall time of one invocation, in seconds. */
template <typename Fn>
double
bestSeconds(Fn &&fn, double min_total = 0.4, int min_reps = 3)
{
    using clock = std::chrono::steady_clock;
    double best = 1e30, total = 0.0;
    int reps = 0;
    while (reps < min_reps || total < min_total) {
        const auto t0 = clock::now();
        fn();
        const std::chrono::duration<double> dt = clock::now() - t0;
        best = std::min(best, dt.count());
        total += dt.count();
        ++reps;
    }
    return best;
}

struct Point
{
    int64_t dim;
    int bits;
    double scalarRate = 0.0;
    double pipelineRate = 0.0;

    double speedup() const { return pipelineRate / scalarRate; }
};

Point
measure(int64_t dim, int bits)
{
    Point p{dim, bits};
    Tensor rows = prototypeVectors(kRows, dim, kRows / 8, 0.01f,
                                   kSeed + static_cast<uint64_t>(dim),
                                   1.5);

    MCache scalar_cache(kSets, kWays, 1);
    RPQEngine rpq(dim, bits, kSeed);
    SimilarityDetector scalar(rpq, scalar_cache, bits);

    PipelineConfig pipe;
    pipe.blockRows = 64;
    pipe.shards = 4;
    pipe.threads = 0; // auto
    DetectionFrontend frontend(kSets, kWays, 1, bits, kSeed, pipe);

    // The pipeline must reproduce the scalar mix exactly.
    const HitMix ref = scalar.detect(rows).mix();
    const HitMix got = frontend.detect(rows, bits).mix();
    if (ref.hit != got.hit || ref.mau != got.mau || ref.mnu != got.mnu) {
        std::fprintf(stderr,
                     "FATAL: pipeline mix diverges from scalar path at "
                     "d=%lld bits=%d\n",
                     static_cast<long long>(dim), bits);
        std::exit(1);
    }

    const double ts = bestSeconds([&] { scalar.detect(rows); });
    const double tp = bestSeconds([&] { frontend.detect(rows, bits); });
    p.scalarRate = static_cast<double>(kRows) / ts;
    p.pipelineRate = static_cast<double>(kRows) / tp;
    return p;
}

} // namespace

int
main()
{
    using namespace mercury;

    std::printf("micro_pipeline: detection pass rows/sec, scalar "
                "SimilarityDetector vs DetectionPipeline\n");
    std::printf("(rows per pass: %lld, MCACHE %dx%d, threads auto=%d)\n\n",
                static_cast<long long>(kRows), kSets, kWays,
                ThreadPool::resolveThreads(0));

    Table t("detection front-end throughput");
    t.header({"dim", "bits", "scalar-rows/s", "pipeline-rows/s",
              "speedup"});
    Point headline{1152, 16};
    for (const int64_t dim : {int64_t{64}, int64_t{256}, int64_t{1152}}) {
        for (const int bits : {8, 16, 32}) {
            const Point p = measure(dim, bits);
            if (dim == 1152 && bits == 16)
                headline = p;
            t.row({std::to_string(dim), std::to_string(bits),
                   Table::num(p.scalarRate, 0),
                   Table::num(p.pipelineRate, 0),
                   Table::num(p.speedup(), 2) + "x"});
        }
    }
    t.print();

    std::printf("\nBENCH_pipeline.json {\"bench\":\"micro_pipeline\","
                "\"d\":1152,\"bits\":16,\"rows\":%lld,"
                "\"scalar_rows_per_sec\":%.0f,"
                "\"pipeline_rows_per_sec\":%.0f,"
                "\"speedup\":%.2f,\"threads\":%d}\n",
                static_cast<long long>(kRows), headline.scalarRate,
                headline.pipelineRate, headline.speedup(),
                ThreadPool::resolveThreads(0));
    return 0;
}
