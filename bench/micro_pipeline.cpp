/**
 * @file
 * Microbenchmark of the batched detection pipeline against the scalar
 * SimilarityDetector path: rows/sec of one full detection pass
 * (signature generation + MCACHE probing + hitmap) across vector
 * dimensions and signature lengths. Emits a BENCH_pipeline.json
 * summary line for the d=1152, bits=16 point the acceptance criteria
 * track.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/similarity_detector.hpp"
#include "pipeline/detection_frontend.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace mercury;

constexpr int kSets = 64;
constexpr int kWays = 16;
constexpr uint64_t kSeed = 99;

/** 2048 rows normally; a few blocks' worth in the CI smoke run. */
int64_t
benchRows()
{
    return bench::smoke() ? 192 : 2048;
}

struct Point
{
    int64_t dim;
    int bits;
    double scalarRate = 0.0;
    double pipelineRate = 0.0;

    double speedup() const { return pipelineRate / scalarRate; }
};

Point
measure(int64_t dim, int bits)
{
    Point p{dim, bits};
    Tensor rows = prototypeVectors(benchRows(), dim, benchRows() / 8, 0.01f,
                                   kSeed + static_cast<uint64_t>(dim),
                                   1.5);

    MCache scalar_cache(kSets, kWays, 1);
    RPQEngine rpq(dim, bits, kSeed);
    SimilarityDetector scalar(rpq, scalar_cache, bits);

    PipelineConfig pipe;
    pipe.blockRows = 64;
    pipe.shards = 4;
    pipe.threads = 0; // auto
    DetectionFrontend frontend(kSets, kWays, 1, bits, kSeed, pipe);

    // The pipeline must reproduce the scalar mix exactly.
    const HitMix ref = scalar.detect(rows).mix();
    const HitMix got = frontend.detect(rows, bits).mix();
    if (ref.hit != got.hit || ref.mau != got.mau || ref.mnu != got.mnu) {
        std::fprintf(stderr,
                     "FATAL: pipeline mix diverges from scalar path at "
                     "d=%lld bits=%d\n",
                     static_cast<long long>(dim), bits);
        std::exit(1);
    }

    const double ts = bench::bestSeconds([&] { scalar.detect(rows); });
    const double tp = bench::bestSeconds([&] { frontend.detect(rows, bits); });
    p.scalarRate = static_cast<double>(benchRows()) / ts;
    p.pipelineRate = static_cast<double>(benchRows()) / tp;
    return p;
}

} // namespace

int
main()
{
    using namespace mercury;

    std::printf("micro_pipeline: detection pass rows/sec, scalar "
                "SimilarityDetector vs DetectionPipeline\n");
    std::printf("(rows per pass: %lld, MCACHE %dx%d, threads auto=%d)\n\n",
                static_cast<long long>(benchRows()), kSets, kWays,
                ThreadPool::resolveThreads(0));

    Table t("detection front-end throughput");
    t.header({"dim", "bits", "scalar-rows/s", "pipeline-rows/s",
              "speedup"});
    Point headline{1152, 16};
    for (const int64_t dim : {int64_t{64}, int64_t{256}, int64_t{1152}}) {
        for (const int bits : {8, 16, 32}) {
            const Point p = measure(dim, bits);
            if (dim == 1152 && bits == 16)
                headline = p;
            t.row({std::to_string(dim), std::to_string(bits),
                   Table::num(p.scalarRate, 0),
                   Table::num(p.pipelineRate, 0),
                   Table::num(p.speedup(), 2) + "x"});
        }
    }
    t.print();

    std::printf("\n");
    bench::ResultLine line("BENCH_pipeline.json", "micro_pipeline");
    line.integer("d", 1152)
        .integer("rows", static_cast<long long>(benchRows()))
        .num("scalar_rows_per_sec", headline.scalarRate, 0)
        .num("pipeline_rows_per_sec", headline.pipelineRate, 0)
        // Throughput is a wall-clock view; there is no modeled-cycle
        // counterpart for the front-end microbenchmark.
        .speedups(std::nan(""), headline.speedup())
        .config("bits", 16)
        .config("blockRows", 64)
        .config("shards", 4)
        .config("threads", ThreadPool::resolveThreads(0));
    bench::stdConfig(line);
    line.print();
    return 0;
}
