/**
 * @file
 * Shared helpers for the experiment harnesses: a standard way to run
 * a MERCURY training simulation for a model, the paper-style tables,
 * the smoke-mode switch CI uses to exercise bench code on tiny
 * shapes, and the shared BENCH_*.json result schema.
 */

#ifndef MERCURY_BENCH_COMMON_HPP
#define MERCURY_BENCH_COMMON_HPP

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/mercury_accelerator.hpp"
#include "models/model_zoo.hpp"
#include "sim/config.hpp"
#include "sim/cost_model.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/profiles.hpp"

namespace mercury {
namespace bench {

/**
 * Smoke mode (MERCURY_BENCH_SMOKE=1): benches shrink their shapes /
 * repetition counts so CI can run every harness in seconds. Numbers
 * from a smoke run are not meaningful — the mode only proves the
 * bench code still builds, runs, and emits its JSON line.
 */
inline bool
smoke()
{
    const char *env = std::getenv("MERCURY_BENCH_SMOKE");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/**
 * Reduced-rep mode (MERCURY_BENCH_REPS=N): non-smoke runs cap at N
 * repetitions per measurement with no minimum-time requirement. The
 * CI wall-clock step uses this to measure real shapes on multi-core
 * runners in bounded time; the recorded BENCH_*.json numbers still
 * come from full-rep runs. Returns 0 when unset (full reps).
 */
inline int
reducedReps()
{
    const char *env = std::getenv("MERCURY_BENCH_REPS");
    if (env == nullptr || env[0] == '\0')
        return 0;
    const int reps = std::atoi(env);
    return reps > 0 ? reps : 0;
}

/**
 * Thread-count override for wall measurements
 * (MERCURY_BENCH_THREADS=N): the CI smoke-bench steps pin the pool
 * size so auto-overlap resolution is reproducible across runners.
 * Returns 0 when unset (the bench picks its own count).
 */
inline int
benchThreads()
{
    const char *env = std::getenv("MERCURY_BENCH_THREADS");
    if (env == nullptr || env[0] == '\0')
        return 0;
    const int threads = std::atoi(env);
    return threads > 0 ? threads : 0;
}

/**
 * Overlap-policy override (MERCURY_BENCH_OVERLAP=off|on|auto) for the
 * measured "overlapped" configuration. Defaults to `fallback` when
 * unset or unparseable — the recording benches pass
 * OverlapMode::Auto so committed wall numbers reflect the policy a
 * real run would use on the recording host (the resolved decision is
 * in the `config` block); pass `on` to force the streaming path, and
 * CI's threads=2 smoke step passes `auto` to prove the resolver
 * picks serial there.
 */
inline OverlapMode
benchOverlap(OverlapMode fallback)
{
    const char *env = std::getenv("MERCURY_BENCH_OVERLAP");
    if (env == nullptr || env[0] == '\0')
        return fallback;
    const std::string v(env);
    if (v == "off")
        return OverlapMode::Off;
    if (v == "on")
        return OverlapMode::On;
    if (v == "auto")
        return OverlapMode::Auto;
    return fallback;
}

/** Wall-time measurement over repetitions (seconds). */
struct WallTime
{
    double best = 0.0;   ///< fastest repetition
    double median = 0.0; ///< median repetition
    int reps = 0;        ///< repetitions measured
};

/**
 * Wall time of one invocation over repetitions: repeat until both
 * `min_reps` runs and `min_total` seconds have accumulated, and
 * report the fastest AND the median rep. The fastest is the
 * least-noise estimate the recorded speedups use; the median is
 * printed next to it so a wall line where best and median disagree
 * badly is visibly noisy. Smoke mode clamps both knobs so CI runs in
 * seconds; MERCURY_BENCH_REPS=N caps the rep count — one shared
 * definition, so the timing methodology behind every recorded
 * BENCH_*.json stays comparable across benches.
 */
template <typename Fn>
WallTime
wallSeconds(Fn &&fn, double min_total = 0.4, int min_reps = 3)
{
    if (smoke()) {
        min_total = 0.01;
        min_reps = 1;
    } else if (const int reps = reducedReps()) {
        min_total = 0.0;
        min_reps = reps;
    }
    using clock = std::chrono::steady_clock;
    std::vector<double> samples;
    double total = 0.0;
    while (static_cast<int>(samples.size()) < min_reps ||
           total < min_total) {
        const auto t0 = clock::now();
        fn();
        const std::chrono::duration<double> dt = clock::now() - t0;
        samples.push_back(dt.count());
        total += dt.count();
    }
    std::sort(samples.begin(), samples.end());
    WallTime wt;
    wt.best = samples.front();
    wt.median = samples[samples.size() / 2];
    wt.reps = static_cast<int>(samples.size());
    return wt;
}

/** Best-of-reps wall time in seconds (see wallSeconds). */
template <typename Fn>
double
bestSeconds(Fn &&fn, double min_total = 0.4, int min_reps = 3)
{
    return wallSeconds(std::forward<Fn>(fn), min_total, min_reps).best;
}

/**
 * One BENCH_<name>.json summary line in the shared result schema:
 * every microbench emits `bench`, `modeled_speedup`, `wall_speedup`
 * (null where a view does not apply), a nested `config` object with
 * the knobs the run used, plus bench-specific extras. Keeping the
 * shape identical across micro_pipeline / micro_overlap /
 * sweep_tuning keeps the recorded JSON artifacts diffable.
 */
class ResultLine
{
  public:
    /** @param artifact e.g. "BENCH_overlap.json"; bench name key */
    ResultLine(std::string artifact, const std::string &bench)
        : artifact_(std::move(artifact))
    {
        text("bench", bench);
    }

    /** The two schema speedups; NaN prints as null (view missing). */
    ResultLine &speedups(double modeled, double wall)
    {
        num("modeled_speedup", modeled, 3);
        num("wall_speedup", wall, 3);
        return *this;
    }

    ResultLine &num(const std::string &key, double v, int prec = 3)
    {
        if (std::isnan(v))
            return raw(key, "null");
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.*f", prec, v);
        return raw(key, buf);
    }

    ResultLine &integer(const std::string &key, long long v)
    {
        return raw(key, std::to_string(v));
    }

    ResultLine &text(const std::string &key, const std::string &v)
    {
        return raw(key, "\"" + v + "\"");
    }

    /** Knob in the nested `config` object. */
    ResultLine &config(const std::string &key, long long v)
    {
        configRaw(key, std::to_string(v));
        return *this;
    }

    ResultLine &config(const std::string &key, const std::string &v)
    {
        configRaw(key, "\"" + v + "\"");
        return *this;
    }

    /** Print the `ARTIFACT {json}` line the driver greps for. */
    void print() const
    {
        std::printf("%s {%s,\"config\":{%s}}\n", artifact_.c_str(),
                    fields_.c_str(), configFields_.c_str());
    }

  private:
    ResultLine &raw(const std::string &key, const std::string &v)
    {
        if (!fields_.empty())
            fields_ += ",";
        fields_ += "\"" + key + "\":" + v;
        return *this;
    }

    void configRaw(const std::string &key, const std::string &v)
    {
        if (!configFields_.empty())
            configFields_ += ",";
        configFields_ += "\"" + key + "\":" + v;
    }

    std::string artifact_;
    std::string fields_;
    std::string configFields_;
};

/**
 * Standard trailing `config` knobs every bench records: the active
 * sim::CostModel backend (SimConfig::backend after the
 * MERCURY_SIM_BACKEND override — so recorded artifacts say which
 * timing model produced them) and the smoke switch. Call last, after
 * the bench-specific knobs.
 */
inline ResultLine &
stdConfig(ResultLine &line, const AcceleratorConfig &cfg)
{
    return line.config("sim_backend", sim::resolvedBackendName(cfg))
        .config("smoke", smoke() ? 1 : 0);
}

/** stdConfig under the default accelerator configuration — benches
 *  whose measurement has no AcceleratorConfig in scope (the backend
 *  still reflects MERCURY_SIM_BACKEND). */
inline ResultLine &
stdConfig(ResultLine &line)
{
    const AcceleratorConfig cfg;
    return stdConfig(line, cfg);
}

/** Simulation knobs shared by the speedup experiments. */
struct RunParams
{
    int batches = 4;        ///< accounted batches
    int warmup = 6;         ///< adaptation warmup batches
    int64_t batch = 1;      ///< minibatch size (cycles scale linearly)
    int64_t sampleCap = 512;
    int64_t dimCap = 32;
    uint64_t seed = 42;
};

/** Run one model's training simulation under a configuration. */
inline TrainingReport
runModel(const ModelConfig &model, const AcceleratorConfig &cfg,
         const RunParams &params = {})
{
    SyntheticSimilaritySource source(model, cfg, params.seed,
                                     params.sampleCap, params.dimCap);
    MercuryAccelerator acc(cfg, model.layers);
    return acc.train(source, params.batches, params.batch, {},
                     params.warmup);
}

/** Banner naming the paper artifact a harness regenerates. */
inline void
banner(const std::string &what, const std::string &paper_result)
{
    std::printf("==========================================================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Paper reference result: %s\n", paper_result.c_str());
    std::printf("==========================================================\n\n");
}

} // namespace bench
} // namespace mercury

#endif // MERCURY_BENCH_COMMON_HPP
