/**
 * @file
 * Shared helpers for the experiment harnesses: a standard way to run
 * a MERCURY training simulation for a model and to print the
 * paper-style tables.
 */

#ifndef MERCURY_BENCH_COMMON_HPP
#define MERCURY_BENCH_COMMON_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "core/mercury_accelerator.hpp"
#include "models/model_zoo.hpp"
#include "sim/config.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/profiles.hpp"

namespace mercury {
namespace bench {

/** Simulation knobs shared by the speedup experiments. */
struct RunParams
{
    int batches = 4;        ///< accounted batches
    int warmup = 6;         ///< adaptation warmup batches
    int64_t batch = 1;      ///< minibatch size (cycles scale linearly)
    int64_t sampleCap = 512;
    int64_t dimCap = 32;
    uint64_t seed = 42;
};

/** Run one model's training simulation under a configuration. */
inline TrainingReport
runModel(const ModelConfig &model, const AcceleratorConfig &cfg,
         const RunParams &params = {})
{
    SyntheticSimilaritySource source(model, cfg, params.seed,
                                     params.sampleCap, params.dimCap);
    MercuryAccelerator acc(cfg, model.layers);
    return acc.train(source, params.batches, params.batch, {},
                     params.warmup);
}

/** Banner naming the paper artifact a harness regenerates. */
inline void
banner(const std::string &what, const std::string &paper_result)
{
    std::printf("==========================================================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Paper reference result: %s\n", paper_result.c_str());
    std::printf("==========================================================\n\n");
}

} // namespace bench
} // namespace mercury

#endif // MERCURY_BENCH_COMMON_HPP
