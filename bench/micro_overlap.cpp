/**
 * @file
 * Microbenchmark of overlapped detection (streaming per-block
 * hand-off + threaded filter passes) against the run-then-filter
 * baseline, on a VGG13-sized conv layer.
 *
 * Two views of the same question:
 *
 *  1. Functional wall time: ConvReuseEngine end-to-end layer time
 *     with `overlap` off (full detection pass, then serial filter
 *     loops) vs on (filter passes consume the block hand-off on the
 *     worker pool while later blocks hash). Outputs are verified
 *     bit-identical first. Wall-clock gains require spare cores; on a
 *     single-core host the two modes tie.
 *
 *  2. Modeled accelerator cycles (the paper's Fig. 8 metric): the
 *     row-stationary timing model with `overlapDetection` off vs on,
 *     where overlap hides signature generation under PE compute.
 *     This is deterministic and host-independent.
 *
 * Emits a BENCH_overlap.json summary line with both speedups.
 */

#include <chrono>
#include <cstdio>

#include "core/conv_reuse_engine.hpp"
#include "sim/dataflow.hpp"
#include "sim/layer_shape.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace mercury;

constexpr int kSets = 64;
constexpr int kWays = 16;
constexpr int kVersions = 4;
constexpr int kBits = 16;
constexpr uint64_t kSeed = 23;

// VGG13 conv3-level layer at CIFAR scale: 64 -> 64 channels of
// 32x32, 3x3 kernels. Big enough that a channel pass has 1024
// vectors; small enough for a quick functional run.
constexpr int64_t kChannels = 64;
constexpr int64_t kFilters = 64;
constexpr int64_t kHw = 32;

/** Best-of-reps wall time of one invocation, in seconds. */
template <typename Fn>
double
bestSeconds(Fn &&fn, double min_total = 1.0, int min_reps = 3)
{
    using clock = std::chrono::steady_clock;
    double best = 1e30, total = 0.0;
    int reps = 0;
    while (reps < min_reps || total < min_total) {
        const auto t0 = clock::now();
        fn();
        const std::chrono::duration<double> dt = clock::now() - t0;
        best = std::min(best, dt.count());
        total += dt.count();
        ++reps;
    }
    return best;
}

} // namespace

int
main()
{
    using namespace mercury;

    const int threads = std::max(4, ThreadPool::resolveThreads(0));
    std::printf("micro_overlap: overlapped detection vs run-then-filter "
                "on a VGG13-sized conv layer\n");
    std::printf("(layer: %lld ch -> %lld filters, %lldx%lld, 3x3; "
                "MCACHE %dx%d, %d versions; threads %d on %d hw)\n\n",
                static_cast<long long>(kChannels),
                static_cast<long long>(kFilters),
                static_cast<long long>(kHw), static_cast<long long>(kHw),
                kSets, kWays, kVersions, threads,
                ThreadPool::resolveThreads(0));

    Dataset ds = makeImageDataset(1, 2, kChannels, kHw, kSeed, 0.02f);
    Rng rng(kSeed);
    Tensor w({kFilters, kChannels, 3, 3});
    w.fillNormal(rng);
    ConvSpec spec;
    spec.inChannels = static_cast<int>(kChannels);
    spec.outChannels = static_cast<int>(kFilters);
    spec.kernelH = spec.kernelW = 3;
    spec.pad = 1;

    // Same thread count for both modes (at least 4, so the streaming
    // machinery actually engages on small hosts): the measured delta
    // is then the overlap restructuring itself, not pool parallelism
    // in the detection pass.
    PipelineConfig base_pipe;
    base_pipe.blockRows = 128;
    base_pipe.shards = 8;
    base_pipe.threads = threads;

    // --- 1. Functional wall time -----------------------------------
    DetectionFrontend serial_fe(kSets, kWays, kVersions, kBits, kSeed,
                                base_pipe);
    ConvReuseEngine serial(serial_fe, kBits);

    PipelineConfig overlap_pipe = base_pipe;
    overlap_pipe.overlap = true;
    DetectionFrontend overlap_fe(kSets, kWays, kVersions, kBits, kSeed,
                                 overlap_pipe);
    ConvReuseEngine overlapped(overlap_fe, kBits);

    // Identity first: both modes must produce the same layer.
    ReuseStats s_stats, o_stats;
    const Tensor s_out =
        serial.forward(ds.inputs, w, Tensor(), spec, s_stats);
    const Tensor o_out =
        overlapped.forward(ds.inputs, w, Tensor(), spec, o_stats);
    if (!(s_out == o_out) || s_stats.macsSkipped != o_stats.macsSkipped) {
        std::fprintf(stderr, "FATAL: overlapped conv diverges from the "
                             "run-then-filter path\n");
        return 1;
    }

    ReuseStats scratch;
    const double t_serial = bestSeconds(
        [&] { serial.forward(ds.inputs, w, Tensor(), spec, scratch); });
    const double t_overlap = bestSeconds([&] {
        overlapped.forward(ds.inputs, w, Tensor(), spec, scratch);
    });
    const double wall_speedup = t_serial / t_overlap;

    Table wall("functional layer time (one image, all channels)");
    wall.header({"mode", "layer-ms", "hit-frac", "macs-skipped"});
    wall.row({"run-then-filter", Table::num(t_serial * 1e3, 1),
              Table::num(s_stats.mix.hitFraction(), 3),
              std::to_string(s_stats.macsSkipped)});
    wall.row({"overlapped", Table::num(t_overlap * 1e3, 1),
              Table::num(o_stats.mix.hitFraction(), 3),
              std::to_string(o_stats.macsSkipped)});
    wall.print();
    std::printf("wall-clock speedup: %.2fx (needs spare cores; this "
                "host has %d hardware threads)\n\n",
                wall_speedup, ThreadPool::resolveThreads(0));

    // --- 2. Modeled accelerator cycles (Fig. 8) --------------------
    AcceleratorConfig cfg;
    AcceleratorConfig overlap_cfg;
    overlap_cfg.overlapDetection = true;
    const auto serial_df = Dataflow::create(cfg);
    const auto overlap_df = Dataflow::create(overlap_cfg);
    const LayerShape shape = LayerShape::conv(
        "vgg13-conv", kChannels, kFilters, kHw, kHw, 3);
    const HitMix mix = s_stats.mix; // the measured channel mix

    const LayerCycles sc =
        serial_df->mercuryLayerCycles(shape, 1, mix, kBits);
    const LayerCycles oc =
        overlap_df->mercuryLayerCycles(shape, 1, mix, kBits);
    const double model_speedup =
        static_cast<double>(sc.mercuryTotal()) /
        static_cast<double>(oc.mercuryTotal());

    Table model("modeled layer cycles (row-stationary, measured mix)");
    model.header({"mode", "compute", "signature", "cache", "total",
                  "vs-baseline"});
    model.row({"serial detection", std::to_string(sc.computation),
               std::to_string(sc.signature),
               std::to_string(sc.cacheOverhead),
               std::to_string(sc.mercuryTotal()),
               Table::num(sc.speedup(), 2) + "x"});
    model.row({"overlapped (Fig. 8)", std::to_string(oc.computation),
               std::to_string(oc.signature),
               std::to_string(oc.cacheOverhead),
               std::to_string(oc.mercuryTotal()),
               Table::num(oc.speedup(), 2) + "x"});
    model.print();
    std::printf("modeled layer-time speedup from overlap: %.3fx "
                "(signature cycles hidden: %llu of %llu)\n\n",
                model_speedup,
                static_cast<unsigned long long>(sc.signature -
                                                oc.signature),
                static_cast<unsigned long long>(sc.signature));

    std::printf("BENCH_overlap.json {\"bench\":\"micro_overlap\","
                "\"layer\":\"vgg13-conv-64x64-32x32-k3\","
                "\"bits\":%d,\"hit_frac\":%.3f,"
                "\"wall_serial_ms\":%.1f,\"wall_overlap_ms\":%.1f,"
                "\"wall_speedup\":%.2f,"
                "\"model_serial_cycles\":%llu,"
                "\"model_overlap_cycles\":%llu,"
                "\"model_speedup\":%.3f,\"threads\":%d}\n",
                kBits, s_stats.mix.hitFraction(), t_serial * 1e3,
                t_overlap * 1e3, wall_speedup,
                static_cast<unsigned long long>(sc.mercuryTotal()),
                static_cast<unsigned long long>(oc.mercuryTotal()),
                model_speedup, threads);
    return 0;
}
