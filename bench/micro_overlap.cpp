/**
 * @file
 * Microbenchmark of overlapped detection (streaming per-block
 * hand-off + threaded filter passes) against the run-then-filter
 * baseline, on a VGG13-sized conv layer.
 *
 * Two views of the same question:
 *
 *  1. Functional wall time: ConvReuseEngine end-to-end layer time
 *     with `overlap` off (full detection pass, then serial filter
 *     loops) vs on (filter passes consume the block hand-off on the
 *     worker pool while later blocks hash). Outputs are verified
 *     bit-identical first. Wall-clock gains require spare cores; on a
 *     single-core host the two modes tie.
 *
 *  2. Modeled accelerator cycles (the paper's Fig. 8 metric): the
 *     row-stationary timing model with `overlapDetection` off vs on,
 *     where overlap hides signature generation under PE compute.
 *     This is deterministic and host-independent.
 *
 *  3. The backward column (§III-C2): the input-gradient pass with
 *     `backwardReuse` replaying the forward-captured SignatureRecord
 *     — functional wall time of the replayed ConvReuseEngine
 *     backward (through the overlapped engine, so the dX scatter
 *     rides the worker pool in disjoint input-row bands) vs the
 *     exact conv2dBackwardInput, and the modeled backward layer
 *     cycles (replay-only signature charge) vs the no-reuse backward
 *     baseline.
 *
 *  4. The dW column (§III-C2 on Eq. 1): the weight-gradient pass
 *     with `weightGradReuse` replaying the same record by
 *     sum-then-multiply — functional wall time of the overlapped
 *     ConvReuseEngine::backwardWeights (pool-banded patch
 *     extraction) vs the exact conv2dBackwardWeight, and the modeled
 *     dW layer cycles
 *     (owner-only multiplies + per-group accumulates + replay-only
 *     signature charge) vs the no-reuse dW baseline. This closes the
 *     last third of training-cycle MACs: forward, dX, and dW all
 *     ride one captured detection pass.
 *
 * Emits a BENCH_overlap.json summary line in the shared result
 * schema. MERCURY_BENCH_SMOKE=1 shrinks the layer and repetition
 * counts for the CI smoke run; MERCURY_BENCH_REPS=N caps repetitions
 * for the CI wall-clock step; MERCURY_BENCH_THREADS=N pins the pool
 * size and MERCURY_BENCH_OVERLAP=off|on|auto overrides the measured
 * overlap policy (the resolved decision lands in `config`).
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/conv_reuse_engine.hpp"
#include "sim/dataflow.hpp"
#include "sim/layer_shape.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace mercury;

constexpr int kSets = 64;
constexpr int kWays = 16;
constexpr int kVersions = 4;
constexpr int kBits = 16;
constexpr uint64_t kSeed = 23;

} // namespace

int
main()
{
    using namespace mercury;
    const bool smoke = bench::smoke();

    // VGG13 conv3-level layer at CIFAR scale: 64 -> 64 channels of
    // 32x32, 3x3 kernels. Big enough that a channel pass has 1024
    // vectors; small enough for a quick functional run. Smoke mode
    // shrinks it to an 8-channel 8x8 toy so CI just exercises the
    // code paths.
    const int64_t kChannels = smoke ? 8 : 64;
    const int64_t kFilters = smoke ? 8 : 64;
    const int64_t kHw = smoke ? 8 : 32;

    const int env_threads = bench::benchThreads();
    const int threads = env_threads
                            ? ThreadPool::resolveThreads(env_threads)
                            : std::max(4, ThreadPool::resolveThreads(0));
    const OverlapMode omode = bench::benchOverlap(OverlapMode::Auto);
    std::printf("micro_overlap: overlapped detection vs run-then-filter "
                "on a VGG13-sized conv layer\n");
    std::printf("(layer: %lld ch -> %lld filters, %lldx%lld, 3x3; "
                "MCACHE %dx%d, %d versions; threads %d on %d hw)\n\n",
                static_cast<long long>(kChannels),
                static_cast<long long>(kFilters),
                static_cast<long long>(kHw), static_cast<long long>(kHw),
                kSets, kWays, kVersions, threads,
                ThreadPool::resolveThreads(0));

    Dataset ds = makeImageDataset(1, 2, kChannels, kHw, kSeed, 0.02f);
    Rng rng(kSeed);
    Tensor w({kFilters, kChannels, 3, 3});
    w.fillNormal(rng);
    ConvSpec spec;
    spec.inChannels = static_cast<int>(kChannels);
    spec.outChannels = static_cast<int>(kFilters);
    spec.kernelH = spec.kernelW = 3;
    spec.pad = 1;

    // Same thread count for both modes (at least 4, so the streaming
    // machinery actually engages on small hosts): the measured delta
    // is then the overlap restructuring itself, not pool parallelism
    // in the detection pass.
    PipelineConfig base_pipe;
    base_pipe.blockRows = 128;
    base_pipe.shards = 8;
    base_pipe.threads = threads;

    // --- 1. Functional wall time -----------------------------------
    DetectionFrontend serial_fe(kSets, kWays, kVersions, kBits, kSeed,
                                base_pipe);
    ConvReuseEngine serial(serial_fe, kBits);

    PipelineConfig overlap_pipe = base_pipe;
    overlap_pipe.overlap = omode;
    DetectionFrontend overlap_fe(kSets, kWays, kVersions, kBits, kSeed,
                                 overlap_pipe);
    ConvReuseEngine overlapped(overlap_fe, kBits);
    // The channel pass this layer hashes (oh*ow rows) — what an Auto
    // policy resolves against.
    const OverlapMode resolved =
        overlap_pipe.resolvedOverlapFor(kHw * kHw);

    // Identity first: both modes must produce the same layer.
    ReuseStats s_stats, o_stats;
    const Tensor s_out =
        serial.forward(ds.inputs, w, Tensor(), spec, s_stats);
    const Tensor o_out =
        overlapped.forward(ds.inputs, w, Tensor(), spec, o_stats);
    if (!(s_out == o_out) || s_stats.macsSkipped != o_stats.macsSkipped) {
        std::fprintf(stderr, "FATAL: overlapped conv diverges from the "
                             "run-then-filter path\n");
        return 1;
    }

    ReuseStats scratch;
    const bench::WallTime w_serial = bench::wallSeconds(
        [&] { serial.forward(ds.inputs, w, Tensor(), spec, scratch); },
        1.0);
    bench::WallTime w_overlap;
    if (resolved == OverlapMode::On) {
        w_overlap = bench::wallSeconds(
            [&] {
                overlapped.forward(ds.inputs, w, Tensor(), spec, scratch);
            },
            1.0);
    } else {
        // The policy resolved the overlapped configuration to the
        // serial schedule (not enough usable host concurrency or
        // rows to pay the streaming tax), so both engines run the
        // identical code path: wall parity holds by construction
        // rather than by re-timing the same loop.
        w_overlap = w_serial;
        std::printf("overlap policy '%s' resolved to '%s' on this host "
                    "(%d usable hw threads): overlapped schedule is the "
                    "serial schedule, wall parity by construction\n",
                    overlapModeName(omode), overlapModeName(resolved),
                    ThreadPool::resolveThreads(0));
    }
    const double t_serial = w_serial.best;
    const double t_overlap = w_overlap.best;
    const double wall_speedup = t_serial / t_overlap;

    Table wall("functional layer time (one image, all channels)");
    wall.header({"mode", "min-ms", "median-ms", "hit-frac",
                 "macs-skipped"});
    wall.row({"run-then-filter", Table::num(t_serial * 1e3, 1),
              Table::num(w_serial.median * 1e3, 1),
              Table::num(s_stats.mix.hitFraction(), 3),
              std::to_string(s_stats.macsSkipped)});
    wall.row({"overlapped", Table::num(t_overlap * 1e3, 1),
              Table::num(w_overlap.median * 1e3, 1),
              Table::num(o_stats.mix.hitFraction(), 3),
              std::to_string(o_stats.macsSkipped)});
    wall.print();
    std::printf("wall-clock speedup: %.2fx (needs spare cores; this "
                "host has %d hardware threads)\n\n",
                wall_speedup, ThreadPool::resolveThreads(0));

    // --- 2. Modeled accelerator cycles (Fig. 8) --------------------
    // The modeled view pins overlap On: it accounts the ACCELERATOR,
    // where Fig. 8 overlap is hardware and host scheduling policy is
    // irrelevant — keeping the recorded modeled keys deterministic
    // and host-independent whatever MERCURY_BENCH_OVERLAP selects
    // for the functional measurement above.
    AcceleratorConfig cfg;
    AcceleratorConfig overlap_cfg;
    overlap_cfg.overlapDetection = OverlapMode::On;
    const auto serial_model = sim::CostModel::create(cfg);
    const auto overlap_model = sim::CostModel::create(overlap_cfg);
    const LayerShape shape = LayerShape::conv(
        "vgg13-conv", kChannels, kFilters, kHw, kHw, 3);
    const HitMix mix = s_stats.mix; // the measured channel mix

    const LayerCycles sc = serial_model->layerCost(shape, 1, mix, kBits);
    const LayerCycles oc = overlap_model->layerCost(shape, 1, mix, kBits);
    const double model_speedup =
        static_cast<double>(sc.mercuryTotal()) /
        static_cast<double>(oc.mercuryTotal());

    Table model("modeled layer cycles (row-stationary, measured mix)");
    model.header({"mode", "compute", "signature", "cache", "total",
                  "vs-baseline"});
    model.row({"serial detection", std::to_string(sc.computation),
               std::to_string(sc.signature),
               std::to_string(sc.cacheOverhead),
               std::to_string(sc.mercuryTotal()),
               Table::num(sc.speedup(), 2) + "x"});
    model.row({"overlapped (Fig. 8)", std::to_string(oc.computation),
               std::to_string(oc.signature),
               std::to_string(oc.cacheOverhead),
               std::to_string(oc.mercuryTotal()),
               Table::num(oc.speedup(), 2) + "x"});
    model.print();
    std::printf("modeled layer-time speedup from overlap: %.3fx "
                "(signature cycles hidden: %llu of %llu)\n\n",
                model_speedup,
                static_cast<unsigned long long>(sc.signature -
                                                oc.signature),
                static_cast<unsigned long long>(sc.signature));

    // --- 3. Backward column: signature replay (§III-C2) ------------
    // Functional: the replayed input-gradient pass consumes the
    // record the forward pass captured — no second detection — and
    // skips the grad-column products of forward-HIT rows. Wall time
    // is compared against the exact conv2dBackwardInput.
    SignatureRecord record;
    ReuseStats cap_stats;
    serial.forward(ds.inputs, w, Tensor(), spec, cap_stats, &record);
    Rng grng(kSeed + 1);
    Tensor grad({1, kFilters, kHw, kHw});
    grad.fillNormal(grng);

    ReuseStats b_stats;
    serial.backwardInput(grad, w, spec, kHw, kHw, record, b_stats);
    const bench::WallTime w_bwd_exact = bench::wallSeconds(
        [&] { conv2dBackwardInput(grad, w, spec, kHw, kHw); }, 1.0);
    const bench::WallTime w_bwd_replay = bench::wallSeconds(
        [&] {
            ReuseStats s;
            overlapped.backwardInput(grad, w, spec, kHw, kHw, record, s);
        },
        1.0);
    const double t_bwd_exact = w_bwd_exact.best;
    const double t_bwd_replay = w_bwd_replay.best;
    const double wall_bwd_speedup = t_bwd_exact / t_bwd_replay;

    // Modeled: input-gradient pass without reuse (baseline backward)
    // vs with the replayed signatures (backwardReuse) — the Fig. 8
    // accounting extended to the backward pass: compute shrinks by
    // the forward hit fraction, the signature charge is replay-only.
    AcceleratorConfig bwd_cfg;
    bwd_cfg.backwardReuse = true;
    const auto bwd_model = sim::CostModel::create(bwd_cfg);
    const LayerCycles bb =
        serial_model->backwardCost(shape, 1, mix, kBits);
    const LayerCycles br = bwd_model->backwardCost(shape, 1, mix, kBits);
    const double model_bwd_speedup =
        static_cast<double>(bb.mercuryTotal()) /
        static_cast<double>(br.mercuryTotal());

    Table bwd("backward input-gradient pass (replayed signatures)");
    bwd.header({"mode", "compute", "signature", "total", "wall-ms",
                "macs-skipped"});
    bwd.row({"exact backward", std::to_string(bb.computation),
             std::to_string(bb.signature),
             std::to_string(bb.mercuryTotal()),
             Table::num(t_bwd_exact * 1e3, 1), "0"});
    bwd.row({"replayed (§III-C2)", std::to_string(br.computation),
             std::to_string(br.signature),
             std::to_string(br.mercuryTotal()),
             Table::num(t_bwd_replay * 1e3, 1),
             std::to_string(b_stats.macsSkipped)});
    bwd.print();
    std::printf("modeled backward layer-time speedup from replay: "
                "%.3fx (hit fraction %.3f, replay charge %llu "
                "cycles)\n\n",
                model_bwd_speedup, b_stats.mix.hitFraction(),
                static_cast<unsigned long long>(br.signature));

    // --- 4. dW column: weight-gradient replay (§III-C2, Eq. 1) -----
    // Functional: dW by sum-then-multiply over the captured record —
    // the output gradients of each forward hit-group are summed, then
    // one multiply runs per group through the owner's patch. Wall
    // time vs the exact conv2dBackwardWeight.
    ReuseStats dw_stats;
    serial.backwardWeights(ds.inputs, grad, spec, record, dw_stats);
    const bench::WallTime w_dw_exact = bench::wallSeconds(
        [&] { conv2dBackwardWeight(ds.inputs, grad, spec); }, 1.0);
    const bench::WallTime w_dw_replay = bench::wallSeconds(
        [&] {
            ReuseStats s;
            overlapped.backwardWeights(ds.inputs, grad, spec, record, s);
        },
        1.0);
    const double t_dw_exact = w_dw_exact.best;
    const double t_dw_replay = w_dw_replay.best;
    const double wall_dw_speedup = t_dw_exact / t_dw_replay;

    // Modeled: the dW pass without reuse (baseline cost — dW mirrors
    // the forward MAC structure) vs with the replayed record
    // (weightGradReuse): owner-only multiplies, per-group accumulate
    // adds, replay-only signature charge.
    AcceleratorConfig dw_cfg;
    dw_cfg.weightGradReuse = true;
    const LayerCycles wb =
        serial_model->weightGradCost(shape, 1, mix, kBits);
    const LayerCycles wr =
        sim::CostModel::create(dw_cfg)->weightGradCost(shape, 1, mix,
                                                       kBits);
    const double model_dw_speedup =
        static_cast<double>(wb.mercuryTotal()) /
        static_cast<double>(wr.mercuryTotal());
    if (!smoke && model_dw_speedup <= 1.5) {
        std::fprintf(stderr,
                     "FATAL: modeled dW speedup %.3fx at the %.3f-hit "
                     "point fell to or below the 1.5x acceptance bar\n",
                     model_dw_speedup, mix.hitFraction());
        return 1;
    }

    Table dw("weight-gradient dW pass (replayed record, "
             "sum-then-multiply)");
    dw.header({"mode", "compute", "signature", "total", "wall-ms",
               "macs-skipped"});
    dw.row({"exact dW", std::to_string(wb.computation),
            std::to_string(wb.signature),
            std::to_string(wb.mercuryTotal()),
            Table::num(t_dw_exact * 1e3, 1), "0"});
    dw.row({"replayed (§III-C2)", std::to_string(wr.computation),
            std::to_string(wr.signature),
            std::to_string(wr.mercuryTotal()),
            Table::num(t_dw_replay * 1e3, 1),
            std::to_string(dw_stats.macsSkipped)});
    dw.print();
    std::printf("modeled dW layer-time speedup from replay: %.3fx "
                "(hit fraction %.3f, wall %.2fx)\n\n",
                model_dw_speedup, dw_stats.mix.hitFraction(),
                wall_dw_speedup);

    bench::ResultLine line("BENCH_overlap.json", "micro_overlap");
    line.text("layer", smoke ? "smoke-conv" : "vgg13-conv-64x64-32x32-k3")
        .num("hit_frac", s_stats.mix.hitFraction(), 3)
        .num("wall_serial_ms", t_serial * 1e3, 1)
        .num("wall_serial_median_ms", w_serial.median * 1e3, 1)
        .num("wall_overlap_ms", t_overlap * 1e3, 1)
        .num("wall_overlap_median_ms", w_overlap.median * 1e3, 1)
        .integer("model_serial_cycles",
                 static_cast<long long>(sc.mercuryTotal()))
        .integer("model_overlap_cycles",
                 static_cast<long long>(oc.mercuryTotal()))
        .num("wall_backward_speedup", wall_bwd_speedup, 3)
        .integer("model_backward_base_cycles",
                 static_cast<long long>(bb.mercuryTotal()))
        .integer("model_backward_replay_cycles",
                 static_cast<long long>(br.mercuryTotal()))
        .num("model_backward_speedup", model_bwd_speedup, 3)
        .num("wall_dw_speedup", wall_dw_speedup, 3)
        .integer("model_dw_base_cycles",
                 static_cast<long long>(wb.mercuryTotal()))
        .integer("model_dw_replay_cycles",
                 static_cast<long long>(wr.mercuryTotal()))
        .num("model_dw_speedup", model_dw_speedup, 3)
        .speedups(model_speedup, wall_speedup)
        .config("bits", kBits)
        .config("threads", threads)
        .config("blockRows", base_pipe.blockRows)
        .config("shards", base_pipe.shards)
        .config("overlap", overlapModeName(omode))
        .config("overlap_resolved", overlapModeName(resolved));
    bench::stdConfig(line);
    line.print();
    return 0;
}
