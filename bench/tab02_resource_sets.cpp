/**
 * @file
 * Table II: resource usage and on-chip power of MERCURY for 16 ways
 * and a sweep of MCACHE set counts (256 to 1024 entries).
 */

#include "bench_common.hpp"
#include "fpga/resource_model.hpp"

int
main()
{
    using namespace mercury;
    bench::banner("Table II: resources & power vs MCACHE sets (16-way)",
                  "quadrupling sets raises total power only ~6.5%");

    FpgaModel model;
    Table a("Table II-a: resource usage");
    a.header({"cache-size", "#sets", "slice-LUTs", "slice-registers",
              "block-RAM", "#DSP48E1s"});
    Table b("Table II-b: on-chip power (watt)");
    b.header({"#sets", "clocks", "logic", "signals", "BRAM", "DSPs",
              "static", "total"});
    for (int sets : {16, 32, 48, 64}) {
        const FpgaResources r = model.resources(sets, 16);
        a.row({std::to_string(sets * 16), std::to_string(sets),
               Table::num(r.sliceLuts, 0), Table::num(r.sliceRegisters, 0),
               Table::num(r.blockRam, 1), Table::num(r.dsp48, 0)});
        const FpgaPower p = model.power(sets, 16);
        b.row({std::to_string(sets), Table::num(p.clocks, 3),
               Table::num(p.logic, 3), Table::num(p.signals, 3),
               Table::num(p.bram, 3), Table::num(p.dsps, 3),
               Table::num(p.staticPower, 3), Table::num(p.total(), 3)});
    }
    a.print();
    b.print();

    const double growth = 100.0 * (model.power(64, 16).total() /
                                       model.power(16, 16).total() -
                                   1.0);
    std::printf("power growth 16->64 sets: %.1f%% (paper: 6.5%%)\n\n",
                growth);
    return 0;
}
