/**
 * @file
 * Minimal MercuryServer walkthrough: three tenants share a serving
 * process, their correlated request streams warm per-tenant
 * persistent MCACHEs, the server snapshots at shutdown, and a second
 * server warm-starts from the snapshot to show restart traffic
 * hitting where a cold start would miss.
 *
 * Usage:  ./build/examples/serve_demo [tenants] [requests]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "nn/layers.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

int
main(int argc, char **argv)
{
    using namespace mercury;

    const int tenants = argc > 1 ? std::atoi(argv[1]) : 3;
    const int64_t requests = argc > 2 ? std::atoll(argv[2]) : 8;
    const int64_t dim = 48, hidden = 32;
    const int classes = 6;

    ServeConfig cfg;
    cfg.cacheMode = CacheMode::PerTenant;
    cfg.maxSessions = tenants;
    cfg.signatureBits = 16;
    cfg.sets = 128;
    cfg.ways = 8;
    cfg.modelFactory = [&](int tenant) {
        Rng rng(1000 + static_cast<uint64_t>(tenant));
        auto net = std::make_unique<Network>();
        net->add(std::make_unique<DenseLayer>(dim, hidden, rng, 1));
        net->add(std::make_unique<ReluLayer>());
        net->add(std::make_unique<DenseLayer>(hidden, classes, rng, 2));
        return net;
    };

    TrafficConfig tc;
    tc.tenants = tenants;
    tc.requestsPerTenant = requests;
    tc.batch = 32;
    tc.dim = dim;
    tc.classes = classes;
    tc.temporalCorr = 0.7; // clients re-send near-duplicates

    std::printf("== first life: %d tenants x %lld requests ==\n",
                tenants, static_cast<long long>(requests));
    Snapshot snap;
    {
        MercuryServer server(cfg);
        TrafficGenerator gen(tc);
        for (int t = 0; t < tenants; ++t) {
            SessionHandle session = server.connect(t);
            int64_t hits = 0, vectors = 0;
            for (int64_t i = 0; i < requests; ++i) {
                const TrafficRequest traffic = gen.next(t);
                JobRequest job;
                job.kind = i % 2 == 0 ? JobRequest::Kind::Train
                                      : JobRequest::Kind::Inference;
                job.rows = traffic.rows;
                job.labels = traffic.labels;

                SubmitStatus st = session.submit(job);
                if (!st.accepted) // bounded queue: back off and retry
                    continue;
                const JobResult &r = st.ticket->wait();
                hits += r.forward.mix.hit;
                vectors += r.forward.mix.vectors;
            }
            std::printf("tenant %d: forward hit rate %.3f "
                        "(epoch now %llu)\n",
                        t,
                        vectors ? static_cast<double>(hits) /
                                      static_cast<double>(vectors)
                                : 0.0,
                        static_cast<unsigned long long>(
                            server.tenantEpoch(t)));
            session.disconnect();
        }
        server.saveSnapshot(snap); // shutdown: persist every MCACHE
    }
    std::printf("snapshot: %zu cache sections, %zu bytes\n\n",
                snap.caches().size(), snap.serialize().size());

    std::printf("== second life: warm-started from the snapshot ==\n");
    MercuryServer reborn(cfg);
    std::string error;
    if (!reborn.loadSnapshot(snap, error)) {
        std::printf("warm start failed: %s\n", error.c_str());
        return 1;
    }
    TrafficGenerator gen(tc); // same streams: a returning client
    for (int t = 0; t < tenants; ++t) {
        SessionHandle session = reborn.connect(t);
        JobRequest job;
        job.kind = JobRequest::Kind::Inference;
        const TrafficRequest traffic = gen.next(t);
        job.rows = traffic.rows;
        const JobResult &r = session.submit(job).ticket->wait();
        std::printf("tenant %d first request after restart: %lld of "
                    "%lld rows HIT the restored cache\n",
                    t, static_cast<long long>(r.forward.mix.hit),
                    static_cast<long long>(r.forward.mix.vectors));
        session.disconnect();
    }
    return 0;
}
