/**
 * @file
 * MERCURY on an attention layer (§III-C4): token sequences with
 * repeated tokens let the attention computation Y = (X Xt) X reuse
 * whole rows. Shows functional reuse on real sequences and the
 * timing-model view of the transformer workload.
 *
 * Build & run:  ./build/examples/transformer_attention
 */

#include <cstdio>

#include "core/attention_engine.hpp"
#include "core/mercury_accelerator.hpp"
#include "models/model_zoo.hpp"
#include "workloads/profiles.hpp"
#include "workloads/synthetic.hpp"

int
main()
{
    using namespace mercury;

    // Token sequences: 32 tokens of a 16-wide vocabulary slice, so
    // sequences repeat tokens heavily (row similarity).
    Dataset ds = makeTokenDataset(/*n=*/4, /*classes=*/4,
                                  /*seq_len=*/32, /*embed_dim=*/64,
                                  /*seed=*/5, /*noise=*/0.01f);

    MCache mcache(64, 16, 1);
    AttentionEngine engine(mcache, /*sig_bits=*/24, /*seed=*/6);

    std::printf("attention reuse on 4 sequences (32 tokens x 64 dims):\n");
    double total_skip = 0.0;
    for (int64_t s = 0; s < ds.size(); ++s) {
        Tensor x({32, 64});
        for (int64_t i = 0; i < x.numel(); ++i)
            x[i] = ds.inputs[s * x.numel() + i];
        ReuseStats stats;
        Tensor y = engine.forward(x, stats);
        std::printf("  seq %lld: HIT %2lld/%lld rows, MACs skipped "
                    "%.1f%%\n",
                    static_cast<long long>(s),
                    static_cast<long long>(stats.mix.hit),
                    static_cast<long long>(stats.mix.vectors),
                    100.0 * stats.skipFraction());
        total_skip += stats.skipFraction();
    }
    std::printf("average MACs skipped: %.1f%%\n\n",
                100.0 * total_skip / ds.size());

    // Whole-transformer timing view (the paper's Multi30k-scale
    // encoder/decoder stack).
    const ModelConfig model = transformer();
    AcceleratorConfig cfg;
    SyntheticSimilaritySource source(model, cfg, 42);
    MercuryAccelerator acc(cfg, model.layers);
    const TrainingReport rep = acc.train(source, 2, 8, {}, 4);
    std::printf("transformer training simulation: %.2fx speedup, "
                "%.1f%% of cycles on signatures\n",
                rep.speedup(), 100.0 * rep.signatureFraction());
    std::printf("(paper: transformer trains ~1.9x faster, same 33.52 "
                "BLEU as baseline)\n");
    return 0;
}
