/**
 * @file
 * Train a small CNN twice on the same synthetic dataset — once
 * exactly and once through MERCURY's functional reuse engines — and
 * compare losses, accuracies, and the measured reuse statistics.
 * This is the accuracy-parity experiment (paper Fig. 13) in
 * miniature.
 *
 * Build & run:  ./build/examples/train_with_mercury
 */

#include <cstdio>

#include "models/proxies.hpp"
#include "workloads/synthetic.hpp"

int
main()
{
    using namespace mercury;

    const int kClasses = 5;
    Dataset train = makeImageDataset(128, kClasses, kProxyImageChannels,
                                     kProxyImageHw, 11);
    Dataset val = makeImageDataset(64, kClasses, kProxyImageChannels,
                                   kProxyImageHw, 12);

    std::printf("training ResNet-family proxy, %lld train / %lld val "
                "samples, %d classes\n\n",
                static_cast<long long>(train.size()),
                static_cast<long long>(val.size()), kClasses);

    // Exact baseline training.
    Rng rng_base(99);
    auto baseline = buildProxy("ResNet50", rng_base, kClasses);
    std::printf("baseline : ");
    for (int epoch = 0; epoch < 8; ++epoch) {
        const float loss =
            baseline->trainBatch(train.inputs, train.labels, 0.05f);
        std::printf("%.3f ", loss);
    }
    const double base_acc = baseline->accuracy(val.inputs, val.labels);
    std::printf("| val acc %.1f%%\n", 100.0 * base_acc);

    // MERCURY training: same seeds, reuse-perturbed forward passes.
    Rng rng_merc(99);
    auto mercury_net = buildProxy("ResNet50", rng_merc, kClasses);
    MercuryContext ctx(/*sig_bits=*/20);
    std::printf("mercury  : ");
    for (int epoch = 0; epoch < 8; ++epoch) {
        const float loss = mercury_net->trainBatch(
            train.inputs, train.labels, 0.05f, &ctx);
        std::printf("%.3f ", loss);
    }
    const double merc_acc =
        mercury_net->accuracy(val.inputs, val.labels, &ctx);
    std::printf("| val acc %.1f%%\n\n", 100.0 * merc_acc);

    const ReuseStats &totals = ctx.totals();
    std::printf("reuse during mercury training:\n");
    std::printf("  detection passes : %lld\n",
                static_cast<long long>(totals.channelPasses));
    std::printf("  vectors hashed   : %lld\n",
                static_cast<long long>(totals.mix.vectors));
    std::printf("  hit fraction     : %.1f%%\n",
                100.0 * totals.mix.hitFraction());
    std::printf("  MACs skipped     : %.1f%%\n",
                100.0 * totals.skipFraction());
    std::printf("  accuracy delta   : %+.1f%% (paper: ~0.7%% average)\n",
                100.0 * (base_acc - merc_acc));
    return 0;
}
