/**
 * @file
 * Explore how a model of your choice behaves across dataflows,
 * MCACHE organizations, and signature lengths — the design-space
 * exploration a MERCURY adopter would run before committing RTL.
 *
 * Usage:  ./build/examples/dataflow_explorer [model-name]
 *         (default VGG-13; names as in the paper, e.g. ResNet50)
 */

#include <cstdio>
#include <cstring>

#include "core/mercury_accelerator.hpp"
#include "models/model_zoo.hpp"
#include "util/table.hpp"
#include "workloads/profiles.hpp"

int
main(int argc, char **argv)
{
    using namespace mercury;

    const std::string wanted = argc > 1 ? argv[1] : "VGG-13";
    ModelConfig model;
    bool found = false;
    for (const auto &m : allModels()) {
        if (m.name == wanted) {
            model = m;
            found = true;
            break;
        }
    }
    if (!found) {
        std::printf("unknown model '%s'; available:\n", wanted.c_str());
        for (const auto &m : allModels())
            std::printf("  %s\n", m.name.c_str());
        return 1;
    }
    std::printf("exploring %s (%zu layers, %.2f GMACs forward)\n\n",
                model.name.c_str(), model.layers.size(),
                static_cast<double>(model.totalMacs(1)) / 1e9);

    auto run = [&](const AcceleratorConfig &cfg) {
        SyntheticSimilaritySource source(model, cfg, 42);
        MercuryAccelerator acc(cfg, model.layers);
        return acc.train(source, 2, 1, {}, 4);
    };

    // Sweep 1: dataflows.
    Table t1("dataflow sweep (1024-entry 16-way MCACHE, 20-bit sigs)");
    t1.header({"dataflow", "speedup", "signature-fraction"});
    for (auto kind : {DataflowKind::RowStationary,
                      DataflowKind::WeightStationary,
                      DataflowKind::InputStationary}) {
        AcceleratorConfig cfg;
        cfg.dataflow = kind;
        const TrainingReport rep = run(cfg);
        t1.row({dataflowName(kind), Table::num(rep.speedup(), 2),
                Table::num(rep.signatureFraction(), 3)});
    }
    t1.print();

    // Sweep 2: MCACHE organization.
    Table t2("MCACHE sweep (row-stationary)");
    t2.header({"entries", "ways", "speedup"});
    for (int entries : {256, 512, 1024, 2048}) {
        for (int ways : {8, 16}) {
            AcceleratorConfig cfg;
            cfg.mcacheWays = ways;
            cfg.mcacheSets = entries / ways;
            const TrainingReport rep = run(cfg);
            t2.row({std::to_string(entries), std::to_string(ways),
                    Table::num(rep.speedup(), 2)});
        }
    }
    t2.print();

    // Sweep 3: initial signature length.
    Table t3("signature-length sweep (row-stationary)");
    t3.header({"initial-bits", "speedup", "signature-fraction"});
    for (int bits : {12, 16, 20, 28, 40}) {
        AcceleratorConfig cfg;
        cfg.initialSignatureBits = bits;
        const TrainingReport rep = run(cfg);
        t3.row({std::to_string(bits), Table::num(rep.speedup(), 2),
                Table::num(rep.signatureFraction(), 3)});
    }
    t3.print();
    return 0;
}
