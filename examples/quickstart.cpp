/**
 * @file
 * Quickstart: the MERCURY pipeline end to end on one convolution
 * layer — extract input vectors, hash them with RPQ, build the
 * hitmap through MCACHE, run the reuse-enabled convolution, and ask
 * the timing model what the skipped work is worth in cycles.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/conv_reuse_engine.hpp"
#include "sim/cost_model.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

int
main()
{
    using namespace mercury;

    // A 16x16 activation map with smooth, class-like structure (the
    // regime where neighbouring convolution windows are similar).
    Dataset batch = makeImageDataset(/*n=*/1, /*classes=*/4,
                                     /*channels=*/8, /*hw=*/16,
                                     /*seed=*/1, /*noise=*/0.02f);

    // A conv layer: 8 -> 128 channels, 3x3 kernels.
    Rng rng(2);
    Tensor weights({128, 8, 3, 3});
    weights.fillNormal(rng, 0.0f, 0.3f);
    ConvSpec spec;
    spec.inChannels = 8;
    spec.outChannels = 128;
    spec.kernelH = spec.kernelW = 3;
    spec.pad = 1;

    // MERCURY hardware state: a 1024-entry, 16-way MCACHE with 4
    // data versions (in-flight filters), and 20-bit RPQ signatures.
    MCache mcache(64, 16, 4);
    ConvReuseEngine engine(mcache, /*sig_bits=*/20, /*seed=*/3);

    ReuseStats stats;
    Tensor out = engine.forward(batch.inputs, weights, Tensor(), spec,
                                stats);

    std::printf("conv output: %s\n", out.shapeStr().c_str());
    std::printf("vectors hashed:  %lld\n",
                static_cast<long long>(stats.mix.vectors));
    std::printf("  HIT  %5.1f%%   (computation reused)\n",
                100.0 * stats.mix.hit / stats.mix.vectors);
    std::printf("  MAU  %5.1f%%   (computed, cached)\n",
                100.0 * stats.mix.mau / stats.mix.vectors);
    std::printf("  MNU  %5.1f%%   (computed, set full)\n",
                100.0 * stats.mix.mnu / stats.mix.vectors);
    std::printf("MACs skipped:    %.1f%%\n",
                100.0 * stats.skipFraction());

    // What is that worth on the row-stationary machine?
    AcceleratorConfig cfg;
    const auto cost = sim::CostModel::create(cfg);
    LayerShape shape = LayerShape::conv("demo", 8, 128, 16, 16, 3, 1, 1);
    const LayerCycles cycles = cost->layerCost(shape, 1, stats.mix, 20);
    std::printf("cycles: baseline %llu -> mercury %llu  (%.2fx)\n",
                static_cast<unsigned long long>(cycles.baseline),
                static_cast<unsigned long long>(cycles.mercuryTotal()),
                cycles.speedup());
    return 0;
}
