/**
 * @file
 * Tests for the PE-set cycle model, pinned to the worked example in
 * the paper's Fig. 8: for 3x3 vectors the unpipelined schedule takes
 * 6 cycles per dot product, the pipelined schedule finishes the first
 * at cycle 7 and each subsequent one 3 cycles later.
 */

#include <gtest/gtest.h>

#include "sim/config.hpp"
#include "sim/cycle_model.hpp"
#include "sim/pe_array.hpp"

namespace mercury {
namespace {

TEST(CycleModel, PaperFig8UnpipelinedNumbers)
{
    // x = 3: each signature bit takes 2x = 6 cycles, no overlap.
    EXPECT_EQ(unpipelinedCompletion(0, 3), 6u);
    EXPECT_EQ(unpipelinedCompletion(1, 3), 12u);
    EXPECT_EQ(unpipelinedPassCycles(3, 3), 18u);
}

TEST(CycleModel, PaperFig8PipelinedNumbers)
{
    // x = 3: Sig1,1 spans cycles 1..7; Sig2,1 finishes at cycle 10.
    EXPECT_EQ(pipelinedCompletion(0, 3), 7u);
    EXPECT_EQ(pipelinedCompletion(1, 3), 10u);
    EXPECT_EQ(pipelinedCompletion(2, 3), 13u);
}

TEST(CycleModel, PipelinedGeneralForm)
{
    for (uint64_t x : {1u, 2u, 3u, 5u, 7u, 11u}) {
        EXPECT_EQ(pipelinedPassCycles(1, x), 2 * x + 1);
        EXPECT_EQ(pipelinedPassCycles(10, x), 2 * x + 1 + 9 * x);
    }
}

TEST(CycleModel, ZeroVectorsCostNothing)
{
    EXPECT_EQ(pipelinedPassCycles(0, 3), 0u);
    EXPECT_EQ(unpipelinedPassCycles(0, 3), 0u);
}

TEST(CycleModel, PipelinedBeatsUnpipelinedForStreams)
{
    for (uint64_t v = 2; v < 30; ++v)
        EXPECT_LT(pipelinedPassCycles(v, 3), unpipelinedPassCycles(v, 3));
}

TEST(CycleModel, PipelinedAsymptoteIsHalf)
{
    // Fig. 8c: steady-state cost drops from 2x to x per signature.
    const uint64_t v = 10000;
    const double ratio =
        static_cast<double>(unpipelinedPassCycles(v, 5)) /
        static_cast<double>(pipelinedPassCycles(v, 5));
    EXPECT_NEAR(ratio, 2.0, 0.01);
}

TEST(CycleModel, BroadcastDotCycles)
{
    EXPECT_EQ(broadcastDotCycles(9), 10u);
}

TEST(CycleModel, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
    EXPECT_EQ(ceilDiv(0, 3), 0u);
}

class ScheduleTest : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ScheduleTest, ClosedFormMatchesSchedule)
{
    const auto [vectors, x] = GetParam();
    for (bool pipelined : {false, true}) {
        PESetSchedule sched(static_cast<uint64_t>(vectors),
                            static_cast<uint64_t>(x), pipelined);
        for (int j = 0; j < vectors; ++j) {
            const uint64_t expect =
                pipelined
                    ? pipelinedCompletion(static_cast<uint64_t>(j),
                                          static_cast<uint64_t>(x))
                    : unpipelinedCompletion(static_cast<uint64_t>(j),
                                            static_cast<uint64_t>(x));
            EXPECT_EQ(sched.completionCycle(static_cast<uint64_t>(j)),
                      expect);
        }
    }
}

TEST_P(ScheduleTest, NoStructuralHazards)
{
    const auto [vectors, x] = GetParam();
    for (bool pipelined : {false, true}) {
        PESetSchedule sched(static_cast<uint64_t>(vectors),
                            static_cast<uint64_t>(x), pipelined);
        EXPECT_TRUE(sched.structurallyValid())
            << "vectors=" << vectors << " x=" << x
            << " pipelined=" << pipelined;
    }
}

INSTANTIATE_TEST_SUITE_P(
    VectorAndKernelSweep, ScheduleTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 8, 16),
                       ::testing::Values(1, 2, 3, 5, 7)));

TEST(PEArray, PartitionsByKernelRows)
{
    AcceleratorConfig cfg;
    cfg.numPEs = 168;
    PEArray arr(cfg, 3);
    EXPECT_EQ(arr.numSets(), 56);
    EXPECT_EQ(arr.setSize(), 3);
    EXPECT_EQ(arr.idlePEs(), 0);
}

TEST(PEArray, LeftoverPEsIdle)
{
    AcceleratorConfig cfg;
    cfg.numPEs = 168;
    PEArray arr(cfg, 5);
    EXPECT_EQ(arr.numSets(), 33);
    EXPECT_EQ(arr.idlePEs(), 3);
}

TEST(PEArray, BusyBitsAndBarrier)
{
    AcceleratorConfig cfg;
    cfg.numPEs = 9;
    PEArray arr(cfg, 3);
    EXPECT_TRUE(arr.allIdle());
    arr.setBusy(1, true);
    EXPECT_FALSE(arr.allIdle());
    arr.setBusy(1, false);
    EXPECT_TRUE(arr.allIdle());
}

TEST(PEArray, DistributeVectorsBalanced)
{
    AcceleratorConfig cfg;
    cfg.numPEs = 9;
    PEArray arr(cfg, 3); // 3 sets
    auto counts = arr.distributeVectors(10);
    ASSERT_EQ(counts.size(), 3u);
    EXPECT_EQ(counts[0] + counts[1] + counts[2], 10);
    EXPECT_EQ(counts[0], 4);
    EXPECT_EQ(counts[1], 3);
    EXPECT_EQ(counts[2], 3);
}

TEST(PEArray, PEStateResets)
{
    AcceleratorConfig cfg;
    cfg.numPEs = 6;
    PEArray arr(cfg, 3);
    PE &pe = arr.pe(0, 1);
    pe.orgReg = 3.0f;
    pe.inputBufValid[1] = true;
    pe.inUse = 1;
    pe.flUse = 2;
    arr.reset();
    EXPECT_EQ(arr.pe(0, 1).orgReg, 0.0f);
    EXPECT_FALSE(arr.pe(0, 1).inputBufValid[1]);
    EXPECT_EQ(arr.pe(0, 1).inUse, 0);
    EXPECT_EQ(arr.pe(0, 1).flUse, 0);
}

TEST(PEArray, OutOfRangeAccessDies)
{
    AcceleratorConfig cfg;
    cfg.numPEs = 6;
    PEArray arr(cfg, 3);
    EXPECT_DEATH(arr.pe(5, 0), "out of range");
}

} // namespace
} // namespace mercury
