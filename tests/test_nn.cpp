/**
 * @file
 * Tests for the NN training framework: gradient checks through every
 * layer type, block composition, end-to-end training convergence, and
 * MERCURY-hooked execution.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "models/proxies.hpp"
#include "nn/attention_layer.hpp"
#include "nn/blocks.hpp"
#include "nn/network.hpp"
#include "workloads/synthetic.hpp"

namespace mercury {
namespace {

TEST(NnLayers, DenseGradientCheck)
{
    Rng rng(90);
    Network net;
    net.add(std::make_unique<DenseLayer>(6, 4, rng, 1));
    Tensor x({3, 6});
    x.fillNormal(rng);
    std::vector<int> labels{0, 2, 3};

    // Analytical input gradient via backward.
    Tensor logits = net.forward(x);
    Tensor grad;
    softmaxCrossEntropy(logits, labels, grad);
    // DenseLayer::backward returns input grad; run through network
    // manually by constructing a standalone layer.
    Rng rng2(90);
    DenseLayer dense(6, 4, rng2, 1);
    Tensor out = dense.forward(x, nullptr);
    Tensor g;
    softmaxCrossEntropy(out, labels, g);
    Tensor gx = dense.backward(g);

    const float eps = 1e-2f;
    for (int64_t idx : {0L, 7L, 17L}) {
        const float saved = x[idx];
        x[idx] = saved + eps;
        Tensor o1 = dense.forward(x, nullptr);
        Tensor tmp;
        const float hi = softmaxCrossEntropy(o1, labels, tmp);
        x[idx] = saved - eps;
        Tensor o2 = dense.forward(x, nullptr);
        const float lo = softmaxCrossEntropy(o2, labels, tmp);
        x[idx] = saved;
        EXPECT_NEAR(gx[idx], (hi - lo) / (2 * eps), 2e-3f);
    }
}

TEST(NnLayers, ConvLayerShapes)
{
    Rng rng(91);
    Conv2dLayer conv(3, 8, 3, 1, 1, rng, 1);
    Tensor x({2, 3, 8, 8});
    x.fillNormal(rng);
    Tensor y = conv.forward(x, nullptr);
    EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 8, 8, 8}));
    Tensor gx = conv.backward(y);
    EXPECT_EQ(gx.shape(), x.shape());
    EXPECT_GT(conv.paramCount(), 0u);
}

TEST(NnLayers, StepBeforeBackwardDies)
{
    Rng rng(92);
    Conv2dLayer conv(1, 1, 3, 1, 1, rng, 1);
    EXPECT_DEATH(conv.step(0.1f), "before backward");
}

TEST(NnLayers, FlattenRoundTrips)
{
    FlattenLayer flat;
    Tensor x({2, 3, 4, 4});
    Rng rng(93);
    x.fillNormal(rng);
    Tensor y = flat.forward(x, nullptr);
    EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 48}));
    Tensor gx = flat.backward(y);
    EXPECT_EQ(gx.shape(), x.shape());
    EXPECT_LT(gx.maxAbsDiff(x), 1e-7f);
}

TEST(NnBlocks, ResidualIdentityShapes)
{
    Rng rng(94);
    ResidualBlock block(8, 8, 1, rng, 3);
    Tensor x({1, 8, 6, 6});
    x.fillNormal(rng);
    Tensor y = block.forward(x, nullptr);
    EXPECT_EQ(y.shape(), x.shape());
    Tensor gx = block.backward(y);
    EXPECT_EQ(gx.shape(), x.shape());
}

TEST(NnBlocks, ResidualProjectionOnStride)
{
    Rng rng(95);
    ResidualBlock block(8, 16, 2, rng, 4);
    Tensor x({1, 8, 6, 6});
    x.fillNormal(rng);
    Tensor y = block.forward(x, nullptr);
    EXPECT_EQ(y.shape(), (std::vector<int64_t>{1, 16, 3, 3}));
}

TEST(NnBlocks, ConcatSplitsGradExactly)
{
    Rng rng(96);
    ConcatBlock::Branch b1, b2;
    b1.push_back(std::make_unique<Conv2dLayer>(4, 3, 1, 1, 0, rng, 5));
    b2.push_back(std::make_unique<Conv2dLayer>(4, 5, 3, 1, 1, rng, 6));
    std::vector<ConcatBlock::Branch> branches;
    branches.push_back(std::move(b1));
    branches.push_back(std::move(b2));
    ConcatBlock block(std::move(branches));

    Tensor x({2, 4, 5, 5});
    x.fillNormal(rng);
    Tensor y = block.forward(x, nullptr);
    EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 8, 5, 5}));
    Tensor gx = block.backward(y);
    EXPECT_EQ(gx.shape(), x.shape());
}

TEST(NnBlocks, FireModuleShapes)
{
    Rng rng(97);
    auto fire = makeFireModule(8, 4, 8, rng, 7);
    Tensor x({1, 8, 6, 6});
    x.fillNormal(rng);
    Tensor y = fire->forward(x, nullptr);
    EXPECT_EQ(y.shape(), (std::vector<int64_t>{1, 16, 6, 6}));
    EXPECT_GT(fire->paramCount(), 0u);
}

TEST(NnAttention, ForwardMatchesExplicitProduct)
{
    Rng rng(98);
    SelfAttentionLayer att(4, 6, 8, 1.0f);
    Tensor x({1, 24});
    x.fillNormal(rng);
    Tensor y = att.forward(x, nullptr);

    Tensor xi({4, 6});
    for (int64_t i = 0; i < 24; ++i)
        xi[i] = x[i];
    Tensor ref = matmul(matmulTransposeB(xi, xi), xi);
    for (int64_t i = 0; i < 24; ++i)
        EXPECT_NEAR(y[i], ref[i], 1e-4f);
}

TEST(NnAttention, GradientCheck)
{
    Rng rng(99);
    SelfAttentionLayer att(3, 4, 9, 0.5f);
    Tensor x({1, 12});
    x.fillNormal(rng);
    std::vector<int> labels{1};

    // Head: sum of outputs 0..3 as logits... simpler: direct loss on
    // the first 4 outputs via softmax.
    auto loss_of = [&](Tensor &inp) {
        Tensor y = att.forward(inp, nullptr);
        Tensor logits({1, 4});
        for (int64_t j = 0; j < 4; ++j)
            logits.at2(0, j) = y.at2(0, j);
        Tensor g;
        return softmaxCrossEntropy(logits, labels, g);
    };

    Tensor y = att.forward(x, nullptr);
    Tensor logits({1, 4});
    for (int64_t j = 0; j < 4; ++j)
        logits.at2(0, j) = y.at2(0, j);
    Tensor g;
    softmaxCrossEntropy(logits, labels, g);
    Tensor gy({1, 12});
    for (int64_t j = 0; j < 4; ++j)
        gy.at2(0, j) = g.at2(0, j);
    Tensor gx = att.backward(gy);

    const float eps = 1e-2f;
    for (int64_t idx : {0L, 5L, 11L}) {
        const float saved = x[idx];
        x[idx] = saved + eps;
        const float hi = loss_of(x);
        x[idx] = saved - eps;
        const float lo = loss_of(x);
        x[idx] = saved;
        EXPECT_NEAR(gx[idx], (hi - lo) / (2 * eps), 5e-3f)
            << "index " << idx;
    }
}

TEST(NnTraining, LossDecreasesOnSmallProblem)
{
    Rng rng(100);
    Dataset ds = makeImageDataset(64, 4, 3, 12, 101, 0.05f);
    auto net = buildProxy("AlexNet", rng, 4);
    float first = 0, last = 0;
    for (int epoch = 0; epoch < 8; ++epoch) {
        const float loss =
            net->trainBatch(ds.inputs, ds.labels, 0.05f);
        if (epoch == 0)
            first = loss;
        last = loss;
    }
    EXPECT_LT(last, first);
}

TEST(NnTraining, AccuracyAboveChanceAfterTraining)
{
    Rng rng(102);
    Dataset train = makeImageDataset(96, 4, 3, 12, 103, 0.05f);
    Dataset val = makeImageDataset(48, 4, 3, 12, 104, 0.05f);
    auto net = buildProxy("VGG-13", rng, 4);
    for (int epoch = 0; epoch < 10; ++epoch)
        net->trainBatch(train.inputs, train.labels, 0.05f);
    EXPECT_GT(net->accuracy(val.inputs, val.labels), 0.4);
}

TEST(NnTraining, MercuryContextAccumulatesStats)
{
    Rng rng(105);
    Dataset ds = makeImageDataset(16, 4, 3, 12, 106, 0.02f);
    auto net = buildProxy("AlexNet", rng, 4);
    MercuryContext ctx(16);
    net->trainBatch(ds.inputs, ds.labels, 0.05f, &ctx);
    EXPECT_GT(ctx.totals().macsTotal, 0u);
    EXPECT_GT(ctx.totals().mix.vectors, 0);
    EXPECT_GT(ctx.totals().macsSkipped, 0u); // smooth inputs do hit
}

TEST(NnTraining, MercuryTrainingStaysClose)
{
    // Same seed, same data: reuse-perturbed training should stay in
    // the same accuracy ballpark as exact training (Fig. 13).
    Dataset train = makeImageDataset(96, 4, 3, 12, 107, 0.05f);
    Dataset val = makeImageDataset(48, 4, 3, 12, 108, 0.05f);

    Rng rng_a(109);
    auto base = buildProxy("AlexNet", rng_a, 4);
    for (int e = 0; e < 10; ++e)
        base->trainBatch(train.inputs, train.labels, 0.05f);
    const double base_acc = base->accuracy(val.inputs, val.labels);

    Rng rng_b(109);
    auto merc = buildProxy("AlexNet", rng_b, 4);
    MercuryContext ctx(20);
    for (int e = 0; e < 10; ++e)
        merc->trainBatch(train.inputs, train.labels, 0.05f, &ctx);
    const double merc_acc = merc->accuracy(val.inputs, val.labels);

    EXPECT_GT(base_acc, 0.4);
    EXPECT_NEAR(merc_acc, base_acc, 0.25);
}

TEST(NnProxies, AllFamiliesBuildAndForward)
{
    for (const auto &family : proxyFamilies()) {
        Rng rng(110);
        auto net = buildProxy(family, rng, 5);
        Tensor x;
        if (proxyUsesTokens(family)) {
            Dataset ds = makeTokenDataset(4, 5, kProxySeqLen,
                                          kProxyEmbedDim, 111);
            x = ds.inputs;
        } else {
            Dataset ds = makeImageDataset(4, 5, kProxyImageChannels,
                                          kProxyImageHw, 112);
            x = ds.inputs;
        }
        Tensor y = net->forward(x);
        EXPECT_EQ(y.dim(0), 4) << family;
        EXPECT_EQ(y.dim(1), 5) << family;
        EXPECT_GT(net->paramCount(), 0u) << family;
    }
}

TEST(NnProxies, UnknownFamilyDies)
{
    Rng rng(113);
    EXPECT_DEATH(buildProxy("NotANet", rng), "unknown proxy family");
}

} // namespace
} // namespace mercury
