/**
 * @file
 * Tests for the RPQ engine: similarity preservation, the
 * convolution formulation equivalence (§III-B1), determinism, and
 * signature-length behaviour (the paper's Fig. 3 insight that longer
 * signatures separate dissimilar vectors better).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/rpq.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace mercury {
namespace {

TEST(RPQ, DeterministicForSameSeed)
{
    RPQEngine a(9, 32, 77), b(9, 32, 77);
    std::vector<float> v(9);
    Rng rng(1);
    for (auto &x : v)
        x = static_cast<float>(rng.normal());
    EXPECT_TRUE(a.signatureOf(v.data(), 32) == b.signatureOf(v.data(), 32));
}

TEST(RPQ, DifferentSeedsDiffer)
{
    RPQEngine a(9, 32, 1), b(9, 32, 2);
    std::vector<float> v(9, 1.0f);
    EXPECT_FALSE(a.signatureOf(v.data(), 32) ==
                 b.signatureOf(v.data(), 32));
}

TEST(RPQ, IdenticalVectorsShareSignature)
{
    RPQEngine rpq(16, 64, 5);
    Rng rng(2);
    std::vector<float> v(16);
    for (auto &x : v)
        x = static_cast<float>(rng.normal());
    std::vector<float> w = v;
    EXPECT_TRUE(rpq.signatureOf(v.data(), 64) ==
                rpq.signatureOf(w.data(), 64));
}

TEST(RPQ, SimilarVectorsUsuallyShareSignature)
{
    // Vectors with tiny epsilon perturbations should mostly collide.
    RPQEngine rpq(10, 20, 6);
    Rng rng(3);
    int same = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
        std::vector<float> v(10), w(10);
        for (int i = 0; i < 10; ++i) {
            v[i] = static_cast<float>(rng.normal());
            w[i] = v[i] + 1e-4f * static_cast<float>(rng.normal());
        }
        same += rpq.signatureOf(v.data(), 20) ==
                rpq.signatureOf(w.data(), 20);
    }
    EXPECT_GT(same, trials * 0.9);
}

TEST(RPQ, DissimilarVectorsUsuallyDiffer)
{
    RPQEngine rpq(10, 20, 7);
    Rng rng(4);
    int same = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
        std::vector<float> v(10), w(10);
        for (int i = 0; i < 10; ++i) {
            v[i] = static_cast<float>(rng.normal());
            w[i] = static_cast<float>(rng.normal());
        }
        same += rpq.signatureOf(v.data(), 20) ==
                rpq.signatureOf(w.data(), 20);
    }
    EXPECT_LT(same, 5);
}

TEST(RPQ, LongerSignaturesSeparateBetter)
{
    // The paper's Fig. 3 experiment: 10 unique vectors, 10 similar
    // copies each. Short signatures under-count unique vectors;
    // longer ones approach the true count.
    Rng rng(8);
    const int uniques = 10, copies = 10, dim = 10;
    std::vector<std::vector<float>> all;
    for (int u = 0; u < uniques; ++u) {
        std::vector<float> proto(dim);
        for (auto &x : proto)
            x = static_cast<float>(rng.normal());
        all.push_back(proto);
        for (int c = 0; c < copies; ++c) {
            std::vector<float> v = proto;
            for (auto &x : v)
                x += 0.01f * static_cast<float>(rng.normal());
            all.push_back(v);
        }
    }
    RPQEngine rpq(dim, 64, 9);
    auto count_unique = [&](int bits) {
        std::set<std::string> sigs;
        for (const auto &v : all)
            sigs.insert(rpq.signatureOf(v.data(), bits).str());
        return static_cast<int>(sigs.size());
    };
    const int u4 = count_unique(4);
    const int u32 = count_unique(32);
    EXPECT_LE(u4, u32);
    EXPECT_LE(u4, uniques + 4);  // short sigs merge distinct vectors
    EXPECT_NEAR(u32, uniques, 3); // long sigs recover the truth
}

TEST(RPQ, SignaturePrefixConsistency)
{
    // The adaptive controller grows signatures; bit n must not depend
    // on the requested length (incremental extension).
    RPQEngine rpq(9, 48, 10);
    Rng rng(5);
    std::vector<float> v(9);
    for (auto &x : v)
        x = static_cast<float>(rng.normal());
    Signature s20 = rpq.signatureOf(v.data(), 20);
    Signature s48 = rpq.signatureOf(v.data(), 48);
    EXPECT_TRUE(s48.prefix(20) == s20);
}

TEST(RPQ, ConvolutionFormulationMatchesRowForm)
{
    // §III-B1: signature bits computed by sliding the reshaped random
    // filter over the image equal the row-wise RPQ on im2col patches.
    Rng rng(11);
    Tensor image({7, 7});
    image.fillNormal(rng);
    const int64_t k = 3;
    RPQEngine rpq(k * k, 16, 12);

    // Row form: extract patches then hash.
    Tensor nchw({1, 1, 7, 7});
    for (int64_t i = 0; i < image.numel(); ++i)
        nchw[i] = image[i];
    ConvSpec spec;
    spec.kernelH = spec.kernelW = k;
    Tensor rows = im2col(nchw, spec);
    auto sigs = rpq.signaturesOf(rows, 16);

    // Convolution form, bit by bit.
    for (int n = 0; n < 16; ++n) {
        auto bits = rpq.bitViaConvolution(image, k, n);
        ASSERT_EQ(bits.size(), sigs.size());
        for (size_t i = 0; i < bits.size(); ++i)
            EXPECT_EQ(bits[i], sigs[i].bit(n))
                << "vector " << i << " bit " << n;
    }
}

TEST(RPQ, RandomFilterReshapeRoundTrips)
{
    RPQEngine rpq(9, 8, 13);
    Tensor f = rpq.randomFilter2D(3, 3);
    std::vector<float> unit(9, 0.0f);
    for (int64_t i = 0; i < 9; ++i) {
        unit.assign(9, 0.0f);
        unit[static_cast<size_t>(i)] = 1.0f;
        EXPECT_FLOAT_EQ(rpq.project(unit.data(), 3), f[i]);
    }
}

TEST(RPQ, ProjectionIsLinear)
{
    RPQEngine rpq(6, 4, 14);
    Rng rng(6);
    std::vector<float> a(6), b(6), ab(6);
    for (int i = 0; i < 6; ++i) {
        a[static_cast<size_t>(i)] = static_cast<float>(rng.normal());
        b[static_cast<size_t>(i)] = static_cast<float>(rng.normal());
        ab[static_cast<size_t>(i)] = a[static_cast<size_t>(i)] +
                                     b[static_cast<size_t>(i)];
    }
    for (int n = 0; n < 4; ++n)
        EXPECT_NEAR(rpq.project(ab.data(), n),
                    rpq.project(a.data(), n) + rpq.project(b.data(), n),
                    1e-4f);
}

TEST(RPQ, InvalidConstructionDies)
{
    EXPECT_DEATH(RPQEngine(0, 8, 1), "positive");
    EXPECT_DEATH(RPQEngine(9, 0, 1), "positive");
}

TEST(RPQ, TooManyBitsRequestedDies)
{
    RPQEngine rpq(9, 8, 1);
    std::vector<float> v(9, 1.0f);
    EXPECT_DEATH(rpq.signatureOf(v.data(), 9), "bits");
}

} // namespace
} // namespace mercury
