/**
 * @file
 * Tests for MCACHE semantics: the Fig. 9 insert flow, independent
 * VT/VD validation, the no-replacement policy, multi-version data,
 * the VD bitline, and the per-set insert queues.
 */

#include <gtest/gtest.h>

#include "core/mcache.hpp"

namespace mercury {
namespace {

Signature
sigOf(uint64_t pattern, int bits = 20)
{
    Signature s(bits);
    for (int i = 0; i < bits && i < 64; ++i)
        s.setBit(i, (pattern >> i) & 1);
    return s;
}

TEST(MCache, FirstLookupIsMau)
{
    MCache c(16, 4, 2);
    const auto r = c.lookupOrInsert(sigOf(0xABC));
    EXPECT_EQ(r.outcome, McacheOutcome::Mau);
    EXPECT_GE(r.entryId, 0);
}

TEST(MCache, SecondLookupIsHitWithSameId)
{
    MCache c(16, 4, 2);
    const auto first = c.lookupOrInsert(sigOf(0xABC));
    const auto second = c.lookupOrInsert(sigOf(0xABC));
    EXPECT_EQ(second.outcome, McacheOutcome::Hit);
    EXPECT_EQ(second.entryId, first.entryId);
}

TEST(MCache, DistinctSignaturesGetDistinctEntries)
{
    MCache c(16, 4, 2);
    const auto a = c.lookupOrInsert(sigOf(1));
    const auto b = c.lookupOrInsert(sigOf(2));
    EXPECT_NE(a.entryId, b.entryId);
}

TEST(MCache, FullSetYieldsMnuNoReplacement)
{
    // Single set, 2 ways: the third distinct signature is MNU and the
    // first two remain cached (no replacement, §III-B3).
    MCache c(1, 2, 1);
    const auto a = c.lookupOrInsert(sigOf(1));
    const auto b = c.lookupOrInsert(sigOf(2));
    const auto d = c.lookupOrInsert(sigOf(3));
    EXPECT_EQ(a.outcome, McacheOutcome::Mau);
    EXPECT_EQ(b.outcome, McacheOutcome::Mau);
    EXPECT_EQ(d.outcome, McacheOutcome::Mnu);
    EXPECT_EQ(d.entryId, -1);
    EXPECT_EQ(c.lookupOrInsert(sigOf(1)).outcome, McacheOutcome::Hit);
    EXPECT_EQ(c.lookupOrInsert(sigOf(2)).outcome, McacheOutcome::Hit);
    EXPECT_EQ(c.lookupOrInsert(sigOf(3)).outcome, McacheOutcome::Mnu);
}

TEST(MCache, TagValidBeforeData)
{
    MCache c(4, 2, 2);
    const auto r = c.lookupOrInsert(sigOf(9));
    // VT set, all VD unset.
    EXPECT_FALSE(c.dataValid(r.entryId, 0));
    EXPECT_FALSE(c.dataValid(r.entryId, 1));
}

TEST(MCache, WriteThenReadData)
{
    MCache c(4, 2, 2);
    const auto r = c.lookupOrInsert(sigOf(9));
    c.writeData(r.entryId, 1, 3.5f);
    EXPECT_TRUE(c.dataValid(r.entryId, 1));
    EXPECT_FALSE(c.dataValid(r.entryId, 0));
    EXPECT_FLOAT_EQ(c.readData(r.entryId, 1), 3.5f);
}

TEST(MCache, ReadInvalidDataDies)
{
    MCache c(4, 2, 2);
    const auto r = c.lookupOrInsert(sigOf(9));
    EXPECT_DEATH(c.readData(r.entryId, 0), "invalid data");
}

TEST(MCache, MultiVersionDataIndependent)
{
    MCache c(4, 2, 4);
    const auto r = c.lookupOrInsert(sigOf(5));
    for (int v = 0; v < 4; ++v)
        c.writeData(r.entryId, v, static_cast<float>(v) * 1.5f);
    for (int v = 0; v < 4; ++v)
        EXPECT_FLOAT_EQ(c.readData(r.entryId, v),
                        static_cast<float>(v) * 1.5f);
}

TEST(MCache, BitlineInvalidatesAllDataKeepsTags)
{
    MCache c(4, 2, 2);
    const auto r = c.lookupOrInsert(sigOf(5));
    c.writeData(r.entryId, 0, 1.0f);
    c.invalidateAllData();
    EXPECT_FALSE(c.dataValid(r.entryId, 0));
    // Tag survives: next lookup is a HIT.
    EXPECT_EQ(c.lookupOrInsert(sigOf(5)).outcome, McacheOutcome::Hit);
}

TEST(MCache, ClearDropsTags)
{
    MCache c(4, 2, 2);
    c.lookupOrInsert(sigOf(5));
    c.clear();
    EXPECT_EQ(c.lookupOrInsert(sigOf(5)).outcome, McacheOutcome::Mau);
}

TEST(MCache, WriteWithoutTagDies)
{
    MCache c(4, 2, 2);
    EXPECT_DEATH(c.writeData(0, 0, 1.0f), "no valid tag");
}

TEST(MCache, SetOccupancyTracksInserts)
{
    MCache c(1, 4, 1);
    EXPECT_EQ(c.setOccupancy(0), 0);
    c.lookupOrInsert(sigOf(1));
    c.lookupOrInsert(sigOf(2));
    EXPECT_EQ(c.setOccupancy(0), 2);
    c.lookupOrInsert(sigOf(1)); // hit does not occupy a new way
    EXPECT_EQ(c.setOccupancy(0), 2);
}

TEST(MCache, InsertBacklogGrowsPerSet)
{
    MCache c(1, 8, 1);
    for (uint64_t i = 0; i < 5; ++i)
        c.lookupOrInsert(sigOf(i + 1));
    EXPECT_EQ(c.maxInsertBacklog(), 5u);
    c.clear();
    EXPECT_EQ(c.maxInsertBacklog(), 0u);
}

TEST(MCache, StatsCountOutcomes)
{
    MCache c(16, 4, 1);
    c.lookupOrInsert(sigOf(1));
    c.lookupOrInsert(sigOf(1));
    c.lookupOrInsert(sigOf(2));
    EXPECT_DOUBLE_EQ(c.stats().get("hits").value(), 1.0);
    EXPECT_DOUBLE_EQ(c.stats().get("mau").value(), 2.0);
}

TEST(MCache, EntriesMatchOrganization)
{
    MCache c(64, 16, 4);
    EXPECT_EQ(c.entries(), 1024);
    EXPECT_EQ(c.dataVersions(), 4);
}

TEST(MCache, SetIndexDeterministic)
{
    MCache c(64, 16, 1);
    EXPECT_EQ(c.setIndexOf(sigOf(77)), c.setIndexOf(sigOf(77)));
}

TEST(MCache, InvalidOrganizationDies)
{
    EXPECT_DEATH(MCache(0, 4, 1), "positive");
}

class McacheOrgTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(McacheOrgTest, CapacityBoundsUniqueInsertions)
{
    const auto [sets, ways] = GetParam();
    MCache c(sets, ways, 1);
    int mau = 0, mnu = 0;
    // Insert many more distinct signatures than entries.
    const int n = sets * ways * 3;
    for (int i = 0; i < n; ++i) {
        const auto r = c.lookupOrInsert(sigOf(
            static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ull + 1, 40));
        mau += r.outcome == McacheOutcome::Mau;
        mnu += r.outcome == McacheOutcome::Mnu;
    }
    EXPECT_LE(mau, sets * ways);
    EXPECT_EQ(mau + mnu, n);
    // With 3x pressure most sets should fill.
    EXPECT_GT(mau, sets * ways / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Organizations, McacheOrgTest,
    ::testing::Values(std::make_tuple(16, 2), std::make_tuple(32, 8),
                      std::make_tuple(64, 16), std::make_tuple(128, 8)));

} // namespace
} // namespace mercury
