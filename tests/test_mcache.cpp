/**
 * @file
 * Tests for MCACHE semantics: the Fig. 9 insert flow, independent
 * VT/VD validation, the no-replacement policy, multi-version data,
 * the VD bitline, and the per-set insert queues.
 */

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "core/mcache.hpp"
#include "pipeline/sharded_mcache.hpp"

namespace mercury {
namespace {

Signature
sigOf(uint64_t pattern, int bits = 20)
{
    Signature s(bits);
    for (int i = 0; i < bits && i < 64; ++i)
        s.setBit(i, (pattern >> i) & 1);
    return s;
}

TEST(MCache, FirstLookupIsMau)
{
    MCache c(16, 4, 2);
    const auto r = c.lookupOrInsert(sigOf(0xABC));
    EXPECT_EQ(r.outcome, McacheOutcome::Mau);
    EXPECT_GE(r.entryId, 0);
}

TEST(MCache, SecondLookupIsHitWithSameId)
{
    MCache c(16, 4, 2);
    const auto first = c.lookupOrInsert(sigOf(0xABC));
    const auto second = c.lookupOrInsert(sigOf(0xABC));
    EXPECT_EQ(second.outcome, McacheOutcome::Hit);
    EXPECT_EQ(second.entryId, first.entryId);
}

TEST(MCache, DistinctSignaturesGetDistinctEntries)
{
    MCache c(16, 4, 2);
    const auto a = c.lookupOrInsert(sigOf(1));
    const auto b = c.lookupOrInsert(sigOf(2));
    EXPECT_NE(a.entryId, b.entryId);
}

TEST(MCache, FullSetYieldsMnuNoReplacement)
{
    // Single set, 2 ways: the third distinct signature is MNU and the
    // first two remain cached (no replacement, §III-B3).
    MCache c(1, 2, 1);
    const auto a = c.lookupOrInsert(sigOf(1));
    const auto b = c.lookupOrInsert(sigOf(2));
    const auto d = c.lookupOrInsert(sigOf(3));
    EXPECT_EQ(a.outcome, McacheOutcome::Mau);
    EXPECT_EQ(b.outcome, McacheOutcome::Mau);
    EXPECT_EQ(d.outcome, McacheOutcome::Mnu);
    EXPECT_EQ(d.entryId, -1);
    EXPECT_EQ(c.lookupOrInsert(sigOf(1)).outcome, McacheOutcome::Hit);
    EXPECT_EQ(c.lookupOrInsert(sigOf(2)).outcome, McacheOutcome::Hit);
    EXPECT_EQ(c.lookupOrInsert(sigOf(3)).outcome, McacheOutcome::Mnu);
}

TEST(MCache, TagValidBeforeData)
{
    MCache c(4, 2, 2);
    const auto r = c.lookupOrInsert(sigOf(9));
    // VT set, all VD unset.
    EXPECT_FALSE(c.dataValid(r.entryId, 0));
    EXPECT_FALSE(c.dataValid(r.entryId, 1));
}

TEST(MCache, WriteThenReadData)
{
    MCache c(4, 2, 2);
    const auto r = c.lookupOrInsert(sigOf(9));
    c.writeData(r.entryId, 1, 3.5f);
    EXPECT_TRUE(c.dataValid(r.entryId, 1));
    EXPECT_FALSE(c.dataValid(r.entryId, 0));
    EXPECT_FLOAT_EQ(c.readData(r.entryId, 1), 3.5f);
}

TEST(MCache, ReadInvalidDataDies)
{
    MCache c(4, 2, 2);
    const auto r = c.lookupOrInsert(sigOf(9));
    EXPECT_DEATH(c.readData(r.entryId, 0), "invalid data");
}

TEST(MCache, MultiVersionDataIndependent)
{
    MCache c(4, 2, 4);
    const auto r = c.lookupOrInsert(sigOf(5));
    for (int v = 0; v < 4; ++v)
        c.writeData(r.entryId, v, static_cast<float>(v) * 1.5f);
    for (int v = 0; v < 4; ++v)
        EXPECT_FLOAT_EQ(c.readData(r.entryId, v),
                        static_cast<float>(v) * 1.5f);
}

TEST(MCache, BitlineInvalidatesAllDataKeepsTags)
{
    MCache c(4, 2, 2);
    const auto r = c.lookupOrInsert(sigOf(5));
    c.writeData(r.entryId, 0, 1.0f);
    c.invalidateAllData();
    EXPECT_FALSE(c.dataValid(r.entryId, 0));
    // Tag survives: next lookup is a HIT.
    EXPECT_EQ(c.lookupOrInsert(sigOf(5)).outcome, McacheOutcome::Hit);
}

TEST(MCache, ClearDropsTags)
{
    MCache c(4, 2, 2);
    c.lookupOrInsert(sigOf(5));
    c.clear();
    EXPECT_EQ(c.lookupOrInsert(sigOf(5)).outcome, McacheOutcome::Mau);
}

TEST(MCache, WriteWithoutTagDies)
{
    MCache c(4, 2, 2);
    EXPECT_DEATH(c.writeData(0, 0, 1.0f), "no valid tag");
}

TEST(MCache, SetOccupancyTracksInserts)
{
    MCache c(1, 4, 1);
    EXPECT_EQ(c.setOccupancy(0), 0);
    c.lookupOrInsert(sigOf(1));
    c.lookupOrInsert(sigOf(2));
    EXPECT_EQ(c.setOccupancy(0), 2);
    c.lookupOrInsert(sigOf(1)); // hit does not occupy a new way
    EXPECT_EQ(c.setOccupancy(0), 2);
}

TEST(MCache, InsertBacklogGrowsPerSet)
{
    MCache c(1, 8, 1);
    for (uint64_t i = 0; i < 5; ++i)
        c.lookupOrInsert(sigOf(i + 1));
    EXPECT_EQ(c.maxInsertBacklog(), 5u);
    c.clear();
    EXPECT_EQ(c.maxInsertBacklog(), 0u);
}

TEST(MCache, StatsCountOutcomes)
{
    MCache c(16, 4, 1);
    c.lookupOrInsert(sigOf(1));
    c.lookupOrInsert(sigOf(1));
    c.lookupOrInsert(sigOf(2));
    EXPECT_DOUBLE_EQ(c.stats().get("hits").value(), 1.0);
    EXPECT_DOUBLE_EQ(c.stats().get("mau").value(), 2.0);
}

TEST(MCache, EntriesMatchOrganization)
{
    MCache c(64, 16, 4);
    EXPECT_EQ(c.entries(), 1024);
    EXPECT_EQ(c.dataVersions(), 4);
}

TEST(MCache, SetIndexDeterministic)
{
    MCache c(64, 16, 1);
    EXPECT_EQ(c.setIndexOf(sigOf(77)), c.setIndexOf(sigOf(77)));
}

TEST(MCache, InvalidOrganizationDies)
{
    EXPECT_DEATH(MCache(0, 4, 1), "positive");
}

class McacheOrgTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(McacheOrgTest, CapacityBoundsUniqueInsertions)
{
    const auto [sets, ways] = GetParam();
    MCache c(sets, ways, 1);
    int mau = 0, mnu = 0;
    // Insert many more distinct signatures than entries.
    const int n = sets * ways * 3;
    for (int i = 0; i < n; ++i) {
        const auto r = c.lookupOrInsert(sigOf(
            static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ull + 1, 40));
        mau += r.outcome == McacheOutcome::Mau;
        mnu += r.outcome == McacheOutcome::Mnu;
    }
    EXPECT_LE(mau, sets * ways);
    EXPECT_EQ(mau + mnu, n);
    // With 3x pressure most sets should fill.
    EXPECT_GT(mau, sets * ways / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Organizations, McacheOrgTest,
    ::testing::Values(std::make_tuple(16, 2), std::make_tuple(32, 8),
                      std::make_tuple(64, 16), std::make_tuple(128, 8)));

// ---- Serving-layer lifecycle: epochs, eviction, quota, pins ---------

TEST(McacheLifecycle, InsertStampsEpochAndTenant)
{
    MCache c(16, 4, 1);
    c.setEpoch(7);
    c.setInsertTenant(3);
    const auto r = c.lookupOrInsert(sigOf(0xABC));
    ASSERT_EQ(r.outcome, McacheOutcome::Mau);
    EXPECT_EQ(c.entryEpoch(r.entryId), 7u);
    EXPECT_EQ(c.entryTenant(r.entryId), 3);
    EXPECT_EQ(c.tenantEntries(3), 1);
}

TEST(McacheLifecycle, HitRefreshesEpoch)
{
    MCache c(16, 4, 1);
    c.setEpoch(1);
    const auto r = c.lookupOrInsert(sigOf(0xABC));
    c.setEpoch(9);
    const auto again = c.lookupOrInsert(sigOf(0xABC));
    ASSERT_EQ(again.outcome, McacheOutcome::Hit);
    EXPECT_EQ(c.entryEpoch(r.entryId), 9u);
}

TEST(McacheLifecycle, EvictOlderThanAgesOldestFirst)
{
    // Three lines touched at epochs 1, 2, 3; raising the eviction
    // floor removes strictly the lines below it, oldest first.
    MCache c(16, 8, 1);
    c.setEpoch(1);
    const auto a = c.lookupOrInsert(sigOf(1));
    c.setEpoch(2);
    const auto b = c.lookupOrInsert(sigOf(2));
    c.setEpoch(3);
    const auto d = c.lookupOrInsert(sigOf(3));
    EXPECT_EQ(c.evictOlderThan(2), 1); // only epoch-1 goes
    EXPECT_FALSE(c.tagValid(a.entryId));
    EXPECT_TRUE(c.tagValid(b.entryId));
    EXPECT_TRUE(c.tagValid(d.entryId));
    EXPECT_EQ(c.evictOlderThan(4), 2); // the rest
    EXPECT_FALSE(c.tagValid(b.entryId));
    EXPECT_FALSE(c.tagValid(d.entryId));
}

TEST(McacheLifecycle, HitRefreshSavesLineFromEviction)
{
    MCache c(16, 8, 1);
    c.setEpoch(1);
    const auto a = c.lookupOrInsert(sigOf(1));
    (void)c.lookupOrInsert(sigOf(2));
    c.setEpoch(5);
    (void)c.lookupOrInsert(sigOf(1)); // HIT refreshes to epoch 5
    EXPECT_EQ(c.evictOlderThan(5), 1); // sigOf(2) only
    EXPECT_TRUE(c.tagValid(a.entryId));
}

TEST(McacheLifecycle, EvictionFreesTheWayForReinsert)
{
    MCache c(1, 1, 1);
    c.setEpoch(1);
    (void)c.lookupOrInsert(sigOf(1));
    EXPECT_EQ(c.lookupOrInsert(sigOf(2)).outcome, McacheOutcome::Mnu);
    c.setEpoch(2);
    EXPECT_EQ(c.evictOlderThan(2), 1);
    EXPECT_EQ(c.lookupOrInsert(sigOf(2)).outcome, McacheOutcome::Mau);
}

TEST(McacheLifecycle, EvictTenantRemovesOnlyThatTenant)
{
    MCache c(16, 8, 1);
    c.setInsertTenant(0);
    const auto a = c.lookupOrInsert(sigOf(1));
    c.setInsertTenant(1);
    const auto b = c.lookupOrInsert(sigOf(2));
    EXPECT_EQ(c.evictTenant(0), 1);
    EXPECT_FALSE(c.tagValid(a.entryId));
    EXPECT_TRUE(c.tagValid(b.entryId));
    EXPECT_EQ(c.tenantEntries(1), 1);
}

TEST(McacheLifecycle, PinnedLineSurvivesEviction)
{
    // The in-flight-HIT contract: a pinned line is never evicted, so
    // an entry id handed out by a probe stays valid across any
    // eviction sweep that runs while the client holds the pin.
    MCache c(16, 8, 1);
    c.setEpoch(1);
    const auto a = c.lookupOrInsert(sigOf(1));
    c.pin(a.entryId);
    c.setEpoch(10);
    EXPECT_EQ(c.evictOlderThan(10), 0);
    EXPECT_TRUE(c.tagValid(a.entryId));
    EXPECT_EQ(c.pinCount(a.entryId), 1u);
    c.unpin(a.entryId);
    EXPECT_EQ(c.evictOlderThan(10), 1); // unpinned: now evictable
}

TEST(McacheLifecycle, PinIsCountedNotBoolean)
{
    MCache c(16, 8, 1);
    const auto a = c.lookupOrInsert(sigOf(1));
    c.pin(a.entryId);
    c.pin(a.entryId);
    c.unpin(a.entryId);
    c.setEpoch(10);
    EXPECT_EQ(c.evictOlderThan(10), 0); // one pin still held
    c.unpin(a.entryId);
    EXPECT_EQ(c.evictOlderThan(10), 1);
}

TEST(McacheLifecycle, UnpinWithoutPinPanics)
{
    MCache c(16, 8, 1);
    const auto a = c.lookupOrInsert(sigOf(1));
    EXPECT_DEATH(c.unpin(a.entryId), "unpin");
}

TEST(McacheLifecycle, RestoreLineReinstallsTagAndMetadata)
{
    MCache c(16, 4, 2);
    const auto orig = c.lookupOrInsert(sigOf(0xF00D));
    c.writeData(orig.entryId, 0, 1.5f);
    const Signature tag = c.tagOf(orig.entryId);
    c.clear();
    c.restoreLine(orig.entryId, tag, 42, 5);
    // Same tag in the same way: the probe HITs with the original id.
    const auto again = c.lookupOrInsert(sigOf(0xF00D));
    EXPECT_EQ(again.outcome, McacheOutcome::Hit);
    EXPECT_EQ(again.entryId, orig.entryId);
    EXPECT_EQ(c.entryTenant(orig.entryId), 5);
    // Data versions do not survive a restore.
    EXPECT_FALSE(c.dataValid(orig.entryId, 0));
}

TEST(McacheLifecycle, RestoreIntoOccupiedLinePanics)
{
    MCache c(16, 4, 1);
    const auto a = c.lookupOrInsert(sigOf(1));
    EXPECT_DEATH(c.restoreLine(a.entryId, sigOf(2), 0, -1),
                 "occupied");
}

namespace {

/** Quota gate that admits `limit` reservations per tenant (serial). */
class CountingGate : public McacheQuotaGate
{
  public:
    explicit CountingGate(int64_t limit) : limit_(limit) {}
    bool tryReserve(int tenant) override
    {
        if (tenant < 0)
            return true;
        if (counts_[tenant] >= limit_)
            return false;
        ++counts_[tenant];
        return true;
    }
    void release(int tenant) override
    {
        if (tenant >= 0)
            --counts_[tenant];
    }
    int64_t count(int tenant) const
    {
        const auto it = counts_.find(tenant);
        return it == counts_.end() ? 0 : it->second;
    }

  private:
    int64_t limit_;
    std::map<int, int64_t> counts_;
};

} // namespace

TEST(McacheLifecycle, QuotaGateTurnsInsertsIntoMnu)
{
    MCache c(64, 8, 1);
    CountingGate gate(2);
    c.setQuotaGate(&gate);
    c.setInsertTenant(0);
    EXPECT_EQ(c.lookupOrInsert(sigOf(1)).outcome, McacheOutcome::Mau);
    EXPECT_EQ(c.lookupOrInsert(sigOf(2)).outcome, McacheOutcome::Mau);
    // Third insert: plenty of free ways, but the quota says MNU.
    EXPECT_EQ(c.lookupOrInsert(sigOf(3)).outcome, McacheOutcome::Mnu);
    // HITs are not inserts and stay unaffected.
    EXPECT_EQ(c.lookupOrInsert(sigOf(1)).outcome, McacheOutcome::Hit);
}

TEST(ShardedLifecycle, QuotaNeverExceededUnderConcurrentInserts)
{
    // Hammer one quota'd shared cache from several threads inserting
    // for the same tenant (the insert-tenant stamp is cache-global,
    // so concurrency happens within one tenant — exactly how the
    // server's intra-pass worker threads hit the gate). The
    // reserve-then-check gate must keep the tenant at or below quota
    // at every instant, regardless of interleaving.
    constexpr int kTenant = 2;
    constexpr int64_t kQuota = 24;
    ShardedMCache cache(/*sets=*/256, /*ways=*/8, /*data_versions=*/1,
                        /*shards=*/4);
    cache.setTenantQuota(kQuota, /*max_tenants=*/4);
    cache.setInsertTenant(kTenant);

    std::vector<std::thread> threads;
    for (int w = 0; w < 4; ++w) {
        threads.emplace_back([&cache, w, kTenant, kQuota] {
            for (int i = 0; i < 400; ++i) {
                const uint64_t pattern =
                    (static_cast<uint64_t>(w) << 32) ^
                    (static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ull);
                (void)cache.lookupOrInsert(sigOf(pattern, 44));
                EXPECT_LE(cache.tenantReserved(kTenant), kQuota);
            }
        });
    }
    for (auto &th : threads)
        th.join();

    // The reservation count and the actual valid-line count agree,
    // and both respect the quota.
    EXPECT_EQ(cache.tenantReserved(kTenant), kQuota);
    int64_t held = 0;
    for (int s = 0; s < cache.shardCount(); ++s)
        held += cache.shard(s).tenantEntries(kTenant);
    EXPECT_EQ(held, kQuota);
}

TEST(McacheLifecycle, EvictionReleasesQuota)
{
    MCache c(64, 8, 1);
    CountingGate gate(1);
    c.setQuotaGate(&gate);
    c.setInsertTenant(0);
    c.setEpoch(1);
    const auto a = c.lookupOrInsert(sigOf(1));
    ASSERT_EQ(a.outcome, McacheOutcome::Mau);
    EXPECT_EQ(c.lookupOrInsert(sigOf(2)).outcome, McacheOutcome::Mnu);
    c.setEpoch(2);
    EXPECT_EQ(c.evictOlderThan(2), 1);
    EXPECT_EQ(gate.count(0), 0);
    EXPECT_EQ(c.lookupOrInsert(sigOf(2)).outcome, McacheOutcome::Mau);
}

} // namespace
} // namespace mercury
