/**
 * @file
 * Unit tests for the tensor substrate: shapes, convolution forward
 * and backward (validated with numerical gradients), im2col, matmul,
 * pooling, activations, and losses.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace mercury {
namespace {

/** Central-difference numerical gradient of a scalar function. */
float
numericalGrad(const std::function<float()> &f, float &param)
{
    const float eps = 1e-3f;
    const float saved = param;
    param = saved + eps;
    const float hi = f();
    param = saved - eps;
    const float lo = f();
    param = saved;
    return (hi - lo) / (2 * eps);
}

TEST(Tensor, ZeroFilledConstruction)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.numel(), 6);
    EXPECT_EQ(t.rank(), 2);
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ShapeDataConstruction)
{
    Tensor t({2, 2}, {1, 2, 3, 4});
    EXPECT_EQ(t.at2(0, 1), 2.0f);
    EXPECT_EQ(t.at2(1, 0), 3.0f);
}

TEST(Tensor, ShapeDataMismatchDies)
{
    EXPECT_DEATH(Tensor({2, 2}, {1.0f}), "mismatch");
}

TEST(Tensor, NegativeDimIndexing)
{
    Tensor t({2, 3, 4, 5});
    EXPECT_EQ(t.dim(-1), 5);
    EXPECT_EQ(t.dim(-4), 2);
}

TEST(Tensor, At4RowMajorLayout)
{
    Tensor t({1, 2, 2, 2});
    t.at4(0, 1, 1, 1) = 9.0f;
    EXPECT_EQ(t[7], 9.0f);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
    t.reshape({3, 2});
    EXPECT_EQ(t.at2(2, 1), 6.0f);
}

TEST(Tensor, ReshapeChangedCountDies)
{
    Tensor t({2, 3});
    EXPECT_DEATH(t.reshape({5}), "element count");
}

TEST(Tensor, FillAndEquality)
{
    Tensor a({4}), b({4});
    a.fill(2.5f);
    b.fill(2.5f);
    EXPECT_TRUE(a == b);
    b[2] = 0.0f;
    EXPECT_FALSE(a == b);
}

TEST(Tensor, MaxAbsDiff)
{
    Tensor a({3}, {1, 2, 3});
    Tensor b({3}, {1, 2.5, 3});
    EXPECT_FLOAT_EQ(a.maxAbsDiff(b), 0.5f);
}

TEST(Tensor, ShapeStr)
{
    Tensor t({2, 7});
    EXPECT_EQ(t.shapeStr(), "(2, 7)");
}

TEST(Tensor, FillNormalProducesSpread)
{
    Tensor t({1000});
    Rng rng(13);
    t.fillNormal(rng, 0.0f, 1.0f);
    float mn = 1e9f, mx = -1e9f;
    for (int64_t i = 0; i < t.numel(); ++i) {
        mn = std::min(mn, t[i]);
        mx = std::max(mx, t[i]);
    }
    EXPECT_LT(mn, -1.0f);
    EXPECT_GT(mx, 1.0f);
}

TEST(ConvForward, HandComputed3x3)
{
    // 1x1x3x3 input, single 2x2 all-ones filter, stride 1, no pad.
    Tensor in({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
    Tensor w({1, 1, 2, 2}, {1, 1, 1, 1});
    ConvSpec spec;
    spec.inChannels = 1;
    spec.outChannels = 1;
    spec.kernelH = spec.kernelW = 2;
    Tensor out = conv2dForward(in, w, Tensor(), spec);
    ASSERT_EQ(out.shape(), (std::vector<int64_t>{1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 1 + 2 + 4 + 5);
    EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 1), 2 + 3 + 5 + 6);
    EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 0), 4 + 5 + 7 + 8);
    EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 5 + 6 + 8 + 9);
}

TEST(ConvForward, BiasIsAdded)
{
    Tensor in({1, 1, 2, 2}, {1, 1, 1, 1});
    Tensor w({1, 1, 2, 2}, {1, 1, 1, 1});
    Tensor b({1}, {10.0f});
    ConvSpec spec;
    spec.kernelH = spec.kernelW = 2;
    Tensor out = conv2dForward(in, w, b, spec);
    EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 14.0f);
}

TEST(ConvForward, PaddingGrowsOutput)
{
    Tensor in({1, 1, 3, 3});
    in.fill(1.0f);
    Tensor w({1, 1, 3, 3});
    w.fill(1.0f);
    ConvSpec spec;
    spec.kernelH = spec.kernelW = 3;
    spec.pad = 1;
    Tensor out = conv2dForward(in, w, Tensor(), spec);
    ASSERT_EQ(out.shape(), (std::vector<int64_t>{1, 1, 3, 3}));
    // Center sees all 9 ones; corner sees only 4.
    EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 9.0f);
    EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 4.0f);
}

TEST(ConvForward, StrideSkipsPositions)
{
    Tensor in({1, 1, 4, 4});
    in.fill(1.0f);
    Tensor w({1, 1, 2, 2});
    w.fill(1.0f);
    ConvSpec spec;
    spec.kernelH = spec.kernelW = 2;
    spec.stride = 2;
    Tensor out = conv2dForward(in, w, Tensor(), spec);
    ASSERT_EQ(out.shape(), (std::vector<int64_t>{1, 1, 2, 2}));
}

TEST(ConvForward, GroupedConvSeparatesChannels)
{
    // Two input channels, two groups: each output channel sees only
    // its own input channel.
    Tensor in({1, 2, 2, 2});
    for (int64_t i = 0; i < 4; ++i)
        in[i] = 1.0f; // channel 0 = 1, channel 1 = 2
    for (int64_t i = 4; i < 8; ++i)
        in[i] = 2.0f;
    Tensor w({2, 1, 2, 2});
    w.fill(1.0f);
    ConvSpec spec;
    spec.inChannels = 2;
    spec.outChannels = 2;
    spec.kernelH = spec.kernelW = 2;
    spec.groups = 2;
    Tensor out = conv2dForward(in, w, Tensor(), spec);
    EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 4.0f);
    EXPECT_FLOAT_EQ(out.at4(0, 1, 0, 0), 8.0f);
}

TEST(ConvBackward, WeightGradientMatchesNumerical)
{
    Rng rng(21);
    Tensor in({2, 2, 5, 5});
    in.fillNormal(rng);
    Tensor w({3, 2, 3, 3});
    w.fillNormal(rng, 0.0f, 0.5f);
    ConvSpec spec;
    spec.inChannels = 2;
    spec.outChannels = 3;
    spec.kernelH = spec.kernelW = 3;

    // Loss = sum of outputs, so dL/dOut = all ones.
    auto loss = [&]() {
        Tensor out = conv2dForward(in, w, Tensor(), spec);
        float s = 0;
        for (int64_t i = 0; i < out.numel(); ++i)
            s += out[i];
        return s;
    };
    Tensor grad_out({2, 3, 3, 3});
    grad_out.fill(1.0f);
    Tensor gw = conv2dBackwardWeight(in, grad_out, spec);

    for (int64_t idx : {0L, 5L, 17L, 33L, 53L}) {
        const float num = numericalGrad(loss, w.data()[idx]);
        EXPECT_NEAR(gw[idx], num, 5e-2f) << "weight index " << idx;
    }
}

TEST(ConvBackward, InputGradientMatchesNumerical)
{
    Rng rng(22);
    Tensor in({1, 2, 5, 5});
    in.fillNormal(rng);
    Tensor w({2, 2, 3, 3});
    w.fillNormal(rng, 0.0f, 0.5f);
    ConvSpec spec;
    spec.inChannels = 2;
    spec.outChannels = 2;
    spec.kernelH = spec.kernelW = 3;
    spec.pad = 1;
    spec.stride = 2;

    auto loss = [&]() {
        Tensor out = conv2dForward(in, w, Tensor(), spec);
        float s = 0;
        for (int64_t i = 0; i < out.numel(); ++i)
            s += out[i];
        return s;
    };
    Tensor grad_out({1, 2, 3, 3});
    grad_out.fill(1.0f);
    Tensor gi = conv2dBackwardInput(grad_out, w, spec, 5, 5);

    for (int64_t idx : {0L, 7L, 12L, 24L, 49L}) {
        const float num = numericalGrad(loss, in.data()[idx]);
        EXPECT_NEAR(gi[idx], num, 5e-2f) << "input index " << idx;
    }
}

TEST(ConvBackward, BiasGradientSumsGradients)
{
    Tensor grad_out({2, 2, 2, 2});
    grad_out.fill(1.0f);
    Tensor gb = conv2dBackwardBias(grad_out);
    ASSERT_EQ(gb.numel(), 2);
    EXPECT_FLOAT_EQ(gb[0], 8.0f);
    EXPECT_FLOAT_EQ(gb[1], 8.0f);
}

TEST(Im2col, RowCountAndContent)
{
    Tensor in({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
    ConvSpec spec;
    spec.kernelH = spec.kernelW = 2;
    Tensor cols = im2col(in, spec);
    ASSERT_EQ(cols.shape(), (std::vector<int64_t>{4, 4}));
    // First patch is the top-left 2x2 window.
    EXPECT_FLOAT_EQ(cols.at2(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(cols.at2(0, 3), 5.0f);
    // Last patch is the bottom-right window.
    EXPECT_FLOAT_EQ(cols.at2(3, 0), 5.0f);
    EXPECT_FLOAT_EQ(cols.at2(3, 3), 9.0f);
}

TEST(Im2col, MatmulEquivalentToConv)
{
    // conv(in, w) == im2col(in) x flatten(w)^T for a single group.
    Rng rng(23);
    Tensor in({1, 3, 6, 6});
    in.fillNormal(rng);
    Tensor w({4, 3, 3, 3});
    w.fillNormal(rng);
    ConvSpec spec;
    spec.inChannels = 3;
    spec.outChannels = 4;
    spec.kernelH = spec.kernelW = 3;

    Tensor ref = conv2dForward(in, w, Tensor(), spec);
    Tensor cols = im2col(in, spec);
    Tensor wf = w;
    wf.reshape({4, 27});
    Tensor out = matmulTransposeB(cols, wf); // (16, 4)
    for (int64_t v = 0; v < 16; ++v)
        for (int64_t f = 0; f < 4; ++f) {
            const int64_t y = v / 4, x = v % 4;
            EXPECT_NEAR(out.at2(v, f), ref.at4(0, f, y, x), 1e-4f);
        }
}

TEST(Matmul, KnownProduct)
{
    Tensor a({2, 2}, {1, 2, 3, 4});
    Tensor b({2, 2}, {5, 6, 7, 8});
    Tensor c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.at2(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(c.at2(1, 1), 50.0f);
}

TEST(Matmul, ShapeMismatchDies)
{
    Tensor a({2, 3}), b({2, 3});
    EXPECT_DEATH(matmul(a, b), "mismatch");
}

TEST(Matmul, TransposeBEquivalence)
{
    Rng rng(24);
    Tensor a({3, 5}), b({4, 5});
    a.fillNormal(rng);
    b.fillNormal(rng);
    Tensor direct = matmulTransposeB(a, b);
    Tensor viaT = matmul(a, transpose2d(b));
    EXPECT_LT(direct.maxAbsDiff(viaT), 1e-5f);
}

TEST(Transpose, SwapsIndices)
{
    Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor t = transpose2d(a);
    EXPECT_EQ(t.shape(), (std::vector<int64_t>{3, 2}));
    EXPECT_FLOAT_EQ(t.at2(2, 1), 6.0f);
}

TEST(Relu, ForwardClampsNegatives)
{
    Tensor x({4}, {-1, 0, 2, -3});
    Tensor y = reluForward(x);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[2], 2.0f);
    EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(Relu, BackwardMasksGradient)
{
    Tensor x({4}, {-1, 1, 2, -3});
    Tensor g({4}, {10, 10, 10, 10});
    Tensor gx = reluBackward(x, g);
    EXPECT_FLOAT_EQ(gx[0], 0.0f);
    EXPECT_FLOAT_EQ(gx[1], 10.0f);
    EXPECT_FLOAT_EQ(gx[3], 0.0f);
}

TEST(MaxPool, ForwardPicksMaxAndBackwardRoutes)
{
    Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
    std::vector<int32_t> argmax;
    Tensor y = maxPool2x2Forward(x, argmax);
    ASSERT_EQ(y.numel(), 1);
    EXPECT_FLOAT_EQ(y[0], 5.0f);

    Tensor gy({1, 1, 1, 1}, {2.0f});
    Tensor gx = maxPool2x2Backward(x, gy, argmax);
    EXPECT_FLOAT_EQ(gx[1], 2.0f);
    EXPECT_FLOAT_EQ(gx[0], 0.0f);
}

TEST(GlobalAvgPool, ForwardAveragesAndBackwardSpreads)
{
    Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
    Tensor y = globalAvgPoolForward(x);
    EXPECT_FLOAT_EQ(y.at2(0, 0), 2.5f);
    Tensor gy({1, 1}, {4.0f});
    Tensor gx = globalAvgPoolBackward(x, gy);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(gx[i], 1.0f);
}

TEST(SoftmaxXent, UniformLogitsGiveLogK)
{
    Tensor logits({1, 4});
    std::vector<int> labels{2};
    Tensor grad;
    const float loss = softmaxCrossEntropy(logits, labels, grad);
    EXPECT_NEAR(loss, std::log(4.0f), 1e-5f);
    // Gradient sums to zero per row.
    float s = 0;
    for (int64_t j = 0; j < 4; ++j)
        s += grad.at2(0, j);
    EXPECT_NEAR(s, 0.0f, 1e-6f);
}

TEST(SoftmaxXent, GradientMatchesNumerical)
{
    Rng rng(25);
    Tensor logits({3, 5});
    logits.fillNormal(rng);
    std::vector<int> labels{1, 4, 0};
    Tensor grad;
    softmaxCrossEntropy(logits, labels, grad);

    auto loss = [&]() {
        Tensor g;
        return softmaxCrossEntropy(logits, labels, g);
    };
    for (int64_t idx : {0L, 6L, 14L}) {
        const float num = numericalGrad(loss, logits.data()[idx]);
        EXPECT_NEAR(grad[idx], num, 1e-3f);
    }
}

TEST(SoftmaxRows, RowsSumToOne)
{
    Rng rng(26);
    Tensor x({4, 7});
    x.fillNormal(rng, 0.0f, 3.0f);
    Tensor p = softmaxRows(x);
    for (int64_t i = 0; i < 4; ++i) {
        float s = 0;
        for (int64_t j = 0; j < 7; ++j) {
            s += p.at2(i, j);
            EXPECT_GE(p.at2(i, j), 0.0f);
        }
        EXPECT_NEAR(s, 1.0f, 1e-5f);
    }
}

TEST(MacCount, MatchesClosedForm)
{
    ConvSpec spec;
    spec.inChannels = 3;
    spec.outChannels = 8;
    spec.kernelH = spec.kernelW = 3;
    // out = 6x6 for 8x8 input
    EXPECT_EQ(convMacCount(2, 8, 8, spec),
              2ull * 6 * 6 * 8 * 3 * 3 * 3);
}

} // namespace
} // namespace mercury
