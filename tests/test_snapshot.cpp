/**
 * @file
 * Serving-snapshot format tests: canonical round-trips across cache
 * organizations and shard counts, the full-validate-then-move failure
 * contract (truncation / corruption / version bumps reject cleanly
 * with no partial restore), and SignatureRecord sections.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "serve/snapshot.hpp"

namespace mercury {
namespace {

Signature
sigOf(uint64_t pattern, int bits = 20)
{
    Signature s(bits);
    for (int i = 0; i < bits && i < 64; ++i)
        s.setBit(i, (pattern >> i) & 1);
    return s;
}

/** Fill a cache with `n` distinct tags across epochs and tenants. */
void
populate(ShardedMCache &cache, int n, int bits)
{
    for (int i = 0; i < n; ++i) {
        cache.setEpoch(static_cast<uint64_t>(1 + i % 5));
        cache.setInsertTenant(i % 3);
        (void)cache.lookupOrInsert(
            sigOf(static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ull + 1,
                  bits));
    }
}

/** Serialized bytes of a cache's tag plane under one key. */
std::vector<uint8_t>
bytesOf(const ShardedMCache &cache, uint64_t key)
{
    Snapshot snap;
    snap.addCache(key, cache);
    return snap.serialize();
}

// ---- Round-trips ----------------------------------------------------

class SnapshotOrgTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(SnapshotOrgTest, SerializeRestoreSerializeIsByteIdentical)
{
    const auto [sets, ways, shards, lines] = GetParam();
    ShardedMCache cache(sets, ways, /*data_versions=*/2, shards);
    populate(cache, lines, /*bits=*/24);

    const std::vector<uint8_t> first = bytesOf(cache, 7);

    Snapshot parsed;
    std::string error;
    ASSERT_TRUE(
        Snapshot::parse(first.data(), first.size(), parsed, error))
        << error;

    // Restore into a fresh cache with a DIFFERENT shard count: global
    // entry ids make shard count a throughput knob, not state.
    ShardedMCache restored(sets, ways, /*data_versions=*/2,
                           shards == 1 ? 4 : 1);
    ASSERT_TRUE(parsed.restoreCache(7, restored, error)) << error;

    EXPECT_EQ(bytesOf(restored, 7), first);
}

INSTANTIATE_TEST_SUITE_P(
    Organizations, SnapshotOrgTest,
    ::testing::Values(std::make_tuple(16, 2, 1, 0),
                      std::make_tuple(16, 2, 1, 12),
                      std::make_tuple(64, 8, 4, 100),
                      std::make_tuple(128, 4, 8, 300)));

TEST(Snapshot, RestoredCacheHitsTheOriginalTags)
{
    ShardedMCache cache(32, 4, 1, 2);
    populate(cache, 40, 20);

    Snapshot snap;
    snap.addCache(1, cache);

    ShardedMCache restored(32, 4, 1, 3);
    std::string error;
    ASSERT_TRUE(snap.restoreCache(1, restored, error)) << error;

    // Every tag probes to a HIT with the original global entry id and
    // keeps its lifecycle metadata.
    for (int i = 0; i < 40; ++i) {
        const Signature s = sigOf(
            static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ull + 1, 20);
        const auto orig = cache.lookupOrInsert(s);
        ASSERT_EQ(orig.outcome, McacheOutcome::Hit);
        const auto got = restored.lookupOrInsert(s);
        EXPECT_EQ(got.outcome, McacheOutcome::Hit);
        EXPECT_EQ(got.entryId, orig.entryId);
        EXPECT_EQ(restored.entryTenant(got.entryId),
                  cache.entryTenant(orig.entryId));
    }
}

TEST(Snapshot, RestorePreservesEpochsForEviction)
{
    ShardedMCache cache(32, 4, 1, 1);
    cache.setEpoch(3);
    (void)cache.lookupOrInsert(sigOf(1));
    cache.setEpoch(9);
    (void)cache.lookupOrInsert(sigOf(2));

    Snapshot snap;
    snap.addCache(1, cache);
    ShardedMCache restored(32, 4, 1, 1);
    std::string error;
    ASSERT_TRUE(snap.restoreCache(1, restored, error)) << error;

    // Aging continues from the restored epochs.
    EXPECT_EQ(restored.evictOlderThan(9), 1);
    EXPECT_EQ(restored.lookupOrInsert(sigOf(2)).outcome,
              McacheOutcome::Hit);
}

TEST(Snapshot, RestoreRecountsTenantQuota)
{
    ShardedMCache cache(64, 8, 1, 2);
    populate(cache, 30, 20); // tenants 0..2, ~10 lines each

    Snapshot snap;
    snap.addCache(1, cache);

    ShardedMCache restored(64, 8, 1, 2);
    restored.setTenantQuota(64, /*max_tenants=*/8);
    std::string error;
    ASSERT_TRUE(snap.restoreCache(1, restored, error)) << error;

    int64_t total = 0;
    for (int t = 0; t < 3; ++t) {
        int64_t held = 0;
        for (int s = 0; s < cache.shardCount(); ++s)
            held += cache.shard(s).tenantEntries(t);
        EXPECT_EQ(restored.tenantReserved(t), held);
        total += held;
    }
    EXPECT_GT(total, 0);
}

TEST(Snapshot, MultipleSectionsAndLookup)
{
    ShardedMCache a(16, 2, 1, 1);
    ShardedMCache b(32, 4, 1, 2);
    populate(a, 5, 20);
    populate(b, 9, 20);

    Snapshot snap;
    snap.addCache(10, a);
    snap.addCache(20, b);
    ASSERT_NE(snap.findCache(10), nullptr);
    ASSERT_NE(snap.findCache(20), nullptr);
    EXPECT_EQ(snap.findCache(30), nullptr);
    EXPECT_EQ(snap.findCache(10)->sets, 16);
    EXPECT_EQ(snap.findCache(20)->sets, 32);

    std::string error;
    ShardedMCache target(16, 2, 1, 1);
    EXPECT_FALSE(snap.restoreCache(30, target, error));
    EXPECT_NE(error.find("30"), std::string::npos);
}

TEST(Snapshot, GeometryMismatchLeavesTargetUntouched)
{
    ShardedMCache cache(32, 4, 1, 1);
    populate(cache, 10, 20);
    Snapshot snap;
    snap.addCache(1, cache);

    // The target has different geometry and pre-existing content; the
    // failed restore must not clear it.
    ShardedMCache target(16, 4, 1, 1);
    const auto kept = target.lookupOrInsert(sigOf(0xBEEF));
    std::string error;
    EXPECT_FALSE(snap.restoreCache(1, target, error));
    EXPECT_NE(error.find("geometry"), std::string::npos) << error;
    EXPECT_EQ(target.lookupOrInsert(sigOf(0xBEEF)).outcome,
              McacheOutcome::Hit);
    EXPECT_EQ(target.lookupOrInsert(sigOf(0xBEEF)).entryId,
              kept.entryId);
}

TEST(Snapshot, EmptySnapshotRoundTrips)
{
    Snapshot snap;
    const auto bytes = snap.serialize();
    Snapshot parsed;
    std::string error;
    ASSERT_TRUE(
        Snapshot::parse(bytes.data(), bytes.size(), parsed, error))
        << error;
    EXPECT_TRUE(parsed.caches().empty());
    EXPECT_TRUE(parsed.records().empty());
    EXPECT_EQ(parsed.serialize(), bytes);
}

// ---- Failure contract ----------------------------------------------

TEST(Snapshot, EveryTruncationIsRejectedWithoutPartialParse)
{
    ShardedMCache cache(32, 4, 2, 2);
    populate(cache, 25, 20);
    const auto bytes = bytesOf(cache, 5);

    for (size_t len = 0; len < bytes.size(); ++len) {
        Snapshot out;
        // Pre-load `out` with a sentinel section: a failed parse must
        // leave it untouched, not half-replaced.
        ShardedMCache sentinel(16, 2, 1, 1);
        out.addCache(99, sentinel);

        std::string error;
        EXPECT_FALSE(Snapshot::parse(bytes.data(), len, out, error))
            << "parse accepted a " << len << "-byte truncation of a "
            << bytes.size() << "-byte snapshot";
        EXPECT_FALSE(error.empty());
        ASSERT_EQ(out.caches().size(), 1u);
        EXPECT_EQ(out.caches()[0].key, 99u);
    }
}

TEST(Snapshot, CorruptedPayloadFailsTheChecksum)
{
    ShardedMCache cache(32, 4, 1, 1);
    populate(cache, 20, 20);
    auto bytes = bytesOf(cache, 5);

    // Flip one bit somewhere in the payload (past the 32-byte header).
    ASSERT_GT(bytes.size(), 40u);
    bytes[40] ^= 0x10;

    Snapshot out;
    std::string error;
    EXPECT_FALSE(
        Snapshot::parse(bytes.data(), bytes.size(), out, error));
    EXPECT_NE(error.find("corrupt"), std::string::npos) << error;
}

TEST(Snapshot, WrongMagicIsRejected)
{
    ShardedMCache cache(16, 2, 1, 1);
    auto bytes = bytesOf(cache, 5);
    bytes[0] = 'X';
    Snapshot out;
    std::string error;
    EXPECT_FALSE(
        Snapshot::parse(bytes.data(), bytes.size(), out, error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(Snapshot, VersionBumpFailsLoudly)
{
    ShardedMCache cache(16, 2, 1, 1);
    populate(cache, 4, 20);
    auto bytes = bytesOf(cache, 5);

    // The u32 version sits right after the 8-byte magic.
    const uint32_t bumped = kSnapshotVersion + 1;
    bytes[8] = static_cast<uint8_t>(bumped & 0xFF);
    bytes[9] = static_cast<uint8_t>((bumped >> 8) & 0xFF);

    Snapshot out;
    std::string error;
    EXPECT_FALSE(
        Snapshot::parse(bytes.data(), bytes.size(), out, error));
    // The error names both the found and the supported version.
    EXPECT_NE(error.find(std::to_string(bumped)), std::string::npos)
        << error;
    EXPECT_NE(error.find(std::to_string(kSnapshotVersion)),
              std::string::npos)
        << error;
}

TEST(Snapshot, TrailingGarbageIsRejected)
{
    ShardedMCache cache(16, 2, 1, 1);
    populate(cache, 4, 20);
    auto bytes = bytesOf(cache, 5);
    bytes.push_back(0xAB);
    Snapshot out;
    std::string error;
    EXPECT_FALSE(
        Snapshot::parse(bytes.data(), bytes.size(), out, error));
    EXPECT_FALSE(error.empty());
}

// ---- Record sections ------------------------------------------------

SignatureRecord
makeRecord()
{
    // Two hand-built passes over a 64-entry, 2-version organization.
    std::vector<SignatureRecord::Pass> passes;
    for (int p = 0; p < 2; ++p) {
        SignatureRecord::Pass pass;
        pass.rows = 3;
        pass.bits = 20;
        pass.sigWordsPerRow = 1;
        for (int64_t r = 0; r < pass.rows; ++r) {
            pass.sigWords.push_back(
                0x12345u + static_cast<uint64_t>(p * 10 + r));
            pass.entryIds.push_back(r == 2 ? -1 : static_cast<int32_t>(
                                                      p * 8 + r));
            pass.outcomes.push_back(static_cast<uint8_t>(
                r == 2 ? McacheOutcome::Mnu
                       : (r == 0 ? McacheOutcome::Hit
                                 : McacheOutcome::Mau)));
        }
        pass.mix.vectors = 3;
        pass.mix.hit = 1;
        pass.mix.mau = 1;
        pass.mix.mnu = 1;
        passes.push_back(std::move(pass));
    }
    SignatureRecord rec;
    rec.restore(std::move(passes), /*data_versions=*/2, /*entries=*/64);
    return rec;
}

TEST(Snapshot, RecordSectionRoundTrips)
{
    const SignatureRecord rec = makeRecord();
    Snapshot snap;
    snap.addRecord(77, rec);

    const auto bytes = snap.serialize();
    Snapshot parsed;
    std::string error;
    ASSERT_TRUE(
        Snapshot::parse(bytes.data(), bytes.size(), parsed, error))
        << error;
    EXPECT_EQ(parsed.serialize(), bytes);

    SignatureRecord back;
    ASSERT_TRUE(parsed.restoreRecord(77, back, error)) << error;
    ASSERT_EQ(back.passCount(), rec.passCount());
    EXPECT_EQ(back.dataVersions(), rec.dataVersions());
    EXPECT_EQ(back.entries(), rec.entries());
    for (int64_t p = 0; p < rec.passCount(); ++p) {
        const auto &a = rec.pass(p);
        const auto &b = back.pass(p);
        EXPECT_EQ(b.rows, a.rows);
        EXPECT_EQ(b.bits, a.bits);
        EXPECT_EQ(b.sigWords, a.sigWords);
        EXPECT_EQ(b.entryIds, a.entryIds);
        EXPECT_EQ(b.outcomes, a.outcomes);
        EXPECT_EQ(b.mix.vectors, a.mix.vectors);
        EXPECT_EQ(b.mix.hit, a.mix.hit);
        EXPECT_EQ(b.mix.mau, a.mix.mau);
        EXPECT_EQ(b.mix.mnu, a.mix.mnu);
    }

    SignatureRecord missing;
    EXPECT_FALSE(parsed.restoreRecord(78, missing, error));
}

// ---- File I/O -------------------------------------------------------

TEST(Snapshot, FileRoundTrip)
{
    ShardedMCache cache(32, 4, 1, 2);
    populate(cache, 15, 20);
    Snapshot snap;
    snap.addCache(3, cache);
    snap.addRecord(4, makeRecord());

    const std::string path = ::testing::TempDir() + "snap_test.mcry";
    std::string error;
    ASSERT_TRUE(snap.writeFile(path, error)) << error;

    Snapshot back;
    ASSERT_TRUE(Snapshot::readFile(path, back, error)) << error;
    EXPECT_EQ(back.serialize(), snap.serialize());
    std::remove(path.c_str());

    EXPECT_FALSE(Snapshot::readFile(path + ".missing", back, error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace mercury
