/**
 * @file
 * Tests for the comparison baselines: Bloom filter unique counting
 * (Fig. 3), the UCNN weight-repetition bound (Fig. 17a), unlimited
 * zero pruning (Fig. 17b), and unlimited similarity (Fig. 17c).
 */

#include <gtest/gtest.h>

#include "baselines/bloom_filter.hpp"
#include "baselines/ucnn.hpp"
#include "baselines/unlimited_similarity.hpp"
#include "baselines/zero_pruning.hpp"
#include "workloads/synthetic.hpp"

namespace mercury {
namespace {

TEST(Bloom, InsertThenContains)
{
    BloomFilter f(256, 3);
    EXPECT_FALSE(f.mightContain(42));
    f.insert(42);
    EXPECT_TRUE(f.mightContain(42));
    f.clear();
    EXPECT_FALSE(f.mightContain(42));
}

TEST(Bloom, SmallFilterAliases)
{
    // A tiny filter saturates and reports everything as present.
    BloomFilter f(8, 3);
    for (uint64_t k = 0; k < 20; ++k)
        f.insert(k * 7919);
    int present = 0;
    for (uint64_t k = 100; k < 120; ++k)
        present += f.mightContain(k * 104729);
    EXPECT_GT(present, 10);
}

TEST(Bloom, VectorKeyQuantizes)
{
    float a[4] = {0.10f, 0.20f, 0.30f, 0.40f};
    float b[4] = {0.101f, 0.199f, 0.301f, 0.399f}; // within the grid
    float c[4] = {0.90f, 0.20f, 0.30f, 0.40f};
    EXPECT_EQ(BloomFilter::vectorKey(a, 4, 0.05f),
              BloomFilter::vectorKey(b, 4, 0.05f));
    EXPECT_NE(BloomFilter::vectorKey(a, 4, 0.05f),
              BloomFilter::vectorKey(c, 4, 0.05f));
}

TEST(Bloom, Fig3UniqueCountBehaviour)
{
    // The paper's Fig. 3 setup: 10 unique dim-10 vectors, 10 similar
    // copies each (110 vectors total). Grid quantization is brittle
    // at cell boundaries, so the Bloom detector over-counts uniques
    // relative to the truth — but a larger filter never finds fewer
    // than a saturating small one, and at least the 10 true
    // prototypes are found.
    Tensor rows = prototypeVectors(110, 10, 10, 0.002f, 11);
    const int u_large = bloomUniqueCount(rows, 4096, 3, 0.25f);
    EXPECT_GE(u_large, 10);
    EXPECT_LE(u_large, 60);
    const int u_small = bloomUniqueCount(rows, 16, 3, 0.25f);
    EXPECT_LE(u_small, u_large);
}

TEST(Bloom, RpqUniqueCountRecovers)
{
    Tensor rows = prototypeVectors(110, 10, 10, 0.005f, 12);
    const int u = rpqUniqueCount(rows, 32, 13);
    EXPECT_NEAR(u, 10, 3);
    // Very short signatures under-count.
    const int u_short = rpqUniqueCount(rows, 2, 13);
    EXPECT_LT(u_short, u);
}

TEST(Ucnn, FewerBitsMoreReuse)
{
    const ModelConfig m = vgg13();
    const double s6 = ucnnBound(m, 6, 21).speedupBound;
    const double s7 = ucnnBound(m, 7, 21).speedupBound;
    const double s8 = ucnnBound(m, 8, 21).speedupBound;
    EXPECT_GT(s6, s7);
    EXPECT_GT(s7, s8);
}

TEST(Ucnn, BoundIsBounded)
{
    // Multiplies can vanish but adds remain: speedup < 2 under the
    // (1 mult + 1 add) MAC cost model.
    for (int bits : {6, 7, 8}) {
        const double s = ucnnBound(resnet50(), bits, 22).speedupBound;
        EXPECT_GT(s, 1.0);
        EXPECT_LT(s, 2.0);
    }
}

TEST(Ucnn, UniqueFractionSane)
{
    const UcnnResult r = ucnnBound(vgg16(), 6, 23);
    EXPECT_GT(r.avgUniqueFraction, 0.0);
    EXPECT_LE(r.avgUniqueFraction, 1.0);
}

TEST(ZeroPruning, MeasuredBoundOnTensors)
{
    Tensor act({100});
    Tensor wts({100});
    for (int64_t i = 0; i < 100; ++i) {
        act[i] = i % 2 ? 1.0f : 0.0f; // half zero
        wts[i] = 1.0f;                // dense
    }
    const ZeroPruningResult r = zeroPruningBound(act, wts);
    EXPECT_NEAR(r.zeroInputFraction, 0.5, 1e-9);
    EXPECT_NEAR(r.zeroWeightFraction, 0.0, 1e-9);
    EXPECT_NEAR(r.speedupBound, 2.0, 1e-9);
}

TEST(ZeroPruning, ModelBoundNearTwo)
{
    // Post-ReLU activations are about half zero, so the unlimited
    // bound sits around 2x (Fig. 17b's scale).
    for (const auto &m : {vgg13(), resnet50(), alexnet()}) {
        const double s = zeroPruningModelBound(m, 31);
        EXPECT_GT(s, 1.5) << m.name;
        EXPECT_LT(s, 2.6) << m.name;
    }
}

TEST(ZeroPruning, Deterministic)
{
    EXPECT_DOUBLE_EQ(zeroPruningModelBound(vgg13(), 7),
                     zeroPruningModelBound(vgg13(), 7));
}

TEST(UnlimitedSimilarity, ElementStatsOnUniformRows)
{
    // All-equal elements: one unique per vector.
    Tensor rows({4, 16});
    rows.fill(1.0f);
    const ElementSimilarityResult r = elementSimilarity(rows, 8);
    EXPECT_NEAR(r.uniqueElementFraction, 1.0 / 16.0, 1e-6);
    EXPECT_NEAR(r.speedupBound, 16.0, 1e-3);
}

TEST(UnlimitedSimilarity, DistinctElementsNoSaving)
{
    // Values spread inside the quantizer's +/-3 range so none clamp
    // into a shared cell.
    Tensor rows({1, 8});
    for (int64_t j = 0; j < 8; ++j)
        rows[j] = 0.5f * static_cast<float>(j) - 2.0f;
    const ElementSimilarityResult r = elementSimilarity(rows, 8);
    EXPECT_NEAR(r.uniqueElementFraction, 1.0, 1e-6);
}

TEST(UnlimitedSimilarity, ModelBoundInPaperRange)
{
    // Fig. 17c: the unlimited-similarity bound is around 2x and
    // MERCURY edges it out slightly on average.
    for (const auto &m : {vgg13(), resnet50()}) {
        const double s = unlimitedSimilarityModelBound(m, 32);
        EXPECT_GT(s, 1.3) << m.name;
        EXPECT_LT(s, 3.0) << m.name;
    }
}

TEST(UnlimitedSimilarity, CoarserQuantizationSavesMore)
{
    const double s4 = unlimitedSimilarityModelBound(vgg13(), 33, 4);
    const double s8 = unlimitedSimilarityModelBound(vgg13(), 33, 8);
    EXPECT_GE(s4, s8);
}

} // namespace
} // namespace mercury
