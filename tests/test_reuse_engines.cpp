/**
 * @file
 * Tests for the functional reuse engines: exactness when nothing is
 * similar, bounded approximation when vectors are similar, MAC
 * accounting, and the FC forwarding / attention row-copy patterns.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/attention_engine.hpp"
#include "core/conv_reuse_engine.hpp"
#include "core/fc_engine.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace mercury {
namespace {

/** Input whose channel planes are built from few prototype patches. */
Tensor
similarInput(int64_t n, int64_t c, int64_t h, int64_t w, float eps,
             uint64_t seed)
{
    Rng rng(seed);
    Tensor t({n, c, h, w});
    // Low-frequency content: neighbouring windows look alike, the
    // regime MERCURY exploits.
    for (int64_t b = 0; b < n; ++b)
        for (int64_t ch = 0; ch < c; ++ch) {
            const float base = static_cast<float>(rng.normal());
            for (int64_t y = 0; y < h; ++y)
                for (int64_t x = 0; x < w; ++x)
                    t.at4(b, ch, y, x) =
                        base + eps * static_cast<float>(rng.normal());
        }
    return t;
}

TEST(ConvReuse, ExactWhenNothingSimilar)
{
    Rng rng(61);
    Tensor in({1, 2, 6, 6});
    in.fillNormal(rng); // white noise: no similarity
    Tensor w({4, 2, 3, 3});
    w.fillNormal(rng);
    ConvSpec spec;
    spec.inChannels = 2;
    spec.outChannels = 4;
    spec.kernelH = spec.kernelW = 3;

    MCache cache(64, 16, 4);
    ConvReuseEngine engine(cache, 32, 7);
    ReuseStats stats;
    Tensor out = engine.forward(in, w, Tensor(), spec, stats);
    Tensor ref = conv2dForward(in, w, Tensor(), spec);
    // With long signatures on white noise, hits are rare; when none
    // occur, the result is bit-exact.
    if (stats.mix.hit == 0)
        EXPECT_LT(out.maxAbsDiff(ref), 1e-5f);
    else
        EXPECT_LT(out.maxAbsDiff(ref), 0.5f);
}

TEST(ConvReuse, SimilarInputsSkipManyMacs)
{
    Tensor in = similarInput(1, 4, 12, 12, 1e-4f, 62);
    Rng rng(63);
    Tensor w({8, 4, 3, 3});
    w.fillNormal(rng);
    ConvSpec spec;
    spec.inChannels = 4;
    spec.outChannels = 8;
    spec.kernelH = spec.kernelW = 3;

    MCache cache(64, 16, 4);
    ConvReuseEngine engine(cache, 20, 8);
    ReuseStats stats;
    Tensor out = engine.forward(in, w, Tensor(), spec, stats);
    EXPECT_GT(stats.skipFraction(), 0.5);
    // Near-identical windows mean reuse changes results negligibly.
    Tensor ref = conv2dForward(in, w, Tensor(), spec);
    EXPECT_LT(out.maxAbsDiff(ref), 0.05f);
}

TEST(ConvReuse, ApproximationBoundedByVectorSpread)
{
    Tensor in = similarInput(1, 2, 10, 10, 0.01f, 64);
    Rng rng(65);
    Tensor w({4, 2, 3, 3});
    w.fillNormal(rng);
    ConvSpec spec;
    spec.inChannels = 2;
    spec.outChannels = 4;
    spec.kernelH = spec.kernelW = 3;

    MCache cache(64, 16, 4);
    ConvReuseEngine engine(cache, 16, 9);
    ReuseStats stats;
    Tensor out = engine.forward(in, w, Tensor(), spec, stats);
    Tensor ref = conv2dForward(in, w, Tensor(), spec);
    // Error per output <= ||eps||*||w||; generous envelope here.
    EXPECT_LT(out.maxAbsDiff(ref), 0.5f);
}

TEST(ConvReuse, StatsAccounting)
{
    Tensor in = similarInput(2, 3, 8, 8, 1e-4f, 66);
    Rng rng(67);
    Tensor w({4, 3, 3, 3});
    w.fillNormal(rng);
    ConvSpec spec;
    spec.inChannels = 3;
    spec.outChannels = 4;
    spec.kernelH = spec.kernelW = 3;

    MCache cache(64, 16, 4);
    ConvReuseEngine engine(cache, 20, 10);
    ReuseStats stats;
    engine.forward(in, w, Tensor(), spec, stats);
    // 2 images x 3 channels = 6 detection passes of 36 vectors.
    EXPECT_EQ(stats.channelPasses, 6);
    EXPECT_EQ(stats.mix.vectors, 6 * 36);
    EXPECT_EQ(stats.macsTotal, 6ull * 36 * 4 * 9);
    EXPECT_LE(stats.macsSkipped, stats.macsTotal);
    EXPECT_TRUE(stats.mix.consistent());
}

TEST(ConvReuse, BiasAppliedOncePerOutput)
{
    Tensor in({1, 1, 4, 4});
    in.fill(1.0f);
    Tensor w({2, 1, 3, 3});
    w.fill(1.0f);
    Tensor bias({2}, {5.0f, -1.0f});
    ConvSpec spec;
    spec.inChannels = 1;
    spec.outChannels = 2;
    spec.kernelH = spec.kernelW = 3;

    MCache cache(16, 4, 2);
    ConvReuseEngine engine(cache, 8, 11);
    ReuseStats stats;
    Tensor out = engine.forward(in, w, bias, spec, stats);
    Tensor ref = conv2dForward(in, w, bias, spec);
    EXPECT_LT(out.maxAbsDiff(ref), 1e-4f);
}

TEST(ConvReuse, GroupedConvMatchesReference)
{
    Tensor in = similarInput(1, 4, 8, 8, 1e-4f, 68);
    Rng rng(69);
    Tensor w({4, 2, 3, 3});
    w.fillNormal(rng);
    ConvSpec spec;
    spec.inChannels = 4;
    spec.outChannels = 4;
    spec.kernelH = spec.kernelW = 3;
    spec.groups = 2;

    MCache cache(64, 16, 4);
    ConvReuseEngine engine(cache, 20, 12);
    ReuseStats stats;
    Tensor out = engine.forward(in, w, Tensor(), spec, stats);
    Tensor ref = conv2dForward(in, w, Tensor(), spec);
    EXPECT_LT(out.maxAbsDiff(ref), 0.05f);
}

TEST(ConvReuse, StridedAndPaddedMatchesReference)
{
    Tensor in = similarInput(1, 2, 9, 9, 1e-4f, 70);
    Rng rng(71);
    Tensor w({3, 2, 3, 3});
    w.fillNormal(rng);
    ConvSpec spec;
    spec.inChannels = 2;
    spec.outChannels = 3;
    spec.kernelH = spec.kernelW = 3;
    spec.stride = 2;
    spec.pad = 1;

    MCache cache(64, 16, 4);
    ConvReuseEngine engine(cache, 20, 13);
    ReuseStats stats;
    Tensor out = engine.forward(in, w, Tensor(), spec, stats);
    Tensor ref = conv2dForward(in, w, Tensor(), spec);
    EXPECT_EQ(out.shape(), ref.shape());
    EXPECT_LT(out.maxAbsDiff(ref), 0.05f);
}

/** Geometry sweep: (kernel, stride, pad, groups, sig_bits). */
class ConvReuseSweep
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, int, int>>
{
};

TEST_P(ConvReuseSweep, MatchesExactConvWithinReuseTolerance)
{
    const auto [k, stride, pad, groups, bits] = GetParam();
    const int64_t cin = 4, cout = 8, hw = 11;
    // Smooth (not constant) fields: constant channels make padded
    // border windows alias with interior ones under sign
    // quantization, a degenerate regime the paper's 20-bit starting
    // length exists to avoid.
    Dataset ds = makeImageDataset(1, 3, cin, hw, 80 + k, 0.002f);
    Tensor in = ds.inputs;
    Rng rng(81);
    Tensor w({cout, cin / groups, k, k});
    w.fillNormal(rng, 0.0f, 0.4f);
    ConvSpec spec;
    spec.inChannels = cin;
    spec.outChannels = cout;
    spec.kernelH = spec.kernelW = k;
    spec.stride = stride;
    spec.pad = pad;
    spec.groups = groups;

    MCache cache(64, 16, 4);
    ConvReuseEngine engine(cache, bits, 82);
    ReuseStats stats;
    Tensor out = engine.forward(in, w, Tensor(), spec, stats);
    Tensor ref = conv2dForward(in, w, Tensor(), spec);
    ASSERT_EQ(out.shape(), ref.shape());
    // RPQ matches vectors by angle, so the reuse error is relative
    // to the operand magnitudes: bound the Frobenius-relative error
    // at every geometry; accounting is always consistent.
    double err = 0.0, ref_norm = 0.0;
    for (int64_t i = 0; i < out.numel(); ++i) {
        const double d = out[i] - ref[i];
        err += d * d;
        ref_norm += static_cast<double>(ref[i]) * ref[i];
    }
    // Short signatures reuse aggressively (larger perturbation);
    // longer signatures only merge near-identical windows.
    const double tol = bits >= 40 ? 0.25 : bits >= 24 ? 0.3 : 0.45;
    EXPECT_LT(std::sqrt(err / std::max(ref_norm, 1e-12)), tol)
        << "k=" << k << " stride=" << stride << " pad=" << pad
        << " groups=" << groups << " bits=" << bits;
    EXPECT_TRUE(stats.mix.consistent());
    EXPECT_LE(stats.macsSkipped, stats.macsTotal);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvReuseSweep,
    ::testing::Values(std::make_tuple(3, 1, 1, 1, 20),
                      std::make_tuple(3, 2, 1, 1, 20),
                      std::make_tuple(3, 1, 0, 1, 20),
                      std::make_tuple(5, 1, 2, 1, 20),
                      std::make_tuple(5, 2, 2, 1, 32),
                      std::make_tuple(3, 1, 1, 2, 20),
                      std::make_tuple(3, 1, 1, 4, 20),
                      std::make_tuple(7, 1, 3, 1, 24),
                      std::make_tuple(3, 1, 1, 1, 28),
                      std::make_tuple(3, 1, 1, 1, 48)));

TEST(FcReuse, DuplicateRowsForwardResults)
{
    Tensor x({4, 8});
    Rng rng(72);
    // Rows 0 and 2 identical; rows 1 and 3 identical.
    for (int64_t j = 0; j < 8; ++j) {
        const float a = static_cast<float>(rng.normal());
        const float b = static_cast<float>(rng.normal());
        x.at2(0, j) = a;
        x.at2(2, j) = a;
        x.at2(1, j) = b;
        x.at2(3, j) = b;
    }
    Tensor w({8, 5});
    w.fillNormal(rng);

    MCache cache(16, 4, 1);
    FcEngine engine(cache, 24, 14);
    ReuseStats stats;
    std::vector<int64_t> owners;
    Tensor out = engine.forward(x, w, stats, &owners);

    EXPECT_EQ(owners[0], 0);
    EXPECT_EQ(owners[2], 0);
    EXPECT_EQ(owners[1], 1);
    EXPECT_EQ(owners[3], 1);
    // Forwarded rows match exactly.
    for (int64_t j = 0; j < 5; ++j) {
        EXPECT_FLOAT_EQ(out.at2(2, j), out.at2(0, j));
        EXPECT_FLOAT_EQ(out.at2(3, j), out.at2(1, j));
    }
    EXPECT_EQ(stats.mix.hit, 2);
    EXPECT_EQ(stats.macsSkipped, 2ull * 8 * 5);
}

TEST(FcReuse, ExactOnDissimilarRows)
{
    Rng rng(73);
    Tensor x({6, 16});
    x.fillNormal(rng);
    Tensor w({16, 4});
    w.fillNormal(rng);
    MCache cache(64, 16, 1);
    FcEngine engine(cache, 32, 15);
    ReuseStats stats;
    Tensor out = engine.forward(x, w, stats);
    Tensor ref = matmul(x, w);
    if (stats.mix.hit == 0) {
        EXPECT_LT(out.maxAbsDiff(ref), 1e-4f);
    }
}

TEST(FcReuse, ShapeMismatchDies)
{
    MCache cache(16, 4, 1);
    FcEngine engine(cache, 16, 16);
    ReuseStats stats;
    Tensor x({2, 8}), w({7, 3});
    EXPECT_DEATH(engine.forward(x, w, stats), "mismatch");
}

TEST(Attention, MatchesExactWhenNoSimilarity)
{
    Rng rng(74);
    Tensor x({6, 8});
    x.fillNormal(rng);
    MCache cache(64, 16, 1);
    AttentionEngine engine(cache, 32, 17);
    ReuseStats stats;
    Tensor y = engine.forward(x, stats);

    // Reference: Y = (X Xt) X.
    Tensor w = matmulTransposeB(x, x);
    Tensor ref = matmul(w, x);
    if (stats.mix.hit == 0) {
        EXPECT_LT(y.maxAbsDiff(ref), 1e-3f);
    }
}

TEST(Attention, SimilarRowsCopied)
{
    Rng rng(75);
    Tensor x({6, 8});
    x.fillNormal(rng);
    // Make row 4 a copy of row 1.
    for (int64_t j = 0; j < 8; ++j)
        x.at2(4, j) = x.at2(1, j);
    MCache cache(64, 16, 1);
    AttentionEngine engine(cache, 24, 18);
    ReuseStats stats;
    Tensor y = engine.forward(x, stats);
    EXPECT_GE(stats.mix.hit, 1);
    for (int64_t j = 0; j < 8; ++j)
        EXPECT_FLOAT_EQ(y.at2(4, j), y.at2(1, j));
}

TEST(Attention, MacAccounting)
{
    Rng rng(76);
    Tensor x({5, 7});
    x.fillNormal(rng);
    MCache cache(64, 16, 1);
    AttentionEngine engine(cache, 24, 19);
    ReuseStats stats;
    engine.forward(x, stats);
    EXPECT_EQ(stats.macsTotal, 2ull * 5 * 5 * 7);
}

} // namespace
} // namespace mercury
