/**
 * @file
 * Unit tests for the Signature bit-sequence type.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/signature.hpp"

namespace mercury {
namespace {

TEST(Signature, ZeroInitialized)
{
    Signature s(20);
    EXPECT_EQ(s.bits(), 20);
    for (int i = 0; i < 20; ++i)
        EXPECT_FALSE(s.bit(i));
}

TEST(Signature, SetAndReadBits)
{
    Signature s(70); // crosses a word boundary
    s.setBit(0, true);
    s.setBit(63, true);
    s.setBit(64, true);
    s.setBit(69, true);
    EXPECT_TRUE(s.bit(0));
    EXPECT_TRUE(s.bit(63));
    EXPECT_TRUE(s.bit(64));
    EXPECT_TRUE(s.bit(69));
    EXPECT_FALSE(s.bit(1));
    EXPECT_FALSE(s.bit(65));
}

TEST(Signature, ClearBit)
{
    Signature s(8);
    s.setBit(3, true);
    s.setBit(3, false);
    EXPECT_FALSE(s.bit(3));
}

TEST(Signature, OutOfRangeDies)
{
    Signature s(8);
    EXPECT_DEATH(s.bit(8), "out of range");
    EXPECT_DEATH(s.setBit(-1, true), "out of range");
}

TEST(Signature, AppendGrowsLength)
{
    Signature s;
    for (int i = 0; i < 130; ++i)
        s.appendBit(i % 3 == 0);
    EXPECT_EQ(s.bits(), 130);
    EXPECT_TRUE(s.bit(0));
    EXPECT_FALSE(s.bit(1));
    EXPECT_TRUE(s.bit(129));
}

TEST(Signature, EqualityRequiresSameLength)
{
    Signature a(20), b(21);
    EXPECT_FALSE(a == b);
    Signature c(20);
    EXPECT_TRUE(a == c);
    c.setBit(5, true);
    EXPECT_TRUE(a != c);
}

TEST(Signature, PrefixTruncates)
{
    Signature s(30);
    s.setBit(3, true);
    s.setBit(25, true);
    Signature p = s.prefix(10);
    EXPECT_EQ(p.bits(), 10);
    EXPECT_TRUE(p.bit(3));
    EXPECT_DEATH(s.prefix(31), "prefix");
}

TEST(Signature, HashStableAndLengthSensitive)
{
    Signature a(20), b(20), c(21);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_NE(a.hash(), c.hash()); // all-zero but different lengths
    b.setBit(7, true);
    EXPECT_NE(a.hash(), b.hash());
}

TEST(Signature, HashSpreadsAcrossSets)
{
    // Signatures differing in one bit should spread over cache sets.
    std::set<uint64_t> buckets;
    for (int i = 0; i < 64; ++i) {
        Signature s(64);
        s.setBit(i, true);
        buckets.insert(s.hash() % 64);
    }
    EXPECT_GT(buckets.size(), 32u);
}

TEST(Signature, StrRendersMsbFirst)
{
    Signature s(4);
    s.setBit(0, true); // lsb
    EXPECT_EQ(s.str(), "0001");
    s.setBit(3, true);
    EXPECT_EQ(s.str(), "1001");
}

} // namespace
} // namespace mercury
