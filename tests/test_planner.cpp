/**
 * @file
 * RuntimePlanner tests (core/runtime_planner.hpp): planned execution
 * is a pure schedule change, so its contract is bit-identity — same
 * outputs, same losses, same reuse statistics as the unplanned path —
 * across every engine (conv / FC / attention), every gradient pass
 * (forward / dX / dW), every conv geometry (dense / strided / grouped
 * / depthwise), and every pipeline knob (serial, threaded, threaded +
 * overlap with cross-layer prefetch). Plus the plan-cache lifecycle
 * (hit / invalidation / cross-context sharing), the once-per-shape
 * knob-resolution guarantee, the batched-submit executors, and the
 * unplannable-step fallback.
 *
 * The threaded + overlap golden runs double as the cross-layer
 * overlap race stress: this binary runs under the ThreadSanitizer CI
 * job.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "core/runtime_planner.hpp"
#include "nn/attention_layer.hpp"
#include "nn/layers.hpp"
#include "nn/network.hpp"
#include "util/executors.hpp"
#include "util/thread_pool.hpp"
#include "workloads/synthetic.hpp"

namespace mercury {
namespace {

void
expectStatsEq(const ReuseStats &a, const ReuseStats &b,
              const char *what)
{
    EXPECT_EQ(a.mix.vectors, b.mix.vectors) << what;
    EXPECT_EQ(a.mix.hit, b.mix.hit) << what;
    EXPECT_EQ(a.mix.mau, b.mix.mau) << what;
    EXPECT_EQ(a.mix.mnu, b.mix.mnu) << what;
    EXPECT_EQ(a.macsTotal, b.macsTotal) << what;
    EXPECT_EQ(a.macsSkipped, b.macsSkipped) << what;
    EXPECT_EQ(a.channelPasses, b.channelPasses) << what;
}

void
expectTensorsEq(const Tensor &a, const Tensor &b, const char *what)
{
    ASSERT_EQ(a.numel(), b.numel()) << what;
    for (int64_t i = 0; i < a.numel(); ++i)
        ASSERT_EQ(a[i], b[i]) << what << " element " << i;
}

using NetBuilder = std::function<std::unique_ptr<Network>(Rng &)>;

/** Everything one planned-vs-unplanned comparison looks at. */
struct StepTrace
{
    std::vector<float> losses;
    Tensor out; ///< post-training forward on the same inputs
    ReuseStats fwd, bwd, wgrad;
    int64_t lookups = 0;
    int64_t hits = 0;
};

StepTrace
runSteps(const NetBuilder &build, const Dataset &ds,
         const PipelineConfig &pipe, bool planned, int steps)
{
    Rng rng(4321);
    std::unique_ptr<Network> net = build(rng);
    MercuryContext ctx(14, 32, 8, 2, 0xFEED);
    ctx.setPipeline(pipe);
    ctx.setBackwardReuse(true);
    ctx.setWeightGradReuse(true);
    ctx.setPlanExecution(planned);
    StepTrace tr;
    for (int s = 0; s < steps; ++s)
        tr.losses.push_back(
            net->trainBatch(ds.inputs, ds.labels, 0.05f, &ctx));
    tr.out = net->forward(ds.inputs, &ctx);
    tr.fwd = ctx.totals();
    tr.bwd = ctx.backwardTotals();
    tr.wgrad = ctx.weightGradTotals();
    tr.lookups = ctx.planLookups();
    tr.hits = ctx.planHits();
    return tr;
}

/** Assert two traces match bit-for-bit (losses, outputs, all nine
 *  pass families' statistics). */
void
expectTracesEq(const StepTrace &a, const StepTrace &b,
               const char *what)
{
    ASSERT_EQ(a.losses.size(), b.losses.size()) << what;
    for (size_t i = 0; i < a.losses.size(); ++i)
        EXPECT_EQ(a.losses[i], b.losses[i]) << what << " step " << i;
    expectTensorsEq(a.out, b.out, what);
    expectStatsEq(a.fwd, b.fwd, what);
    expectStatsEq(a.bwd, b.bwd, what);
    expectStatsEq(a.wgrad, b.wgrad, what);
}

/** conv → relu → conv(variant) → pool → GAP → dense head. */
NetBuilder
convNet(int64_t stride2, int64_t groups2)
{
    return [stride2, groups2](Rng &rng) {
        auto net = std::make_unique<Network>();
        net->add(std::make_unique<Conv2dLayer>(3, 8, 3, 1, 1, rng,
                                               /*layer_id=*/1));
        net->add(std::make_unique<ReluLayer>());
        net->add(std::make_unique<Conv2dLayer>(8, 8, 3, stride2, 1,
                                               rng, /*layer_id=*/2,
                                               groups2));
        net->add(std::make_unique<MaxPoolLayer>());
        net->add(std::make_unique<GlobalAvgPoolLayer>());
        net->add(std::make_unique<DenseLayer>(8, 3, rng,
                                              /*layer_id=*/3));
        return net;
    };
}

NetBuilder
attentionNet()
{
    return [](Rng &rng) {
        auto net = std::make_unique<Network>();
        net->add(std::make_unique<SelfAttentionLayer>(
            6, 8, /*layer_id=*/7, 0.5f));
        net->add(std::make_unique<DenseLayer>(6 * 8, 4, rng,
                                              /*layer_id=*/8));
        return net;
    };
}

Dataset
images()
{
    return makeImageDataset(8, 3, 3, 12, 8801, 0.03f);
}

PipelineConfig
pipeOf(int threads, bool overlap)
{
    PipelineConfig pipe;
    pipe.threads = threads;
    pipe.overlap = overlap ? OverlapMode::On : OverlapMode::Off;
    return pipe;
}

// ---- Golden equivalence: the nine-pass matrix ----------------------

struct ConvVariant
{
    const char *name;
    int64_t stride2;
    int64_t groups2;
};

TEST(PlannerGolden, ConvVariantsBitIdentical)
{
    const Dataset ds = images();
    const ConvVariant variants[] = {
        {"dense", 1, 1},
        {"strided", 2, 1},
        {"grouped", 1, 2},
        {"depthwise", 1, 8},
    };
    for (const ConvVariant &v : variants) {
        const NetBuilder build = convNet(v.stride2, v.groups2);
        const StepTrace plain =
            runSteps(build, ds, pipeOf(1, false), false, 3);
        const StepTrace planned =
            runSteps(build, ds, pipeOf(1, false), true, 3);
        expectTracesEq(plain, planned, v.name);
        // Reuse must actually be happening for the comparison to
        // mean anything.
        EXPECT_GT(planned.fwd.mix.vectors, 0) << v.name;
        EXPECT_GT(planned.wgrad.mix.vectors, 0) << v.name;
        // 4 trainBatch/forward binds, one compile.
        EXPECT_EQ(planned.lookups, 4) << v.name;
        EXPECT_EQ(planned.hits, 3) << v.name;
        EXPECT_EQ(plain.lookups, 0) << v.name;
    }
}

TEST(PlannerGolden, ThreadedOverlapBitIdentical)
{
    // Threaded + overlap exercises the streaming hand-off and, on the
    // planned path, the cross-layer prefetch edge (conv1 → relu →
    // conv2 fuses). All four knob corners must agree with the serial
    // unplanned golden. Runs under TSan in CI: this is the
    // cross-layer overlap race stress.
    const Dataset ds = images();
    const NetBuilder build = convNet(1, 1);
    const StepTrace golden =
        runSteps(build, ds, pipeOf(1, false), false, 3);
    const struct
    {
        const char *name;
        int threads;
        bool overlap;
        bool planned;
    } corners[] = {
        {"threads4", 4, false, false},
        {"threads4+planned", 4, false, true},
        {"overlap4", 4, true, false},
        {"overlap4+planned", 4, true, true},
    };
    for (const auto &c : corners) {
        const StepTrace tr = runSteps(
            build, ds, pipeOf(c.threads, c.overlap), c.planned, 3);
        expectTracesEq(golden, tr, c.name);
    }
}

TEST(PlannerGolden, AttentionAndDenseBitIdentical)
{
    const Dataset ds = makeTokenDataset(8, 4, 6, 8, 8802, 0.03f);
    const NetBuilder build = attentionNet();
    for (const bool overlap : {false, true}) {
        const StepTrace plain = runSteps(
            build, ds, pipeOf(overlap ? 4 : 1, overlap), false, 3);
        const StepTrace planned = runSteps(
            build, ds, pipeOf(overlap ? 4 : 1, overlap), true, 3);
        expectTracesEq(plain, planned,
                       overlap ? "attention overlap" : "attention");
        EXPECT_GT(planned.fwd.mix.vectors, 0);
    }
}

// ---- Plan-cache lifecycle ------------------------------------------

TEST(PlannerCache, HitFastPathAndShapeMiss)
{
    Rng rng(11);
    const NetBuilder build = convNet(1, 1);
    std::unique_ptr<Network> net = build(rng);
    const Dataset big = images();
    const Dataset small = makeImageDataset(4, 3, 3, 12, 8803, 0.03f);

    MercuryContext ctx(14, 32, 8, 2, 0xFEED);
    ctx.setPlanExecution(true);

    net->forward(big.inputs, &ctx); // compile
    EXPECT_EQ(ctx.planLookups(), 1);
    EXPECT_EQ(ctx.planHits(), 0);
    ASSERT_NE(ctx.boundPlan(), nullptr);
    const uint64_t key_big = ctx.boundPlan()->key;
    EXPECT_TRUE(ctx.boundPlan()->plannable);

    net->forward(big.inputs, &ctx); // bound-plan fast path
    EXPECT_EQ(ctx.planLookups(), 2);
    EXPECT_EQ(ctx.planHits(), 1);

    net->forward(small.inputs, &ctx); // batch changed: new compile
    EXPECT_EQ(ctx.planLookups(), 3);
    EXPECT_EQ(ctx.planHits(), 1);
    EXPECT_NE(ctx.boundPlan()->key, key_big);

    net->forward(big.inputs, &ctx); // back: plan-cache find, no compile
    EXPECT_EQ(ctx.planLookups(), 4);
    EXPECT_EQ(ctx.planHits(), 2);
    EXPECT_EQ(ctx.boundPlan()->key, key_big);
}

TEST(PlannerCache, ConfigChangeInvalidates)
{
    Rng rng(12);
    std::unique_ptr<Network> net = convNet(1, 1)(rng);
    const Dataset ds = images();
    MercuryContext ctx(14, 32, 8, 2, 0xFEED);
    ctx.setPlanExecution(true);

    net->forward(ds.inputs, &ctx);
    const uint64_t key14 = ctx.boundPlan()->key;

    // Signature growth drops the bound exec and changes the key: the
    // next bind recompiles rather than hitting.
    ctx.setSignatureBits(16);
    EXPECT_EQ(ctx.boundPlan(), nullptr);
    net->forward(ds.inputs, &ctx);
    EXPECT_EQ(ctx.planLookups(), 2);
    EXPECT_EQ(ctx.planHits(), 0);
    EXPECT_NE(ctx.boundPlan()->key, key14);

    // Pipeline knobs participate in the key too.
    ctx.setPipeline(pipeOf(4, true));
    EXPECT_EQ(ctx.boundPlan(), nullptr);
    net->forward(ds.inputs, &ctx);
    EXPECT_EQ(ctx.planHits(), 0);

    // resetPlanState drops the private cache: same shape recompiles.
    const int64_t lookups = ctx.planLookups();
    ctx.resetPlanState();
    net->forward(ds.inputs, &ctx);
    EXPECT_EQ(ctx.planLookups(), lookups + 1);
    EXPECT_EQ(ctx.planHits(), 0);
}

TEST(PlannerCache, SharedAcrossContexts)
{
    PlanCache shared;
    Rng rng_a(13), rng_b(13);
    std::unique_ptr<Network> net_a = convNet(1, 1)(rng_a);
    std::unique_ptr<Network> net_b = convNet(1, 1)(rng_b);
    const Dataset ds = images();

    MercuryContext a(14, 32, 8, 2, 0xFEED);
    a.setPlanExecution(true);
    a.setSharedPlanCache(&shared);
    MercuryContext b(14, 32, 8, 2, 0xFEED);
    b.setPlanExecution(true);
    b.setSharedPlanCache(&shared);

    const Tensor out_a = net_a->forward(ds.inputs, &a);
    EXPECT_EQ(shared.size(), 1);
    EXPECT_EQ(a.planHits(), 0);

    // Same shapes in the second context: the shared cache already
    // holds the plan, so its very first bind is a hit — and the
    // execution state is still private, so results are unchanged.
    const Tensor out_b = net_b->forward(ds.inputs, &b);
    EXPECT_EQ(shared.size(), 1);
    EXPECT_EQ(b.planLookups(), 1);
    EXPECT_EQ(b.planHits(), 1);
    expectTensorsEq(out_a, out_b, "shared plan cache");
}

// ---- Unplannable fallback ------------------------------------------

/** 4D identity that reports opaque (the describeStep default). */
class OpaqueIdentityLayer : public Layer
{
  public:
    Tensor forward(const Tensor &x, MercuryContext *) override
    {
        return x;
    }
    std::string name() const override { return "opaque-identity"; }

  protected:
    Tensor backwardImpl(const Tensor &grad, MercuryContext *) override
    {
        return grad;
    }
};

TEST(PlannerCache, UnplannableStepFallsBack)
{
    // An opaque op breaks shape tracking; the conv behind it makes
    // the whole step unplannable. The bind must still fast-path
    // repeat steps, convPlanFor must return null (unplanned path),
    // and results must match planning off.
    const Dataset ds = images();
    const NetBuilder build = [](Rng &rng) {
        auto net = std::make_unique<Network>();
        net->add(std::make_unique<OpaqueIdentityLayer>());
        net->add(std::make_unique<Conv2dLayer>(3, 8, 3, 1, 1, rng,
                                               /*layer_id=*/1));
        net->add(std::make_unique<GlobalAvgPoolLayer>());
        net->add(std::make_unique<DenseLayer>(8, 3, rng,
                                              /*layer_id=*/2));
        return net;
    };
    const StepTrace plain =
        runSteps(build, ds, pipeOf(1, false), false, 2);
    const StepTrace planned =
        runSteps(build, ds, pipeOf(1, false), true, 2);
    expectTracesEq(plain, planned, "unplannable");
    EXPECT_EQ(planned.lookups, 3);
    EXPECT_EQ(planned.hits, 2); // fast path still keys the bound plan

    Rng rng(14);
    std::unique_ptr<Network> net = build(rng);
    MercuryContext ctx(14, 32, 8, 2, 0xFEED);
    ctx.setPlanExecution(true);
    net->forward(ds.inputs, &ctx);
    ASSERT_NE(ctx.boundPlan(), nullptr);
    EXPECT_FALSE(ctx.boundPlan()->plannable);
    EXPECT_EQ(ctx.convPlanFor(1), nullptr);
    EXPECT_EQ(ctx.rowPlanFor(2), nullptr);
}

// ---- Knob resolution: once per shape, not once per step ------------

TEST(PlannerKnobs, ResolvedOncePerShape)
{
    Rng rng(15);
    std::unique_ptr<Network> net = convNet(1, 1)(rng);
    const Dataset ds = images();
    MercuryContext ctx(14, 32, 8, 2, 0xFEED);
    ctx.setBackwardReuse(true);
    ctx.setWeightGradReuse(true);
    ctx.setPlanExecution(true);

    net->trainBatch(ds.inputs, ds.labels, 0.05f, &ctx);
    const int64_t after_first = ctx.frontendFor(1).knobResolutions() +
                                ctx.frontendFor(2).knobResolutions() +
                                ctx.frontendFor(3).knobResolutions();
    EXPECT_GT(after_first, 0);
    for (int s = 0; s < 4; ++s)
        net->trainBatch(ds.inputs, ds.labels, 0.05f, &ctx);
    // Steady state: every later step replays the resolved knobs.
    EXPECT_EQ(ctx.frontendFor(1).knobResolutions() +
                  ctx.frontendFor(2).knobResolutions() +
                  ctx.frontendFor(3).knobResolutions(),
              after_first);
}

// ---- Plan compilation shape ----------------------------------------

TEST(PlannerCompile, GeometryAndEdges)
{
    // conv(3→8, 12x12) → relu → conv(8→8) → pool → conv(8→16, 6x6)
    StepDescBuilder b({4, 3, 12, 12});
    ConvSpec c1;
    c1.inChannels = 3;
    c1.outChannels = 8;
    c1.kernelH = 3;
    c1.kernelW = 3;
    c1.stride = 1;
    c1.pad = 1;
    ConvSpec c2 = c1;
    c2.inChannels = 8;
    ConvSpec c3 = c2;
    c3.outChannels = 16;
    b.conv(1, c1);
    b.relu();
    b.conv(2, c2);
    b.maxPool2x2();
    b.conv(3, c3);

    PlanKeyConfig cfg;
    cfg.sigBits = 14;
    cfg.sets = 32;
    cfg.ways = 8;
    cfg.dataVersions = 2;

    std::shared_ptr<const StepPlan> plan =
        RuntimePlanner::compile(b, cfg);
    ASSERT_TRUE(plan->plannable);
    ASSERT_EQ(plan->layers.size(), 3u);
    EXPECT_EQ(plan->fusedEdges, 2);

    const LayerPlan *lp1 = plan->layerPlan(1);
    ASSERT_NE(lp1, nullptr);
    EXPECT_EQ(lp1->rows, 12 * 12);
    EXPECT_EQ(lp1->vecDim, 3 * 3);
    EXPECT_EQ(lp1->passes, 4 * 3); // batch * inChannels
    EXPECT_EQ(lp1->inFlight, 8);
    EXPECT_EQ(lp1->nextConv, 1);
    ASSERT_EQ(lp1->edgeTransforms.size(), 1u);
    EXPECT_EQ(lp1->edgeTransforms[0], StepOpKind::Relu);

    const LayerPlan *lp3 = plan->layerPlan(3);
    ASSERT_NE(lp3, nullptr);
    EXPECT_EQ(lp3->rows, 6 * 6); // pool halved the spatial dims
    EXPECT_EQ(lp3->prevConv, 1);
    EXPECT_GT(lp3->scratchFloats, 0u);

    // The key is stable and sensitive to config.
    EXPECT_EQ(RuntimePlanner::planKey(b, cfg), plan->key);
    PlanKeyConfig cfg2 = cfg;
    cfg2.sigBits = 16;
    EXPECT_NE(RuntimePlanner::planKey(b, cfg2), plan->key);
    PlanKeyConfig cfg3 = cfg;
    cfg3.pipe.overlap = OverlapMode::On;
    EXPECT_NE(RuntimePlanner::planKey(b, cfg3), plan->key);
}

// ---- Batched submission (util) -------------------------------------

TEST(PlannerExecutors, SubmitBatchRunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 100; ++i)
        tasks.push_back([&ran] { ++ran; });
    pool.submitBatch(std::move(tasks));
    // Drain through a follow-up group: the pool runs FIFO per worker,
    // so joining a full-width wave after the batch bounds the wait.
    TaskGroup tg(&pool);
    for (int i = 0; i < 4; ++i)
        tg.run([] {});
    tg.wait();
    // The batch landed before the group's tasks in queue order, but
    // workers race; spin briefly for the last stragglers.
    while (ran.load() < 100) {
    }
    EXPECT_EQ(ran.load(), 100);
}

TEST(PlannerExecutors, RunBatchJoinsAndRunsInlineWithoutPool)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    TaskGroup tg(&pool);
    tg.runBatch(64, [&ran] { ++ran; });
    tg.wait();
    EXPECT_EQ(ran.load(), 64);

    int inline_ran = 0;
    TaskGroup inline_tg(nullptr);
    inline_tg.runBatch(5, [&inline_ran] { ++inline_ran; });
    inline_tg.wait();
    EXPECT_EQ(inline_ran, 5);

    ThreadPool empty(0);
    std::atomic<int> serial{0};
    TaskGroup serial_tg(&empty);
    serial_tg.runBatch(7, [&serial] { ++serial; });
    serial_tg.wait();
    EXPECT_EQ(serial.load(), 7);
}

} // namespace
} // namespace mercury
