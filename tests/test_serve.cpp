/**
 * @file
 * MercuryServer battery: golden equivalence of concurrent serving vs
 * serial private contexts (PerTenant), hit-superset under shared
 * dedup, backpressure, connect/disconnect churn (the TSan stress),
 * warm-start snapshots, and traffic-generator determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/layers.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace mercury {
namespace {

constexpr int64_t kDim = 32;
constexpr int kClasses = 4;

/** Deterministic per-tenant two-layer MLP (the factory contract). */
std::unique_ptr<Network>
makeModel(int tenant)
{
    Rng rng(9000 + static_cast<uint64_t>(tenant));
    auto net = std::make_unique<Network>();
    net->add(std::make_unique<DenseLayer>(kDim, 24, rng,
                                          /*layer_id=*/1));
    net->add(std::make_unique<ReluLayer>());
    net->add(std::make_unique<DenseLayer>(24, kClasses, rng,
                                          /*layer_id=*/2));
    return net;
}

TrafficConfig
smallTraffic(int tenants, int64_t requests)
{
    TrafficConfig tc;
    tc.tenants = tenants;
    tc.requestsPerTenant = requests;
    tc.batch = 16;
    tc.dim = kDim;
    tc.classes = kClasses;
    tc.seed = 77;
    return tc;
}

ServeConfig
smallServer(CacheMode mode)
{
    ServeConfig cfg;
    cfg.cacheMode = mode;
    cfg.signatureBits = 14;
    cfg.sets = 64;
    cfg.ways = 8;
    cfg.dataVersions = 2;
    cfg.modelFactory = makeModel;
    return cfg;
}

/** Train on even request indices, infer on odd ones. */
JobRequest
jobOf(const TrafficRequest &req)
{
    JobRequest job;
    job.kind = req.index % 2 == 0 ? JobRequest::Kind::Train
                                  : JobRequest::Kind::Inference;
    job.rows = req.rows;
    job.labels = req.labels;
    job.lr = 0.05f;
    return job;
}

/** submit() with backoff until accepted. */
std::shared_ptr<JobTicket>
submitRetrying(SessionHandle &session, const JobRequest &job)
{
    for (;;) {
        SubmitStatus st = session.submit(job);
        if (st.accepted)
            return st.ticket;
        EXPECT_GT(st.retryAfterMs, 0.0);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
}

bool
bitIdentical(const Tensor &a, const Tensor &b)
{
    return a.numel() == b.numel() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

void
expectSameMix(const ReuseStats &a, const ReuseStats &b,
              const std::string &what)
{
    EXPECT_EQ(a.mix.vectors, b.mix.vectors) << what;
    EXPECT_EQ(a.mix.hit, b.mix.hit) << what;
    EXPECT_EQ(a.mix.mau, b.mix.mau) << what;
    EXPECT_EQ(a.mix.mnu, b.mix.mnu) << what;
    EXPECT_EQ(a.macsTotal, b.macsTotal) << what;
    EXPECT_EQ(a.macsSkipped, b.macsSkipped) << what;
}

/**
 * Serial reference for one tenant: the same jobs on a private
 * persistent MercuryContext, mirroring the server's job-count-driven
 * epoch/eviction schedule exactly.
 */
struct SerialReference
{
    std::unique_ptr<Network> model;
    MercuryContext ctx;
    int64_t jobs = 0;
    uint64_t epoch = 0;
    const ServeConfig &cfg;

    explicit SerialReference(int tenant, const ServeConfig &config)
        : model(config.modelFactory(tenant)),
          ctx(config.signatureBits, config.sets, config.ways,
              config.dataVersions, config.seed),
          cfg(config)
    {
        PipelineConfig pipe = config.pipeline;
        pipe.persistent = true;
        ctx.setPipeline(pipe);
        ctx.setTenant(tenant);
    }

    JobResult run(const JobRequest &job)
    {
        JobResult out;
        const ReuseStats f0 = ctx.totals();
        const ReuseStats b0 = ctx.backwardTotals();
        const ReuseStats w0 = ctx.weightGradTotals();
        if (job.kind == JobRequest::Kind::Train)
            out.loss =
                model->trainBatch(job.rows, job.labels, job.lr, &ctx);
        else
            out.output = model->forward(job.rows, &ctx);
        const auto delta = [](const ReuseStats &now,
                              const ReuseStats &before) {
            ReuseStats d;
            d.mix.vectors = now.mix.vectors - before.mix.vectors;
            d.mix.hit = now.mix.hit - before.mix.hit;
            d.mix.mau = now.mix.mau - before.mix.mau;
            d.mix.mnu = now.mix.mnu - before.mix.mnu;
            d.macsTotal = now.macsTotal - before.macsTotal;
            d.macsSkipped = now.macsSkipped - before.macsSkipped;
            return d;
        };
        out.forward = delta(ctx.totals(), f0);
        out.backward = delta(ctx.backwardTotals(), b0);
        out.weightGrad = delta(ctx.weightGradTotals(), w0);

        // Mirror MercuryServer::runJob's aging schedule.
        ++jobs;
        if (cfg.epochEveryJobs > 0 && jobs % cfg.epochEveryJobs == 0) {
            ++epoch;
            ctx.setEpoch(epoch);
            if (cfg.evictionWindow > 0 && epoch > cfg.evictionWindow)
                ctx.evictOlderThan(epoch - cfg.evictionWindow);
        }
        out.epochAfter = epoch;
        return out;
    }
};

// ---- Golden equivalence ---------------------------------------------

TEST(Serve, PerTenantServingIsBitIdenticalToSerial)
{
    // Three tenants served concurrently (private caches, aging and
    // eviction on) must produce bit-identical outputs, losses, stats
    // deltas, and epoch stamps to each tenant running its own jobs
    // serially on a private persistent context.
    const int kTenants = 3;
    const int64_t kRequests = 6;
    ServeConfig cfg = smallServer(CacheMode::PerTenant);
    cfg.epochEveryJobs = 2;
    cfg.evictionWindow = 2;

    const TrafficConfig tc = smallTraffic(kTenants, kRequests);

    // Served, concurrently: one client thread per tenant.
    std::vector<std::vector<JobResult>> served(
        static_cast<size_t>(kTenants));
    {
        MercuryServer server(cfg);
        std::vector<std::thread> clients;
        for (int t = 0; t < kTenants; ++t) {
            clients.emplace_back([&server, &served, &tc, t] {
                TrafficGenerator gen(tc); // per-thread: next() is
                                          // per-tenant deterministic
                SessionHandle session = server.connect(t);
                ASSERT_TRUE(session.valid());
                for (int64_t i = 0; i < tc.requestsPerTenant; ++i) {
                    const TrafficRequest req = gen.next(t);
                    auto ticket =
                        submitRetrying(session, jobOf(req));
                    served[static_cast<size_t>(t)].push_back(
                        ticket->wait());
                }
                session.disconnect();
            });
        }
        for (auto &c : clients)
            c.join();
        EXPECT_EQ(server.stats().jobsCompleted,
                  kTenants * kRequests);
        EXPECT_EQ(server.stats().activeSessions, 0);
    }

    // Serial reference, one tenant at a time.
    for (int t = 0; t < kTenants; ++t) {
        TrafficGenerator gen(tc);
        SerialReference ref(t, cfg);
        for (int64_t i = 0; i < tc.requestsPerTenant; ++i) {
            const TrafficRequest req = gen.next(t);
            const JobRequest job = jobOf(req);
            const JobResult want = ref.run(job);
            const JobResult &got =
                served[static_cast<size_t>(t)][static_cast<size_t>(i)];
            const std::string what = "tenant " + std::to_string(t) +
                                     " request " + std::to_string(i);
            if (job.kind == JobRequest::Kind::Train) {
                EXPECT_EQ(got.loss, want.loss) << what;
            } else {
                EXPECT_TRUE(bitIdentical(got.output, want.output))
                    << what;
            }
            expectSameMix(got.forward, want.forward, what + " fwd");
            expectSameMix(got.backward, want.backward, what + " bwd");
            expectSameMix(got.weightGrad, want.weightGrad,
                          what + " dW");
            EXPECT_EQ(got.epochAfter, want.epochAfter) << what;
        }
    }
}

TEST(Serve, PersistenceProducesCrossRequestHits)
{
    // The point of the server: correlated follow-up requests HIT
    // against tags inserted by earlier requests of the same session.
    ServeConfig cfg = smallServer(CacheMode::PerTenant);
    TrafficConfig tc = smallTraffic(1, 6);
    tc.temporalCorr = 1.0; // every request drifts off the previous

    MercuryServer server(cfg);
    SessionHandle session = server.connect(0);
    ASSERT_TRUE(session.valid());
    TrafficGenerator gen(tc);

    // The first request may still HIT within its own batch (same-
    // class rows dedup intra-pass); what persistence adds is hits
    // *beyond* that floor on every correlated follow-up.
    const JobResult first =
        submitRetrying(session, jobOf(gen.next(0)))->wait();

    int64_t later_hits = 0;
    for (int64_t i = 1; i < tc.requestsPerTenant; ++i)
        later_hits +=
            submitRetrying(session, jobOf(gen.next(0)))->wait()
                .forward.mix.hit;
    EXPECT_GT(later_hits,
              (tc.requestsPerTenant - 1) * first.forward.mix.hit);
    session.disconnect();
}

TEST(Serve, ReconnectFindsWarmCaches)
{
    // Tenant cache state is server-owned: disconnect + reconnect and
    // a repeat of the last request still HITs.
    ServeConfig cfg = smallServer(CacheMode::PerTenant);
    TrafficConfig tc = smallTraffic(1, 2);

    MercuryServer server(cfg);
    TrafficGenerator gen(tc);
    const TrafficRequest req = gen.next(0);

    SessionHandle first = server.connect(0);
    ASSERT_TRUE(first.valid());
    const JobResult cold = submitRetrying(first, jobOf(req))->wait();
    first.disconnect();
    EXPECT_FALSE(first.valid());

    SessionHandle second = server.connect(0);
    ASSERT_TRUE(second.valid());
    const JobResult warm = submitRetrying(second, jobOf(req))->wait();
    EXPECT_GT(warm.forward.mix.hit, 0);
    second.disconnect();
}

TEST(Serve, SharedDedupHitsAreASupersetOfPrivateHits)
{
    // With a cache generous enough never to MNU, a tenant sharing the
    // cache sees every HIT its private run saw (same probes, strictly
    // more tags present) — plus cross-tenant dedup hits on top.
    const int kTenants = 3;
    const int64_t kRequests = 4;
    ServeConfig cfg = smallServer(CacheMode::SharedDedup);
    cfg.sets = 512;
    cfg.ways = 16;
    cfg.evictionWindow = 0; // no aging: monotone tag growth

    const TrafficConfig tc = smallTraffic(kTenants, kRequests);

    // Private reference hit counts.
    std::vector<int64_t> private_hits(static_cast<size_t>(kTenants));
    for (int t = 0; t < kTenants; ++t) {
        ServeConfig priv = cfg;
        priv.cacheMode = CacheMode::PerTenant;
        TrafficGenerator gen(tc);
        SerialReference ref(t, priv);
        for (int64_t i = 0; i < kRequests; ++i) {
            const JobResult r = ref.run(jobOf(gen.next(t)));
            private_hits[static_cast<size_t>(t)] +=
                r.forward.mix.hit + r.backward.mix.hit +
                r.weightGrad.mix.hit;
            ASSERT_EQ(r.forward.mix.mnu, 0);
        }
    }

    // Served with the shared cache, concurrent tenants.
    std::vector<std::atomic<int64_t>> shared_hits(
        static_cast<size_t>(kTenants));
    std::vector<std::atomic<int64_t>> shared_mnu(
        static_cast<size_t>(kTenants));
    MercuryServer server(cfg);
    std::vector<std::thread> clients;
    for (int t = 0; t < kTenants; ++t) {
        clients.emplace_back([&, t] {
            TrafficGenerator gen(tc);
            SessionHandle session = server.connect(t);
            ASSERT_TRUE(session.valid());
            for (int64_t i = 0; i < kRequests; ++i) {
                const JobResult r =
                    submitRetrying(session, jobOf(gen.next(t)))
                        ->wait();
                shared_hits[static_cast<size_t>(t)] +=
                    r.forward.mix.hit + r.backward.mix.hit +
                    r.weightGrad.mix.hit;
                shared_mnu[static_cast<size_t>(t)] +=
                    r.forward.mix.mnu;
            }
            session.disconnect();
        });
    }
    for (auto &c : clients)
        c.join();

    for (int t = 0; t < kTenants; ++t) {
        EXPECT_EQ(shared_mnu[static_cast<size_t>(t)].load(), 0)
            << "cache not generous enough for the superset claim";
        EXPECT_GE(shared_hits[static_cast<size_t>(t)].load(),
                  private_hits[static_cast<size_t>(t)])
            << "tenant " << t;
    }
}

TEST(Serve, SharedQuotaCapsATenantsLines)
{
    ServeConfig cfg = smallServer(CacheMode::SharedQuota);
    cfg.tenantQuotaEntries = 4; // tiny: force rejections
    cfg.evictionWindow = 0;
    TrafficConfig tc = smallTraffic(1, 3);
    tc.temporalCorr = 0.0; // fresh rows every request
    tc.noise = 0.6f;       // scatter rows into distinct signatures

    MercuryServer server(cfg);
    SessionHandle session = server.connect(0);
    ASSERT_TRUE(session.valid());
    TrafficGenerator gen(tc);
    int64_t mnu = 0;
    for (int64_t i = 0; i < tc.requestsPerTenant; ++i)
        mnu += submitRetrying(session, jobOf(gen.next(0)))->wait()
                   .forward.mix.mnu;
    session.disconnect();
    // Far more distinct rows than quota lines: the gate must reject.
    EXPECT_GT(mnu, 0);
}

// ---- Backpressure and session limits --------------------------------

TEST(Serve, FullQueueRejectsWithRetryAfter)
{
    ServeConfig cfg = smallServer(CacheMode::PerTenant);
    cfg.sessionThreads = 1;
    cfg.maxQueuedPerSession = 2;
    MercuryServer server(cfg);
    SessionHandle session = server.connect(0);
    ASSERT_TRUE(session.valid());

    TrafficGenerator gen(smallTraffic(1, 1));
    const JobRequest job = jobOf(gen.next(0));

    // Flood without waiting: the bounded queue must reject some
    // submissions with a positive backoff hint and no ticket.
    bool saw_reject = false;
    std::vector<std::shared_ptr<JobTicket>> tickets;
    for (int i = 0; i < 200 && !saw_reject; ++i) {
        SubmitStatus st = session.submit(job);
        if (st.accepted) {
            tickets.push_back(st.ticket);
        } else {
            saw_reject = true;
            EXPECT_GT(st.retryAfterMs, 0.0);
            EXPECT_EQ(st.ticket, nullptr);
        }
    }
    EXPECT_TRUE(saw_reject);
    EXPECT_GT(server.stats().jobsRejected, 0);

    // Accepted work still completes, and a later retry is accepted.
    session.drain();
    for (auto &t : tickets)
        EXPECT_TRUE(t->ready());
    EXPECT_TRUE(session.submit(job).accepted);
    session.disconnect();
}

TEST(Serve, ConnectEnforcesSessionLimits)
{
    ServeConfig cfg = smallServer(CacheMode::PerTenant);
    cfg.maxSessions = 2;
    MercuryServer server(cfg);

    SessionHandle a = server.connect(0);
    ASSERT_TRUE(a.valid());
    EXPECT_FALSE(server.connect(0).valid()); // duplicate tenant
    SessionHandle b = server.connect(1);
    ASSERT_TRUE(b.valid());
    EXPECT_FALSE(server.connect(2).valid()); // all slots taken

    a.disconnect();
    SessionHandle c = server.connect(2); // freed slot
    EXPECT_TRUE(c.valid());
    b.disconnect();
    c.disconnect();
}

// ---- Churn stress (the TSan target) ---------------------------------

TEST(Serve, ConnectDisconnectChurnUnderLoad)
{
    // Clients connect, serve a few jobs, disconnect, and reconnect in
    // a loop while other tenants are mid-epoch — the race surface
    // TSan patrols: session table, cache creation, aging sweeps,
    // queue counters.
    const int kTenants = 4;
    ServeConfig cfg = smallServer(CacheMode::SharedQuota);
    cfg.maxSessions = kTenants;
    cfg.epochEveryJobs = 3;
    cfg.evictionWindow = 1;
    cfg.tenantQuotaEntries = 64;

    const TrafficConfig tc = smallTraffic(kTenants, 100);
    MercuryServer server(cfg);
    std::atomic<int64_t> completed{0};

    std::vector<std::thread> clients;
    for (int t = 0; t < kTenants; ++t) {
        clients.emplace_back([&, t] {
            TrafficGenerator gen(tc);
            for (int round = 0; round < 3; ++round) {
                SessionHandle session = server.connect(t);
                ASSERT_TRUE(session.valid()); // slot reserved per tenant
                for (int64_t i = 0; i < 4; ++i) {
                    auto ticket =
                        submitRetrying(session, jobOf(gen.next(t)));
                    if (i % 2 == 0)
                        ticket->wait(); // mix waited and fire-forget
                    ++completed;
                }
                session.disconnect();
            }
        });
    }
    for (auto &c : clients)
        c.join();

    EXPECT_EQ(server.stats().jobsCompleted, completed.load());
    EXPECT_EQ(server.stats().activeSessions, 0);
}

// ---- Warm-start snapshots -------------------------------------------

TEST(Serve, SnapshotWarmStartBeatsColdStart)
{
    ServeConfig cfg = smallServer(CacheMode::PerTenant);
    const TrafficConfig tc = smallTraffic(2, 3);

    auto playTraffic = [&](MercuryServer &server) {
        int64_t hits = 0;
        for (int t = 0; t < tc.tenants; ++t) {
            TrafficGenerator gen(tc);
            SessionHandle session = server.connect(t);
            EXPECT_TRUE(session.valid());
            for (int64_t i = 0; i < tc.requestsPerTenant; ++i)
                hits += submitRetrying(session, jobOf(gen.next(t)))
                            ->wait()
                            .forward.mix.hit;
            session.disconnect();
        }
        return hits;
    };

    Snapshot snap;
    int64_t cold_hits = 0;
    {
        MercuryServer server(cfg);
        cold_hits = playTraffic(server);
        server.saveSnapshot(snap);
    }
    EXPECT_FALSE(snap.caches().empty());

    // Byte-canonical: the snapshot survives a serialize/parse cycle.
    const auto bytes = snap.serialize();
    Snapshot reloaded;
    std::string error;
    ASSERT_TRUE(Snapshot::parse(bytes.data(), bytes.size(), reloaded,
                                error))
        << error;

    // A warm-started server replays the same traffic with strictly
    // more hits: every request now probes against the full history.
    MercuryServer warm(cfg);
    ASSERT_TRUE(warm.loadSnapshot(reloaded, error)) << error;
    const int64_t warm_hits = playTraffic(warm);
    EXPECT_GT(warm_hits, cold_hits);

    // Epoch clocks resumed past the snapshot's newest line.
    EXPECT_GE(warm.tenantEpoch(0), tc.requestsPerTenant);
}

// ---- Traffic generator determinism ----------------------------------

TEST(Serve, TrafficGeneratorIsDeterministicAcrossInterleavings)
{
    const TrafficConfig tc = smallTraffic(3, 5);
    TrafficGenerator a(tc);
    TrafficGenerator b(tc);

    // Pull a's streams tenant-major, b's round-robin: per-tenant
    // streams must match bit for bit (this is what lets the serving
    // tests replay concurrent traffic serially).
    std::vector<std::vector<TrafficRequest>> as(3), bs(3);
    for (int t = 0; t < 3; ++t)
        for (int i = 0; i < 5; ++i)
            as[static_cast<size_t>(t)].push_back(a.next(t));
    for (int i = 0; i < 5; ++i)
        for (int t = 2; t >= 0; --t)
            bs[static_cast<size_t>(t)].push_back(b.next(t));

    for (int t = 0; t < 3; ++t) {
        for (int i = 0; i < 5; ++i) {
            const auto &ra = as[static_cast<size_t>(t)]
                               [static_cast<size_t>(i)];
            const auto &rb = bs[static_cast<size_t>(t)]
                               [static_cast<size_t>(i)];
            EXPECT_TRUE(bitIdentical(ra.rows, rb.rows))
                << "tenant " << t << " request " << i;
            EXPECT_EQ(ra.labels, rb.labels);
            EXPECT_EQ(ra.correlated, rb.correlated);
        }
    }

    // reset() rewinds to the identical stream.
    a.reset();
    EXPECT_TRUE(bitIdentical(a.next(1).rows,
                             as[1][0].rows));
}

TEST(Serve, TrafficTemporalCorrelationProducesNearDuplicates)
{
    TrafficConfig tc = smallTraffic(1, 8);
    tc.temporalCorr = 1.0;
    TrafficGenerator gen(tc);
    TrafficRequest prev = gen.next(0);
    EXPECT_FALSE(prev.correlated); // first draw is always fresh
    for (int i = 1; i < 8; ++i) {
        const TrafficRequest cur = gen.next(0);
        EXPECT_TRUE(cur.correlated);
        // Drift stays at driftNoise scale, far under the fresh-draw
        // noise floor: rows are near-duplicates of the previous
        // request.
        float max_delta = 0.0f;
        for (int64_t k = 0; k < cur.rows.numel(); ++k)
            max_delta = std::max(
                max_delta, std::abs(cur.rows.data()[k] -
                                    prev.rows.data()[k]));
        EXPECT_LT(max_delta, 0.05f);
        EXPECT_EQ(cur.labels, prev.labels);
        prev = cur;
    }
}

} // namespace
} // namespace mercury
