/**
 * @file
 * Cross-module integration tests: the functional reuse engines, the
 * statistical similarity source, the timing models, and the
 * top-level accelerator agreeing with each other across the whole
 * model zoo.
 */

#include <gtest/gtest.h>

#include "baselines/ucnn.hpp"
#include "baselines/zero_pruning.hpp"
#include "core/conv_reuse_engine.hpp"
#include "core/mercury_accelerator.hpp"
#include "models/model_zoo.hpp"
#include "sim/global_buffer.hpp"
#include "workloads/profiles.hpp"
#include "workloads/synthetic.hpp"

namespace mercury {
namespace {

class ModelZooIntegration : public ::testing::TestWithParam<int>
{
  protected:
    ModelConfig model() const
    {
        return allModels()[static_cast<size_t>(GetParam())];
    }
};

TEST_P(ModelZooIntegration, TrainingSimulationProducesSaneSpeedup)
{
    const ModelConfig m = model();
    AcceleratorConfig cfg;
    SyntheticSimilaritySource source(m, cfg, 42, 256, 24);
    MercuryAccelerator acc(cfg, m.layers);
    const TrainingReport rep = acc.train(source, 2, 1, {}, 4);
    EXPECT_GT(rep.speedup(), 1.0) << m.name;
    EXPECT_LT(rep.speedup(), 4.0) << m.name;
    EXPECT_GT(rep.totals.baseline, 0u);
    EXPECT_GE(rep.totals.signature, 0u);
}

TEST_P(ModelZooIntegration, ReportAccountingConsistent)
{
    const ModelConfig m = model();
    AcceleratorConfig cfg;
    SyntheticSimilaritySource source(m, cfg, 43, 256, 24);
    MercuryAccelerator acc(cfg, m.layers);
    const TrainingReport rep = acc.train(source, 2, 1, {}, 0);
    // Per-layer cycles sum to the totals.
    LayerCycles sum;
    for (const auto &lr : rep.layers)
        sum += lr.cycles;
    EXPECT_EQ(sum.baseline, rep.totals.baseline) << m.name;
    EXPECT_EQ(sum.mercuryTotal(), rep.totals.mercuryTotal()) << m.name;
    // On/off counts cover exactly the reusable layers.
    EXPECT_EQ(rep.layersOn + rep.layersOff, m.reusableLayers())
        << m.name;
}

TEST_P(ModelZooIntegration, BaselinesProduceFiniteBounds)
{
    const ModelConfig m = model();
    const double ucnn = ucnnBound(m, 6, 7).speedupBound;
    const double zero = zeroPruningModelBound(m, 8);
    EXPECT_GT(ucnn, 1.0) << m.name;
    EXPECT_LT(ucnn, 2.0) << m.name;
    EXPECT_GT(zero, 1.0) << m.name;
    EXPECT_LT(zero, 3.0) << m.name;
}

INSTANTIATE_TEST_SUITE_P(AllTwelve, ModelZooIntegration,
                         ::testing::Range(0, 12));

TEST(Integration, EngineMixFeedsTimingModelConsistently)
{
    // The hit mix measured by the functional engine, fed to the
    // timing model, must yield the same speedup ordering as running
    // a lower-similarity input through the same pipeline.
    Rng rng(50);
    Tensor w({64, 4, 3, 3});
    w.fillNormal(rng, 0.0f, 0.3f);
    ConvSpec spec;
    spec.inChannels = 4;
    spec.outChannels = 64;
    spec.kernelH = spec.kernelW = 3;
    spec.pad = 1;
    LayerShape shape = LayerShape::conv("it", 4, 64, 16, 16, 3, 1, 1);
    AcceleratorConfig cfg;
    auto df = Dataflow::create(cfg);

    auto speedup_for = [&](float noise) {
        Dataset ds = makeImageDataset(1, 3, 4, 16, 51, noise);
        MCache cache(64, 16, 4);
        ConvReuseEngine engine(cache, 20, 52);
        ReuseStats stats;
        engine.forward(ds.inputs, w, Tensor(), spec, stats);
        return df->mercuryLayerCycles(shape, 1, stats.mix, 20).speedup();
    };
    const double smooth = speedup_for(0.01f);
    const double noisy = speedup_for(2.0f);
    EXPECT_GT(smooth, noisy);
    EXPECT_GT(smooth, 1.0);
}

TEST(Integration, SignatureTableSpillFitsGlobalBuffer)
{
    // §III-C2 stores forward signatures for the backward pass; the
    // spill volume for a whole VGG13 channel pass must fit the
    // global buffer with room to spare.
    SignatureTable table;
    const LayerShape conv = vgg13().layers[0];
    for (int64_t i = 0; i < conv.vectorsPerChannel(); ++i)
        table.append(Signature(20), i % 1024);
    GlobalBuffer buffer;
    buffer.signatureTraffic(table.storageBytes());
    EXPECT_GT(table.storageBytes(), 0u);
    EXPECT_EQ(buffer.signatureBytes(), table.storageBytes());
    // 50k vectors x 7 bytes < 512 KiB external spill budget.
    EXPECT_LT(table.storageBytes(), 512u * 1024u);
}

TEST(Integration, SourceMnuRespondsToCacheOrganization)
{
    // Shrinking the MCACHE must never reduce the MNU fraction the
    // source measures for a capacity-pressured layer.
    const ModelConfig m = vgg13();
    const LayerShape &big = m.layers[1]; // conv2: 224x224, 64ch
    AcceleratorConfig small_cfg;
    small_cfg.mcacheSets = 16;
    small_cfg.mcacheWays = 8;
    AcceleratorConfig large_cfg;
    large_cfg.mcacheSets = 128;
    large_cfg.mcacheWays = 16;
    SyntheticSimilaritySource small_src(m, small_cfg, 44);
    SyntheticSimilaritySource large_src(m, large_cfg, 44);
    const HitMix s = small_src.channelMix(big, 20, Phase::Forward);
    const HitMix l = large_src.channelMix(big, 20, Phase::Forward);
    EXPECT_GE(static_cast<double>(s.mnu) / s.vectors,
              static_cast<double>(l.mnu) / l.vectors);
}

TEST(Integration, WeightStationarySignatureCostIsIncremental)
{
    // §IV: random filters are prepended to the filter list, so the
    // WS signature cost is at most one extra group pass when the
    // filter count is large.
    AcceleratorConfig cfg;
    cfg.dataflow = DataflowKind::WeightStationary;
    auto df = Dataflow::create(cfg);
    LayerShape shape = LayerShape::conv("ws", 16, 512, 28, 28, 3, 1, 1);
    HitMix mix = HitMix::fromFractions(shape.vectorsPerChannel(), 0.5);
    const LayerCycles c = df->mercuryLayerCycles(shape, 1, mix, 20);
    // Signature cost below 3 of the ~29 baseline group passes.
    EXPECT_LT(c.signature, c.baseline / 9);
}

TEST(Integration, EndToEndDeterminism)
{
    // Identical seeds end to end -> identical cycle counts.
    const ModelConfig m = alexnet();
    AcceleratorConfig cfg;
    auto run = [&]() {
        SyntheticSimilaritySource source(m, cfg, 45, 256, 24);
        MercuryAccelerator acc(cfg, m.layers);
        return acc.train(source, 2, 1, {}, 2).totals.mercuryTotal();
    };
    EXPECT_EQ(run(), run());
}

TEST(Integration, FasterWithLargerBatchProportionally)
{
    const ModelConfig m = alexnet();
    AcceleratorConfig cfg;
    SyntheticSimilaritySource source(m, cfg, 46, 256, 24);
    MercuryAccelerator acc(cfg, m.layers);
    const TrainingReport b1 = acc.train(source, 1, 1, {}, 0);
    SyntheticSimilaritySource source2(m, cfg, 46, 256, 24);
    MercuryAccelerator acc2(cfg, m.layers);
    const TrainingReport b8 = acc2.train(source2, 1, 8, {}, 0);
    EXPECT_NEAR(static_cast<double>(b8.totals.baseline) /
                    static_cast<double>(b1.totals.baseline),
                8.0, 0.01);
}

} // namespace
} // namespace mercury
