/**
 * @file
 * Tests for the model zoo: all twelve networks exist, their layer
 * tables chain dimensionally, MAC counts are in the right order of
 * magnitude, and family-specific structure is present.
 */

#include <gtest/gtest.h>

#include <map>

#include "models/model_zoo.hpp"

namespace mercury {
namespace {

TEST(ModelZoo, TwelveModelsInPaperOrder)
{
    const auto models = allModels();
    ASSERT_EQ(models.size(), 12u);
    EXPECT_EQ(models[0].name, "AlexNet");
    EXPECT_EQ(models[1].name, "GoogleNet");
    EXPECT_EQ(models[5].name, "VGG-13");
    EXPECT_EQ(models[11].name, "Transformer");
}

TEST(ModelZoo, CnnListExcludesTransformer)
{
    const auto cnns = cnnModels();
    ASSERT_EQ(cnns.size(), 11u);
    for (const auto &m : cnns)
        EXPECT_NE(m.name, "Transformer");
}

TEST(ModelZoo, Vgg13HasTenConvLayers)
{
    // The paper's Fig. 1 / Fig. 15 analyze VGG13's 10 conv layers.
    int convs = 0;
    for (const auto &l : vgg13().layers)
        convs += l.type == LayerType::Conv;
    EXPECT_EQ(convs, 10);
}

TEST(ModelZoo, VggFamilyConvCounts)
{
    auto count = [](const ModelConfig &m) {
        int c = 0;
        for (const auto &l : m.layers)
            c += l.type == LayerType::Conv;
        return c;
    };
    EXPECT_EQ(count(vgg16()), 13);
    EXPECT_EQ(count(vgg19()), 16);
}

TEST(ModelZoo, ResnetDepthsScale)
{
    auto convs = [](const ModelConfig &m) {
        int c = 0;
        for (const auto &l : m.layers)
            c += l.type == LayerType::Conv;
        return c;
    };
    const int r50 = convs(resnet50());
    const int r101 = convs(resnet101());
    const int r152 = convs(resnet152());
    EXPECT_LT(r50, r101);
    EXPECT_LT(r101, r152);
    // 3x(3+4+6+3)=48 convs + 4 downsamples + stem = 53.
    EXPECT_EQ(r50, 53);
}

TEST(ModelZoo, ConvLayerDimensionsChain)
{
    // Within sequential (non-branchy) models, each conv/pool layer's
    // spatial input must match the previous layer's output.
    for (const auto &m : {alexnet(), vgg13(), vgg16(), vgg19()}) {
        int64_t hw = -1;
        for (const auto &l : m.layers) {
            if (l.type != LayerType::Conv && l.type != LayerType::Pool)
                continue;
            if (hw > 0) {
                EXPECT_EQ(l.inH, hw) << m.name << " layer " << l.name;
            }
            hw = l.outH();
        }
    }
}

TEST(ModelZoo, MacCountsAreRealistic)
{
    // Published forward-pass MAC counts (approximate, batch 1):
    // VGG-16 ~15.5G, ResNet-50 ~4G, AlexNet ~0.7G.
    const double vgg16_g =
        static_cast<double>(vgg16().totalMacs(1)) / 1e9;
    EXPECT_NEAR(vgg16_g, 15.4, 1.5);
    const double r50_g =
        static_cast<double>(resnet50().totalMacs(1)) / 1e9;
    EXPECT_NEAR(r50_g, 4.0, 1.0);
    const double alex_g =
        static_cast<double>(alexnet().totalMacs(1)) / 1e9;
    EXPECT_NEAR(alex_g, 0.9, 0.5);
}

TEST(ModelZoo, MacOrdering)
{
    EXPECT_LT(resnet50().totalMacs(1), resnet101().totalMacs(1));
    EXPECT_LT(resnet101().totalMacs(1), resnet152().totalMacs(1));
    EXPECT_LT(vgg13().totalMacs(1), vgg16().totalMacs(1));
    EXPECT_LT(vgg16().totalMacs(1), vgg19().totalMacs(1));
}

TEST(ModelZoo, MobilenetHasDepthwiseLayers)
{
    int depthwise = 0;
    for (const auto &l : mobilenetV2().layers)
        if (l.type == LayerType::Conv && l.groups > 1) {
            EXPECT_EQ(l.groups, l.inChannels) << l.name;
            ++depthwise;
        }
    EXPECT_EQ(depthwise, 17); // one per inverted residual block
}

TEST(ModelZoo, TransformerHasAttentionLayers)
{
    int attn = 0, fc = 0;
    for (const auto &l : transformer().layers) {
        attn += l.type == LayerType::Attention;
        fc += l.type == LayerType::FullyConnected;
    }
    EXPECT_EQ(attn, 12);
    EXPECT_EQ(fc, 25);
}

TEST(ModelZoo, GooglenetInceptionBranches)
{
    // 9 inception modules x 6 convs + 3 stem convs = 57 convs.
    int convs = 0;
    for (const auto &l : googlenet().layers)
        convs += l.type == LayerType::Conv;
    EXPECT_EQ(convs, 57);
}

TEST(ModelZoo, LayerNamesUnique)
{
    for (const auto &m : allModels()) {
        std::map<std::string, int> seen;
        for (const auto &l : m.layers)
            ++seen[l.name];
        for (const auto &kv : seen)
            EXPECT_EQ(kv.second, 1)
                << m.name << " duplicate layer " << kv.first;
    }
}

TEST(ModelZoo, AllLayersHavePositiveDims)
{
    for (const auto &m : allModels()) {
        for (const auto &l : m.layers) {
            if (l.type == LayerType::Conv || l.type == LayerType::Pool) {
                EXPECT_GT(l.outH(), 0) << m.name << " " << l.name;
                EXPECT_GT(l.outW(), 0) << m.name << " " << l.name;
                EXPECT_GT(l.inChannels, 0) << m.name << " " << l.name;
            }
            if (l.reusable()) {
                EXPECT_GT(l.macCount(1), 0u) << m.name << " " << l.name;
            }
        }
    }
}

TEST(ModelZoo, ReusableLayerCountsMatchFig14aScale)
{
    // Fig. 14a plots up to ~160 layers; ResNet152 tops the CNNs.
    EXPECT_GT(resnet152().reusableLayers(), 100);
    EXPECT_LT(alexnet().reusableLayers(), 12);
}

} // namespace
} // namespace mercury
