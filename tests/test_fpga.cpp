/**
 * @file
 * Tests for the FPGA resource/power model: exactness at the paper's
 * published anchor points (Tables II-IV), sensible interpolation
 * between them, and the reported MERCURY-vs-baseline overhead.
 */

#include <gtest/gtest.h>

#include "fpga/resource_model.hpp"

namespace mercury {
namespace {

TEST(Fpga, TableIIAnchorsExact)
{
    FpgaModel model;
    // 16 ways, sets sweep (paper Table II-a).
    const FpgaResources r16 = model.resources(16, 16);
    EXPECT_DOUBLE_EQ(r16.sliceLuts, 140597);
    EXPECT_DOUBLE_EQ(r16.sliceRegisters, 62620);
    EXPECT_DOUBLE_EQ(r16.blockRam, 1177.5);
    EXPECT_DOUBLE_EQ(r16.dsp48, 198);
    const FpgaResources r64 = model.resources(64, 16);
    EXPECT_DOUBLE_EQ(r64.sliceLuts, 216918);
    EXPECT_DOUBLE_EQ(r64.sliceRegisters, 81332);
    EXPECT_DOUBLE_EQ(r64.blockRam, 1225.5);
}

TEST(Fpga, TableIIIAnchorsExact)
{
    FpgaModel model;
    // 64 sets, ways sweep (paper Table III-a).
    const FpgaResources w2 = model.resources(64, 2);
    EXPECT_DOUBLE_EQ(w2.sliceLuts, 216777);
    EXPECT_DOUBLE_EQ(w2.sliceRegisters, 65727);
    const FpgaResources w8 = model.resources(64, 8);
    EXPECT_DOUBLE_EQ(w8.sliceRegisters, 71999);
}

TEST(Fpga, TableIIPowerAnchorsExact)
{
    FpgaModel model;
    EXPECT_NEAR(model.power(16, 16).total(), 1.811, 1e-6);
    EXPECT_NEAR(model.power(32, 16).total(), 1.833, 1e-6);
    EXPECT_NEAR(model.power(48, 16).total(), 1.884, 1e-6);
    EXPECT_NEAR(model.power(64, 16).total(), 1.929, 1e-6);
}

TEST(Fpga, TableIIIPowerAnchorsExact)
{
    FpgaModel model;
    EXPECT_NEAR(model.power(64, 2).total(), 1.855, 1e-6);
    EXPECT_NEAR(model.power(64, 4).total(), 1.874, 1e-6);
    EXPECT_NEAR(model.power(64, 8).total(), 1.876, 1e-6);
}

TEST(Fpga, BaselineMatchesTableIV)
{
    FpgaModel model;
    const FpgaResources r = model.baselineResources();
    EXPECT_DOUBLE_EQ(r.sliceLuts, 56910);
    EXPECT_DOUBLE_EQ(r.sliceRegisters, 48735);
    EXPECT_DOUBLE_EQ(r.blockRam, 1161.5);
    EXPECT_NEAR(model.baselinePower().total(), 1.703, 1e-6);
}

TEST(Fpga, OverheadRatioMatchesPaper)
{
    // Table IV: MERCURY increases power by about 1.135x.
    FpgaModel model;
    EXPECT_NEAR(model.overheadRatio(), 1.133, 0.01);
}

TEST(Fpga, PowerGrowsWithSets)
{
    FpgaModel model;
    double prev = 0.0;
    for (int sets : {16, 32, 48, 64}) {
        const double p = model.power(sets, 16).total();
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(Fpga, RegistersGrowWithWays)
{
    FpgaModel model;
    double prev = 0.0;
    for (int ways : {2, 4, 8, 16}) {
        const double r = model.resources(64, ways).sliceRegisters;
        EXPECT_GT(r, prev);
        prev = r;
    }
}

TEST(Fpga, InterpolatesBetweenAnchors)
{
    FpgaModel model;
    const double r24 = model.resources(24, 16).sliceRegisters;
    EXPECT_GT(r24, 62620);
    EXPECT_LT(r24, 69536);
    // Midpoint is the linear average.
    EXPECT_DOUBLE_EQ(r24, (62620 + 69536) / 2.0);
}

TEST(Fpga, ExtrapolatesBeyondAnchors)
{
    // Paper §VII-C mentions 2048-entry caches (128 sets x 16 ways):
    // the model must extend beyond the published grid monotonically.
    FpgaModel model;
    EXPECT_GT(model.resources(128, 16).sliceRegisters,
              model.resources(64, 16).sliceRegisters);
    EXPECT_GT(model.power(128, 16).total(),
              model.power(64, 16).total());
}

TEST(Fpga, DspConstantEverywhere)
{
    FpgaModel model;
    for (int sets : {16, 64, 128})
        for (int ways : {2, 16, 32})
            EXPECT_DOUBLE_EQ(model.resources(sets, ways).dsp48, 198);
}

TEST(Fpga, MemoryTypeTableMatchesTableI)
{
    const auto rows = memoryTypeTable();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].memoryType, "Block Memory");
    EXPECT_NE(rows[0].components.find("Signature Table"),
              std::string::npos);
    EXPECT_NE(rows[1].components.find("MCACHE"), std::string::npos);
    EXPECT_NE(rows[1].components.find("ORg"), std::string::npos);
}

TEST(Fpga, InvalidOrganizationDies)
{
    FpgaModel model;
    EXPECT_DEATH(model.resources(0, 16), "positive");
    EXPECT_DEATH(model.power(64, 0), "positive");
}

TEST(Fpga, AnchoredCurveValidation)
{
    EXPECT_DEATH(AnchoredCurve({1.0}, {2.0}), "anchors");
    EXPECT_DEATH(AnchoredCurve({2.0, 1.0}, {1.0, 2.0}), "increasing");
    AnchoredCurve c({0.0, 10.0}, {0.0, 100.0});
    EXPECT_DOUBLE_EQ(c.eval(5.0), 50.0);
    EXPECT_DOUBLE_EQ(c.eval(20.0), 200.0); // linear extrapolation
}

} // namespace
} // namespace mercury
