/**
 * @file
 * Integration tests for the top-level MERCURY accelerator: training
 * simulations over small models with controlled similarity sources,
 * backward signature reuse, and adaptation end to end.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/mercury_accelerator.hpp"

namespace mercury {
namespace {

/** Fixed-fraction similarity source for deterministic tests. */
class FixedSource : public SimilaritySource
{
  public:
    explicit FixedSource(double hit_frac, double mnu_frac = 0.0)
        : hitFrac_(hit_frac), mnuFrac_(mnu_frac)
    {
    }

    HitMix
    channelMix(const LayerShape &shape, int sig_bits, Phase phase) override
    {
        ++queries_;
        lastBits_ = sig_bits;
        lastPhase_ = phase;
        return HitMix::fromFractions(shape.vectorsPerImage(), hitFrac_,
                                     mnuFrac_);
    }

    int queries() const { return queries_; }
    int lastBits() const { return lastBits_; }
    Phase lastPhase() const { return lastPhase_; }

  private:
    double hitFrac_;
    double mnuFrac_;
    int queries_ = 0;
    int lastBits_ = 20;
    Phase lastPhase_ = Phase::Forward;
};

std::vector<LayerShape>
tinyCnn()
{
    return {
        LayerShape::conv("conv1", 3, 64, 32, 32, 3, 1, 1),
        LayerShape::conv("conv2", 64, 128, 32, 32, 3, 1, 1),
        LayerShape::pool("pool1", 128, 32, 32, 2, 2),
        LayerShape::conv("conv3", 128, 128, 16, 16, 3, 1, 1),
        LayerShape::fc("fc1", 128 * 16 * 16, 256),
    };
}

AcceleratorConfig
rsConfig()
{
    AcceleratorConfig cfg;
    cfg.dataflow = DataflowKind::RowStationary;
    return cfg;
}

TEST(Accelerator, HighSimilarityTrainsFaster)
{
    MercuryAccelerator acc(rsConfig(), tinyCnn());
    FixedSource source(0.6);
    const TrainingReport rep = acc.train(source, 4, 8);
    EXPECT_GT(rep.speedup(), 1.2);
    EXPECT_EQ(rep.layers.size(), 5u);
}

TEST(Accelerator, ZeroSimilarityIsNotFaster)
{
    MercuryAccelerator acc(rsConfig(), tinyCnn());
    FixedSource source(0.0);
    const TrainingReport rep = acc.train(source, 4, 8);
    EXPECT_LE(rep.speedup(), 1.0);
}

TEST(Accelerator, SpeedupMonotonicInSimilarity)
{
    double prev = 0.0;
    for (double h : {0.2, 0.4, 0.6, 0.8}) {
        MercuryAccelerator acc(rsConfig(), tinyCnn());
        FixedSource source(h);
        const double s = acc.train(source, 2, 8).speedup();
        EXPECT_GT(s, prev) << "hit fraction " << h;
        prev = s;
    }
}

TEST(Accelerator, BaselineBatchMatchesReportTotals)
{
    MercuryAccelerator acc(rsConfig(), tinyCnn());
    FixedSource source(0.5);
    const int batches = 3;
    const int64_t batch = 4;
    const TrainingReport rep = acc.train(source, batches, batch);
    EXPECT_EQ(rep.totals.baseline,
              static_cast<uint64_t>(batches) *
                  acc.baselineBatchCycles(batch));
}

TEST(Accelerator, PoolLayersNeverQueried)
{
    // Source counts queries; pool layers must not ask for mixes.
    std::vector<LayerShape> model = {
        LayerShape::pool("pool", 8, 16, 16, 2, 2),
    };
    MercuryAccelerator acc(rsConfig(), model);
    FixedSource source(0.9);
    acc.train(source, 2, 4);
    EXPECT_EQ(source.queries(), 0);
}

TEST(Accelerator, QueriesPerBatchCoverPhases)
{
    // conv1 (fwd + dW), conv2 (fwd + dW + dX): 5 queries per batch.
    std::vector<LayerShape> model = {
        LayerShape::conv("conv1", 3, 64, 16, 16, 3, 1, 1),
        LayerShape::conv("conv2", 64, 64, 16, 16, 3, 1, 1),
    };
    MercuryAccelerator acc(rsConfig(), model);
    FixedSource source(0.5);
    acc.train(source, 1, 4);
    EXPECT_EQ(source.queries(), 5);
}

TEST(Accelerator, BackwardSignatureReuseReducesCost)
{
    // Two stacked same-kernel convs let conv1's dX pass reuse conv2's
    // forward signatures... the reuse applies to the *producer* layer
    // when the consumer matches, so compare a matched chain vs a
    // mismatched chain.
    std::vector<LayerShape> matched = {
        LayerShape::conv("a", 16, 64, 16, 16, 3, 1, 1),
        LayerShape::conv("b", 64, 64, 16, 16, 3, 1, 1),
        LayerShape::conv("c", 64, 64, 16, 16, 3, 1, 1),
    };
    std::vector<LayerShape> mismatched = {
        LayerShape::conv("a", 16, 64, 16, 16, 3, 1, 1),
        LayerShape::conv("b", 64, 64, 16, 16, 5, 1, 2),
        LayerShape::conv("c", 64, 64, 16, 16, 3, 1, 1),
    };
    FixedSource s1(0.5), s2(0.5);
    MercuryAccelerator acc1(rsConfig(), matched);
    MercuryAccelerator acc2(rsConfig(), mismatched);
    const auto r1 = acc1.train(s1, 1, 4);
    const auto r2 = acc2.train(s2, 1, 4);
    // Matched chain spends a smaller fraction on signatures.
    EXPECT_LT(r1.signatureFraction(), r2.signatureFraction());
}

TEST(Accelerator, UnprofitableLayersTurnOff)
{
    // A conv with very few filters cannot amortize signature passes;
    // the adaptive controller must turn it off within stoppageT
    // batches, after which its cycles match the baseline.
    std::vector<LayerShape> model = {
        LayerShape::conv("small", 8, 4, 16, 16, 3, 1, 1),
    };
    AcceleratorConfig cfg = rsConfig();
    cfg.stoppageT = 2;
    MercuryAccelerator acc(cfg, model);
    FixedSource source(0.1);
    const TrainingReport rep = acc.train(source, 10, 4);
    EXPECT_EQ(rep.layersOff, 1);
    EXPECT_EQ(rep.layersOn, 0);
    EXPECT_FALSE(rep.layers[0].detectionOn);
}

TEST(Accelerator, ProfitableLayersStayOn)
{
    MercuryAccelerator acc(rsConfig(), tinyCnn());
    FixedSource source(0.7);
    const TrainingReport rep = acc.train(source, 10, 4);
    EXPECT_EQ(rep.layersOff, 0);
    EXPECT_EQ(rep.layersOn, 4); // pool is not counted
}

TEST(Accelerator, SignatureBitsGrowOnDefaultLossCurve)
{
    // The default loss curve plateaus, so bits must grow above the
    // initial value over a long run.
    AcceleratorConfig cfg = rsConfig();
    cfg.plateauK = 3;
    MercuryAccelerator acc(cfg, tinyCnn());
    FixedSource source(0.6);
    const TrainingReport rep = acc.train(source, 60, 2);
    EXPECT_GT(rep.finalSignatureBits, cfg.initialSignatureBits);
    EXPECT_LE(rep.finalSignatureBits, cfg.maxSignatureBits);
}

TEST(Accelerator, CustomLossCurveControlsGrowth)
{
    AcceleratorConfig cfg = rsConfig();
    cfg.plateauK = 2;
    MercuryAccelerator acc(cfg, tinyCnn());
    FixedSource source(0.6);
    // Strictly decreasing loss: no plateau, no growth.
    const TrainingReport rep = acc.train(
        source, 30, 2, [](int b) { return 10.0 * std::pow(0.9, b); });
    EXPECT_EQ(rep.finalSignatureBits, cfg.initialSignatureBits);
}

TEST(Accelerator, SignatureFractionSmallForRealisticShapes)
{
    // Fig. 14b: signatures are a small fraction of total cycles.
    MercuryAccelerator acc(rsConfig(), tinyCnn());
    FixedSource source(0.5);
    const TrainingReport rep = acc.train(source, 2, 8);
    EXPECT_LT(rep.signatureFraction(), 0.25);
    EXPECT_GT(rep.signatureFraction(), 0.0);
}

TEST(Accelerator, WorksAcrossDataflows)
{
    for (DataflowKind kind :
         {DataflowKind::RowStationary, DataflowKind::WeightStationary,
          DataflowKind::InputStationary}) {
        AcceleratorConfig cfg;
        cfg.dataflow = kind;
        MercuryAccelerator acc(cfg, tinyCnn());
        FixedSource source(0.6);
        const TrainingReport rep = acc.train(source, 2, 4);
        EXPECT_GT(rep.speedup(), 1.0) << dataflowName(kind);
    }
}

TEST(Accelerator, WeightGradReuseReducesCost)
{
    // The dW pass rides the forward record instead of hashing
    // gradient vectors anew: fewer detection queries (no
    // BackwardWeight mixes) and fewer cycles.
    auto cfg = rsConfig();
    MercuryAccelerator base_acc(cfg, tinyCnn());
    FixedSource base_source(0.6);
    const TrainingReport base = base_acc.train(base_source, 3, 4);

    cfg.weightGradReuse = true;
    MercuryAccelerator reuse_acc(cfg, tinyCnn());
    FixedSource reuse_source(0.6);
    const TrainingReport reuse = reuse_acc.train(reuse_source, 3, 4);

    EXPECT_LT(reuse.totals.mercuryTotal(), base.totals.mercuryTotal());
    EXPECT_GT(reuse.speedup(), base.speedup());
    EXPECT_LT(reuse_source.queries(), base_source.queries())
        << "replayed dW must not query BackwardWeight mixes";
}

TEST(Accelerator, RecordSpillReportedOnlyWhenReplaying)
{
    auto cfg = rsConfig();
    MercuryAccelerator exact_acc(cfg, tinyCnn());
    FixedSource s1(0.5);
    const TrainingReport exact = exact_acc.train(s1, 2, 4);
    EXPECT_EQ(exact.recordPeakBytes, 0u);
    EXPECT_EQ(exact.recordSpillBytes, 0u);

    cfg.backwardReuse = true;
    cfg.weightGradReuse = true;
    MercuryAccelerator replay_acc(cfg, tinyCnn());
    FixedSource s2(0.5);
    const TrainingReport replay = replay_acc.train(s2, 2, 4);
    // Records of all reuse-enabled layers are alive at the
    // forward/backward turnaround; ImageNet-free CIFAR-scale records
    // still dwarf the 108 KiB buffer, so spill traffic is charged.
    EXPECT_GT(replay.recordPeakBytes, 0u);
    EXPECT_GT(replay.recordSpillBytes, 0u);
}

TEST(Accelerator, EmptyModelDies)
{
    EXPECT_DEATH(MercuryAccelerator(rsConfig(), {}), "at least one");
}

TEST(Accelerator, AttentionModelTrains)
{
    std::vector<LayerShape> model = {
        LayerShape::attention("att1", 64, 128),
        LayerShape::fc("fc", 128, 64),
    };
    MercuryAccelerator acc(rsConfig(), model);
    FixedSource source(0.5);
    const TrainingReport rep = acc.train(source, 2, 16);
    EXPECT_GT(rep.speedup(), 1.0);
}

} // namespace
} // namespace mercury
