/**
 * @file
 * Tests for the dataflow timing models: baseline formulas, MERCURY
 * savings as a function of the HIT/MAU/MNU mix, sync vs async
 * ordering, and cross-dataflow invariants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/cycle_model.hpp"
#include "sim/dataflow.hpp"

namespace mercury {
namespace {

AcceleratorConfig
defaultConfig(DataflowKind kind = DataflowKind::RowStationary)
{
    AcceleratorConfig cfg;
    cfg.dataflow = kind;
    return cfg;
}

LayerShape
smallConv()
{
    // 8 channels of 16x16 with 16 3x3 filters.
    return LayerShape::conv("conv", 8, 16, 16, 16, 3);
}

TEST(HitMix, FromFractionsConsistent)
{
    HitMix m = HitMix::fromFractions(100, 0.6, 0.1);
    EXPECT_EQ(m.vectors, 100);
    EXPECT_EQ(m.hit, 60);
    EXPECT_EQ(m.mnu, 10);
    EXPECT_EQ(m.mau, 30);
    EXPECT_TRUE(m.consistent());
}

TEST(HitMix, InvalidFractionsDie)
{
    EXPECT_DEATH(HitMix::fromFractions(10, 0.8, 0.4), "invalid");
}

TEST(HitMix, ScaledToPreservesFractions)
{
    HitMix m = HitMix::fromFractions(100, 0.5, 0.2);
    HitMix s = m.scaledTo(1000);
    EXPECT_EQ(s.vectors, 1000);
    EXPECT_NEAR(s.hitFraction(), 0.5, 0.01);
    EXPECT_TRUE(s.consistent());
}

TEST(HitMix, ScaledFromEmptyIsAllMau)
{
    HitMix empty;
    HitMix s = empty.scaledTo(10);
    EXPECT_EQ(s.mau, 10);
    EXPECT_TRUE(s.consistent());
}

TEST(LayerCyclesStruct, SpeedupAndAccumulate)
{
    LayerCycles c;
    c.baseline = 200;
    c.computation = 80;
    c.signature = 20;
    EXPECT_DOUBLE_EQ(c.speedup(), 2.0);
    LayerCycles d = c;
    d += c;
    EXPECT_EQ(d.baseline, 400u);
    EXPECT_EQ(d.mercuryTotal(), 200u);
}

TEST(DataflowFactory, CreatesRequestedKind)
{
    for (auto kind :
         {DataflowKind::RowStationary, DataflowKind::WeightStationary,
          DataflowKind::InputStationary}) {
        auto df = Dataflow::create(defaultConfig(kind));
        EXPECT_EQ(df->kind(), kind);
    }
}

TEST(RowStationary, BaselineMatchesClosedForm)
{
    auto cfg = defaultConfig();
    RowStationaryDataflow df(cfg);
    LayerShape shape = smallConv();
    // 168 PEs / 3 rows = 56 sets; 14x14 = 196 vectors -> 4 per set.
    const uint64_t per_filter = pipelinedPassCycles(4, 3);
    const uint64_t expect = 1ull * 8 * 16 * per_filter; // batch*cin*cout
    EXPECT_EQ(df.baselineLayerCycles(shape, 1), expect);
}

TEST(RowStationary, NumPESets)
{
    RowStationaryDataflow df(defaultConfig());
    EXPECT_EQ(df.numPESets(3), 56);
    EXPECT_EQ(df.numPESets(5), 33);
    EXPECT_EQ(df.numPESets(1), 168);
}

TEST(RowStationary, ZeroHitsCostsAtLeastBaselinePlusSignatures)
{
    auto cfg = defaultConfig();
    cfg.asyncDesign = false;
    RowStationaryDataflow df(cfg);
    LayerShape shape = smallConv();
    HitMix mix = HitMix::fromFractions(shape.vectorsPerChannel(), 0.0);
    LayerCycles c = df.mercuryLayerCycles(shape, 1, mix, 20);
    EXPECT_EQ(c.computation, c.baseline);
    EXPECT_GT(c.signature, 0u);
    EXPECT_GT(c.mercuryTotal(), c.baseline);
}

TEST(RowStationary, AllHitsMuchCheaperThanBaseline)
{
    auto cfg = defaultConfig();
    RowStationaryDataflow df(cfg);
    // Enough filters that the 20 signature passes amortize (real conv
    // layers have 64-512 filters per channel).
    LayerShape shape = LayerShape::conv("conv", 8, 128, 16, 16, 3);
    HitMix mix = HitMix::fromFractions(shape.vectorsPerChannel(), 1.0);
    LayerCycles c = df.mercuryLayerCycles(shape, 1, mix, 20);
    EXPECT_LT(c.mercuryTotal(), c.baseline / 2);
}

TEST(OverlapAccounting, HidesSignatureCyclesUnderCompute)
{
    // Fig. 8: with overlapDetection, only signature work exceeding
    // the layer's compute time stays on the critical path.
    for (const DataflowKind kind :
         {DataflowKind::RowStationary, DataflowKind::WeightStationary,
          DataflowKind::InputStationary}) {
        auto cfg = defaultConfig(kind);
        auto overlap_cfg = cfg;
        overlap_cfg.overlapDetection = OverlapMode::On;
        const auto serial = Dataflow::create(cfg);
        const auto overlapped = Dataflow::create(overlap_cfg);
        LayerShape shape = LayerShape::conv("conv", 8, 64, 16, 16, 3);
        const HitMix mix =
            HitMix::fromFractions(shape.vectorsPerChannel(), 0.4);

        const LayerCycles s = serial->mercuryLayerCycles(shape, 1, mix, 20);
        const LayerCycles o =
            overlapped->mercuryLayerCycles(shape, 1, mix, 20);
        // Compute, baseline, and cache overhead are untouched; the
        // exposed signature cost is exactly the excess over compute.
        EXPECT_EQ(o.computation, s.computation);
        EXPECT_EQ(o.baseline, s.baseline);
        EXPECT_EQ(o.cacheOverhead, s.cacheOverhead);
        EXPECT_EQ(o.signature,
                  s.signature - std::min(s.signature, s.computation));
        EXPECT_LE(o.mercuryTotal(), s.mercuryTotal());
        EXPECT_GT(s.signature, 0u); // something was actually hidden
    }
}

TEST(OverlapAccounting, SavedSignaturesStayFree)
{
    auto cfg = defaultConfig();
    cfg.overlapDetection = OverlapMode::On;
    RowStationaryDataflow df(cfg);
    LayerShape shape = smallConv();
    const HitMix mix =
        HitMix::fromFractions(shape.vectorsPerChannel(), 0.4);
    const LayerCycles c =
        df.mercuryLayerCycles(shape, 1, mix, 20, /*saved=*/true);
    EXPECT_EQ(c.signature, 0u);
}

TEST(BackwardReplay, WithoutKnobBackwardCostsTheBaseline)
{
    for (const DataflowKind kind :
         {DataflowKind::RowStationary, DataflowKind::WeightStationary,
          DataflowKind::InputStationary}) {
        auto cfg = defaultConfig(kind);
        ASSERT_FALSE(cfg.backwardReuse);
        const auto df = Dataflow::create(cfg);
        LayerShape shape = LayerShape::conv("conv", 8, 64, 16, 16, 3);
        const HitMix mix =
            HitMix::fromFractions(shape.vectorsPerChannel(), 0.86);
        const LayerCycles c = df->backwardLayerCycles(shape, 1, mix, 20);
        EXPECT_EQ(c.mercuryTotal(), c.baseline);
        EXPECT_EQ(c.signature, 0u);
        EXPECT_EQ(c.cacheOverhead, 0u);
        EXPECT_DOUBLE_EQ(c.speedup(), 1.0);
    }
}

TEST(BackwardReplay, ReplayChargesTableReadsNotRegeneration)
{
    auto cfg = defaultConfig();
    cfg.backwardReuse = true;
    const auto df = Dataflow::create(cfg);
    LayerShape shape = LayerShape::conv("conv", 8, 64, 16, 16, 3);
    const HitMix mix =
        HitMix::fromFractions(shape.vectorsPerChannel(), 0.4);

    const LayerCycles fwd = df->mercuryLayerCycles(shape, 1, mix, 20);
    const LayerCycles bwd = df->backwardLayerCycles(shape, 1, mix, 20);
    // Same compute shrinkage as the forward accounting...
    EXPECT_EQ(bwd.computation, fwd.computation);
    EXPECT_EQ(bwd.baseline, fwd.baseline);
    // ...but no insert serialization (no MAU inserts on replay) and a
    // replay-only signature charge: one table read per hashed vector
    // across the PEs, far below regeneration.
    EXPECT_EQ(bwd.cacheOverhead, 0u);
    const uint64_t vectors =
        static_cast<uint64_t>(shape.inChannels) *
        static_cast<uint64_t>(shape.vectorsPerChannel());
    EXPECT_EQ(bwd.signature,
              signatureReplayCycles(
                  vectors, static_cast<uint64_t>(cfg.numPEs)));
    EXPECT_LT(bwd.signature, fwd.signature);
}

TEST(BackwardReplay, SpeedupExceedsOneAndAHalfAtPaperHitRate)
{
    // The acceptance operating point: VGG13-sized conv at the
    // measured 86% hit rate must gain > 1.5x on the input-gradient
    // pass once signatures are replayed.
    auto cfg = defaultConfig();
    cfg.backwardReuse = true;
    const auto df = Dataflow::create(cfg);
    LayerShape shape =
        LayerShape::conv("vgg13-conv", 64, 64, 32, 32, 3);
    const HitMix mix =
        HitMix::fromFractions(shape.vectorsPerChannel(), 0.86);
    const LayerCycles c = df->backwardLayerCycles(shape, 1, mix, 16);
    EXPECT_GT(c.speedup(), 1.5);
}

TEST(BackwardReplay, OverlapHidesTheReplayStream)
{
    auto cfg = defaultConfig();
    cfg.backwardReuse = true;
    cfg.overlapDetection = OverlapMode::On;
    const auto df = Dataflow::create(cfg);
    LayerShape shape = LayerShape::conv("conv", 8, 64, 16, 16, 3);
    const HitMix mix =
        HitMix::fromFractions(shape.vectorsPerChannel(), 0.4);
    const LayerCycles c = df->backwardLayerCycles(shape, 1, mix, 20);
    // The table-read stream is tiny next to the remaining gradient
    // compute, so Fig. 8-style overlap hides it completely.
    EXPECT_EQ(c.signature, 0u);
}

TEST(BackwardReplay, PoolLayersNeverReplay)
{
    auto cfg = defaultConfig();
    cfg.backwardReuse = true;
    const auto df = Dataflow::create(cfg);
    LayerShape shape = LayerShape::pool("pool", 8, 16, 16, 2, 2);
    const HitMix mix;
    const LayerCycles c = df->backwardLayerCycles(shape, 1, mix, 20);
    EXPECT_EQ(c.mercuryTotal(), c.baseline);
    EXPECT_EQ(c.signature, 0u);
}

TEST(WeightGradAccounting, WithoutKnobDwCostsTheBaseline)
{
    for (const DataflowKind kind :
         {DataflowKind::RowStationary, DataflowKind::WeightStationary,
          DataflowKind::InputStationary}) {
        auto cfg = defaultConfig(kind);
        ASSERT_FALSE(cfg.weightGradReuse);
        const auto df = Dataflow::create(cfg);
        LayerShape shape = LayerShape::conv("conv", 8, 64, 16, 16, 3);
        const HitMix mix =
            HitMix::fromFractions(shape.vectorsPerChannel(), 0.86);
        const LayerCycles c =
            df->weightGradLayerCycles(shape, 1, mix, 20);
        EXPECT_EQ(c.mercuryTotal(), c.baseline);
        EXPECT_EQ(c.signature, 0u);
        EXPECT_EQ(c.cacheOverhead, 0u);
        EXPECT_DOUBLE_EQ(c.speedup(), 1.0);
    }
}

TEST(WeightGradAccounting, ReplayChargesGroupAccumulatesAndTableReads)
{
    auto cfg = defaultConfig();
    cfg.weightGradReuse = true;
    const auto df = Dataflow::create(cfg);
    LayerShape shape = LayerShape::conv("conv", 8, 64, 16, 16, 3);
    const HitMix mix =
        HitMix::fromFractions(shape.vectorsPerChannel(), 0.4);

    const LayerCycles fwd = df->mercuryLayerCycles(shape, 1, mix, 20,
                                                   /*saved=*/true);
    const LayerCycles dw = df->weightGradLayerCycles(shape, 1, mix, 20);
    EXPECT_EQ(dw.baseline, fwd.baseline);
    // The owner-only outer products follow the forward shrinkage;
    // every HIT row adds one accumulate per filter on top, spread
    // across the PEs.
    const uint64_t vectors =
        static_cast<uint64_t>(shape.inChannels) *
        static_cast<uint64_t>(shape.vectorsPerChannel());
    const uint64_t hits = static_cast<uint64_t>(
        std::llround(mix.hitFraction() * static_cast<double>(vectors)));
    EXPECT_EQ(dw.computation,
              fwd.computation +
                  ceilDiv(hits * static_cast<uint64_t>(
                                     shape.weightVectors()),
                          static_cast<uint64_t>(cfg.numPEs)));
    // No MCACHE inserts, replay-only signature charge.
    EXPECT_EQ(dw.cacheOverhead, 0u);
    EXPECT_EQ(dw.signature,
              signatureReplayCycles(
                  vectors, static_cast<uint64_t>(cfg.numPEs)));
}

TEST(WeightGradAccounting, SpeedupExceedsOneAndAHalfAtPaperHitRate)
{
    // The acceptance operating point: VGG13-sized conv at the
    // measured 86% hit rate must gain > 1.5x on the dW pass once the
    // forward record is replayed by sum-then-multiply.
    auto cfg = defaultConfig();
    cfg.weightGradReuse = true;
    const auto df = Dataflow::create(cfg);
    LayerShape shape =
        LayerShape::conv("vgg13-conv", 64, 64, 32, 32, 3);
    const HitMix mix =
        HitMix::fromFractions(shape.vectorsPerChannel(), 0.86);
    const LayerCycles c = df->weightGradLayerCycles(shape, 1, mix, 16);
    EXPECT_GT(c.speedup(), 1.5);
}

TEST(WeightGradAccounting, OverlapHidesTheReplayStream)
{
    auto cfg = defaultConfig();
    cfg.weightGradReuse = true;
    cfg.overlapDetection = OverlapMode::On;
    const auto df = Dataflow::create(cfg);
    LayerShape shape = LayerShape::conv("conv", 8, 64, 16, 16, 3);
    const HitMix mix =
        HitMix::fromFractions(shape.vectorsPerChannel(), 0.4);
    const LayerCycles c = df->weightGradLayerCycles(shape, 1, mix, 20);
    EXPECT_EQ(c.signature, 0u);
}

TEST(WeightGradAccounting, BackwardGainsTheDwTerm)
{
    // backwardLayerCycles(include_weight_grad=true) is the whole
    // backward half: the input-gradient pass plus the dW pass,
    // component by component.
    auto cfg = defaultConfig();
    cfg.backwardReuse = true;
    cfg.weightGradReuse = true;
    const auto df = Dataflow::create(cfg);
    LayerShape shape = LayerShape::conv("conv", 8, 64, 16, 16, 3);
    const HitMix mix =
        HitMix::fromFractions(shape.vectorsPerChannel(), 0.5);

    const LayerCycles dx = df->backwardLayerCycles(shape, 1, mix, 20);
    const LayerCycles dw = df->weightGradLayerCycles(shape, 1, mix, 20);
    const LayerCycles both =
        df->backwardLayerCycles(shape, 1, mix, 20,
                                /*include_weight_grad=*/true);
    EXPECT_EQ(both.baseline, dx.baseline + dw.baseline);
    EXPECT_EQ(both.computation, dx.computation + dw.computation);
    EXPECT_EQ(both.signature, dx.signature + dw.signature);
    EXPECT_EQ(both.cacheOverhead, dx.cacheOverhead + dw.cacheOverhead);
}

TEST(RecordSpill, EstimatePerRowMatchesSignatureRecordLayout)
{
    const auto df = Dataflow::create(defaultConfig());
    LayerShape shape = LayerShape::conv("conv", 3, 5, 8, 8, 3, 1, 1);
    // Per hashed vector: one 64-bit signature word at 16 bits, a
    // 4-byte entry id, a 1-byte outcome = 13 bytes.
    const uint64_t vectors =
        static_cast<uint64_t>(shape.inChannels) *
        static_cast<uint64_t>(shape.vectorsPerChannel());
    EXPECT_EQ(df->recordSpillBytes(shape, 1, 16), vectors * 13u);
    // 65 bits need a second signature word.
    EXPECT_EQ(df->recordSpillBytes(shape, 1, 65), vectors * 21u);
    // Batches scale linearly; pools record nothing.
    EXPECT_EQ(df->recordSpillBytes(shape, 4, 16),
              4u * vectors * 13u);
    LayerShape pool = LayerShape::pool("pool", 8, 16, 16, 2, 2);
    EXPECT_EQ(df->recordSpillBytes(pool, 1, 16), 0u);
}

TEST(RowStationary, FewFiltersMakeSignaturesUnprofitable)
{
    // With Cout barely above the signature length the overhead can
    // exceed the savings; this is exactly what the adaptive
    // controller's per-layer stoppage is for (§III-D).
    RowStationaryDataflow df(defaultConfig());
    LayerShape shape = LayerShape::conv("conv", 8, 16, 16, 16, 3);
    HitMix mix = HitMix::fromFractions(shape.vectorsPerChannel(), 1.0);
    LayerCycles c = df.mercuryLayerCycles(shape, 1, mix, 20);
    EXPECT_GT(c.signature, c.computation);
}

TEST(RowStationary, CyclesMonotonicInHitFraction)
{
    auto cfg = defaultConfig();
    RowStationaryDataflow df(cfg);
    LayerShape shape = smallConv();
    uint64_t prev = UINT64_MAX;
    for (double h : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        HitMix mix = HitMix::fromFractions(shape.vectorsPerChannel(), h);
        LayerCycles c = df.mercuryLayerCycles(shape, 1, mix, 20);
        EXPECT_LE(c.mercuryTotal(), prev) << "hit fraction " << h;
        prev = c.mercuryTotal();
    }
}

TEST(RowStationary, AsyncNoSlowerThanSync)
{
    LayerShape shape = smallConv();
    HitMix mix = HitMix::fromFractions(shape.vectorsPerChannel(), 0.5);
    auto sync_cfg = defaultConfig();
    sync_cfg.asyncDesign = false;
    auto async_cfg = defaultConfig();
    async_cfg.asyncDesign = true;
    RowStationaryDataflow sync_df(sync_cfg), async_df(async_cfg);
    const auto sync_c = sync_df.mercuryLayerCycles(shape, 1, mix, 20);
    const auto async_c = async_df.mercuryLayerCycles(shape, 1, mix, 20);
    EXPECT_LE(async_c.mercuryTotal(), sync_c.mercuryTotal());
}

TEST(RowStationary, SingleFilterSlotDegeneratesToSync)
{
    LayerShape shape = smallConv();
    HitMix mix = HitMix::fromFractions(shape.vectorsPerChannel(), 0.5);
    auto cfg = defaultConfig();
    cfg.asyncDesign = true;
    cfg.filterBufferSlots = 1;
    auto sync_cfg = defaultConfig();
    sync_cfg.asyncDesign = false;
    RowStationaryDataflow df(cfg), sync_df(sync_cfg);
    EXPECT_EQ(df.mercuryLayerCycles(shape, 1, mix, 20).mercuryTotal(),
              sync_df.mercuryLayerCycles(shape, 1, mix, 20).mercuryTotal());
}

TEST(RowStationary, SavedSignaturesAreFree)
{
    RowStationaryDataflow df(defaultConfig());
    LayerShape shape = smallConv();
    HitMix mix = HitMix::fromFractions(shape.vectorsPerChannel(), 0.4);
    LayerCycles with_sig = df.mercuryLayerCycles(shape, 1, mix, 20, false);
    LayerCycles saved = df.mercuryLayerCycles(shape, 1, mix, 20, true);
    EXPECT_GT(with_sig.signature, 0u);
    EXPECT_EQ(saved.signature, 0u);
    EXPECT_EQ(with_sig.computation, saved.computation);
}

TEST(RowStationary, SignatureCostScalesWithBits)
{
    RowStationaryDataflow df(defaultConfig());
    LayerShape shape = smallConv();
    HitMix mix = HitMix::fromFractions(shape.vectorsPerChannel(), 0.4);
    LayerCycles s20 = df.mercuryLayerCycles(shape, 1, mix, 20);
    LayerCycles s40 = df.mercuryLayerCycles(shape, 1, mix, 40);
    EXPECT_NEAR(static_cast<double>(s40.signature) /
                    static_cast<double>(s20.signature),
                2.0, 0.01);
}

TEST(RowStationary, BatchScalesLinearly)
{
    RowStationaryDataflow df(defaultConfig());
    LayerShape shape = smallConv();
    HitMix mix = HitMix::fromFractions(shape.vectorsPerChannel(), 0.3);
    LayerCycles b1 = df.mercuryLayerCycles(shape, 1, mix, 20);
    LayerCycles b4 = df.mercuryLayerCycles(shape, 4, mix, 20);
    EXPECT_EQ(b4.mercuryTotal(), 4 * b1.mercuryTotal());
    EXPECT_EQ(b4.baseline, 4 * b1.baseline);
}

// ---------------------------------------------------------------------
// Grouped / depthwise convolution accounting (the MobileNet-style
// workload): a channel pass of a grouped conv meets only its group's
// outChannels / groups filters, so baseline and MERCURY compute scale
// down by the group count while the signature charge — one hash per
// extracted vector, one vector per (image, channel) pass regardless
// of grouping — stays put.
// ---------------------------------------------------------------------

TEST(GroupedConv, BaselineScalesDownByGroupCount)
{
    RowStationaryDataflow df(defaultConfig());
    // 16 -> 16 channels of 16x16, 3x3: dense vs 4 groups vs depthwise.
    const LayerShape dense =
        LayerShape::conv("dense", 16, 16, 16, 16, 3, 1, 0, 1);
    const LayerShape grouped =
        LayerShape::conv("grouped", 16, 16, 16, 16, 3, 1, 0, 4);
    const LayerShape depthwise =
        LayerShape::conv("dw", 16, 16, 16, 16, 3, 1, 0, 16);
    EXPECT_EQ(dense.weightVectors(), 16);
    EXPECT_EQ(grouped.weightVectors(), 4);
    EXPECT_EQ(depthwise.weightVectors(), 1);
    EXPECT_EQ(dense.macCount(1), 4 * grouped.macCount(1));
    EXPECT_EQ(dense.macCount(1), 16 * depthwise.macCount(1));
    EXPECT_EQ(df.baselineLayerCycles(dense, 2),
              4 * df.baselineLayerCycles(grouped, 2));
    EXPECT_EQ(df.baselineLayerCycles(dense, 2),
              16 * df.baselineLayerCycles(depthwise, 2));
}

TEST(GroupedConv, SignatureChargeIndependentOfGrouping)
{
    // The detection pass hashes one vector per output position per
    // (image, channel) pass whatever the grouping, so the signature
    // cycles of dense and depthwise variants of one geometry match.
    RowStationaryDataflow df(defaultConfig());
    const LayerShape dense =
        LayerShape::conv("dense", 16, 16, 16, 16, 3, 1, 0, 1);
    const LayerShape depthwise =
        LayerShape::conv("dw", 16, 16, 16, 16, 3, 1, 0, 16);
    const HitMix mix =
        HitMix::fromFractions(dense.vectorsPerChannel(), 0.5);
    const LayerCycles cd = df.mercuryLayerCycles(dense, 1, mix, 20);
    const LayerCycles cw = df.mercuryLayerCycles(depthwise, 1, mix, 20);
    EXPECT_EQ(cd.signature, cw.signature);
    EXPECT_GT(cd.computation, cw.computation);
}

TEST(GroupedConv, DepthwiseReuseStillPaysAtHighHitRates)
{
    // One filter per pass makes detection overhead proportionally
    // large (the few-filters effect, Fig. 12), but a replayed record
    // (saved signatures) keeps the dW/dX passes profitable.
    RowStationaryDataflow df(defaultConfig());
    const LayerShape depthwise =
        LayerShape::conv("dw", 32, 32, 16, 16, 3, 1, 1, 32);
    const HitMix mix =
        HitMix::fromFractions(depthwise.vectorsPerChannel(), 0.85);
    const LayerCycles saved =
        df.mercuryLayerCycles(depthwise, 1, mix, 20, true);
    EXPECT_LT(saved.mercuryTotal(), saved.baseline);
}

TEST(GroupedConv, BackwardAndWeightGradHonorGroups)
{
    AcceleratorConfig cfg = defaultConfig();
    cfg.backwardReuse = true;
    cfg.weightGradReuse = true;
    RowStationaryDataflow df(cfg);
    const LayerShape depthwise =
        LayerShape::conv("dw", 16, 16, 16, 16, 3, 1, 1, 16);
    const HitMix mix =
        HitMix::fromFractions(depthwise.vectorsPerChannel(), 0.6);
    const LayerCycles dx =
        df.backwardLayerCycles(depthwise, 1, mix, 20);
    const LayerCycles dw =
        df.weightGradLayerCycles(depthwise, 1, mix, 20);
    // Replayed passes of the depthwise layer stay below its baseline.
    EXPECT_GT(dx.baseline, 0u);
    EXPECT_LT(dx.mercuryTotal(), dx.baseline);
    EXPECT_LT(dw.mercuryTotal(), dw.baseline);
}

TEST(GroupedConv, PointwiseGroupedMapsToPerGroupFc)
{
    // 1x1 grouped convs (ResNeXt-style) map to the FC formulation
    // with per-group widths: every spatial position of every group is
    // one Cin/groups-dimensional vector meeting Cout/groups columns.
    RowStationaryDataflow df(defaultConfig());
    const LayerShape pw =
        LayerShape::conv("pw", 16, 16, 8, 8, 1, 1, 0, 4);
    const LayerShape fc_equiv = LayerShape::fc("pw.fc", 4, 4);
    EXPECT_EQ(df.baselineLayerCycles(pw, 1),
              df.baselineLayerCycles(fc_equiv,
                                     pw.vectorsPerChannel() * 4));
}

TEST(FullyConnected, BaselineSpreadsOverPEs)
{
    auto df = Dataflow::create(defaultConfig());
    LayerShape fc = LayerShape::fc("fc", 256, 128);
    // One input vector per image; batch 168 saturates all PEs.
    const uint64_t cycles = df->baselineLayerCycles(fc, 168);
    EXPECT_EQ(cycles, 128ull * broadcastDotCycles(256));
}

TEST(FullyConnected, HitsReduceCycles)
{
    auto df = Dataflow::create(defaultConfig());
    LayerShape fc = LayerShape::fc("fc", 256, 128);
    HitMix none = HitMix::fromFractions(64, 0.0);
    HitMix half = HitMix::fromFractions(64, 0.5);
    const auto c0 = df->mercuryLayerCycles(fc, 64, none, 20);
    const auto c1 = df->mercuryLayerCycles(fc, 64, half, 20);
    EXPECT_LT(c1.mercuryTotal(), c0.mercuryTotal());
    EXPECT_GT(c1.speedup(), 1.2);
}

TEST(Attention, TreatedAsFcLike)
{
    auto df = Dataflow::create(defaultConfig());
    LayerShape att = LayerShape::attention("att", 64, 128);
    HitMix mix = HitMix::fromFractions(64, 0.5);
    const auto c = df->mercuryLayerCycles(att, 1, mix, 20);
    EXPECT_GT(c.baseline, 0u);
    EXPECT_GT(c.speedup(), 1.0);
}

TEST(Pool, MercuryDoesNotChangePooling)
{
    auto df = Dataflow::create(defaultConfig());
    LayerShape pool = LayerShape::pool("pool", 16, 16, 16, 2, 2);
    HitMix mix = HitMix::fromFractions(pool.vectorsPerChannel(), 0.9);
    const auto c = df->mercuryLayerCycles(pool, 1, mix, 20);
    EXPECT_EQ(c.mercuryTotal(), c.baseline);
    EXPECT_EQ(c.signature, 0u);
}

class DataflowInvariantTest
    : public ::testing::TestWithParam<std::tuple<DataflowKind, int, double>>
{
};

TEST_P(DataflowInvariantTest, MercuryNeverSlowerWithMoreHits)
{
    const auto [kind, kernel, base_hit] = GetParam();
    auto cfg = defaultConfig(kind);
    auto df = Dataflow::create(cfg);
    LayerShape shape =
        LayerShape::conv("c", 4, 32, 20, 20, kernel, 1, kernel / 2);
    HitMix lo = HitMix::fromFractions(shape.vectorsPerChannel(), base_hit);
    HitMix hi =
        HitMix::fromFractions(shape.vectorsPerChannel(),
                              std::min(1.0, base_hit + 0.2));
    const auto c_lo = df->mercuryLayerCycles(shape, 2, lo, 24);
    const auto c_hi = df->mercuryLayerCycles(shape, 2, hi, 24);
    EXPECT_LE(c_hi.mercuryTotal(), c_lo.mercuryTotal());
}

TEST_P(DataflowInvariantTest, BaselineConsistentAcrossCalls)
{
    const auto [kind, kernel, base_hit] = GetParam();
    auto df = Dataflow::create(defaultConfig(kind));
    LayerShape shape =
        LayerShape::conv("c", 4, 32, 20, 20, kernel, 1, kernel / 2);
    HitMix mix =
        HitMix::fromFractions(shape.vectorsPerChannel(), base_hit);
    const auto c = df->mercuryLayerCycles(shape, 2, mix, 24);
    EXPECT_EQ(c.baseline, df->baselineLayerCycles(shape, 2));
}

TEST_P(DataflowInvariantTest, HighSimilarityYieldsSpeedup)
{
    const auto [kind, kernel, base_hit] = GetParam();
    (void)base_hit;
    auto df = Dataflow::create(defaultConfig(kind));
    LayerShape shape =
        LayerShape::conv("c", 16, 256, 28, 28, kernel, 1, kernel / 2);
    HitMix mix = HitMix::fromFractions(shape.vectorsPerChannel(), 0.7);
    const auto c = df->mercuryLayerCycles(shape, 2, mix, 20);
    EXPECT_GT(c.speedup(), 1.0)
        << dataflowName(kind) << " kernel " << kernel;
}

INSTANTIATE_TEST_SUITE_P(
    KindKernelHit, DataflowInvariantTest,
    ::testing::Combine(
        ::testing::Values(DataflowKind::RowStationary,
                          DataflowKind::WeightStationary,
                          DataflowKind::InputStationary),
        ::testing::Values(1, 3, 5),
        ::testing::Values(0.0, 0.3, 0.6)));

} // namespace
} // namespace mercury
