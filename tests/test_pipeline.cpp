/**
 * @file
 * Tests for the batched detection pipeline (src/pipeline): the
 * ShardedMCache must be indistinguishable from a monolithic MCache,
 * the DetectionPipeline must be bit-identical to the legacy
 * SimilarityDetector for every block size / shard count / thread
 * count, reruns must be deterministic, the reuse engines must produce
 * identical outputs through a shared multi-threaded frontend, and the
 * fixed strided sampling must cover the population tail.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/attention_engine.hpp"
#include "core/conv_reuse_engine.hpp"
#include "core/fc_engine.hpp"
#include "core/similarity_detector.hpp"
#include "nn/mercury_hooks.hpp"
#include "pipeline/detection_frontend.hpp"
#include "pipeline/sharded_mcache.hpp"
#include "util/rng.hpp"
#include "util/sampling.hpp"
#include "util/spsc_queue.hpp"
#include "util/thread_pool.hpp"
#include "workloads/synthetic.hpp"

namespace mercury {
namespace {

constexpr int kSets = 64;
constexpr int kWays = 16;
constexpr int kMaxBits = 32;
constexpr int kBits = 20;
constexpr uint64_t kSeed = 12345;

/** The scalar reference path: RPQ + monolithic MCACHE, row by row. */
DetectionResult
legacyDetect(const Tensor &rows)
{
    MCache cache(kSets, kWays, 1);
    RPQEngine rpq(rows.dim(1), kMaxBits, kSeed);
    SimilarityDetector det(rpq, cache, kBits);
    return det.detect(rows);
}

void
expectIdenticalResults(const DetectionResult &a, const DetectionResult &b)
{
    ASSERT_EQ(a.hitmap.size(), b.hitmap.size());
    for (int64_t i = 0; i < a.hitmap.size(); ++i) {
        ASSERT_EQ(a.hitmap.outcome(i), b.hitmap.outcome(i))
            << "outcome diverges at row " << i;
        ASSERT_EQ(a.hitmap.entryId(i), b.hitmap.entryId(i))
            << "entry id diverges at row " << i;
    }
    ASSERT_EQ(a.table.size(), b.table.size());
    for (int64_t i = 0; i < a.table.size(); ++i) {
        ASSERT_TRUE(a.table.signature(i) == b.table.signature(i))
            << "signature diverges at row " << i;
        ASSERT_EQ(a.table.entryId(i), b.table.entryId(i));
    }
    const HitMix ma = a.mix(), mb = b.mix();
    EXPECT_EQ(ma.vectors, mb.vectors);
    EXPECT_EQ(ma.hit, mb.hit);
    EXPECT_EQ(ma.mau, mb.mau);
    EXPECT_EQ(ma.mnu, mb.mnu);
}

TEST(Pipeline, BitIdenticalToLegacyAcrossAllKnobs)
{
    Tensor rows = prototypeVectors(512, 24, 64, 0.01f, 77, 1.2);
    const DetectionResult ref = legacyDetect(rows);
    for (int64_t block : {int64_t{1}, int64_t{7}, int64_t{64},
                          int64_t{4096}}) {
        for (int shards : {1, 3, 4, 64}) {
            for (int threads : {1, 2, 4}) {
                PipelineConfig pipe;
                pipe.blockRows = block;
                pipe.shards = shards;
                pipe.threads = threads;
                DetectionFrontend fe(kSets, kWays, 1, kMaxBits, kSeed,
                                     pipe);
                SCOPED_TRACE("block=" + std::to_string(block) +
                             " shards=" + std::to_string(shards) +
                             " threads=" + std::to_string(threads));
                expectIdenticalResults(fe.detect(rows, kBits), ref);
            }
        }
    }
}

TEST(Pipeline, DeterministicReruns)
{
    Tensor rows = prototypeVectors(300, 16, 40, 0.02f, 5, 1.5);
    PipelineConfig pipe;
    pipe.blockRows = 32;
    pipe.shards = 8;
    pipe.threads = 4;
    DetectionFrontend fe(kSets, kWays, 1, kMaxBits, kSeed, pipe);
    const DetectionResult first = fe.detect(rows, kBits);
    // Same frontend again (cache cleared per pass) and a fresh
    // frontend with the same seed: all three must agree exactly.
    expectIdenticalResults(fe.detect(rows, kBits), first);
    DetectionFrontend fresh(kSets, kWays, 1, kMaxBits, kSeed, pipe);
    expectIdenticalResults(fresh.detect(rows, kBits), first);
}

TEST(Pipeline, BlockedProjectionMatchesScalar)
{
    Rng rng(9);
    Tensor rows({37, 48});
    rows.fillNormal(rng);
    RPQEngine rpq(48, kMaxBits, 21);
    std::vector<Signature> blocked(37);
    rpq.signatureBlock(rows, 0, 37, kBits, blocked.data());
    for (int64_t r = 0; r < 37; ++r)
        ASSERT_TRUE(blocked[static_cast<size_t>(r)] ==
                    rpq.signatureOfRow(rows, r, kBits))
            << "row " << r;
    // Projections themselves must also match bit for bit.
    std::vector<float> proj(static_cast<size_t>(5) * kBits);
    rpq.projectBlock(rows, 8, 13, kBits, proj.data());
    for (int64_t r = 8; r < 13; ++r)
        for (int n = 0; n < kBits; ++n)
            ASSERT_EQ(proj[static_cast<size_t>((r - 8) * kBits + n)],
                      rpq.project(rows.data() + r * 48, n));
}

TEST(ShardedMCache, MatchesMonolithicCache)
{
    MCache mono(37, 4, 2); // deliberately not a power of two
    ShardedMCache sharded(37, 4, 2, 5);
    EXPECT_EQ(sharded.entries(), mono.entries());
    EXPECT_EQ(sharded.shardCount(), 5);

    Rng rng(31);
    RPQEngine rpq(12, kMaxBits, 3);
    Tensor rows({400, 12});
    rows.fillNormal(rng);
    for (int64_t i = 0; i < rows.dim(0); ++i) {
        const Signature sig = rpq.signatureOfRow(rows, i, 24);
        const McacheResult a = mono.lookupOrInsert(sig);
        const McacheResult b = sharded.lookupOrInsert(sig);
        ASSERT_EQ(a.outcome, b.outcome) << "row " << i;
        ASSERT_EQ(a.entryId, b.entryId) << "row " << i;
    }
    EXPECT_EQ(sharded.maxInsertBacklog(), mono.maxInsertBacklog());
    const HitMix mix = sharded.lookupMix();
    EXPECT_TRUE(mix.consistent());
    EXPECT_EQ(mix.vectors, 400);
}

TEST(ShardedMCache, DataPlaneUsesGlobalEntryIds)
{
    ShardedMCache sharded(16, 2, 3, 4);
    RPQEngine rpq(8, kMaxBits, 4);
    Rng rng(8);
    Tensor rows({40, 8});
    rows.fillNormal(rng);
    for (int64_t i = 0; i < rows.dim(0); ++i) {
        const Signature sig = rpq.signatureOfRow(rows, i, 24);
        const McacheResult r = sharded.lookupOrInsert(sig);
        if (r.outcome != McacheOutcome::Mau)
            continue;
        EXPECT_FALSE(sharded.dataValid(r.entryId, 1));
        sharded.writeData(r.entryId, 1, static_cast<float>(i));
        EXPECT_TRUE(sharded.dataValid(r.entryId, 1));
        EXPECT_EQ(sharded.readData(r.entryId, 1), static_cast<float>(i));
    }
    sharded.invalidateAllData();
    for (int64_t id = 0; id < sharded.entries(); ++id)
        EXPECT_FALSE(sharded.dataValid(id, 1));
}

TEST(ShardedMCache, ShardCountClampedToSets)
{
    ShardedMCache sharded(4, 2, 1, 100);
    EXPECT_EQ(sharded.shardCount(), 4);
    EXPECT_EQ(sharded.entries(), 8);
}

TEST(ShardedMCache, FrontendEngagesLocksOnlyForOverlappedPasses)
{
    Tensor rows = prototypeVectors(64, 8, 8, 0.01f, 7);
    // Shard locks engage only when filter tasks can race the data
    // plane — i.e. streaming/overlapped passes on a pool. Inline and
    // batch-on-a-pool passes stay lock-free (stage 2 runs one prober
    // per shard, and the filter loops that follow are single-
    // threaded). Results are identical either way (asserted across
    // the knob grid elsewhere).
    PipelineConfig inline_pipe;
    inline_pipe.threads = 1;
    DetectionFrontend inline_fe(kSets, kWays, 1, kMaxBits, kSeed,
                                inline_pipe);
    EXPECT_TRUE(inline_fe.cache().concurrent()); // construction default
    inline_fe.detect(rows, kBits);
    EXPECT_FALSE(inline_fe.cache().concurrent());

    PipelineConfig pooled_pipe;
    pooled_pipe.threads = 3;
    DetectionFrontend pooled_fe(kSets, kWays, 1, kMaxBits, kSeed,
                                pooled_pipe);
    pooled_fe.detect(rows, kBits);
    EXPECT_FALSE(pooled_fe.cache().concurrent()); // batch: lock-free

    pooled_fe.detectStream(rows, kBits, {});
    EXPECT_TRUE(pooled_fe.cache().concurrent()); // streaming: locked

    PipelineConfig overlap_pipe = pooled_pipe;
    overlap_pipe.overlap = OverlapMode::On;
    DetectionFrontend overlap_fe(kSets, kWays, 1, kMaxBits, kSeed,
                                 overlap_pipe);
    overlap_fe.detect(rows, kBits);
    EXPECT_TRUE(overlap_fe.cache().concurrent()); // overlap: locked
}

TEST(Pipeline, ConvEngineIdenticalThroughSharedThreadedFrontend)
{
    Dataset ds = makeImageDataset(2, 2, 3, 12, 13, 0.03f);
    Rng rng(14);
    Tensor w({4, 3, 3, 3});
    w.fillNormal(rng);
    ConvSpec spec;
    spec.inChannels = 3;
    spec.outChannels = 4;
    spec.kernelH = spec.kernelW = 3;
    spec.pad = 1;

    MCache legacy_cache(kSets, kWays, 2);
    ConvReuseEngine legacy(legacy_cache, 16, kSeed);
    ReuseStats legacy_stats;
    const Tensor legacy_out =
        legacy.forward(ds.inputs, w, Tensor(), spec, legacy_stats);

    PipelineConfig pipe;
    pipe.blockRows = 16;
    pipe.shards = 8;
    pipe.threads = 4;
    DetectionFrontend fe(kSets, kWays, 2, 16, kSeed, pipe);
    ConvReuseEngine piped(fe, 16);
    ReuseStats piped_stats;
    const Tensor piped_out =
        piped.forward(ds.inputs, w, Tensor(), spec, piped_stats);

    EXPECT_TRUE(piped_out == legacy_out);
    EXPECT_EQ(piped_stats.mix.hit, legacy_stats.mix.hit);
    EXPECT_EQ(piped_stats.mix.mau, legacy_stats.mix.mau);
    EXPECT_EQ(piped_stats.mix.mnu, legacy_stats.mix.mnu);
    EXPECT_EQ(piped_stats.macsSkipped, legacy_stats.macsSkipped);
}

TEST(Pipeline, FcEngineIdenticalThroughSharedThreadedFrontend)
{
    Tensor input = prototypeVectors(96, 20, 12, 0.005f, 15);
    Rng rng(16);
    Tensor w({20, 10});
    w.fillNormal(rng);

    MCache legacy_cache(kSets, kWays, 1);
    FcEngine legacy(legacy_cache, 24, kSeed);
    ReuseStats legacy_stats;
    std::vector<int64_t> legacy_owners;
    const Tensor legacy_out =
        legacy.forward(input, w, legacy_stats, &legacy_owners);

    PipelineConfig pipe;
    pipe.blockRows = 8;
    pipe.shards = 4;
    pipe.threads = 3;
    DetectionFrontend fe(kSets, kWays, 1, 24, kSeed, pipe);
    FcEngine piped(fe, 24);
    ReuseStats piped_stats;
    std::vector<int64_t> piped_owners;
    const Tensor piped_out =
        piped.forward(input, w, piped_stats, &piped_owners);

    EXPECT_TRUE(piped_out == legacy_out);
    EXPECT_EQ(piped_owners, legacy_owners);
    EXPECT_EQ(piped_stats.macsSkipped, legacy_stats.macsSkipped);
}

TEST(Sampling, StridedIndicesCoverTheWholeRange)
{
    // 1000 rows sampled 300 times: the truncating stride (3) never
    // got past row 897; round-to-nearest must reach the tail.
    int64_t prev = -1;
    for (int64_t i = 0; i < 300; ++i) {
        const int64_t idx = stridedSampleIndex(i, 1000, 300);
        EXPECT_GT(idx, prev); // strictly increasing
        EXPECT_LT(idx, 1000);
        prev = idx;
    }
    EXPECT_GE(prev, 990); // last pick lands in the tail
    // Exact divisors reproduce the legacy indices.
    for (int64_t i = 0; i < 512; ++i)
        EXPECT_EQ(stridedSampleIndex(i, 4096, 512), i * 8);
}

TEST(Sampling, DetectSampledSeesTheTail)
{
    // Head: one hot prototype; tail: 100 i.i.d. random rows. The old
    // truncating stride sampled the head only and extrapolated ~all
    // hits; covering the tail recovers the real unique count.
    Rng rng(17);
    Tensor rows({1000, 16});
    std::vector<float> proto(16);
    for (auto &v : proto)
        v = static_cast<float>(rng.normal());
    for (int64_t i = 0; i < 900; ++i)
        for (int64_t j = 0; j < 16; ++j)
            rows.at2(i, j) = proto[static_cast<size_t>(j)];
    for (int64_t i = 900; i < 1000; ++i)
        for (int64_t j = 0; j < 16; ++j)
            rows.at2(i, j) = static_cast<float>(rng.normal());

    RPQEngine rpq(16, kMaxBits, 18);
    MCache full_cache(kSets, kWays, 1), samp_cache(kSets, kWays, 1);
    SimilarityDetector full(rpq, full_cache, 24);
    SimilarityDetector samp(rpq, samp_cache, 24);
    const HitMix f = full.detect(rows).mix();
    const HitMix s = samp.detectSampled(rows, 300);
    EXPECT_EQ(s.vectors, 1000);
    // ~101 uniques in the full pass; the truncating stride reported
    // ~3. Require the sampled estimate to land near the truth.
    EXPECT_GT(f.mau, 90);
    EXPECT_NEAR(static_cast<double>(s.mau), static_cast<double>(f.mau),
                0.25 * static_cast<double>(f.mau));

    // The pipeline frontend shares the same sampling path.
    PipelineConfig pipe;
    pipe.threads = 2;
    pipe.shards = 4;
    DetectionFrontend fe(kSets, kWays, 1, kMaxBits, 18, pipe);
    const HitMix p = fe.detectSampled(rows, 24, 300);
    EXPECT_EQ(p.hit, s.hit);
    EXPECT_EQ(p.mau, s.mau);
    EXPECT_EQ(p.mnu, s.mnu);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.workers(), 3);
    std::vector<std::atomic<int>> visits(257);
    for (auto &v : visits)
        v.store(0);
    pool.parallelFor(257, [&](int64_t i) {
        visits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (size_t i = 0; i < visits.size(); ++i)
        ASSERT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, EmptyPoolRunsInline)
{
    ThreadPool pool(0);
    int64_t sum = 0;
    pool.parallelFor(100, [&](int64_t i) { sum += i; });
    EXPECT_EQ(sum, 4950);
    EXPECT_GE(ThreadPool::resolveThreads(0), 1);
    EXPECT_EQ(ThreadPool::resolveThreads(7), 7);
}

TEST(ThreadPool, NegativeThreadKnobDies)
{
    EXPECT_DEATH(ThreadPool::resolveThreads(-1), ">= 0");
}

TEST(Pipeline, MercuryContextCachesFrontendsAndMatchesLegacy)
{
    Tensor input = prototypeVectors(64, 12, 8, 0.005f, 19);
    Rng rng(20);
    Tensor w({12, 6});
    w.fillNormal(rng);

    MercuryContext legacy_ctx(16);
    FcEngine legacy(legacy_ctx.cache(), 16, legacy_ctx.layerSeed(3));
    ReuseStats legacy_stats;
    const Tensor legacy_out = legacy.forward(input, w, legacy_stats);

    MercuryContext ctx(16);
    PipelineConfig pipe;
    pipe.blockRows = 16;
    pipe.shards = 4;
    pipe.threads = 3;
    ctx.setPipeline(pipe);
    DetectionFrontend &fe = ctx.frontendFor(3);
    EXPECT_EQ(&fe, &ctx.frontendFor(3)); // cached across passes
    FcEngine piped(fe, 16);
    ReuseStats piped_stats;
    const Tensor piped_out = piped.forward(input, w, piped_stats);

    EXPECT_TRUE(piped_out == legacy_out);
    EXPECT_EQ(piped_stats.mix.hit, legacy_stats.mix.hit);
    EXPECT_EQ(piped_stats.mix.mau, legacy_stats.mix.mau);
}

TEST(Streaming, BlocksArriveInOrderAndResultsMatchBatchPath)
{
    Tensor rows = prototypeVectors(500, 24, 64, 0.01f, 77, 1.2);
    PipelineConfig pipe;
    pipe.blockRows = 48; // 500 rows -> 11 blocks, last one ragged
    pipe.shards = 8;
    pipe.threads = 4;
    DetectionFrontend fe(kSets, kWays, 1, kMaxBits, kSeed, pipe);

    std::vector<int64_t> order;
    int64_t covered = 0;
    const DetectionResult streamed = fe.detectStream(
        rows, kBits, [&](const DetectionBlock &blk) {
            order.push_back(blk.index);
            // Hand-off invariants: ascending, contiguous, probed.
            EXPECT_EQ(blk.row0, blk.index * pipe.blockRows);
            EXPECT_EQ(blk.row1,
                      std::min<int64_t>(rows.dim(0),
                                        blk.row0 + pipe.blockRows));
            EXPECT_EQ(blk.row0, covered);
            covered = blk.row1;
            for (int64_t r = 0; r < blk.rows(); ++r) {
                if (blk.results[r].outcome != McacheOutcome::Mnu) {
                    EXPECT_GE(blk.results[r].entryId, 0);
                }
            }
        });
    ASSERT_EQ(order.size(), 11u);
    for (size_t b = 0; b < order.size(); ++b)
        EXPECT_EQ(order[b], static_cast<int64_t>(b))
            << "hand-off out of order";
    EXPECT_EQ(covered, rows.dim(0));

    // The streamed pass must be bit-identical to the batch pipeline
    // and to the legacy scalar path.
    expectIdenticalResults(streamed, fe.detect(rows, kBits));
    expectIdenticalResults(streamed, legacyDetect(rows));
}

TEST(Streaming, InlineFallbackStreamsWithoutAPool)
{
    Tensor rows = prototypeVectors(130, 16, 20, 0.01f, 3, 1.0);
    PipelineConfig pipe;
    pipe.blockRows = 32;
    pipe.threads = 1; // no pool: hash, probe, deliver inline per block
    DetectionFrontend fe(kSets, kWays, 1, kMaxBits, kSeed, pipe);
    int64_t blocks = 0;
    const DetectionResult streamed = fe.detectStream(
        rows, kBits, [&](const DetectionBlock &blk) {
            EXPECT_EQ(blk.index, blocks);
            ++blocks;
        });
    EXPECT_EQ(blocks, 5);
    expectIdenticalResults(streamed, legacyDetect(rows));
}

/** Engine outputs with overlap on vs off, all three engine types. */
TEST(Overlap, ConvEngineBitIdenticalToRunThenFilter)
{
    Dataset ds = makeImageDataset(2, 2, 3, 14, 13, 0.03f);
    Rng rng(14);
    Tensor w({6, 3, 3, 3});
    w.fillNormal(rng);
    ConvSpec spec;
    spec.inChannels = 3;
    spec.outChannels = 6; // > versions: exercises the group-0 chains
                          // AND the post-detection parallel groups
    spec.kernelH = spec.kernelW = 3;
    spec.pad = 1;

    PipelineConfig serial_pipe;
    serial_pipe.blockRows = 16;
    serial_pipe.shards = 8;
    serial_pipe.threads = 4;
    DetectionFrontend serial_fe(kSets, kWays, 2, 16, kSeed, serial_pipe);
    ConvReuseEngine serial(serial_fe, 16);
    ReuseStats serial_stats;
    const Tensor serial_out =
        serial.forward(ds.inputs, w, Tensor(), spec, serial_stats);

    PipelineConfig pipe = serial_pipe;
    pipe.overlap = OverlapMode::On;
    DetectionFrontend fe(kSets, kWays, 2, 16, kSeed, pipe);
    ConvReuseEngine overlapped(fe, 16);
    ReuseStats stats;
    const Tensor out =
        overlapped.forward(ds.inputs, w, Tensor(), spec, stats);

    EXPECT_TRUE(out == serial_out);
    EXPECT_EQ(stats.mix.hit, serial_stats.mix.hit);
    EXPECT_EQ(stats.mix.mau, serial_stats.mix.mau);
    EXPECT_EQ(stats.mix.mnu, serial_stats.mix.mnu);
    EXPECT_EQ(stats.macsSkipped, serial_stats.macsSkipped);
    EXPECT_EQ(stats.macsTotal, serial_stats.macsTotal);
}

TEST(Overlap, FcEngineBitIdenticalToRunThenFilter)
{
    Tensor input = prototypeVectors(160, 20, 24, 0.005f, 15);
    Rng rng(16);
    Tensor w({20, 10});
    w.fillNormal(rng);

    MCache legacy_cache(kSets, kWays, 1);
    FcEngine legacy(legacy_cache, 24, kSeed);
    ReuseStats legacy_stats;
    std::vector<int64_t> legacy_owners;
    const Tensor legacy_out =
        legacy.forward(input, w, legacy_stats, &legacy_owners);

    PipelineConfig pipe;
    pipe.blockRows = 16;
    pipe.shards = 4;
    pipe.threads = 3;
    pipe.overlap = OverlapMode::On;
    DetectionFrontend fe(kSets, kWays, 1, 24, kSeed, pipe);
    FcEngine overlapped(fe, 24);
    ReuseStats stats;
    std::vector<int64_t> owners;
    const Tensor out = overlapped.forward(input, w, stats, &owners);

    EXPECT_TRUE(out == legacy_out);
    EXPECT_EQ(owners, legacy_owners);
    EXPECT_EQ(stats.macsSkipped, legacy_stats.macsSkipped);
    EXPECT_EQ(stats.mix.hit, legacy_stats.mix.hit);
}

TEST(Overlap, AttentionEngineBitIdenticalToRunThenFilter)
{
    Tensor x = prototypeVectors(96, 16, 12, 0.004f, 23, 1.1);

    MCache legacy_cache(kSets, kWays, 1);
    AttentionEngine legacy(legacy_cache, 20, kSeed);
    ReuseStats legacy_stats;
    const Tensor legacy_out = legacy.forward(x, legacy_stats);

    PipelineConfig pipe;
    pipe.blockRows = 8;
    pipe.shards = 4;
    pipe.threads = 4;
    pipe.overlap = OverlapMode::On;
    DetectionFrontend fe(kSets, kWays, 1, 20, kSeed, pipe);
    AttentionEngine overlapped(fe, 20);
    ReuseStats stats;
    const Tensor out = overlapped.forward(x, stats);

    EXPECT_TRUE(out == legacy_out);
    EXPECT_EQ(stats.macsSkipped, legacy_stats.macsSkipped);
    EXPECT_EQ(stats.mix.hit, legacy_stats.mix.hit);
    EXPECT_EQ(stats.mix.mau, legacy_stats.mix.mau);
}

TEST(Overlap, KnobLiftsFromAcceleratorConfig)
{
    AcceleratorConfig cfg;
    EXPECT_EQ(PipelineConfig::fromConfig(cfg).overlap, OverlapMode::Off);
    cfg.overlapDetection = OverlapMode::On;
    cfg.pipelineThreads = 4;
    EXPECT_EQ(PipelineConfig::fromConfig(cfg).overlap, OverlapMode::On);

    // overlapEnabled needs both the knob and a pool: threads = 1
    // resolves to inline execution, so overlap falls back to serial.
    PipelineConfig inline_pipe = PipelineConfig::fromConfig(cfg);
    inline_pipe.threads = 1;
    DetectionFrontend inline_fe(kSets, kWays, 1, kMaxBits, kSeed,
                                inline_pipe);
    EXPECT_FALSE(inline_fe.overlapEnabled());
    DetectionFrontend fe(kSets, kWays, 1, kMaxBits, kSeed,
                         PipelineConfig::fromConfig(cfg));
    EXPECT_TRUE(fe.overlapEnabled());
}

/**
 * ShardedMCache HIT-forwarding stress: filter tasks read and write
 * the data plane of every shard while a prober keeps inserting tags
 * into the same shards. Writers own disjoint (entry, version) slots;
 * readers poll until a slot turns valid and must then see exactly the
 * writer's value. Run under TSan in CI, this checks the per-shard
 * locking contract.
 */
TEST(ShardedMCache, ConcurrentHitForwardingWhileFiltersInFlight)
{
    constexpr int kVersions = 4;
    ShardedMCache cache(32, 4, kVersions, 8);
    RPQEngine rpq(16, kMaxBits, 5);
    Rng rng(41);
    Tensor rows({512, 16});
    rows.fillNormal(rng);

    // Phase 1 (single-threaded): insert some tags so entry ids exist.
    std::vector<int64_t> entries;
    for (int64_t i = 0; i < 128; ++i) {
        const McacheResult r =
            cache.lookupOrInsert(rpq.signatureOfRow(rows, i, 24));
        if (r.outcome == McacheOutcome::Mau)
            entries.push_back(r.entryId);
    }
    ASSERT_GE(entries.size(), 16u);

    // Phase 2: concurrent writers + readers + a tag prober.
    ThreadPool pool(3);
    TaskGroup group(&pool);
    std::atomic<bool> mismatch{false};
    for (int ver = 0; ver < kVersions; ++ver) {
        group.run([&, ver] {
            for (const int64_t id : entries)
                cache.writeData(id, ver,
                                static_cast<float>(id * kVersions + ver));
        });
        group.run([&, ver] {
            for (const int64_t id : entries) {
                float got = 0.0f;
                while (!cache.readDataIfValid(id, ver, got))
                    std::this_thread::yield();
                if (got != static_cast<float>(id * kVersions + ver))
                    mismatch.store(true);
            }
        });
    }
    group.run([&] {
        // Later-filter tag traffic into the same shards.
        for (int64_t i = 128; i < 512; ++i)
            cache.lookupOrInsert(rpq.signatureOfRow(rows, i, 24));
    });
    group.wait();
    EXPECT_FALSE(mismatch.load());
    EXPECT_TRUE(cache.lookupMix().consistent());
}

TEST(SpscQueue, DeliversInOrderAcrossThreads)
{
    SpscQueue<int64_t> q;
    constexpr int64_t kItems = 2000;
    std::thread producer([&] {
        for (int64_t i = 0; i < kItems; ++i)
            q.push(i);
        q.close();
    });
    int64_t expected = 0, got = -1;
    while (q.pop(got)) {
        ASSERT_EQ(got, expected);
        ++expected;
    }
    EXPECT_EQ(expected, kItems);
    producer.join();
    // Closed and drained: pop keeps returning false.
    EXPECT_FALSE(q.pop(got));
    EXPECT_FALSE(q.tryPop(got));
}

TEST(SpscQueue, PushAfterCloseDies)
{
    SpscQueue<int> q;
    q.close();
    EXPECT_DEATH(q.push(1), "closed");
}

TEST(Pipeline, ConfigKnobsLiftFromAcceleratorConfig)
{
    AcceleratorConfig cfg;
    cfg.pipelineBlockRows = 128;
    cfg.pipelineShards = 16;
    cfg.pipelineThreads = 0;
    const PipelineConfig pipe = PipelineConfig::fromConfig(cfg);
    EXPECT_EQ(pipe.blockRows, 128);
    EXPECT_EQ(pipe.shards, 16);
    EXPECT_EQ(pipe.threads, 0);

    // A frontend built straight from the accelerator config inherits
    // the MCACHE organization and provisioning.
    DetectionFrontend fe(cfg, 7);
    EXPECT_EQ(fe.entries(), cfg.mcacheEntries());
    EXPECT_EQ(fe.maxBits(), cfg.maxSignatureBits);
    EXPECT_EQ(fe.dataVersions(), cfg.mcacheDataVersions);
    Tensor rows = prototypeVectors(64, 8, 8, 0.01f, 7);
    const HitMix mix = fe.detect(rows, 16).mix();
    EXPECT_TRUE(mix.consistent());
    EXPECT_EQ(mix.vectors, 64);
}

TEST(Pipeline, ResolvedShardsTracksThreadBand)
{
    // Explicit values pass through untouched.
    PipelineConfig pipe;
    pipe.shards = 7;
    EXPECT_EQ(pipe.resolvedShards(), 7);

    // 0 = auto: the tunedPipelineFor band for the resolved thread
    // count — the measured floor of 4 up to serial, scaling with the
    // probing threads, clamped at 16.
    pipe.shards = 0;
    pipe.threads = 1;
    EXPECT_EQ(pipe.resolvedShards(), 4);
    pipe.threads = 8;
    EXPECT_EQ(pipe.resolvedShards(), 8);
    pipe.threads = 64;
    EXPECT_EQ(pipe.resolvedShards(), 16);
}

TEST(Pipeline, AutoShardsFrontendMatchesExplicitShards)
{
    // Detection results are bit-identical across shard counts, so the
    // auto band must change nothing observable.
    Tensor rows = prototypeVectors(96, 10, 9, 0.01f, 11);
    PipelineConfig auto_pipe;
    auto_pipe.shards = 0;
    auto_pipe.threads = 8;
    DetectionFrontend auto_fe(32, 8, 2, kMaxBits, 13, auto_pipe);
    PipelineConfig fixed_pipe;
    fixed_pipe.shards = 8;
    fixed_pipe.threads = 8;
    DetectionFrontend fixed_fe(32, 8, 2, kMaxBits, 13, fixed_pipe);
    const DetectionResult a = auto_fe.detect(rows, 20);
    const DetectionResult b = fixed_fe.detect(rows, 20);
    ASSERT_EQ(a.hitmap.size(), b.hitmap.size());
    for (int64_t i = 0; i < a.hitmap.size(); ++i) {
        EXPECT_EQ(a.hitmap.outcome(i), b.hitmap.outcome(i)) << i;
        EXPECT_EQ(a.hitmap.entryId(i), b.hitmap.entryId(i)) << i;
    }
}

} // namespace
} // namespace mercury
