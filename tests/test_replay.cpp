/**
 * @file
 * Tests for the signature-replay subsystem (§III-C2): the
 * SignatureRecord capture, the replayed block stream, the backward
 * filter passes of all three reuse engines (bit-identical to the
 * exact input gradient at zero hits, skipping exactly the forward
 * HIT rows otherwise, serial == overlapped), the weight-gradient
 * sum-then-multiply replay of all three engines (bit-identical to
 * the exact dW at zero hits, exact up to float-summation order
 * otherwise), the NN-layer integration behind
 * MercuryContext::backwardReuse / weightGradReuse, and concurrent
 * replay-consumption stresses for the sanitizer CI jobs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/attention_engine.hpp"
#include "core/conv_reuse_engine.hpp"
#include "core/fc_engine.hpp"
#include "nn/attention_layer.hpp"
#include "nn/layers.hpp"
#include "nn/mercury_hooks.hpp"
#include "nn/network.hpp"
#include "pipeline/detection_frontend.hpp"
#include "pipeline/signature_record.hpp"
#include "sim/dataflow.hpp"
#include "sim/global_buffer.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workloads/synthetic.hpp"

namespace mercury {
namespace {

constexpr int kSets = 64;
constexpr int kWays = 16;
constexpr int kVersions = 4;
constexpr uint64_t kSeed = 777;

/** Input whose channel planes are built from a few prototype rows. */
Tensor
similarInput(int64_t n, int64_t c, int64_t h, int64_t w, float eps,
             uint64_t seed)
{
    Rng rng(seed);
    Tensor t({n, c, h, w});
    for (int64_t b = 0; b < n; ++b)
        for (int64_t ch = 0; ch < c; ++ch) {
            const float base = static_cast<float>(rng.normal());
            for (int64_t y = 0; y < h; ++y)
                for (int64_t x = 0; x < w; ++x)
                    t.at4(b, ch, y, x) =
                        base + eps * static_cast<float>(rng.normal());
        }
    return t;
}

/** (n, d) matrix of duplicated prototype rows (guaranteed hits). */
Tensor
duplicateRows(int64_t n, int64_t d, int64_t uniques, uint64_t seed)
{
    Rng rng(seed);
    Tensor proto({uniques, d});
    proto.fillNormal(rng);
    Tensor rows({n, d});
    for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < d; ++j)
            rows.at2(i, j) = proto.at2(i % uniques, j);
    return rows;
}

// ---------------------------------------------------------------------
// SignatureRecord capture + replay stream
// ---------------------------------------------------------------------

TEST(Record, CapturesOutcomesSignaturesAndMix)
{
    Tensor rows = duplicateRows(96, 12, 7, kSeed);
    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    SignatureRecord record;
    const DetectionResult det = fe.detect(rows, 20, &record);

    ASSERT_EQ(record.passCount(), 1);
    ASSERT_EQ(record.dataVersions(), kVersions);
    ASSERT_EQ(record.entries(), int64_t{kSets} * kWays);
    const SignatureRecord::Pass &pass = record.pass(0);
    ASSERT_EQ(pass.rows, rows.dim(0));
    EXPECT_EQ(pass.bits, 20);
    for (int64_t i = 0; i < pass.rows; ++i) {
        EXPECT_EQ(pass.outcome(i), det.hitmap.outcome(i));
        EXPECT_EQ(pass.entryId(i), det.hitmap.entryId(i));
        EXPECT_TRUE(pass.signatureOf(i) == det.table.signature(i))
            << "signature mismatch at row " << i;
    }
    const HitMix a = pass.mix, b = det.mix();
    EXPECT_EQ(a.hit, b.hit);
    EXPECT_EQ(a.mau, b.mau);
    EXPECT_EQ(a.mnu, b.mnu);
    EXPECT_GT(a.hit, 0) << "duplicate rows must hit";
    EXPECT_GT(record.storageBytes(), 0u);
}

TEST(Record, OwnersAreEarlierComputedRows)
{
    Tensor rows = duplicateRows(64, 10, 5, kSeed + 1);
    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    SignatureRecord record;
    fe.detect(rows, 24, &record);
    const SignatureRecord::Pass &pass = record.pass(0);

    std::vector<int64_t> owner;
    record.ownersOf(pass, owner);
    ASSERT_EQ(static_cast<int64_t>(owner.size()), pass.rows);
    for (int64_t i = 0; i < pass.rows; ++i) {
        if (pass.outcome(i) == McacheOutcome::Hit) {
            ASSERT_LT(owner[i], i) << "HIT owner must be earlier";
            EXPECT_EQ(owner[owner[i]], owner[i])
                << "owners always compute (depth-one chains)";
        } else {
            EXPECT_EQ(owner[i], i);
        }
    }
}

TEST(Replay, StreamDeliversRecordedBlocksAscending)
{
    Tensor rows = duplicateRows(100, 8, 9, kSeed + 2);
    PipelineConfig pipe;
    pipe.blockRows = 32;
    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed, pipe);
    SignatureRecord record;
    fe.detect(rows, 16, &record);
    const SignatureRecord::Pass &pass = record.pass(0);

    int64_t next_row = 0, next_index = 0;
    fe.replayStream(
        pass,
        [&](const DetectionBlock &blk) {
            EXPECT_EQ(blk.index, next_index++);
            EXPECT_EQ(blk.row0, next_row);
            next_row = blk.row1;
            for (int64_t i = blk.row0; i < blk.row1; ++i) {
                EXPECT_EQ(blk.results[i - blk.row0].outcome,
                          pass.outcome(i));
                EXPECT_EQ(blk.results[i - blk.row0].entryId,
                          pass.entryId(i));
                EXPECT_TRUE(blk.sigs[i - blk.row0] ==
                            pass.signatureOf(i));
            }
        },
        /*with_signatures=*/true);
    EXPECT_EQ(next_row, pass.rows);

    // The default replay skips the signature decode entirely — the
    // backward consumers read outcomes only.
    fe.replayStream(pass, [&](const DetectionBlock &blk) {
        EXPECT_EQ(blk.sigs, nullptr);
        EXPECT_NE(blk.results, nullptr);
    });
}

// ---------------------------------------------------------------------
// Conv backward replay
// ---------------------------------------------------------------------

ConvSpec
convSpec(int64_t cin, int64_t cout, int64_t k, int64_t stride = 1,
         int64_t pad = 0, int64_t groups = 1)
{
    ConvSpec spec;
    spec.inChannels = cin;
    spec.outChannels = cout;
    spec.kernelH = spec.kernelW = k;
    spec.stride = stride;
    spec.pad = pad;
    spec.groups = groups;
    return spec;
}

TEST(ConvBackward, BitIdenticalToExactGradientWhenNoHits)
{
    Rng rng(31);
    Tensor in({2, 3, 8, 8});
    in.fillNormal(rng); // white noise: no similarity at 32 bits
    const ConvSpec spec = convSpec(3, 5, 3, 1, 1);
    Tensor w({5, 3, 3, 3});
    w.fillNormal(rng);
    Tensor grad({2, 5, 8, 8});
    grad.fillNormal(rng);

    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    ConvReuseEngine engine(fe, 32);
    ReuseStats fstats;
    SignatureRecord record;
    engine.forward(in, w, Tensor(), spec, fstats, &record);
    ASSERT_EQ(fstats.mix.hit, 0)
        << "white noise at 32 bits must not hit (seeded, deterministic)";

    ReuseStats bstats;
    Tensor gin = engine.backwardInput(grad, w, spec, 8, 8, record, bstats);
    Tensor ref = conv2dBackwardInput(grad, w, spec, 8, 8);
    EXPECT_TRUE(gin == ref)
        << "zero-hit replay must be bit-identical, max diff "
        << gin.maxAbsDiff(ref);
    EXPECT_EQ(bstats.macsSkipped, 0u);
    EXPECT_EQ(bstats.macsTotal, fstats.macsTotal);
}

TEST(ConvBackward, StridedPaddedGroupedBitIdenticalWhenNoHits)
{
    Rng rng(33);
    Tensor in({1, 4, 9, 9});
    in.fillNormal(rng);
    const ConvSpec spec = convSpec(4, 6, 3, 2, 1, 2);
    Tensor w({6, 2, 3, 3});
    w.fillNormal(rng);
    const int64_t oh = spec.outH(9), ow = spec.outW(9);
    Tensor grad({1, 6, oh, ow});
    grad.fillNormal(rng);

    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    ConvReuseEngine engine(fe, 32);
    ReuseStats fstats;
    SignatureRecord record;
    engine.forward(in, w, Tensor(), spec, fstats, &record);
    ASSERT_EQ(fstats.mix.hit, 0);

    ReuseStats bstats;
    Tensor gin = engine.backwardInput(grad, w, spec, 9, 9, record, bstats);
    Tensor ref = conv2dBackwardInput(grad, w, spec, 9, 9);
    EXPECT_TRUE(gin == ref);
}

TEST(ConvBackward, SkipsExactlyTheForwardHitRows)
{
    Tensor in = similarInput(1, 4, 12, 12, 1e-4f, 62);
    Rng rng(63);
    const ConvSpec spec = convSpec(4, 8, 3);
    Tensor w({8, 4, 3, 3});
    w.fillNormal(rng);
    const int64_t oh = spec.outH(12), ow = spec.outW(12);
    Tensor grad({1, 8, oh, ow});
    grad.fillNormal(rng);

    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    ConvReuseEngine engine(fe, 16);
    ReuseStats fstats;
    SignatureRecord record;
    engine.forward(in, w, Tensor(), spec, fstats, &record);
    ASSERT_GT(fstats.mix.hit, 0) << "smooth input must hit";

    ReuseStats bstats;
    Tensor gin =
        engine.backwardInput(grad, w, spec, 12, 12, record, bstats);
    // Backward skips the same rows forward skipped: d MACs per HIT
    // row per filter, identical to the forward accounting.
    EXPECT_EQ(bstats.macsSkipped, fstats.macsSkipped);
    EXPECT_EQ(bstats.mix.hit, fstats.mix.hit);
    EXPECT_EQ(bstats.mix.vectors, fstats.mix.vectors);
    // With hits present the replayed gradient differs from the exact
    // one (that approximation is the measured trade-off), but it must
    // stay finite and deterministic.
    for (int64_t i = 0; i < gin.numel(); ++i)
        ASSERT_TRUE(std::isfinite(gin[i]));
    ReuseStats bstats2;
    Tensor gin2 =
        engine.backwardInput(grad, w, spec, 12, 12, record, bstats2);
    EXPECT_TRUE(gin == gin2);
}

TEST(ConvBackward, OverlappedReplayBitIdenticalToSerial)
{
    Tensor in = similarInput(1, 6, 10, 10, 1e-3f, 91);
    Rng rng(92);
    const ConvSpec spec = convSpec(6, 9, 3, 1, 1);
    Tensor w({9, 6, 3, 3});
    w.fillNormal(rng);
    Tensor grad({1, 9, 10, 10});
    grad.fillNormal(rng);

    PipelineConfig serial_pipe;
    serial_pipe.blockRows = 16;
    DetectionFrontend serial_fe(kSets, kWays, kVersions, 32, kSeed,
                                serial_pipe);
    ConvReuseEngine serial(serial_fe, 16);

    PipelineConfig overlap_pipe = serial_pipe;
    overlap_pipe.threads = 4;
    overlap_pipe.overlap = OverlapMode::On;
    DetectionFrontend overlap_fe(kSets, kWays, kVersions, 32, kSeed,
                                 overlap_pipe);
    ConvReuseEngine overlapped(overlap_fe, 16);

    ReuseStats fs, fo;
    SignatureRecord rs, ro;
    const Tensor out_s = serial.forward(in, w, Tensor(), spec, fs, &rs);
    const Tensor out_o =
        overlapped.forward(in, w, Tensor(), spec, fo, &ro);
    ASSERT_TRUE(out_s == out_o)
        << "overlapped forward with capture must stay bit-identical";
    ASSERT_EQ(rs.passCount(), ro.passCount());

    ReuseStats bs, bo;
    Tensor gs = serial.backwardInput(grad, w, spec, 10, 10, rs, bs);
    Tensor go = overlapped.backwardInput(grad, w, spec, 10, 10, ro, bo);
    EXPECT_TRUE(gs == go);
    EXPECT_EQ(bs.macsSkipped, bo.macsSkipped);
}

// ---------------------------------------------------------------------
// FC backward replay
// ---------------------------------------------------------------------

TEST(FcBackward, BitIdenticalToExactGradientWhenNoHits)
{
    Rng rng(41);
    Tensor in({24, 16});
    in.fillNormal(rng);
    Tensor w({16, 10});
    w.fillNormal(rng);
    Tensor grad({24, 10});
    grad.fillNormal(rng);

    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    FcEngine engine(fe, 32);
    ReuseStats fstats;
    SignatureRecord record;
    engine.forward(in, w, fstats, nullptr, &record);
    ASSERT_EQ(fstats.mix.hit, 0);

    ReuseStats bstats;
    Tensor gin = engine.backwardInput(grad, w, record, bstats);
    Tensor ref = matmulTransposeB(grad, w);
    EXPECT_TRUE(gin == ref);
    EXPECT_EQ(bstats.macsSkipped, 0u);
}

TEST(FcBackward, HitRowsReceiveTheirOwnersGradientRow)
{
    Tensor in = duplicateRows(30, 12, 6, kSeed + 5);
    Rng rng(43);
    Tensor w({12, 7});
    w.fillNormal(rng);
    Tensor grad({30, 7});
    grad.fillNormal(rng);

    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    FcEngine engine(fe, 24);
    ReuseStats fstats;
    SignatureRecord record;
    std::vector<int64_t> owners;
    engine.forward(in, w, fstats, &owners, &record);
    ASSERT_GT(fstats.mix.hit, 0);

    ReuseStats bstats;
    Tensor gin = engine.backwardInput(grad, w, record, bstats);
    for (int64_t i = 0; i < 30; ++i) {
        const int64_t o = owners[static_cast<size_t>(i)];
        if (o == i)
            continue;
        for (int64_t j = 0; j < 12; ++j)
            EXPECT_EQ(gin.at2(i, j), gin.at2(o, j))
                << "row " << i << " must copy owner " << o;
    }
    EXPECT_EQ(bstats.macsSkipped, fstats.macsSkipped);
}

TEST(FcBackward, OverlappedReplayBitIdenticalToSerial)
{
    Tensor in = duplicateRows(120, 20, 11, kSeed + 6);
    Rng rng(44);
    Tensor w({20, 9});
    w.fillNormal(rng);
    Tensor grad({120, 9});
    grad.fillNormal(rng);

    PipelineConfig serial_pipe;
    serial_pipe.blockRows = 32;
    DetectionFrontend serial_fe(kSets, kWays, kVersions, 32, kSeed,
                                serial_pipe);
    FcEngine serial(serial_fe, 24);

    PipelineConfig overlap_pipe = serial_pipe;
    overlap_pipe.threads = 4;
    overlap_pipe.overlap = OverlapMode::On;
    DetectionFrontend overlap_fe(kSets, kWays, kVersions, 32, kSeed,
                                 overlap_pipe);
    FcEngine overlapped(overlap_fe, 24);

    ReuseStats fs, fo;
    SignatureRecord rs, ro;
    serial.forward(in, w, fs, nullptr, &rs);
    overlapped.forward(in, w, fo, nullptr, &ro);

    ReuseStats bs, bo;
    Tensor gs = serial.backwardInput(grad, w, rs, bs);
    Tensor go = overlapped.backwardInput(grad, w, ro, bo);
    EXPECT_TRUE(gs == go);
    EXPECT_EQ(bs.macsSkipped, bo.macsSkipped);
}

// ---------------------------------------------------------------------
// Attention backward replay
// ---------------------------------------------------------------------

/** The exact factorized attention backward of one sample. */
Tensor
exactAttentionBackward(const Tensor &x, const Tensor &g)
{
    Tensor xtx = matmul(transpose2d(x), x);
    Tensor term1 = matmul(g, xtx);
    Tensor term2 = matmul(matmul(x, transpose2d(g)), x);
    Tensor term3 = matmul(matmulTransposeB(x, x), g);
    Tensor out(x.shape());
    for (int64_t i = 0; i < out.numel(); ++i)
        out[i] = term1[i] + term2[i] + term3[i];
    return out;
}

TEST(AttentionBackward, BitIdenticalToExactGradientWhenNoHits)
{
    Rng rng(51);
    Tensor x({12, 8});
    x.fillNormal(rng);
    Tensor g({12, 8});
    g.fillNormal(rng);

    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    AttentionEngine engine(fe, 32);
    ReuseStats fstats;
    SignatureRecord record;
    record.clear();
    engine.forward(x, fstats, &record);
    ASSERT_EQ(fstats.mix.hit, 0);

    ReuseStats bstats;
    Tensor gin = engine.backward(x, g, record, 0, bstats);
    Tensor ref = exactAttentionBackward(x, g);
    EXPECT_TRUE(gin == ref);
    EXPECT_EQ(bstats.macsSkipped, 0u);
}

TEST(AttentionBackward, HitRowsCopyOwnerGradientRows)
{
    Tensor x = duplicateRows(16, 8, 4, kSeed + 7);
    Rng rng(52);
    Tensor g({16, 8});
    g.fillNormal(rng);

    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    AttentionEngine engine(fe, 24);
    ReuseStats fstats;
    SignatureRecord record;
    engine.forward(x, fstats, &record);
    ASSERT_GT(fstats.mix.hit, 0);

    std::vector<int64_t> owner;
    record.ownersOf(record.pass(0), owner);
    ReuseStats bstats;
    Tensor gin = engine.backward(x, g, record, 0, bstats);
    for (int64_t i = 0; i < 16; ++i) {
        const int64_t o = owner[static_cast<size_t>(i)];
        if (o == i)
            continue;
        for (int64_t j = 0; j < 8; ++j)
            EXPECT_EQ(gin.at2(i, j), gin.at2(o, j));
    }
    EXPECT_GT(bstats.macsSkipped, 0u);
}

TEST(AttentionBackward, OverlappedReplayBitIdenticalToSerial)
{
    Tensor x = duplicateRows(48, 10, 9, kSeed + 8);
    Rng rng(53);
    Tensor g({48, 10});
    g.fillNormal(rng);

    PipelineConfig serial_pipe;
    serial_pipe.blockRows = 16;
    DetectionFrontend serial_fe(kSets, kWays, kVersions, 32, kSeed,
                                serial_pipe);
    AttentionEngine serial(serial_fe, 24);

    PipelineConfig overlap_pipe = serial_pipe;
    overlap_pipe.threads = 4;
    overlap_pipe.overlap = OverlapMode::On;
    DetectionFrontend overlap_fe(kSets, kWays, kVersions, 32, kSeed,
                                 overlap_pipe);
    AttentionEngine overlapped(overlap_fe, 24);

    ReuseStats fs, fo;
    SignatureRecord rs, ro;
    serial.forward(x, fs, &rs);
    overlapped.forward(x, fo, &ro);

    ReuseStats bs, bo;
    Tensor gs = serial.backward(x, g, rs, 0, bs);
    Tensor go = overlapped.backward(x, g, ro, 0, bo);
    EXPECT_TRUE(gs == go);
    EXPECT_EQ(bs.macsSkipped, bo.macsSkipped);
}

// ---------------------------------------------------------------------
// Weight-gradient replay (§III-C2 on Eq. 1, sum-then-multiply)
// ---------------------------------------------------------------------

TEST(ConvWeightGrad, BitIdenticalToExactGradientWhenNoHits)
{
    Rng rng(71);
    Tensor in({2, 3, 8, 8});
    in.fillNormal(rng); // white noise: no similarity at 32 bits
    const ConvSpec spec = convSpec(3, 5, 3, 1, 1);
    Tensor w({5, 3, 3, 3});
    w.fillNormal(rng);
    Tensor grad({2, 5, 8, 8});
    grad.fillNormal(rng);

    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    ConvReuseEngine engine(fe, 32);
    ReuseStats fstats;
    SignatureRecord record;
    engine.forward(in, w, Tensor(), spec, fstats, &record);
    ASSERT_EQ(fstats.mix.hit, 0);

    ReuseStats wstats;
    Tensor dw = engine.backwardWeights(in, grad, spec, record, wstats);
    Tensor ref = conv2dBackwardWeight(in, grad, spec);
    EXPECT_TRUE(dw == ref)
        << "zero-hit dW replay must be bit-identical, max diff "
        << dw.maxAbsDiff(ref);
    EXPECT_EQ(wstats.macsSkipped, 0u);
    EXPECT_EQ(wstats.macsTotal, fstats.macsTotal);
}

TEST(ConvWeightGrad, StridedPaddedGroupedBitIdenticalWhenNoHits)
{
    Rng rng(72);
    Tensor in({1, 4, 9, 9});
    in.fillNormal(rng);
    const ConvSpec spec = convSpec(4, 6, 3, 2, 1, 2);
    Tensor w({6, 2, 3, 3});
    w.fillNormal(rng);
    const int64_t oh = spec.outH(9), ow = spec.outW(9);
    Tensor grad({1, 6, oh, ow});
    grad.fillNormal(rng);

    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    ConvReuseEngine engine(fe, 32);
    ReuseStats fstats;
    SignatureRecord record;
    engine.forward(in, w, Tensor(), spec, fstats, &record);
    ASSERT_EQ(fstats.mix.hit, 0);

    ReuseStats wstats;
    Tensor dw = engine.backwardWeights(in, grad, spec, record, wstats);
    Tensor ref = conv2dBackwardWeight(in, grad, spec);
    EXPECT_TRUE(dw == ref);
}

TEST(ConvWeightGrad, SumThenMultiplyMatchesExactDwWithinTolerance)
{
    // Near-identical patches produce real hit-groups; the replayed dW
    // factors each group through its owner's patch, so it differs
    // from the exact dW only by the patch deltas and the group-sum
    // float order — a tight relative tolerance.
    Tensor in = similarInput(1, 4, 12, 12, 1e-4f, 73);
    Rng rng(74);
    const ConvSpec spec = convSpec(4, 8, 3);
    Tensor w({8, 4, 3, 3});
    w.fillNormal(rng);
    const int64_t oh = spec.outH(12), ow = spec.outW(12);
    Tensor grad({1, 8, oh, ow});
    grad.fillNormal(rng);

    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    ConvReuseEngine engine(fe, 16);
    ReuseStats fstats;
    SignatureRecord record;
    engine.forward(in, w, Tensor(), spec, fstats, &record);
    ASSERT_GT(fstats.mix.hit, 0) << "smooth input must hit";

    ReuseStats wstats;
    Tensor dw = engine.backwardWeights(in, grad, spec, record, wstats);
    Tensor ref = conv2dBackwardWeight(in, grad, spec);
    float scale = 0.0f;
    for (int64_t i = 0; i < ref.numel(); ++i)
        scale = std::max(scale, std::abs(ref[i]));
    ASSERT_GT(scale, 0.0f);
    EXPECT_LT(dw.maxAbsDiff(ref), 0.02f * scale)
        << "sum-then-multiply drifted past the group tolerance";
    // The dW pass skips the same rows forward skipped: d MACs per HIT
    // row per filter.
    EXPECT_EQ(wstats.macsSkipped, fstats.macsSkipped);
    EXPECT_EQ(wstats.mix.hit, fstats.mix.hit);
    // Deterministic: replaying the same record reproduces the bits.
    ReuseStats wstats2;
    Tensor dw2 = engine.backwardWeights(in, grad, spec, record, wstats2);
    EXPECT_TRUE(dw == dw2);
}

TEST(ConvWeightGrad, OverlappedReplayBitIdenticalToSerial)
{
    Tensor in = similarInput(1, 6, 10, 10, 1e-3f, 75);
    Rng rng(76);
    const ConvSpec spec = convSpec(6, 9, 3, 1, 1);
    Tensor w({9, 6, 3, 3});
    w.fillNormal(rng);
    Tensor grad({1, 9, 10, 10});
    grad.fillNormal(rng);

    PipelineConfig serial_pipe;
    serial_pipe.blockRows = 16;
    DetectionFrontend serial_fe(kSets, kWays, kVersions, 32, kSeed,
                                serial_pipe);
    ConvReuseEngine serial(serial_fe, 16);

    PipelineConfig overlap_pipe = serial_pipe;
    overlap_pipe.threads = 4;
    overlap_pipe.overlap = OverlapMode::On;
    DetectionFrontend overlap_fe(kSets, kWays, kVersions, 32, kSeed,
                                 overlap_pipe);
    ConvReuseEngine overlapped(overlap_fe, 16);

    ReuseStats fs, fo;
    SignatureRecord rs, ro;
    serial.forward(in, w, Tensor(), spec, fs, &rs);
    overlapped.forward(in, w, Tensor(), spec, fo, &ro);

    ReuseStats ws, wo;
    Tensor ds = serial.backwardWeights(in, grad, spec, rs, ws);
    Tensor dov = overlapped.backwardWeights(in, grad, spec, ro, wo);
    EXPECT_TRUE(ds == dov);
    EXPECT_EQ(ws.macsSkipped, wo.macsSkipped);
}

TEST(FcWeightGrad, BitIdenticalToExactGradientWhenNoHits)
{
    Rng rng(81);
    Tensor in({24, 16});
    in.fillNormal(rng);
    Tensor grad({24, 10});
    grad.fillNormal(rng);

    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    FcEngine engine(fe, 32);
    ReuseStats fstats;
    SignatureRecord record;
    Tensor w({16, 10});
    w.fillNormal(rng);
    engine.forward(in, w, fstats, nullptr, &record);
    ASSERT_EQ(fstats.mix.hit, 0);

    ReuseStats wstats;
    Tensor dw = engine.backwardWeights(in, grad, record, wstats);
    Tensor ref = matmul(transpose2d(in), grad);
    EXPECT_TRUE(dw == ref);
    EXPECT_EQ(wstats.macsSkipped, 0u);
}

TEST(FcWeightGrad, GroupSumsFactorThroughTheOwnersRow)
{
    // Duplicated rows: a hit's input row equals its owner's bit for
    // bit, so the replayed dW is the exact dW re-associated into
    // group sums. Check against an independent restatement of the
    // sum-then-multiply spec (bit-exact) and against the exact dW
    // (tight tolerance, float-summation order only).
    Tensor in = duplicateRows(30, 12, 6, kSeed + 15);
    Rng rng(82);
    Tensor w({12, 7});
    w.fillNormal(rng);
    Tensor grad({30, 7});
    grad.fillNormal(rng);

    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    FcEngine engine(fe, 24);
    ReuseStats fstats;
    SignatureRecord record;
    engine.forward(in, w, fstats, nullptr, &record);
    ASSERT_GT(fstats.mix.hit, 0);

    ReuseStats wstats;
    Tensor dw = engine.backwardWeights(in, grad, record, wstats);

    // Independent sum-then-multiply reference from the owner map.
    const SignatureRecord::Pass &pass = record.pass(0);
    std::vector<int64_t> owner;
    record.ownersOf(pass, owner);
    Tensor gsum({30, 7});
    for (int64_t r = 0; r < 30; ++r) {
        const int64_t o = owner[static_cast<size_t>(r)];
        for (int64_t p = 0; p < 7; ++p) {
            if (o == r)
                gsum.at2(o, p) = grad.at2(r, p);
            else
                gsum.at2(o, p) += grad.at2(r, p);
        }
    }
    Tensor ref({12, 7});
    for (int64_t j = 0; j < 12; ++j) {
        for (int64_t r = 0; r < 30; ++r) {
            if (owner[static_cast<size_t>(r)] != r)
                continue;
            const float av = in.at2(r, j);
            if (av == 0.0f)
                continue;
            for (int64_t p = 0; p < 7; ++p)
                ref.at2(j, p) += av * gsum.at2(r, p);
        }
    }
    EXPECT_TRUE(dw == ref)
        << "engine must implement the sum-then-multiply order exactly";

    Tensor exact = matmul(transpose2d(in), grad);
    float scale = 0.0f;
    for (int64_t i = 0; i < exact.numel(); ++i)
        scale = std::max(scale, std::abs(exact[i]));
    EXPECT_LT(dw.maxAbsDiff(exact), 1e-4f * scale)
        << "identical-row groups differ from exact only by summation "
           "order";
    EXPECT_EQ(wstats.macsSkipped, fstats.macsSkipped);
}

TEST(FcWeightGrad, OverlappedReplayBitIdenticalToSerial)
{
    Tensor in = duplicateRows(120, 20, 11, kSeed + 16);
    Rng rng(83);
    Tensor w({20, 9});
    w.fillNormal(rng);
    Tensor grad({120, 9});
    grad.fillNormal(rng);

    PipelineConfig serial_pipe;
    serial_pipe.blockRows = 32;
    DetectionFrontend serial_fe(kSets, kWays, kVersions, 32, kSeed,
                                serial_pipe);
    FcEngine serial(serial_fe, 24);

    PipelineConfig overlap_pipe = serial_pipe;
    overlap_pipe.threads = 4;
    overlap_pipe.overlap = OverlapMode::On;
    DetectionFrontend overlap_fe(kSets, kWays, kVersions, 32, kSeed,
                                 overlap_pipe);
    FcEngine overlapped(overlap_fe, 24);

    ReuseStats fs, fo;
    SignatureRecord rs, ro;
    serial.forward(in, w, fs, nullptr, &rs);
    overlapped.forward(in, w, fo, nullptr, &ro);

    ReuseStats ws, wo;
    Tensor ds = serial.backwardWeights(in, grad, rs, ws);
    Tensor dov = overlapped.backwardWeights(in, grad, ro, wo);
    EXPECT_TRUE(ds == dov);
    EXPECT_EQ(ws.macsSkipped, wo.macsSkipped);
}

TEST(AttentionWeightGrad, ProjectionBitIdenticalToExactWhenNoHits)
{
    Rng rng(85);
    Tensor x({12, 8});
    x.fillNormal(rng);
    Tensor g({12, 8});
    g.fillNormal(rng);

    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    AttentionEngine engine(fe, 32);
    ReuseStats fstats;
    SignatureRecord record;
    engine.forward(x, fstats, &record);
    ASSERT_EQ(fstats.mix.hit, 0);

    ReuseStats wstats;
    Tensor xtx = engine.backwardProjection(x, record, 0, wstats);
    Tensor ref = matmul(transpose2d(x), x);
    EXPECT_TRUE(xtx == ref);
    EXPECT_EQ(wstats.macsSkipped, 0u);

    // Feeding the replayed factor back into the input-gradient replay
    // reproduces the exact backward bit for bit.
    ReuseStats bstats;
    Tensor gin = engine.backward(x, g, record, 0, bstats, &xtx);
    Tensor bref = exactAttentionBackward(x, g);
    EXPECT_TRUE(gin == bref);
}

TEST(AttentionWeightGrad, ProjectionGroupSumsWithinTolerance)
{
    Tensor x = duplicateRows(16, 8, 4, kSeed + 17);

    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    AttentionEngine engine(fe, 24);
    ReuseStats fstats;
    SignatureRecord record;
    engine.forward(x, fstats, &record);
    ASSERT_GT(fstats.mix.hit, 0);

    ReuseStats wstats;
    Tensor xtx = engine.backwardProjection(x, record, 0, wstats);
    Tensor ref = matmul(transpose2d(x), x);
    float scale = 0.0f;
    for (int64_t i = 0; i < ref.numel(); ++i)
        scale = std::max(scale, std::abs(ref[i]));
    EXPECT_LT(xtx.maxAbsDiff(ref), 1e-4f * scale)
        << "identical-row groups differ from exact only by summation "
           "order";
    EXPECT_GT(wstats.macsSkipped, 0u);
    // d*d MACs skipped per HIT token row.
    EXPECT_EQ(wstats.macsSkipped,
              static_cast<uint64_t>(fstats.mix.hit) * 8u * 8u);
}

TEST(AttentionWeightGrad, OverlappedProjectionBitIdenticalToSerial)
{
    Tensor x = duplicateRows(48, 10, 9, kSeed + 18);

    PipelineConfig serial_pipe;
    serial_pipe.blockRows = 16;
    DetectionFrontend serial_fe(kSets, kWays, kVersions, 32, kSeed,
                                serial_pipe);
    AttentionEngine serial(serial_fe, 24);

    PipelineConfig overlap_pipe = serial_pipe;
    overlap_pipe.threads = 4;
    overlap_pipe.overlap = OverlapMode::On;
    DetectionFrontend overlap_fe(kSets, kWays, kVersions, 32, kSeed,
                                 overlap_pipe);
    AttentionEngine overlapped(overlap_fe, 24);

    ReuseStats fs, fo;
    SignatureRecord rs, ro;
    serial.forward(x, fs, &rs);
    overlapped.forward(x, fo, &ro);

    ReuseStats ws, wo;
    Tensor ps = serial.backwardProjection(x, rs, 0, ws);
    Tensor po = overlapped.backwardProjection(x, ro, 0, wo);
    EXPECT_TRUE(ps == po);
    EXPECT_EQ(ws.macsSkipped, wo.macsSkipped);
}

// ---------------------------------------------------------------------
// NN-layer integration (MercuryContext::backwardReuse)
// ---------------------------------------------------------------------

TEST(LayerReplay, ConvLayerReplayEqualsExactBackwardAtZeroHits)
{
    Rng rng(61);
    Tensor in({1, 2, 6, 6});
    in.fillNormal(rng); // white noise: no hits at 32 bits
    Conv2dLayer layer(2, 4, 3, 1, 0, rng, /*layer_id=*/1);
    Tensor grad({1, 4, 4, 4});
    grad.fillNormal(rng);

    MercuryContext ctx(32);
    ctx.setBackwardReuse(true);
    layer.forward(in, &ctx);
    ASSERT_EQ(ctx.totals().mix.hit, 0);

    Tensor replayed = layer.backward(grad, &ctx);
    Tensor exact = layer.backward(grad, nullptr);
    EXPECT_TRUE(replayed == exact);
    EXPECT_GT(ctx.backwardTotals().mix.vectors, 0);
    EXPECT_EQ(ctx.backwardTotals().macsSkipped, 0u);
}

TEST(LayerReplay, DenseLayerReplayEqualsExactBackwardAtZeroHits)
{
    Rng rng(62);
    Tensor in({8, 12});
    in.fillNormal(rng);
    DenseLayer layer(12, 5, rng, /*layer_id=*/2);
    Tensor grad({8, 5});
    grad.fillNormal(rng);

    MercuryContext ctx(32);
    ctx.setBackwardReuse(true);
    layer.forward(in, &ctx);
    ASSERT_EQ(ctx.totals().mix.hit, 0);

    Tensor replayed = layer.backward(grad, &ctx);
    Tensor exact = layer.backward(grad, nullptr);
    EXPECT_TRUE(replayed == exact);
}

TEST(LayerReplay, AttentionLayerReplayEqualsExactBackwardAtZeroHits)
{
    Rng rng(63);
    Tensor in({2, 6 * 8});
    in.fillNormal(rng);
    SelfAttentionLayer layer(6, 8, /*layer_id=*/3, 0.25f);
    Tensor grad({2, 6 * 8});
    grad.fillNormal(rng);

    MercuryContext ctx(32);
    ctx.setBackwardReuse(true);
    layer.forward(in, &ctx);
    ASSERT_EQ(ctx.totals().mix.hit, 0);

    Tensor replayed = layer.backward(grad, &ctx);
    Tensor exact = layer.backward(grad, nullptr);
    EXPECT_TRUE(replayed == exact);
}

TEST(LayerReplay, WithoutKnobBackwardIsExactEvenWithContext)
{
    Rng rng(64);
    Tensor in({1, 2, 6, 6});
    in.fillNormal(rng);
    Conv2dLayer layer(2, 3, 3, 1, 0, rng, /*layer_id=*/4);
    Tensor grad({1, 3, 4, 4});
    grad.fillNormal(rng);

    MercuryContext ctx(16); // knob off
    layer.forward(in, &ctx);
    Tensor with_ctx = layer.backward(grad, &ctx);
    Tensor exact = layer.backward(grad, nullptr);
    EXPECT_TRUE(with_ctx == exact);
    EXPECT_EQ(ctx.backwardTotals().mix.vectors, 0);
}

TEST(LayerReplay, TrainingStepRunsWithBackwardReuse)
{
    Dataset ds = makeImageDataset(4, 2, 2, 8, kSeed, 0.01f);
    Rng rng(65);
    Network net;
    net.add(std::make_unique<Conv2dLayer>(2, 4, 3, 1, 1, rng, 1));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<FlattenLayer>());
    net.add(std::make_unique<DenseLayer>(4 * 8 * 8, 2, rng, 2));

    MercuryContext ctx(16);
    ctx.setBackwardReuse(true);
    const float loss = net.trainBatch(ds.inputs, ds.labels, 0.01f, &ctx);
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GT(ctx.totals().mix.vectors, 0);
    EXPECT_GT(ctx.backwardTotals().mix.vectors, 0);
    // The conv layer's backward replay covers the same vector
    // population its forward detection covered.
    EXPECT_EQ(ctx.backwardTotals().mix.hit, ctx.totals().mix.hit);
}

// ---------------------------------------------------------------------
// SignatureRecord spill accounting (records held forward -> backward)
// ---------------------------------------------------------------------

TEST(RecordSpill, DataflowEstimateMatchesCapturedRecord)
{
    // The timing model's per-layer spill estimate must equal what the
    // functional engine actually records for the same geometry.
    Rng rng(99);
    Tensor in({2, 3, 8, 8});
    in.fillNormal(rng);
    const ConvSpec spec = convSpec(3, 5, 3, 1, 1);
    Tensor w({5, 3, 3, 3});
    w.fillNormal(rng);

    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed);
    ConvReuseEngine engine(fe, 16);
    ReuseStats stats;
    SignatureRecord record;
    engine.forward(in, w, Tensor(), spec, stats, &record);

    const auto df = Dataflow::create(AcceleratorConfig{});
    const LayerShape shape =
        LayerShape::conv("conv", 3, 5, 8, 8, 3, 1, 1);
    EXPECT_EQ(record.storageBytes(),
              df->recordSpillBytes(shape, 2, 16));
}

TEST(RecordSpill, BufferChargesTrafficOnlyPastCapacity)
{
    GlobalBuffer buffer(1000);
    buffer.holdRecord(600);
    EXPECT_EQ(buffer.recordBytesHeld(), 600u);
    EXPECT_EQ(buffer.signatureBytes(), 0u) << "fits: no spill";
    // The second record pushes 200 bytes past capacity: written out
    // now, read back at the backward pass — two transfers each.
    buffer.holdRecord(600);
    EXPECT_EQ(buffer.recordBytesHeld(), 1200u);
    EXPECT_EQ(buffer.peakRecordBytes(), 1200u);
    EXPECT_EQ(buffer.signatureBytes(), 400u);
    buffer.releaseRecord(600);
    buffer.releaseRecord(600);
    EXPECT_EQ(buffer.recordBytesHeld(), 0u);
    // A later batch that fits spills nothing more.
    buffer.holdRecord(600);
    EXPECT_EQ(buffer.signatureBytes(), 400u);
    EXPECT_EQ(buffer.peakRecordBytes(), 1200u);
}

// ---------------------------------------------------------------------
// NN-layer integration (MercuryContext::weightGradReuse)
// ---------------------------------------------------------------------

TEST(LayerWeightGrad, ConvLayerReplayedDwEqualsExactAtZeroHits)
{
    // Two identically initialized layers: one steps on the replayed
    // dW, one on the exact dW. At zero hits the weights must stay bit
    // for bit in lockstep.
    Rng rng_a(66), rng_b(66);
    Conv2dLayer reuse_layer(2, 4, 3, 1, 0, rng_a, /*layer_id=*/11);
    Conv2dLayer exact_layer(2, 4, 3, 1, 0, rng_b, /*layer_id=*/11);
    Rng rng(67);
    Tensor in({1, 2, 6, 6});
    in.fillNormal(rng); // white noise: no hits at 32 bits
    Tensor grad({1, 4, 4, 4});
    grad.fillNormal(rng);

    MercuryContext ctx(32);
    ctx.setWeightGradReuse(true);
    reuse_layer.forward(in, &ctx);
    ASSERT_EQ(ctx.totals().mix.hit, 0);
    exact_layer.forward(in, nullptr);

    reuse_layer.backward(grad, &ctx);
    exact_layer.backward(grad, nullptr);
    reuse_layer.step(0.01f);
    exact_layer.step(0.01f);
    EXPECT_TRUE(reuse_layer.weights() == exact_layer.weights());
    EXPECT_GT(ctx.weightGradTotals().mix.vectors, 0);
    EXPECT_EQ(ctx.weightGradTotals().macsSkipped, 0u);
    // The knob affects only dW: the input gradient stayed exact.
    EXPECT_EQ(ctx.backwardTotals().mix.vectors, 0);
}

TEST(LayerWeightGrad, DenseLayerReplayedDwEqualsExactAtZeroHits)
{
    Rng rng_a(68), rng_b(68);
    DenseLayer reuse_layer(12, 5, rng_a, /*layer_id=*/12);
    DenseLayer exact_layer(12, 5, rng_b, /*layer_id=*/12);
    Rng rng(69);
    Tensor in({8, 12});
    in.fillNormal(rng);
    Tensor grad({8, 5});
    grad.fillNormal(rng);

    MercuryContext ctx(32);
    ctx.setWeightGradReuse(true);
    reuse_layer.forward(in, &ctx);
    ASSERT_EQ(ctx.totals().mix.hit, 0);
    exact_layer.forward(in, nullptr);

    reuse_layer.backward(grad, &ctx);
    exact_layer.backward(grad, nullptr);
    reuse_layer.step(0.01f);
    exact_layer.step(0.01f);
    EXPECT_TRUE(reuse_layer.weights() == exact_layer.weights());
    EXPECT_GT(ctx.weightGradTotals().mix.vectors, 0);
}

TEST(LayerWeightGrad, AttentionLayerReplayedProjectionEqualsExactAtZeroHits)
{
    Rng rng(70);
    Tensor in({2, 6 * 8});
    in.fillNormal(rng);
    SelfAttentionLayer layer(6, 8, /*layer_id=*/13, 0.25f);
    Tensor grad({2, 6 * 8});
    grad.fillNormal(rng);

    MercuryContext ctx(32);
    ctx.setWeightGradReuse(true); // projection replay, exact dX path
    layer.forward(in, &ctx);
    ASSERT_EQ(ctx.totals().mix.hit, 0);

    Tensor replayed = layer.backward(grad, &ctx);
    Tensor exact = layer.backward(grad, nullptr);
    EXPECT_TRUE(replayed == exact);
    EXPECT_GT(ctx.weightGradTotals().mix.vectors, 0);
}

TEST(LayerWeightGrad, TrainingStepRunsWithBothReplayKnobs)
{
    Dataset ds = makeImageDataset(4, 2, 2, 8, kSeed, 0.01f);
    Rng rng(77);
    Network net;
    net.add(std::make_unique<Conv2dLayer>(2, 4, 3, 1, 1, rng, 21));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<FlattenLayer>());
    net.add(std::make_unique<DenseLayer>(4 * 8 * 8, 2, rng, 22));

    MercuryContext ctx(16);
    ctx.setBackwardReuse(true);
    ctx.setWeightGradReuse(true);
    const float loss = net.trainBatch(ds.inputs, ds.labels, 0.01f, &ctx);
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GT(ctx.totals().mix.vectors, 0);
    EXPECT_GT(ctx.backwardTotals().mix.vectors, 0);
    EXPECT_GT(ctx.weightGradTotals().mix.vectors, 0);
    // One captured detection pass feeds forward, dX, and dW: all
    // three see the same hit population.
    EXPECT_EQ(ctx.weightGradTotals().mix.hit, ctx.totals().mix.hit);
    EXPECT_EQ(ctx.weightGradTotals().mix.vectors,
              ctx.totals().mix.vectors);
}

// ---------------------------------------------------------------------
// Concurrent replay consumption (TSan stress)
// ---------------------------------------------------------------------

TEST(ReplayStress, ConcurrentConsumersOnSharedPool)
{
    // Several overlapped backward passes in a row over a record with
    // real hits: replay delivery on the driving thread races chain /
    // task-group consumption on the pool. Run under TSan in CI.
    Tensor in = similarInput(1, 8, 12, 12, 1e-3f, 95);
    Rng rng(96);
    const ConvSpec spec = convSpec(8, 12, 3, 1, 1);
    Tensor w({12, 8, 3, 3});
    w.fillNormal(rng);
    Tensor grad({1, 12, 12, 12});
    grad.fillNormal(rng);

    PipelineConfig pipe;
    pipe.blockRows = 8; // many blocks -> many chained segments
    pipe.threads = 4;
    pipe.overlap = OverlapMode::On;
    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed, pipe);
    ConvReuseEngine engine(fe, 16);

    ReuseStats fstats;
    SignatureRecord record;
    engine.forward(in, w, Tensor(), spec, fstats, &record);

    Tensor first;
    for (int round = 0; round < 3; ++round) {
        ReuseStats bstats;
        Tensor gin =
            engine.backwardInput(grad, w, spec, 12, 12, record, bstats);
        if (round == 0)
            first = gin;
        else
            ASSERT_TRUE(gin == first) << "replay must be deterministic";
    }
}

TEST(ReplayStress, ConcurrentWeightGradConsumersOnSharedPool)
{
    // The dW twin of the stress above: group-sum chains consume the
    // replayed stream while the per-group outer products fan out over
    // the pool. Run under TSan and ASan+UBSan in CI — the scatter /
    // accumulate paths are exactly where heap and ordering bugs hide.
    Tensor in = similarInput(1, 8, 12, 12, 1e-3f, 97);
    Rng rng(98);
    const ConvSpec spec = convSpec(8, 12, 3, 1, 1);
    Tensor w({12, 8, 3, 3});
    w.fillNormal(rng);
    Tensor grad({1, 12, 12, 12});
    grad.fillNormal(rng);

    PipelineConfig pipe;
    pipe.blockRows = 8; // many blocks -> many chained segments
    pipe.threads = 4;
    pipe.overlap = OverlapMode::On;
    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed, pipe);
    ConvReuseEngine engine(fe, 16);

    ReuseStats fstats;
    SignatureRecord record;
    engine.forward(in, w, Tensor(), spec, fstats, &record);

    Tensor first;
    for (int round = 0; round < 3; ++round) {
        ReuseStats wstats;
        Tensor dw =
            engine.backwardWeights(in, grad, spec, record, wstats);
        if (round == 0)
            first = dw;
        else
            ASSERT_TRUE(dw == first)
                << "dW replay must be deterministic";
    }
}

} // namespace
} // namespace mercury
