/**
 * @file
 * Tests for the similarity detector, hitmap, and signature table:
 * outcome ordering (owners precede their hits), mixes, sampling, and
 * the forward-to-backward signature save path.
 */

#include <gtest/gtest.h>

#include "core/similarity_detector.hpp"
#include "util/rng.hpp"

namespace mercury {
namespace {

/** Rows drawn from `uniques` prototypes plus epsilon noise. */
Tensor
prototypeRows(int64_t n, int64_t d, int uniques, float eps, uint64_t seed)
{
    Rng rng(seed);
    Tensor protos({uniques, d});
    protos.fillNormal(rng);
    Tensor rows({n, d});
    for (int64_t i = 0; i < n; ++i) {
        const int64_t p = static_cast<int64_t>(
            rng.uniformInt(static_cast<uint64_t>(uniques)));
        for (int64_t j = 0; j < d; ++j)
            rows.at2(i, j) =
                protos.at2(p, j) +
                eps * static_cast<float>(rng.normal());
    }
    return rows;
}

TEST(Hitmap, RecordsAndCounts)
{
    Hitmap h(3);
    h.record(0, {McacheOutcome::Mau, 7});
    h.record(1, {McacheOutcome::Hit, 7});
    h.record(2, {McacheOutcome::Mnu, -1});
    EXPECT_EQ(h.outcome(0), McacheOutcome::Mau);
    EXPECT_TRUE(h.isHit(1));
    EXPECT_EQ(h.entryId(1), 7);
    const HitMix m = h.mix();
    EXPECT_EQ(m.vectors, 3);
    EXPECT_EQ(m.hit, 1);
    EXPECT_EQ(m.mau, 1);
    EXPECT_EQ(m.mnu, 1);
    EXPECT_TRUE(m.consistent());
}

TEST(Hitmap, OutOfRangeDies)
{
    Hitmap h(2);
    EXPECT_DEATH(h.outcome(2), "out of range");
}

TEST(SignatureTable, StoresInOrder)
{
    SignatureTable t;
    Signature a(8), b(8);
    b.setBit(2, true);
    t.append(a, 0);
    t.append(b, 5);
    EXPECT_EQ(t.size(), 2);
    EXPECT_TRUE(t.signature(1) == b);
    EXPECT_EQ(t.entryId(1), 5);
    t.clear();
    EXPECT_EQ(t.size(), 0);
}

TEST(SignatureTable, StorageBytes)
{
    SignatureTable t;
    t.append(Signature(20), 0); // 3 bytes sig + 4 bytes id
    t.append(Signature(20), 1);
    EXPECT_EQ(t.storageBytes(), 14u);
}

TEST(Detector, IdenticalRowsProduceOneMauRestHits)
{
    MCache cache(16, 4, 1);
    RPQEngine rpq(8, 32, 42);
    SimilarityDetector det(rpq, cache, 20);
    Tensor rows({10, 8});
    Rng rng(1);
    // All rows identical.
    std::vector<float> proto(8);
    for (auto &x : proto)
        x = static_cast<float>(rng.normal());
    for (int64_t i = 0; i < 10; ++i)
        for (int64_t j = 0; j < 8; ++j)
            rows.at2(i, j) = proto[static_cast<size_t>(j)];

    const DetectionResult res = det.detect(rows);
    const HitMix m = res.mix();
    EXPECT_EQ(m.mau, 1);
    EXPECT_EQ(m.hit, 9);
    EXPECT_EQ(m.mnu, 0);
    EXPECT_EQ(res.uniqueVectors(), 1);
}

TEST(Detector, OwnerAlwaysPrecedesItsHits)
{
    MCache cache(16, 4, 1);
    RPQEngine rpq(8, 32, 43);
    SimilarityDetector det(rpq, cache, 16);
    Tensor rows = prototypeRows(64, 8, 4, 1e-4f, 2);
    const DetectionResult res = det.detect(rows);

    std::vector<bool> entry_seen(
        static_cast<size_t>(cache.entries()), false);
    for (int64_t i = 0; i < 64; ++i) {
        const auto outc = res.hitmap.outcome(i);
        const int64_t id = res.hitmap.entryId(i);
        if (outc == McacheOutcome::Mau) {
            entry_seen[static_cast<size_t>(id)] = true;
        }
        if (outc == McacheOutcome::Hit) {
            EXPECT_TRUE(entry_seen[static_cast<size_t>(id)])
                << "hit at " << i << " before its owner";
        }
    }
}

TEST(Detector, DissimilarRowsMostlyMau)
{
    MCache cache(64, 16, 1);
    RPQEngine rpq(16, 32, 44);
    SimilarityDetector det(rpq, cache, 24);
    Rng rng(3);
    Tensor rows({100, 16});
    rows.fillNormal(rng);
    const HitMix m = det.detect(rows).mix();
    EXPECT_LT(m.hitFraction(), 0.1);
}

TEST(Detector, PrototypeRowsHitHeavily)
{
    MCache cache(64, 16, 1);
    RPQEngine rpq(16, 32, 45);
    SimilarityDetector det(rpq, cache, 20);
    Tensor rows = prototypeRows(512, 16, 8, 1e-4f, 4);
    const HitMix m = det.detect(rows).mix();
    // 8 prototypes across 512 rows: almost everything should hit.
    EXPECT_GT(m.hitFraction(), 0.85);
    EXPECT_LE(m.mau, 8 + 8); // prototypes, modulo rare RPQ splits
}

TEST(Detector, LongerSignaturesNeverHitMore)
{
    Tensor rows = prototypeRows(256, 16, 8, 0.05f, 5);
    RPQEngine rpq(16, 64, 46);
    int64_t prev_hits = INT64_MAX;
    for (int bits : {8, 16, 32, 64}) {
        MCache cache(64, 16, 1);
        SimilarityDetector det(rpq, cache, bits);
        const HitMix m = det.detect(rows).mix();
        EXPECT_LE(m.hit, prev_hits) << bits << " bits";
        prev_hits = m.hit;
    }
}

TEST(Detector, SignatureTableMatchesHitmap)
{
    MCache cache(16, 4, 1);
    RPQEngine rpq(8, 32, 47);
    SimilarityDetector det(rpq, cache, 16);
    Tensor rows = prototypeRows(32, 8, 4, 1e-3f, 6);
    const DetectionResult res = det.detect(rows);
    ASSERT_EQ(res.table.size(), 32);
    for (int64_t i = 0; i < 32; ++i)
        EXPECT_EQ(res.table.entryId(i), res.hitmap.entryId(i));
}

TEST(Detector, CacheClearedBetweenPasses)
{
    MCache cache(16, 4, 1);
    RPQEngine rpq(8, 32, 48);
    SimilarityDetector det(rpq, cache, 16);
    Tensor rows = prototypeRows(16, 8, 2, 1e-4f, 7);
    const HitMix a = det.detect(rows).mix();
    const HitMix b = det.detect(rows).mix();
    // Identical passes: the second must not see stale entries.
    EXPECT_EQ(a.hit, b.hit);
    EXPECT_EQ(a.mau, b.mau);
}

TEST(Detector, SmallSetPressureProducesMnu)
{
    MCache cache(1, 2, 1); // two entries total
    RPQEngine rpq(8, 32, 49);
    SimilarityDetector det(rpq, cache, 24);
    Rng rng(8);
    Tensor rows({64, 8});
    rows.fillNormal(rng); // ~64 distinct signatures
    const HitMix m = det.detect(rows).mix();
    EXPECT_GT(m.mnu, 0);
    EXPECT_LE(m.mau, 2);
}

TEST(Detector, SampledMixApproximatesFull)
{
    Tensor rows = prototypeRows(4096, 16, 8, 1e-3f, 9);
    RPQEngine rpq(16, 32, 50);
    MCache cache_a(64, 16, 1), cache_b(64, 16, 1);
    SimilarityDetector full(rpq, cache_a, 20), samp(rpq, cache_b, 20);
    const HitMix f = full.detect(rows).mix();
    const HitMix s = samp.detectSampled(rows, 512);
    EXPECT_EQ(s.vectors, 4096);
    EXPECT_NEAR(s.hitFraction(), f.hitFraction(), 0.08);
}

TEST(Detector, SampledPassThroughWhenSmall)
{
    Tensor rows = prototypeRows(100, 16, 4, 1e-3f, 10);
    RPQEngine rpq(16, 32, 51);
    MCache cache(64, 16, 1);
    SimilarityDetector det(rpq, cache, 20);
    const HitMix a = det.detect(rows).mix();
    const HitMix b = det.detectSampled(rows, 512);
    EXPECT_EQ(a.hit, b.hit);
    EXPECT_EQ(a.vectors, b.vectors);
}

TEST(Detector, WrongDimensionDies)
{
    MCache cache(16, 4, 1);
    RPQEngine rpq(8, 32, 52);
    SimilarityDetector det(rpq, cache, 16);
    Tensor rows({4, 9});
    EXPECT_DEATH(det.detect(rows), "expects");
}

TEST(Detector, BitsOutsideEngineDies)
{
    MCache cache(16, 4, 1);
    RPQEngine rpq(8, 16, 53);
    EXPECT_DEATH(SimilarityDetector(rpq, cache, 17), "range");
}

} // namespace
} // namespace mercury
