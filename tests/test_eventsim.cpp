/**
 * @file
 * Event-model backend tests (src/sim/event_model/ behind
 * sim/cost_model.hpp):
 *
 *  - component contracts: EventLoop (cycle, seq) determinism, DRAM
 *    row-buffer hit/miss and bank-conflict accounting, GlobalBuffer
 *    pending-slot (MSHR) exhaustion, MCACHE insert-queue
 *    serialization against the Dataflow arithmetic, PE-array memory
 *    stalls;
 *  - backend selection: SimConfig::backend and the
 *    MERCURY_SIM_BACKEND environment override;
 *  - the pinned analytic-vs-event agreement band on VGG-13 and
 *    MobileNetV2 forward-only points (the acceptance contract also
 *    enforced by bench/sweep_eventsim);
 *  - workload unification: stepCost(StepPlan) replays the same
 *    descriptors as stepCost(stack), and
 *    describeShapeStack/shapesFromStepDesc round-trip.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/runtime_planner.hpp"
#include "models/model_zoo.hpp"
#include "sim/cost_model.hpp"
#include "sim/cycle_model.hpp"
#include "sim/event_model/dram.hpp"
#include "sim/event_model/event_loop.hpp"
#include "sim/event_model/event_model.hpp"
#include "sim/event_model/global_buffer_sim.hpp"
#include "sim/event_model/mcache_sim.hpp"
#include "sim/event_model/pe_array_sim.hpp"

namespace mercury {
namespace {

// ---- EventLoop -------------------------------------------------------

TEST(EventLoop, FiresInCycleOrderRegardlessOfScheduleOrder)
{
    sim::EventLoop loop;
    std::vector<int> order;
    loop.schedule(30, [&] { order.push_back(3); });
    loop.schedule(10, [&] { order.push_back(1); });
    loop.schedule(20, [&] { order.push_back(2); });
    loop.run();
    ASSERT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(loop.now(), 30u);
    EXPECT_EQ(loop.scheduledEvents(), 3u);
}

TEST(EventLoop, SameCycleEventsFireInScheduleOrder)
{
    sim::EventLoop loop;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        loop.schedule(5, [&order, i] { order.push_back(i); });
    loop.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, CallbacksMayScheduleFurtherEvents)
{
    sim::EventLoop loop;
    int fired = 0;
    loop.schedule(1, [&] {
        ++fired;
        loop.schedule(2, [&] { ++fired; });
    });
    loop.run();
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(loop.empty());
}

// ---- DRAM ------------------------------------------------------------

TEST(DramSim, RowBufferHitIsCheaperThanMiss)
{
    SimConfig sim;
    sim::DramSim dram(sim);
    // Cold bank: row miss (precharge + activate + CAS).
    const uint64_t first = dram.access(0, 0, 64);
    EXPECT_EQ(first,
              static_cast<uint64_t>(sim.dramRowMissCycles) +
                  64 / static_cast<uint64_t>(sim.dramBusBytesPerCycle));
    EXPECT_EQ(dram.stats().rowMisses, 1u);
    // Same row, bank idle again: open-row hit (CAS only).
    const uint64_t t1 = first + 100;
    const uint64_t second = dram.access(t1, 128, 64);
    EXPECT_EQ(second - t1,
              static_cast<uint64_t>(sim.dramRowHitCycles) +
                  64 / static_cast<uint64_t>(sim.dramBusBytesPerCycle));
    EXPECT_EQ(dram.stats().rowHits, 1u);
    EXPECT_EQ(dram.stats().requests, 2u);
    EXPECT_EQ(dram.stats().bytes, 128u);
}

TEST(DramSim, BusyBankChargesBankConflictCycles)
{
    SimConfig sim;
    sim::DramSim dram(sim);
    // Two back-to-back accesses to the same row at the same issue
    // cycle: the second waits for the bank and the wait is counted.
    const uint64_t first = dram.access(0, 0, 64);
    dram.access(0, 64, 64);
    EXPECT_EQ(dram.stats().bankConflictCycles, first);
}

TEST(DramSim, RowChunksIssueAcrossBanksInParallel)
{
    SimConfig sim;
    sim::DramSim dram(sim);
    // Two full rows land in different banks (row interleaving), so
    // the two-row access completes with the slowest chunk, not the
    // sum of both.
    const int64_t two_rows = 2 * sim.dramRowBytes;
    const uint64_t end = dram.access(0, 0, two_rows);
    const uint64_t one_row_cycles =
        static_cast<uint64_t>(sim.dramRowMissCycles) +
        static_cast<uint64_t>(sim.dramRowBytes) /
            static_cast<uint64_t>(sim.dramBusBytesPerCycle);
    EXPECT_EQ(end, one_row_cycles);
    EXPECT_EQ(dram.stats().bankConflictCycles, 0u);
}

// ---- GlobalBuffer ----------------------------------------------------

TEST(GlobalBufferSim, ResidencyRuleIsDoubleBuffered)
{
    SimConfig sim;
    sim::DramSim dram(sim);
    sim::GlobalBufferSim gb(sim, dram);
    EXPECT_TRUE(gb.resident(
        static_cast<int64_t>(sim.gbCapacityBytes / 2)));
    EXPECT_FALSE(gb.resident(
        static_cast<int64_t>(sim.gbCapacityBytes / 2 + 1)));
    EXPECT_FALSE(gb.resident(0));
}

TEST(GlobalBufferSim, ResidentStreamNeverTouchesDram)
{
    SimConfig sim;
    sim::DramSim dram(sim);
    sim::GlobalBufferSim gb(sim, dram);
    gb.stream(0, 0, 4096, true, 8);
    EXPECT_EQ(dram.stats().requests, 0u);
    EXPECT_EQ(gb.stats().fills, 0u);
    EXPECT_EQ(gb.stats().bytes, 4096u);
}

TEST(GlobalBufferSim, ExhaustedPendingSlotsStall)
{
    SimConfig sim;
    sim.gbPendingSlots = 2;
    sim::DramSim dram(sim);
    sim::GlobalBufferSim gb(sim, dram);
    // More miss chunks than pending slots at one issue cycle: the
    // third chunk must wait for a slot, and the wait is counted.
    gb.stream(0, 0, 16 * 1024, false, 8);
    EXPECT_EQ(gb.stats().fills, 8u);
    EXPECT_GT(gb.stats().pendingStallCycles, 0u);

    // With ample slots the same stream never waits on one.
    SimConfig wide = sim;
    wide.gbPendingSlots = 64;
    sim::DramSim dram2(wide);
    sim::GlobalBufferSim gb2(wide, dram2);
    gb2.stream(0, 0, 16 * 1024, false, 8);
    EXPECT_EQ(gb2.stats().pendingStallCycles, 0u);
}

// ---- MCACHE ----------------------------------------------------------

TEST(McacheSim, InsertSerializationMatchesDataflowArithmetic)
{
    SimConfig sim;
    const int sets = 64;
    sim::McacheSim mc(sim, sets);
    const int64_t mau = 1000;
    const uint64_t end = mc.inserts(0, mau);
    // cacheInsertCycles * ceil(mau / sets): the §V set-queue bound,
    // the identical arithmetic to Dataflow::insertOverhead.
    const uint64_t expect =
        static_cast<uint64_t>(sim.cacheInsertCycles) *
        ceilDiv(static_cast<uint64_t>(mau),
                static_cast<uint64_t>(sets));
    EXPECT_EQ(end, expect);
    EXPECT_EQ(mc.stats().insertSerialCycles, expect);
    EXPECT_EQ(mc.stats().inserts, static_cast<uint64_t>(mau));
}

TEST(McacheSim, BackToBackPassesQueueBehindEachOther)
{
    SimConfig sim;
    sim::McacheSim mc(sim, 64);
    const uint64_t first = mc.inserts(0, 640);
    // Issued before the queues drained: serialized behind the first.
    const uint64_t second = mc.inserts(first / 2, 640);
    EXPECT_EQ(second, 2 * first);
}

TEST(McacheSim, DrainBooksSuppliedSerializationCycles)
{
    SimConfig sim;
    sim::McacheSim mc(sim, 64);
    const uint64_t end = mc.drain(100, 32, 17);
    EXPECT_EQ(end, 117u);
    EXPECT_EQ(mc.stats().insertSerialCycles, 17u);
    EXPECT_EQ(mc.stats().inserts, 32u);
    // Zero work is free.
    EXPECT_EQ(mc.drain(end, 0, 0), end);
}

// ---- PE array --------------------------------------------------------

TEST(PeArraySim, CountsMemoryStallsOnly)
{
    sim::PeArraySim pe;
    pe.skipTo(0);
    // Operands late: the idle gap is a memory stall.
    const uint64_t end = pe.executePass(50, 100);
    EXPECT_EQ(end, 150u);
    EXPECT_EQ(pe.stats().memStallCycles, 50u);
    // Operands ready before the array frees: no stall.
    pe.executePass(100, 10);
    EXPECT_EQ(pe.stats().memStallCycles, 50u);
    // skipTo() absorbs inter-layer scheduling gaps.
    pe.skipTo(1000);
    pe.executePass(1000, 5);
    EXPECT_EQ(pe.stats().memStallCycles, 50u);
    EXPECT_EQ(pe.stats().passes, 3u);
}

// ---- Backend selection -----------------------------------------------

TEST(CostModelFactory, SelectsBackendFromConfig)
{
    AcceleratorConfig cfg;
    EXPECT_EQ(sim::CostModel::create(cfg)->backend(),
              SimBackend::Analytic);
    cfg.sim.backend = SimBackend::Event;
    EXPECT_EQ(sim::CostModel::create(cfg)->backend(),
              SimBackend::Event);
    EXPECT_STREQ(sim::resolvedBackendName(cfg), "event");
}

TEST(CostModelFactory, EnvironmentOverridesConfig)
{
    AcceleratorConfig cfg; // analytic by default
    ::setenv("MERCURY_SIM_BACKEND", "event", 1);
    EXPECT_EQ(sim::CostModel::create(cfg)->backend(),
              SimBackend::Event);
    ::setenv("MERCURY_SIM_BACKEND", "analytic", 1);
    cfg.sim.backend = SimBackend::Event;
    EXPECT_EQ(sim::CostModel::create(cfg)->backend(),
              SimBackend::Analytic);
    ::unsetenv("MERCURY_SIM_BACKEND");
}

// ---- Analytic facade equivalence -------------------------------------

TEST(AnalyticModel, StepCostMatchesPlanModelFreeFunction)
{
    AcceleratorConfig cfg;
    cfg.backwardReuse = true;
    cfg.weightGradReuse = true;
    const ModelConfig model = vgg13();
    std::vector<HitMix> mixes;
    for (const LayerShape &s : model.layers)
        mixes.push_back(
            HitMix::fromFractions(s.vectorsPerChannel(), 0.4));
    const std::unique_ptr<sim::CostModel> analytic =
        sim::CostModel::create(cfg);
    const sim::CostBreakdown c =
        analytic->stepCost(model.layers, mixes, 4, 20);
    const PlannedStepModel m =
        modelPlannedStep(cfg, model.layers, mixes, 4, 20);
    EXPECT_EQ(c.barrierCycles, m.barrierCycles);
    EXPECT_EQ(c.plannedCycles, m.plannedCycles);
    EXPECT_EQ(c.setupCycles, m.setupCycles);
    EXPECT_EQ(c.hiddenSignature, m.hiddenSignature);
    EXPECT_EQ(c.fusedEdges, m.fusedEdges);
}

// ---- Analytic-vs-event agreement (the pinned validation points) ------

/** Max |event - analytic| / analytic allowed on the forward-only
 *  points. Forward-only configs are compute-bound, so the event
 *  replay adds only cold-stream stalls — measured max ~0.004. */
constexpr double kAgreementBand = 0.01;

void
expectAgreement(const ModelConfig &model, double hit_frac,
                int64_t batch)
{
    AcceleratorConfig cfg; // forward-only (no replay knobs)
    std::vector<HitMix> mixes;
    for (const LayerShape &s : model.layers)
        mixes.push_back(
            HitMix::fromFractions(s.vectorsPerChannel(), hit_frac));
    cfg.sim.backend = SimBackend::Analytic;
    const std::unique_ptr<sim::CostModel> analytic =
        sim::CostModel::create(cfg);
    cfg.sim.backend = SimBackend::Event;
    const std::unique_ptr<sim::CostModel> event =
        sim::CostModel::create(cfg);

    const sim::CostBreakdown a =
        analytic->stepCost(model.layers, mixes, batch, 20);
    const sim::CostBreakdown e =
        event->stepCost(model.layers, mixes, batch, 20);

    ASSERT_GT(a.plannedCycles, 0u);
    const double dev =
        std::fabs(static_cast<double>(e.plannedCycles) -
                  static_cast<double>(a.plannedCycles)) /
        static_cast<double>(a.plannedCycles);
    EXPECT_LE(dev, kAgreementBand)
        << model.name << " hit=" << hit_frac << ": analytic "
        << a.plannedCycles << " vs event " << e.plannedCycles;
    // Step structure must match exactly — both backends derive it
    // from the same plan-model fusion rule.
    EXPECT_EQ(e.fusedEdges, a.fusedEdges) << model.name;
    EXPECT_EQ(e.hiddenSignature, a.hiddenSignature) << model.name;
    EXPECT_EQ(e.setupCycles, a.setupCycles) << model.name;
    // The aggregate totals stay within the band too.
    const double total_dev =
        std::fabs(static_cast<double>(e.cycles.mercuryTotal()) -
                  static_cast<double>(a.cycles.mercuryTotal())) /
        static_cast<double>(a.cycles.mercuryTotal());
    EXPECT_LE(total_dev, kAgreementBand) << model.name;
}

TEST(Agreement, Vgg13PinnedPoints)
{
    expectAgreement(vgg13(), 0.86, 4);
    expectAgreement(vgg13(), 0.40, 4);
}

TEST(Agreement, MobileNetV2PinnedPoints)
{
    expectAgreement(mobilenetV2(), 0.86, 4);
    expectAgreement(mobilenetV2(), 0.40, 4);
}

TEST(Agreement, SampledFidelityTracksPerPass)
{
    // Sampled fidelity replays two passes per layer and extrapolates;
    // on a compute-bound point it must land within the same band.
    AcceleratorConfig cfg;
    cfg.sim.backend = SimBackend::Event;
    const ModelConfig model = vgg13();
    std::vector<HitMix> mixes;
    for (const LayerShape &s : model.layers)
        mixes.push_back(
            HitMix::fromFractions(s.vectorsPerChannel(), 0.86));
    const std::unique_ptr<sim::CostModel> per_pass =
        sim::CostModel::create(cfg);
    cfg.sim.fidelity = SimFidelity::Sampled;
    const std::unique_ptr<sim::CostModel> sampled =
        sim::CostModel::create(cfg);
    const sim::CostBreakdown full =
        per_pass->stepCost(model.layers, mixes, 4, 20);
    const sim::CostBreakdown fast =
        sampled->stepCost(model.layers, mixes, 4, 20);
    const double dev =
        std::fabs(static_cast<double>(fast.plannedCycles) -
                  static_cast<double>(full.plannedCycles)) /
        static_cast<double>(full.plannedCycles);
    EXPECT_LE(dev, kAgreementBand);
}

TEST(Agreement, EventBackendSeesRecordReplayTraffic)
{
    // With the gradient-replay knobs on, the event backend charges
    // the record write/replay DRAM traffic the analytic model is
    // silent about — the deliberate divergence regime.
    AcceleratorConfig cfg;
    cfg.backwardReuse = true;
    cfg.weightGradReuse = true;
    cfg.sim.backend = SimBackend::Event;
    const ModelConfig model = mobilenetV2();
    std::vector<HitMix> mixes;
    for (const LayerShape &s : model.layers)
        mixes.push_back(
            HitMix::fromFractions(s.vectorsPerChannel(), 0.40));
    const std::unique_ptr<sim::CostModel> event =
        sim::CostModel::create(cfg);
    const sim::CostBreakdown e =
        event->stepCost(model.layers, mixes, 4, 20);
    EXPECT_GT(e.memoryStallCycles, 0u);
    EXPECT_GT(e.components.dram.bytes, 0u);
}

// ---- Workload unification --------------------------------------------

TEST(WorkloadUnification, PlanAndStackOverloadsAgreeOnPoolFreeStack)
{
    // A pool-free conv chain: planLayerStack reconstructs the exact
    // stack, so the two stepCost entry points replay identical
    // descriptors and must agree cycle-for-cycle.
    const std::vector<LayerShape> stack = {
        LayerShape::conv("c0", 3, 16, 16, 16, 3, 1, 1),
        LayerShape::conv("c1", 16, 16, 16, 16, 3, 1, 1),
        LayerShape::fc("fc", 16 * 16 * 16, 10),
    };
    std::vector<HitMix> mixes;
    for (const LayerShape &s : stack)
        mixes.push_back(
            HitMix::fromFractions(s.vectorsPerChannel(), 0.5));

    AcceleratorConfig cfg;
    cfg.sim.backend = SimBackend::Event;
    const std::unique_ptr<sim::CostModel> event =
        sim::CostModel::create(cfg);

    PlanKeyConfig kcfg;
    kcfg.sigBits = 20;
    kcfg.sets = cfg.mcacheSets;
    kcfg.ways = cfg.mcacheWays;
    kcfg.dataVersions = cfg.mcacheDataVersions;
    const std::shared_ptr<const StepPlan> plan =
        RuntimePlanner::compile(describeShapeStack(stack, 4), kcfg);
    ASSERT_TRUE(plan->plannable);
    ASSERT_EQ(plan->layers.size(), stack.size());

    const sim::CostBreakdown from_stack =
        event->stepCost(stack, mixes, 4, 20);
    const sim::CostBreakdown from_plan =
        event->stepCost(*plan, mixes, 20);
    EXPECT_EQ(from_stack.plannedCycles, from_plan.plannedCycles);
    EXPECT_EQ(from_stack.barrierCycles, from_plan.barrierCycles);
    EXPECT_EQ(from_stack.fusedEdges, from_plan.fusedEdges);
    EXPECT_EQ(from_stack.hiddenSignature, from_plan.hiddenSignature);
}

TEST(WorkloadUnification, DescribeShapeStackRoundTrips)
{
    const std::vector<LayerShape> stack = {
        LayerShape::conv("c0", 3, 32, 32, 32, 3, 1, 1),
        LayerShape::pool("p0", 32, 32, 32, 2, 2),
        LayerShape::conv("c1", 32, 64, 16, 16, 3, 1, 1),
        LayerShape::fc("fc", 64 * 16 * 16, 10),
    };
    const StepDescBuilder desc = describeShapeStack(stack, 4);
    const std::vector<LayerShape> back = shapesFromStepDesc(desc);
    ASSERT_EQ(back.size(), stack.size());
    for (size_t i = 0; i < stack.size(); ++i) {
        EXPECT_EQ(back[i].type, stack[i].type) << i;
        EXPECT_EQ(back[i].inChannels, stack[i].inChannels) << i;
        EXPECT_EQ(back[i].outChannels, stack[i].outChannels) << i;
        EXPECT_EQ(back[i].inH, stack[i].inH) << i;
        EXPECT_EQ(back[i].inW, stack[i].inW) << i;
        EXPECT_EQ(back[i].kernel, stack[i].kernel) << i;
        EXPECT_EQ(back[i].inFeatures, stack[i].inFeatures) << i;
        EXPECT_EQ(back[i].outFeatures, stack[i].outFeatures) << i;
    }
}

TEST(WorkloadUnification, ExportedDescriptorsMatchPlanGeometry)
{
    const std::vector<LayerShape> stack = {
        LayerShape::conv("c0", 3, 16, 28, 28, 3, 1, 1),
        LayerShape::conv("c1", 16, 32, 28, 28, 3, 1, 1),
    };
    PlanKeyConfig kcfg;
    kcfg.sigBits = 16;
    const std::shared_ptr<const StepPlan> plan =
        RuntimePlanner::compile(describeShapeStack(stack, 2), kcfg);
    ASSERT_TRUE(plan->plannable);
    const std::vector<PassDescriptor> descs =
        exportPassDescriptors(*plan);
    ASSERT_EQ(descs.size(), 2u);
    EXPECT_EQ(descs[0].passes, 2 * 3);  // batch x inChannels
    EXPECT_EQ(descs[1].passes, 2 * 16);
    EXPECT_EQ(descs[0].inputBytesPerPass, 28 * 28 * 4);
    EXPECT_EQ(descs[0].inputTensorBytes, 2 * 3 * 28 * 28 * 4);
    EXPECT_EQ(descs[1].nextConv, -1);
    EXPECT_EQ(descs[1].prevConv, 0);
}

} // namespace
} // namespace mercury
