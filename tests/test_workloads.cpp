/**
 * @file
 * Tests for the workload generators and similarity profiles: dataset
 * structure, prototype-vector populations, and the synthetic
 * similarity source's calibration behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/mcache.hpp"
#include "core/rpq.hpp"
#include "core/similarity_detector.hpp"
#include "workloads/profiles.hpp"
#include "workloads/synthetic.hpp"

namespace mercury {
namespace {

TEST(Workloads, ImageDatasetShapeAndLabels)
{
    Dataset ds = makeImageDataset(32, 5, 3, 12, 1);
    EXPECT_EQ(ds.inputs.shape(), (std::vector<int64_t>{32, 3, 12, 12}));
    EXPECT_EQ(ds.labels.size(), 32u);
    std::set<int> classes(ds.labels.begin(), ds.labels.end());
    EXPECT_GE(classes.size(), 3u);
    for (int y : ds.labels) {
        EXPECT_GE(y, 0);
        EXPECT_LT(y, 5);
    }
}

TEST(Workloads, ImageDatasetDeterministic)
{
    Dataset a = makeImageDataset(8, 3, 3, 12, 7);
    Dataset b = makeImageDataset(8, 3, 3, 12, 7);
    EXPECT_TRUE(a.inputs == b.inputs);
    EXPECT_EQ(a.labels, b.labels);
}

TEST(Workloads, ImageDatasetIsSpatiallySmooth)
{
    // Neighbouring pixels must be closer than the global spread —
    // the property that makes convolution windows similar.
    Dataset ds = makeImageDataset(4, 2, 1, 16, 9, 0.02f);
    double neighbor = 0.0, global = 0.0;
    int n_count = 0, g_count = 0;
    const Tensor &t = ds.inputs;
    for (int64_t y = 0; y < 15; ++y)
        for (int64_t x = 0; x < 15; ++x) {
            neighbor += std::fabs(t.at4(0, 0, y, x) -
                                  t.at4(0, 0, y, x + 1));
            ++n_count;
            global += std::fabs(t.at4(0, 0, y, x) -
                                t.at4(0, 0, 15 - y, 15 - x));
            ++g_count;
        }
    EXPECT_LT(neighbor / n_count, global / g_count);
}

TEST(Workloads, TokenDatasetShape)
{
    Dataset ds = makeTokenDataset(16, 4, 8, 16, 2);
    EXPECT_EQ(ds.inputs.shape(), (std::vector<int64_t>{16, 128}));
    EXPECT_EQ(ds.labels.size(), 16u);
}

TEST(Workloads, PrototypeVectorsCoverUniques)
{
    Tensor rows = prototypeVectors(100, 8, 10, 0.0f, 3);
    // With zero noise there are exactly 10 distinct rows.
    std::set<std::string> distinct;
    for (int64_t i = 0; i < 100; ++i) {
        std::string key;
        for (int64_t j = 0; j < 8; ++j)
            key += std::to_string(rows.at2(i, j)) + ",";
        distinct.insert(key);
    }
    EXPECT_EQ(distinct.size(), 10u);
}

TEST(Workloads, PrototypeVectorsInvalidUniquesDies)
{
    EXPECT_DEATH(prototypeVectors(10, 8, 0, 0.1f, 1), "uniques");
    EXPECT_DEATH(prototypeVectors(10, 8, 11, 0.1f, 1), "uniques");
}

TEST(Workloads, ZipfConcentratesOnHotPrototypes)
{
    // With a strong Zipf exponent the first prototype must dominate
    // the repeated draws; with uniform popularity it must not.
    const int64_t n = 2000, uniques = 50;
    Tensor zipf_rows = prototypeVectors(n, 4, uniques, 0.0f, 5, 2.0);
    Tensor unif_rows = prototypeVectors(n, 4, uniques, 0.0f, 5, 0.0);
    auto count_matching_first = [&](const Tensor &rows) {
        int hits = 0;
        for (int64_t i = uniques; i < n; ++i) {
            bool same = true;
            for (int64_t j = 0; j < 4; ++j)
                same = same && rows.at2(i, j) == rows.at2(0, j);
            hits += same;
        }
        return hits;
    };
    const int zipf_hot = count_matching_first(zipf_rows);
    const int unif_hot = count_matching_first(unif_rows);
    EXPECT_GT(zipf_hot, 5 * std::max(unif_hot, 1));
    // Uniform assigns ~1/uniques of draws to each prototype.
    EXPECT_NEAR(unif_hot, (n - uniques) / uniques, 30);
}

TEST(Workloads, ZipfStillCoversAllUniques)
{
    Tensor rows = prototypeVectors(200, 4, 20, 0.0f, 6, 1.8);
    std::set<std::string> distinct;
    for (int64_t i = 0; i < 200; ++i) {
        std::string key;
        for (int64_t j = 0; j < 4; ++j)
            key += std::to_string(rows.at2(i, j)) + ",";
        distinct.insert(key);
    }
    EXPECT_EQ(distinct.size(), 20u);
}

TEST(Workloads, PrototypeSimilarityDetectable)
{
    // 25% uniques -> ~75% of vectors should HIT under RPQ detection.
    Tensor rows = prototypeVectors(512, 16, 128, 0.01f, 4);
    MCache cache(64, 16, 1);
    RPQEngine rpq(16, 64, 5);
    SimilarityDetector det(rpq, cache, 20);
    const HitMix mix = det.detect(rows).mix();
    EXPECT_NEAR(mix.hitFraction(), 0.75, 0.1);
}

TEST(Profiles, SpansCalibratedToPaper)
{
    // VGG13 must anchor at the Fig. 1 values.
    const SimilaritySpan in = inputSimilaritySpan("VGG-13");
    EXPECT_NEAR(in.first, 0.75, 1e-9);
    const SimilaritySpan g = gradientSimilaritySpan("VGG-13");
    EXPECT_NEAR(g.first, 0.67, 1e-9);
    // Bigger networks expose more similarity (§VII-A).
    EXPECT_GT(inputSimilaritySpan("ResNet152").first,
              inputSimilaritySpan("ResNet50").first);
    EXPECT_GT(inputSimilaritySpan("VGG-19").first,
              inputSimilaritySpan("VGG-13").first);
}

TEST(Profiles, GradientSimilarityTrailsInput)
{
    for (const auto &m : allModels()) {
        EXPECT_LE(gradientSimilaritySpan(m.name).first,
                  inputSimilaritySpan(m.name).first)
            << m.name;
    }
}

TEST(Profiles, SourceMeasuresNearTarget)
{
    const ModelConfig model = vgg13();
    AcceleratorConfig cfg;
    SyntheticSimilaritySource source(model, cfg, 42);
    const LayerShape &first_conv = model.layers[0];
    const HitMix mix =
        source.channelMix(first_conv, cfg.initialSignatureBits,
                          Phase::Forward);
    const double target =
        source.targetSimilarity(first_conv, Phase::Forward);
    EXPECT_NEAR(mix.hitFraction(), target, 0.15);
}

TEST(Profiles, SimilarityDecaysWithDepth)
{
    const ModelConfig model = vgg13();
    AcceleratorConfig cfg;
    SyntheticSimilaritySource source(model, cfg, 43);
    // First vs last conv layer of VGG13.
    const LayerShape *first = nullptr, *last = nullptr;
    for (const auto &l : model.layers) {
        if (l.type != LayerType::Conv)
            continue;
        if (!first)
            first = &l;
        last = &l;
    }
    ASSERT_NE(first, nullptr);
    const HitMix hi = source.channelMix(*first, 20, Phase::Forward);
    const HitMix lo = source.channelMix(*last, 20, Phase::Forward);
    EXPECT_GT(hi.hitFraction(), lo.hitFraction());
}

TEST(Profiles, LongerSignaturesReduceHits)
{
    const ModelConfig model = vgg13();
    AcceleratorConfig cfg;
    SyntheticSimilaritySource source(model, cfg, 44);
    const LayerShape &conv = model.layers[0];
    const HitMix short_sig = source.channelMix(conv, 16, Phase::Forward);
    const HitMix long_sig = source.channelMix(conv, 64, Phase::Forward);
    EXPECT_GE(short_sig.hitFraction(), long_sig.hitFraction());
}

TEST(Profiles, GradientPhaseHitsLessThanForward)
{
    const ModelConfig model = vgg13();
    AcceleratorConfig cfg;
    SyntheticSimilaritySource source(model, cfg, 45);
    const LayerShape &conv = model.layers[0];
    const HitMix fwd = source.channelMix(conv, 20, Phase::Forward);
    const HitMix bwd =
        source.channelMix(conv, 20, Phase::BackwardWeight);
    EXPECT_GT(fwd.hitFraction(), bwd.hitFraction());
}

TEST(Profiles, MixesAreCachedAndDeterministic)
{
    const ModelConfig model = alexnet();
    AcceleratorConfig cfg;
    SyntheticSimilaritySource s1(model, cfg, 46), s2(model, cfg, 46);
    const LayerShape &conv = model.layers[0];
    const HitMix a = s1.channelMix(conv, 20, Phase::Forward);
    const HitMix b = s1.channelMix(conv, 20, Phase::Forward);
    const HitMix c = s2.channelMix(conv, 20, Phase::Forward);
    EXPECT_EQ(a.hit, b.hit);
    EXPECT_EQ(a.hit, c.hit);
}

} // namespace
} // namespace mercury
