/**
 * @file
 * Tests for the runtime-dispatched SIMD kernel layer: exact
 * AVX2-vs-scalar bit-identity of every KernelOps body across odd
 * shapes and tails, the span-batching helpers, the PassArena /
 * PassDataPlane contracts, and end-to-end engine bit-identity under a
 * forced kernel table.
 *
 * AVX2-specific cases skip (GTEST_SKIP) on hosts without AVX2; the
 * scalar path and the helpers are covered everywhere.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "core/conv_reuse_engine.hpp"
#include "core/fc_engine.hpp"
#include "core/kernels/kernels.hpp"
#include "core/mcache.hpp"
#include "core/pass_arena.hpp"
#include "core/rpq.hpp"
#include "core/signature.hpp"
#include "core/span_batcher.hpp"
#include "util/rng.hpp"

namespace mercury {
namespace {

using kernels::KernelOps;

/** Restores normal dispatch when a forced-table test exits. */
struct ForceGuard
{
    explicit ForceGuard(const KernelOps *t)
    {
        kernels::forceForTesting(t);
    }
    ~ForceGuard() { kernels::forceForTesting(nullptr); }
};

std::vector<float>
randomFloats(int64_t n, uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
    std::vector<float> v(static_cast<size_t>(n));
    for (float &x : v)
        x = dist(rng);
    return v;
}

TEST(Kernels, ScalarTableAlwaysAvailable)
{
    const KernelOps &sc = kernels::scalarOps();
    EXPECT_STREQ(sc.name, "scalar");
    EXPECT_FALSE(sc.wantsInterleaved);
    const KernelOps &active = kernels::ops();
    EXPECT_TRUE(std::string(active.name) == "scalar" ||
                std::string(active.name) == "avx2");
}

TEST(Kernels, ProjectRowsBitIdentity)
{
    const KernelOps *ax = kernels::avx2Ops();
    if (!ax)
        GTEST_SKIP() << "host lacks AVX2";
    const KernelOps &sc = kernels::scalarOps();

    // Odd row counts exercise the 4-row register-tile tail; odd bit
    // counts exercise the 8-filter lane tail; 67 bits exercises
    // multi-word signatures downstream.
    for (int64_t nrows : {1, 3, 7, 33}) {
        for (int64_t d : {9, 16, 25, 27}) {
            for (int bits : {1, 7, 8, 16, 31, 64, 67}) {
                const std::vector<float> rows = randomFloats(
                    nrows * d,
                    1000 + static_cast<uint64_t>(nrows * d * bits));
                std::vector<float> cols(
                    static_cast<size_t>(d) * bits);
                std::vector<float> inter(
                    static_cast<size_t>(d) * bits);
                const std::vector<float> vals = randomFloats(
                    d * bits, 77 + static_cast<uint64_t>(bits));
                for (int n = 0; n < bits; ++n)
                    for (int64_t i = 0; i < d; ++i) {
                        const float v =
                            vals[static_cast<size_t>(n) * d + i];
                        cols[static_cast<size_t>(n) * d + i] = v;
                        inter[static_cast<size_t>(i) * bits + n] = v;
                    }
                std::vector<float> out_sc(
                    static_cast<size_t>(nrows) * bits, -7.0f);
                std::vector<float> out_ax(out_sc);
                sc.projectRows(rows.data(), nrows, d, cols.data(),
                               nullptr, bits, bits, out_sc.data());
                ax->projectRows(rows.data(), nrows, d, cols.data(),
                                inter.data(), bits, bits,
                                out_ax.data());
                // Bit-identity, not tolerance: memcmp the blocks.
                ASSERT_EQ(0, std::memcmp(out_sc.data(), out_ax.data(),
                                         out_sc.size() *
                                             sizeof(float)))
                    << "nrows=" << nrows << " d=" << d
                    << " bits=" << bits;
            }
        }
    }
}

TEST(Kernels, ProjectRowsStridedInterleave)
{
    // inter_stride > bits: the mirror is built for max_bits but a
    // narrower projection reads only the first `bits` lanes.
    const KernelOps *ax = kernels::avx2Ops();
    if (!ax)
        GTEST_SKIP() << "host lacks AVX2";
    const int64_t d = 27, nrows = 13;
    const int max_bits = 48, bits = 19;
    const std::vector<float> rows = randomFloats(nrows * d, 5);
    const std::vector<float> vals = randomFloats(d * max_bits, 6);
    std::vector<float> cols(static_cast<size_t>(d) * max_bits);
    std::vector<float> inter(static_cast<size_t>(d) * max_bits);
    for (int n = 0; n < max_bits; ++n)
        for (int64_t i = 0; i < d; ++i) {
            const float v = vals[static_cast<size_t>(n) * d + i];
            cols[static_cast<size_t>(n) * d + i] = v;
            inter[static_cast<size_t>(i) * max_bits + n] = v;
        }
    std::vector<float> out_sc(static_cast<size_t>(nrows) * bits);
    std::vector<float> out_ax(out_sc);
    kernels::scalarOps().projectRows(rows.data(), nrows, d,
                                     cols.data(), nullptr, max_bits,
                                     bits, out_sc.data());
    ax->projectRows(rows.data(), nrows, d, cols.data(), inter.data(),
                    max_bits, bits, out_ax.data());
    EXPECT_EQ(0, std::memcmp(out_sc.data(), out_ax.data(),
                             out_sc.size() * sizeof(float)));
}

TEST(Kernels, SignPackBitIdentity)
{
    const KernelOps *ax = kernels::avx2Ops();
    if (!ax)
        GTEST_SKIP() << "host lacks AVX2";
    const KernelOps &sc = kernels::scalarOps();
    for (int64_t nrows : {1, 3, 9}) {
        for (int bits : {1, 7, 8, 16, 31, 63, 64, 67, 128, 130}) {
            const int64_t wpr = Signature::wordsFor(bits);
            std::vector<float> proj =
                randomFloats(nrows * bits, 31 * bits + nrows);
            // Plant the trap values: -0.0f must NOT set the bit
            // (matches p < 0.0f), +0.0f must not either.
            proj[0] = -0.0f;
            if (proj.size() > 1)
                proj[1] = 0.0f;
            std::vector<uint64_t> w_sc(
                static_cast<size_t>(nrows * wpr), ~0ull);
            std::vector<uint64_t> w_ax(w_sc);
            sc.signPack(proj.data(), nrows, bits, wpr, w_sc.data());
            ax->signPack(proj.data(), nrows, bits, wpr, w_ax.data());
            ASSERT_EQ(w_sc, w_ax) << "nrows=" << nrows
                                  << " bits=" << bits;
            EXPECT_EQ(0u, w_sc[0] & 1u) << "-0.0f set a sign bit";
            // Unused high bits of the last word must be zero so
            // Signature equality/hash see canonical words.
            if (bits % 64 != 0) {
                const uint64_t mask = ~((1ull << (bits % 64)) - 1);
                for (int64_t r = 0; r < nrows; ++r)
                    EXPECT_EQ(0u,
                              w_sc[static_cast<size_t>(
                                       (r + 1) * wpr - 1)] &
                                  mask);
            }
        }
    }
}

TEST(Kernels, SpanKernelsBitIdentity)
{
    const KernelOps *ax = kernels::avx2Ops();
    if (!ax)
        GTEST_SKIP() << "host lacks AVX2";
    const KernelOps &sc = kernels::scalarOps();
    for (int64_t n : {0, 1, 7, 8, 9, 31, 64, 1000}) {
        const std::vector<float> src = randomFloats(n, 11 + n);
        const std::vector<float> base = randomFloats(n, 13 + n);
        const float a = 1.7f;

        std::vector<float> d1(base), d2(base);
        sc.copySpan(d1.data(), src.data(), n);
        ax->copySpan(d2.data(), src.data(), n);
        ASSERT_EQ(d1, d2) << "copySpan n=" << n;

        d1 = base;
        d2 = base;
        sc.addSpan(d1.data(), src.data(), n);
        ax->addSpan(d2.data(), src.data(), n);
        ASSERT_EQ(d1, d2) << "addSpan n=" << n;

        d1 = base;
        d2 = base;
        sc.scaleSpan(d1.data(), a, src.data(), n);
        ax->scaleSpan(d2.data(), a, src.data(), n);
        ASSERT_EQ(d1, d2) << "scaleSpan n=" << n;

        d1 = base;
        d2 = base;
        sc.axpy(d1.data(), a, src.data(), n);
        ax->axpy(d2.data(), a, src.data(), n);
        ASSERT_EQ(d1, d2) << "axpy n=" << n;
    }
}

TEST(Kernels, ExtractPatchesMatchesNaiveIm2colEverywhere)
{
    // The fused single-touch patch extractor must agree element for
    // element with the textbook im2col loop on every geometry the
    // conv engines use — interior positions, zero-padded borders,
    // strided grids — and on partial [r0, r1) row ranges (the block
    // schedule extracts one detection block at a time).
    struct Geometry
    {
        int64_t h, w, k, stride, pad;
    };
    const Geometry cases[] = {
        {8, 8, 3, 1, 1},  // same-pad 3x3, borders clipped on all sides
        {8, 8, 3, 1, 0},  // valid conv, no padding path at all
        {9, 7, 3, 2, 1},  // strided + odd extent, ragged right edge
        {6, 6, 5, 1, 2},  // kernel wider than the pad on both sides
        {5, 5, 1, 1, 0},  // 1x1: pure row gather
        {7, 4, 3, 2, 2},  // pad >= stride: leading all-zero columns
    };
    const KernelOps *ax = kernels::avx2Ops();
    for (const Geometry &g : cases) {
        const int64_t oh = (g.h + 2 * g.pad - g.k) / g.stride + 1;
        const int64_t ow = (g.w + 2 * g.pad - g.k) / g.stride + 1;
        const int64_t n_rows = oh * ow;
        const int64_t d = g.k * g.k;
        const std::vector<float> plane = randomFloats(
            g.h * g.w, 500 + static_cast<uint64_t>(g.h * g.w * g.k));

        // Naive reference: per-element bounds-checked gather.
        std::vector<float> ref(static_cast<size_t>(n_rows * d), 0.0f);
        for (int64_t r = 0; r < n_rows; ++r)
            for (int64_t ky = 0; ky < g.k; ++ky)
                for (int64_t kx = 0; kx < g.k; ++kx) {
                    const int64_t iy = (r / ow) * g.stride - g.pad + ky;
                    const int64_t ix = (r % ow) * g.stride - g.pad + kx;
                    if (iy < 0 || iy >= g.h || ix < 0 || ix >= g.w)
                        continue;
                    ref[static_cast<size_t>(r * d + ky * g.k + kx)] =
                        plane[static_cast<size_t>(iy * g.w + ix)];
                }

        // Partial ranges too: full pass, a mid-pass block, and the
        // final ragged block.
        const int64_t splits[][2] = {
            {0, n_rows}, {n_rows / 3, 2 * n_rows / 3}, {n_rows - 1, n_rows}};
        for (const auto &s : splits) {
            std::vector<float> got(static_cast<size_t>(n_rows * d),
                                   -7.0f);
            kernels::scalarOps().extractPatches(
                plane.data(), g.h, g.w, ow, g.stride, g.pad, g.k, s[0],
                s[1], got.data());
            for (int64_t r = s[0]; r < s[1]; ++r)
                for (int64_t e = 0; e < d; ++e)
                    ASSERT_EQ(got[static_cast<size_t>(r * d + e)],
                              ref[static_cast<size_t>(r * d + e)])
                        << "scalar h=" << g.h << " w=" << g.w
                        << " k=" << g.k << " stride=" << g.stride
                        << " pad=" << g.pad << " row " << r << " elem "
                        << e;
            if (!ax)
                continue;
            std::vector<float> got_ax(static_cast<size_t>(n_rows * d),
                                      -7.0f);
            ax->extractPatches(plane.data(), g.h, g.w, ow, g.stride,
                               g.pad, g.k, s[0], s[1], got_ax.data());
            ASSERT_EQ(0, std::memcmp(got.data() + s[0] * d,
                                     got_ax.data() + s[0] * d,
                                     static_cast<size_t>((s[1] - s[0]) *
                                                         d) *
                                         sizeof(float)))
                << "avx2 h=" << g.h << " w=" << g.w << " k=" << g.k
                << " stride=" << g.stride << " pad=" << g.pad;
        }
    }
}

TEST(Kernels, ProjectBlockMatchesPerRowProject)
{
    // The engine's blocked front end must agree bit-for-bit with the
    // scalar per-row project() regardless of the dispatched table.
    RPQEngine rpq(27, 40, 99);
    Rng rng(3);
    Tensor rows({21, 27});
    rows.fillNormal(rng);
    for (int bits : {1, 8, 17, 40}) {
        std::vector<float> block(static_cast<size_t>(21) * bits);
        rpq.projectBlock(rows, 0, 21, bits, block.data());
        for (int64_t r = 0; r < 21; ++r)
            for (int n = 0; n < bits; ++n)
                ASSERT_EQ(rpq.project(rows.data() + r * 27, n),
                          block[static_cast<size_t>(r) * bits + n])
                    << "row " << r << " bit " << n;
    }
    // signatureBlock likewise matches signatureOfRow.
    std::vector<Signature> sigs(21);
    rpq.signatureBlock(rows, 0, 21, 40, sigs.data());
    for (int64_t r = 0; r < 21; ++r)
        ASSERT_TRUE(sigs[static_cast<size_t>(r)] ==
                    rpq.signatureOfRow(rows, r, 40));
}

TEST(SpanBatcher, ConsecutiveSpans)
{
    // rows/owners both stepping by one fuse; any break splits.
    const std::vector<int64_t> rows = {2, 3, 4, 6, 7, 9, 10, 11, 15};
    const std::vector<int64_t> owners = {0, 1, 2, 0, 1, 3, 4, 8, 9};
    std::vector<std::pair<int64_t, int64_t>> spans;
    forEachConsecutiveSpan(rows.data(), owners.data(),
                           static_cast<int64_t>(rows.size()),
                           [&](int64_t i0, int64_t i1) {
                               spans.emplace_back(i0, i1);
                           });
    // {2,3,4}<-{0,1,2}; {6,7}<-{0,1}; {9,10}<-{3,4}; {11}<-{8}
    // (rows 10->11 consecutive but owners 4->8 not); {15}<-{9}.
    const std::vector<std::pair<int64_t, int64_t>> expect = {
        {0, 3}, {3, 5}, {5, 7}, {7, 8}, {8, 9}};
    EXPECT_EQ(expect, spans);

    // Empty list: no callbacks.
    forEachConsecutiveSpan(rows.data(), owners.data(), 0,
                           [&](int64_t, int64_t) { FAIL(); });
}

TEST(SpanBatcher, KxSpanClipping)
{
    // k=3, in_w=5, pad=1, stride=1: x=0 clips the left column,
    // x=4 clips the right, interior columns are full.
    EXPECT_EQ(1, kxSpan(0, 1, 1, 3, 5).kx0);
    EXPECT_EQ(3, kxSpan(0, 1, 1, 3, 5).kx1);
    EXPECT_EQ(0, kxSpan(2, 1, 1, 3, 5).kx0);
    EXPECT_EQ(3, kxSpan(2, 1, 1, 3, 5).kx1);
    EXPECT_EQ(0, kxSpan(4, 1, 1, 3, 5).kx0);
    EXPECT_EQ(2, kxSpan(4, 1, 1, 3, 5).kx1);
    // Fully out-of-bounds window is empty (kx0 >= kx1).
    const KxSpan empty = kxSpan(10, 1, 0, 3, 5);
    EXPECT_GE(empty.kx0, empty.kx1);
    // Strided: x=1, stride=2, pad=1 -> base=1, full window.
    EXPECT_EQ(0, kxSpan(1, 2, 1, 3, 5).kx0);
    EXPECT_EQ(3, kxSpan(1, 2, 1, 3, 5).kx1);
}

TEST(PassArena, AlignmentAndReuse)
{
    PassArena arena;
    float *a = arena.floats(100);
    int64_t *b = arena.indices(7);
    uint8_t *c = arena.bytes(3);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(a) % 64);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(b) % 64);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(c) % 64);
    a[99] = 1.0f;
    b[6] = 2;
    c[2] = 3;

    // reset() rewinds without freeing: the same storage comes back.
    arena.reset();
    float *a2 = arena.floats(100);
    EXPECT_EQ(a, a2);

    // An allocation bigger than the chunk gets its own chunk and is
    // still aligned; after reset the sequence replays identically.
    float *big = arena.floats(1 << 18);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(big) % 64);
    big[(1 << 18) - 1] = 4.0f;
    arena.reset();
    EXPECT_EQ(a, arena.floats(100));
    EXPECT_EQ(big, arena.floats(1 << 18));
}

TEST(PassDataPlane, WriteReadInvalidate)
{
    PassDataPlane plane;
    plane.configure(16, 4);
    EXPECT_EQ(16, plane.entries());
    EXPECT_EQ(4, plane.versions());

    float v = 0.0f;
    EXPECT_FALSE(plane.readIfValid(5, 2, v));
    plane.write(5, 2, 1.5f);
    ASSERT_TRUE(plane.readIfValid(5, 2, v));
    EXPECT_EQ(1.5f, v);
    // Neighboring cells in both axes stay invalid.
    EXPECT_FALSE(plane.readIfValid(4, 2, v));
    EXPECT_FALSE(plane.readIfValid(6, 2, v));
    EXPECT_FALSE(plane.readIfValid(5, 1, v));
    EXPECT_FALSE(plane.readIfValid(5, 3, v));

    plane.invalidateAll();
    EXPECT_FALSE(plane.readIfValid(5, 2, v));

    // Growing reconfiguration keeps the shape and clears validity.
    plane.write(0, 0, 2.0f);
    plane.configure(32, 8);
    EXPECT_FALSE(plane.readIfValid(0, 0, v));
    EXPECT_EQ(32, plane.entries());
}

/** Conv forward under a specific kernel table. */
Tensor
convForwardWith(const KernelOps *table, ReuseStats &stats)
{
    ForceGuard guard(table);
    Rng rng(17);
    Tensor in({2, 3, 8, 8});
    // Low-frequency input so HIT forwarding (the span-copy path)
    // actually runs.
    for (int64_t b = 0; b < 2; ++b)
        for (int64_t c = 0; c < 3; ++c) {
            const float base = static_cast<float>(rng.normal());
            for (int64_t y = 0; y < 8; ++y)
                for (int64_t x = 0; x < 8; ++x)
                    in.at4(b, c, y, x) =
                        base +
                        0.01f * static_cast<float>(rng.normal());
        }
    Tensor w({4, 3, 3, 3});
    w.fillNormal(rng);
    ConvSpec spec;
    spec.inChannels = 3;
    spec.outChannels = 4;
    spec.kernelH = spec.kernelW = 3;
    spec.pad = 1;

    MCache cache(256, 8, 4);
    ConvReuseEngine engine(cache, 8, 21);
    return engine.forward(in, w, Tensor(), spec, stats);
}

TEST(Kernels, ConvForwardScalarVsAvx2BitIdentical)
{
    if (!kernels::avx2Ops())
        GTEST_SKIP() << "host lacks AVX2";
    ReuseStats s1, s2;
    const Tensor a = convForwardWith(&kernels::scalarOps(), s1);
    const Tensor b = convForwardWith(kernels::avx2Ops(), s2);
    // Same hit mix (identical signatures) and identical floats.
    EXPECT_EQ(s1.mix.hit, s2.mix.hit);
    EXPECT_GT(s1.mix.hit, 0) << "test shape produced no HITs";
    ASSERT_EQ(a.numel(), b.numel());
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                             static_cast<size_t>(a.numel()) *
                                 sizeof(float)));
}

/** FC forward under a specific kernel table. */
Tensor
fcForwardWith(const KernelOps *table, ReuseStats &stats)
{
    ForceGuard guard(table);
    Rng rng(23);
    Tensor in({24, 16});
    // Duplicate blocks of rows so HIT spans coalesce.
    for (int64_t i = 0; i < 24; ++i)
        for (int64_t j = 0; j < 16; ++j)
            in.at2(i, j) = static_cast<float>((i / 8) + 1) *
                           0.25f * static_cast<float>(j % 5);
    Tensor w({16, 10});
    w.fillNormal(rng);
    MCache cache(128, 8, 4);
    FcEngine engine(cache, 12, 31);
    return engine.forward(in, w, stats);
}

TEST(Kernels, FcForwardScalarVsAvx2BitIdentical)
{
    if (!kernels::avx2Ops())
        GTEST_SKIP() << "host lacks AVX2";
    ReuseStats s1, s2;
    const Tensor a = fcForwardWith(&kernels::scalarOps(), s1);
    const Tensor b = fcForwardWith(kernels::avx2Ops(), s2);
    EXPECT_EQ(s1.mix.hit, s2.mix.hit);
    EXPECT_GT(s1.mix.hit, 0) << "test shape produced no HITs";
    ASSERT_EQ(a.numel(), b.numel());
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                             static_cast<size_t>(a.numel()) *
                                 sizeof(float)));
}

} // namespace
} // namespace mercury
