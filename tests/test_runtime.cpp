/**
 * @file
 * Golden-equivalence suite for ReuseRuntime (core/reuse_runtime.hpp):
 * every engine pass that was ported onto the runtime — conv / FC /
 * attention x forward / backwardInput / backwardWeights|projection —
 * must produce bit-identical outputs AND statistics (mix, macsTotal,
 * macsSkipped, channelPasses) across serial, overlapped, and replay
 * scheduling; zero-hit passes must be bit-identical to the exact
 * tensor ops, including the grouped and depthwise conv descriptors
 * (the MobileNet-style workload). Also: direct scheduler-contract
 * tests (per-filter stream order, group fan-out, beforeGroup hooks),
 * end-to-end training of inverted-residual blocks with all three
 * reuse passes, and a TSan stress for the sanitizer CI job.
 *
 * The pre-refactor engine behavior is pinned twice: the untouched
 * engine suites (test_reuse_engines, test_replay, test_pipeline)
 * still pass against the ported engines, and this file locks the
 * serial == overlapped == exact-op equivalences the port must keep.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "core/attention_engine.hpp"
#include "core/conv_reuse_engine.hpp"
#include "core/fc_engine.hpp"
#include "core/reuse_runtime.hpp"
#include "nn/blocks.hpp"
#include "nn/layers.hpp"
#include "nn/mercury_hooks.hpp"
#include "nn/network.hpp"
#include "pipeline/detection_frontend.hpp"
#include "pipeline/signature_record.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace mercury {
namespace {

constexpr int kSets = 64;
constexpr int kWays = 16;
constexpr int kVersions = 4;
constexpr uint64_t kSeed = 4242;

PipelineConfig
serialPipe()
{
    PipelineConfig pipe;
    pipe.blockRows = 16; // several blocks per pass
    pipe.shards = 4;
    pipe.threads = 1;
    return pipe;
}

PipelineConfig
overlapPipe()
{
    PipelineConfig pipe = serialPipe();
    pipe.threads = 4;
    pipe.overlap = OverlapMode::On;
    return pipe;
}

ConvSpec
convSpec(int64_t cin, int64_t cout, int64_t k, int64_t stride = 1,
         int64_t pad = 0, int64_t groups = 1)
{
    ConvSpec spec;
    spec.inChannels = cin;
    spec.outChannels = cout;
    spec.kernelH = spec.kernelW = k;
    spec.stride = stride;
    spec.pad = pad;
    spec.groups = groups;
    return spec;
}

/** Input whose channel planes are built from a few prototype rows. */
Tensor
similarInput(int64_t n, int64_t c, int64_t h, int64_t w, float eps,
             uint64_t seed)
{
    Rng rng(seed);
    Tensor t({n, c, h, w});
    for (int64_t b = 0; b < n; ++b)
        for (int64_t ch = 0; ch < c; ++ch) {
            const float base = static_cast<float>(rng.normal());
            for (int64_t y = 0; y < h; ++y)
                for (int64_t x = 0; x < w; ++x)
                    t.at4(b, ch, y, x) =
                        base + eps * static_cast<float>(rng.normal());
        }
    return t;
}

/** (n, d) matrix of duplicated prototype rows (guaranteed hits). */
Tensor
duplicateRows(int64_t n, int64_t d, int64_t uniques, uint64_t seed)
{
    Rng rng(seed);
    Tensor proto({uniques, d});
    proto.fillNormal(rng);
    Tensor rows({n, d});
    for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < d; ++j)
            rows.at2(i, j) = proto.at2(i % uniques, j);
    return rows;
}

void
expectStatsEqual(const ReuseStats &a, const ReuseStats &b,
                 const char *what)
{
    EXPECT_EQ(a.mix.vectors, b.mix.vectors) << what;
    EXPECT_EQ(a.mix.hit, b.mix.hit) << what;
    EXPECT_EQ(a.mix.mau, b.mix.mau) << what;
    EXPECT_EQ(a.mix.mnu, b.mix.mnu) << what;
    EXPECT_EQ(a.macsTotal, b.macsTotal) << what;
    EXPECT_EQ(a.macsSkipped, b.macsSkipped) << what;
    EXPECT_EQ(a.channelPasses, b.channelPasses) << what;
}

// ---------------------------------------------------------------------
// Scheduler contract: the runtime's FilterPassSet delivery discipline,
// tested directly against a recorded pass (no engine involved).
// ---------------------------------------------------------------------

TEST(RuntimeScheduler, ChainedSegmentsCoverRowsInStreamOrderPerFilter)
{
    Tensor rows = duplicateRows(100, 10, 6, kSeed);
    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed,
                         overlapPipe());
    SignatureRecord record;
    fe.detect(rows, 24, &record);
    const SignatureRecord::Pass &pass = record.pass(0);

    constexpr int64_t kFilters = 6;
    constexpr int64_t kInFlight = 4;
    std::vector<std::vector<int64_t>> starts(kFilters);
    std::vector<int64_t> covered(kFilters, 0);
    std::atomic<int> before_calls{0};

    ReuseRuntime rt(fe, 24);
    ReuseRuntime::FilterPassSet set;
    set.rows = pass.rows;
    set.filters = kFilters;
    set.inFlight = kInFlight;
    set.segment = [&](int64_t f, int64_t r0, int64_t r1) {
        starts[static_cast<size_t>(f)].push_back(r0);
        covered[static_cast<size_t>(f)] += r1 - r0;
        return static_cast<uint64_t>(0);
    };
    set.beforeGroup = [&](int64_t, int64_t) { before_calls.fetch_add(1); };

    ReuseStats stats;
    rt.runFilterPasses(ReuseRuntime::StreamSource::replay(pass), set,
                       stats);

    // Every filter saw every row exactly once, in ascending order.
    for (int64_t f = 0; f < kFilters; ++f) {
        EXPECT_EQ(covered[static_cast<size_t>(f)], pass.rows) << f;
        EXPECT_TRUE(std::is_sorted(starts[static_cast<size_t>(f)].begin(),
                                   starts[static_cast<size_t>(f)].end()))
            << "filter " << f << " saw blocks out of stream order";
    }
    // One streamed group (no beforeGroup) + one whole-range group.
    EXPECT_EQ(before_calls.load(), 1);
    // The runtime folded the recorded mix into the stats.
    EXPECT_EQ(stats.mix.vectors, pass.mix.vectors);
    EXPECT_EQ(stats.channelPasses, 1);
}

TEST(RuntimeScheduler, SerialModeRunsEveryGroupWithBeforeHook)
{
    Tensor rows = duplicateRows(48, 8, 5, kSeed + 1);
    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed,
                         serialPipe());
    SignatureRecord record;
    fe.detect(rows, 24, &record);
    const SignatureRecord::Pass &pass = record.pass(0);

    std::vector<int64_t> order;
    int before_calls = 0;
    ReuseRuntime rt(fe, 24);
    ReuseRuntime::FilterPassSet set;
    set.rows = pass.rows;
    set.filters = 5;
    set.inFlight = 2;
    set.segment = [&](int64_t f, int64_t r0, int64_t r1) {
        EXPECT_EQ(r0, 0);
        EXPECT_EQ(r1, pass.rows);
        order.push_back(f);
        return static_cast<uint64_t>(0);
    };
    set.beforeGroup = [&](int64_t, int64_t) { ++before_calls; };

    ReuseStats stats;
    rt.runFilterPasses(ReuseRuntime::StreamSource::replay(pass), set,
                       stats);
    // Groups {0,1} {2,3} {4}, filters ascending within each.
    EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
    EXPECT_EQ(before_calls, 3);
}

TEST(RuntimeScheduler, RowPassForwardsAfterOwnersCompute)
{
    Tensor rows = duplicateRows(64, 12, 4, kSeed + 2);
    DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed,
                         overlapPipe());
    SignatureRecord record;
    fe.detect(rows, 20, &record);
    const SignatureRecord::Pass &pass = record.pass(0);
    ASSERT_GT(pass.mix.hit, 0);
    std::vector<int64_t> owner;
    record.ownersOf(pass, owner);

    std::vector<std::atomic<int>> state(64); // 0 empty, 1 computed/copied
    for (auto &s : state)
        s.store(0);
    std::atomic<bool> copy_before_owner{false};

    ReuseRuntime rt(fe, 20);
    ReuseRuntime::RowPass rp;
    rp.ownerOf = [&](int64_t i, const McacheResult &) {
        return owner[static_cast<size_t>(i)];
    };
    rp.computeRow = [&](int64_t i) {
        state[static_cast<size_t>(i)].store(1);
    };
    rp.copyRow = [&](int64_t i, int64_t o) {
        if (state[static_cast<size_t>(o)].load() != 1)
            copy_before_owner.store(true);
        state[static_cast<size_t>(i)].store(1);
    };
    rp.rowSkipCost = 7;

    ReuseStats stats;
    rt.runRows(ReuseRuntime::StreamSource::replay(pass), rp, stats);
    EXPECT_FALSE(copy_before_owner.load())
        << "a HIT row was copied before its owner computed";
    for (int64_t i = 0; i < 64; ++i)
        EXPECT_EQ(state[static_cast<size_t>(i)].load(), 1) << i;
    EXPECT_EQ(stats.macsSkipped,
              static_cast<uint64_t>(pass.mix.hit) * 7u);
}

// ---------------------------------------------------------------------
// Golden equivalence: conv — serial == overlapped outputs AND stats
// for forward, backwardInput, and backwardWeights, across dense,
// strided+padded, grouped, and depthwise geometries.
// ---------------------------------------------------------------------

struct ConvCase
{
    const char *name;
    int64_t cin, cout, k, stride, pad, groups, hw;
};

class RuntimeConvGolden : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(RuntimeConvGolden, SerialEqualsOverlappedAllThreePasses)
{
    const ConvCase &tc = GetParam();
    const ConvSpec spec =
        convSpec(tc.cin, tc.cout, tc.k, tc.stride, tc.pad, tc.groups);
    Tensor in = similarInput(2, tc.cin, tc.hw, tc.hw, 0.02f, kSeed + 10);
    Rng rng(kSeed + 11);
    Tensor w({tc.cout, tc.cin / tc.groups, tc.k, tc.k});
    w.fillNormal(rng);
    Tensor bias({tc.cout});
    bias.fillNormal(rng);
    const int64_t oh = spec.outH(tc.hw), ow = spec.outW(tc.hw);
    Tensor grad({2, tc.cout, oh, ow});
    grad.fillNormal(rng);

    DetectionFrontend serial_fe(kSets, kWays, kVersions, 20, kSeed,
                                serialPipe());
    DetectionFrontend overlap_fe(kSets, kWays, kVersions, 20, kSeed,
                                 overlapPipe());
    ConvReuseEngine serial(serial_fe, 16);
    ConvReuseEngine overlap(overlap_fe, 16);

    ReuseStats sf, of;
    SignatureRecord srec, orec;
    Tensor ys = serial.forward(in, w, bias, spec, sf, &srec);
    Tensor yo = overlap.forward(in, w, bias, spec, of, &orec);
    EXPECT_TRUE(ys == yo) << tc.name << " forward, max diff "
                          << ys.maxAbsDiff(yo);
    expectStatsEqual(sf, of, tc.name);
    ASSERT_GT(sf.mix.hit, 0) << tc.name
                             << ": similar input must produce hits";

    ReuseStats sb, ob;
    Tensor gs = serial.backwardInput(grad, w, spec, tc.hw, tc.hw, srec,
                                     sb);
    Tensor go = overlap.backwardInput(grad, w, spec, tc.hw, tc.hw, orec,
                                      ob);
    EXPECT_TRUE(gs == go) << tc.name << " backwardInput, max diff "
                          << gs.maxAbsDiff(go);
    expectStatsEqual(sb, ob, tc.name);

    ReuseStats sw, ow_;
    Tensor dws = serial.backwardWeights(in, grad, spec, srec, sw);
    Tensor dwo = overlap.backwardWeights(in, grad, spec, orec, ow_);
    EXPECT_TRUE(dws == dwo) << tc.name << " backwardWeights, max diff "
                            << dws.maxAbsDiff(dwo);
    expectStatsEqual(sw, ow_, tc.name);
}

TEST_P(RuntimeConvGolden, ZeroHitBitIdentityToExactOps)
{
    const ConvCase &tc = GetParam();
    const ConvSpec spec =
        convSpec(tc.cin, tc.cout, tc.k, tc.stride, tc.pad, tc.groups);
    Rng rng(kSeed + 20);
    Tensor in({1, tc.cin, tc.hw, tc.hw});
    in.fillNormal(rng); // white noise: no similarity at 32 bits
    Tensor w({tc.cout, tc.cin / tc.groups, tc.k, tc.k});
    w.fillNormal(rng);
    Tensor bias({tc.cout});
    bias.fillNormal(rng);
    const int64_t oh = spec.outH(tc.hw), ow = spec.outW(tc.hw);
    Tensor grad({1, tc.cout, oh, ow});
    grad.fillNormal(rng);

    for (const bool overlapped : {false, true}) {
        DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed,
                             overlapped ? overlapPipe() : serialPipe());
        ConvReuseEngine engine(fe, 32);
        ReuseStats fs;
        SignatureRecord record;
        Tensor y = engine.forward(in, w, bias, spec, fs, &record);
        ASSERT_EQ(fs.mix.hit, 0)
            << tc.name << ": white noise at 32 bits must not hit";
        // Forward accumulates per-channel partials (the Fig. 7
        // per-channel pass structure), so it matches conv2dForward's
        // single accumulation chain to float tolerance, not bit for
        // bit — the same contract test_reuse_engines pins.
        Tensor y_ref = conv2dForward(in, w, bias, spec);
        EXPECT_LT(y.maxAbsDiff(y_ref), 1e-5f)
            << tc.name << (overlapped ? " overlapped" : " serial")
            << " forward";

        ReuseStats bs;
        Tensor gin = engine.backwardInput(grad, w, spec, tc.hw, tc.hw,
                                          record, bs);
        Tensor gin_ref =
            conv2dBackwardInput(grad, w, spec, tc.hw, tc.hw);
        EXPECT_TRUE(gin == gin_ref)
            << tc.name << " backwardInput, max diff "
            << gin.maxAbsDiff(gin_ref);

        ReuseStats ws;
        Tensor dw = engine.backwardWeights(in, grad, spec, record, ws);
        Tensor dw_ref = conv2dBackwardWeight(in, grad, spec);
        EXPECT_TRUE(dw == dw_ref)
            << tc.name << " backwardWeights, max diff "
            << dw.maxAbsDiff(dw_ref);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RuntimeConvGolden,
    ::testing::Values(
        ConvCase{"dense3x3", 4, 6, 3, 1, 1, 1, 8},
        ConvCase{"strided", 4, 6, 3, 2, 1, 1, 9},
        ConvCase{"grouped", 4, 6, 3, 1, 1, 2, 8},
        ConvCase{"depthwise", 6, 6, 3, 1, 1, 6, 8}),
    [](const ::testing::TestParamInfo<ConvCase> &info) {
        return info.param.name;
    });

// ---------------------------------------------------------------------
// Golden equivalence: FC and attention.
// ---------------------------------------------------------------------

TEST(RuntimeFcGolden, SerialEqualsOverlappedAllThreePasses)
{
    Tensor in = duplicateRows(96, 12, 9, kSeed + 30);
    Rng rng(kSeed + 31);
    Tensor w({12, 10});
    w.fillNormal(rng);
    Tensor grad({96, 10});
    grad.fillNormal(rng);

    DetectionFrontend serial_fe(kSets, kWays, kVersions, 20, kSeed,
                                serialPipe());
    DetectionFrontend overlap_fe(kSets, kWays, kVersions, 20, kSeed,
                                 overlapPipe());
    FcEngine serial(serial_fe, 16);
    FcEngine overlap(overlap_fe, 16);

    ReuseStats sf, of;
    std::vector<int64_t> s_owners, o_owners;
    SignatureRecord srec, orec;
    Tensor ys = serial.forward(in, w, sf, &s_owners, &srec);
    Tensor yo = overlap.forward(in, w, of, &o_owners, &orec);
    EXPECT_TRUE(ys == yo) << "fc forward";
    EXPECT_EQ(s_owners, o_owners) << "owner maps must match";
    expectStatsEqual(sf, of, "fc forward");
    ASSERT_GT(sf.mix.hit, 0);

    ReuseStats sb, ob;
    Tensor gs = serial.backwardInput(grad, w, srec, sb);
    Tensor go = overlap.backwardInput(grad, w, orec, ob);
    EXPECT_TRUE(gs == go) << "fc backwardInput";
    expectStatsEqual(sb, ob, "fc backwardInput");

    ReuseStats sw, ow;
    Tensor dws = serial.backwardWeights(in, grad, srec, sw);
    Tensor dwo = overlap.backwardWeights(in, grad, orec, ow);
    EXPECT_TRUE(dws == dwo) << "fc backwardWeights";
    expectStatsEqual(sw, ow, "fc backwardWeights");
}

TEST(RuntimeFcGolden, ZeroHitBitIdentityToExactOps)
{
    Rng rng(kSeed + 40);
    Tensor in({64, 16});
    in.fillNormal(rng);
    Tensor w({16, 12});
    w.fillNormal(rng);
    Tensor grad({64, 12});
    grad.fillNormal(rng);

    for (const bool overlapped : {false, true}) {
        DetectionFrontend fe(kSets, kWays, kVersions, 32, kSeed,
                             overlapped ? overlapPipe() : serialPipe());
        FcEngine engine(fe, 32);
        ReuseStats fs;
        SignatureRecord record;
        Tensor y = engine.forward(in, w, fs, nullptr, &record);
        ASSERT_EQ(fs.mix.hit, 0);
        EXPECT_TRUE(y == matmul(in, w)) << "fc forward";

        ReuseStats bs;
        Tensor gin = engine.backwardInput(grad, w, record, bs);
        EXPECT_TRUE(gin == matmulTransposeB(grad, w))
            << "fc backwardInput";

        ReuseStats ws;
        Tensor dw = engine.backwardWeights(in, grad, record, ws);
        EXPECT_TRUE(dw == matmul(transpose2d(in), grad))
            << "fc backwardWeights";
    }
}

TEST(RuntimeAttentionGolden, SerialEqualsOverlappedAllThreePasses)
{
    Tensor x = duplicateRows(48, 16, 7, kSeed + 50);
    Rng rng(kSeed + 51);
    Tensor grad({48, 16});
    grad.fillNormal(rng);

    DetectionFrontend serial_fe(kSets, kWays, kVersions, 20, kSeed,
                                serialPipe());
    DetectionFrontend overlap_fe(kSets, kWays, kVersions, 20, kSeed,
                                 overlapPipe());
    AttentionEngine serial(serial_fe, 16);
    AttentionEngine overlap(overlap_fe, 16);

    ReuseStats sf, of;
    SignatureRecord srec, orec;
    Tensor ys = serial.forward(x, sf, &srec);
    Tensor yo = overlap.forward(x, of, &orec);
    EXPECT_TRUE(ys == yo) << "attention forward";
    expectStatsEqual(sf, of, "attention forward");
    ASSERT_GT(sf.mix.hit, 0);

    ReuseStats sp, op;
    Tensor xtx_s = serial.backwardProjection(x, srec, 0, sp);
    Tensor xtx_o = overlap.backwardProjection(x, orec, 0, op);
    EXPECT_TRUE(xtx_s == xtx_o) << "attention projection";
    expectStatsEqual(sp, op, "attention projection");

    ReuseStats sb, ob;
    Tensor gs = serial.backward(x, grad, srec, 0, sb, &xtx_s);
    Tensor go = overlap.backward(x, grad, orec, 0, ob, &xtx_o);
    EXPECT_TRUE(gs == go) << "attention backward";
    expectStatsEqual(sb, ob, "attention backward");
}

// ---------------------------------------------------------------------
// End-to-end: MobileNet-style inverted residual blocks train with
// forward + dX + dW reuse through the grouped/depthwise descriptors.
// ---------------------------------------------------------------------

TEST(RuntimeTraining, InvertedResidualTrainsWithFullReuse)
{
    Rng rng(kSeed + 60);
    auto net = std::make_unique<Network>();
    net->add(std::make_unique<Conv2dLayer>(3, 8, 3, 1, 1, rng, 1));
    net->add(std::make_unique<ReluLayer>());
    net->add(std::make_unique<InvertedResidualBlock>(8, 8, 2, 1, rng, 2));
    net->add(std::make_unique<InvertedResidualBlock>(8, 12, 2, 1, rng, 3));
    net->add(std::make_unique<GlobalAvgPoolLayer>());
    net->add(std::make_unique<DenseLayer>(12, 4, rng, 64));

    Dataset ds = makeImageDataset(16, 4, 3, 8, kSeed + 61, 0.02f);
    MercuryContext ctx(16);
    PipelineConfig pipe = overlapPipe();
    ctx.setPipeline(pipe);
    ctx.setBackwardReuse(true);
    ctx.setWeightGradReuse(true);

    float first = 0, last = 0;
    for (int epoch = 0; epoch < 4; ++epoch) {
        const float loss =
            net->trainBatch(ds.inputs, ds.labels, 0.05f, &ctx);
        if (epoch == 0)
            first = loss;
        last = loss;
    }
    EXPECT_LT(last, first) << "reuse-perturbed training must learn";
    // All three passes rode the captured records — including the
    // depthwise convs, whose passes have exactly one filter each.
    EXPECT_GT(ctx.totals().macsSkipped, 0u);
    EXPECT_GT(ctx.backwardTotals().macsSkipped, 0u);
    EXPECT_GT(ctx.weightGradTotals().macsSkipped, 0u);
    EXPECT_GT(ctx.backwardTotals().mix.hit, 0);
}

TEST(RuntimeTraining, DepthwiseReuseMatchesSerialReference)
{
    // The same inverted-residual forward under a serial context and
    // an overlapped one must agree bit for bit (the golden engine
    // equivalences, composed through the NN layer path).
    Dataset ds = makeImageDataset(4, 4, 3, 8, kSeed + 62, 0.02f);

    Rng rng_a(kSeed + 63);
    InvertedResidualBlock a(3, 6, 2, 1, rng_a, 7);
    Rng rng_b(kSeed + 63);
    InvertedResidualBlock b(3, 6, 2, 1, rng_b, 7);

    MercuryContext serial_ctx(16);
    serial_ctx.setPipeline(serialPipe());
    MercuryContext overlap_ctx(16);
    overlap_ctx.setPipeline(overlapPipe());

    Tensor ya = a.forward(ds.inputs, &serial_ctx);
    Tensor yb = b.forward(ds.inputs, &overlap_ctx);
    EXPECT_TRUE(ya == yb) << "max diff " << ya.maxAbsDiff(yb);
}

// ---------------------------------------------------------------------
// Sanitizer stress (TSan CI): hammer the overlapped scheduling of all
// nine ported passes back to back, so chain hand-offs, TaskGroup
// joins, and the MCACHE data plane see real contention.
// ---------------------------------------------------------------------

TEST(RuntimeStress, OverlappedPassesBackToBack)
{
    const ConvSpec spec = convSpec(6, 6, 3, 1, 1, 3);
    Tensor in = similarInput(1, 6, 8, 8, 0.02f, kSeed + 70);
    Rng rng(kSeed + 71);
    Tensor w({6, 2, 3, 3});
    w.fillNormal(rng);
    Tensor grad({1, 6, 8, 8});
    grad.fillNormal(rng);
    Tensor fc_in = duplicateRows(64, 10, 6, kSeed + 72);
    Tensor fc_w({10, 8});
    fc_w.fillNormal(rng);
    Tensor fc_grad({64, 8});
    fc_grad.fillNormal(rng);
    Tensor attn_x = duplicateRows(32, 12, 5, kSeed + 73);
    Tensor attn_grad({32, 12});
    attn_grad.fillNormal(rng);

    DetectionFrontend fe(kSets, kWays, kVersions, 20, kSeed,
                         overlapPipe());
    ConvReuseEngine conv(fe, 16);
    FcEngine fc(fe, 16);
    AttentionEngine attn(fe, 16);

    for (int iter = 0; iter < 3; ++iter) {
        ReuseStats stats;
        SignatureRecord record;
        Tensor y = conv.forward(in, w, Tensor(), spec, stats, &record);
        conv.backwardInput(grad, w, spec, 8, 8, record, stats);
        conv.backwardWeights(in, grad, spec, record, stats);

        fc.forward(fc_in, fc_w, stats, nullptr, &record);
        fc.backwardInput(fc_grad, fc_w, record, stats);
        fc.backwardWeights(fc_in, fc_grad, record, stats);

        // The attention engine appends to the record (its layer
        // clears once per forward invocation) — use a fresh one.
        SignatureRecord attn_record;
        attn.forward(attn_x, stats, &attn_record);
        ReuseStats pstats;
        Tensor xtx =
            attn.backwardProjection(attn_x, attn_record, 0, pstats);
        attn.backward(attn_x, attn_grad, attn_record, 0, pstats, &xtx);
        (void)y;
    }
    SUCCEED();
}

TEST(RuntimeStress, SerialEqualsOverlappedUnderForcedStealing)
{
    // Forced-stealing configuration: more worker threads than the
    // host has cores and tiny blocks, so the streaming schedule
    // floods the work-stealing deques and thieves migrate blocks on
    // every pass. Outputs AND statistics must stay bit-identical to
    // the serial schedule no matter which worker ran which block —
    // the TSan CI job runs this with stealing instrumented.
    PipelineConfig steal_pipe = serialPipe();
    steal_pipe.blockRows = 4; // many small blocks per pass
    steal_pipe.threads = 8;   // oversubscribes every CI host
    steal_pipe.overlap = OverlapMode::On;

    const ConvSpec spec = convSpec(4, 8, 3, 1, 1, 1);
    Tensor in = similarInput(2, 4, 12, 12, 0.02f, kSeed + 80);
    Rng rng(kSeed + 81);
    Tensor w({8, 4, 3, 3});
    w.fillNormal(rng);
    Tensor grad({2, 8, 12, 12});
    grad.fillNormal(rng);
    Tensor fc_in = duplicateRows(96, 12, 6, kSeed + 82);
    Tensor fc_w({12, 10});
    fc_w.fillNormal(rng);
    Tensor fc_grad({96, 10});
    fc_grad.fillNormal(rng);

    DetectionFrontend serial_fe(kSets, kWays, kVersions, 20, kSeed,
                                serialPipe());
    DetectionFrontend steal_fe(kSets, kWays, kVersions, 20, kSeed,
                               steal_pipe);
    ConvReuseEngine serial_conv(serial_fe, 16);
    ConvReuseEngine steal_conv(steal_fe, 16);
    FcEngine serial_fc(serial_fe, 16);
    FcEngine steal_fc(steal_fe, 16);

    for (int iter = 0; iter < 4; ++iter) {
        ReuseStats sf, of;
        SignatureRecord srec, orec;
        Tensor ys = serial_conv.forward(in, w, Tensor(), spec, sf, &srec);
        Tensor yo = steal_conv.forward(in, w, Tensor(), spec, of, &orec);
        ASSERT_TRUE(ys == yo) << "iter " << iter
                              << " conv forward, max diff "
                              << ys.maxAbsDiff(yo);
        expectStatsEqual(sf, of, "stealing conv forward");
        ASSERT_GT(sf.mix.hit, 0) << "reuse must engage for the stress";

        ReuseStats sb, ob;
        Tensor gs =
            serial_conv.backwardInput(grad, w, spec, 12, 12, srec, sb);
        Tensor go =
            steal_conv.backwardInput(grad, w, spec, 12, 12, orec, ob);
        ASSERT_TRUE(gs == go) << "iter " << iter
                              << " conv backwardInput, max diff "
                              << gs.maxAbsDiff(go);
        expectStatsEqual(sb, ob, "stealing conv backwardInput");

        ReuseStats sw, ow_;
        Tensor dws = serial_conv.backwardWeights(in, grad, spec, srec, sw);
        Tensor dwo = steal_conv.backwardWeights(in, grad, spec, orec, ow_);
        ASSERT_TRUE(dws == dwo) << "iter " << iter
                                << " conv backwardWeights, max diff "
                                << dws.maxAbsDiff(dwo);
        expectStatsEqual(sw, ow_, "stealing conv backwardWeights");

        ReuseStats sfc, ofc;
        SignatureRecord sfrec, ofrec;
        Tensor fys = serial_fc.forward(fc_in, fc_w, sfc, nullptr, &sfrec);
        Tensor fyo = steal_fc.forward(fc_in, fc_w, ofc, nullptr, &ofrec);
        ASSERT_TRUE(fys == fyo) << "iter " << iter << " fc forward";
        expectStatsEqual(sfc, ofc, "stealing fc forward");

        ReuseStats sfw, ofw;
        Tensor fdws =
            serial_fc.backwardWeights(fc_in, fc_grad, sfrec, sfw);
        Tensor fdwo = steal_fc.backwardWeights(fc_in, fc_grad, ofrec, ofw);
        ASSERT_TRUE(fdws == fdwo) << "iter " << iter
                                  << " fc backwardWeights";
        expectStatsEqual(sfw, ofw, "stealing fc backwardWeights");
    }
}

} // namespace
} // namespace mercury
