/**
 * @file
 * Tests for the adaptive controller: signature growth on loss
 * plateaus and per-layer stoppage after T costlier batches.
 */

#include <gtest/gtest.h>

#include "core/adaptive.hpp"

namespace mercury {
namespace {

AcceleratorConfig
cfgWith(int k, int t, int init_bits = 20, int max_bits = 64)
{
    AcceleratorConfig cfg;
    cfg.plateauK = k;
    cfg.stoppageT = t;
    cfg.initialSignatureBits = init_bits;
    cfg.maxSignatureBits = max_bits;
    return cfg;
}

TEST(Adaptive, StartsAtInitialBits)
{
    AdaptiveController a(cfgWith(3, 2), 4);
    EXPECT_EQ(a.signatureBits(), 20);
    EXPECT_EQ(a.numLayers(), 4);
    EXPECT_EQ(a.layersOn(), 4);
}

TEST(Adaptive, DecreasingLossKeepsBits)
{
    AdaptiveController a(cfgWith(3, 2), 1);
    double loss = 2.0;
    for (int i = 0; i < 50; ++i) {
        a.observeLoss(loss);
        loss *= 0.9; // clearly decreasing
    }
    EXPECT_EQ(a.signatureBits(), 20);
}

TEST(Adaptive, FlatLossGrowsBitsAfterK)
{
    AdaptiveController a(cfgWith(3, 2), 1);
    a.observeLoss(1.0);
    a.observeLoss(1.0); // flat 1
    a.observeLoss(1.0); // flat 2
    EXPECT_EQ(a.signatureBits(), 20);
    a.observeLoss(1.0); // flat 3 == K -> grow
    EXPECT_EQ(a.signatureBits(), 21);
}

TEST(Adaptive, GrowthRepeatsEveryKFlat)
{
    AdaptiveController a(cfgWith(2, 2), 1);
    for (int i = 0; i < 9; ++i)
        a.observeLoss(1.0);
    // 8 flat observations, K=2 -> 4 increments.
    EXPECT_EQ(a.signatureBits(), 24);
}

TEST(Adaptive, BitsSaturateAtMax)
{
    AdaptiveController a(cfgWith(1, 2, 20, 22), 1);
    for (int i = 0; i < 50; ++i)
        a.observeLoss(1.0);
    EXPECT_EQ(a.signatureBits(), 22);
}

TEST(Adaptive, NoiseResetsPlateau)
{
    AdaptiveController a(cfgWith(3, 2), 1);
    a.observeLoss(1.0);
    a.observeLoss(1.0);
    a.observeLoss(1.0);
    a.observeLoss(2.0); // big change resets the plateau counter
    a.observeLoss(2.0);
    a.observeLoss(2.0);
    EXPECT_EQ(a.signatureBits(), 20);
    a.observeLoss(2.0);
    EXPECT_EQ(a.signatureBits(), 21);
}

TEST(Adaptive, LayerTurnsOffAfterTCostlierBatches)
{
    AdaptiveController a(cfgWith(3, 3), 2);
    for (int i = 0; i < 2; ++i) {
        a.observeLayerCycles(0, 110, 100); // costlier
        EXPECT_TRUE(a.layerOn(0));
    }
    a.observeLayerCycles(0, 110, 100); // third in a row
    EXPECT_FALSE(a.layerOn(0));
    EXPECT_TRUE(a.layerOn(1));
    EXPECT_EQ(a.layersOn(), 1);
    EXPECT_EQ(a.layersOff(), 1);
}

TEST(Adaptive, CheaperBatchResetsStreak)
{
    AdaptiveController a(cfgWith(3, 3), 1);
    a.observeLayerCycles(0, 110, 100);
    a.observeLayerCycles(0, 110, 100);
    a.observeLayerCycles(0, 90, 100); // cheaper -> reset
    a.observeLayerCycles(0, 110, 100);
    a.observeLayerCycles(0, 110, 100);
    EXPECT_TRUE(a.layerOn(0));
    a.observeLayerCycles(0, 110, 100);
    EXPECT_FALSE(a.layerOn(0));
}

TEST(Adaptive, OffLayersStayOff)
{
    AdaptiveController a(cfgWith(3, 1), 1);
    a.observeLayerCycles(0, 110, 100);
    EXPECT_FALSE(a.layerOn(0));
    a.observeLayerCycles(0, 50, 100); // would be profitable again
    EXPECT_FALSE(a.layerOn(0));
}

TEST(Adaptive, EqualCostCountsAsCostlier)
{
    // CS == CB means detection saved nothing: counts toward stoppage.
    AdaptiveController a(cfgWith(3, 1), 1);
    a.observeLayerCycles(0, 100, 100);
    EXPECT_FALSE(a.layerOn(0));
}

TEST(Adaptive, InvalidLayerDies)
{
    AdaptiveController a(cfgWith(3, 2), 2);
    EXPECT_DEATH(a.observeLayerCycles(2, 1, 1), "out of range");
    EXPECT_DEATH(a.layerOn(-1), "out of range");
}

TEST(Adaptive, InvalidConfigDies)
{
    AcceleratorConfig cfg;
    cfg.initialSignatureBits = 0;
    EXPECT_DEATH(AdaptiveController(cfg, 1), "signature bits");
}

} // namespace
} // namespace mercury
