/**
 * @file
 * Unit tests for the util substrate: deterministic RNG, statistics,
 * and table rendering.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace mercury {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestoresStream)
{
    Rng a(7);
    std::vector<uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next64());
    a.seed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next64(), first[static_cast<size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(4);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-2.5, 7.5);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 7.5);
    }
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng r(5);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversAllResidues)
{
    Rng r(6);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.uniformInt(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMomentsAreStandard)
{
    Rng r(8);
    std::vector<double> xs;
    for (int i = 0; i < 50000; ++i)
        xs.push_back(r.normal());
    EXPECT_NEAR(mean(xs), 0.0, 0.02);
    EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(Rng, NormalScalesMeanAndStddev)
{
    Rng r(9);
    std::vector<double> xs;
    for (int i = 0; i < 50000; ++i)
        xs.push_back(r.normal(5.0, 2.0));
    EXPECT_NEAR(mean(xs), 5.0, 0.05);
    EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng r(10);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(11);
    Rng child = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next64() == child.next64();
    EXPECT_LT(same, 3);
}

TEST(Rng, FillNormalFillsEveryElement)
{
    Rng r(12);
    std::vector<float> v(64, 0.0f);
    r.fillNormal(v);
    int nonzero = 0;
    for (float x : v)
        nonzero += x != 0.0f;
    EXPECT_GT(nonzero, 60);
}

TEST(Stats, StatAccumulates)
{
    Stat s;
    s += 2.0;
    s++;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, GroupCreatesAndFinds)
{
    StatGroup g("core");
    g.stat("hits") += 3;
    EXPECT_TRUE(g.has("hits"));
    EXPECT_FALSE(g.has("misses"));
    EXPECT_DOUBLE_EQ(g.get("hits").value(), 3.0);
}

TEST(Stats, GroupResetAll)
{
    StatGroup g;
    g.stat("a") += 1;
    g.stat("b") += 2;
    g.resetAll();
    EXPECT_DOUBLE_EQ(g.get("a").value(), 0.0);
    EXPECT_DOUBLE_EQ(g.get("b").value(), 0.0);
}

TEST(Stats, GroupNamesSorted)
{
    StatGroup g;
    g.stat("zeta");
    g.stat("alpha");
    auto names = g.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "zeta");
}

TEST(Stats, GroupDumpContainsValues)
{
    StatGroup g;
    g.stat("cycles") += 42;
    EXPECT_NE(g.dump().find("cycles 42"), std::string::npos);
}

TEST(Stats, GeomeanOfEqualValues)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
}

TEST(Stats, GeomeanKnownValue)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
}

TEST(Stats, MeanAndStddevKnownValues)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_NEAR(stddev({2.0, 4.0}), 1.0, 1e-12);
}

TEST(Stats, GeomeanDeathOnEmpty)
{
    EXPECT_DEATH(geomean({}), "geomean");
}

TEST(Stats, GeomeanDeathOnNonPositive)
{
    EXPECT_DEATH(geomean({1.0, 0.0}), "positive");
}

TEST(Table, AlignsColumns)
{
    Table t("demo");
    t.header({"model", "speedup"});
    t.row({"VGG13", "1.89"});
    t.row({"AlexNet", "1.50"});
    const std::string s = t.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("VGG13"), std::string::npos);
    EXPECT_NE(s.find("AlexNet"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvRendersRows)
{
    Table t;
    t.header({"a", "b"});
    t.row({"1", "2"});
    EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(1.975, 2), "1.98");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, CountGroupsThousands)
{
    EXPECT_EQ(Table::count(1234567), "1,234,567");
    EXPECT_EQ(Table::count(12), "12");
    EXPECT_EQ(Table::count(0), "0");
}

} // namespace
} // namespace mercury
