/**
 * @file
 * Unit tests for the util substrate: deterministic RNG, statistics,
 * table rendering, and the pool composition helpers (TaskGroup,
 * SerialExecutor) that the streaming reuse passes are built on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "util/executors.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace mercury {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestoresStream)
{
    Rng a(7);
    std::vector<uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next64());
    a.seed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next64(), first[static_cast<size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(4);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-2.5, 7.5);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 7.5);
    }
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng r(5);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversAllResidues)
{
    Rng r(6);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.uniformInt(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMomentsAreStandard)
{
    Rng r(8);
    std::vector<double> xs;
    for (int i = 0; i < 50000; ++i)
        xs.push_back(r.normal());
    EXPECT_NEAR(mean(xs), 0.0, 0.02);
    EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(Rng, NormalScalesMeanAndStddev)
{
    Rng r(9);
    std::vector<double> xs;
    for (int i = 0; i < 50000; ++i)
        xs.push_back(r.normal(5.0, 2.0));
    EXPECT_NEAR(mean(xs), 5.0, 0.05);
    EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng r(10);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(11);
    Rng child = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next64() == child.next64();
    EXPECT_LT(same, 3);
}

TEST(Rng, FillNormalFillsEveryElement)
{
    Rng r(12);
    std::vector<float> v(64, 0.0f);
    r.fillNormal(v);
    int nonzero = 0;
    for (float x : v)
        nonzero += x != 0.0f;
    EXPECT_GT(nonzero, 60);
}

TEST(Stats, StatAccumulates)
{
    Stat s;
    s += 2.0;
    s++;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, GroupCreatesAndFinds)
{
    StatGroup g("core");
    g.stat("hits") += 3;
    EXPECT_TRUE(g.has("hits"));
    EXPECT_FALSE(g.has("misses"));
    EXPECT_DOUBLE_EQ(g.get("hits").value(), 3.0);
}

TEST(Stats, GroupResetAll)
{
    StatGroup g;
    g.stat("a") += 1;
    g.stat("b") += 2;
    g.resetAll();
    EXPECT_DOUBLE_EQ(g.get("a").value(), 0.0);
    EXPECT_DOUBLE_EQ(g.get("b").value(), 0.0);
}

TEST(Stats, GroupNamesSorted)
{
    StatGroup g;
    g.stat("zeta");
    g.stat("alpha");
    auto names = g.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "zeta");
}

TEST(Stats, GroupDumpContainsValues)
{
    StatGroup g;
    g.stat("cycles") += 42;
    EXPECT_NE(g.dump().find("cycles 42"), std::string::npos);
}

TEST(Stats, GeomeanOfEqualValues)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
}

TEST(Stats, GeomeanKnownValue)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
}

TEST(Stats, MeanAndStddevKnownValues)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_NEAR(stddev({2.0, 4.0}), 1.0, 1e-12);
}

TEST(Stats, GeomeanDeathOnEmpty)
{
    EXPECT_DEATH(geomean({}), "geomean");
}

TEST(Stats, GeomeanDeathOnNonPositive)
{
    EXPECT_DEATH(geomean({1.0, 0.0}), "positive");
}

TEST(Table, AlignsColumns)
{
    Table t("demo");
    t.header({"model", "speedup"});
    t.row({"VGG13", "1.89"});
    t.row({"AlexNet", "1.50"});
    const std::string s = t.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("VGG13"), std::string::npos);
    EXPECT_NE(s.find("AlexNet"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvRendersRows)
{
    Table t;
    t.header({"a", "b"});
    t.row({"1", "2"});
    EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(1.975, 2), "1.98");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, CountGroupsThousands)
{
    EXPECT_EQ(Table::count(1234567), "1,234,567");
    EXPECT_EQ(Table::count(12), "12");
    EXPECT_EQ(Table::count(0), "0");
}

// ---------------------------------------------------------------------
// Executors (util/executors.hpp): the ordering primitives under the
// streaming reuse passes. SerialExecutor must run one chain's tasks
// strictly in submission order with no overlap (the MCACHE
// owner-before-hit discipline hangs off this); TaskGroup must join
// everything submitted, from any thread.
// ---------------------------------------------------------------------

TEST(SerialExecutor, RunsTasksInSubmissionOrderWithoutOverlap)
{
    ThreadPool pool(3);
    SerialExecutor chain(&pool);
    std::vector<int> order;
    std::atomic<int> in_flight{0};
    std::atomic<bool> overlapped{false};
    for (int i = 0; i < 64; ++i) {
        chain.run([&, i] {
            if (in_flight.fetch_add(1) != 0)
                overlapped.store(true);
            order.push_back(i); // safe iff tasks never overlap
            in_flight.fetch_sub(1);
        });
    }
    chain.wait();
    EXPECT_FALSE(overlapped.load());
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);

    // Two executors on one pool do run concurrently with each other;
    // their combined task count still adds up.
    SerialExecutor a(&pool), b(&pool);
    std::atomic<int> ran{0};
    for (int i = 0; i < 32; ++i) {
        a.run([&] { ran.fetch_add(1); });
        b.run([&] { ran.fetch_add(1); });
    }
    a.wait();
    b.wait();
    EXPECT_EQ(ran.load(), 64);
}

TEST(SerialExecutor, NullPoolRunsInlineInOrder)
{
    SerialExecutor chain(nullptr);
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        chain.run([&, i] { order.push_back(i); });
    chain.wait(); // no-op: everything already ran inline
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SerialExecutor, ReusableAfterWaitAndDrainsOnDestruction)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    {
        SerialExecutor chain(&pool);
        for (int i = 0; i < 16; ++i)
            chain.run([&] { ran.fetch_add(1); });
        chain.wait();
        EXPECT_EQ(ran.load(), 16);
        // A drained chain accepts more work.
        for (int i = 0; i < 16; ++i)
            chain.run([&] { ran.fetch_add(1); });
        // Destructor drains the outstanding tail.
    }
    EXPECT_EQ(ran.load(), 32);
}

TEST(SerialExecutor, ManyChainsInterleaveButStayInternallyOrdered)
{
    // The conv pass shape: one chain per in-flight filter, every
    // chain receiving every block in stream order. Each chain records
    // the block sequence it saw; all must equal the submission order.
    constexpr int kChains = 4;
    constexpr int kBlocks = 100;
    ThreadPool pool(3);
    std::vector<std::unique_ptr<SerialExecutor>> chains;
    std::vector<std::vector<int>> seen(kChains);
    for (int c = 0; c < kChains; ++c)
        chains.push_back(std::make_unique<SerialExecutor>(&pool));
    for (int b = 0; b < kBlocks; ++b)
        for (int c = 0; c < kChains; ++c)
            chains[static_cast<size_t>(c)]->run(
                [&seen, c, b] { seen[static_cast<size_t>(c)].push_back(b); });
    for (auto &chain : chains)
        chain->wait();
    for (int c = 0; c < kChains; ++c) {
        ASSERT_EQ(seen[static_cast<size_t>(c)].size(),
                  static_cast<size_t>(kBlocks));
        for (int b = 0; b < kBlocks; ++b)
            EXPECT_EQ(seen[static_cast<size_t>(c)][static_cast<size_t>(b)],
                      b);
    }
}

TEST(TaskGroup, JoinsAllSubmittedTasks)
{
    ThreadPool pool(2);
    TaskGroup group(&pool);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        group.run([&] { ran.fetch_add(1); });
    group.wait();
    EXPECT_EQ(ran.load(), 100);
    // A group is reusable after a wait.
    group.run([&] { ran.fetch_add(1); });
    group.wait();
    EXPECT_EQ(ran.load(), 101);
    // Null pool: inline execution.
    TaskGroup inline_group(nullptr);
    inline_group.run([&] { ran.fetch_add(1); });
    inline_group.wait();
    EXPECT_EQ(ran.load(), 102);
}

TEST(TaskGroup, SubmitFromInsideATaskIsJoined)
{
    // The streaming pipeline's self-replenishing hash chain submits
    // the next hash task from inside the current one; wait() must
    // cover tasks enqueued that way too.
    ThreadPool pool(2);
    TaskGroup group(&pool);
    std::atomic<int> ran{0};
    group.run([&] {
        ran.fetch_add(1);
        group.run([&] {
            ran.fetch_add(1);
            group.run([&] { ran.fetch_add(1); });
        });
    });
    group.wait();
    EXPECT_EQ(ran.load(), 3);
}

// ---------------------------------------------------------------------
// ThreadPool (util/thread_pool.hpp): the work-stealing substrate's
// scheduler contracts. Stealing may reorder a pool's tasks freely but
// must never break a SerialExecutor chain's submission order; inline
// execution is worker-only and depth-bounded; park/wake must survive
// repeated idle/burst cycles without losing tasks.
// ---------------------------------------------------------------------

TEST(ThreadPool, StealingRedistributesWorkWithoutBreakingChainOrder)
{
    // Fan a noise wave out from inside one worker task so the whole
    // wave lands in that worker's own deque and the other workers have
    // to steal it, while a SerialExecutor chain runs alongside. The
    // chain contract must hold no matter which worker a stolen pump
    // lands on.
    ThreadPool pool(3);
    SerialExecutor chain(&pool);
    TaskGroup noise(&pool);
    std::vector<int> order;
    std::atomic<int> noise_ran{0};
    int blocks = 0;
    for (int round = 0; round < 50; ++round) {
        noise.run([&] {
            for (int i = 0; i < 64; ++i)
                noise.run([&] {
                    noise_ran.fetch_add(1);
                    std::this_thread::yield();
                });
        });
        for (int b = 0; b < 16; ++b, ++blocks)
            chain.run([&order, blocks] { order.push_back(blocks); });
        noise.wait();
        chain.wait();
        if (pool.stealCount() > 0 && round >= 4)
            break;
    }
    EXPECT_GT(pool.stealCount(), 0); // the sweep actually migrated work
    ASSERT_EQ(order.size(), static_cast<size_t>(blocks));
    for (int b = 0; b < blocks; ++b)
        EXPECT_EQ(order[static_cast<size_t>(b)], b);
    EXPECT_EQ(noise_ran.load() % 64, 0);
}

TEST(ThreadPool, InlineExecutionIsDepthBounded)
{
    // A self-replenishing chain on a 1-worker pool: every nested
    // submit sees zero idle peers, so the worker runs it inline until
    // the per-thread depth budget is spent, then queues. The observed
    // nesting must stay at (outer frame + kMaxInlineDepth) and the
    // whole chain must still complete.
    ThreadPool pool(1);
    TaskGroup group(&pool);
    std::atomic<int> depth{0};
    std::atomic<int> max_depth{0};
    std::atomic<int> remaining{64};
    std::function<void()> task = [&] {
        const int d = depth.fetch_add(1) + 1;
        int seen = max_depth.load();
        while (d > seen && !max_depth.compare_exchange_weak(seen, d)) {
        }
        if (remaining.fetch_sub(1) > 1)
            group.run(task);
        depth.fetch_sub(1);
    };
    group.run(task);
    group.wait();
    EXPECT_EQ(remaining.load(), 0);
    EXPECT_GT(max_depth.load(), 1); // inlining did engage
    EXPECT_LE(max_depth.load(), 1 + ThreadPool::kMaxInlineDepth);
    EXPECT_GT(pool.inlineRuns(), 0);
}

TEST(ThreadPool, NonWorkerSubmitIsAsynchronousEvenWhenSaturated)
{
    // The serve-backpressure contract: an outside thread's submit()
    // must return before the task executes even when every worker is
    // busy — SessionHandle's bounded queue and SerialExecutor::run
    // both rely on it. Block the sole worker, submit from the test
    // thread, and verify nothing ran inline here.
    ThreadPool pool(1);
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    std::atomic<bool> blocked{false};
    pool.submit([&] {
        blocked.store(true);
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return release; });
    });
    while (!blocked.load())
        std::this_thread::yield();
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 0); // queued behind the blocked worker
    EXPECT_EQ(pool.inlineRuns(), 0);
    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    for (int spin = 0; ran.load() != 8 && spin < 20000; ++spin)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ParkWakeSurvivesRepeatedIdleBurstCycles)
{
    // Alternate idle gaps (long enough for workers to park) with
    // submitBatch bursts; every burst must be fully delivered — the
    // Dekker park/submit handshake may never strand a wave on a
    // parked pool.
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    constexpr int kRounds = 12;
    constexpr int kBurst = 48;
    for (int round = 0; round < kRounds; ++round) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        std::vector<std::function<void()>> batch;
        for (int i = 0; i < kBurst; ++i)
            batch.push_back([&] { ran.fetch_add(1); });
        pool.submitBatch(std::move(batch));
        const int expected = (round + 1) * kBurst;
        for (int spin = 0; ran.load() < expected && spin < 20000; ++spin)
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        ASSERT_EQ(ran.load(), expected) << "burst lost in round " << round;
    }
}

} // namespace
} // namespace mercury
