#include "sim/event_model/dram.hpp"

#include <algorithm>

#include "sim/cycle_model.hpp"

namespace mercury {
namespace sim {

DramSim::DramSim(const SimConfig &sim) : sim_(sim)
{
    banks_.resize(static_cast<size_t>(std::max(1, sim_.dramBanks)));
}

uint64_t
DramSim::access(uint64_t start, uint64_t addr, int64_t bytes)
{
    if (bytes <= 0)
        return start;
    ++stats_.requests;
    stats_.bytes += static_cast<uint64_t>(bytes);

    uint64_t done = start;
    int64_t remaining = bytes;
    uint64_t a = addr;
    const int64_t row_bytes = std::max<int64_t>(1, sim_.dramRowBytes);
    while (remaining > 0) {
        const int64_t row = static_cast<int64_t>(a) / row_bytes;
        const int64_t in_row =
            std::min(remaining, row_bytes - static_cast<int64_t>(a) %
                                                row_bytes);
        Bank &bank = banks_[static_cast<size_t>(
            row % static_cast<int64_t>(banks_.size()))];

        const uint64_t t0 = std::max(start, bank.busyUntil);
        stats_.bankConflictCycles += t0 - start;
        const bool hit = bank.openRow == row;
        hit ? ++stats_.rowHits : ++stats_.rowMisses;
        const uint64_t latency =
            static_cast<uint64_t>(hit ? sim_.dramRowHitCycles
                                      : sim_.dramRowMissCycles) +
            ceilDiv(static_cast<uint64_t>(in_row),
                    static_cast<uint64_t>(
                        std::max(1, sim_.dramBusBytesPerCycle)));
        bank.busyUntil = t0 + latency;
        bank.openRow = row;
        stats_.busyCycles += latency;
        done = std::max(done, bank.busyUntil);

        a += static_cast<uint64_t>(in_row);
        remaining -= in_row;
    }
    return done;
}

} // namespace sim
} // namespace mercury
