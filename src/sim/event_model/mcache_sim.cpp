#include "sim/event_model/mcache_sim.hpp"

#include <algorithm>

#include "sim/cycle_model.hpp"

namespace mercury {
namespace sim {

McacheSim::McacheSim(const SimConfig &sim, int sets)
    : sim_(sim), sets_(std::max(1, sets))
{
}

void
McacheSim::probes(int64_t rows, int64_t hits)
{
    stats_.probes += static_cast<uint64_t>(std::max<int64_t>(0, rows));
    stats_.hits += static_cast<uint64_t>(std::max<int64_t>(0, hits));
}

uint64_t
McacheSim::inserts(uint64_t start, int64_t mau)
{
    if (mau <= 0)
        return start;
    stats_.inserts += static_cast<uint64_t>(mau);
    const uint64_t serial =
        static_cast<uint64_t>(std::max(0, sim_.cacheInsertCycles)) *
        ceilDiv(static_cast<uint64_t>(mau),
                static_cast<uint64_t>(sets_));
    const uint64_t t0 = std::max(start, queueFree_);
    queueFree_ = t0 + serial;
    stats_.insertSerialCycles += serial;
    return queueFree_;
}

uint64_t
McacheSim::drain(uint64_t start, int64_t mau, uint64_t serial_cycles)
{
    if (mau <= 0 && serial_cycles == 0)
        return start;
    if (mau > 0)
        stats_.inserts += static_cast<uint64_t>(mau);
    const uint64_t t0 = std::max(start, queueFree_);
    queueFree_ = t0 + serial_cycles;
    stats_.insertSerialCycles += serial_cycles;
    return queueFree_;
}

} // namespace sim
} // namespace mercury
