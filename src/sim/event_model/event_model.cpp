#include "sim/event_model/event_model.hpp"

#include <algorithm>

#include "core/runtime_planner.hpp"
#include "sim/event_model/dram.hpp"
#include "sim/event_model/event_loop.hpp"
#include "sim/event_model/global_buffer_sim.hpp"
#include "sim/event_model/mcache_sim.hpp"
#include "sim/event_model/pe_array_sim.hpp"
#include "util/logging.hpp"

namespace mercury {
namespace sim {

namespace {

/** Record-hold budget of the fallback descriptors (the planner's
 *  kHoldRecordBytes; compiled plans carry their own decision). */
constexpr uint64_t kFallbackHoldRecordBytes = 8ull << 20;

ComponentStats
gather(const DramSim &dram, const GlobalBufferSim &gb,
       const McacheSim &mc, const PeArraySim &pe)
{
    ComponentStats s;
    s.dram = dram.stats();
    s.gbuf = gb.stats();
    s.mcache = mc.stats();
    s.pe = pe.stats();
    return s;
}

/** after - before, field-wise (Sampled-fidelity extrapolation). */
ComponentStats
statsDelta(const ComponentStats &after, const ComponentStats &before)
{
    ComponentStats d;
    d.dram.requests = after.dram.requests - before.dram.requests;
    d.dram.bytes = after.dram.bytes - before.dram.bytes;
    d.dram.rowHits = after.dram.rowHits - before.dram.rowHits;
    d.dram.rowMisses = after.dram.rowMisses - before.dram.rowMisses;
    d.dram.bankConflictCycles =
        after.dram.bankConflictCycles - before.dram.bankConflictCycles;
    d.dram.busyCycles = after.dram.busyCycles - before.dram.busyCycles;
    d.gbuf.accesses = after.gbuf.accesses - before.gbuf.accesses;
    d.gbuf.bytes = after.gbuf.bytes - before.gbuf.bytes;
    d.gbuf.bankConflictCycles =
        after.gbuf.bankConflictCycles - before.gbuf.bankConflictCycles;
    d.gbuf.fills = after.gbuf.fills - before.gbuf.fills;
    d.gbuf.pendingStallCycles =
        after.gbuf.pendingStallCycles - before.gbuf.pendingStallCycles;
    d.gbuf.spillBytes = after.gbuf.spillBytes - before.gbuf.spillBytes;
    d.mcache.probes = after.mcache.probes - before.mcache.probes;
    d.mcache.hits = after.mcache.hits - before.mcache.hits;
    d.mcache.inserts = after.mcache.inserts - before.mcache.inserts;
    d.mcache.insertSerialCycles = after.mcache.insertSerialCycles -
                                  before.mcache.insertSerialCycles;
    d.pe.passes = after.pe.passes - before.pe.passes;
    d.pe.busyCycles = after.pe.busyCycles - before.pe.busyCycles;
    d.pe.memStallCycles =
        after.pe.memStallCycles - before.pe.memStallCycles;
    return d;
}

ComponentStats
statsScaled(const ComponentStats &d, uint64_t k)
{
    ComponentStats s;
    s.dram.requests = d.dram.requests * k;
    s.dram.bytes = d.dram.bytes * k;
    s.dram.rowHits = d.dram.rowHits * k;
    s.dram.rowMisses = d.dram.rowMisses * k;
    s.dram.bankConflictCycles = d.dram.bankConflictCycles * k;
    s.dram.busyCycles = d.dram.busyCycles * k;
    s.gbuf.accesses = d.gbuf.accesses * k;
    s.gbuf.bytes = d.gbuf.bytes * k;
    s.gbuf.bankConflictCycles = d.gbuf.bankConflictCycles * k;
    s.gbuf.fills = d.gbuf.fills * k;
    s.gbuf.pendingStallCycles = d.gbuf.pendingStallCycles * k;
    s.gbuf.spillBytes = d.gbuf.spillBytes * k;
    s.mcache.probes = d.mcache.probes * k;
    s.mcache.hits = d.mcache.hits * k;
    s.mcache.inserts = d.mcache.inserts * k;
    s.mcache.insertSerialCycles = d.mcache.insertSerialCycles * k;
    s.pe.passes = d.pe.passes * k;
    s.pe.busyCycles = d.pe.busyCycles * k;
    s.pe.memStallCycles = d.pe.memStallCycles * k;
    return s;
}

/** Descriptor a stack entry gets when no compiled plan covers it
 *  (unplannable topology) — the same geometry rules as
 *  RuntimePlanner::compile / exportPassDescriptors. */
PassDescriptor
synthDescriptor(const CostModel &model, const LayerShape &s,
                int64_t batch, int sig_bits, bool captures)
{
    PassDescriptor d;
    switch (s.type) {
    case LayerType::Conv:
        d.kind = StepOpKind::Conv;
        d.rows = s.vectorsPerChannel();
        d.vecDim = s.kernel * s.kernel;
        d.passes = batch * s.inChannels;
        d.inFlight = s.outChannels / std::max<int64_t>(1, s.groups);
        d.inputBytesPerPass = s.inH * s.inW * 4;
        d.inputTensorBytes = batch * s.inChannels * s.inH * s.inW * 4;
        break;
    case LayerType::FullyConnected:
        d.kind = StepOpKind::Dense;
        d.rows = batch;
        d.vecDim = s.inFeatures;
        d.passes = 1;
        d.inFlight = s.outFeatures;
        d.inputBytesPerPass = batch * s.inFeatures * 4;
        d.inputTensorBytes = d.inputBytesPerPass;
        break;
    case LayerType::Attention:
        d.kind = StepOpKind::Attention;
        d.rows = s.seqLen;
        d.vecDim = s.embedDim;
        d.passes = batch;
        d.inFlight = 1;
        d.inputBytesPerPass = s.seqLen * s.embedDim * 4;
        d.inputTensorBytes = batch * d.inputBytesPerPass;
        break;
    case LayerType::Pool:
        break;
    }
    if (captures && s.reusable()) {
        d.recordBytes = model.recordBytes(s, batch, sig_bits);
        d.holdRecord = d.recordBytes <= kFallbackHoldRecordBytes;
    }
    return d;
}

/** Address regions keeping layers (and their records) on disjoint
 *  DRAM rows: inputs and records of layer i never alias layer j's. */
uint64_t
inputRegion(size_t layer)
{
    return static_cast<uint64_t>(layer) << 28;
}

uint64_t
recordRegion(size_t layer)
{
    return (static_cast<uint64_t>(layer) << 28) | (1ull << 60);
}

/** Everything one simulated pass chain needs. */
struct PassWork
{
    uint64_t layerStart = 0;
    int64_t passes = 0;
    uint64_t service = 0; ///< compute+signature cycles, whole layer
    int64_t inputBytesPerPass = 0;
    uint64_t inputAddr = 0;
    bool resident = false;
    int64_t replayBytesPerPass = 0; ///< record read (gradient phase)
    uint64_t replayAddr = 0;
    uint64_t recordWriteBytesPerPass = 0; ///< record write (forward)
    uint64_t recordAddr = 0;
    uint64_t insertCycles = 0; ///< Dataflow cacheOverhead, whole layer
    int64_t mauPerPass = 0;
    int64_t rowsPerPass = 0;
    int64_t hitsPerPass = 0;
};

/**
 * Replay one layer's pass chain through the loop. Each pass is one
 * event: its input stream was issued at the previous pass's start
 * (double-buffered prefetch), it executes when operands arrive, and
 * its MAU inserts drain through the set queues before the next pass
 * may land. Under Sampled fidelity with more than two passes, passes
 * 0 (cold) and 1 (steady) run in full detail and the steady pass is
 * extrapolated across the rest. Returns the layer-end cycle.
 */
uint64_t
runLayerPasses(EventLoop &loop, DramSim &dram, GlobalBufferSim &gb,
               McacheSim &mc, PeArraySim &pe, const SimConfig &sim,
               const PassWork &w, ComponentStats &extra)
{
    pe.skipTo(w.layerStart);
    if (w.passes <= 0)
        return w.layerStart + w.service;
    const uint64_t per = w.service / static_cast<uint64_t>(w.passes);
    const uint64_t rem = w.service % static_cast<uint64_t>(w.passes);
    const uint64_t ins_per =
        w.insertCycles / static_cast<uint64_t>(w.passes);
    const uint64_t ins_rem =
        w.insertCycles % static_cast<uint64_t>(w.passes);

    const bool sampled =
        sim.fidelity == SimFidelity::Sampled && w.passes > 2;
    const int64_t sim_passes = sampled ? 2 : w.passes;

    uint64_t issue_at = w.layerStart;
    uint64_t last_end = w.layerStart;
    uint64_t end0 = w.layerStart;
    ComponentStats after0;
    for (int64_t k = 0; k < sim_passes; ++k) {
        uint64_t pass_start = issue_at;
        loop.schedule(issue_at, [&, k, issue_at]() {
            uint64_t mem = issue_at;
            if (w.inputBytesPerPass > 0)
                mem = gb.stream(
                    issue_at,
                    w.inputAddr + static_cast<uint64_t>(
                                      k * w.inputBytesPerPass),
                    w.inputBytesPerPass, w.resident,
                    sim.maxChunksPerPass);
            if (w.replayBytesPerPass > 0)
                mem = std::max(
                    mem, gb.stream(issue_at,
                                   w.replayAddr +
                                       static_cast<uint64_t>(
                                           k * w.replayBytesPerPass),
                                   w.replayBytesPerPass, false,
                                   sim.maxChunksPerPass));
            const uint64_t ready = std::max(w.layerStart, mem);
            const uint64_t svc = per + (k == 0 ? rem : 0);
            pass_start = std::max(ready, pe.freeAt());
            uint64_t end = pe.executePass(ready, svc);
            mc.probes(w.rowsPerPass, w.hitsPerPass);
            const uint64_t ins = ins_per + (k == 0 ? ins_rem : 0);
            if (w.mauPerPass > 0 || ins > 0) {
                // Insert serialization budget comes from the Dataflow
                // closed form (splits MAU across PE sets before the
                // per-set ceil), routed through the set queues.
                end = mc.drain(end, w.mauPerPass, ins);
                pe.skipTo(end);
            }
            if (w.recordWriteBytesPerPass > 0)
                dram.access(
                    end,
                    w.recordAddr + static_cast<uint64_t>(k) *
                                       w.recordWriteBytesPerPass,
                    static_cast<int64_t>(w.recordWriteBytesPerPass));
            last_end = end;
        });
        loop.run();
        // The next pass's stream prefetches from this pass's start.
        issue_at = pass_start;
        if (k == 0) {
            end0 = last_end;
            after0 = gather(dram, gb, mc, pe);
        }
    }

    if (sampled) {
        // Extrapolate the steady pass (cold effects stay un-scaled).
        const uint64_t steady_span = last_end - end0;
        const uint64_t more = static_cast<uint64_t>(w.passes - 2);
        last_end += steady_span * more;
        extra += statsScaled(
            statsDelta(gather(dram, gb, mc, pe), after0), more);
        pe.skipTo(last_end);
    }
    return last_end;
}

/**
 * The step simulation shared by both stepCost entry points: `descs`
 * holds one PassDescriptor per stack entry (pool entries carry a
 * default descriptor and replay as plain baseline spans).
 */
CostBreakdown
simulateStep(const CostModel &model, const std::vector<LayerShape> &stack,
             const std::vector<HitMix> &mixes,
             const std::vector<PassDescriptor> &descs, int64_t batch,
             int sig_bits)
{
    const AcceleratorConfig &cfg = model.config();
    const SimConfig &sim = cfg.sim;
    const bool captures = cfg.backwardReuse || cfg.weightGradReuse;
    const size_t n = stack.size();

    // Closed-form per-layer decompositions — the compute services.
    std::vector<LayerCycles> fwd(n), grad(n);
    for (size_t i = 0; i < n; ++i) {
        if (!stack[i].reusable()) {
            const uint64_t pool = model.baselineCycles(stack[i], batch);
            fwd[i].baseline = pool;
            fwd[i].computation = pool;
            continue;
        }
        fwd[i] = model.layerCost(stack[i], batch, mixes[i], sig_bits);
        if (captures)
            grad[i] = model.backwardCost(stack[i], batch, mixes[i],
                                         sig_bits, cfg.weightGradReuse);
    }

    // Fused conv→conv edges and hidden-signature windows: the
    // plan_model rule, verbatim, so the two backends always agree on
    // step structure.
    std::vector<uint64_t> hide(n, 0);
    int fused_edges = 0;
    uint64_t hidden_total = 0;
    int prev_conv = -1;
    for (size_t i = 0; i < n; ++i) {
        if (stack[i].type == LayerType::Pool)
            continue;
        if (stack[i].type != LayerType::Conv) {
            prev_conv = -1;
            continue;
        }
        if (prev_conv >= 0) {
            const size_t p = static_cast<size_t>(prev_conv);
            const int64_t pred_passes = descs[p].passes;
            const uint64_t window =
                pred_passes > 0
                    ? fwd[p].computation /
                          static_cast<uint64_t>(pred_passes)
                    : 0;
            hide[i] = std::min(window, fwd[i].signature);
            hidden_total += hide[i];
            ++fused_edges;
        }
        prev_conv = static_cast<int>(i);
    }

    EventLoop loop;
    DramSim dram(sim);
    GlobalBufferSim gb(sim, dram);
    McacheSim mc(sim, cfg.mcacheSets);
    PeArraySim pe;
    ComponentStats extra;

    uint64_t cursor = 0;
    uint64_t barrier_base = 0;
    uint64_t setup = 0;

    // Forward phase.
    for (size_t i = 0; i < n; ++i) {
        const LayerShape &shape = stack[i];
        if (!shape.reusable()) {
            cursor += fwd[i].computation;
            barrier_base += fwd[i].computation;
            continue;
        }
        const PassDescriptor &d = descs[i];
        setup +=
            kSetupCyclesPerLayer +
            kSetupCyclesPerPass * static_cast<uint64_t>(std::max<int64_t>(
                                      0, d.passes));
        if (captures && !d.holdRecord)
            gb.noteSpill(d.recordBytes);

        PassWork w;
        w.layerStart = cursor;
        w.passes = d.passes;
        const uint64_t S = fwd[i].computation + fwd[i].signature;
        w.service = S > hide[i] ? S - hide[i] : 0;
        w.inputBytesPerPass = d.inputBytesPerPass;
        w.inputAddr = inputRegion(i);
        w.resident = gb.resident(d.inputBytesPerPass);
        w.recordWriteBytesPerPass =
            captures && d.passes > 0
                ? d.recordBytes / static_cast<uint64_t>(d.passes)
                : 0;
        w.recordAddr = recordRegion(i);
        w.insertCycles = fwd[i].cacheOverhead;
        w.mauPerPass = mixes[i].mau;
        w.rowsPerPass = mixes[i].vectors;
        w.hitsPerPass = mixes[i].hit;
        const uint64_t end =
            runLayerPasses(loop, dram, gb, mc, pe, sim, w, extra);
        barrier_base += (end - cursor) + hide[i];
        cursor = end;
    }

    // Gradient phase: reverse replay of the captured records. The
    // record stream reads back the bytes the forward phase wrote
    // (held or spilled, the record lives DRAM-side — the analytic
    // model charges nothing here, so any exposed replay stall is
    // event-only signal).
    if (captures) {
        for (size_t r = n; r-- > 0;) {
            if (!stack[r].reusable())
                continue;
            const PassDescriptor &d = descs[r];
            PassWork w;
            w.layerStart = cursor;
            w.passes = d.passes;
            w.service = grad[r].mercuryTotal();
            w.replayBytesPerPass =
                d.passes > 0 ? static_cast<int64_t>(
                                   d.recordBytes /
                                   static_cast<uint64_t>(d.passes))
                             : 0;
            w.replayAddr = recordRegion(r);
            w.rowsPerPass = mixes[r].vectors;
            w.hitsPerPass = mixes[r].hit;
            const uint64_t end =
                runLayerPasses(loop, dram, gb, mc, pe, sim, w, extra);
            barrier_base += end - cursor;
            cursor = end;
        }
    }

    CostBreakdown out;
    out.components = gather(dram, gb, mc, pe);
    out.components += extra;
    out.cycles =
        aggregateStepCycles(model, stack, mixes, batch, sig_bits);
    out.memoryStallCycles = out.components.pe.memStallCycles;
    out.cycles.computation += out.memoryStallCycles;
    out.barrierCycles = barrier_base + setup;
    out.plannedCycles = cursor;
    out.setupCycles = setup;
    out.hiddenSignature = hidden_total;
    out.fusedEdges = fused_edges;
    return out;
}

} // namespace

EventModel::EventModel(const AcceleratorConfig &cfg) : CostModel(cfg) {}

CostBreakdown
EventModel::stepCost(const std::vector<LayerShape> &stack,
                     const std::vector<HitMix> &mixes, int64_t batch,
                     int sig_bits) const
{
    if (stack.size() != mixes.size())
        panic("EventModel::stepCost needs one mix per layer, got ",
              mixes.size(), " for ", stack.size());
    const bool captures = cfg_.backwardReuse || cfg_.weightGradReuse;

    // One workload definition: the stack compiles through the planner
    // and the plan's own descriptors drive the replay. Layers a plan
    // cannot cover (unplannable topology) fall back to synthesized
    // descriptors built by the same geometry rules.
    PlanKeyConfig kcfg;
    kcfg.sigBits = sig_bits;
    kcfg.sets = cfg_.mcacheSets;
    kcfg.ways = cfg_.mcacheWays;
    kcfg.dataVersions = cfg_.mcacheDataVersions;
    kcfg.pipe.blockRows = cfg_.pipelineBlockRows;
    kcfg.pipe.shards = cfg_.pipelineShards;
    kcfg.pipe.threads = cfg_.pipelineThreads;
    kcfg.pipe.overlap = cfg_.overlapDetection;
    kcfg.pipe.persistent = cfg_.persistentCache;
    kcfg.backwardReuse = cfg_.backwardReuse;
    kcfg.weightGradReuse = cfg_.weightGradReuse;
    const std::shared_ptr<const StepPlan> plan = RuntimePlanner::compile(
        describeShapeStack(stack, batch), kcfg);

    std::vector<PassDescriptor> descs(stack.size());
    for (const PassDescriptor &d : exportPassDescriptors(*plan))
        if (d.layerId < descs.size()) // layerId == stack index here
            descs[static_cast<size_t>(d.layerId)] = d;
    for (size_t i = 0; i < stack.size(); ++i)
        if (stack[i].reusable() && descs[i].passes == 0)
            descs[i] = synthDescriptor(*this, stack[i], batch, sig_bits,
                                       captures);
    return simulateStep(*this, stack, mixes, descs, batch, sig_bits);
}

CostBreakdown
EventModel::stepCost(const StepPlan &plan,
                     const std::vector<HitMix> &mixes,
                     int sig_bits) const
{
    std::vector<size_t> reuse_index;
    const std::vector<LayerShape> stack =
        planLayerStack(plan, &reuse_index);
    std::vector<HitMix> full(stack.size());
    std::vector<PassDescriptor> descs(stack.size());
    const std::vector<PassDescriptor> pds = exportPassDescriptors(plan);
    for (size_t j = 0; j < reuse_index.size(); ++j) {
        if (j < mixes.size())
            full[reuse_index[j]] = mixes[j];
        if (j < pds.size())
            descs[reuse_index[j]] = pds[j];
    }
    return simulateStep(*this, stack, full, descs, plan.batch, sig_bits);
}

} // namespace sim
} // namespace mercury
