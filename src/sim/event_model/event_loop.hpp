/**
 * @file
 * The discrete-event core of the event-model backend: a single
 * priority queue of (cycle, callback) events ticking every component
 * (DRAM, GlobalBuffer, MCACHE, PE array) of one simulation.
 *
 * Determinism contract: events pop in (cycle, insertion-seq) order —
 * two events at the same cycle run in the order they were scheduled,
 * so a simulation is a pure function of its inputs (asserted in
 * tests/test_eventsim.cpp).
 *
 * The loop is phase-friendly: run() drains the current queue, after
 * which the driver may schedule more events — including at absolute
 * cycles earlier than the last pop (a fused layer starting inside its
 * predecessor's drain window). Components keep their own absolute
 * busy-until state, so correctness never depends on global pop order
 * across phases.
 */

#ifndef MERCURY_SIM_EVENT_MODEL_EVENT_LOOP_HPP
#define MERCURY_SIM_EVENT_MODEL_EVENT_LOOP_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mercury {
namespace sim {

class EventLoop
{
  public:
    using Callback = std::function<void()>;

    /** Enqueue `cb` to fire at absolute `cycle`. */
    void schedule(uint64_t cycle, Callback cb);

    /** Drain the queue; each callback may schedule further events. */
    void run();

    /** Cycle of the event currently (or last) fired. */
    uint64_t now() const { return now_; }

    /** Events scheduled over the loop's lifetime. */
    uint64_t scheduledEvents() const { return scheduled_; }

    bool empty() const { return queue_.empty(); }

  private:
    struct Event
    {
        uint64_t cycle;
        uint64_t seq;
        Callback cb;
    };
    struct After
    {
        bool operator()(const Event &a, const Event &b) const
        {
            if (a.cycle != b.cycle)
                return a.cycle > b.cycle;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, After> queue_;
    uint64_t now_ = 0;
    uint64_t seq_ = 0;
    uint64_t scheduled_ = 0;
};

} // namespace sim
} // namespace mercury

#endif // MERCURY_SIM_EVENT_MODEL_EVENT_LOOP_HPP
