/**
 * @file
 * MCACHE traffic model of the event backend: probe counting plus the
 * per-set insert-queue serialization of §V. Probes are fully
 * pipelined through the set ports (their latency is part of the
 * signature/compute service the Dataflow closed forms already
 * charge), so this component adds time only where the analytic model
 * does: MAU inserts serialize through their set queues at
 * cacheInsertCycles per insert, sim.cacheInsertCycles * ceil(mau /
 * sets) per pass — the identical arithmetic to
 * Dataflow::insertOverhead, which is what keeps the two backends in
 * agreement on compute-bound points.
 */

#ifndef MERCURY_SIM_EVENT_MODEL_MCACHE_SIM_HPP
#define MERCURY_SIM_EVENT_MODEL_MCACHE_SIM_HPP

#include <cstdint>

#include "sim/cost_model.hpp"
#include "sim/sim_config.hpp"

namespace mercury {
namespace sim {

class McacheSim
{
  public:
    McacheSim(const SimConfig &sim, int sets);

    /** Count one pass's probes (latency lives in the compute service). */
    void probes(int64_t rows, int64_t hits);

    /**
     * Serialize `mau` inserts through the per-set queues starting at
     * `start`; returns the cycle the last queue drains. Back-to-back
     * passes queue behind each other's unfinished inserts.
     */
    uint64_t inserts(uint64_t start, int64_t mau);

    /**
     * Like inserts(), but with the serialization cycles supplied by
     * the caller — the event model hands in the Dataflow-derived
     * per-pass insert overhead (which splits the MAU population
     * across PE sets before the per-set ceil), so the queue drains in
     * exactly the cycles the analytic backend charges.
     */
    uint64_t drain(uint64_t start, int64_t mau, uint64_t serial_cycles);

    const ComponentStats::McacheStats &stats() const { return stats_; }

  private:
    SimConfig sim_;
    int sets_;
    uint64_t queueFree_ = 0;
    ComponentStats::McacheStats stats_;
};

} // namespace sim
} // namespace mercury

#endif // MERCURY_SIM_EVENT_MODEL_MCACHE_SIM_HPP
