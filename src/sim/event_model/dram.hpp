/**
 * @file
 * Banked DRAM with an open-row policy: addresses map to rows of
 * SimConfig::dramRowBytes, rows interleave across dramBanks, and each
 * bank keeps one row open. An access to the open row pays
 * dramRowHitCycles (CAS only); any other row pays dramRowMissCycles
 * (precharge + activate + CAS). On top of the fixed latency the bank
 * occupies itself for the transfer (bytes / dramBusBytesPerCycle).
 *
 * One access may span several rows; the row chunks issue in parallel
 * across their banks (bank-level parallelism) and the access
 * completes when the slowest chunk does. Time a chunk waits on a
 * still-busy bank is charged to bankConflictCycles — the counter the
 * bank-conflict unit test and the sweep's stall-by-cause report read.
 */

#ifndef MERCURY_SIM_EVENT_MODEL_DRAM_HPP
#define MERCURY_SIM_EVENT_MODEL_DRAM_HPP

#include <cstdint>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/sim_config.hpp"

namespace mercury {
namespace sim {

class DramSim
{
  public:
    explicit DramSim(const SimConfig &sim);

    /**
     * Stream `bytes` starting at `addr`, issued at cycle `start`.
     * Returns the completion cycle.
     */
    uint64_t access(uint64_t start, uint64_t addr, int64_t bytes);

    const ComponentStats::DramStats &stats() const { return stats_; }

  private:
    struct Bank
    {
        uint64_t busyUntil = 0;
        int64_t openRow = -1;
    };

    SimConfig sim_;
    std::vector<Bank> banks_;
    ComponentStats::DramStats stats_;
};

} // namespace sim
} // namespace mercury

#endif // MERCURY_SIM_EVENT_MODEL_DRAM_HPP
