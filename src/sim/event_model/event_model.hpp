/**
 * @file
 * EventModel: the discrete-event sim::CostModel backend.
 *
 * One EventLoop ticks four components per step — banked open-row DRAM
 * (dram.hpp), a banked GlobalBuffer with MSHR-style pending slots
 * (global_buffer_sim.hpp), the MCACHE set-queue traffic (mcache_sim.hpp)
 * and the PE array (pe_array_sim.hpp). The workload is the pass
 * descriptors RuntimePlanner::compile emits (exportPassDescriptors):
 * each detection pass is an event that streams its input plane
 * (double-buffered: pass k's stream issues at pass k-1's start),
 * executes on the PE array when its operands arrive, and drains its
 * MAU inserts through the set queues.
 *
 * Compute service times are NOT re-derived: a layer's pass services
 * sum to exactly the Dataflow closed-form totals the analytic backend
 * reports (split evenly across the plan's pass count), and the insert
 * serialization per pass is the identical insertOverhead arithmetic.
 * The event machinery therefore adds only what the closed forms
 * cannot see — cold streams, bank conflicts, pending-slot exhaustion,
 * record write/replay traffic — so on compute-bound points the two
 * backends agree (asserted in tests/test_eventsim.cpp) and they
 * diverge exactly where contention is real (shrunk buffers, few
 * banks, captured-record replay).
 *
 * Fidelity (SimConfig::fidelity): PerPass replays every detection
 * pass; Sampled replays the first two passes of each layer in full
 * detail (cold + steady) and extrapolates the steady pass across the
 * remainder — the ImageNet-scale sweep setting.
 */

#ifndef MERCURY_SIM_EVENT_MODEL_EVENT_MODEL_HPP
#define MERCURY_SIM_EVENT_MODEL_EVENT_MODEL_HPP

#include "sim/cost_model.hpp"

namespace mercury {
namespace sim {

class EventModel : public CostModel
{
  public:
    explicit EventModel(const AcceleratorConfig &cfg);

    SimBackend backend() const override { return SimBackend::Event; }

    CostBreakdown stepCost(const std::vector<LayerShape> &stack,
                           const std::vector<HitMix> &mixes,
                           int64_t batch, int sig_bits) const override;

    CostBreakdown stepCost(const StepPlan &plan,
                           const std::vector<HitMix> &mixes,
                           int sig_bits) const override;
};

} // namespace sim
} // namespace mercury

#endif // MERCURY_SIM_EVENT_MODEL_EVENT_MODEL_HPP
