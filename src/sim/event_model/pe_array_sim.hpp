/**
 * @file
 * PE array of the event backend. The array executes one detection
 * pass at a time (the engines' single-driver contract); a pass's
 * compute service time comes from the Dataflow closed forms — the
 * SAME per-layer totals the analytic backend reports, split across
 * the plan's pass count — so this component contributes no arithmetic
 * of its own. What it adds is the schedule: a pass cannot start
 * before its operands arrive, and cycles the array sits idle waiting
 * on the memory hierarchy are charged to memStallCycles (the
 * occupancy / stall-by-cause numbers of the sweep report).
 */

#ifndef MERCURY_SIM_EVENT_MODEL_PE_ARRAY_SIM_HPP
#define MERCURY_SIM_EVENT_MODEL_PE_ARRAY_SIM_HPP

#include <algorithm>
#include <cstdint>

#include "sim/cost_model.hpp"

namespace mercury {
namespace sim {

class PeArraySim
{
  public:
    /**
     * Run one pass whose operands are ready at `ready` and whose
     * compute service is `compute` cycles. Returns the completion
     * cycle; idle time between the array freeing and the operands
     * arriving is the memory stall.
     */
    uint64_t executePass(uint64_t ready, uint64_t compute)
    {
        const uint64_t t0 = std::max(ready, freeAt_);
        if (ready > freeAt_)
            stats_.memStallCycles += ready - freeAt_;
        ++stats_.passes;
        stats_.busyCycles += compute;
        freeAt_ = t0 + compute;
        return freeAt_;
    }

    /** Release the array at `cycle` (layer hand-off). */
    void skipTo(uint64_t cycle) { freeAt_ = std::max(freeAt_, cycle); }

    uint64_t freeAt() const { return freeAt_; }

    const ComponentStats::PeStats &stats() const { return stats_; }

  private:
    uint64_t freeAt_ = 0;
    ComponentStats::PeStats stats_;
};

} // namespace sim
} // namespace mercury

#endif // MERCURY_SIM_EVENT_MODEL_PE_ARRAY_SIM_HPP
