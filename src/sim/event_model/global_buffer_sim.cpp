#include "sim/event_model/global_buffer_sim.hpp"

#include <algorithm>

#include "sim/cycle_model.hpp"

namespace mercury {
namespace sim {

GlobalBufferSim::GlobalBufferSim(const SimConfig &sim, DramSim &dram)
    : sim_(sim), dram_(dram)
{
    bankBusy_.resize(static_cast<size_t>(std::max(1, sim_.gbBanks)), 0);
    slotFree_.resize(static_cast<size_t>(std::max(1, sim_.gbPendingSlots)),
                     0);
}

uint64_t
GlobalBufferSim::stream(uint64_t start, uint64_t addr, int64_t bytes,
                        bool resident, int chunks)
{
    if (bytes <= 0)
        return start;
    ++stats_.accesses;
    stats_.bytes += static_cast<uint64_t>(bytes);

    const int n = std::max(
        1, std::min<int>(chunks, static_cast<int>(std::min<int64_t>(
                                     bytes, 1 << 20))));
    const int64_t chunk = static_cast<int64_t>(
        ceilDiv(static_cast<uint64_t>(bytes), static_cast<uint64_t>(n)));
    const int64_t line = std::max<int64_t>(1, sim_.gbLineBytes);

    uint64_t done = start;
    int64_t remaining = bytes;
    uint64_t a = addr;
    for (int i = 0; i < n && remaining > 0; ++i) {
        const int64_t sz = std::min(remaining, chunk);
        if (resident) {
            // Served by the bank the chunk's leading line maps to.
            uint64_t &bank = bankBusy_[static_cast<size_t>(
                (static_cast<int64_t>(a) / line) %
                static_cast<int64_t>(bankBusy_.size()))];
            const uint64_t t0 = std::max(start, bank);
            stats_.bankConflictCycles += t0 - start;
            const uint64_t latency = ceilDiv(
                static_cast<uint64_t>(sz),
                static_cast<uint64_t>(
                    std::max(1, sim_.gbBytesPerBankCycle)));
            bank = t0 + latency;
            done = std::max(done, bank);
        } else {
            // Miss: take the earliest-free pending slot, then fill
            // from DRAM. A full MSHR is the stall the unit test pins.
            auto slot = std::min_element(slotFree_.begin(),
                                         slotFree_.end());
            const uint64_t t0 = std::max(start, *slot);
            stats_.pendingStallCycles += t0 - start;
            ++stats_.fills;
            const uint64_t end = dram_.access(t0, a, sz);
            *slot = end;
            done = std::max(done, end);
        }
        a += static_cast<uint64_t>(sz);
        remaining -= sz;
    }
    return done;
}

} // namespace sim
} // namespace mercury
