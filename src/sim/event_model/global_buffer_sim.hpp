/**
 * @file
 * Banked GlobalBuffer with MSHR-style pending slots. Resident data
 * streams from the banks (chunks interleave across gbBanks, each
 * serving gbBytesPerBankCycle); non-resident chunks each occupy one
 * of gbPendingSlots while their DRAM fill is outstanding — when all
 * slots are busy the next miss waits for the earliest one to free,
 * charged to pendingStallCycles (the counter the pending-slot unit
 * test and the stall-by-cause report read).
 *
 * Residency itself is the caller's call (the event model applies the
 * double-buffered working-set rule: a pass's input plane is resident
 * iff two of them fit in gbCapacityBytes — the producing layer left
 * it on-chip). This component models *port and fill* behavior, not
 * allocation.
 */

#ifndef MERCURY_SIM_EVENT_MODEL_GLOBAL_BUFFER_SIM_HPP
#define MERCURY_SIM_EVENT_MODEL_GLOBAL_BUFFER_SIM_HPP

#include <cstdint>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/event_model/dram.hpp"
#include "sim/sim_config.hpp"

namespace mercury {
namespace sim {

class GlobalBufferSim
{
  public:
    GlobalBufferSim(const SimConfig &sim, DramSim &dram);

    /**
     * Stream `bytes` at `addr` issued at cycle `start`, split into at
     * most `chunks` requests. Resident data is served by the banks;
     * non-resident data fills from DRAM through the pending slots.
     * Returns the completion cycle.
     */
    uint64_t stream(uint64_t start, uint64_t addr, int64_t bytes,
                    bool resident, int chunks);

    /** Double-buffered working-set residency rule (see file header). */
    bool resident(int64_t bytes_per_pass) const
    {
        return bytes_per_pass > 0 &&
               2 * static_cast<uint64_t>(bytes_per_pass) <=
                   sim_.gbCapacityBytes;
    }

    const ComponentStats::GlobalBufferStats &stats() const
    {
        return stats_;
    }

    /** Record bytes the step spilled past the hold budget (reported,
     *  not a stall source of its own — the DRAM traffic is). */
    void noteSpill(uint64_t bytes) { stats_.spillBytes += bytes; }

  private:
    SimConfig sim_;
    DramSim &dram_;
    std::vector<uint64_t> bankBusy_;
    std::vector<uint64_t> slotFree_;
    ComponentStats::GlobalBufferStats stats_;
};

} // namespace sim
} // namespace mercury

#endif // MERCURY_SIM_EVENT_MODEL_GLOBAL_BUFFER_SIM_HPP
