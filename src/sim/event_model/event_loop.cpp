#include "sim/event_model/event_loop.hpp"

#include <utility>

namespace mercury {
namespace sim {

void
EventLoop::schedule(uint64_t cycle, Callback cb)
{
    queue_.push(Event{cycle, seq_++, std::move(cb)});
    ++scheduled_;
}

void
EventLoop::run()
{
    while (!queue_.empty()) {
        // The callback may schedule; moving it out first keeps the
        // queue mutable under it.
        Event ev = queue_.top();
        queue_.pop();
        now_ = ev.cycle;
        ev.cb();
    }
}

} // namespace sim
} // namespace mercury
