#include "sim/sim_config.hpp"

#include <cstdlib>
#include <cstring>

#include "util/logging.hpp"

namespace mercury {

const char *
simBackendName(SimBackend backend)
{
    switch (backend) {
      case SimBackend::Analytic:
        return "analytic";
      case SimBackend::Event:
        return "event";
    }
    return "?";
}

const char *
simFidelityName(SimFidelity fidelity)
{
    switch (fidelity) {
      case SimFidelity::PerPass:
        return "per-pass";
      case SimFidelity::Sampled:
        return "sampled";
    }
    return "?";
}

SimBackend
resolvedSimBackend(SimBackend configured)
{
    const char *env = std::getenv("MERCURY_SIM_BACKEND");
    if (env == nullptr || env[0] == '\0')
        return configured;
    if (std::strcmp(env, "analytic") == 0)
        return SimBackend::Analytic;
    if (std::strcmp(env, "event") == 0)
        return SimBackend::Event;
    fatal("MERCURY_SIM_BACKEND must be 'analytic' or 'event', got '",
          env, "'");
}

} // namespace mercury
