/**
 * @file
 * Timing model of planned step execution (core/runtime_planner.hpp):
 * what does compiling the pass graph once buy a multi-layer training
 * step over the per-layer-barrier baseline?
 *
 * Two effects are modeled, mirroring the functional planner:
 *
 *  - Setup amortization. Every unplanned step re-derives per-layer
 *    schedule state before any MAC runs: pass descriptors, tuning-knob
 *    resolution, buffer (re)allocation. That work scales with the
 *    layer's pass count, not its MACs, so it is charged per detection
 *    pass plus a per-layer constant. A planned step pays it once at
 *    plan bind and replays the schedule afterwards, so the steady-state
 *    per-step charge drops to (amortized) zero.
 *
 *  - Cross-layer overlap. With per-layer barriers, layer k+1's
 *    signature generation cannot start before layer k fully drains.
 *    The plan's dependency edges launch the successor's first hash
 *    while the predecessor's trailing filter ranges drain, so on a
 *    fused conv→conv edge (adjacent convs separated only by
 *    channelwise transforms — ReLU / pooling) the successor hides up
 *    to one trailing channel-pass of predecessor compute worth of its
 *    signature time. Only the exposed remainder stays on the critical
 *    path — the Fig. 8 overlap argument, extended across the layer
 *    boundary.
 *
 * The model is deliberately conservative: edges hide signature time
 * only (never compute or cache overhead), and at most the
 * predecessor's single trailing channel-pass window — exactly the
 * window the functional prefetch hook exposes (ConvPlanSlot::
 * prefetchNext fires after the first chain of the last input-channel
 * pass drains).
 */

#ifndef MERCURY_SIM_PLAN_MODEL_HPP
#define MERCURY_SIM_PLAN_MODEL_HPP

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/dataflow.hpp"
#include "sim/layer_shape.hpp"

namespace mercury {

/** Per-pass / per-layer schedule-setup charge of an unplanned step
 *  (descriptor construction, knob resolution, buffer allocation).
 *  Cycle-denominated like every Dataflow cost. */
constexpr uint64_t kSetupCyclesPerPass = 64;
constexpr uint64_t kSetupCyclesPerLayer = 512;

/** Cycle totals of one multi-layer step, planned vs barriered. */
struct PlannedStepModel
{
    /** Per-layer-barrier step: compute + exposed signature + cache
     *  overhead + per-step schedule setup. */
    uint64_t barrierCycles = 0;
    /** Planned step: setup amortized away, fused-edge signature time
     *  hidden under the predecessor's trailing drain. */
    uint64_t plannedCycles = 0;

    /** Decomposition (both totals share the base). */
    uint64_t baseCycles = 0;      ///< Σ mercuryTotal over the stack
    uint64_t setupCycles = 0;     ///< per-step setup the plan amortizes
    uint64_t hiddenSignature = 0; ///< signature cycles fused edges hide
    int fusedEdges = 0;           ///< conv→conv edges that overlapped

    double speedup() const
    {
        return plannedCycles > 0 ? static_cast<double>(barrierCycles) /
                                       static_cast<double>(plannedCycles)
                                 : 1.0;
    }
};

/**
 * Model one training step over a layer stack. `mixes` holds one
 * channel-pass HIT mix per layer (same convention as
 * Dataflow::mercuryLayerCycles; entries for non-reusable layers are
 * ignored). Forward always runs; cfg.backwardReuse /
 * cfg.weightGradReuse add the gradient passes with their usual
 * accounting. Conv layers separated only by Pool entries fuse, like
 * the functional planner's channelwise-edge rule.
 *
 * DEPRECATION NOTE: prefer sim::CostModel::stepCost
 * (sim/cost_model.hpp) — identical numbers under the analytic
 * backend, and the same call runs on the event-driven
 * memory-hierarchy sim when SimConfig::backend /
 * MERCURY_SIM_BACKEND selects it. This free function remains as the
 * analytic backend's step arithmetic.
 */
PlannedStepModel modelPlannedStep(const AcceleratorConfig &cfg,
                                  const std::vector<LayerShape> &stack,
                                  const std::vector<HitMix> &mixes,
                                  int64_t batch, int sig_bits);

} // namespace mercury

#endif // MERCURY_SIM_PLAN_MODEL_HPP
