#include "sim/dataflow.hpp"

#include <algorithm>
#include <cmath>

#include "pipeline/detection_pipeline.hpp"
#include "sim/cycle_model.hpp"
#include "util/logging.hpp"

namespace mercury {

const char *
dataflowName(DataflowKind kind)
{
    switch (kind) {
      case DataflowKind::RowStationary:
        return "row-stationary";
      case DataflowKind::WeightStationary:
        return "weight-stationary";
      case DataflowKind::InputStationary:
        return "input-stationary";
    }
    return "?";
}

const char *
overlapModeName(OverlapMode mode)
{
    switch (mode) {
      case OverlapMode::Off:
        return "off";
      case OverlapMode::On:
        return "on";
      case OverlapMode::Auto:
        return "auto";
    }
    return "?";
}

double
HitMix::hitFraction() const
{
    return vectors ? static_cast<double>(hit) / static_cast<double>(vectors)
                   : 0.0;
}

HitMix
HitMix::fromFractions(int64_t vectors, double hit_frac, double mnu_frac)
{
    if (hit_frac < 0 || mnu_frac < 0 || hit_frac + mnu_frac > 1.0)
        panic("invalid hit mix fractions ", hit_frac, ", ", mnu_frac);
    HitMix m;
    m.vectors = vectors;
    m.hit = static_cast<int64_t>(std::llround(hit_frac * vectors));
    m.mnu = static_cast<int64_t>(std::llround(mnu_frac * vectors));
    if (m.hit + m.mnu > vectors)
        m.mnu = vectors - m.hit;
    m.mau = vectors - m.hit - m.mnu;
    return m;
}

HitMix
HitMix::scaledTo(int64_t new_vectors) const
{
    if (vectors == 0) {
        HitMix m;
        m.vectors = new_vectors;
        m.mau = new_vectors;
        return m;
    }
    const double scale =
        static_cast<double>(new_vectors) / static_cast<double>(vectors);
    HitMix m;
    m.vectors = new_vectors;
    m.hit = static_cast<int64_t>(std::llround(hit * scale));
    m.mnu = static_cast<int64_t>(std::llround(mnu * scale));
    if (m.hit + m.mnu > new_vectors)
        m.mnu = new_vectors - m.hit;
    m.mau = new_vectors - m.hit - m.mnu;
    return m;
}

double
LayerCycles::speedup() const
{
    const uint64_t merc = mercuryTotal();
    if (merc == 0)
        return 1.0;
    return static_cast<double>(baseline) / static_cast<double>(merc);
}

LayerCycles &
LayerCycles::operator+=(const LayerCycles &other)
{
    baseline += other.baseline;
    computation += other.computation;
    signature += other.signature;
    cacheOverhead += other.cacheOverhead;
    return *this;
}

std::unique_ptr<Dataflow>
Dataflow::create(const AcceleratorConfig &cfg)
{
    switch (cfg.dataflow) {
      case DataflowKind::RowStationary:
        return std::make_unique<RowStationaryDataflow>(cfg);
      case DataflowKind::WeightStationary:
        return std::make_unique<WeightStationaryDataflow>(cfg);
      case DataflowKind::InputStationary:
        return std::make_unique<InputStationaryDataflow>(cfg);
    }
    panic("unknown dataflow kind");
}

Dataflow::Dataflow(const AcceleratorConfig &cfg)
    : config_(cfg)
{
    if (cfg.numPEs <= 0)
        fatal("accelerator needs at least one PE");
}

uint64_t
Dataflow::insertOverhead(const HitMix &mix) const
{
    // MAU vectors enqueue one tag insert each; the per-set queue
    // controller serializes inserts within a set while different sets
    // proceed in parallel (§V). The expected serial chain is the
    // largest per-set backlog, approximated by the mean backlog.
    const uint64_t inserts = static_cast<uint64_t>(std::max<int64_t>(
        mix.mau, 0));
    return static_cast<uint64_t>(config_.sim.cacheInsertCycles) *
           ceilDiv(inserts, static_cast<uint64_t>(
                                std::max(config_.mcacheSets, 1)));
}

namespace {

/**
 * A 1x1 convolution has degenerate per-channel vectors (dimension 1),
 * so MERCURY treats it like a fully connected layer whose input
 * vectors span the channel dimension: every spatial position is one
 * Cin-dimensional vector meeting Cout weight vectors.
 */
LayerShape
pointwiseAsFc(const LayerShape &shape)
{
    return LayerShape::fc(shape.name + ".pw", shape.inChannels / shape.groups,
                          shape.outChannels / shape.groups);
}

/** Batch multiplier for the pointwise-as-FC mapping. */
int64_t
pointwiseBatch(const LayerShape &shape, int64_t batch)
{
    // Every spatial position of every group is one input vector.
    return batch * shape.vectorsPerChannel() * shape.groups;
}

/**
 * Rows of one detection pass of this layer — the granularity at which
 * OverlapMode::Auto resolves in the functional engines: a conv layer
 * runs one pass per (image, channel) over its spatial positions,
 * while FC-like layers (and the pointwise-as-FC mapping) hash the
 * whole batch as one pass.
 */
int64_t
rowsPerDetectionPass(const LayerShape &shape, int64_t batch)
{
    switch (shape.type) {
      case LayerType::Conv:
        if (shape.kernel == 1)
            return pointwiseBatch(shape, batch);
        return shape.vectorsPerChannel();
      case LayerType::FullyConnected:
      case LayerType::Attention:
        return batch * shape.vectorsPerImage();
      case LayerType::Pool:
        return 0;
    }
    return 0;
}

/**
 * Whether the configured overlap mode streams a detection pass of
 * this shape — Auto resolves through the same threads x rows policy
 * the functional pipeline applies (PipelineConfig::resolvedOverlapFor),
 * so the modeled critical path matches the executed schedule.
 */
bool
overlapsDetection(const AcceleratorConfig &config, const LayerShape &shape,
                  int64_t batch)
{
    PipelineConfig pipe;
    pipe.threads = config.pipelineThreads;
    pipe.overlap = config.overlapDetection;
    return pipe.resolvedOverlapFor(rowsPerDetectionPass(shape, batch)) ==
           OverlapMode::On;
}

} // namespace

uint64_t
Dataflow::baselineLayerCycles(const LayerShape &shape, int64_t batch) const
{
    switch (shape.type) {
      case LayerType::Conv:
        if (shape.kernel == 1) {
            return fcBaseline(pointwiseAsFc(shape),
                              pointwiseBatch(shape, batch));
        }
        return static_cast<uint64_t>(batch) *
               static_cast<uint64_t>(shape.inChannels) *
               convChannelBaseline(shape);
      case LayerType::FullyConnected:
      case LayerType::Attention:
        return fcBaseline(shape, batch);
      case LayerType::Pool:
        return poolCycles(shape, batch);
    }
    panic("unknown layer type");
}

LayerCycles
Dataflow::mercuryLayerCycles(const LayerShape &shape, int64_t batch,
                             const HitMix &channel_mix, int sig_bits,
                             bool saved_signatures) const
{
    if (!channel_mix.consistent())
        panic("inconsistent hit mix for layer ", shape.name);
    LayerCycles c;
    switch (shape.type) {
      case LayerType::Conv: {
        if (shape.kernel == 1) {
            c = fcMercury(pointwiseAsFc(shape),
                          pointwiseBatch(shape, batch), channel_mix,
                          sig_bits, saved_signatures);
            break;
        }
        const LayerCycles per_channel = convChannelMercury(
            shape, channel_mix, sig_bits, saved_signatures);
        const uint64_t n = static_cast<uint64_t>(batch) *
                           static_cast<uint64_t>(shape.inChannels);
        c.baseline = per_channel.baseline * n;
        c.computation = per_channel.computation * n;
        c.signature = per_channel.signature * n;
        c.cacheOverhead = per_channel.cacheOverhead * n;
        break;
      }
      case LayerType::FullyConnected:
      case LayerType::Attention:
        c = fcMercury(shape, batch, channel_mix, sig_bits,
                      saved_signatures);
        break;
      case LayerType::Pool:
        c.baseline = poolCycles(shape, batch);
        c.computation = c.baseline;
        return c; // no signature work to overlap
      default:
        panic("unknown layer type");
    }

    // Overlapped detection (§III-B, Fig. 8): signature generation
    // streams ahead of the filter passes, so only the portion that
    // exceeds the layer's compute time is exposed on the critical
    // path. Serial accounting charges the full generation cost.
    if (overlapsDetection(config_, shape, batch))
        c.signature -= std::min(c.signature, c.computation);
    return c;
}

namespace {

/** Vectors a layer hashes over a batch (for the replay charge). */
uint64_t
hashedVectors(const LayerShape &shape, int64_t batch)
{
    switch (shape.type) {
      case LayerType::Conv:
        if (shape.kernel == 1)
            return static_cast<uint64_t>(pointwiseBatch(shape, batch));
        return static_cast<uint64_t>(batch) *
               static_cast<uint64_t>(shape.inChannels) *
               static_cast<uint64_t>(shape.vectorsPerChannel());
      case LayerType::FullyConnected:
      case LayerType::Attention:
        return static_cast<uint64_t>(batch) *
               static_cast<uint64_t>(shape.vectorsPerImage());
      case LayerType::Pool:
        return 0;
    }
    return 0;
}

} // namespace

LayerCycles
Dataflow::backwardLayerCycles(const LayerShape &shape, int64_t batch,
                              const HitMix &channel_mix, int sig_bits,
                              bool include_weight_grad) const
{
    LayerCycles c;
    if (!config_.backwardReuse || !shape.reusable()) {
        // No replay: the input-gradient pass runs at the baseline
        // cost (pooling backward mirrors pooling forward too).
        c.baseline = baselineLayerCycles(shape, batch);
        c.computation = c.baseline;
    } else {
        // Replayed reuse: the compute shrinkage follows the forward
        // accounting with signature generation free (saved
        // signatures, §III-C2) — then the replay streaming charge and
        // the vanished insert serialization are applied on top.
        c = mercuryLayerCycles(shape, batch, channel_mix, sig_bits,
                               /*saved_signatures=*/true);
        c.cacheOverhead = 0; // replay performs no MCACHE inserts
        c.signature = signatureReplayCycles(
            hashedVectors(shape, batch),
            static_cast<uint64_t>(config_.numPEs));
        // Fig. 8 extended to backward: the replay stream hides under
        // the remaining gradient compute when detection overlap is
        // on.
        if (overlapsDetection(config_, shape, batch))
            c.signature -= std::min(c.signature, c.computation);
    }
    if (include_weight_grad) {
        c += weightGradLayerCycles(shape, batch, channel_mix, sig_bits);
    }
    return c;
}

LayerCycles
Dataflow::weightGradLayerCycles(const LayerShape &shape, int64_t batch,
                                const HitMix &channel_mix,
                                int sig_bits) const
{
    if (!config_.weightGradReuse || !shape.reusable()) {
        // No replay: dW walks the same MAC structure as the forward
        // pass, at the baseline cost.
        LayerCycles c;
        c.baseline = baselineLayerCycles(shape, batch);
        c.computation = c.baseline;
        return c;
    }

    // Replayed sum-then-multiply (§III-C2 on Eq. 1): the owner-only
    // outer products follow the forward compute shrinkage with
    // signature generation free; on top, every HIT row pays one
    // accumulate add per filter to fold its output gradient into the
    // owner's group sum, spread across the PEs.
    LayerCycles c = mercuryLayerCycles(shape, batch, channel_mix,
                                       sig_bits,
                                       /*saved_signatures=*/true);
    c.cacheOverhead = 0; // replay performs no MCACHE inserts
    const uint64_t vectors = hashedVectors(shape, batch);
    const uint64_t hits = static_cast<uint64_t>(std::llround(
        channel_mix.hitFraction() * static_cast<double>(vectors)));
    c.computation += ceilDiv(
        hits * static_cast<uint64_t>(shape.weightVectors()),
        static_cast<uint64_t>(config_.numPEs));
    c.signature = signatureReplayCycles(
        vectors, static_cast<uint64_t>(config_.numPEs));
    if (overlapsDetection(config_, shape, batch))
        c.signature -= std::min(c.signature, c.computation);
    return c;
}

uint64_t
Dataflow::recordSpillBytes(const LayerShape &shape, int64_t batch,
                           int sig_bits) const
{
    if (!shape.reusable())
        return 0;
    // Per recorded row: the bit-packed signature words, a 4-byte
    // entry id, and a 1-byte outcome — SignatureRecord's layout.
    const uint64_t per_row =
        static_cast<uint64_t>((sig_bits + 63) / 64) * 8 + 4 + 1;
    return hashedVectors(shape, batch) * per_row;
}

uint64_t
Dataflow::fcBaseline(const LayerShape &shape, int64_t batch) const
{
    // One PE per input vector, streaming the M weight vectors
    // serially (§III-C3). Work is spread over all PEs.
    const uint64_t n = static_cast<uint64_t>(batch) *
                       static_cast<uint64_t>(shape.vectorsPerImage());
    const uint64_t d = static_cast<uint64_t>(shape.vectorDim());
    const uint64_t m = static_cast<uint64_t>(shape.weightVectors());
    const uint64_t per_input = m * broadcastDotCycles(d);
    return ceilDiv(n * per_input, static_cast<uint64_t>(config_.numPEs));
}

LayerCycles
Dataflow::fcMercury(const LayerShape &shape, int64_t batch,
                    const HitMix &mix, int sig_bits,
                    bool saved_signatures) const
{
    const uint64_t n = static_cast<uint64_t>(batch) *
                       static_cast<uint64_t>(shape.vectorsPerImage());
    const uint64_t d = static_cast<uint64_t>(shape.vectorDim());
    const uint64_t m = static_cast<uint64_t>(shape.weightVectors());
    const uint64_t p = static_cast<uint64_t>(config_.numPEs);
    const HitMix full = mix.scaledTo(static_cast<int64_t>(n));

    LayerCycles c;
    c.baseline = fcBaseline(shape, batch);

    // Free PEs pull the next input as soon as they finish (the
    // "earlier PE" scheme), so the layer behaves like a work queue:
    // misses compute all M dot products; hits only receive M results
    // from the matching earlier PE.
    const uint64_t miss_work =
        static_cast<uint64_t>(full.misses()) * m * broadcastDotCycles(d);
    const uint64_t hit_work =
        static_cast<uint64_t>(full.hit) * m *
        static_cast<uint64_t>(config_.sim.resultSendCycles);
    c.computation = ceilDiv(miss_work + hit_work, p);

    if (!saved_signatures) {
        const uint64_t sig_work = n * static_cast<uint64_t>(sig_bits) *
                                  broadcastDotCycles(d);
        c.signature = ceilDiv(sig_work, p);
    }
    c.cacheOverhead = insertOverhead(full);
    return c;
}

uint64_t
Dataflow::poolCycles(const LayerShape &shape, int64_t batch) const
{
    // Pooling is elementwise over k*k windows; it is spread across
    // all PEs and is identical for baseline and MERCURY.
    return ceilDiv(shape.macCount(batch),
                   static_cast<uint64_t>(config_.numPEs)) +
           1;
}

// ---------------------------------------------------------------------
// Row stationary
// ---------------------------------------------------------------------

RowStationaryDataflow::RowStationaryDataflow(const AcceleratorConfig &cfg)
    : Dataflow(cfg)
{
}

int64_t
RowStationaryDataflow::numPESets(int64_t x) const
{
    const int64_t sets = config_.numPEs / std::max<int64_t>(x, 1);
    return std::max<int64_t>(sets, 1);
}

uint64_t
RowStationaryDataflow::convChannelBaseline(const LayerShape &shape) const
{
    const int64_t x = shape.kernel;
    const int64_t sets = numPESets(x);
    const uint64_t v = static_cast<uint64_t>(shape.vectorsPerChannel());
    const uint64_t vps = ceilDiv(v, static_cast<uint64_t>(sets));
    return static_cast<uint64_t>(shape.weightVectors()) *
           pipelinedPassCycles(vps, static_cast<uint64_t>(x));
}

void
RowStationaryDataflow::perSetMix(const LayerShape &shape, const HitMix &mix,
                                 std::vector<HitMix> &out) const
{
    const int64_t sets = numPESets(shape.kernel);
    const int64_t v = shape.vectorsPerChannel();
    const HitMix scaled = mix.scaledTo(v);
    out.clear();
    out.reserve(static_cast<size_t>(sets));

    // Largest-remainder apportionment of vectors, then of hits/mnus
    // within each set. Sets receive floor/ceil vector counts.
    int64_t rem_v = v, rem_hit = scaled.hit, rem_mnu = scaled.mnu;
    for (int64_t s = 0; s < sets; ++s) {
        const int64_t sets_left = sets - s;
        HitMix m;
        m.vectors = (rem_v + sets_left - 1) / sets_left;
        // Hits proportional to remaining share.
        m.hit = rem_v ? (rem_hit * m.vectors + rem_v - 1) / rem_v : 0;
        m.hit = std::min(m.hit, std::min(rem_hit, m.vectors));
        m.mnu = rem_v ? (rem_mnu * m.vectors) / rem_v : 0;
        m.mnu = std::min(m.mnu, std::min(rem_mnu, m.vectors - m.hit));
        m.mau = m.vectors - m.hit - m.mnu;
        out.push_back(m);
        rem_v -= m.vectors;
        rem_hit -= m.hit;
        rem_mnu -= m.mnu;
        if (rem_v == 0)
            break;
    }
}

LayerCycles
RowStationaryDataflow::convChannelMercury(const LayerShape &shape,
                                          const HitMix &mix, int sig_bits,
                                          bool saved_signatures) const
{
    const uint64_t x = static_cast<uint64_t>(shape.kernel);
    const uint64_t cout = static_cast<uint64_t>(shape.weightVectors());
    std::vector<HitMix> sets;
    perSetMix(shape, mix, sets);

    LayerCycles c;
    c.baseline = convChannelBaseline(shape);

    // Per-set per-filter compute cost: stream the set's non-HIT
    // vectors through the pipelined schedule. HIT results are fetched
    // from MCACHE by entry id on a parallel path (§V: shared slice
    // registers readable within a fixed delay), so they only bound
    // the pass when fetches outnumber compute cycles.
    uint64_t max_filter_cost = 0;
    uint64_t sum_filter_cost = 0;
    uint64_t max_sig_cost = 0;
    uint64_t sum_sig_cost = 0;
    for (const HitMix &m : sets) {
        const uint64_t filter_cost = std::max(
            pipelinedPassCycles(static_cast<uint64_t>(m.misses()), x),
            static_cast<uint64_t>(m.hit) *
                static_cast<uint64_t>(config_.sim.cacheReadCycles));
        max_filter_cost = std::max(max_filter_cost, filter_cost);
        sum_filter_cost += filter_cost;
        const uint64_t sig_cost =
            saved_signatures
                ? 0
                : static_cast<uint64_t>(sig_bits) *
                      pipelinedPassCycles(
                          static_cast<uint64_t>(m.vectors), x);
        max_sig_cost = std::max(max_sig_cost, sig_cost);
        sum_sig_cost += sig_cost;
    }
    const uint64_t nsets = std::max<uint64_t>(sets.size(), 1);

    const bool async =
        config_.asyncDesign && config_.filterBufferSlots >= 2;
    if (async) {
        // Imbalance is smoothed over passes; long-run cost is the
        // average set load plus one drain of the worst-vs-average gap.
        const uint64_t avg_compute =
            ceilDiv(sum_filter_cost * cout, nsets);
        const uint64_t max_compute = max_filter_cost * cout;
        c.computation = avg_compute + (max_compute - avg_compute) /
                                          std::max<uint64_t>(cout, 1);
        c.signature = ceilDiv(sum_sig_cost, nsets);
    } else {
        c.computation = max_filter_cost * cout;
        c.signature = max_sig_cost;
    }
    c.cacheOverhead = insertOverhead(mix.scaledTo(
        shape.vectorsPerChannel()));
    return c;
}

// ---------------------------------------------------------------------
// Weight stationary
// ---------------------------------------------------------------------

WeightStationaryDataflow::WeightStationaryDataflow(
    const AcceleratorConfig &cfg)
    : Dataflow(cfg)
{
}

namespace {

/**
 * Weight-stationary mapping: one weight element per PE, so a filter
 * of d weights occupies d PEs and numPEs/d filters are resident at
 * once. A streaming pass broadcasts v vectors through the resident
 * filters at one vector per cycle after a d-cycle pipeline fill.
 */
uint64_t
wsFiltersInFlight(int num_pes, uint64_t d)
{
    return std::max<uint64_t>(static_cast<uint64_t>(num_pes) / d, 1);
}

uint64_t
wsPassCycles(uint64_t vectors, uint64_t d)
{
    if (vectors == 0)
        return 0;
    return vectors + d;
}

} // namespace

uint64_t
WeightStationaryDataflow::convChannelBaseline(const LayerShape &shape) const
{
    const uint64_t d = static_cast<uint64_t>(shape.vectorDim());
    const uint64_t in_flight = wsFiltersInFlight(config_.numPEs, d);
    const uint64_t groups =
        ceilDiv(static_cast<uint64_t>(shape.weightVectors()), in_flight);
    const uint64_t v = static_cast<uint64_t>(shape.vectorsPerChannel());
    return groups * wsPassCycles(v, d);
}

LayerCycles
WeightStationaryDataflow::convChannelMercury(const LayerShape &shape,
                                             const HitMix &mix,
                                             int sig_bits,
                                             bool saved_signatures) const
{
    const uint64_t d = static_cast<uint64_t>(shape.vectorDim());
    const uint64_t in_flight = wsFiltersInFlight(config_.numPEs, d);
    const uint64_t groups =
        ceilDiv(static_cast<uint64_t>(shape.weightVectors()), in_flight);
    const uint64_t v = static_cast<uint64_t>(shape.vectorsPerChannel());
    const HitMix m = mix.scaledTo(static_cast<int64_t>(v));

    LayerCycles c;
    c.baseline = convChannelBaseline(shape);

    // Signatures: the random filters are loaded "as the first part of
    // filters" (§IV), i.e. they are prepended to the layer's filter
    // list and share group slots with regular filters. The cost is
    // therefore only the *extra* group passes the longer filter list
    // needs — often a single pass, since the last group's slack
    // absorbs part of the random filters.
    if (!saved_signatures) {
        const uint64_t cout =
            static_cast<uint64_t>(shape.weightVectors());
        const uint64_t groups_with_sig =
            ceilDiv(cout + static_cast<uint64_t>(sig_bits), in_flight);
        c.signature = (groups_with_sig - groups) * wsPassCycles(v, d);
    }

    // Compute: HIT vectors are skipped while streaming from the
    // global buffer. Their reused results are copied from MCACHE to
    // the output buffer by the cache controller, in parallel with the
    // PE stream; one lookup per skipped vector reaches the line whose
    // multi-version data covers the resident filters.
    c.computation =
        groups * wsPassCycles(static_cast<uint64_t>(m.misses()), d) +
        static_cast<uint64_t>(m.hit) *
            static_cast<uint64_t>(config_.sim.cacheReadCycles);
    c.cacheOverhead = insertOverhead(m);
    return c;
}

// ---------------------------------------------------------------------
// Input stationary
// ---------------------------------------------------------------------

InputStationaryDataflow::InputStationaryDataflow(
    const AcceleratorConfig &cfg)
    : Dataflow(cfg)
{
}

namespace {

/**
 * Input-stationary mapping: one input-vector element per PE, so a
 * vector of d elements occupies d PEs and numPEs/d vectors are
 * resident at once. A round streams `weights` filters through the
 * resident vectors, d broadcast cycles per filter.
 */
uint64_t
isVectorsInFlight(int num_pes, uint64_t d)
{
    return std::max<uint64_t>(static_cast<uint64_t>(num_pes) / d, 1);
}

uint64_t
isRoundCycles(uint64_t weights, uint64_t d)
{
    if (weights == 0)
        return 0;
    return weights * d + 1;
}

} // namespace

uint64_t
InputStationaryDataflow::convChannelBaseline(const LayerShape &shape) const
{
    const uint64_t d = static_cast<uint64_t>(shape.vectorDim());
    const uint64_t v = static_cast<uint64_t>(shape.vectorsPerChannel());
    const uint64_t rounds =
        ceilDiv(v, isVectorsInFlight(config_.numPEs, d));
    return rounds *
           isRoundCycles(static_cast<uint64_t>(shape.weightVectors()), d);
}

LayerCycles
InputStationaryDataflow::convChannelMercury(const LayerShape &shape,
                                            const HitMix &mix,
                                            int sig_bits,
                                            bool saved_signatures) const
{
    const uint64_t d = static_cast<uint64_t>(shape.vectorDim());
    const uint64_t v = static_cast<uint64_t>(shape.vectorsPerChannel());
    const uint64_t in_flight = isVectorsInFlight(config_.numPEs, d);
    const uint64_t cout = static_cast<uint64_t>(shape.weightVectors());
    const HitMix m = mix.scaledTo(static_cast<int64_t>(v));

    LayerCycles c;
    c.baseline = convChannelBaseline(shape);

    // Signatures: all vectors are loaded once and the N random
    // vectors are broadcast like weights (§IV).
    if (!saved_signatures) {
        c.signature = ceilDiv(v, in_flight) *
                      isRoundCycles(static_cast<uint64_t>(sig_bits), d);
    }

    // Compute: HIT vectors are never re-loaded, shrinking the number
    // of resident rounds ("MCACHE skips the rest of the weights and
    // loads the next input vector"). Reused results stream from
    // MCACHE to the output buffer in parallel, one lookup per hit.
    const uint64_t miss_rounds =
        ceilDiv(static_cast<uint64_t>(m.misses()), in_flight);
    c.computation =
        miss_rounds * isRoundCycles(cout, d) +
        static_cast<uint64_t>(m.hit) *
            static_cast<uint64_t>(config_.sim.cacheReadCycles);
    c.cacheOverhead = insertOverhead(m);
    return c;
}

} // namespace mercury
