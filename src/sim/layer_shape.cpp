#include "sim/layer_shape.hpp"

#include "util/logging.hpp"

namespace mercury {

const char *
layerTypeName(LayerType type)
{
    switch (type) {
      case LayerType::Conv:
        return "conv";
      case LayerType::FullyConnected:
        return "fc";
      case LayerType::Attention:
        return "attention";
      case LayerType::Pool:
        return "pool";
    }
    return "?";
}

LayerShape
LayerShape::conv(std::string name, int64_t c_in, int64_t c_out, int64_t h,
                 int64_t w, int64_t k, int64_t stride, int64_t pad,
                 int64_t groups)
{
    LayerShape s;
    s.type = LayerType::Conv;
    s.name = std::move(name);
    s.inChannels = c_in;
    s.outChannels = c_out;
    s.inH = h;
    s.inW = w;
    s.kernel = k;
    s.stride = stride;
    s.pad = pad;
    s.groups = groups;
    return s;
}

LayerShape
LayerShape::fc(std::string name, int64_t in_f, int64_t out_f)
{
    LayerShape s;
    s.type = LayerType::FullyConnected;
    s.name = std::move(name);
    s.inFeatures = in_f;
    s.outFeatures = out_f;
    return s;
}

LayerShape
LayerShape::attention(std::string name, int64_t seq_len, int64_t embed_dim)
{
    LayerShape s;
    s.type = LayerType::Attention;
    s.name = std::move(name);
    s.seqLen = seq_len;
    s.embedDim = embed_dim;
    return s;
}

LayerShape
LayerShape::pool(std::string name, int64_t c, int64_t h, int64_t w,
                 int64_t k, int64_t stride)
{
    LayerShape s;
    s.type = LayerType::Pool;
    s.name = std::move(name);
    s.inChannels = c;
    s.outChannels = c;
    s.inH = h;
    s.inW = w;
    s.kernel = k;
    s.stride = stride;
    return s;
}

int64_t
LayerShape::vectorDim() const
{
    switch (type) {
      case LayerType::Conv:
      case LayerType::Pool:
        return kernel * kernel;
      case LayerType::FullyConnected:
        return inFeatures;
      case LayerType::Attention:
        return embedDim;
    }
    return 0;
}

int64_t
LayerShape::vectorsPerImage() const
{
    switch (type) {
      case LayerType::Conv:
      case LayerType::Pool:
        return vectorsPerChannel();
      case LayerType::FullyConnected:
        return 1; // one vector per image per FC layer
      case LayerType::Attention:
        return seqLen;
    }
    return 0;
}

int64_t
LayerShape::weightVectors() const
{
    switch (type) {
      case LayerType::Conv:
        // Each input channel's vectors meet only its group's filters.
        return outChannels / groups;
      case LayerType::FullyConnected:
        return outFeatures;
      case LayerType::Attention:
        // W = X Xt needs seqLen rows; Y = W X needs embedDim columns.
        return seqLen + embedDim;
      case LayerType::Pool:
        return 0;
    }
    return 0;
}

uint64_t
LayerShape::macCount(int64_t batch) const
{
    const uint64_t b = static_cast<uint64_t>(batch);
    switch (type) {
      case LayerType::Conv:
        return b * static_cast<uint64_t>(vectorsPerChannel()) *
               static_cast<uint64_t>(inChannels) *
               static_cast<uint64_t>(outChannels / groups) *
               static_cast<uint64_t>(kernel * kernel);
      case LayerType::FullyConnected:
        return b * static_cast<uint64_t>(inFeatures) *
               static_cast<uint64_t>(outFeatures);
      case LayerType::Attention:
        return b * static_cast<uint64_t>(seqLen) *
               static_cast<uint64_t>(embedDim) *
               static_cast<uint64_t>(seqLen + embedDim);
      case LayerType::Pool:
        return b * static_cast<uint64_t>(vectorsPerChannel()) *
               static_cast<uint64_t>(inChannels) *
               static_cast<uint64_t>(kernel * kernel);
    }
    return 0;
}

} // namespace mercury
