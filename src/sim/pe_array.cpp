#include "sim/pe_array.hpp"

#include "util/logging.hpp"

namespace mercury {

void
PE::reset()
{
    inputReg = 0.0f;
    weightReg = 0.0f;
    partialSum = 0.0f;
    orgReg = 0.0f;
    inputBufValid[0] = inputBufValid[1] = false;
    inUse = 0;
    flUse = 0;
}

PEArray::PEArray(const AcceleratorConfig &config, int64_t set_size)
    : numPEs_(config.numPEs), setSize_(set_size)
{
    if (set_size <= 0)
        panic("PEArray set size must be positive, got ", set_size);
    if (set_size > config.numPEs)
        panic("PE set size ", set_size, " exceeds PE count ",
              config.numPEs);
    numSets_ = config.numPEs / set_size;
    pes_.assign(static_cast<size_t>(numSets_ * setSize_), PE{});
    busy_.assign(static_cast<size_t>(numSets_), false);
}

int64_t
PEArray::idlePEs() const
{
    return numPEs_ - numSets_ * setSize_;
}

PE &
PEArray::pe(int64_t set, int64_t pos)
{
    if (set < 0 || set >= numSets_ || pos < 0 || pos >= setSize_)
        panic("PE index (", set, ", ", pos, ") out of range");
    return pes_[static_cast<size_t>(set * setSize_ + pos)];
}

void
PEArray::setBusy(int64_t set, bool b)
{
    if (set < 0 || set >= numSets_)
        panic("busy index ", set, " out of range");
    busy_[static_cast<size_t>(set)] = b;
}

bool
PEArray::allIdle() const
{
    for (bool b : busy_)
        if (b)
            return false;
    return true;
}

std::vector<int64_t>
PEArray::distributeVectors(int64_t vectors) const
{
    std::vector<int64_t> counts(static_cast<size_t>(numSets_), 0);
    if (vectors < 0)
        panic("negative vector count ", vectors);
    const int64_t base = vectors / numSets_;
    const int64_t extra = vectors % numSets_;
    for (int64_t i = 0; i < numSets_; ++i)
        counts[static_cast<size_t>(i)] = base + (i < extra ? 1 : 0);
    return counts;
}

void
PEArray::reset()
{
    for (auto &p : pes_)
        p.reset();
    busy_.assign(busy_.size(), false);
}

} // namespace mercury
