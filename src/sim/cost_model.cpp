#include "sim/cost_model.hpp"

#include <cstdio>

#include "core/runtime_planner.hpp"
#include "sim/event_model/event_model.hpp"

namespace mercury {
namespace sim {

ComponentStats &
ComponentStats::operator+=(const ComponentStats &other)
{
    dram.requests += other.dram.requests;
    dram.bytes += other.dram.bytes;
    dram.rowHits += other.dram.rowHits;
    dram.rowMisses += other.dram.rowMisses;
    dram.bankConflictCycles += other.dram.bankConflictCycles;
    dram.busyCycles += other.dram.busyCycles;
    gbuf.accesses += other.gbuf.accesses;
    gbuf.bytes += other.gbuf.bytes;
    gbuf.bankConflictCycles += other.gbuf.bankConflictCycles;
    gbuf.fills += other.gbuf.fills;
    gbuf.pendingStallCycles += other.gbuf.pendingStallCycles;
    gbuf.spillBytes += other.gbuf.spillBytes;
    mcache.probes += other.mcache.probes;
    mcache.hits += other.mcache.hits;
    mcache.inserts += other.mcache.inserts;
    mcache.insertSerialCycles += other.mcache.insertSerialCycles;
    pe.passes += other.pe.passes;
    pe.busyCycles += other.pe.busyCycles;
    pe.memStallCycles += other.pe.memStallCycles;
    return *this;
}

void
ComponentStats::print(uint64_t total_cycles) const
{
    const double t = total_cycles > 0
                         ? static_cast<double>(total_cycles) / 100.0
                         : 1.0;
    std::printf("  dram:   %llu reqs, %llu B, row hit %llu / miss %llu, "
                "bank-conflict %llu cyc, occupancy %.1f%%\n",
                (unsigned long long)dram.requests,
                (unsigned long long)dram.bytes,
                (unsigned long long)dram.rowHits,
                (unsigned long long)dram.rowMisses,
                (unsigned long long)dram.bankConflictCycles,
                static_cast<double>(dram.busyCycles) / t);
    std::printf("  gbuf:   %llu accesses, %llu B, %llu fills, "
                "bank-conflict %llu cyc, pending-stall %llu cyc, "
                "spill %llu B\n",
                (unsigned long long)gbuf.accesses,
                (unsigned long long)gbuf.bytes,
                (unsigned long long)gbuf.fills,
                (unsigned long long)gbuf.bankConflictCycles,
                (unsigned long long)gbuf.pendingStallCycles,
                (unsigned long long)gbuf.spillBytes);
    std::printf("  mcache: %llu probes (%llu hit), %llu inserts, "
                "insert-serial %llu cyc\n",
                (unsigned long long)mcache.probes,
                (unsigned long long)mcache.hits,
                (unsigned long long)mcache.inserts,
                (unsigned long long)mcache.insertSerialCycles);
    std::printf("  pe:     %llu passes, occupancy %.1f%%, mem-stall "
                "%llu cyc\n",
                (unsigned long long)pe.passes,
                static_cast<double>(pe.busyCycles) / t,
                (unsigned long long)pe.memStallCycles);
}

CostModel::CostModel(const AcceleratorConfig &cfg)
    : cfg_(cfg), flow_(Dataflow::create(cfg))
{
}

std::unique_ptr<CostModel>
CostModel::create(const AcceleratorConfig &cfg)
{
    switch (resolvedSimBackend(cfg.sim.backend)) {
    case SimBackend::Event:
        return std::make_unique<EventModel>(cfg);
    case SimBackend::Analytic:
        break;
    }
    return std::make_unique<AnalyticModel>(cfg);
}

const char *
resolvedBackendName(const AcceleratorConfig &cfg)
{
    return simBackendName(resolvedSimBackend(cfg.sim.backend));
}

uint64_t
CostModel::baselineCycles(const LayerShape &shape, int64_t batch) const
{
    return flow_->baselineLayerCycles(shape, batch);
}

LayerCycles
CostModel::layerCost(const LayerShape &shape, int64_t batch,
                     const HitMix &channel_mix, int sig_bits,
                     bool saved_signatures) const
{
    return flow_->mercuryLayerCycles(shape, batch, channel_mix, sig_bits,
                                     saved_signatures);
}

LayerCycles
CostModel::backwardCost(const LayerShape &shape, int64_t batch,
                        const HitMix &channel_mix, int sig_bits,
                        bool include_weight_grad) const
{
    return flow_->backwardLayerCycles(shape, batch, channel_mix, sig_bits,
                                      include_weight_grad);
}

LayerCycles
CostModel::weightGradCost(const LayerShape &shape, int64_t batch,
                          const HitMix &channel_mix, int sig_bits) const
{
    return flow_->weightGradLayerCycles(shape, batch, channel_mix,
                                        sig_bits);
}

uint64_t
CostModel::recordBytes(const LayerShape &shape, int64_t batch,
                       int sig_bits) const
{
    return flow_->recordSpillBytes(shape, batch, sig_bits);
}

namespace {

/** One reconstructed timing shape per plan layer. */
LayerShape
shapeFromLayerDesc(const LayerStepDesc &op, size_t index)
{
    const std::string name = "plan" + std::to_string(index);
    switch (op.kind) {
    case StepOpKind::Conv:
        return LayerShape::conv(name, op.conv.inChannels,
                                op.conv.outChannels, op.inH, op.inW,
                                op.conv.kernelH, op.conv.stride,
                                op.conv.pad, op.conv.groups);
    case StepOpKind::Dense:
        return LayerShape::fc(name, op.inFeatures, op.outFeatures);
    case StepOpKind::Attention:
        return LayerShape::attention(name, op.seqLen, op.embedDim);
    default:
        break;
    }
    return LayerShape{};
}

} // namespace

std::vector<LayerShape>
planLayerStack(const StepPlan &plan, std::vector<size_t> *reuse_index)
{
    std::vector<LayerShape> out;
    if (reuse_index)
        reuse_index->clear();
    for (size_t j = 0; j < plan.layers.size(); ++j) {
        const LayerPlan &lp = plan.layers[j];
        if (reuse_index)
            reuse_index->push_back(out.size());
        out.push_back(shapeFromLayerDesc(lp.desc, j));
        // Pools riding a fused edge come back as stack entries so the
        // closed-form step model fuses the same conv→conv pairs the
        // plan did (trailing pools outside any edge are not in the
        // plan and stay absent — schedule glue without a descriptor).
        if (lp.nextConv >= 0 && lp.desc.kind == StepOpKind::Conv) {
            int64_t c = lp.desc.conv.outChannels;
            int64_t h = lp.outH;
            int64_t w = lp.outW;
            for (StepOpKind t : lp.edgeTransforms) {
                if (t != StepOpKind::MaxPool2x2)
                    continue;
                out.push_back(LayerShape::pool(
                    "plan" + std::to_string(j) + ".pool", c, h, w, 2, 2));
                h /= 2;
                w /= 2;
            }
        }
    }
    return out;
}

AnalyticModel::AnalyticModel(const AcceleratorConfig &cfg) : CostModel(cfg)
{
}

LayerCycles
aggregateStepCycles(const CostModel &model,
                    const std::vector<LayerShape> &stack,
                    const std::vector<HitMix> &mixes, int64_t batch,
                    int sig_bits)
{
    const AcceleratorConfig &cfg = model.config();
    LayerCycles total;
    for (size_t i = 0; i < stack.size(); ++i) {
        const LayerShape &shape = stack[i];
        if (!shape.reusable()) {
            const uint64_t pool = model.baselineCycles(shape, batch);
            total.baseline += pool;
            total.computation += pool;
            continue;
        }
        total += model.layerCost(shape, batch, mixes[i], sig_bits);
        if (cfg.backwardReuse || cfg.weightGradReuse)
            total += model.backwardCost(shape, batch, mixes[i], sig_bits,
                                        cfg.weightGradReuse);
    }
    return total;
}

CostBreakdown
AnalyticModel::stepCost(const std::vector<LayerShape> &stack,
                        const std::vector<HitMix> &mixes, int64_t batch,
                        int sig_bits) const
{
    CostBreakdown out;
    out.cycles = aggregateStepCycles(*this, stack, mixes, batch, sig_bits);
    const PlannedStepModel m =
        modelPlannedStep(cfg_, stack, mixes, batch, sig_bits);
    out.barrierCycles = m.barrierCycles;
    out.plannedCycles = m.plannedCycles;
    out.setupCycles = m.setupCycles;
    out.hiddenSignature = m.hiddenSignature;
    out.fusedEdges = m.fusedEdges;
    return out;
}

CostBreakdown
AnalyticModel::stepCost(const StepPlan &plan,
                        const std::vector<HitMix> &mixes,
                        int sig_bits) const
{
    std::vector<size_t> reuse_index;
    const std::vector<LayerShape> stack =
        planLayerStack(plan, &reuse_index);
    std::vector<HitMix> full(stack.size());
    for (size_t j = 0; j < reuse_index.size() && j < mixes.size(); ++j)
        full[reuse_index[j]] = mixes[j];
    return stepCost(stack, full, plan.batch, sig_bits);
}

} // namespace sim
} // namespace mercury
