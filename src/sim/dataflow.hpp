/**
 * @file
 * Dataflow timing models for the baseline accelerator and MERCURY.
 *
 * Each model answers two questions for a layer:
 *  - how many cycles does the baseline machine spend on it, and
 *  - how many cycles does MERCURY spend, given the HIT/MAU/MNU mix
 *    that the similarity detector measured for one channel pass and
 *    the current signature length.
 *
 * The conv timing is statistical-per-channel: channels of a layer are
 * treated as identically distributed, so the per-channel cost is
 * computed once and scaled by (batch x inChannels). The HIT/MAU/MNU
 * mix itself comes from running the real RPQ + MCACHE machinery on
 * extracted vectors (see core/similarity_detector.hpp).
 *
 * Synchronous design: every phase barriers across PE sets, so a
 * channel costs the *slowest* set's time per filter pass.
 * Asynchronous design (double input buffers, M-slot shared filter
 * buffer, multi-version MCACHE): imbalance between PE sets is
 * smoothed across passes, so a long run costs the *average* set time,
 * plus a one-off drain. With a single filter slot the async design
 * degenerates to the synchronous one.
 *
 * DEPRECATION NOTE: calling Dataflow::create / the per-layer cycle
 * methods directly pins a consumer to the closed-form backend. New
 * consumers should go through sim::CostModel (sim/cost_model.hpp) —
 * the same arithmetic under the analytic backend, with the
 * discrete-event memory-hierarchy backend selectable by
 * SimConfig::backend / MERCURY_SIM_BACKEND. This header stays as the
 * compute model both backends share.
 */

#ifndef MERCURY_SIM_DATAFLOW_HPP
#define MERCURY_SIM_DATAFLOW_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/config.hpp"
#include "sim/layer_shape.hpp"

namespace mercury {

/** Outcome counts of hitmap construction over one vector population. */
struct HitMix
{
    int64_t vectors = 0; ///< total vectors hashed
    int64_t hit = 0;     ///< MCACHE hits (computation skipped)
    int64_t mau = 0;     ///< miss-and-update (tag inserted)
    int64_t mnu = 0;     ///< miss-no-update (set was full)

    int64_t misses() const { return mau + mnu; }
    double hitFraction() const;

    /** Construct from fractions (remainder becomes MAU). */
    static HitMix fromFractions(int64_t vectors, double hit_frac,
                                double mnu_frac = 0.0);

    /** Rescale the mix to a different population size. */
    HitMix scaledTo(int64_t new_vectors) const;

    /** Validate internal consistency (counts sum to vectors). */
    bool consistent() const { return hit + mau + mnu == vectors; }

    /** Accumulate another population's counts (pass aggregation). */
    HitMix &operator+=(const HitMix &other)
    {
        vectors += other.vectors;
        hit += other.hit;
        mau += other.mau;
        mnu += other.mnu;
        return *this;
    }
};

/** Cycle cost decomposition of one layer under MERCURY. */
struct LayerCycles
{
    uint64_t baseline = 0;      ///< baseline machine, no reuse
    uint64_t computation = 0;   ///< MERCURY: remaining layer computation
    uint64_t signature = 0;     ///< MERCURY: signature generation
    uint64_t cacheOverhead = 0; ///< MERCURY: MCACHE insert serialization

    /** Total MERCURY cycles. */
    uint64_t mercuryTotal() const
    {
        return computation + signature + cacheOverhead;
    }

    /** Baseline / MERCURY speedup for this aggregate. */
    double speedup() const;

    LayerCycles &operator+=(const LayerCycles &other);
};

/** Abstract dataflow timing model. */
class Dataflow
{
  public:
    virtual ~Dataflow() = default;

    /** Factory keyed on config.dataflow. */
    static std::unique_ptr<Dataflow> create(const AcceleratorConfig &cfg);

    virtual DataflowKind kind() const = 0;

    const AcceleratorConfig &config() const { return config_; }

    /** Baseline cycles for a whole layer over a batch. */
    uint64_t baselineLayerCycles(const LayerShape &shape,
                                 int64_t batch) const;

    /**
     * MERCURY cycles for a whole layer over a batch.
     *
     * @param channel_mix HIT/MAU/MNU mix of one channel pass (conv) or
     *                    one input-block pass (FC / attention)
     * @param sig_bits    current signature length
     * @param saved_signatures when true the signatures are reloaded
     *                    from the forward pass (§III-C2) and signature
     *                    generation is free
     *
     * With config.overlapDetection set, signature generation is
     * charged per the Fig. 8 overlap: only the part exceeding the
     * layer's compute cycles lands in LayerCycles::signature (the
     * rest hides under computation); serial accounting otherwise.
     */
    LayerCycles mercuryLayerCycles(const LayerShape &shape, int64_t batch,
                                   const HitMix &channel_mix, int sig_bits,
                                   bool saved_signatures = false) const;

    /**
     * MERCURY cycles of the input-gradient (backward) pass of a layer
     * (§III-C2). The backward MAC structure mirrors the forward pass
     * (Eq. 2 is a full correlation with the flipped kernel), so the
     * baseline backward cost equals the forward baseline.
     *
     * With config.backwardReuse off, backward runs without reuse and
     * costs the baseline. With it on, the forward pass's signatures
     * are *replayed* from the Signature Table: compute shrinks by the
     * forward hit fraction exactly as in the forward accounting, the
     * MCACHE insert serialization disappears (tags were placed on
     * forward; replay inserts nothing), and the signature charge is
     * the replay-only streaming cost (signatureReplayCycles) instead
     * of a regeneration. config.overlapDetection additionally hides
     * the replay charge under compute, Fig. 8-style.
     *
     * With `include_weight_grad` the result additionally carries the
     * weight-gradient pass (weightGradLayerCycles) — the full
     * backward half of a training step for this layer.
     */
    LayerCycles backwardLayerCycles(const LayerShape &shape, int64_t batch,
                                    const HitMix &channel_mix,
                                    int sig_bits,
                                    bool include_weight_grad = false) const;

    /**
     * MERCURY cycles of the weight-gradient (dW) pass of a layer
     * (§III-C2 applied to Eq. 1). dW = X ⊛ dY has the same MAC
     * structure as the forward pass, so its baseline equals the
     * forward baseline.
     *
     * With config.weightGradReuse off, the pass runs without reuse
     * and costs the baseline. With it on, the forward record is
     * replayed (sum-then-multiply): the outer products shrink by the
     * forward hit fraction exactly as in the forward accounting, each
     * HIT row instead pays one accumulate add per filter to fold its
     * output gradient into the owner's group sum (charged across the
     * PEs), the signature charge is the replay-only streaming cost,
     * and no MCACHE inserts happen. config.overlapDetection hides the
     * replay stream under the remaining compute, Fig. 8-style.
     */
    LayerCycles weightGradLayerCycles(const LayerShape &shape,
                                      int64_t batch,
                                      const HitMix &channel_mix,
                                      int sig_bits) const;

    /**
     * Bytes the SignatureRecord of one forward pass of this layer
     * occupies between forward and backward (§III-C2 spill
     * accounting): per hashed vector, the bit-packed signature words
     * plus the entry id and outcome — mirroring the functional
     * SignatureRecord storage layout, so the estimate matches
     * SignatureRecord::storageBytes for an engine-captured record of
     * the same geometry. Feed it to GlobalBuffer::holdRecord to model
     * the buffer occupancy (and spill traffic) of records held for
     * the gradient passes.
     */
    uint64_t recordSpillBytes(const LayerShape &shape, int64_t batch,
                              int sig_bits) const;

  protected:
    explicit Dataflow(const AcceleratorConfig &cfg);

    /** Baseline cycles of one conv channel pass (one image). */
    virtual uint64_t convChannelBaseline(const LayerShape &shape) const = 0;

    /** MERCURY cycles of one conv channel pass (one image). */
    virtual LayerCycles convChannelMercury(const LayerShape &shape,
                                           const HitMix &mix, int sig_bits,
                                           bool saved_signatures) const = 0;

    /** Serialization overhead of MAU inserts through set queues. */
    uint64_t insertOverhead(const HitMix &mix) const;

    AcceleratorConfig config_;

  private:
    uint64_t fcBaseline(const LayerShape &shape, int64_t batch) const;
    LayerCycles fcMercury(const LayerShape &shape, int64_t batch,
                          const HitMix &mix, int sig_bits,
                          bool saved_signatures) const;
    uint64_t poolCycles(const LayerShape &shape, int64_t batch) const;
};

/** Row-stationary (Eyeriss-style) machine: the paper's baseline. */
class RowStationaryDataflow : public Dataflow
{
  public:
    explicit RowStationaryDataflow(const AcceleratorConfig &cfg);

    DataflowKind kind() const override
    {
        return DataflowKind::RowStationary;
    }

    /** PE sets available for kernel height x. */
    int64_t numPESets(int64_t x) const;

  protected:
    uint64_t convChannelBaseline(const LayerShape &shape) const override;
    LayerCycles convChannelMercury(const LayerShape &shape,
                                   const HitMix &mix, int sig_bits,
                                   bool saved_signatures) const override;

  private:
    /** Split a channel mix across PE sets (largest-remainder). */
    void perSetMix(const LayerShape &shape, const HitMix &mix,
                   std::vector<HitMix> &out) const;
};

/** Weight-stationary machine (§IV). */
class WeightStationaryDataflow : public Dataflow
{
  public:
    explicit WeightStationaryDataflow(const AcceleratorConfig &cfg);

    DataflowKind kind() const override
    {
        return DataflowKind::WeightStationary;
    }

  protected:
    uint64_t convChannelBaseline(const LayerShape &shape) const override;
    LayerCycles convChannelMercury(const LayerShape &shape,
                                   const HitMix &mix, int sig_bits,
                                   bool saved_signatures) const override;
};

/** Input-stationary machine (§IV). */
class InputStationaryDataflow : public Dataflow
{
  public:
    explicit InputStationaryDataflow(const AcceleratorConfig &cfg);

    DataflowKind kind() const override
    {
        return DataflowKind::InputStationary;
    }

  protected:
    uint64_t convChannelBaseline(const LayerShape &shape) const override;
    LayerCycles convChannelMercury(const LayerShape &shape,
                                   const HitMix &mix, int sig_bits,
                                   bool saved_signatures) const override;
};

} // namespace mercury

#endif // MERCURY_SIM_DATAFLOW_HPP
