/**
 * @file
 * Accelerator configuration knobs shared by the timing models and the
 * MERCURY engines.
 *
 * Defaults follow the paper's experimental setup (§VI): an
 * Eyeriss-style row-stationary machine with 168 PEs, and a 1024-entry
 * 16-way MCACHE (64 sets).
 */

#ifndef MERCURY_SIM_CONFIG_HPP
#define MERCURY_SIM_CONFIG_HPP

#include <cstdint>

namespace mercury {

/** Which spatial dataflow the accelerator implements (§II-B, §IV). */
enum class DataflowKind
{
    RowStationary,
    WeightStationary,
    InputStationary,
};

/** Printable name of a dataflow. */
const char *dataflowName(DataflowKind kind);

/** Static hardware configuration of the simulated accelerator. */
struct AcceleratorConfig
{
    /** Number of hardware PEs (Eyeriss uses 168). */
    int numPEs = 168;

    /** Spatial dataflow of the machine. */
    DataflowKind dataflow = DataflowKind::RowStationary;

    /**
     * Asynchronous PE-set design (§III-C1). When false, PE sets
     * barrier after every filter pass (synchronous design).
     */
    bool asyncDesign = true;

    /** Shared filter-buffer slots M available to the async design. */
    int filterBufferSlots = 4;

    /** Cycles to fetch a computed result from MCACHE by entry id. */
    int cacheReadCycles = 1;

    /** Per-insert serialization cost of a set's queue controller (§V). */
    int cacheInsertCycles = 1;

    /** Cycles for an earlier PE to forward one FC result (§III-C3). */
    int resultSendCycles = 1;

    /** MCACHE organization: sets x ways entries in total. */
    int mcacheSets = 64;
    int mcacheWays = 16;

    /** Filter results stored per MCACHE line (multi-version data). */
    int mcacheDataVersions = 4;

    /** Initial RPQ signature length in bits (§III-D). */
    int initialSignatureBits = 20;

    /** Upper bound on adaptive signature growth. */
    int maxSignatureBits = 64;

    /**
     * Iterations of flat loss before the signature length grows by
     * one bit (K in §III-D).
     */
    int plateauK = 5;

    /**
     * Consecutive batches where similarity detection costs more than
     * it saves before a layer's detection is switched off (T in
     * §III-D).
     */
    int stoppageT = 3;

    /**
     * Detection-pipeline front-end knobs (src/pipeline): rows per
     * projection work block, MCACHE shard count (clamped to the set
     * count), and worker threads (1 = single-threaded legacy path,
     * 0 = auto-detect). Results are bit-identical across all values;
     * the knobs trade only throughput.
     */
    int64_t pipelineBlockRows = 64;
    int pipelineShards = 4;
    int pipelineThreads = 1;

    /**
     * Overlap detection with compute (§III-B, Fig. 8): signature
     * generation streams ahead of the filter passes instead of
     * completing before they start. Functionally, the reuse engines
     * consume the pipeline's per-block hand-off and run filter MACs
     * on the worker pool while later blocks are still hashing (needs
     * pipelineThreads != 1 to take effect). In the timing model, only
     * the portion of signature generation that exceeds the layer's
     * compute time stays on the critical path. Hit/skip decisions and
     * outputs are bit-identical with the knob on or off.
     */
    bool overlapDetection = false;

    /** Total MCACHE entries. */
    int mcacheEntries() const { return mcacheSets * mcacheWays; }
};

} // namespace mercury

#endif // MERCURY_SIM_CONFIG_HPP
