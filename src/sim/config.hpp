/**
 * @file
 * Accelerator configuration knobs shared by the timing models and the
 * MERCURY engines.
 *
 * Defaults follow the paper's experimental setup (§VI): an
 * Eyeriss-style row-stationary machine with 168 PEs, and a 1024-entry
 * 16-way MCACHE (64 sets).
 */

#ifndef MERCURY_SIM_CONFIG_HPP
#define MERCURY_SIM_CONFIG_HPP

#include <algorithm>
#include <cstdint>

#include "sim/sim_config.hpp"

namespace mercury {

/** Which spatial dataflow the accelerator implements (§II-B, §IV). */
enum class DataflowKind
{
    RowStationary,
    WeightStationary,
    InputStationary,
};

/** Printable name of a dataflow. */
const char *dataflowName(DataflowKind kind);

/**
 * Detection/compute overlap policy (§III-B, Fig. 8). `Auto` defers
 * the decision to pass-resolution time (PipelineConfig::resolvedFor /
 * RuntimePlanner): overlap pays a fixed scheduling tax (chain tasks,
 * hand-off queue, pool wakeups), so it only wins when there are
 * enough worker threads and enough rows per pass to hide that tax —
 * small layers and 1–2-thread hosts resolve to Off (serial
 * run-then-filter), everything else to On. The resolution is a pure
 * function of (threads, rows): it is recorded in the StepPlan by the
 * planner and surfaced in bench `config` blocks. Outcomes are
 * bit-identical across all three values; the knob trades only wall
 * time.
 */
enum class OverlapMode
{
    Off,  ///< serial run-then-filter
    On,   ///< always stream (needs a worker pool to take effect)
    Auto, ///< resolved per pass from threads x rows
};

/** Printable name of an overlap mode ("off" / "on" / "auto"). */
const char *overlapModeName(OverlapMode mode);

/** Static hardware configuration of the simulated accelerator. */
struct AcceleratorConfig
{
    /** Number of hardware PEs (Eyeriss uses 168). */
    int numPEs = 168;

    /** Spatial dataflow of the machine. */
    DataflowKind dataflow = DataflowKind::RowStationary;

    /**
     * Asynchronous PE-set design (§III-C1). When false, PE sets
     * barrier after every filter pass (synchronous design).
     */
    bool asyncDesign = true;

    /** Shared filter-buffer slots M available to the async design. */
    int filterBufferSlots = 4;

    /**
     * Cycle-accounting knobs — backend selection, the MCACHE/PE
     * service constants, and the event-model memory hierarchy — all
     * grouped in sim/sim_config.hpp with defaults documented there.
     */
    SimConfig sim;

    /** MCACHE organization: sets x ways entries in total. */
    int mcacheSets = 64;
    int mcacheWays = 16;

    /** Filter results stored per MCACHE line (multi-version data). */
    int mcacheDataVersions = 4;

    /** Initial RPQ signature length in bits (§III-D). */
    int initialSignatureBits = 20;

    /** Upper bound on adaptive signature growth. */
    int maxSignatureBits = 64;

    /**
     * Iterations of flat loss before the signature length grows by
     * one bit (K in §III-D).
     */
    int plateauK = 5;

    /**
     * Consecutive batches where similarity detection costs more than
     * it saves before a layer's detection is switched off (T in
     * §III-D).
     */
    int stoppageT = 3;

    /**
     * Detection-pipeline front-end knobs (src/pipeline): rows per
     * projection work block, MCACHE shard count (clamped to the set
     * count), and worker threads (1 = single-threaded legacy path,
     * 0 = auto-detect). Results are bit-identical across all values;
     * the knobs trade only throughput. pipelineBlockRows = 0 resolves
     * per pass to the sweep-tuned value for the pass size;
     * pipelineShards = 0 resolves at MCACHE construction to the
     * thread-scaled band (see tunedPipelineFor / bench/sweep_tuning /
     * PipelineConfig::resolvedShards).
     */
    int64_t pipelineBlockRows = 64;
    int pipelineShards = 4;
    int pipelineThreads = 1;

    /**
     * Overlap detection with compute (§III-B, Fig. 8): signature
     * generation streams ahead of the filter passes instead of
     * completing before they start. Functionally, the reuse engines
     * consume the pipeline's per-block hand-off and run filter MACs
     * on the worker pool while later blocks are still hashing (needs
     * pipelineThreads != 1 to take effect). In the timing model, only
     * the portion of signature generation that exceeds the layer's
     * compute time stays on the critical path. Hit/skip decisions and
     * outputs are bit-identical with the knob on or off.
     *
     * OverlapMode::Auto resolves per pass from threads x rows (see
     * the enum): wide passes on multi-core hosts stream, small passes
     * and 1–2-thread hosts fall back to serial.
     */
    OverlapMode overlapDetection = OverlapMode::Off;

    /**
     * Plan execution (core/runtime_planner.hpp): compile the step's
     * pass graph once per (shapes, config) key and execute steps as
     * replay of the plan — knobs resolved once per shape, buffers
     * preallocated to the planned high-water, record hold/spill
     * decided at plan time, and conv→conv edges separated only by
     * channelwise transforms overlapped across layers (the
     * successor's first hash launches while the predecessor's
     * trailing filter ranges drain). Off by default; outputs and
     * reuse statistics are bit-identical with the knob on or off —
     * planning changes only the schedule.
     */
    bool planExecution = false;

    /**
     * Persistent MCACHE across detection passes (serving layer): tags
     * survive from one request to the next instead of being cleared
     * per pass, so near-duplicate rows of *earlier* requests HIT.
     * Outputs stay exact (forwarding is within-pass only); eviction /
     * epochs / quota are the cache owner's job. See
     * PipelineConfig::persistent and docs/ARCHITECTURE.md.
     */
    bool persistentCache = false;

    /**
     * Reuse saved signatures in the backward pass (§III-C2): the
     * input-gradient pass of every reuse-capable layer replays the
     * forward pass's SignatureRecord — skipping the grad products of
     * forward-HIT rows — instead of running (or paying for) a second
     * detection pass. In the timing model the backward signature cost
     * becomes the replay-only charge (one Signature Table read per
     * vector) rather than a full regeneration. Functionally the
     * backward outputs are bit-identical to the exact input gradient
     * whenever the forward pass recorded no hits.
     */
    bool backwardReuse = false;

    /**
     * Reuse saved signatures in the weight-gradient pass (§III-C2
     * applied to Eq. 1): dW = X ⊛ dY walks the same forward input
     * patches, so a forward-HIT row's contribution factors through
     * its owner's patch as x_owner ⊗ (Σ dy over the owner's
     * hit-group) — the output gradients of each hit-group are summed
     * first (cheap adds), then one multiply runs per group
     * (sum-then-multiply). In the timing model the dW pass shrinks by
     * the forward hit fraction, pays the per-group accumulate adds
     * and the replay-only signature charge, and performs no MCACHE
     * inserts. Functionally the dW outputs are bit-identical to the
     * exact weight gradient whenever the forward pass recorded no
     * hits, and exact up to float-summation order otherwise.
     */
    bool weightGradReuse = false;

    /** Total MCACHE entries. */
    int mcacheEntries() const { return mcacheSets * mcacheWays; }
};

/** Sweep-tuned pipeline knobs for one detection-pass size. */
struct PipelineTuning
{
    int64_t blockRows;
    int shards;
};

/**
 * Per-layer-size pipeline defaults picked by bench/sweep_tuning over
 * ImageNet-scale layer shapes (ResNet-50 conv sizes at 224x224
 * inputs; recorded in BENCH_tuning.json). Measured: passes with
 * cheap per-row hashing (3x3 kernels, d = 9) are flat across block
 * sizes, so they keep the stock 64-row blocks; the large-vector stem
 * pass (12544 rows, d = 49) peaks at 128-row blocks (+13% over 64).
 *
 * Shards (wall-clock item): the single-core sweep measured 4 as the
 * floor, and shard counts beyond the number of concurrently probing
 * threads cannot help — every extra shard is lock and merge overhead
 * with no probe parallelism to hide it. The band therefore tracks
 * `resolved_threads` (pass ThreadPool::resolveThreads of the thread
 * knob; 0/1 = unknown or serial keeps the measured 4), clamped to
 * [4, 16] — applied at MCACHE construction when pipelineShards = 0
 * (PipelineConfig::resolvedShards). The CI wall-clock job's
 * `wall-clock-multicore` artifact
 * carries the measured multi-core `wall_*` speedups plus this band's
 * confirmation, rendered by tools/wallclock_roadmap.py — re-pin from
 * that artifact when a bigger host class appears. The shard value
 * applies at MCACHE construction (shards are baked into the
 * ShardedMCache); blockRows is applied per pass when
 * pipelineBlockRows = 0 (auto).
 */
inline PipelineTuning
tunedPipelineFor(int64_t rows_per_pass, int resolved_threads = 1)
{
    const int shards = std::clamp(resolved_threads, 4, 16);
    if (rows_per_pass <= 4096)
        return {64, shards};
    return {128, shards};
}

} // namespace mercury

#endif // MERCURY_SIM_CONFIG_HPP
