/**
 * @file
 * Static layer geometry descriptors. The model zoo describes every
 * network as a sequence of LayerShape records; the dataflow timing
 * models consume them directly.
 */

#ifndef MERCURY_SIM_LAYER_SHAPE_HPP
#define MERCURY_SIM_LAYER_SHAPE_HPP

#include <cstdint>
#include <string>

namespace mercury {

/** Kind of computation a layer performs. */
enum class LayerType
{
    Conv,           ///< 2D convolution
    FullyConnected, ///< dense matrix-vector layer
    Attention,      ///< self-attention (Y = softmax-free X Xt X, §III-C4)
    Pool,           ///< pooling (no MERCURY reuse)
};

/** Printable name of a layer type. */
const char *layerTypeName(LayerType type);

/** Geometry of one network layer. */
struct LayerShape
{
    LayerType type = LayerType::Conv;
    std::string name;

    // Conv fields (also reused by Pool).
    int64_t inChannels = 1;
    int64_t outChannels = 1;
    int64_t inH = 1;
    int64_t inW = 1;
    int64_t kernel = 1;
    int64_t stride = 1;
    int64_t pad = 0;
    int64_t groups = 1; ///< grouped / depthwise convolution

    // FullyConnected fields.
    int64_t inFeatures = 0;
    int64_t outFeatures = 0;

    // Attention fields.
    int64_t seqLen = 0;
    int64_t embedDim = 0;

    /** Convenience constructors. */
    static LayerShape conv(std::string name, int64_t c_in, int64_t c_out,
                           int64_t h, int64_t w, int64_t k,
                           int64_t stride = 1, int64_t pad = 0,
                           int64_t groups = 1);
    static LayerShape fc(std::string name, int64_t in_f, int64_t out_f);
    static LayerShape attention(std::string name, int64_t seq_len,
                                int64_t embed_dim);
    static LayerShape pool(std::string name, int64_t c, int64_t h,
                           int64_t w, int64_t k, int64_t stride);

    /** Output spatial height (Conv/Pool). */
    int64_t outH() const { return (inH + 2 * pad - kernel) / stride + 1; }

    /** Output spatial width (Conv/Pool). */
    int64_t outW() const { return (inW + 2 * pad - kernel) / stride + 1; }

    /** Input vectors extracted per channel per image (Conv). */
    int64_t vectorsPerChannel() const { return outH() * outW(); }

    /**
     * Dimensionality of one extracted input vector. Conv vectors are
     * kernel x kernel (per-channel extraction, §III-B1); FC vectors
     * are whole input rows; attention vectors are embedding rows.
     */
    int64_t vectorDim() const;

    /** Number of vectors MERCURY hashes per image (one channel pass). */
    int64_t vectorsPerImage() const;

    /** Weight vectors each input vector meets (filters / FC columns). */
    int64_t weightVectors() const;

    /** Multiply-accumulate count of the forward pass for a batch. */
    uint64_t macCount(int64_t batch) const;

    /** True for layer types MERCURY applies reuse to. */
    bool reusable() const { return type != LayerType::Pool; }
};

} // namespace mercury

#endif // MERCURY_SIM_LAYER_SHAPE_HPP
