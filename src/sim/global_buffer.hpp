/**
 * @file
 * Global buffer traffic accounting. The timing models are
 * compute-bound (the paper's speedups come from skipped dot
 * products), but the buffer model tracks the data movement MERCURY
 * adds (signature table spills to memory between forward and backward
 * passes) and removes (skipped input-vector reloads), so benches can
 * report traffic alongside cycles.
 */

#ifndef MERCURY_SIM_GLOBAL_BUFFER_HPP
#define MERCURY_SIM_GLOBAL_BUFFER_HPP

#include <cstdint>

#include "util/stats.hpp"

namespace mercury {

/** Byte-level traffic accounting for the on-chip global buffer. */
class GlobalBuffer
{
  public:
    /** @param capacity_bytes usable buffer capacity. */
    explicit GlobalBuffer(uint64_t capacity_bytes = 108 * 1024);

    uint64_t capacity() const { return capacity_; }

    /** Record weight/input/output/signature traffic. */
    void readWeights(uint64_t bytes);
    void readInputs(uint64_t bytes);
    void writeOutputs(uint64_t bytes);
    void signatureTraffic(uint64_t bytes);

    /**
     * SignatureRecord occupancy (§III-C2): a layer's record is held
     * from its forward detection pass until its gradient passes
     * consume it. holdRecord tracks the live bytes and peak; any part
     * of the working set that no longer fits the buffer spills to
     * memory, charged as signature traffic (one write out now, one
     * read back at the backward pass). releaseRecord drops the bytes
     * once the backward pass has replayed them.
     */
    void holdRecord(uint64_t bytes);
    void releaseRecord(uint64_t bytes);
    uint64_t recordBytesHeld() const { return recordBytesHeld_; }
    uint64_t peakRecordBytes() const { return peakRecordBytes_; }

    uint64_t totalBytes() const;
    uint64_t weightBytes() const { return weightBytes_; }
    uint64_t inputBytes() const { return inputBytes_; }
    uint64_t outputBytes() const { return outputBytes_; }
    uint64_t signatureBytes() const { return signatureBytes_; }

    /**
     * True if a working set of the given size fits in the buffer
     * (used by tests to sanity check tiling assumptions).
     */
    bool fits(uint64_t bytes) const { return bytes <= capacity_; }

    void reset();

  private:
    uint64_t capacity_;
    uint64_t weightBytes_ = 0;
    uint64_t inputBytes_ = 0;
    uint64_t outputBytes_ = 0;
    uint64_t signatureBytes_ = 0;
    uint64_t recordBytesHeld_ = 0;
    uint64_t peakRecordBytes_ = 0;
};

} // namespace mercury

#endif // MERCURY_SIM_GLOBAL_BUFFER_HPP
