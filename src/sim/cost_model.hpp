/**
 * @file
 * sim::CostModel — the unified entry API of the timing layer.
 *
 * Every consumer of cycle estimates (the MercuryAccelerator training
 * driver, the fig/bench binaries, the MercuryServer stat path) asks
 * one interface:
 *
 *   auto model = sim::CostModel::create(cfg);       // backend by name
 *   LayerCycles c = model->layerCost(shape, ...);   // one layer
 *   CostBreakdown s = model->stepCost(stack, ...);  // a whole step
 *
 * and the backend — AnalyticModel (the closed-form Dataflow
 * arithmetic plus sim/plan_model.hpp) or EventModel (the
 * discrete-event memory-hierarchy replay in src/sim/event_model/) —
 * is picked by SimConfig::backend / MERCURY_SIM_BACKEND, never by a
 * hard call into a concrete class.
 *
 * Both stepCost entry points consume ONE workload definition: the
 * shape-stack overload compiles the stack through RuntimePlanner
 * (core/runtime_planner.hpp: describeShapeStack → compile), and the
 * StepPlan overload replays an already-compiled plan — so the event
 * model runs the same pass descriptors the ReuseRuntime executes,
 * with no second model of the step.
 *
 * Contract: under the default (compute-bound) SimConfig the two
 * backends agree on the pinned VGG13/MobileNetV2 validation points
 * (asserted in tests/test_eventsim.cpp); the event backend adds
 * memory-hierarchy stalls only where contention is real (small
 * buffers, few banks, record-replay thrash).
 */

#ifndef MERCURY_SIM_COST_MODEL_HPP
#define MERCURY_SIM_COST_MODEL_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/config.hpp"
#include "sim/dataflow.hpp"
#include "sim/layer_shape.hpp"
#include "sim/plan_model.hpp"

namespace mercury {

struct StepPlan; // core/runtime_planner.hpp

namespace sim {

/** Per-component counters of one event-model run (zero under the
 *  analytic backend). Printed by EventModel consumers per component:
 *  occupancy, bank conflicts, stalls by cause. */
struct ComponentStats
{
    struct DramStats
    {
        uint64_t requests = 0;
        uint64_t bytes = 0;
        uint64_t rowHits = 0;
        uint64_t rowMisses = 0;
        uint64_t bankConflictCycles = 0;
        uint64_t busyCycles = 0;
    } dram;

    struct GlobalBufferStats
    {
        uint64_t accesses = 0;
        uint64_t bytes = 0;
        uint64_t bankConflictCycles = 0;
        uint64_t fills = 0;         ///< DRAM fills (buffer misses)
        uint64_t pendingStallCycles = 0; ///< MSHR slots exhausted
        uint64_t spillBytes = 0;    ///< record bytes past capacity
    } gbuf;

    struct McacheStats
    {
        uint64_t probes = 0;
        uint64_t hits = 0;
        uint64_t inserts = 0;
        uint64_t insertSerialCycles = 0;
    } mcache;

    struct PeStats
    {
        uint64_t passes = 0;
        uint64_t busyCycles = 0;
        uint64_t memStallCycles = 0; ///< waiting on GB/DRAM streams
    } pe;

    ComponentStats &operator+=(const ComponentStats &other);

    /** One line per component into stdout (bench reporting). */
    void print(uint64_t total_cycles) const;
};

/** Cycle totals of one multi-layer training step under a backend. */
struct CostBreakdown
{
    /** Aggregate per-layer decomposition (fwd + gradient passes per
     *  the config's reuse knobs). Under the event backend, exposed
     *  memory stalls are folded into `cycles.computation`. */
    LayerCycles cycles;

    /** Per-layer-barrier step reference (setup re-derived per step). */
    uint64_t barrierCycles = 0;
    /** Planned-schedule step (setup amortized, fused edges hidden). */
    uint64_t plannedCycles = 0;

    uint64_t setupCycles = 0;
    uint64_t hiddenSignature = 0;
    int fusedEdges = 0;

    /** Event backend: critical-path cycles lost to the memory
     *  hierarchy (zero analytic / uncontended). */
    uint64_t memoryStallCycles = 0;

    /** Event backend: per-component counters. */
    ComponentStats components;

    /** Baseline / MERCURY speedup of the aggregate cycles. */
    double speedup() const { return cycles.speedup(); }

    /** Barriered / planned step speedup (plan_model semantics). */
    double stepSpeedup() const
    {
        return plannedCycles > 0 ? static_cast<double>(barrierCycles) /
                                       static_cast<double>(plannedCycles)
                                 : 1.0;
    }
};

/** Abstract timing backend (see file header). */
class CostModel
{
  public:
    virtual ~CostModel() = default;

    /**
     * Factory keyed on cfg.sim.backend, after the MERCURY_SIM_BACKEND
     * environment override (resolvedSimBackend).
     */
    static std::unique_ptr<CostModel> create(const AcceleratorConfig &cfg);

    virtual SimBackend backend() const = 0;
    const char *name() const { return simBackendName(backend()); }

    const AcceleratorConfig &config() const { return cfg_; }

    /** Baseline machine cycles for a whole layer over a batch. */
    virtual uint64_t baselineCycles(const LayerShape &shape,
                                    int64_t batch) const;

    /** MERCURY forward cycles of a layer (Dataflow::mercuryLayerCycles
     *  semantics; the event backend folds memory stalls into
     *  computation). */
    virtual LayerCycles layerCost(const LayerShape &shape, int64_t batch,
                                  const HitMix &channel_mix, int sig_bits,
                                  bool saved_signatures = false) const;

    /** Input-gradient pass cycles (Dataflow::backwardLayerCycles). */
    virtual LayerCycles backwardCost(const LayerShape &shape,
                                     int64_t batch,
                                     const HitMix &channel_mix,
                                     int sig_bits,
                                     bool include_weight_grad
                                     = false) const;

    /** Weight-gradient pass cycles (Dataflow::weightGradLayerCycles). */
    virtual LayerCycles weightGradCost(const LayerShape &shape,
                                       int64_t batch,
                                       const HitMix &channel_mix,
                                       int sig_bits) const;

    /** SignatureRecord bytes held between forward and backward. */
    virtual uint64_t recordBytes(const LayerShape &shape, int64_t batch,
                                 int sig_bits) const;

    /**
     * Whole-step cost over a layer stack: one channel-pass mix per
     * layer (non-reusable entries ignored), forward plus the gradient
     * passes the config's reuse knobs enable, with the plan-level
     * barrier/planned view (setup amortization, fused conv→conv
     * edges).
     */
    virtual CostBreakdown stepCost(const std::vector<LayerShape> &stack,
                                   const std::vector<HitMix> &mixes,
                                   int64_t batch, int sig_bits) const = 0;

    /**
     * Whole-step cost of a compiled StepPlan: the same accounting
     * driven by the plan's own pass descriptors
     * (RuntimePlanner::compile → exportPassDescriptors) — one
     * workload definition shared with the functional executor.
     */
    virtual CostBreakdown stepCost(const StepPlan &plan,
                                   const std::vector<HitMix> &mixes,
                                   int sig_bits) const = 0;

  protected:
    explicit CostModel(const AcceleratorConfig &cfg);

    AcceleratorConfig cfg_;
    std::unique_ptr<Dataflow> flow_; ///< the one model of compute
};

/** The closed-form backend: Dataflow + sim/plan_model.hpp, verbatim —
 *  every gated BENCH_*.json modeled number reproduces through it. */
class AnalyticModel : public CostModel
{
  public:
    explicit AnalyticModel(const AcceleratorConfig &cfg);

    SimBackend backend() const override { return SimBackend::Analytic; }

    CostBreakdown stepCost(const std::vector<LayerShape> &stack,
                           const std::vector<HitMix> &mixes,
                           int64_t batch, int sig_bits) const override;

    CostBreakdown stepCost(const StepPlan &plan,
                           const std::vector<HitMix> &mixes,
                           int sig_bits) const override;
};

/**
 * The active backend name an AcceleratorConfig resolves to (factory
 * selection without constructing a model) — what benches record as
 * `config.sim_backend` in every ResultLine.
 */
const char *resolvedBackendName(const AcceleratorConfig &cfg);

/**
 * Aggregate per-layer closed-form cycles of one step over a stack:
 * forward (plus the gradient passes the config's reuse knobs enable)
 * for reuse layers, baseline for pools. Shared by both backends —
 * the event backend reuses these totals as its compute service times.
 */
LayerCycles aggregateStepCycles(const CostModel &model,
                                const std::vector<LayerShape> &stack,
                                const std::vector<HitMix> &mixes,
                                int64_t batch, int sig_bits);

/**
 * Reconstructed timing stack of a compiled plan: one LayerShape per
 * plan layer plus the 2x2 pools riding its fused edges. When
 * `reuse_index` is given, `(*reuse_index)[j]` is the stack position
 * of plan layer j (for aligning per-plan-layer mixes).
 */
std::vector<LayerShape>
planLayerStack(const StepPlan &plan,
               std::vector<size_t> *reuse_index = nullptr);

} // namespace sim
} // namespace mercury

#endif // MERCURY_SIM_COST_MODEL_HPP
