/**
 * @file
 * PE and PE-array organization. A PE Set is the group of PEs that
 * cooperates on one 2D-convolution dot product (one PE per filter
 * row, §III-B1). The array partitions its PEs into as many sets as
 * the kernel height allows.
 *
 * The PE struct models the architectural state the paper adds for
 * MERCURY: the ORg pipelining register, the doubled input buffers
 * with valid bits, and the InUse / FlUse selectors used by the
 * asynchronous design (Fig. 11).
 */

#ifndef MERCURY_SIM_PE_ARRAY_HPP
#define MERCURY_SIM_PE_ARRAY_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/config.hpp"

namespace mercury {

/** Architectural state of one processing element. */
struct PE
{
    // Baseline Eyeriss-style state.
    float inputReg = 0.0f;
    float weightReg = 0.0f;
    float partialSum = 0.0f;

    // MERCURY additions (Fig. 11).
    float orgReg = 0.0f;          ///< overlapped-register for pipelining
    bool inputBufValid[2] = {false, false};
    int inUse = 0;                ///< which input buffer is active
    int flUse = 0;                ///< which shared filter is in use

    /** Reset all state (new layer / new channel). */
    void reset();
};

/** A busy-tracking view over the PE array partitioned into PE sets. */
class PEArray
{
  public:
    PEArray(const AcceleratorConfig &config, int64_t set_size);

    /** Number of PEs in one set (= vector row count x). */
    int64_t setSize() const { return setSize_; }

    /** Number of usable PE sets. */
    int64_t numSets() const { return numSets_; }

    /** PEs left over after partitioning (idle for this layer). */
    int64_t idlePEs() const;

    /** Mutable PE state, indexed by (set, position-in-set). */
    PE &pe(int64_t set, int64_t pos);

    /** Per-set busy bit (B in the synchronous design). */
    bool busy(int64_t set) const { return busy_[static_cast<size_t>(set)]; }
    void setBusy(int64_t set, bool b);

    /** True when no PE set is busy (sync-design barrier condition). */
    bool allIdle() const;

    /**
     * Distribute `vectors` work items round-robin across sets;
     * returns per-set counts (they differ by at most one).
     */
    std::vector<int64_t> distributeVectors(int64_t vectors) const;

    /** Reset all PE state and busy bits. */
    void reset();

  private:
    int64_t numPEs_;
    int64_t setSize_;
    int64_t numSets_;
    std::vector<PE> pes_;
    std::vector<bool> busy_;
};

} // namespace mercury

#endif // MERCURY_SIM_PE_ARRAY_HPP
