/**
 * @file
 * SimConfig: every knob of the cycle-accounting layer, grouped in one
 * struct with the defaults documented in one place (previously the
 * MCACHE/PE service constants lived loose in AcceleratorConfig while
 * the timing backends had no knobs at all).
 *
 * Two backends implement the sim::CostModel API (sim/cost_model.hpp):
 *
 *  - Analytic (default): the closed-form per-layer Dataflow
 *    arithmetic plus the plan-level step model. Deterministic, fast,
 *    and the source of every gated BENCH_*.json modeled number.
 *  - Event (src/sim/event_model/): a discrete-event replay of the
 *    same pass descriptors through banked DRAM, a banked GlobalBuffer
 *    with MSHR-style pending slots, MCACHE probe/insert traffic, and
 *    the PE array. Compute service times come from the SAME Dataflow
 *    closed forms — the event machinery adds only the memory-
 *    hierarchy contention the analytic model cannot see, so with the
 *    default sizings (compute-bound) the two backends agree on the
 *    pinned validation points.
 *
 * Selection: SimConfig::backend, overridable per process with
 * MERCURY_SIM_BACKEND=analytic|event (the same pattern as
 * MERCURY_KERNELS). Every fig/bench binary and the MercuryServer stat
 * path resolve the backend through sim::CostModel::create, so the
 * choice is by name, never a hard call into Dataflow.
 */

#ifndef MERCURY_SIM_SIM_CONFIG_HPP
#define MERCURY_SIM_SIM_CONFIG_HPP

#include <cstdint>

namespace mercury {

/** Timing backend implementing sim::CostModel. */
enum class SimBackend
{
    Analytic, ///< closed-form Dataflow + plan model (default)
    Event,    ///< discrete-event memory-hierarchy replay
};

/** Printable backend name ("analytic" / "event"). */
const char *simBackendName(SimBackend backend);

/**
 * Event-model replay granularity. PerPass simulates every detection
 * pass of every layer; Sampled simulates one representative pass per
 * layer in full detail and scales it by the layer's pass count —
 * the ImageNet-scale sweep fidelity (contention state such as DRAM
 * open rows is carried across layers either way).
 */
enum class SimFidelity
{
    PerPass,
    Sampled,
};

/** Printable fidelity name ("per-pass" / "sampled"). */
const char *simFidelityName(SimFidelity fidelity);

/** All cycle-accounting knobs, with defaults documented here. */
struct SimConfig
{
    /** Timing backend; MERCURY_SIM_BACKEND overrides at create(). */
    SimBackend backend = SimBackend::Analytic;

    /** Event-model replay granularity (see SimFidelity). */
    SimFidelity fidelity = SimFidelity::PerPass;

    // ---- Service constants shared by both backends (previously on
    // ---- AcceleratorConfig) -------------------------------------

    /** Cycles to fetch a computed result from MCACHE by entry id. */
    int cacheReadCycles = 1;

    /** Per-insert serialization cost of a set's queue controller (§V). */
    int cacheInsertCycles = 1;

    /** Cycles for an earlier PE to forward one FC result (§III-C3). */
    int resultSendCycles = 1;

    // ---- Event backend: DRAM ------------------------------------
    // A modest LPDDR-class part: 8 banks, open-row policy, 16 B/cycle
    // of transfer bandwidth at the accelerator clock. Row hit = CAS
    // only; row miss = precharge + activate + CAS.

    int dramBanks = 8;
    int dramRowHitCycles = 20;
    int dramRowMissCycles = 60;
    int dramBusBytesPerCycle = 16;
    int64_t dramRowBytes = 2048;

    // ---- Event backend: GlobalBuffer ----------------------------
    // Eyeriss-class 108 KiB GLB split over 4 banks, each serving
    // 16 B/cycle, with 8 MSHR-style pending slots bounding the
    // outstanding DRAM fills (a 9th miss stalls until a slot frees).

    int gbBanks = 4;
    int gbPendingSlots = 8;
    int gbBytesPerBankCycle = 16;
    uint64_t gbCapacityBytes = 108 * 1024;
    int64_t gbLineBytes = 64;

    /**
     * Event-count bound: one pass's streaming is issued as at most
     * this many chunked requests (chunks grow with the pass size, so
     * ImageNet-scale passes stay tractable without changing totals).
     */
    int maxChunksPerPass = 32;
};

/**
 * Backend selection honoring the MERCURY_SIM_BACKEND environment
 * override ("analytic" / "event", case-sensitive; unset or empty
 * keeps `configured`). Unknown values fatal — a typo silently
 * falling back to analytic would invalidate an event-model study.
 */
SimBackend resolvedSimBackend(SimBackend configured);

} // namespace mercury

#endif // MERCURY_SIM_SIM_CONFIG_HPP
