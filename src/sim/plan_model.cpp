#include "sim/plan_model.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace mercury {

namespace {

/** Detection passes one forward invocation of a layer runs (the same
 *  counts the functional engines drive — conv: one per (image,
 *  channel); FC: one per minibatch; attention: one per sample). */
int64_t
passesPerStep(const LayerShape &shape, int64_t batch)
{
    switch (shape.type) {
    case LayerType::Conv:
        return batch * shape.inChannels;
    case LayerType::FullyConnected:
        return 1;
    case LayerType::Attention:
        return batch;
    case LayerType::Pool:
        return 0;
    }
    return 0;
}

} // namespace

PlannedStepModel
modelPlannedStep(const AcceleratorConfig &cfg,
                 const std::vector<LayerShape> &stack,
                 const std::vector<HitMix> &mixes, int64_t batch,
                 int sig_bits)
{
    if (stack.size() != mixes.size())
        panic("modelPlannedStep needs one mix per layer, got ",
              mixes.size(), " for ", stack.size());
    std::unique_ptr<Dataflow> flow = Dataflow::create(cfg);

    PlannedStepModel model;
    // Per-layer forward cycle decomposition (needed again for the
    // fused-edge windows) and the full per-layer step cost.
    std::vector<LayerCycles> fwd(stack.size());
    for (size_t i = 0; i < stack.size(); ++i) {
        const LayerShape &shape = stack[i];
        if (!shape.reusable()) {
            // Pools run exactly; their (small) cost appears in both
            // totals via the baseline charge.
            const uint64_t pool = flow->baselineLayerCycles(shape, batch);
            fwd[i].computation = pool;
            fwd[i].baseline = pool;
            model.baseCycles += pool;
            continue;
        }
        fwd[i] = flow->mercuryLayerCycles(shape, batch, mixes[i],
                                          sig_bits);
        uint64_t layer = fwd[i].mercuryTotal();
        if (cfg.backwardReuse || cfg.weightGradReuse) {
            layer += flow->backwardLayerCycles(shape, batch, mixes[i],
                                               sig_bits,
                                               cfg.weightGradReuse)
                         .mercuryTotal();
        }
        model.baseCycles += layer;
        // The schedule work a plan replays instead of re-deriving:
        // charged per detection pass plus a per-layer constant. The
        // gradient passes replay the forward schedule, so the charge
        // is per forward pass regardless of the reuse flags.
        model.setupCycles += kSetupCyclesPerLayer +
                             kSetupCyclesPerPass *
                                 static_cast<uint64_t>(
                                     passesPerStep(shape, batch));
    }

    // Fused conv→conv edges: the successor's signature hides under the
    // predecessor's trailing channel-pass drain. Pool entries between
    // two convs are channelwise and keep the edge alive, matching the
    // functional planner's edge rule.
    int prev_conv = -1;
    for (size_t i = 0; i < stack.size(); ++i) {
        if (stack[i].type == LayerType::Pool)
            continue;
        if (stack[i].type != LayerType::Conv) {
            prev_conv = -1;
            continue;
        }
        if (prev_conv >= 0) {
            const LayerCycles &pred = fwd[static_cast<size_t>(prev_conv)];
            const int64_t pred_passes = passesPerStep(
                stack[static_cast<size_t>(prev_conv)], batch);
            // One trailing channel-pass of predecessor compute is the
            // window the prefetch hook opens (the successor's first
            // hash launches once the last input-channel pass's first
            // chain drains).
            const uint64_t window =
                pred_passes > 0
                    ? pred.computation /
                          static_cast<uint64_t>(pred_passes)
                    : 0;
            model.hiddenSignature +=
                std::min(window, fwd[i].signature);
            ++model.fusedEdges;
        }
        prev_conv = static_cast<int>(i);
    }

    model.barrierCycles = model.baseCycles + model.setupCycles;
    model.plannedCycles = model.baseCycles - model.hiddenSignature;
    return model;
}

} // namespace mercury
