#include "sim/cycle_model.hpp"

#include "util/logging.hpp"

namespace mercury {

uint64_t
unpipelinedPassCycles(uint64_t vectors, uint64_t x)
{
    return vectors * 2 * x;
}

uint64_t
pipelinedPassCycles(uint64_t vectors, uint64_t x)
{
    if (vectors == 0)
        return 0;
    return 2 * x + 1 + (vectors - 1) * x;
}

uint64_t
unpipelinedCompletion(uint64_t j, uint64_t x)
{
    return (j + 1) * 2 * x;
}

uint64_t
pipelinedCompletion(uint64_t j, uint64_t x)
{
    return 2 * x + 1 + j * x;
}

uint64_t
broadcastDotCycles(uint64_t d)
{
    return d + 1;
}

uint64_t
signatureReplayCycles(uint64_t vectors, uint64_t ports)
{
    if (vectors == 0)
        return 0;
    return ceilDiv(vectors, ports == 0 ? 1 : ports);
}

PESetSchedule::PESetSchedule(uint64_t vectors, uint64_t x, bool pipelined)
    : vectors_(vectors), x_(x), pipelined_(pipelined), totalCycles_(0)
{
    if (x == 0)
        panic("PESetSchedule with x == 0");
    totalCycles_ = vectors == 0
                       ? 0
                       : (pipelined ? pipelinedCompletion(vectors - 1, x)
                                    : unpipelinedCompletion(vectors - 1, x));
    mulBusy_.assign(static_cast<size_t>(x),
                    std::vector<int>(static_cast<size_t>(totalCycles_ + 2),
                                     0));

    // Reconstruct the reservation table. PE r handles row r of every
    // vector. In the pipelined schedule (Fig. 8b) PE r starts r cycles
    // after PE 0 and issues one multiply per cycle; consecutive
    // vectors' rows follow back to back (x cycles apart) because the
    // ORg register pre-buffers the first product of the next row. In
    // the unpipelined schedule each vector occupies its PE set
    // exclusively for 2x cycles and rows start when the vector starts.
    for (uint64_t j = 0; j < vectors_; ++j) {
        for (uint64_t r = 0; r < x_; ++r) {
            const uint64_t row_start =
                pipelined_ ? (j * x_ + r + 1) : (j * 2 * x_ + 1);
            for (uint64_t m = 0; m < x_; ++m) {
                const uint64_t cyc = row_start + m;
                if (cyc <= totalCycles_ + 1)
                    ++mulBusy_[static_cast<size_t>(r)]
                              [static_cast<size_t>(cyc)];
            }
        }
    }
}

uint64_t
PESetSchedule::completionCycle(uint64_t j) const
{
    if (j >= vectors_)
        panic("completionCycle index ", j, " >= ", vectors_);
    return pipelined_ ? pipelinedCompletion(j, x_)
                      : unpipelinedCompletion(j, x_);
}

int
PESetSchedule::multiplierOpsAt(uint64_t cycle, uint64_t pe) const
{
    if (pe >= x_ || cycle >= mulBusy_[0].size())
        return 0;
    return mulBusy_[static_cast<size_t>(pe)][static_cast<size_t>(cycle)];
}

bool
PESetSchedule::structurallyValid() const
{
    for (const auto &row : mulBusy_)
        for (int ops : row)
            if (ops > 1)
                return false;
    return true;
}

} // namespace mercury
