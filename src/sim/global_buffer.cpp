#include "sim/global_buffer.hpp"

#include <algorithm>

namespace mercury {

GlobalBuffer::GlobalBuffer(uint64_t capacity_bytes)
    : capacity_(capacity_bytes)
{
}

void
GlobalBuffer::readWeights(uint64_t bytes)
{
    weightBytes_ += bytes;
}

void
GlobalBuffer::readInputs(uint64_t bytes)
{
    inputBytes_ += bytes;
}

void
GlobalBuffer::writeOutputs(uint64_t bytes)
{
    outputBytes_ += bytes;
}

void
GlobalBuffer::signatureTraffic(uint64_t bytes)
{
    signatureBytes_ += bytes;
}

void
GlobalBuffer::holdRecord(uint64_t bytes)
{
    // The part of the record working set pushed past capacity spills
    // to memory: written out now, read back when the backward pass
    // replays it — two transfers per spilled byte.
    const uint64_t before =
        recordBytesHeld_ > capacity_ ? recordBytesHeld_ - capacity_ : 0;
    recordBytesHeld_ += bytes;
    const uint64_t after =
        recordBytesHeld_ > capacity_ ? recordBytesHeld_ - capacity_ : 0;
    signatureBytes_ += 2 * (after - before);
    peakRecordBytes_ = std::max(peakRecordBytes_, recordBytesHeld_);
}

void
GlobalBuffer::releaseRecord(uint64_t bytes)
{
    recordBytesHeld_ -= std::min(recordBytesHeld_, bytes);
}

uint64_t
GlobalBuffer::totalBytes() const
{
    return weightBytes_ + inputBytes_ + outputBytes_ + signatureBytes_;
}

void
GlobalBuffer::reset()
{
    weightBytes_ = inputBytes_ = outputBytes_ = signatureBytes_ = 0;
    recordBytesHeld_ = peakRecordBytes_ = 0;
}

} // namespace mercury
