#include "sim/global_buffer.hpp"

namespace mercury {

GlobalBuffer::GlobalBuffer(uint64_t capacity_bytes)
    : capacity_(capacity_bytes)
{
}

void
GlobalBuffer::readWeights(uint64_t bytes)
{
    weightBytes_ += bytes;
}

void
GlobalBuffer::readInputs(uint64_t bytes)
{
    inputBytes_ += bytes;
}

void
GlobalBuffer::writeOutputs(uint64_t bytes)
{
    outputBytes_ += bytes;
}

void
GlobalBuffer::signatureTraffic(uint64_t bytes)
{
    signatureBytes_ += bytes;
}

uint64_t
GlobalBuffer::totalBytes() const
{
    return weightBytes_ + inputBytes_ + outputBytes_ + signatureBytes_;
}

void
GlobalBuffer::reset()
{
    weightBytes_ = inputBytes_ = outputBytes_ = signatureBytes_ = 0;
}

} // namespace mercury
