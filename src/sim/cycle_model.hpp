/**
 * @file
 * Closed-form cycle costs for PE-set dot-product schedules, derived
 * from the paper's Fig. 8 timing analysis.
 *
 * For x-row vectors on a row-stationary PE set of x PEs:
 *  - unpipelined, each dot product takes 2x cycles and products do not
 *    overlap: completing v of them takes 2xv cycles;
 *  - pipelined with the ORg register, the first product completes at
 *    cycle 2x+1 and every further product x cycles later.
 */

#ifndef MERCURY_SIM_CYCLE_MODEL_HPP
#define MERCURY_SIM_CYCLE_MODEL_HPP

#include <cstdint>
#include <vector>

namespace mercury {

/** Ceiling division for unsigned cycle math. */
inline uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Cycles for one PE set to stream v dot products without pipelining. */
uint64_t unpipelinedPassCycles(uint64_t vectors, uint64_t x);

/** Cycles for one PE set to stream v dot products with pipelining. */
uint64_t pipelinedPassCycles(uint64_t vectors, uint64_t x);

/** Completion cycle of the j-th (0-based) unpipelined dot product. */
uint64_t unpipelinedCompletion(uint64_t j, uint64_t x);

/** Completion cycle of the j-th (0-based) pipelined dot product. */
uint64_t pipelinedCompletion(uint64_t j, uint64_t x);

/**
 * Cycles for a broadcast dot product of length d on a single PE with a
 * MAC unit (weight- and input-stationary machines): d MACs plus one
 * drain cycle.
 */
uint64_t broadcastDotCycles(uint64_t d);

/**
 * Cycles to replay `vectors` saved signatures out of the Signature
 * Table during the backward pass (§III-C2). Signatures were generated
 * on forward; backward only streams them back — one table read per
 * vector, spread across `ports` parallel read ports — so the charge
 * is the ceil(vectors / ports) streaming time instead of the
 * bits-many projection passes a regeneration would cost.
 */
uint64_t signatureReplayCycles(uint64_t vectors, uint64_t ports);

/**
 * Cycle-by-cycle validation model of the pipelined PE-set schedule.
 *
 * Reconstructs the Fig. 8b reservation table for an x-PE set streaming
 * `vectors` dot products and reports per-cycle multiplier/adder
 * occupancy, so tests can assert the closed forms above are feasible
 * (no structural hazard: each PE uses at most one multiplier and one
 * adder slot per cycle).
 */
class PESetSchedule
{
  public:
    PESetSchedule(uint64_t vectors, uint64_t x, bool pipelined);

    /** Total cycles until the last dot product completes. */
    uint64_t totalCycles() const { return totalCycles_; }

    /** Completion cycle (1-based) of dot product j. */
    uint64_t completionCycle(uint64_t j) const;

    /** Number of multiplier operations scheduled in a given cycle. */
    int multiplierOpsAt(uint64_t cycle, uint64_t pe) const;

    /** True if no PE ever needs two multiplies in one cycle. */
    bool structurallyValid() const;

  private:
    uint64_t vectors_;
    uint64_t x_;
    bool pipelined_;
    uint64_t totalCycles_;
    // mulBusy_[pe][cycle] = number of multiply ops issued.
    std::vector<std::vector<int>> mulBusy_;
};

} // namespace mercury

#endif // MERCURY_SIM_CYCLE_MODEL_HPP
