/**
 * @file
 * Unlimited Similarity Detection bound (paper §VII-D3, Fig. 17c):
 * assume the accelerator finds and reuses the computation of *all*
 * similar elements in inputs and weights, at element granularity and
 * with no hardware constraints. An element product is skippable when
 * its quantized input element repeats an earlier element of the same
 * extracted vector or its quantized weight repeats within the filter.
 */

#ifndef MERCURY_BASELINES_UNLIMITED_SIMILARITY_HPP
#define MERCURY_BASELINES_UNLIMITED_SIMILARITY_HPP

#include <cstdint>

#include "models/model_zoo.hpp"
#include "tensor/tensor.hpp"

namespace mercury {

/** Element-similarity statistics for one vector population. */
struct ElementSimilarityResult
{
    double uniqueElementFraction = 1.0; ///< unique / total per vector
    double speedupBound = 1.0;
};

/**
 * Measure per-vector element repetition over the rows of a (n, d)
 * matrix with `quant_bits` quantization.
 */
ElementSimilarityResult elementSimilarity(const Tensor &rows,
                                          int quant_bits);

/**
 * Model-level bound: per layer, generate representative smooth
 * activation vectors and random weights, measure the fraction of
 * element products whose input and weight elements both repeat, and
 * MAC-weight the resulting saving.
 */
double unlimitedSimilarityModelBound(const ModelConfig &model,
                                     uint64_t seed, int quant_bits = 10);

} // namespace mercury

#endif // MERCURY_BASELINES_UNLIMITED_SIMILARITY_HPP
