#include "baselines/ucnn.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace mercury {

namespace {

/**
 * Expected unique quantized values among `d` weight draws, estimated
 * empirically with a few trials.
 */
double
expectedUnique(int64_t d, int levels, Rng &rng)
{
    const int trials = 4;
    double total = 0.0;
    for (int t = 0; t < trials; ++t) {
        std::unordered_set<int> seen;
        for (int64_t i = 0; i < d; ++i) {
            const double w = rng.normal();
            // Uniform quantization over +/-3 sigma.
            int q = static_cast<int>(
                std::llround((std::clamp(w, -3.0, 3.0) + 3.0) / 6.0 *
                             (levels - 1)));
            seen.insert(q);
        }
        total += static_cast<double>(seen.size());
    }
    return total / trials;
}

} // namespace

UcnnResult
ucnnBound(const ModelConfig &model, int quant_bits, uint64_t seed)
{
    if (quant_bits < 1 || quant_bits > 16)
        panic("UCNN quantization bits ", quant_bits, " out of range");
    Rng rng(seed);
    const int levels = 1 << quant_bits;

    UcnnResult res;
    res.quantBits = quant_bits;
    double total_macs = 0.0;
    double effective_macs = 0.0;
    double unique_frac_sum = 0.0;
    int reusable = 0;

    for (const auto &layer : model.layers) {
        if (!layer.reusable())
            continue;
        // D = weights per dot product (the factorization scope).
        int64_t d = 0;
        switch (layer.type) {
          case LayerType::Conv:
            d = (layer.inChannels / layer.groups) * layer.kernel *
                layer.kernel;
            break;
          case LayerType::FullyConnected:
            d = layer.inFeatures;
            break;
          case LayerType::Attention:
            d = layer.embedDim;
            break;
          case LayerType::Pool:
            break;
        }
        if (d <= 0)
            continue;
        const double u = expectedUnique(d, levels, rng);
        // Multiplies shrink to u, additions remain: ratio of the
        // (1 multiply + 1 add) baseline MAC cost.
        const double ratio =
            (u + static_cast<double>(d)) / (2.0 * static_cast<double>(d));
        const double macs = static_cast<double>(layer.macCount(1));
        total_macs += macs;
        effective_macs += macs * ratio;
        unique_frac_sum += u / static_cast<double>(d);
        ++reusable;
    }
    if (total_macs <= 0.0)
        panic("UCNN bound on a model without reusable layers");
    res.speedupBound = total_macs / effective_macs;
    res.avgUniqueFraction = unique_frac_sum / std::max(reusable, 1);
    return res;
}

} // namespace mercury
