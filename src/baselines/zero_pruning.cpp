#include "baselines/zero_pruning.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace mercury {

ZeroPruningResult
zeroPruningBound(const Tensor &activations, const Tensor &weights)
{
    ZeroPruningResult res;
    int64_t zi = 0;
    for (int64_t i = 0; i < activations.numel(); ++i)
        zi += activations[i] == 0.0f;
    int64_t zw = 0;
    for (int64_t i = 0; i < weights.numel(); ++i)
        zw += weights[i] == 0.0f;
    res.zeroInputFraction =
        activations.numel()
            ? static_cast<double>(zi) /
                  static_cast<double>(activations.numel())
            : 0.0;
    res.zeroWeightFraction =
        weights.numel() ? static_cast<double>(zw) /
                              static_cast<double>(weights.numel())
                        : 0.0;
    const double nonzero = (1.0 - res.zeroInputFraction) *
                           (1.0 - res.zeroWeightFraction);
    res.speedupBound = nonzero > 0.0 ? 1.0 / nonzero : 1e9;
    return res;
}

double
zeroPruningModelBound(const ModelConfig &model, uint64_t seed)
{
    Rng rng(seed);
    double total = 0.0, effective = 0.0;
    bool first_reusable = true;
    for (const auto &layer : model.layers) {
        if (!layer.reusable())
            continue;
        // Input zeros: dense images feed the first layer; every
        // later layer consumes post-ReLU activations. Trained CNNs
        // measure 40-50% activation sparsity (jittered so models
        // differ slightly).
        double zi = first_reusable
                        ? 0.0
                        : 0.40 + 0.06 * rng.uniform();
        first_reusable = false;
        // Weight zeros: 8-bit-quantization rounds the smallest
        // weights of a normal distribution to zero.
        const double zw = 0.008 + 0.004 * rng.uniform();
        const double macs = static_cast<double>(layer.macCount(1));
        total += macs;
        effective += macs * (1.0 - zi) * (1.0 - zw);
    }
    return effective > 0.0 ? total / effective : 1.0;
}

} // namespace mercury
