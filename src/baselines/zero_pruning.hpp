/**
 * @file
 * Unlimited Zero Pruning bound (paper §VII-D2, Fig. 17b): assume the
 * accelerator detects and skips every multiply-accumulate whose
 * input *or* weight element is zero, with no hardware constraints.
 */

#ifndef MERCURY_BASELINES_ZERO_PRUNING_HPP
#define MERCURY_BASELINES_ZERO_PRUNING_HPP

#include <cstdint>

#include "models/model_zoo.hpp"
#include "tensor/tensor.hpp"

namespace mercury {

/** Zero statistics and the resulting bound for one tensor pair. */
struct ZeroPruningResult
{
    double zeroInputFraction = 0.0;
    double zeroWeightFraction = 0.0;
    double speedupBound = 1.0;
};

/** Bound from measured tensors (exact zero counting). */
ZeroPruningResult zeroPruningBound(const Tensor &activations,
                                   const Tensor &weights);

/**
 * Model-level bound: layer activations after ReLU are half zero
 * (standard for normal pre-activations); the first layer's image
 * inputs and the weights are dense except for quantization-induced
 * zeros. MAC-weighted across layers.
 */
double zeroPruningModelBound(const ModelConfig &model, uint64_t seed);

} // namespace mercury

#endif // MERCURY_BASELINES_ZERO_PRUNING_HPP
