#include "baselines/bloom_filter.hpp"

#include <cmath>
#include <set>
#include <string>

#include "core/rpq.hpp"
#include "util/logging.hpp"

namespace mercury {

BloomFilter::BloomFilter(int bits, int hashes)
    : filter_(static_cast<size_t>(bits), false), hashes_(hashes)
{
    if (bits <= 0 || hashes <= 0)
        panic("BloomFilter needs positive bits and hashes");
}

uint64_t
BloomFilter::hashN(uint64_t key, int n) const
{
    // Double hashing: h1 + n*h2 with SplitMix-style mixers.
    uint64_t h1 = key;
    h1 = (h1 ^ (h1 >> 30)) * 0xBF58476D1CE4E5B9ull;
    h1 = (h1 ^ (h1 >> 27)) * 0x94D049BB133111EBull;
    h1 ^= h1 >> 31;
    uint64_t h2 = key * 0x9E3779B97F4A7C15ull + 0x2545F4914F6CDD1Dull;
    h2 = (h2 ^ (h2 >> 29)) * 0xFF51AFD7ED558CCDull;
    h2 |= 1; // odd stride
    return h1 + static_cast<uint64_t>(n) * h2;
}

void
BloomFilter::insert(uint64_t key)
{
    for (int n = 0; n < hashes_; ++n)
        filter_[static_cast<size_t>(hashN(key, n) % filter_.size())] =
            true;
}

bool
BloomFilter::mightContain(uint64_t key) const
{
    for (int n = 0; n < hashes_; ++n) {
        if (!filter_[static_cast<size_t>(hashN(key, n) %
                                         filter_.size())]) {
            return false;
        }
    }
    return true;
}

void
BloomFilter::clear()
{
    filter_.assign(filter_.size(), false);
}

uint64_t
BloomFilter::vectorKey(const float *v, int64_t dim, float q)
{
    // Quantize each element to the grid and mix into one key, so
    // epsilon-close vectors share keys.
    uint64_t key = 1469598103934665603ull;
    for (int64_t i = 0; i < dim; ++i) {
        const int64_t cell =
            static_cast<int64_t>(std::llround(v[i] / q));
        key ^= static_cast<uint64_t>(cell);
        key *= 1099511628211ull;
    }
    return key;
}

int
bloomUniqueCount(const Tensor &rows, int filter_bits, int hashes, float q)
{
    BloomFilter filter(filter_bits, hashes);
    int uniques = 0;
    for (int64_t i = 0; i < rows.dim(0); ++i) {
        const uint64_t key =
            BloomFilter::vectorKey(rows.data() + i * rows.dim(1),
                                   rows.dim(1), q);
        if (!filter.mightContain(key)) {
            ++uniques;
            filter.insert(key);
        }
    }
    return uniques;
}

int
rpqUniqueCount(const Tensor &rows, int sig_bits, uint64_t seed)
{
    RPQEngine rpq(rows.dim(1), sig_bits, seed);
    std::set<std::string> sigs;
    for (int64_t i = 0; i < rows.dim(0); ++i)
        sigs.insert(rpq.signatureOfRow(rows, i, sig_bits).str());
    return static_cast<int>(sigs.size());
}

} // namespace mercury
