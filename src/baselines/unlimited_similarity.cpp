#include "baselines/unlimited_similarity.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace mercury {

namespace {

int
quantize(float v, int levels)
{
    const float c = std::clamp(v, -3.0f, 3.0f);
    return static_cast<int>(
        std::llround((c + 3.0f) / 6.0f * static_cast<float>(levels - 1)));
}

} // namespace

ElementSimilarityResult
elementSimilarity(const Tensor &rows, int quant_bits)
{
    if (rows.rank() != 2)
        panic("elementSimilarity expects (n, d), got ", rows.shapeStr());
    const int levels = 1 << quant_bits;
    double unique_sum = 0.0;
    for (int64_t i = 0; i < rows.dim(0); ++i) {
        std::unordered_set<int> seen;
        for (int64_t j = 0; j < rows.dim(1); ++j)
            seen.insert(quantize(rows.at2(i, j), levels));
        unique_sum += static_cast<double>(seen.size()) /
                      static_cast<double>(rows.dim(1));
    }
    ElementSimilarityResult res;
    res.uniqueElementFraction =
        rows.dim(0) ? unique_sum / static_cast<double>(rows.dim(0)) : 1.0;
    res.speedupBound = res.uniqueElementFraction > 0.0
                           ? 1.0 / res.uniqueElementFraction
                           : 1e9;
    return res;
}

double
unlimitedSimilarityModelBound(const ModelConfig &model, uint64_t seed,
                              int quant_bits)
{
    Rng rng(seed);
    double total = 0.0, effective = 0.0;
    bool first_reusable = true;

    for (const auto &layer : model.layers) {
        if (!layer.reusable())
            continue;
        int64_t d = layer.vectorDim();
        if (layer.type == LayerType::Conv && layer.kernel == 1)
            d = layer.inChannels / layer.groups;
        d = std::clamp<int64_t>(d, 4, 64);

        // Post-ReLU activations: about half the elements collapse to
        // zero, the dominant source of element-level repetition. The
        // first layer consumes dense image pixels instead.
        Tensor act({64, d});
        for (int64_t i = 0; i < act.numel(); ++i) {
            const float x = static_cast<float>(rng.normal());
            act[i] = first_reusable ? x : std::max(0.0f, x);
        }
        first_reusable = false;
        const double u_in =
            elementSimilarity(act, quant_bits).uniqueElementFraction;

        // Weights: dense normal draws (little repetition inside one
        // filter unless d is large relative to the level count).
        Tensor wts({64, d});
        wts.fillNormal(rng);
        const double u_w =
            elementSimilarity(wts, quant_bits).uniqueElementFraction;

        // A product is computed only if both its elements were first
        // occurrences (the most optimistic reading of "all similar
        // elements are saved").
        const double compute_frac = u_in * u_w;
        const double macs = static_cast<double>(layer.macCount(1));
        total += macs;
        effective += macs * compute_frac;
    }
    return effective > 0.0 ? total / effective : 1.0;
}

} // namespace mercury
