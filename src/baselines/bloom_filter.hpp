/**
 * @file
 * Bloom-filter-based similarity detection, the comparison point of
 * the paper's Fig. 3: vectors are quantized to a grid and inserted
 * into a Bloom filter; a vector whose key might already be present
 * is declared "seen" (similar). Small filters alias aggressively, so
 * they under-count unique vectors — which is exactly what the figure
 * shows relative to RPQ.
 */

#ifndef MERCURY_BASELINES_BLOOM_FILTER_HPP
#define MERCURY_BASELINES_BLOOM_FILTER_HPP

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace mercury {

/** A classic m-bit, k-hash Bloom filter over 64-bit keys. */
class BloomFilter
{
  public:
    BloomFilter(int bits, int hashes);

    void insert(uint64_t key);
    bool mightContain(uint64_t key) const;
    void clear();

    int bits() const { return static_cast<int>(filter_.size()); }

    /** Quantized key of a vector (grid step q). */
    static uint64_t vectorKey(const float *v, int64_t dim, float q);

  private:
    std::vector<bool> filter_;
    int hashes_;

    uint64_t hashN(uint64_t key, int n) const;
};

/**
 * Unique vectors found by Bloom-filter detection over the rows of a
 * (n, d) matrix (count of rows whose key was not already present).
 */
int bloomUniqueCount(const Tensor &rows, int filter_bits, int hashes,
                     float q = 0.05f);

/** Unique vectors found by RPQ signatures of the given length. */
int rpqUniqueCount(const Tensor &rows, int sig_bits, uint64_t seed);

} // namespace mercury

#endif // MERCURY_BASELINES_BLOOM_FILTER_HPP
