/**
 * @file
 * UCNN comparison bound (paper §VII-D1, Fig. 17a).
 *
 * UCNN exploits weight repetition: with b-bit quantized weights, a
 * dot product over D weights only needs one multiply per *unique*
 * weight value (inputs sharing a weight are summed first), while the
 * additions remain. Lacking the original implementation — as the
 * paper did — we compute the maximum achievable saving: per layer,
 * cost ratio = (E[unique quantized values among D] + D) / (2 D),
 * i.e. multiplies shrink to the unique count and adds stay.
 */

#ifndef MERCURY_BASELINES_UCNN_HPP
#define MERCURY_BASELINES_UCNN_HPP

#include <cstdint>

#include "models/model_zoo.hpp"

namespace mercury {

/** Outcome of the UCNN bound analysis for one model. */
struct UcnnResult
{
    int quantBits = 8;
    double speedupBound = 1.0;      ///< max achievable speedup
    double avgUniqueFraction = 1.0; ///< mean unique-weight fraction
};

/**
 * Maximum achievable UCNN speedup for a model with b-bit weights.
 * Weights are drawn from the usual He-style normal distribution and
 * uniformly quantized over +/-3 sigma.
 */
UcnnResult ucnnBound(const ModelConfig &model, int quant_bits,
                     uint64_t seed);

} // namespace mercury

#endif // MERCURY_BASELINES_UCNN_HPP
