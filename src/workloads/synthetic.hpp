/**
 * @file
 * Synthetic workload generators.
 *
 * The paper trains on ImageNet (80 classes) and Multi30k. Those
 * datasets are not available offline, so the generators build
 * procedurally structured inputs with the property MERCURY exploits:
 * class-dependent, spatially smooth content whose extracted vectors
 * exhibit controllable similarity (see DESIGN.md, substitutions).
 */

#ifndef MERCURY_WORKLOADS_SYNTHETIC_HPP
#define MERCURY_WORKLOADS_SYNTHETIC_HPP

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace mercury {

/** A labelled dataset: images (N, C, H, W) or tokens (N, T*E). */
struct Dataset
{
    Tensor inputs;
    std::vector<int> labels;

    int64_t size() const { return inputs.dim(0); }
};

/**
 * Image classification set: each class has a smooth low-frequency
 * prototype field (bilinearly upsampled coarse grid) and samples add
 * i.i.d. noise. Smooth fields make neighbouring convolution windows
 * similar — the input-similarity regime of the paper's Fig. 1.
 *
 * @param noise      per-pixel noise stddev (controls similarity)
 * @param proto_seed seed of the class prototypes; keep it equal
 *                   across train/validation splits so both draw from
 *                   the same class distribution
 */
Dataset makeImageDataset(int64_t n, int classes, int64_t channels,
                         int64_t hw, uint64_t seed, float noise = 0.05f,
                         uint64_t proto_seed = 9001);

/**
 * Token-sequence set for the transformer proxy: samples are
 * (seq_len x embed_dim) matrices whose rows are drawn from a small
 * class-dependent token vocabulary plus noise, flattened to
 * (N, seq_len * embed_dim).
 */
Dataset makeTokenDataset(int64_t n, int classes, int64_t seq_len,
                         int64_t embed_dim, uint64_t seed,
                         float noise = 0.05f, uint64_t proto_seed = 9002);

/**
 * Vector population for similarity studies: `uniques` prototype
 * vectors, each repeated with epsilon noise, shuffled into a
 * (n, dim) matrix. Used by the Fig. 3 experiment and the per-layer
 * similarity profiles.
 *
 * @param zipf popularity skew of the prototypes: 0 draws them
 *             uniformly; larger exponents concentrate repetitions on
 *             a few hot prototypes, the regime of real activation
 *             streams (this is what lets a ~1k-entry MCACHE capture
 *             most of the reuse of a 50k-vector layer, paper
 *             Fig. 15c). The first `uniques` rows cover every
 *             prototype once, in popularity order.
 */
Tensor prototypeVectors(int64_t n, int64_t dim, int64_t uniques,
                        float eps, uint64_t seed, double zipf = 0.0);

} // namespace mercury

#endif // MERCURY_WORKLOADS_SYNTHETIC_HPP
