/**
 * @file
 * Synthetic workload generators.
 *
 * The paper trains on ImageNet (80 classes) and Multi30k. Those
 * datasets are not available offline, so the generators build
 * procedurally structured inputs with the property MERCURY exploits:
 * class-dependent, spatially smooth content whose extracted vectors
 * exhibit controllable similarity (see DESIGN.md, substitutions).
 */

#ifndef MERCURY_WORKLOADS_SYNTHETIC_HPP
#define MERCURY_WORKLOADS_SYNTHETIC_HPP

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace mercury {

/** A labelled dataset: images (N, C, H, W) or tokens (N, T*E). */
struct Dataset
{
    Tensor inputs;
    std::vector<int> labels;

    int64_t size() const { return inputs.dim(0); }
};

/**
 * Image classification set: each class has a smooth low-frequency
 * prototype field (bilinearly upsampled coarse grid) and samples add
 * i.i.d. noise. Smooth fields make neighbouring convolution windows
 * similar — the input-similarity regime of the paper's Fig. 1.
 *
 * @param noise      per-pixel noise stddev (controls similarity)
 * @param proto_seed seed of the class prototypes; keep it equal
 *                   across train/validation splits so both draw from
 *                   the same class distribution
 */
Dataset makeImageDataset(int64_t n, int classes, int64_t channels,
                         int64_t hw, uint64_t seed, float noise = 0.05f,
                         uint64_t proto_seed = 9001);

/**
 * Token-sequence set for the transformer proxy: samples are
 * (seq_len x embed_dim) matrices whose rows are drawn from a small
 * class-dependent token vocabulary plus noise, flattened to
 * (N, seq_len * embed_dim).
 */
Dataset makeTokenDataset(int64_t n, int classes, int64_t seq_len,
                         int64_t embed_dim, uint64_t seed,
                         float noise = 0.05f, uint64_t proto_seed = 9002);

/**
 * Vector population for similarity studies: `uniques` prototype
 * vectors, each repeated with epsilon noise, shuffled into a
 * (n, dim) matrix. Used by the Fig. 3 experiment and the per-layer
 * similarity profiles.
 *
 * @param zipf popularity skew of the prototypes: 0 draws them
 *             uniformly; larger exponents concentrate repetitions on
 *             a few hot prototypes, the regime of real activation
 *             streams (this is what lets a ~1k-entry MCACHE capture
 *             most of the reuse of a 50k-vector layer, paper
 *             Fig. 15c). The first `uniques` rows cover every
 *             prototype once, in popularity order.
 */
Tensor prototypeVectors(int64_t n, int64_t dim, int64_t uniques,
                        float eps, uint64_t seed, double zipf = 0.0);

/**
 * Knobs of the synthetic many-client traffic source shared by the
 * serving bench (bench/serve_traffic) and the serving tests
 * (tests/test_serve) — one deterministic definition of "traffic", so
 * the bench measures exactly the distribution the tests verify.
 */
struct TrafficConfig
{
    int tenants = 4;               ///< concurrent clients
    int64_t requestsPerTenant = 8; ///< stream length per client
    int64_t batch = 32;            ///< rows per request
    int64_t dim = 64;              ///< feature dimension per row
    int classes = 8;               ///< shared class prototypes
    float noise = 0.02f;           ///< fresh-draw per-element noise
    float driftNoise = 0.004f;     ///< correlated-request perturbation
    /**
     * Temporal correlation across a client's stream: with this
     * probability the next request is the previous one plus
     * driftNoise-scale perturbation (near-duplicate rows — the
     * cross-request similarity regime a persistent MCACHE exploits);
     * otherwise it is a fresh draw from the shared class prototypes.
     */
    double temporalCorr = 0.7;
    double zipf = 1.0;             ///< prototype popularity skew
    uint64_t seed = 1234;
};

/** One generated request: a row matrix plus per-row class labels. */
struct TrafficRequest
{
    int tenant = 0;
    int64_t index = 0; ///< per-tenant sequence number, from 0
    Tensor rows;       ///< (batch, dim)
    std::vector<int> labels;
    bool correlated = false; ///< drawn as a near-duplicate of index-1
};

/**
 * Deterministic per-tenant request streams with temporal correlation.
 *
 * Each tenant's stream is an independent random process derived from
 * (config.seed, tenant) alone, so two generators with equal configs
 * produce bit-identical streams regardless of the interleaving in
 * which tenants are pulled — the property that lets concurrent served
 * traffic be replayed serially for the golden-equivalence tests.
 * Within one tenant, requests must be pulled in sequence order
 * (next() advances the stream; the correlated draws depend on the
 * previous request).
 */
class TrafficGenerator
{
  public:
    explicit TrafficGenerator(const TrafficConfig &cfg);

    const TrafficConfig &config() const { return cfg_; }

    /** The next request of `tenant`'s stream. */
    TrafficRequest next(int tenant);

    /** Rewind every tenant stream to request 0. */
    void reset();

  private:
    struct TenantState
    {
        Rng rng;
        int64_t nextIndex = 0;
        Tensor prev;
        std::vector<int> prevLabels;

        TenantState() : rng(0) {}
    };

    TrafficConfig cfg_;
    Tensor protos_; ///< (classes, dim), shared across tenants
    std::vector<double> zipfCdf_;
    std::vector<TenantState> tenants_;

    int pickClass(Rng &rng) const;
};

} // namespace mercury

#endif // MERCURY_WORKLOADS_SYNTHETIC_HPP
