#include "workloads/profiles.hpp"

#include <algorithm>
#include <cmath>

#include "pipeline/detection_frontend.hpp"
#include "util/logging.hpp"
#include "workloads/synthetic.hpp"

namespace mercury {

namespace {

struct SpanPair
{
    SimilaritySpan input;
    SimilaritySpan gradient;
};

/**
 * Per-family calibration. Anchors: VGG13 input similarity reaches 75%
 * in early layers and decays (Fig. 1a), gradients trail inputs
 * (Fig. 1b), and bigger networks expose more similarity (§VII-A:
 * ResNet152, VGG19, Inception-V4 save the most).
 */
SpanPair
spansFor(const std::string &name)
{
    if (name == "AlexNet")
        return {{0.58, 0.38}, {0.48, 0.30}};
    if (name == "GoogleNet")
        return {{0.76, 0.50}, {0.64, 0.40}};
    if (name == "ResNet50")
        return {{0.78, 0.54}, {0.66, 0.44}};
    if (name == "ResNet101")
        return {{0.80, 0.56}, {0.68, 0.46}};
    if (name == "ResNet152")
        return {{0.84, 0.60}, {0.72, 0.50}};
    if (name == "VGG-13")
        return {{0.75, 0.45}, {0.67, 0.38}};
    if (name == "VGG-16")
        return {{0.78, 0.50}, {0.69, 0.42}};
    if (name == "VGG-19")
        return {{0.82, 0.54}, {0.72, 0.44}};
    if (name == "Incep-V4")
        return {{0.84, 0.58}, {0.73, 0.48}};
    if (name == "MobNet-V2")
        return {{0.72, 0.46}, {0.58, 0.36}};
    if (name == "Squeeze1.0")
        return {{0.74, 0.48}, {0.62, 0.38}};
    if (name == "Transformer")
        return {{0.68, 0.52}, {0.58, 0.42}};
    return {{0.60, 0.40}, {0.50, 0.30}};
}

} // namespace

SimilaritySpan
inputSimilaritySpan(const std::string &model_name)
{
    return spansFor(model_name).input;
}

SimilaritySpan
gradientSimilaritySpan(const std::string &model_name)
{
    return spansFor(model_name).gradient;
}

SyntheticSimilaritySource::SyntheticSimilaritySource(
    const ModelConfig &model, const AcceleratorConfig &cfg, uint64_t seed,
    int64_t sample_cap, int64_t dim_cap)
    : modelName_(model.name), cfg_(cfg), seed_(seed),
      sampleCap_(sample_cap), dimCap_(dim_cap)
{
    // Depth fraction over reusable layers only.
    const int reusable = std::max(model.reusableLayers(), 1);
    int idx = 0;
    for (const auto &l : model.layers) {
        if (!l.reusable())
            continue;
        depthOf_[l.name] =
            reusable > 1
                ? static_cast<double>(idx) / (reusable - 1)
                : 0.0;
        ++idx;
    }
}

double
SyntheticSimilaritySource::depthFor(const LayerShape &shape) const
{
    auto it = depthOf_.find(shape.name);
    return it == depthOf_.end() ? 0.5 : it->second;
}

double
SyntheticSimilaritySource::targetSimilarity(const LayerShape &shape,
                                            Phase phase) const
{
    const SpanPair spans = spansFor(modelName_);
    const SimilaritySpan &span =
        phase == Phase::Forward ? spans.input : spans.gradient;
    const double d = depthFor(shape);
    return span.first + (span.last - span.first) * d;
}

HitMix
SyntheticSimilaritySource::channelMix(const LayerShape &shape,
                                      int sig_bits, Phase phase)
{
    const auto key =
        std::make_tuple(shape.name, sig_bits, static_cast<int>(phase));
    auto cached = cache_.find(key);
    if (cached != cache_.end())
        return cached->second;

    // Population size: one channel pass (conv) or one block of rows
    // (FC / attention), capped for statistical tiling.
    int64_t pop = shape.vectorsPerImage();
    if (shape.type == LayerType::FullyConnected)
        pop = 256; // minibatch rows
    const int64_t v = std::clamp<int64_t>(pop, 16, sampleCap_);

    // Vector dimensionality: what the hardware actually hashes. For
    // pointwise convs the vectors span channels (see sim/dataflow).
    int64_t d = shape.vectorDim();
    if (shape.type == LayerType::Conv && shape.kernel == 1)
        d = shape.inChannels / shape.groups;
    d = std::clamp<int64_t>(d, 4, dimCap_);

    const double target = targetSimilarity(shape, phase);
    const int64_t uniques = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround((1.0 - target) * v)));

    // The paper's Fig. 1 similarity percentages are themselves
    // RPQ-measured, so the generator's epsilon is small enough that
    // the detector recovers the target fraction at the initial
    // signature length, while longer signatures still split
    // borderline pairs (the §III-D growth mechanism).
    const float eps = 0.008f;
    uint64_t pass_seed = seed_;
    for (char c : shape.name)
        pass_seed = pass_seed * 1099511628211ull + static_cast<uint8_t>(c);
    pass_seed += static_cast<uint64_t>(sig_bits) * 7919 +
                 static_cast<uint64_t>(phase) * 104729;

    // Real activation streams concentrate repetitions on a few hot
    // prototypes (Zipf-like), which is how a ~1k-entry MCACHE covers
    // a 50k-vector layer. Statistical tiling therefore also scales
    // the cache with the sampling ratio so capacity pressure is
    // preserved: a full-size population against the full cache
    // behaves like the sample against the scaled cache.
    const double kZipf = 1.8;
    Tensor rows = prototypeVectors(v, d, std::min(uniques, v), eps,
                                   pass_seed, kZipf);
    const double sample_scale =
        std::min(1.0, static_cast<double>(v) /
                          static_cast<double>(std::max<int64_t>(pop, 1)));
    const int scaled_sets = std::max<int>(
        1, static_cast<int>(std::llround(cfg_.mcacheSets * sample_scale)));
    const PipelineConfig pipe = PipelineConfig::fromConfig(cfg_);
    DetectionFrontend frontend(scaled_sets, cfg_.mcacheWays, 1,
                               std::max(cfg_.maxSignatureBits, sig_bits),
                               pass_seed ^ 0xD1B54A32D192ED03ull, pipe);
    // One worker pool outlives the per-query frontends: thread spawn /
    // join per channelMix would dwarf the detect() it parallelizes.
    frontend.setSharedPool(ThreadPool::forKnob(pipe.threads, pool_));
    const HitMix mix = frontend.detect(rows, sig_bits).mix();
    cache_.emplace(key, mix);
    return mix;
}

} // namespace mercury
