/**
 * @file
 * Per-model similarity profiles and the SyntheticSimilaritySource.
 *
 * The source answers the accelerator's channelMix queries by running
 * the *real* RPQ + MCACHE detector over prototype-mixture vector
 * populations whose unique-vector fraction follows a per-model,
 * per-depth profile calibrated to the paper's measurements:
 * similarity is highest in early layers and decays with depth
 * (Fig. 1, Fig. 15c), gradient similarity trails input similarity
 * (Fig. 1b), and bigger networks expose more similarity (§VII-A).
 * Because the real detector runs, signature-length growth reduces
 * hit rates naturally.
 */

#ifndef MERCURY_WORKLOADS_PROFILES_HPP
#define MERCURY_WORKLOADS_PROFILES_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "core/mercury_accelerator.hpp"
#include "models/model_zoo.hpp"
#include "sim/config.hpp"
#include "util/thread_pool.hpp"

namespace mercury {

/** Linear similarity span from the first to the last reusable layer. */
struct SimilaritySpan
{
    double first = 0.7; ///< similar-vector fraction at depth 0
    double last = 0.4;  ///< similar-vector fraction at depth 1
};

/** Per-model-family calibration of input/gradient similarity. */
SimilaritySpan inputSimilaritySpan(const std::string &model_name);
SimilaritySpan gradientSimilaritySpan(const std::string &model_name);

/** Measured-similarity source backed by the real detector. */
class SyntheticSimilaritySource : public SimilaritySource
{
  public:
    /**
     * @param model      the network being simulated (for depth info)
     * @param cfg        MCACHE organization to measure against
     * @param seed       vector-population seed
     * @param sample_cap max vectors hashed per query (statistical
     *                   tiling; the mix is rescaled by the caller)
     * @param dim_cap    max vector dimensionality hashed (RPQ
     *                   similarity behaviour is dimension-robust)
     */
    SyntheticSimilaritySource(const ModelConfig &model,
                              const AcceleratorConfig &cfg, uint64_t seed,
                              int64_t sample_cap = 768,
                              int64_t dim_cap = 48);

    HitMix channelMix(const LayerShape &shape, int sig_bits,
                      Phase phase) override;

    /** Target similar fraction for a layer and phase (for tests). */
    double targetSimilarity(const LayerShape &shape, Phase phase) const;

  private:
    std::string modelName_;
    AcceleratorConfig cfg_;
    uint64_t seed_;
    int64_t sampleCap_;
    int64_t dimCap_;
    std::map<std::string, double> depthOf_; ///< layer name -> [0, 1]
    std::map<std::tuple<std::string, int, int>, HitMix> cache_;
    std::unique_ptr<ThreadPool> pool_; ///< shared across queries

    double depthFor(const LayerShape &shape) const;
};

} // namespace mercury

#endif // MERCURY_WORKLOADS_PROFILES_HPP
