#include "workloads/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace mercury {

namespace {

/** Bilinear upsample of a coarse (gc x gc) grid to (hw x hw). */
void
upsampleField(const std::vector<float> &grid, int64_t gc, float *out,
              int64_t hw)
{
    for (int64_t y = 0; y < hw; ++y) {
        for (int64_t x = 0; x < hw; ++x) {
            const float fy = static_cast<float>(y) /
                             static_cast<float>(hw - 1) *
                             static_cast<float>(gc - 1);
            const float fx = static_cast<float>(x) /
                             static_cast<float>(hw - 1) *
                             static_cast<float>(gc - 1);
            const int64_t y0 = static_cast<int64_t>(fy);
            const int64_t x0 = static_cast<int64_t>(fx);
            const int64_t y1 = std::min(y0 + 1, gc - 1);
            const int64_t x1 = std::min(x0 + 1, gc - 1);
            const float wy = fy - static_cast<float>(y0);
            const float wx = fx - static_cast<float>(x0);
            const float v00 = grid[static_cast<size_t>(y0 * gc + x0)];
            const float v01 = grid[static_cast<size_t>(y0 * gc + x1)];
            const float v10 = grid[static_cast<size_t>(y1 * gc + x0)];
            const float v11 = grid[static_cast<size_t>(y1 * gc + x1)];
            out[y * hw + x] = (1 - wy) * ((1 - wx) * v00 + wx * v01) +
                              wy * ((1 - wx) * v10 + wx * v11);
        }
    }
}

} // namespace

Dataset
makeImageDataset(int64_t n, int classes, int64_t channels, int64_t hw,
                 uint64_t seed, float noise, uint64_t proto_seed)
{
    if (classes <= 0 || n <= 0)
        panic("dataset needs positive size and classes");
    Rng rng(seed);
    Rng proto_rng(proto_seed);
    const int64_t gc = 4; // coarse grid resolution

    // Per-class, per-channel prototype fields, drawn from their own
    // seed so train/validation splits share the class distribution.
    std::vector<std::vector<float>> protos(
        static_cast<size_t>(classes * channels),
        std::vector<float>(static_cast<size_t>(gc * gc)));
    for (auto &grid : protos)
        for (auto &v : grid)
            v = static_cast<float>(proto_rng.normal());

    Dataset ds;
    ds.inputs = Tensor({n, channels, hw, hw});
    ds.labels.resize(static_cast<size_t>(n));
    std::vector<float> field(static_cast<size_t>(hw * hw));
    for (int64_t i = 0; i < n; ++i) {
        const int cls = static_cast<int>(
            rng.uniformInt(static_cast<uint64_t>(classes)));
        ds.labels[static_cast<size_t>(i)] = cls;
        for (int64_t c = 0; c < channels; ++c) {
            upsampleField(
                protos[static_cast<size_t>(cls * channels + c)], gc,
                field.data(), hw);
            for (int64_t p = 0; p < hw * hw; ++p) {
                ds.inputs[ds.inputs.offset4(i, c, 0, 0) + p] =
                    field[static_cast<size_t>(p)] +
                    noise * static_cast<float>(rng.normal());
            }
        }
    }
    return ds;
}

Dataset
makeTokenDataset(int64_t n, int classes, int64_t seq_len,
                 int64_t embed_dim, uint64_t seed, float noise,
                 uint64_t proto_seed)
{
    Rng rng(seed);
    Rng proto_rng(proto_seed);
    const int64_t vocab = 4 * classes;
    Tensor embeddings({vocab, embed_dim});
    embeddings.fillNormal(proto_rng);

    Dataset ds;
    ds.inputs = Tensor({n, seq_len * embed_dim});
    ds.labels.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
        const int cls = static_cast<int>(
            rng.uniformInt(static_cast<uint64_t>(classes)));
        ds.labels[static_cast<size_t>(i)] = cls;
        for (int64_t t = 0; t < seq_len; ++t) {
            // Tokens biased toward the class's vocabulary slice, so
            // sequences repeat tokens (row similarity for reuse).
            const int64_t tok =
                cls * 4 + static_cast<int64_t>(rng.uniformInt(4));
            for (int64_t e = 0; e < embed_dim; ++e) {
                ds.inputs.at2(i, t * embed_dim + e) =
                    embeddings.at2(tok, e) +
                    noise * static_cast<float>(rng.normal());
            }
        }
    }
    return ds;
}

Tensor
prototypeVectors(int64_t n, int64_t dim, int64_t uniques, float eps,
                 uint64_t seed, double zipf)
{
    if (uniques <= 0 || uniques > n)
        panic("prototypeVectors: uniques ", uniques, " outside 1..", n);
    Rng rng(seed);
    Tensor protos({uniques, dim});
    protos.fillNormal(rng);

    // Cumulative popularity for inverse-CDF sampling.
    std::vector<double> cdf(static_cast<size_t>(uniques));
    double acc = 0.0;
    for (int64_t p = 0; p < uniques; ++p) {
        acc += zipf > 0.0
                   ? 1.0 / std::pow(static_cast<double>(p + 1), zipf)
                   : 1.0;
        cdf[static_cast<size_t>(p)] = acc;
    }

    Tensor rows({n, dim});
    for (int64_t i = 0; i < n; ++i) {
        // First `uniques` rows cover every prototype once (so the
        // population truly contains that many uniques); the rest
        // sample prototypes by popularity.
        int64_t p;
        if (i < uniques) {
            p = i;
        } else {
            const double u = rng.uniform() * acc;
            p = static_cast<int64_t>(
                std::lower_bound(cdf.begin(), cdf.end(), u) -
                cdf.begin());
            p = std::min(p, uniques - 1);
        }
        for (int64_t j = 0; j < dim; ++j)
            rows.at2(i, j) = protos.at2(p, j) +
                             eps * static_cast<float>(rng.normal());
    }
    return rows;
}

namespace {

/** SplitMix-style spread, as MercuryContext::layerSeed. */
uint64_t
mixSeed(uint64_t seed, uint64_t salt)
{
    uint64_t z = seed + 0x9E3779B97F4A7C15ull * (salt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    return z ^ (z >> 31);
}

} // namespace

TrafficGenerator::TrafficGenerator(const TrafficConfig &cfg) : cfg_(cfg)
{
    if (cfg.tenants <= 0 || cfg.batch <= 0 || cfg.dim <= 0 ||
        cfg.classes <= 0)
        panic("TrafficGenerator needs positive tenants/batch/dim/"
              "classes, got ",
              cfg.tenants, "/", cfg.batch, "/", cfg.dim, "/",
              cfg.classes);
    // Prototypes are shared across tenants: different clients sending
    // near-identical content is the cross-tenant dedup opportunity of
    // the shared-cache serving modes.
    Rng proto_rng(mixSeed(cfg.seed, 0xA11CE));
    protos_ = Tensor({cfg.classes, cfg.dim});
    protos_.fillNormal(proto_rng);

    zipfCdf_.resize(static_cast<size_t>(cfg.classes));
    double acc = 0.0;
    for (int c = 0; c < cfg.classes; ++c) {
        acc += cfg.zipf > 0.0 ? 1.0 / std::pow(static_cast<double>(c + 1),
                                               cfg.zipf)
                              : 1.0;
        zipfCdf_[static_cast<size_t>(c)] = acc;
    }
    reset();
}

void
TrafficGenerator::reset()
{
    tenants_.assign(static_cast<size_t>(cfg_.tenants), TenantState());
    for (int t = 0; t < cfg_.tenants; ++t)
        tenants_[static_cast<size_t>(t)].rng.seed(
            mixSeed(cfg_.seed, static_cast<uint64_t>(t) + 1));
}

int
TrafficGenerator::pickClass(Rng &rng) const
{
    const double u = rng.uniform() * zipfCdf_.back();
    const auto it =
        std::lower_bound(zipfCdf_.begin(), zipfCdf_.end(), u);
    return std::min(static_cast<int>(it - zipfCdf_.begin()),
                    cfg_.classes - 1);
}

TrafficRequest
TrafficGenerator::next(int tenant)
{
    if (tenant < 0 || tenant >= cfg_.tenants)
        panic("tenant ", tenant, " out of range 0..", cfg_.tenants - 1);
    TenantState &st = tenants_[static_cast<size_t>(tenant)];

    TrafficRequest req;
    req.tenant = tenant;
    req.index = st.nextIndex++;
    req.rows = Tensor({cfg_.batch, cfg_.dim});
    req.labels.resize(static_cast<size_t>(cfg_.batch));
    req.correlated =
        req.index > 0 && st.rng.bernoulli(cfg_.temporalCorr);

    if (req.correlated) {
        // Near-duplicate of the previous request: the same rows with
        // a small drift, the regime where a persistent MCACHE turns
        // cross-request similarity into HITs.
        for (int64_t i = 0; i < cfg_.batch; ++i)
            for (int64_t j = 0; j < cfg_.dim; ++j)
                req.rows.at2(i, j) =
                    st.prev.at2(i, j) +
                    cfg_.driftNoise *
                        static_cast<float>(st.rng.normal());
        req.labels = st.prevLabels;
    } else {
        for (int64_t i = 0; i < cfg_.batch; ++i) {
            const int c = pickClass(st.rng);
            req.labels[static_cast<size_t>(i)] = c;
            for (int64_t j = 0; j < cfg_.dim; ++j)
                req.rows.at2(i, j) =
                    protos_.at2(c, j) +
                    cfg_.noise * static_cast<float>(st.rng.normal());
        }
    }
    st.prev = req.rows;
    st.prevLabels = req.labels;
    return req;
}

} // namespace mercury
