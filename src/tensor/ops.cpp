#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace mercury {

namespace {

/** Fetch input pixel honoring zero padding. */
inline float
paddedAt(const Tensor &t, int64_t n, int64_t c, int64_t h, int64_t w)
{
    if (h < 0 || w < 0 || h >= t.dim(2) || w >= t.dim(3))
        return 0.0f;
    return t.at4(n, c, h, w);
}

void
checkConvShapes(const Tensor &input, const Tensor &weight,
                const ConvSpec &spec)
{
    if (input.rank() != 4)
        panic("conv input must be rank 4, got ", input.shapeStr());
    if (weight.rank() != 4)
        panic("conv weight must be rank 4, got ", weight.shapeStr());
    if (input.dim(1) != spec.inChannels)
        panic("conv input channels ", input.dim(1), " != spec ",
              spec.inChannels);
    if (weight.dim(0) != spec.outChannels ||
        weight.dim(1) != spec.inChannels / spec.groups ||
        weight.dim(2) != spec.kernelH || weight.dim(3) != spec.kernelW) {
        panic("conv weight shape ", weight.shapeStr(),
              " inconsistent with spec");
    }
    if (spec.inChannels % spec.groups != 0 ||
        spec.outChannels % spec.groups != 0) {
        panic("conv channels not divisible by groups");
    }
}

} // namespace

Tensor
conv2dForward(const Tensor &input, const Tensor &weight, const Tensor &bias,
              const ConvSpec &spec)
{
    checkConvShapes(input, weight, spec);
    const int64_t n = input.dim(0);
    const int64_t oh = spec.outH(input.dim(2));
    const int64_t ow = spec.outW(input.dim(3));
    const int64_t cin_g = spec.inChannels / spec.groups;
    const int64_t cout_g = spec.outChannels / spec.groups;
    Tensor out({n, spec.outChannels, oh, ow});

    for (int64_t b = 0; b < n; ++b) {
        for (int64_t g = 0; g < spec.groups; ++g) {
            for (int64_t oc = g * cout_g; oc < (g + 1) * cout_g; ++oc) {
                for (int64_t y = 0; y < oh; ++y) {
                    for (int64_t x = 0; x < ow; ++x) {
                        float acc =
                            bias.numel() ? bias[oc] : 0.0f;
                        for (int64_t ic = 0; ic < cin_g; ++ic) {
                            for (int64_t ky = 0; ky < spec.kernelH; ++ky) {
                                for (int64_t kx = 0; kx < spec.kernelW;
                                     ++kx) {
                                    const int64_t iy =
                                        y * spec.stride - spec.pad + ky;
                                    const int64_t ix =
                                        x * spec.stride - spec.pad + kx;
                                    acc += paddedAt(input, b,
                                                    g * cin_g + ic, iy, ix) *
                                           weight.at4(oc, ic, ky, kx);
                                }
                            }
                        }
                        out.at4(b, oc, y, x) = acc;
                    }
                }
            }
        }
    }
    return out;
}

Tensor
conv2dBackwardWeight(const Tensor &input, const Tensor &gradOut,
                     const ConvSpec &spec)
{
    const int64_t n = input.dim(0);
    const int64_t oh = gradOut.dim(2);
    const int64_t ow = gradOut.dim(3);
    const int64_t cin_g = spec.inChannels / spec.groups;
    const int64_t cout_g = spec.outChannels / spec.groups;
    Tensor grad_w({spec.outChannels, cin_g, spec.kernelH, spec.kernelW});

    for (int64_t b = 0; b < n; ++b) {
        for (int64_t g = 0; g < spec.groups; ++g) {
            for (int64_t oc = g * cout_g; oc < (g + 1) * cout_g; ++oc) {
                for (int64_t ic = 0; ic < cin_g; ++ic) {
                    for (int64_t ky = 0; ky < spec.kernelH; ++ky) {
                        for (int64_t kx = 0; kx < spec.kernelW; ++kx) {
                            float acc = grad_w.at4(oc, ic, ky, kx);
                            for (int64_t y = 0; y < oh; ++y) {
                                for (int64_t x = 0; x < ow; ++x) {
                                    const int64_t iy =
                                        y * spec.stride - spec.pad + ky;
                                    const int64_t ix =
                                        x * spec.stride - spec.pad + kx;
                                    acc += gradOut.at4(b, oc, y, x) *
                                           paddedAt(input, b,
                                                    g * cin_g + ic, iy, ix);
                                }
                            }
                            grad_w.at4(oc, ic, ky, kx) = acc;
                        }
                    }
                }
            }
        }
    }
    return grad_w;
}

Tensor
conv2dBackwardInput(const Tensor &gradOut, const Tensor &weight,
                    const ConvSpec &spec, int64_t in_h, int64_t in_w)
{
    const int64_t n = gradOut.dim(0);
    const int64_t oh = gradOut.dim(2);
    const int64_t ow = gradOut.dim(3);
    const int64_t cin_g = spec.inChannels / spec.groups;
    const int64_t cout_g = spec.outChannels / spec.groups;
    Tensor grad_in({n, spec.inChannels, in_h, in_w});

    // Scatter formulation of Eq. 2: each output gradient contributes to
    // the input positions its receptive field covered.
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t g = 0; g < spec.groups; ++g) {
            for (int64_t oc = g * cout_g; oc < (g + 1) * cout_g; ++oc) {
                for (int64_t y = 0; y < oh; ++y) {
                    for (int64_t x = 0; x < ow; ++x) {
                        const float go = gradOut.at4(b, oc, y, x);
                        if (go == 0.0f)
                            continue;
                        for (int64_t ic = 0; ic < cin_g; ++ic) {
                            for (int64_t ky = 0; ky < spec.kernelH; ++ky) {
                                for (int64_t kx = 0; kx < spec.kernelW;
                                     ++kx) {
                                    const int64_t iy =
                                        y * spec.stride - spec.pad + ky;
                                    const int64_t ix =
                                        x * spec.stride - spec.pad + kx;
                                    if (iy < 0 || ix < 0 || iy >= in_h ||
                                        ix >= in_w) {
                                        continue;
                                    }
                                    grad_in.at4(b, g * cin_g + ic, iy,
                                                ix) +=
                                        go * weight.at4(oc, ic, ky, kx);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return grad_in;
}

Tensor
conv2dBackwardBias(const Tensor &gradOut)
{
    const int64_t c = gradOut.dim(1);
    Tensor grad_b({c});
    for (int64_t b = 0; b < gradOut.dim(0); ++b)
        for (int64_t oc = 0; oc < c; ++oc)
            for (int64_t y = 0; y < gradOut.dim(2); ++y)
                for (int64_t x = 0; x < gradOut.dim(3); ++x)
                    grad_b[oc] += gradOut.at4(b, oc, y, x);
    return grad_b;
}

Tensor
im2col(const Tensor &input, const ConvSpec &spec)
{
    const int64_t n = input.dim(0);
    const int64_t oh = spec.outH(input.dim(2));
    const int64_t ow = spec.outW(input.dim(3));
    const int64_t cin_g = spec.inChannels / spec.groups;
    const int64_t cols = cin_g * spec.kernelH * spec.kernelW;
    const int64_t rows = n * spec.groups * oh * ow;
    Tensor out({rows, cols});

    int64_t r = 0;
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t g = 0; g < spec.groups; ++g) {
            for (int64_t y = 0; y < oh; ++y) {
                for (int64_t x = 0; x < ow; ++x, ++r) {
                    int64_t c = 0;
                    for (int64_t ic = 0; ic < cin_g; ++ic) {
                        for (int64_t ky = 0; ky < spec.kernelH; ++ky) {
                            for (int64_t kx = 0; kx < spec.kernelW;
                                 ++kx, ++c) {
                                const int64_t iy =
                                    y * spec.stride - spec.pad + ky;
                                const int64_t ix =
                                    x * spec.stride - spec.pad + kx;
                                out.at2(r, c) = paddedAt(
                                    input, b, g * cin_g + ic, iy, ix);
                            }
                        }
                    }
                }
            }
        }
    }
    return out;
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0))
        panic("matmul shape mismatch ", a.shapeStr(), " x ", b.shapeStr());
    const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    Tensor out({m, n});
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t p = 0; p < k; ++p) {
            const float av = a.at2(i, p);
            if (av == 0.0f)
                continue;
            for (int64_t j = 0; j < n; ++j)
                out.at2(i, j) += av * b.at2(p, j);
        }
    }
    return out;
}

Tensor
matmulTransposeB(const Tensor &a, const Tensor &b)
{
    if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(1))
        panic("matmulTransposeB shape mismatch ", a.shapeStr(), " x ",
              b.shapeStr());
    const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    Tensor out({m, n});
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (int64_t p = 0; p < k; ++p)
                acc += a.at2(i, p) * b.at2(j, p);
            out.at2(i, j) = acc;
        }
    }
    return out;
}

Tensor
transpose2d(const Tensor &a)
{
    if (a.rank() != 2)
        panic("transpose2d needs rank 2, got ", a.shapeStr());
    Tensor out({a.dim(1), a.dim(0)});
    for (int64_t i = 0; i < a.dim(0); ++i)
        for (int64_t j = 0; j < a.dim(1); ++j)
            out.at2(j, i) = a.at2(i, j);
    return out;
}

Tensor
reluForward(const Tensor &x)
{
    Tensor out = x;
    for (int64_t i = 0; i < out.numel(); ++i)
        out[i] = std::max(0.0f, out[i]);
    return out;
}

Tensor
reluBackward(const Tensor &x, const Tensor &grad)
{
    Tensor out = grad;
    for (int64_t i = 0; i < out.numel(); ++i)
        if (x[i] <= 0.0f)
            out[i] = 0.0f;
    return out;
}

Tensor
maxPool2x2Forward(const Tensor &x, std::vector<int32_t> &argmax)
{
    const int64_t n = x.dim(0), c = x.dim(1);
    const int64_t oh = x.dim(2) / 2, ow = x.dim(3) / 2;
    Tensor out({n, c, oh, ow});
    argmax.assign(static_cast<size_t>(out.numel()), 0);
    int64_t idx = 0;
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t ch = 0; ch < c; ++ch) {
            for (int64_t y = 0; y < oh; ++y) {
                for (int64_t w = 0; w < ow; ++w, ++idx) {
                    float best = -1e30f;
                    int32_t best_off = 0;
                    for (int dy = 0; dy < 2; ++dy) {
                        for (int dx = 0; dx < 2; ++dx) {
                            const float v =
                                x.at4(b, ch, 2 * y + dy, 2 * w + dx);
                            if (v > best) {
                                best = v;
                                best_off = static_cast<int32_t>(
                                    x.offset4(b, ch, 2 * y + dy,
                                              2 * w + dx));
                            }
                        }
                    }
                    out[idx] = best;
                    argmax[static_cast<size_t>(idx)] = best_off;
                }
            }
        }
    }
    return out;
}

Tensor
maxPool2x2Backward(const Tensor &x, const Tensor &gradOut,
                   const std::vector<int32_t> &argmax)
{
    Tensor grad_in(x.shape());
    for (int64_t i = 0; i < gradOut.numel(); ++i)
        grad_in[argmax[static_cast<size_t>(i)]] += gradOut[i];
    return grad_in;
}

Tensor
globalAvgPoolForward(const Tensor &x)
{
    const int64_t n = x.dim(0), c = x.dim(1);
    const float scale = 1.0f / static_cast<float>(x.dim(2) * x.dim(3));
    Tensor out({n, c});
    for (int64_t b = 0; b < n; ++b)
        for (int64_t ch = 0; ch < c; ++ch) {
            float acc = 0.0f;
            for (int64_t y = 0; y < x.dim(2); ++y)
                for (int64_t w = 0; w < x.dim(3); ++w)
                    acc += x.at4(b, ch, y, w);
            out.at2(b, ch) = acc * scale;
        }
    return out;
}

Tensor
globalAvgPoolBackward(const Tensor &x, const Tensor &gradOut)
{
    Tensor grad_in(x.shape());
    const float scale = 1.0f / static_cast<float>(x.dim(2) * x.dim(3));
    for (int64_t b = 0; b < x.dim(0); ++b)
        for (int64_t ch = 0; ch < x.dim(1); ++ch) {
            const float g = gradOut.at2(b, ch) * scale;
            for (int64_t y = 0; y < x.dim(2); ++y)
                for (int64_t w = 0; w < x.dim(3); ++w)
                    grad_in.at4(b, ch, y, w) = g;
        }
    return grad_in;
}

float
softmaxCrossEntropy(const Tensor &logits, const std::vector<int> &labels,
                    Tensor &gradOut)
{
    const int64_t n = logits.dim(0), k = logits.dim(1);
    if (static_cast<int64_t>(labels.size()) != n)
        panic("softmaxCrossEntropy: ", labels.size(), " labels for batch ",
              n);
    gradOut = Tensor({n, k});
    double loss = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        float mx = logits.at2(i, 0);
        for (int64_t j = 1; j < k; ++j)
            mx = std::max(mx, logits.at2(i, j));
        double denom = 0.0;
        for (int64_t j = 0; j < k; ++j)
            denom += std::exp(static_cast<double>(logits.at2(i, j) - mx));
        const int y = labels[static_cast<size_t>(i)];
        if (y < 0 || y >= k)
            panic("label ", y, " out of range for ", k, " classes");
        for (int64_t j = 0; j < k; ++j) {
            const double p =
                std::exp(static_cast<double>(logits.at2(i, j) - mx)) / denom;
            gradOut.at2(i, j) =
                static_cast<float>((p - (j == y ? 1.0 : 0.0)) /
                                   static_cast<double>(n));
            if (j == y)
                loss -= std::log(std::max(p, 1e-12));
        }
    }
    return static_cast<float>(loss / static_cast<double>(n));
}

Tensor
softmaxRows(const Tensor &x)
{
    Tensor out = x;
    for (int64_t i = 0; i < x.dim(0); ++i) {
        float mx = x.at2(i, 0);
        for (int64_t j = 1; j < x.dim(1); ++j)
            mx = std::max(mx, x.at2(i, j));
        double denom = 0.0;
        for (int64_t j = 0; j < x.dim(1); ++j)
            denom += std::exp(static_cast<double>(x.at2(i, j) - mx));
        for (int64_t j = 0; j < x.dim(1); ++j)
            out.at2(i, j) = static_cast<float>(
                std::exp(static_cast<double>(x.at2(i, j) - mx)) / denom);
    }
    return out;
}

uint64_t
convMacCount(int64_t n, int64_t in_h, int64_t in_w, const ConvSpec &spec)
{
    const uint64_t oh = static_cast<uint64_t>(spec.outH(in_h));
    const uint64_t ow = static_cast<uint64_t>(spec.outW(in_w));
    return static_cast<uint64_t>(n) * oh * ow *
           static_cast<uint64_t>(spec.outChannels) *
           static_cast<uint64_t>(spec.inChannels / spec.groups) *
           static_cast<uint64_t>(spec.kernelH) *
           static_cast<uint64_t>(spec.kernelW);
}

} // namespace mercury
