/**
 * @file
 * Dense tensor operations: convolution (forward and both backward
 * passes), matrix multiplication, im2col vector extraction, pooling,
 * activations, and the softmax cross-entropy loss.
 *
 * Convolutions follow the paper's §II-C formulation: forward output is
 * (H - k1 + 1) x (W - k2 + 1) (optionally strided / padded), the weight
 * gradient is a correlation between layer inputs and output gradients
 * (Eq. 1), and the input gradient is a full correlation with the
 * flipped kernel (Eq. 2).
 */

#ifndef MERCURY_TENSOR_OPS_HPP
#define MERCURY_TENSOR_OPS_HPP

#include <cstdint>

#include "tensor/tensor.hpp"

namespace mercury {

/** Static geometry of a 2D convolution. */
struct ConvSpec
{
    int64_t inChannels = 1;
    int64_t outChannels = 1;
    int64_t kernelH = 3;
    int64_t kernelW = 3;
    int64_t stride = 1;
    int64_t pad = 0;
    int64_t groups = 1;

    /** Output height for the given input height. */
    int64_t outH(int64_t in_h) const
    {
        return (in_h + 2 * pad - kernelH) / stride + 1;
    }

    /** Output width for the given input width. */
    int64_t outW(int64_t in_w) const
    {
        return (in_w + 2 * pad - kernelW) / stride + 1;
    }
};

/**
 * Forward convolution.
 *
 * @param input  (N, Cin, H, W)
 * @param weight (Cout, Cin/groups, kH, kW)
 * @param bias   (Cout) or empty tensor for no bias
 * @return       (N, Cout, outH, outW)
 */
Tensor conv2dForward(const Tensor &input, const Tensor &weight,
                     const Tensor &bias, const ConvSpec &spec);

/** Gradient of the loss w.r.t. the convolution weights (paper Eq. 1). */
Tensor conv2dBackwardWeight(const Tensor &input, const Tensor &gradOut,
                            const ConvSpec &spec);

/** Gradient of the loss w.r.t. the convolution input (paper Eq. 2). */
Tensor conv2dBackwardInput(const Tensor &gradOut, const Tensor &weight,
                           const ConvSpec &spec, int64_t in_h, int64_t in_w);

/** Gradient of the loss w.r.t. the bias (sum over N, H, W). */
Tensor conv2dBackwardBias(const Tensor &gradOut);

/**
 * Extract im2col patches: each sliding (Cin/groups * kH * kW) window of
 * one image becomes a row. These rows are exactly the "input vectors"
 * MERCURY computes signatures over.
 *
 * @param input (N, Cin, H, W); extraction is done per (n, group)
 * @return      (N * groups * outH * outW, Cin/groups * kH * kW)
 */
Tensor im2col(const Tensor &input, const ConvSpec &spec);

/** Matrix product: (m, k) x (k, n) -> (m, n). */
Tensor matmul(const Tensor &a, const Tensor &b);

/** Matrix product with b transposed: (m, k) x (n, k)^T -> (m, n). */
Tensor matmulTransposeB(const Tensor &a, const Tensor &b);

/** Transpose a rank-2 tensor. */
Tensor transpose2d(const Tensor &a);

/** Elementwise ReLU. */
Tensor reluForward(const Tensor &x);

/** ReLU gradient: grad * (x > 0). */
Tensor reluBackward(const Tensor &x, const Tensor &grad);

/** 2x2 stride-2 max pooling over (N, C, H, W); also fills argmax. */
Tensor maxPool2x2Forward(const Tensor &x, std::vector<int32_t> &argmax);

/** Backward of 2x2 stride-2 max pooling using the stored argmax. */
Tensor maxPool2x2Backward(const Tensor &x, const Tensor &gradOut,
                          const std::vector<int32_t> &argmax);

/** Global average pooling (N, C, H, W) -> (N, C). */
Tensor globalAvgPoolForward(const Tensor &x);

/** Backward of global average pooling. */
Tensor globalAvgPoolBackward(const Tensor &x, const Tensor &gradOut);

/**
 * Softmax cross-entropy over logits (N, numClasses).
 *
 * @param logits (N, K)
 * @param labels length-N class indices
 * @param gradOut filled with dLoss/dLogits (average-over-batch scaling)
 * @return mean loss
 */
float softmaxCrossEntropy(const Tensor &logits,
                          const std::vector<int> &labels, Tensor &gradOut);

/** Row-wise softmax of a rank-2 tensor. */
Tensor softmaxRows(const Tensor &x);

/** Number of multiply-accumulate operations of a forward convolution. */
uint64_t convMacCount(int64_t n, int64_t in_h, int64_t in_w,
                      const ConvSpec &spec);

} // namespace mercury

#endif // MERCURY_TENSOR_OPS_HPP
