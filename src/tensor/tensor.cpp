#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace mercury {

int64_t
Tensor::shapeNumel(const std::vector<int64_t> &shape)
{
    int64_t n = 1;
    for (int64_t d : shape) {
        if (d < 0)
            panic("negative tensor dimension ", d);
        n *= d;
    }
    return n;
}

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)), data_(shapeNumel(shape_), 0.0f)
{
}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    if (shapeNumel(shape_) != static_cast<int64_t>(data_.size()))
        panic("tensor shape/data mismatch: shape wants ",
              shapeNumel(shape_), " elements, data has ", data_.size());
}

int64_t
Tensor::dim(int i) const
{
    const int r = rank();
    if (i < 0)
        i += r;
    if (i < 0 || i >= r)
        panic("tensor dim index ", i, " out of range for rank ", r);
    return shape_[i];
}

float &
Tensor::at2(int64_t i, int64_t j)
{
    return data_[i * shape_[1] + j];
}

float
Tensor::at2(int64_t i, int64_t j) const
{
    return data_[i * shape_[1] + j];
}

int64_t
Tensor::offset4(int64_t n, int64_t c, int64_t h, int64_t w) const
{
    return ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
}

float &
Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w)
{
    return data_[offset4(n, c, h, w)];
}

float
Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) const
{
    return data_[offset4(n, c, h, w)];
}

void
Tensor::fill(float v)
{
    for (auto &x : data_)
        x = v;
}

void
Tensor::fillNormal(Rng &rng, float mean, float stddev)
{
    for (auto &x : data_)
        x = static_cast<float>(rng.normal(mean, stddev));
}

void
Tensor::reshape(std::vector<int64_t> shape)
{
    if (shapeNumel(shape) != numel())
        panic("reshape changes element count: ", numel(), " -> ",
              shapeNumel(shape));
    shape_ = std::move(shape);
}

bool
Tensor::operator==(const Tensor &other) const
{
    return shape_ == other.shape_ && data_ == other.data_;
}

float
Tensor::maxAbsDiff(const Tensor &other) const
{
    if (shape_ != other.shape_)
        panic("maxAbsDiff shape mismatch: ", shapeStr(), " vs ",
              other.shapeStr());
    float m = 0.0f;
    for (size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::fabs(data_[i] - other.data_[i]));
    return m;
}

std::string
Tensor::shapeStr() const
{
    std::ostringstream os;
    os << "(";
    for (size_t i = 0; i < shape_.size(); ++i) {
        if (i)
            os << ", ";
        os << shape_[i];
    }
    os << ")";
    return os.str();
}

} // namespace mercury
