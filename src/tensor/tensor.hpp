/**
 * @file
 * Minimal dense float tensor used by the functional simulator and the
 * NN training framework.
 *
 * Tensors are row-major with an explicit shape vector. Convolutional
 * activations use the (N, C, H, W) convention; fully connected
 * activations use (N, F).
 */

#ifndef MERCURY_TENSOR_TENSOR_HPP
#define MERCURY_TENSOR_TENSOR_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace mercury {

class Rng;

/** Dense row-major float tensor. */
class Tensor
{
  public:
    /** Empty tensor (rank 0, no elements). */
    Tensor() = default;

    /** Construct zero-filled with the given shape. */
    explicit Tensor(std::vector<int64_t> shape);

    /** Construct from shape and flat data; sizes must agree. */
    Tensor(std::vector<int64_t> shape, std::vector<float> data);

    /** Total number of elements. */
    int64_t numel() const { return static_cast<int64_t>(data_.size()); }

    /** Tensor rank (number of dimensions). */
    int rank() const { return static_cast<int>(shape_.size()); }

    /** Size of dimension i (supports negative indices from the end). */
    int64_t dim(int i) const;

    const std::vector<int64_t> &shape() const { return shape_; }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    float &operator[](int64_t i) { return data_[i]; }
    float operator[](int64_t i) const { return data_[i]; }

    /** Element access for rank-2 tensors. */
    float &at2(int64_t i, int64_t j);
    float at2(int64_t i, int64_t j) const;

    /** Element access for rank-4 (N, C, H, W) tensors. */
    float &at4(int64_t n, int64_t c, int64_t h, int64_t w);
    float at4(int64_t n, int64_t c, int64_t h, int64_t w) const;

    /** Set every element to the given value. */
    void fill(float v);

    /** Fill with i.i.d. normal(mean, stddev) samples. */
    void fillNormal(Rng &rng, float mean = 0.0f, float stddev = 1.0f);

    /** Reshape in place; the element count must be preserved. */
    void reshape(std::vector<int64_t> shape);

    /** True when both shape and every element match exactly. */
    bool operator==(const Tensor &other) const;

    /** Max absolute elementwise difference; shapes must match. */
    float maxAbsDiff(const Tensor &other) const;

    /** Human-readable shape, e.g. "(2, 3, 8, 8)". */
    std::string shapeStr() const;

    /** Flat offset of a rank-4 index. */
    int64_t offset4(int64_t n, int64_t c, int64_t h, int64_t w) const;

  private:
    std::vector<int64_t> shape_;
    std::vector<float> data_;

    static int64_t shapeNumel(const std::vector<int64_t> &shape);
};

} // namespace mercury

#endif // MERCURY_TENSOR_TENSOR_HPP
