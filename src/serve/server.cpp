#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/runtime_planner.hpp"
#include "util/logging.hpp"

namespace mercury {

namespace {

ReuseStats
statsDelta(const ReuseStats &now, const ReuseStats &before)
{
    ReuseStats d;
    d.mix.vectors = now.mix.vectors - before.mix.vectors;
    d.mix.hit = now.mix.hit - before.mix.hit;
    d.mix.mau = now.mix.mau - before.mix.mau;
    d.mix.mnu = now.mix.mnu - before.mix.mnu;
    d.macsTotal = now.macsTotal - before.macsTotal;
    d.macsSkipped = now.macsSkipped - before.macsSkipped;
    d.channelPasses = now.channelPasses - before.channelPasses;
    return d;
}

} // namespace

// ---- Session ---------------------------------------------------------

struct SessionHandle::Session
{
    int tenant;
    MercuryServer *server;
    std::unique_ptr<Network> model;
    MercuryContext ctx;
    std::unique_ptr<SerialExecutor> chain;
    std::atomic<int> queued{0};
    std::atomic<int64_t> lastJobUs{1000}; ///< retry-after seed: 1 ms

    Session(int tenant_id, MercuryServer *srv, const ServeConfig &cfg)
        : tenant(tenant_id), server(srv),
          ctx(cfg.signatureBits, cfg.sets, cfg.ways, cfg.dataVersions,
              cfg.seed)
    {
    }
};

// ---- JobTicket -------------------------------------------------------

const JobResult &
JobTicket::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return ready_; });
    return result_;
}

bool
JobTicket::ready() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ready_;
}

// ---- SessionHandle ---------------------------------------------------

int
SessionHandle::tenant() const
{
    if (!session_)
        panic("tenant() on an invalid session handle");
    return session_->tenant;
}

SubmitStatus
SessionHandle::submit(JobRequest req)
{
    if (!session_)
        panic("submit() on an invalid session handle");
    Session &s = *session_;
    const int queued = s.queued.load(std::memory_order_relaxed);
    if (queued >= server_->cfg_.maxQueuedPerSession) {
        server_->jobsRejected_.fetch_add(1, std::memory_order_relaxed);
        const double job_ms = std::max(
            0.1, static_cast<double>(s.lastJobUs.load(
                     std::memory_order_relaxed)) /
                     1000.0);
        return {false, job_ms * queued, nullptr};
    }
    s.queued.fetch_add(1, std::memory_order_relaxed);

    auto ticket = std::make_shared<JobTicket>();
    auto request = std::make_shared<JobRequest>(std::move(req));
    MercuryServer *server = server_;
    std::shared_ptr<Session> session = session_;
    s.chain->run([server, session, request, ticket] {
        const auto t0 = std::chrono::steady_clock::now();
        JobResult result;
        server->runJob(*session, *request, result);
        const auto t1 = std::chrono::steady_clock::now();
        session->lastJobUs.store(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 -
                                                                  t0)
                .count(),
            std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(ticket->mutex_);
            ticket->result_ = std::move(result);
            ticket->ready_ = true;
        }
        ticket->done_.notify_all();
        session->queued.fetch_sub(1, std::memory_order_relaxed);
    });
    return {true, 0.0, ticket};
}

void
SessionHandle::drain()
{
    if (!session_)
        panic("drain() on an invalid session handle");
    session_->chain->wait();
}

void
SessionHandle::disconnect()
{
    if (!session_)
        panic("disconnect() on an invalid session handle");
    drain();
    server_->releaseSession(session_->tenant);
    session_.reset();
    server_ = nullptr;
}

// ---- MercuryServer ---------------------------------------------------

MercuryServer::MercuryServer(const ServeConfig &cfg)
    : cfg_(cfg), pipe_(cfg.pipeline)
{
    if (cfg_.maxSessions <= 0 || cfg_.maxQueuedPerSession <= 0)
        fatal("MercuryServer needs positive session/queue limits, "
              "got ",
              cfg_.maxSessions, "/", cfg_.maxQueuedPerSession);
    if (!cfg_.modelFactory)
        fatal("MercuryServer needs a model factory");
    // Persistence is the server's reason to exist: every leased
    // context keeps its MCACHE tags across requests.
    pipe_.persistent = true;
    const int threads = ThreadPool::resolveThreads(cfg_.sessionThreads);
    pool_ = std::make_unique<ThreadPool>(std::max(1, threads));

    // Timing backends of the per-job modeled-cycle stats, mirroring
    // the serving configuration (ServeConfig::sim picks the backend).
    AcceleratorConfig acfg;
    acfg.sim = cfg_.sim;
    acfg.mcacheSets = cfg_.sets;
    acfg.mcacheWays = cfg_.ways;
    acfg.mcacheDataVersions = cfg_.dataVersions;
    acfg.initialSignatureBits = cfg_.signatureBits;
    acfg.pipelineBlockRows = pipe_.blockRows;
    acfg.pipelineShards = pipe_.shards;
    acfg.pipelineThreads = pipe_.threads;
    acfg.overlapDetection = pipe_.overlap;
    acfg.persistentCache = true;
    acfg.planExecution = cfg_.planExecution;
    costFwd_ = sim::CostModel::create(acfg);
    acfg.backwardReuse = true;
    acfg.weightGradReuse = true;
    costTrain_ = sim::CostModel::create(acfg);
}

MercuryServer::~MercuryServer()
{
    std::vector<std::shared_ptr<SessionHandle::Session>> live;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        for (auto &kv : sessions_)
            live.push_back(kv.second);
    }
    for (auto &s : live)
        s->chain->wait();
}

SessionHandle
MercuryServer::connect(int tenant)
{
    if (tenant < 0 || tenant >= cfg_.maxTenants)
        panic("tenant id ", tenant, " out of range 0..",
              cfg_.maxTenants - 1);
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    if (sessions_.count(tenant) ||
        static_cast<int>(sessions_.size()) >= cfg_.maxSessions)
        return SessionHandle{};

    auto session = std::make_shared<SessionHandle::Session>(
        tenant, this, cfg_);
    session->model = cfg_.modelFactory(tenant);
    if (!session->model)
        panic("model factory returned no model for tenant ", tenant);
    session->ctx.setPipeline(pipe_);
    session->ctx.setTenant(tenant);
    const int cache_tenant =
        cfg_.cacheMode == CacheMode::PerTenant ? tenant : -1;
    session->ctx.setLayerCacheProvider(
        [this, cache_tenant](uint64_t layer_id) -> ShardedMCache & {
            return cacheSlot(cache_tenant, layer_id);
        });
    if (cfg_.planExecution) {
        // One shared plan store: same-shape jobs of any tenant reuse
        // one compilation (execution slots stay per-session).
        session->ctx.setSharedPlanCache(&planCache_);
        session->ctx.setPlanExecution(true);
    }
    session->chain = std::make_unique<SerialExecutor>(pool_.get());
    sessions_[tenant] = session;

    SessionHandle handle;
    handle.session_ = std::move(session);
    handle.server_ = this;
    return handle;
}

void
MercuryServer::releaseSession(int tenant)
{
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    sessions_.erase(tenant);
}

ShardedMCache &
MercuryServer::cacheSlot(int tenant, uint64_t layer_id)
{
    std::lock_guard<std::mutex> lock(cachesMutex_);
    LayerCaches &slot =
        tenant >= 0 ? tenantCaches_[tenant] : sharedCaches_;
    auto it = slot.find(layer_id);
    if (it == slot.end()) {
        auto cache = std::make_unique<ShardedMCache>(
            cfg_.sets, cfg_.ways, cfg_.dataVersions,
            pipe_.resolvedShards());
        if (tenant < 0 && cfg_.cacheMode == CacheMode::SharedQuota)
            cache->setTenantQuota(cfg_.tenantQuotaEntries,
                                  cfg_.maxTenants);
        cache->setEpoch(tenant >= 0 ? tenantEpochs_[tenant]
                                    : sharedEpoch_);
        cache->setInsertTenant(tenant >= 0 ? tenant
                                           : currentSharedTenant_);
        it = slot.emplace(layer_id, std::move(cache)).first;
    }
    return *it->second;
}

void
MercuryServer::runJob(SessionHandle::Session &s, JobRequest &req,
                      JobResult &out)
{
    // Shared modes: whole cache-touching jobs are serialized across
    // sessions (the pass-guard discipline): eviction, epoch stamping,
    // and every detection pass of a job see a cache no other session
    // is mutating. PerTenant sessions touch disjoint caches and run
    // fully concurrently.
    const bool shared = cfg_.cacheMode != CacheMode::PerTenant;
    std::unique_lock<std::mutex> guard;
    if (shared) {
        guard = std::unique_lock<std::mutex>(sharedJobMutex_);
        std::lock_guard<std::mutex> lock(cachesMutex_);
        currentSharedTenant_ = s.tenant;
        for (auto &kv : sharedCaches_)
            kv.second->setInsertTenant(s.tenant);
    }

    const ReuseStats f0 = s.ctx.totals();
    const ReuseStats b0 = s.ctx.backwardTotals();
    const ReuseStats w0 = s.ctx.weightGradTotals();
    const int64_t pl0 = s.ctx.planLookups();
    const int64_t ph0 = s.ctx.planHits();
    if (req.kind == JobRequest::Kind::Train)
        out.loss = s.model->trainBatch(req.rows, req.labels, req.lr,
                                       &s.ctx);
    else
        out.output = s.model->forward(req.rows, &s.ctx);
    out.forward = statsDelta(s.ctx.totals(), f0);
    out.backward = statsDelta(s.ctx.backwardTotals(), b0);
    out.weightGrad = statsDelta(s.ctx.weightGradTotals(), w0);
    out.planLookups = s.ctx.planLookups() - pl0;
    out.planHits = s.ctx.planHits() - ph0;

    // Modeled accelerator cycles of this job's step under the
    // configured sim::CostModel backend, from the measured forward
    // mix — the stack is the same descriptor chain planStep compiles.
    {
        const sim::CostModel &model = req.kind == JobRequest::Kind::Train
                                          ? *costTrain_
                                          : *costFwd_;
        const std::vector<LayerShape> stack =
            shapesFromStepDesc(s.model->describeStep(req.rows));
        const HitMix &m = out.forward.mix;
        const double hit_frac =
            m.vectors > 0
                ? static_cast<double>(m.hit) /
                      static_cast<double>(m.vectors)
                : 0.0;
        const double mnu_frac =
            m.vectors > 0
                ? static_cast<double>(m.mnu) /
                      static_cast<double>(m.vectors)
                : 0.0;
        std::vector<HitMix> mixes(stack.size());
        bool any_reusable = false;
        for (size_t i = 0; i < stack.size(); ++i) {
            if (!stack[i].reusable())
                continue;
            mixes[i] = HitMix::fromFractions(
                stack[i].vectorsPerChannel(), hit_frac, mnu_frac);
            any_reusable = true;
        }
        if (any_reusable) {
            const sim::CostBreakdown cost = model.stepCost(
                stack, mixes, req.rows.dim(0), cfg_.signatureBits);
            out.modeledBaselineCycles = cost.cycles.baseline;
            out.modeledMercuryCycles = cost.cycles.mercuryTotal();
        }
    }

    // Aging: job-count-driven (never wall-clock), so a serial replay
    // of the same streams reproduces every eviction decision.
    {
        std::lock_guard<std::mutex> lock(cachesMutex_);
        int64_t &jobs = shared ? sharedJobs_ : tenantJobs_[s.tenant];
        uint64_t &epoch =
            shared ? sharedEpoch_ : tenantEpochs_[s.tenant];
        ++jobs;
        if (cfg_.epochEveryJobs > 0 &&
            jobs % cfg_.epochEveryJobs == 0) {
            ++epoch;
            LayerCaches &slot =
                shared ? sharedCaches_ : tenantCaches_[s.tenant];
            for (auto &kv : slot) {
                kv.second->setEpoch(epoch);
                if (cfg_.evictionWindow > 0 &&
                    epoch > cfg_.evictionWindow)
                    kv.second->evictOlderThan(epoch -
                                              cfg_.evictionWindow);
            }
        }
        out.epochAfter = epoch;
    }
    jobsCompleted_.fetch_add(1, std::memory_order_relaxed);
}

ServerStats
MercuryServer::stats() const
{
    ServerStats st;
    st.jobsCompleted = jobsCompleted_.load(std::memory_order_relaxed);
    st.jobsRejected = jobsRejected_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    st.activeSessions = static_cast<int>(sessions_.size());
    return st;
}

uint64_t
MercuryServer::tenantEpoch(int tenant) const
{
    std::lock_guard<std::mutex> lock(cachesMutex_);
    if (cfg_.cacheMode != CacheMode::PerTenant)
        return sharedEpoch_;
    const auto it = tenantEpochs_.find(tenant);
    return it == tenantEpochs_.end() ? 0 : it->second;
}

uint64_t
MercuryServer::sectionKey(int tenant, uint64_t layer_id)
{
    if (layer_id > 0xFFFFFFFFull)
        panic("layer id ", layer_id, " too large for a snapshot key");
    return (static_cast<uint64_t>(static_cast<uint32_t>(tenant + 1))
            << 32) |
           layer_id;
}

void
MercuryServer::saveSnapshot(Snapshot &snap) const
{
    std::lock_guard<std::mutex> lock(cachesMutex_);
    for (const auto &tc : tenantCaches_)
        for (const auto &kv : tc.second)
            snap.addCache(sectionKey(tc.first, kv.first), *kv.second);
    for (const auto &kv : sharedCaches_)
        snap.addCache(sectionKey(-1, kv.first), *kv.second);
}

bool
MercuryServer::loadSnapshot(const Snapshot &snap, std::string &error)
{
    std::lock_guard<std::mutex> lock(cachesMutex_);
    for (const auto &sec : snap.caches()) {
        const int tenant =
            static_cast<int>(sec.key >> 32) - 1; // -1 = shared
        const uint64_t layer_id = sec.key & 0xFFFFFFFFull;
        LayerCaches &slot =
            tenant >= 0 ? tenantCaches_[tenant] : sharedCaches_;
        auto it = slot.find(layer_id);
        if (it == slot.end()) {
            auto cache = std::make_unique<ShardedMCache>(
                cfg_.sets, cfg_.ways, cfg_.dataVersions,
                pipe_.resolvedShards());
            if (tenant < 0 &&
                cfg_.cacheMode == CacheMode::SharedQuota)
                cache->setTenantQuota(cfg_.tenantQuotaEntries,
                                      cfg_.maxTenants);
            it = slot.emplace(layer_id, std::move(cache)).first;
        }
        if (!snap.restoreCache(sec.key, *it->second, error))
            return false;
        // Resume the aging clock past the newest restored line so new
        // inserts never stamp an epoch older than restored state.
        uint64_t newest = 0;
        for (const auto &line : sec.lines)
            newest = std::max(newest, line.epoch);
        uint64_t &epoch =
            tenant >= 0 ? tenantEpochs_[tenant] : sharedEpoch_;
        epoch = std::max(epoch, newest);
        int64_t &jobs =
            tenant >= 0 ? tenantJobs_[tenant] : sharedJobs_;
        jobs = std::max(
            jobs, static_cast<int64_t>(epoch) *
                      std::max<int64_t>(1, cfg_.epochEveryJobs));
        it->second->setEpoch(epoch);
    }
    return true;
}

} // namespace mercury
