/**
 * @file
 * Warm-start / shutdown snapshots of the serving layer's persistent
 * MCACHE state (and optionally captured SignatureRecords).
 *
 * A snapshot holds any number of keyed cache sections (key = the
 * server's (tenant, layer) encoding, or a layer id for standalone
 * contexts) plus keyed record sections. Only the tag plane and its
 * lifecycle metadata (epoch, tenant) are serialized — data versions
 * are pass-local in every current engine (PassDataPlane / per-pass
 * owner bookkeeping), so a restored cache warm-starts the *detection*
 * outcomes, which is all that persists across requests anyway.
 *
 * Wire format, versioned and checksummed:
 *
 *   header:  8-byte magic "MCRYSNAP", u32 version, u32 flags,
 *            u64 payload byte count, u64 FNV-1a-64 payload checksum
 *   payload: u32 cacheCount, then per cache
 *              u64 key, u32 sets, u32 ways, u32 dataVersions,
 *              u64 lineCount, then per valid line in ascending global
 *              entry-id order:
 *                u64 entryId, u32 bits, packed signature words
 *                (wordsFor(bits) u64s), u64 epoch, i32 tenant
 *            u32 recordCount, then per record
 *              u64 key, u32 dataVersions, u64 entries, u32 passCount,
 *              then per pass: u64 rows, u32 bits, u32 sigWordsPerRow,
 *              sigWords/entryIds/outcomes arrays (u64-count-prefixed),
 *              HitMix as 4 i64s
 *
 * Because lines are addressed by *global* entry id, a snapshot taken
 * from an N-shard cache restores bit-identically into an M-shard
 * cache of the same sets x ways geometry — shard count is a
 * throughput knob, not part of the persistent state. Serialization is
 * canonical (ascending ids, no padding), so serialize -> restore ->
 * serialize is byte-identical.
 *
 * Failure contract: parse() fully validates (magic, version, bounds,
 * checksum, array sanity) into a temporary and only then moves the
 * result out — a truncated, corrupted, or version-bumped snapshot is
 * rejected with a descriptive error and the output is untouched.
 * restoreCache() likewise validates geometry before clearing the
 * target, so a failed restore never leaves a half-restored cache.
 */

#ifndef MERCURY_SERVE_SNAPSHOT_HPP
#define MERCURY_SERVE_SNAPSHOT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/sharded_mcache.hpp"
#include "pipeline/signature_record.hpp"

namespace mercury {

/** Snapshot format version; bump on any wire-format change. */
constexpr uint32_t kSnapshotVersion = 1;

/** In-memory form of a serialized serving-state snapshot. */
class Snapshot
{
  public:
    /** One valid MCACHE line: tag + lifecycle metadata. */
    struct CacheLine
    {
        int64_t entryId = -1;
        Signature sig;
        uint64_t epoch = 0;
        int tenant = -1;
    };

    /** The tag plane of one cache, keyed by the owner's id scheme. */
    struct CacheSection
    {
        uint64_t key = 0;
        int sets = 0;
        int ways = 0;
        int dataVersions = 0;
        std::vector<CacheLine> lines; ///< ascending entryId
    };

    /** One captured SignatureRecord. */
    struct RecordSection
    {
        uint64_t key = 0;
        int dataVersions = 0;
        int64_t entries = 0;
        std::vector<SignatureRecord::Pass> passes;
    };

    /** Capture a cache's valid tags into a new keyed section.
     *  Quiescent only. Panics on a duplicate key. */
    void addCache(uint64_t key, const ShardedMCache &cache);

    /** Capture a record into a new keyed section. */
    void addRecord(uint64_t key, const SignatureRecord &record);

    /** Section lookup; nullptr when the key is absent. */
    const CacheSection *findCache(uint64_t key) const;
    const RecordSection *findRecord(uint64_t key) const;

    const std::vector<CacheSection> &caches() const { return caches_; }
    const std::vector<RecordSection> &records() const
    {
        return records_;
    }

    /**
     * Restore a keyed section into `cache`: validates the key exists
     * and the geometry (sets x ways) matches, then clears the target,
     * installs every line, and recounts tenant-quota reservations.
     * Shard counts may differ (global entry ids). Returns false with
     * `error` set — and the target untouched — when the key is
     * missing or the geometry differs.
     */
    bool restoreCache(uint64_t key, ShardedMCache &cache,
                      std::string &error) const;

    /** Restore a keyed record section; false + error if absent. */
    bool restoreRecord(uint64_t key, SignatureRecord &record,
                       std::string &error) const;

    /** Canonical serialized form (header + checksummed payload). */
    std::vector<uint8_t> serialize() const;

    /**
     * Parse a serialized snapshot. On success replaces `out` and
     * returns true; on any validation failure returns false with a
     * descriptive `error` and `out` untouched (no partial parse).
     */
    static bool parse(const uint8_t *data, size_t size, Snapshot &out,
                      std::string &error);

    /** serialize() to a file; false + error on I/O failure. */
    bool writeFile(const std::string &path, std::string &error) const;

    /** Read + parse a snapshot file; false + error on failure. */
    static bool readFile(const std::string &path, Snapshot &out,
                         std::string &error);

  private:
    std::vector<CacheSection> caches_;
    std::vector<RecordSection> records_;
};

} // namespace mercury

#endif // MERCURY_SERVE_SNAPSHOT_HPP
