/**
 * @file
 * MercuryServer: a long-running, multi-tenant training/inference
 * front-end over the reuse stack (ROADMAP "MercuryServer").
 *
 * Every prior entry point is a one-shot main(): MCACHE starts cold,
 * so the paper's cross-input similarity is rediscovered from scratch
 * each run. The server keeps MCACHE *persistent across requests,
 * batches, and tenants* — each session's detection passes run with
 * PipelineConfig::persistent, so rows similar to earlier requests HIT
 * instead of re-inserting — and gives the cache a real lifecycle:
 * epoch-tag aging with window eviction, per-tenant quota or shared
 * dedup, and warm-start/shutdown snapshots (serve/snapshot.hpp).
 *
 * Request lifecycle (the in-process client API):
 *
 *   MercuryServer server(cfg);
 *   SessionHandle s = server.connect(tenant);   // leases a context
 *   SubmitStatus st = s.submit(job);            // bounded queue
 *   if (!st.accepted) retry after st.retryAfterMs;
 *   const JobResult &r = st.ticket->wait();     // blocks the client
 *   s.disconnect();                             // drains, frees slot
 *
 * Scheduling: thread-per-session over one shared util/ThreadPool —
 * each session is a SerialExecutor chain, so a session's jobs run in
 * submission order (the property the per-tenant stats/outputs
 * equivalence rests on) while different sessions' jobs interleave on
 * the pool workers. Backpressure: each session's queue is bounded at
 * ServeConfig::maxQueuedPerSession; submit() on a full queue rejects
 * with a retry-after hint derived from the session's recent job time
 * instead of blocking the client.
 *
 * Cache modes (ServeConfig::cacheMode):
 *  - PerTenant: every tenant owns private per-layer caches (server-
 *    held, surviving disconnect/reconnect). Tenants never share cache
 *    state, so a tenant's served results are bit-identical to running
 *    its jobs serially on a private persistent MercuryContext.
 *  - SharedDedup: all tenants share one set of per-layer caches —
 *    cross-tenant near-duplicates dedup against each other. Jobs that
 *    touch the shared caches are serialized on a pass guard; a
 *    tenant's hits become a superset of its private-cache hits (same
 *    probes, strictly more tags present) when the cache is large
 *    enough not to MNU.
 *  - SharedQuota: SharedDedup plus a per-tenant line quota
 *    (ShardedMCache::setTenantQuota): one tenant cannot evict-starve
 *    the others by filling the cache; its inserts MNU once it holds
 *    quota lines until aging frees them.
 *
 * Aging: a tenant-scoped (PerTenant) or global (Shared*) epoch
 * advances every ServeConfig::epochEveryJobs completed jobs; with
 * evictionWindow = W > 0, lines last touched more than W epochs ago
 * are evicted after each advance. The schedule depends only on
 * completed-job counts — never on wall clock or interleaving — so a
 * serial replay of the same per-tenant streams reproduces eviction
 * decisions exactly (the golden-equivalence property).
 */

#ifndef MERCURY_SERVE_SERVER_HPP
#define MERCURY_SERVE_SERVER_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/mercury_hooks.hpp"
#include "nn/network.hpp"
#include "serve/snapshot.hpp"
#include "sim/cost_model.hpp"
#include "sim/sim_config.hpp"
#include "util/executors.hpp"
#include "util/thread_pool.hpp"

namespace mercury {

/** Cache-sharing policy across tenants (see file header). */
enum class CacheMode
{
    PerTenant,   ///< private per-tenant caches; bit-identical serving
    SharedDedup, ///< one cache for all tenants; cross-tenant dedup
    SharedQuota, ///< SharedDedup + per-tenant line quota
};

/** Server configuration. */
struct ServeConfig
{
    /** Worker threads of the session pool (0 = auto). */
    int sessionThreads = 0;

    /** Session slots == leased contexts; connect() rejects beyond. */
    int maxSessions = 8;

    /** Bounded per-session queue; submit() rejects when full. */
    int maxQueuedPerSession = 4;

    CacheMode cacheMode = CacheMode::PerTenant;

    /** MCACHE organization and signature length of every context. */
    int signatureBits = 16;
    int sets = 64;
    int ways = 16;
    int dataVersions = 4;
    uint64_t seed = 0xC0FFEE;

    /** Per-tenant line quota of SharedQuota mode. */
    int64_t tenantQuotaEntries = 256;
    int maxTenants = 64;

    /**
     * Aging: advance the epoch every this many completed jobs
     * (tenant-scoped in PerTenant mode, global in the shared modes;
     * <= 0 freezes the epoch), and evict lines older than
     * `evictionWindow` epochs after each advance (0 = never evict).
     */
    int64_t epochEveryJobs = 1;
    uint64_t evictionWindow = 0;

    /**
     * Detection knobs of every leased context. `persistent` is forced
     * on — that is the point of the server; construct contexts
     * directly for one-shot cold runs.
     */
    PipelineConfig pipeline;

    /**
     * Planned execution (core/runtime_planner.hpp) for every leased
     * context. Plans are immutable and keyed on shapes + config, so
     * the server shares one PlanCache across sessions: same-shape
     * jobs of different tenants reuse one compilation (per-session
     * execution slots stay private). Results are bit-identical with
     * the knob on or off.
     */
    bool planExecution = false;

    /**
     * Timing backend of the per-job modeled-cycle stats
     * (JobResult::modeledBaselineCycles / modeledMercuryCycles):
     * sim.backend / MERCURY_SIM_BACKEND picks analytic or event, the
     * same sim::CostModel selection every bench uses.
     */
    SimConfig sim;

    /**
     * Builds each session's model when a tenant connects. Must be
     * deterministic in the tenant id for the equivalence guarantees
     * to mean anything. Required.
     */
    std::function<std::unique_ptr<Network>(int tenant)> modelFactory;
};

/** One training or inference job. */
struct JobRequest
{
    enum class Kind
    {
        Inference, ///< forward only; JobResult::output
        Train,     ///< one SGD step; JobResult::loss
    };

    Kind kind = Kind::Inference;
    Tensor rows;             ///< input batch
    std::vector<int> labels; ///< Train only
    float lr = 0.01f;        ///< Train only
};

/** Completed-job payload. */
struct JobResult
{
    Tensor output;          ///< Inference output
    float loss = 0.0f;      ///< Train loss
    ReuseStats forward;     ///< this job's forward reuse delta
    ReuseStats backward;    ///< this job's backward-replay delta
    ReuseStats weightGrad;  ///< this job's dW-replay delta
    uint64_t epochAfter = 0; ///< the job's scope epoch on completion
    /** Plan binds this job performed / satisfied without a compile
     *  (ServeConfig::planExecution; both zero with the knob off). */
    int64_t planLookups = 0;
    int64_t planHits = 0;
    /** Modeled accelerator cycles of this job's step under the
     *  configured sim::CostModel backend (ServeConfig::sim), from the
     *  job's measured forward hit mix. Inference jobs model the
     *  forward sweep; Train jobs add the reuse-enabled gradient
     *  passes. Zero when the job's stack has no reusable layer. */
    uint64_t modeledBaselineCycles = 0;
    uint64_t modeledMercuryCycles = 0;
};

/** Completion handle of one accepted job. */
class JobTicket
{
  public:
    /** Block (client thread only) until the job completed. */
    const JobResult &wait();

    /** Non-blocking completion poll. */
    bool ready() const;

  private:
    friend class MercuryServer;
    friend class SessionHandle;
    mutable std::mutex mutex_;
    std::condition_variable done_;
    bool ready_ = false;
    JobResult result_;
};

/** submit() outcome: accepted with a ticket, or rejected-with-hint. */
struct SubmitStatus
{
    bool accepted = false;
    /** Rejections only: suggested client backoff, from the session's
     *  recent per-job latency times its queue depth. */
    double retryAfterMs = 0.0;
    std::shared_ptr<JobTicket> ticket; ///< null when rejected
};

class MercuryServer;

/**
 * Client-side session handle. Copyable (all copies address the same
 * session); must not outlive the server. An invalid handle (connect
 * rejected) has valid() == false and panics on use.
 */
class SessionHandle
{
  public:
    SessionHandle() = default;

    bool valid() const { return session_ != nullptr; }
    int tenant() const;

    /** Enqueue one job; never blocks (bounded queue, see header). */
    SubmitStatus submit(JobRequest req);

    /** Block until every accepted job of this session completed. */
    void drain();

    /** Drain and release the session slot; the handle goes invalid.
     *  Tenant cache state stays on the server (reconnect is warm). */
    void disconnect();

  private:
    friend class MercuryServer;
    struct Session;
    std::shared_ptr<Session> session_;
    MercuryServer *server_ = nullptr;
};

/** Aggregate serving counters. */
struct ServerStats
{
    int64_t jobsCompleted = 0;
    int64_t jobsRejected = 0;
    int activeSessions = 0;
};

/** The multi-tenant serving front-end (see file header). */
class MercuryServer
{
  public:
    explicit MercuryServer(const ServeConfig &cfg);

    /** Joins all sessions' outstanding work. */
    ~MercuryServer();

    MercuryServer(const MercuryServer &) = delete;
    MercuryServer &operator=(const MercuryServer &) = delete;

    const ServeConfig &config() const { return cfg_; }

    /**
     * Open a session for `tenant` (ids in [0, maxTenants)). Returns
     * an invalid handle when the tenant already has a session or all
     * session slots are taken. In PerTenant mode a reconnecting
     * tenant finds its caches warm.
     */
    SessionHandle connect(int tenant);

    ServerStats stats() const;

    /** Scope epoch a tenant's jobs currently stamp (tests/metrics). */
    uint64_t tenantEpoch(int tenant) const;

    /**
     * Snapshot every persistent cache the server holds (shutdown /
     * warm-start). Quiescent only: no sessions may have jobs in
     * flight.
     */
    void saveSnapshot(Snapshot &snap) const;

    /**
     * Warm-start from a snapshot taken by a server with the same
     * organization and cache mode. Restores every section whose key
     * decodes to this server's scheme; false + error on the first
     * failed section (earlier sections stay restored — call before
     * serving). Call before any connect().
     */
    bool loadSnapshot(const Snapshot &snap, std::string &error);

  private:
    friend class SessionHandle;

    using LayerCaches =
        std::map<uint64_t, std::unique_ptr<ShardedMCache>>;

    ServeConfig cfg_;
    PipelineConfig pipe_; ///< cfg_.pipeline with persistent forced on
    std::unique_ptr<ThreadPool> pool_;

    /// Cache state outlives sessions (declared before sessions_ so it
    /// is destroyed after them) and survives disconnects.
    mutable std::mutex cachesMutex_;
    std::map<int, LayerCaches> tenantCaches_; ///< PerTenant mode
    LayerCaches sharedCaches_;                ///< Shared* modes
    std::map<int, int64_t> tenantJobs_;       ///< completed, PerTenant
    std::map<int, uint64_t> tenantEpochs_;    ///< PerTenant epochs
    int64_t sharedJobs_ = 0;                  ///< completed, Shared*
    uint64_t sharedEpoch_ = 0;
    /// Tenant whose shared-mode job currently runs: shared caches
    /// created lazily mid-job stamp their inserts with it.
    int currentSharedTenant_ = -1;

    /// Serializes cache-touching jobs across sessions in the shared
    /// modes (the pass-guard discipline, see docs/ARCHITECTURE.md).
    std::mutex sharedJobMutex_;

    /// Compiled step plans shared across sessions (thread-safe;
    /// declared before sessions_ so it outlives their contexts).
    PlanCache planCache_;

    /// Timing backends of the modeled-cycle job stats (stateless
    /// stepCost — safe to share across concurrent PerTenant jobs).
    /// costTrain_ adds the reuse-enabled gradient passes.
    std::unique_ptr<sim::CostModel> costFwd_;
    std::unique_ptr<sim::CostModel> costTrain_;

    mutable std::mutex sessionsMutex_;
    std::map<int, std::shared_ptr<SessionHandle::Session>> sessions_;

    std::atomic<int64_t> jobsCompleted_{0};
    std::atomic<int64_t> jobsRejected_{0};

    ShardedMCache &cacheSlot(int tenant, uint64_t layer_id);
    void runJob(SessionHandle::Session &s, JobRequest &req,
                JobResult &out);
    void finishJob(SessionHandle::Session &s);
    void releaseSession(int tenant);
    static uint64_t sectionKey(int tenant, uint64_t layer_id);
};

} // namespace mercury

#endif // MERCURY_SERVE_SERVER_HPP
