#include "serve/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <utility>

#include "util/logging.hpp"

namespace mercury {

namespace {

constexpr char kMagic[8] = {'M', 'C', 'R', 'Y', 'S', 'N', 'A', 'P'};

uint64_t
fnv1a64(const uint8_t *data, size_t size)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

/** Append-only byte writer for the canonical payload encoding. */
struct Writer
{
    std::vector<uint8_t> bytes;

    void raw(const void *p, size_t n)
    {
        const uint8_t *b = static_cast<const uint8_t *>(p);
        bytes.insert(bytes.end(), b, b + n);
    }
    void u32(uint32_t v) { raw(&v, sizeof v); }
    void u64(uint64_t v) { raw(&v, sizeof v); }
    void i32(int32_t v) { raw(&v, sizeof v); }
    void i64(int64_t v) { raw(&v, sizeof v); }
};

/** Bounds-checked cursor over a parsed payload. */
struct Reader
{
    const uint8_t *data;
    size_t size;
    size_t pos = 0;
    std::string *error;

    bool fail(const std::string &what)
    {
        *error = "snapshot payload truncated or corrupt: " + what;
        return false;
    }
    bool raw(void *p, size_t n, const char *what)
    {
        if (size - pos < n)
            return fail(what);
        std::memcpy(p, data + pos, n);
        pos += n;
        return true;
    }
    bool u32(uint32_t &v, const char *what)
    {
        return raw(&v, sizeof v, what);
    }
    bool u64(uint64_t &v, const char *what)
    {
        return raw(&v, sizeof v, what);
    }
    bool i32(int32_t &v, const char *what)
    {
        return raw(&v, sizeof v, what);
    }
    bool i64(int64_t &v, const char *what)
    {
        return raw(&v, sizeof v, what);
    }
};

} // namespace

void
Snapshot::addCache(uint64_t key, const ShardedMCache &cache)
{
    if (findCache(key))
        panic("snapshot already holds a cache section with key ", key);
    CacheSection sec;
    sec.key = key;
    sec.sets = cache.sets();
    sec.ways = cache.ways();
    sec.dataVersions = cache.dataVersions();
    for (int64_t e = 0; e < cache.entries(); ++e) {
        if (!cache.tagValid(e))
            continue;
        CacheLine line;
        line.entryId = e;
        line.sig = cache.tagAt(e);
        line.epoch = cache.entryEpoch(e);
        line.tenant = cache.entryTenant(e);
        sec.lines.push_back(std::move(line));
    }
    caches_.push_back(std::move(sec));
}

void
Snapshot::addRecord(uint64_t key, const SignatureRecord &record)
{
    if (findRecord(key))
        panic("snapshot already holds a record section with key ", key);
    RecordSection sec;
    sec.key = key;
    sec.dataVersions = record.dataVersions();
    sec.entries = record.entries();
    for (int64_t p = 0; p < record.passCount(); ++p)
        sec.passes.push_back(record.pass(p));
    records_.push_back(std::move(sec));
}

const Snapshot::CacheSection *
Snapshot::findCache(uint64_t key) const
{
    for (const auto &sec : caches_)
        if (sec.key == key)
            return &sec;
    return nullptr;
}

const Snapshot::RecordSection *
Snapshot::findRecord(uint64_t key) const
{
    for (const auto &sec : records_)
        if (sec.key == key)
            return &sec;
    return nullptr;
}

bool
Snapshot::restoreCache(uint64_t key, ShardedMCache &cache,
                       std::string &error) const
{
    const CacheSection *sec = findCache(key);
    if (!sec) {
        error = "snapshot has no cache section with key " +
                std::to_string(key);
        return false;
    }
    if (sec->sets != cache.sets() || sec->ways != cache.ways()) {
        error = "snapshot cache geometry " + std::to_string(sec->sets) +
                "x" + std::to_string(sec->ways) +
                " does not match target " +
                std::to_string(cache.sets()) + "x" +
                std::to_string(cache.ways());
        return false;
    }
    // Geometry matches and entry ids were validated at parse time, so
    // from here the restore cannot fail half-way.
    cache.clear();
    for (const auto &line : sec->lines)
        cache.restoreLine(line.entryId, line.sig, line.epoch,
                          line.tenant);
    cache.recountTenantReservations();
    return true;
}

bool
Snapshot::restoreRecord(uint64_t key, SignatureRecord &record,
                        std::string &error) const
{
    const RecordSection *sec = findRecord(key);
    if (!sec) {
        error = "snapshot has no record section with key " +
                std::to_string(key);
        return false;
    }
    record.restore(sec->passes, sec->dataVersions, sec->entries);
    return true;
}

std::vector<uint8_t>
Snapshot::serialize() const
{
    Writer payload;
    payload.u32(static_cast<uint32_t>(caches_.size()));
    for (const auto &sec : caches_) {
        payload.u64(sec.key);
        payload.u32(static_cast<uint32_t>(sec.sets));
        payload.u32(static_cast<uint32_t>(sec.ways));
        payload.u32(static_cast<uint32_t>(sec.dataVersions));
        payload.u64(static_cast<uint64_t>(sec.lines.size()));
        for (const auto &line : sec.lines) {
            payload.u64(static_cast<uint64_t>(line.entryId));
            payload.u32(static_cast<uint32_t>(line.sig.bits()));
            for (int w = 0; w < Signature::wordsFor(line.sig.bits());
                 ++w)
                payload.u64(line.sig.packedWord(w));
            payload.u64(line.epoch);
            payload.i32(line.tenant);
        }
    }
    payload.u32(static_cast<uint32_t>(records_.size()));
    for (const auto &sec : records_) {
        payload.u64(sec.key);
        payload.u32(static_cast<uint32_t>(sec.dataVersions));
        payload.u64(static_cast<uint64_t>(sec.entries));
        payload.u32(static_cast<uint32_t>(sec.passes.size()));
        for (const auto &p : sec.passes) {
            payload.u64(static_cast<uint64_t>(p.rows));
            payload.u32(static_cast<uint32_t>(p.bits));
            payload.u32(static_cast<uint32_t>(p.sigWordsPerRow));
            payload.u64(static_cast<uint64_t>(p.sigWords.size()));
            payload.raw(p.sigWords.data(),
                        p.sigWords.size() * sizeof(uint64_t));
            payload.u64(static_cast<uint64_t>(p.entryIds.size()));
            payload.raw(p.entryIds.data(),
                        p.entryIds.size() * sizeof(int32_t));
            payload.u64(static_cast<uint64_t>(p.outcomes.size()));
            payload.raw(p.outcomes.data(), p.outcomes.size());
            payload.i64(p.mix.vectors);
            payload.i64(p.mix.hit);
            payload.i64(p.mix.mau);
            payload.i64(p.mix.mnu);
        }
    }

    Writer out;
    out.raw(kMagic, sizeof kMagic);
    out.u32(kSnapshotVersion);
    out.u32(0); // flags, reserved
    out.u64(static_cast<uint64_t>(payload.bytes.size()));
    out.u64(fnv1a64(payload.bytes.data(), payload.bytes.size()));
    out.raw(payload.bytes.data(), payload.bytes.size());
    return std::move(out.bytes);
}

bool
Snapshot::parse(const uint8_t *data, size_t size, Snapshot &out,
                std::string &error)
{
    constexpr size_t header = sizeof kMagic + 2 * sizeof(uint32_t) +
                              2 * sizeof(uint64_t);
    if (size < header) {
        error = "snapshot shorter than its header (" +
                std::to_string(size) + " bytes)";
        return false;
    }
    if (std::memcmp(data, kMagic, sizeof kMagic) != 0) {
        error = "not a snapshot: bad magic";
        return false;
    }
    uint32_t version = 0;
    uint32_t flags = 0;
    uint64_t payload_bytes = 0;
    uint64_t checksum = 0;
    size_t pos = sizeof kMagic;
    std::memcpy(&version, data + pos, sizeof version);
    pos += sizeof version;
    std::memcpy(&flags, data + pos, sizeof flags);
    pos += sizeof flags;
    std::memcpy(&payload_bytes, data + pos, sizeof payload_bytes);
    pos += sizeof payload_bytes;
    std::memcpy(&checksum, data + pos, sizeof checksum);
    pos += sizeof checksum;
    if (version != kSnapshotVersion) {
        error = "snapshot version " + std::to_string(version) +
                " unsupported (this build reads version " +
                std::to_string(kSnapshotVersion) + ")";
        return false;
    }
    if (payload_bytes != size - header) {
        error = "snapshot payload length " +
                std::to_string(payload_bytes) +
                " does not match the " + std::to_string(size - header) +
                " bytes present (truncated?)";
        return false;
    }
    if (fnv1a64(data + pos, payload_bytes) != checksum) {
        error = "snapshot payload checksum mismatch (corrupted)";
        return false;
    }

    Snapshot parsed;
    Reader r{data + pos, static_cast<size_t>(payload_bytes), 0, &error};

    uint32_t cache_count = 0;
    if (!r.u32(cache_count, "cache count"))
        return false;
    for (uint32_t c = 0; c < cache_count; ++c) {
        CacheSection sec;
        uint32_t sets = 0, ways = 0, versions = 0;
        uint64_t line_count = 0;
        if (!r.u64(sec.key, "cache key") ||
            !r.u32(sets, "cache sets") || !r.u32(ways, "cache ways") ||
            !r.u32(versions, "cache versions") ||
            !r.u64(line_count, "cache line count"))
            return false;
        sec.sets = static_cast<int>(sets);
        sec.ways = static_cast<int>(ways);
        sec.dataVersions = static_cast<int>(versions);
        const int64_t entries =
            static_cast<int64_t>(sets) * static_cast<int64_t>(ways);
        if (sec.sets <= 0 || sec.ways <= 0 || sec.dataVersions <= 0)
            return r.fail("non-positive cache geometry");
        if (line_count > static_cast<uint64_t>(entries))
            return r.fail("more lines than cache entries");
        int64_t prev_id = -1;
        for (uint64_t i = 0; i < line_count; ++i) {
            CacheLine line;
            uint64_t entry_id = 0;
            uint32_t bits = 0;
            if (!r.u64(entry_id, "line entry id") ||
                !r.u32(bits, "line signature bits"))
                return false;
            line.entryId = static_cast<int64_t>(entry_id);
            if (line.entryId <= prev_id || line.entryId >= entries)
                return r.fail("line entry ids out of order or range");
            prev_id = line.entryId;
            if (bits == 0 || bits > (1u << 20))
                return r.fail("implausible signature length");
            const int words = Signature::wordsFor(static_cast<int>(bits));
            std::vector<uint64_t> sig_words(
                static_cast<size_t>(words));
            if (!r.raw(sig_words.data(),
                       sig_words.size() * sizeof(uint64_t),
                       "line signature words"))
                return false;
            line.sig = Signature::fromWords(static_cast<int>(bits),
                                            sig_words.data());
            int32_t tenant = -1;
            if (!r.u64(line.epoch, "line epoch") ||
                !r.i32(tenant, "line tenant"))
                return false;
            line.tenant = tenant;
            sec.lines.push_back(std::move(line));
        }
        parsed.caches_.push_back(std::move(sec));
    }

    uint32_t record_count = 0;
    if (!r.u32(record_count, "record count"))
        return false;
    for (uint32_t rec = 0; rec < record_count; ++rec) {
        RecordSection sec;
        uint32_t versions = 0, pass_count = 0;
        uint64_t entries = 0;
        if (!r.u64(sec.key, "record key") ||
            !r.u32(versions, "record versions") ||
            !r.u64(entries, "record entries") ||
            !r.u32(pass_count, "record pass count"))
            return false;
        sec.dataVersions = static_cast<int>(versions);
        sec.entries = static_cast<int64_t>(entries);
        if (sec.dataVersions <= 0 || sec.entries <= 0)
            return r.fail("non-positive record organization");
        for (uint32_t p = 0; p < pass_count; ++p) {
            SignatureRecord::Pass pass;
            uint64_t rows = 0, n = 0;
            uint32_t bits = 0, words_per_row = 0;
            if (!r.u64(rows, "pass rows") ||
                !r.u32(bits, "pass bits") ||
                !r.u32(words_per_row, "pass words-per-row"))
                return false;
            pass.rows = static_cast<int64_t>(rows);
            pass.bits = static_cast<int>(bits);
            pass.sigWordsPerRow = static_cast<int>(words_per_row);
            if (pass.bits <= 0 ||
                pass.sigWordsPerRow != Signature::wordsFor(pass.bits))
                return r.fail("inconsistent pass signature layout");
            if (!r.u64(n, "pass sig-word count"))
                return false;
            if (n != rows * words_per_row)
                return r.fail("pass sig-word count mismatch");
            pass.sigWords.resize(static_cast<size_t>(n));
            if (!r.raw(pass.sigWords.data(), n * sizeof(uint64_t),
                       "pass sig words"))
                return false;
            if (!r.u64(n, "pass entry-id count"))
                return false;
            if (n != rows)
                return r.fail("pass entry-id count mismatch");
            pass.entryIds.resize(static_cast<size_t>(n));
            if (!r.raw(pass.entryIds.data(), n * sizeof(int32_t),
                       "pass entry ids"))
                return false;
            if (!r.u64(n, "pass outcome count"))
                return false;
            if (n != rows)
                return r.fail("pass outcome count mismatch");
            pass.outcomes.resize(static_cast<size_t>(n));
            if (!r.raw(pass.outcomes.data(), n, "pass outcomes"))
                return false;
            for (uint8_t o : pass.outcomes)
                if (o > static_cast<uint8_t>(McacheOutcome::Mnu))
                    return r.fail("pass outcome out of range");
            if (!r.i64(pass.mix.vectors, "pass mix vectors") ||
                !r.i64(pass.mix.hit, "pass mix hit") ||
                !r.i64(pass.mix.mau, "pass mix mau") ||
                !r.i64(pass.mix.mnu, "pass mix mnu"))
                return false;
            sec.passes.push_back(std::move(pass));
        }
        parsed.records_.push_back(std::move(sec));
    }

    if (r.pos != r.size) {
        error = "snapshot payload has " +
                std::to_string(r.size - r.pos) +
                " trailing bytes past the last section";
        return false;
    }
    out = std::move(parsed);
    return true;
}

bool
Snapshot::writeFile(const std::string &path, std::string &error) const
{
    const std::vector<uint8_t> bytes = serialize();
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
        error = "cannot open " + path + " for writing";
        return false;
    }
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!f) {
        error = "short write to " + path;
        return false;
    }
    return true;
}

bool
Snapshot::readFile(const std::string &path, Snapshot &out,
                   std::string &error)
{
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    if (!f) {
        error = "cannot open " + path;
        return false;
    }
    const std::streamsize size = f.tellg();
    f.seekg(0);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    if (size > 0 &&
        !f.read(reinterpret_cast<char *>(bytes.data()), size)) {
        error = "short read from " + path;
        return false;
    }
    return parse(bytes.data(), bytes.size(), out, error);
}

} // namespace mercury
