#include "nn/layers.hpp"

#include <cmath>

#include "core/fc_engine.hpp"
#include "util/logging.hpp"

namespace mercury {

// ---------------------------------------------------------------------
// Conv2dLayer
// ---------------------------------------------------------------------

Conv2dLayer::Conv2dLayer(int64_t c_in, int64_t c_out, int64_t kernel,
                         int64_t stride, int64_t pad, Rng &rng,
                         uint64_t layer_id, int64_t groups)
    : layerId_(layer_id)
{
    spec_.inChannels = c_in;
    spec_.outChannels = c_out;
    spec_.kernelH = spec_.kernelW = kernel;
    spec_.stride = stride;
    spec_.pad = pad;
    spec_.groups = groups;
    weight_ = Tensor({c_out, c_in / groups, kernel, kernel});
    // He initialization for ReLU stacks.
    const float fan_in =
        static_cast<float>((c_in / groups) * kernel * kernel);
    weight_.fillNormal(rng, 0.0f, std::sqrt(2.0f / fan_in));
    bias_ = Tensor({c_out});
}

Tensor
Conv2dLayer::forward(const Tensor &x, MercuryContext *ctx)
{
    lastInput_ = x;
    recordValid_ = false;
    if (ctx) {
        ConvReuseEngine engine(ctx->frontendFor(layerId_),
                               ctx->signatureBits());
        ReuseStats stats;
        SignatureRecord *capture =
            ctx->capturesRecords() ? &record_ : nullptr;
        Tensor out = engine.forward(x, weight_, bias_, spec_, stats,
                                    capture, ctx->convPlanFor(layerId_));
        ctx->accumulate(stats);
        recordValid_ = capture != nullptr;
        return out;
    }
    return conv2dForward(x, weight_, bias_, spec_);
}

Tensor
Conv2dLayer::backwardImpl(const Tensor &grad, MercuryContext *ctx)
{
    if (ctx && ctx->weightGradReuse() && recordValid_) {
        // Weight-gradient replay (§III-C2 on Eq. 1): sum each forward
        // hit-group's output gradients, then one multiply per group
        // through the owner's patch.
        ConvReuseEngine engine(ctx->frontendFor(layerId_),
                               ctx->signatureBits());
        ReuseStats wstats;
        gradWeight_ =
            engine.backwardWeights(lastInput_, grad, spec_, record_,
                                   wstats, ctx->convPlanFor(layerId_));
        ctx->accumulateWeightGrad(wstats);
    } else {
        gradWeight_ = conv2dBackwardWeight(lastInput_, grad, spec_);
    }
    gradBias_ = conv2dBackwardBias(grad);
    if (ctx && ctx->backwardReuse() && recordValid_) {
        // Replay the forward pass's detection outcomes through the
        // backward filter pass (§III-C2): zero detection cost, and
        // forward-HIT rows skip their grad-column products.
        ConvReuseEngine engine(ctx->frontendFor(layerId_),
                               ctx->signatureBits());
        ReuseStats stats;
        Tensor gin = engine.backwardInput(grad, weight_, spec_,
                                          lastInput_.dim(2),
                                          lastInput_.dim(3), record_,
                                          stats,
                                          ctx->convPlanFor(layerId_));
        ctx->accumulateBackward(stats);
        return gin;
    }
    return conv2dBackwardInput(grad, weight_, spec_, lastInput_.dim(2),
                               lastInput_.dim(3));
}

void
Conv2dLayer::step(float lr)
{
    if (gradWeight_.numel() != weight_.numel())
        panic("conv step before backward");
    for (int64_t i = 0; i < weight_.numel(); ++i)
        weight_[i] -= lr * gradWeight_[i];
    for (int64_t i = 0; i < bias_.numel(); ++i)
        bias_[i] -= lr * gradBias_[i];
}

uint64_t
Conv2dLayer::paramCount() const
{
    return static_cast<uint64_t>(weight_.numel() + bias_.numel());
}

// ---------------------------------------------------------------------
// DenseLayer
// ---------------------------------------------------------------------

DenseLayer::DenseLayer(int64_t in_features, int64_t out_features, Rng &rng,
                       uint64_t layer_id)
    : layerId_(layer_id)
{
    weight_ = Tensor({in_features, out_features});
    weight_.fillNormal(rng, 0.0f,
                       std::sqrt(2.0f / static_cast<float>(in_features)));
    bias_ = Tensor({out_features});
}

Tensor
DenseLayer::forward(const Tensor &x, MercuryContext *ctx)
{
    if (x.rank() != 2)
        panic("dense layer expects (N, D), got ", x.shapeStr());
    lastInput_ = x;
    recordValid_ = false;
    Tensor out;
    if (ctx) {
        FcEngine engine(ctx->frontendFor(layerId_),
                        ctx->signatureBits());
        ReuseStats stats;
        SignatureRecord *capture =
            ctx->capturesRecords() ? &record_ : nullptr;
        out = engine.forward(x, weight_, stats, nullptr, capture,
                             ctx->rowPlanFor(layerId_));
        ctx->accumulate(stats);
        recordValid_ = capture != nullptr;
    } else {
        out = matmul(x, weight_);
    }
    for (int64_t i = 0; i < out.dim(0); ++i)
        for (int64_t j = 0; j < out.dim(1); ++j)
            out.at2(i, j) += bias_[j];
    return out;
}

Tensor
DenseLayer::backwardImpl(const Tensor &grad, MercuryContext *ctx)
{
    if (ctx && ctx->weightGradReuse() && recordValid_) {
        // Weight-gradient replay (§III-C2 on Eq. 1): one outer
        // product per forward hit-group through the owner's input
        // row.
        FcEngine engine(ctx->frontendFor(layerId_),
                        ctx->signatureBits());
        ReuseStats wstats;
        gradWeight_ =
            engine.backwardWeights(lastInput_, grad, record_, wstats,
                                   ctx->rowPlanFor(layerId_));
        ctx->accumulateWeightGrad(wstats);
    } else {
        gradWeight_ = matmul(transpose2d(lastInput_), grad);
    }
    gradBias_ = Tensor({grad.dim(1)});
    for (int64_t i = 0; i < grad.dim(0); ++i)
        for (int64_t j = 0; j < grad.dim(1); ++j)
            gradBias_[j] += grad.at2(i, j);
    if (ctx && ctx->backwardReuse() && recordValid_) {
        // Replayed input-gradient pass (§III-C2): forward-HIT rows
        // receive their owner's gradient row, everyone else computes
        // grad x W^T exactly.
        FcEngine engine(ctx->frontendFor(layerId_),
                        ctx->signatureBits());
        ReuseStats stats;
        Tensor gin = engine.backwardInput(grad, weight_, record_, stats,
                                          ctx->rowPlanFor(layerId_));
        ctx->accumulateBackward(stats);
        return gin;
    }
    return matmulTransposeB(grad, weight_);
}

void
DenseLayer::step(float lr)
{
    if (gradWeight_.numel() != weight_.numel())
        panic("dense step before backward");
    for (int64_t i = 0; i < weight_.numel(); ++i)
        weight_[i] -= lr * gradWeight_[i];
    for (int64_t i = 0; i < bias_.numel(); ++i)
        bias_[i] -= lr * gradBias_[i];
}

uint64_t
DenseLayer::paramCount() const
{
    return static_cast<uint64_t>(weight_.numel() + bias_.numel());
}

// ---------------------------------------------------------------------
// Stateless layers
// ---------------------------------------------------------------------

Tensor
ReluLayer::forward(const Tensor &x, MercuryContext *)
{
    lastInput_ = x;
    return reluForward(x);
}

Tensor
ReluLayer::backwardImpl(const Tensor &grad, MercuryContext *)
{
    return reluBackward(lastInput_, grad);
}

Tensor
MaxPoolLayer::forward(const Tensor &x, MercuryContext *)
{
    lastInput_ = x;
    return maxPool2x2Forward(x, argmax_);
}

Tensor
MaxPoolLayer::backwardImpl(const Tensor &grad, MercuryContext *)
{
    return maxPool2x2Backward(lastInput_, grad, argmax_);
}

Tensor
GlobalAvgPoolLayer::forward(const Tensor &x, MercuryContext *)
{
    lastInput_ = x;
    return globalAvgPoolForward(x);
}

Tensor
GlobalAvgPoolLayer::backwardImpl(const Tensor &grad, MercuryContext *)
{
    return globalAvgPoolBackward(lastInput_, grad);
}

Tensor
FlattenLayer::forward(const Tensor &x, MercuryContext *)
{
    lastShape_ = x.shape();
    Tensor out = x;
    int64_t rest = 1;
    for (int i = 1; i < x.rank(); ++i)
        rest *= x.dim(i);
    out.reshape({x.dim(0), rest});
    return out;
}

Tensor
FlattenLayer::backwardImpl(const Tensor &grad, MercuryContext *)
{
    Tensor out = grad;
    out.reshape(lastShape_);
    return out;
}

} // namespace mercury
