/**
 * @file
 * Sequential network container with an SGD training loop. The same
 * network trains exactly (baseline) or through the MERCURY reuse
 * engines (pass an enabled MercuryContext), which is how the
 * accuracy-parity experiments are run.
 */

#ifndef MERCURY_NN_NETWORK_HPP
#define MERCURY_NN_NETWORK_HPP

#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace mercury {

/** A stack of layers trained with softmax cross-entropy + SGD. */
class Network
{
  public:
    Network() = default;

    /** Append a layer (takes ownership). */
    void add(std::unique_ptr<Layer> layer);

    size_t numLayers() const { return layers_.size(); }

    /** Total trainable parameters. */
    uint64_t paramCount() const;

    /** Forward through all layers. */
    Tensor forward(const Tensor &x, MercuryContext *ctx = nullptr);

    /**
     * Describe the step for input `x` and bind its compiled plan in
     * `ctx` (core/runtime_planner.hpp). forward() calls this whenever
     * ctx->planExecution() is set — after the first call per (shape,
     * config) it is a key-match fast path; exposed so tests and
     * benches can exercise the bind in isolation.
     */
    void planStep(const Tensor &x, MercuryContext *ctx);

    /**
     * The step descriptor stack forward(x) would execute — the same
     * workload definition planStep compiles and sim::CostModel
     * backends replay. Lets consumers cost a network without a
     * MercuryContext (e.g. the server's modeled-cycle stats).
     */
    StepDescBuilder describeStep(const Tensor &x) const;

    /**
     * One SGD step on a minibatch; returns the mean loss. Gradients
     * are exact gradients of the (possibly reuse-perturbed) forward.
     */
    float trainBatch(const Tensor &x, const std::vector<int> &labels,
                     float lr, MercuryContext *ctx = nullptr);

    /** Classification accuracy on a labelled set. */
    double accuracy(const Tensor &x, const std::vector<int> &labels,
                    MercuryContext *ctx = nullptr);

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

} // namespace mercury

#endif // MERCURY_NN_NETWORK_HPP
