#include "nn/mercury_hooks.hpp"

#include "util/logging.hpp"

namespace mercury {

MercuryContext::MercuryContext(int sig_bits, int sets, int ways,
                               int versions, uint64_t seed)
    : sigBits_(sig_bits), seed_(seed),
      cache_(std::make_unique<MCache>(sets, ways, versions))
{
    if (sig_bits <= 0)
        fatal("MercuryContext needs positive signature bits");
}

void
MercuryContext::setSignatureBits(int bits)
{
    if (bits <= 0)
        panic("signature bits must stay positive, got ", bits);
    sigBits_ = bits;
}

uint64_t
MercuryContext::layerSeed(uint64_t layer_id) const
{
    // SplitMix-style spread so per-layer projections are independent.
    uint64_t z = seed_ + 0x9E3779B97F4A7C15ull * (layer_id + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    return z ^ (z >> 31);
}

void
MercuryContext::accumulate(const ReuseStats &stats)
{
    totals_.mix.vectors += stats.mix.vectors;
    totals_.mix.hit += stats.mix.hit;
    totals_.mix.mau += stats.mix.mau;
    totals_.mix.mnu += stats.mix.mnu;
    totals_.macsTotal += stats.macsTotal;
    totals_.macsSkipped += stats.macsSkipped;
    totals_.channelPasses += stats.channelPasses;
}

void
MercuryContext::resetStats()
{
    totals_ = ReuseStats{};
}

} // namespace mercury
