#include "nn/mercury_hooks.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace mercury {

MercuryContext::MercuryContext(int sig_bits, int sets, int ways,
                               int versions, uint64_t seed)
    : sigBits_(sig_bits), sets_(sets), ways_(ways), versions_(versions),
      seed_(seed)
{
    if (sig_bits <= 0)
        fatal("MercuryContext needs positive signature bits");
    if (sets <= 0 || ways <= 0 || versions <= 0)
        fatal("MercuryContext needs positive MCACHE sets/ways/versions, "
              "got ",
              sets, "/", ways, "/", versions);
}

MCache &
MercuryContext::cache()
{
    if (!cache_)
        cache_ = std::make_unique<MCache>(sets_, ways_, versions_);
    return *cache_;
}

void
MercuryContext::setSignatureBits(int bits)
{
    if (bits <= 0)
        panic("signature bits must stay positive, got ", bits);
    exec_.reset(); // bound runtimes carry the old signature length
    sigBits_ = bits;
}

void
MercuryContext::setPipeline(const PipelineConfig &pipe)
{
    exec_.reset(); // before the frontends/pool its runtimes reference
    pipeline_ = pipe;
    frontends_.clear();
    perLayer_.clear();
    shared_.reset();
    pool_.reset();
}

ShardedMCache &
MercuryContext::sharedCache()
{
    if (!shared_) {
        shared_ = std::make_unique<ShardedMCache>(
            sets_, ways_, versions_, pipeline_.resolvedShards());
    }
    return *shared_;
}

ShardedMCache &
MercuryContext::cacheForLayer(uint64_t layer_id)
{
    if (cacheProvider_)
        return cacheProvider_(layer_id);
    if (!pipeline_.persistent)
        return sharedCache();
    // Persistent mode: tags now survive across passes, so layers can
    // no longer time-share one cache (each hashes with its own
    // projection). Every layer gets a private cache carrying the
    // context's lifecycle state.
    auto it = perLayer_.find(layer_id);
    if (it == perLayer_.end()) {
        auto cache = std::make_unique<ShardedMCache>(
            sets_, ways_, versions_, pipeline_.resolvedShards());
        cache->setEpoch(epoch_);
        cache->setInsertTenant(tenant_);
        it = perLayer_.emplace(layer_id, std::move(cache)).first;
    }
    return *it->second;
}

void
MercuryContext::setLayerCacheProvider(LayerCacheProvider provider)
{
    exec_.reset(); // before the frontends its runtimes reference
    cacheProvider_ = std::move(provider);
    frontends_.clear();
    perLayer_.clear();
}

void
MercuryContext::bindStepPlan(const StepDescBuilder &desc)
{
    ++planLookups_;
    PlanKeyConfig kcfg;
    kcfg.sigBits = sigBits_;
    kcfg.sets = sets_;
    kcfg.ways = ways_;
    kcfg.dataVersions = versions_;
    kcfg.pipe = pipeline_;
    kcfg.backwardReuse = backwardReuse_;
    kcfg.weightGradReuse = weightGradReuse_;
    const uint64_t key = RuntimePlanner::planKey(desc, kcfg);
    if (exec_ && exec_->plan && exec_->plan->key == key) {
        ++planHits_; // steady state: same shapes + config, same plan
        return;
    }
    PlanCache &cache = sharedPlans_ ? *sharedPlans_ : ownPlans_;
    std::shared_ptr<const StepPlan> plan = cache.find(key);
    if (plan) {
        ++planHits_;
    } else {
        plan = RuntimePlanner::compile(desc, kcfg);
        cache.insert(plan);
    }
    if (!plan->plannable) {
        // Keep the bound key so the fast path still short-circuits,
        // but build no slots: every layer runs the unplanned path.
        exec_ = std::make_unique<PlanExec>();
        exec_->plan = std::move(plan);
        return;
    }
    exec_ = buildPlanExec(
        std::move(plan), sigBits_, capturesRecords(),
        [this](uint64_t layer_id) -> DetectionFrontend & {
            return frontendFor(layer_id);
        });
}

ConvPlanSlot *
MercuryContext::convPlanFor(uint64_t layer_id)
{
    if (!planExecution_ || !exec_)
        return nullptr;
    return exec_->convSlot(layer_id);
}

RowPlanSlot *
MercuryContext::rowPlanFor(uint64_t layer_id)
{
    if (!planExecution_ || !exec_)
        return nullptr;
    return exec_->rowSlot(layer_id);
}

void
MercuryContext::resetPlanState()
{
    exec_.reset();
    ownPlans_.clear();
}

void
MercuryContext::setTenant(int tenant)
{
    tenant_ = tenant;
    for (auto &kv : perLayer_)
        kv.second->setInsertTenant(tenant);
}

void
MercuryContext::setEpoch(uint64_t epoch)
{
    epoch_ = epoch;
    for (auto &kv : perLayer_)
        kv.second->setEpoch(epoch);
}

int64_t
MercuryContext::evictOlderThan(uint64_t min_epoch)
{
    int64_t evicted = 0;
    for (auto &kv : perLayer_)
        evicted += kv.second->evictOlderThan(min_epoch);
    return evicted;
}

void
MercuryContext::clearCaches()
{
    for (auto &kv : perLayer_)
        kv.second->clear();
    if (shared_)
        shared_->clear();
}

std::vector<uint64_t>
MercuryContext::persistentCacheIds() const
{
    std::vector<uint64_t> ids;
    ids.reserve(perLayer_.size());
    for (const auto &kv : perLayer_)
        ids.push_back(kv.first);
    return ids;
}

ShardedMCache &
MercuryContext::persistentCache(uint64_t layer_id)
{
    auto it = perLayer_.find(layer_id);
    if (it == perLayer_.end())
        panic("no persistent cache for layer ", layer_id,
              " (no pass has run through it yet)");
    return *it->second;
}

ThreadPool *
MercuryContext::sharedPool()
{
    return ThreadPool::forKnob(pipeline_.threads, pool_);
}

DetectionFrontend &
MercuryContext::frontendFor(uint64_t layer_id)
{
    auto it = frontends_.find(layer_id);
    if (it != frontends_.end() && it->second->maxBits() >= sigBits_)
        return *it->second;
    // Provision to the next 64-bit band so adaptive signature growth
    // rarely forces a rebuild; extra columns never change the bits
    // actually used.
    const int max_bits = std::max(64, (sigBits_ + 63) / 64 * 64);
    // One sharded cache with the context's organization shared by
    // every layer (not a view of cache_), so the shards knob actually
    // parallelizes the probe stage without an MCACHE allocation per
    // layer; identical results either way, as each detection pass
    // clears the cache. Persistent mode swaps in per-layer (or
    // provider-owned) caches instead — see cacheForLayer.
    auto frontend = std::make_unique<DetectionFrontend>(
        cacheForLayer(layer_id), max_bits, layerSeed(layer_id),
        pipeline_);
    frontend->setSharedPool(sharedPool());
    DetectionFrontend &ref = *frontend;
    frontends_[layer_id] = std::move(frontend);
    return ref;
}

uint64_t
MercuryContext::layerSeed(uint64_t layer_id) const
{
    // SplitMix-style spread so per-layer projections are independent.
    uint64_t z = seed_ + 0x9E3779B97F4A7C15ull * (layer_id + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    return z ^ (z >> 31);
}

namespace {

void
addStats(ReuseStats &into, const ReuseStats &stats)
{
    into.mix.vectors += stats.mix.vectors;
    into.mix.hit += stats.mix.hit;
    into.mix.mau += stats.mix.mau;
    into.mix.mnu += stats.mix.mnu;
    into.macsTotal += stats.macsTotal;
    into.macsSkipped += stats.macsSkipped;
    into.channelPasses += stats.channelPasses;
}

} // namespace

void
MercuryContext::accumulate(const ReuseStats &stats)
{
    addStats(totals_, stats);
}

void
MercuryContext::accumulateBackward(const ReuseStats &stats)
{
    addStats(backwardTotals_, stats);
}

void
MercuryContext::accumulateWeightGrad(const ReuseStats &stats)
{
    addStats(weightGradTotals_, stats);
}

void
MercuryContext::resetStats()
{
    totals_ = ReuseStats{};
    backwardTotals_ = ReuseStats{};
    weightGradTotals_ = ReuseStats{};
}

} // namespace mercury
