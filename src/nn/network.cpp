#include "nn/network.hpp"

#include "util/logging.hpp"

namespace mercury {

void
Network::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
}

uint64_t
Network::paramCount() const
{
    uint64_t n = 0;
    for (const auto &l : layers_)
        n += l->paramCount();
    return n;
}

Tensor
Network::forward(const Tensor &x, MercuryContext *ctx)
{
    if (layers_.empty())
        panic("forward through an empty network");
    if (ctx && ctx->planExecution())
        planStep(x, ctx);
    Tensor y = x;
    for (auto &l : layers_)
        y = l->forward(y, ctx);
    return y;
}

void
Network::planStep(const Tensor &x, MercuryContext *ctx)
{
    if (!ctx)
        return;
    StepDescBuilder b = describeStep(x);
    ctx->bindStepPlan(b);
}

StepDescBuilder
Network::describeStep(const Tensor &x) const
{
    StepDescBuilder b(x.shape());
    for (const auto &l : layers_)
        l->describeStep(b);
    return b;
}

float
Network::trainBatch(const Tensor &x, const std::vector<int> &labels,
                    float lr, MercuryContext *ctx)
{
    Tensor logits = forward(x, ctx);
    Tensor grad;
    const float loss = softmaxCrossEntropy(logits, labels, grad);
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        grad = (*it)->backward(grad, ctx);
    for (auto &l : layers_)
        l->step(lr);
    return loss;
}

double
Network::accuracy(const Tensor &x, const std::vector<int> &labels,
                  MercuryContext *ctx)
{
    Tensor logits = forward(x, ctx);
    const int64_t n = logits.dim(0);
    const int64_t k = logits.dim(1);
    int correct = 0;
    for (int64_t i = 0; i < n; ++i) {
        int64_t best = 0;
        for (int64_t j = 1; j < k; ++j)
            if (logits.at2(i, j) > logits.at2(i, best))
                best = j;
        correct += best == labels[static_cast<size_t>(i)];
    }
    return static_cast<double>(correct) / static_cast<double>(n);
}

} // namespace mercury
