/**
 * @file
 * Composite blocks used by the model-family proxies: residual blocks
 * (ResNet), parallel branch + concat blocks (GoogleNet/Inception),
 * and fire modules (SqueezeNet). All are built from the basic layers
 * so MERCURY reuse flows through them unchanged.
 */

#ifndef MERCURY_NN_BLOCKS_HPP
#define MERCURY_NN_BLOCKS_HPP

#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace mercury {

/**
 * Residual block: out = relu(conv2(relu(conv1(x))) + proj(x)).
 * The projection is identity when shapes match, otherwise a 1x1
 * convolution.
 */
class ResidualBlock : public Layer
{
  public:
    ResidualBlock(int64_t c_in, int64_t c_out, int64_t stride, Rng &rng,
                  uint64_t layer_id);

    Tensor forward(const Tensor &x, MercuryContext *ctx) override;
    void step(float lr) override;
    std::string name() const override { return "residual"; }
    uint64_t paramCount() const override;

  protected:
    Tensor backwardImpl(const Tensor &grad,
                        MercuryContext *ctx) override;

  private:
    std::unique_ptr<Conv2dLayer> conv1_;
    std::unique_ptr<ReluLayer> relu1_;
    std::unique_ptr<Conv2dLayer> conv2_;
    std::unique_ptr<Conv2dLayer> proj_; // null for identity skip
    Tensor lastSum_;                    // pre-activation sum
};

/**
 * Branch-and-concat block: runs each branch (a layer stack) on the
 * same input and concatenates outputs along the channel dimension.
 * All branches must produce identical spatial dimensions.
 */
class ConcatBlock : public Layer
{
  public:
    using Branch = std::vector<std::unique_ptr<Layer>>;

    explicit ConcatBlock(std::vector<Branch> branches);

    Tensor forward(const Tensor &x, MercuryContext *ctx) override;
    void step(float lr) override;
    std::string name() const override { return "concat"; }
    uint64_t paramCount() const override;

  protected:
    Tensor backwardImpl(const Tensor &grad,
                        MercuryContext *ctx) override;

  private:
    std::vector<Branch> branches_;
    std::vector<Tensor> branchOutputs_;
};

/** A layer stack usable wherever a single layer is expected. */
class SequentialBlock : public Layer
{
  public:
    explicit SequentialBlock(std::vector<std::unique_ptr<Layer>> layers);

    Tensor forward(const Tensor &x, MercuryContext *ctx) override;
    void step(float lr) override;
    std::string name() const override { return "sequential"; }
    uint64_t paramCount() const override;

  protected:
    Tensor backwardImpl(const Tensor &grad,
                        MercuryContext *ctx) override;

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/**
 * MobileNet-V2 inverted residual: expand 1x1 -> ReLU -> depthwise
 * 3x3 (groups == expanded channels) -> ReLU -> project 1x1 (linear),
 * with an identity skip when the block preserves shape (stride 1 and
 * c_in == c_out). All three convolutions are ordinary Conv2dLayers,
 * so MERCURY reuse — forward, dX, and dW — flows through the
 * depthwise and grouped passes exactly like any other conv: the
 * ConvReuseEngine's pass descriptors enumerate (group,
 * channel-within-group) pairs, no special casing.
 */
class InvertedResidualBlock : public Layer
{
  public:
    /**
     * @param c_in   input channels
     * @param c_out  output channels
     * @param expand expansion factor (mid = c_in * expand)
     * @param stride depthwise stride (1 keeps the skip, 2 downsamples)
     */
    InvertedResidualBlock(int64_t c_in, int64_t c_out, int64_t expand,
                          int64_t stride, Rng &rng, uint64_t layer_id);

    Tensor forward(const Tensor &x, MercuryContext *ctx) override;
    void step(float lr) override;
    std::string name() const override { return "inverted_residual"; }
    uint64_t paramCount() const override;

  protected:
    Tensor backwardImpl(const Tensor &grad,
                        MercuryContext *ctx) override;

  private:
    std::unique_ptr<Conv2dLayer> expand_;  // 1x1, c_in -> mid
    std::unique_ptr<ReluLayer> relu1_;
    std::unique_ptr<Conv2dLayer> depthwise_; // 3x3, groups == mid
    std::unique_ptr<ReluLayer> relu2_;
    std::unique_ptr<Conv2dLayer> project_; // 1x1 linear, mid -> c_out
    bool skip_;                            // identity residual add
};

/**
 * SqueezeNet fire module: a 1x1 squeeze convolution followed by
 * parallel 1x1 and 3x3 expand convolutions, concatenated.
 */
std::unique_ptr<Layer> makeFireModule(int64_t c_in, int64_t squeeze,
                                      int64_t expand, Rng &rng,
                                      uint64_t layer_id);

} // namespace mercury

#endif // MERCURY_NN_BLOCKS_HPP
