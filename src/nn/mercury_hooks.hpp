/**
 * @file
 * MERCURY execution context for the NN training framework.
 *
 * When a context is enabled, reuse-capable layers (convolution,
 * dense, attention) run their forward pass through the functional
 * reuse engines instead of exact arithmetic, accumulating the
 * measured reuse statistics. Backward passes compute exact gradients
 * of the perturbed forward, so training "sees" exactly the
 * reuse-induced approximation the hardware would introduce — this is
 * what the accuracy experiments (paper Fig. 13) measure.
 *
 * With backward reuse enabled (§III-C2, AcceleratorConfig::
 * backwardReuse), each layer's forward pass additionally captures its
 * detection outcomes into a SignatureRecord, and the input-gradient
 * pass replays that record through the reuse engines — skipping the
 * grad products of forward-HIT rows with zero detection cost. Weight
 * gradients stay exact either way. Backward statistics accumulate
 * separately (backwardTotals) so the two halves of a training step
 * can be reported against their own baselines.
 */

#ifndef MERCURY_NN_MERCURY_HOOKS_HPP
#define MERCURY_NN_MERCURY_HOOKS_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/conv_reuse_engine.hpp"
#include "core/mcache.hpp"
#include "core/runtime_planner.hpp"
#include "pipeline/detection_frontend.hpp"
#include "util/thread_pool.hpp"

namespace mercury {

/** Shared reuse configuration and statistics for a training run. */
class MercuryContext
{
  public:
    /**
     * @param sig_bits signature length used by all layers
     * @param sets     MCACHE sets
     * @param ways     MCACHE ways
     * @param versions MCACHE data versions
     * @param seed     base seed; each layer derives its projection
     */
    MercuryContext(int sig_bits = 20, int sets = 64, int ways = 16,
                   int versions = 4, uint64_t seed = 0xC0FFEE);

    int signatureBits() const { return sigBits_; }

    /** Grow the signature (adaptive training loops call this). */
    void setSignatureBits(int bits);

    /**
     * A monolithic MCACHE with the context's organization, for legacy
     * direct-engine use; allocated lazily on first access. The layer
     * engines themselves run through per-layer sharded frontends
     * (frontendFor) with this same organization — bit-identical
     * results, since every detection pass clears the cache first.
     */
    MCache &cache();

    /**
     * Detection-pipeline knobs the layer engines run with. Results
     * are bit-identical across knob values (the threads = 1 default
     * is the legacy path); the knobs trade only throughput. Setting
     * `pipe.overlap` (with threads != 1) makes every layer engine
     * overlap detection with its filter passes via the streaming
     * block hand-off. Setting new knobs discards the cached per-layer
     * frontends and pool.
     */
    const PipelineConfig &pipeline() const { return pipeline_; }
    void setPipeline(const PipelineConfig &pipe);

    /**
     * The layer's detection front-end: the context's shared sharded
     * MCACHE with the layer's projection seed (independent of
     * cache(), which stays untouched by layer runs), cached across
     * forward passes so pools and RPQ engines are built once, and
     * running on one worker pool shared by every layer. Sharing one
     * cache across layers is sound because every detection pass
     * clears it first.
     *
     * Lifetime: the reference stays valid until setPipeline() or a
     * setSignatureBits() growth past the frontend's provisioning
     * rebuilds it — re-fetch per forward pass (as the layers do)
     * rather than caching it across configuration changes.
     */
    DetectionFrontend &frontendFor(uint64_t layer_id);

    /** Per-layer deterministic projection seed. */
    uint64_t layerSeed(uint64_t layer_id) const;

    // ---- Persistent-cache lifecycle (serving layer) -----------------
    //
    // With `pipeline().persistent` set, detection passes stop clearing
    // MCACHE, so the cross-layer shared cache of the default mode is
    // no longer sound (different layers hash with different
    // projections). The context then gives every layer its own
    // private ShardedMCache — unless an external provider is
    // installed, in which case the caller (MercuryServer) owns the
    // per-layer caches and may share them across contexts/tenants.

    /**
     * Externally owned per-layer caches: when set, frontendFor binds
     * each layer's frontend to `provider(layer_id)` instead of a
     * context-owned cache. The provided caches must outlive this
     * context's frontends (i.e. the context, or the next
     * setLayerCacheProvider / setPipeline call, whichever is first).
     * Installing a provider discards the cached frontends; installing
     * nullptr reverts to context-owned caches.
     */
    using LayerCacheProvider = std::function<ShardedMCache &(uint64_t)>;
    void setLayerCacheProvider(LayerCacheProvider provider);

    /**
     * Stamp subsequent MCACHE inserts of every context-owned cache
     * (current and future) with `tenant` (quota/eviction accounting;
     * -1 = unowned).
     */
    void setTenant(int tenant);
    int tenant() const { return tenant_; }

    /**
     * Move the context-owned caches to `epoch`: inserts and HIT
     * refreshes from now on stamp it. No-op for provider-owned caches
     * (their owner drives the epoch).
     */
    void setEpoch(uint64_t epoch);
    uint64_t epoch() const { return epoch_; }

    /** Evict unpinned lines older than `min_epoch` from every
     *  context-owned cache; returns lines evicted. */
    int64_t evictOlderThan(uint64_t min_epoch);

    /** Drop every valid tag in every context-owned cache (cold start). */
    void clearCaches();

    /** Layer ids with a context-owned persistent cache (snapshotting). */
    std::vector<uint64_t> persistentCacheIds() const;

    /** A layer's context-owned persistent cache; panics if absent. */
    ShardedMCache &persistentCache(uint64_t layer_id);

    /**
     * Reuse saved signatures in the backward pass (§III-C2): when
     * set, reuse-capable layers capture a SignatureRecord on forward
     * and replay it through the engines' backward filter passes,
     * skipping the input-gradient products of forward-HIT rows.
     * Off by default: backward then computes exact gradients of the
     * perturbed forward, the legacy accuracy-experiment setup.
     */
    void setBackwardReuse(bool enabled) { backwardReuse_ = enabled; }
    bool backwardReuse() const { return backwardReuse_; }

    /**
     * Reuse saved signatures in the weight-gradient pass (§III-C2 on
     * Eq. 1, AcceleratorConfig::weightGradReuse): when set,
     * reuse-capable layers capture a SignatureRecord on forward (the
     * same record backwardReuse uses — one captured detection pass
     * feeds both) and compute dW by sum-then-multiply: the output
     * gradients of each forward hit-group are summed first, then one
     * multiply runs per group through the owner's input patch. Off by
     * default: weight gradients are then exact gradients of the
     * perturbed forward.
     */
    void setWeightGradReuse(bool enabled) { weightGradReuse_ = enabled; }
    bool weightGradReuse() const { return weightGradReuse_; }

    /** True when layers must capture a record on forward. */
    bool capturesRecords() const
    {
        return backwardReuse_ || weightGradReuse_;
    }

    // ---- Planned execution (core/runtime_planner.hpp) ---------------

    /**
     * Execute steps as replay of a compiled StepPlan
     * (AcceleratorConfig::planExecution): Network::forward describes
     * the step once, bindStepPlan compiles (or fetches) the plan, and
     * reuse-capable layers run through persistent per-layer execution
     * slots — knobs resolved once per shape, buffers preallocated,
     * conv→conv edges overlapped across layers. Off by default;
     * outputs and reuse statistics are bit-identical either way.
     */
    void setPlanExecution(bool enabled) { planExecution_ = enabled; }
    bool planExecution() const { return planExecution_; }

    /**
     * Share compiled plans across contexts (MercuryServer): plans are
     * immutable and hold no frontend/cache pointers, so same-shape
     * sessions reuse one compilation. The cache must outlive this
     * context; nullptr reverts to the context-private cache.
     */
    void setSharedPlanCache(PlanCache *cache) { sharedPlans_ = cache; }

    /**
     * Bind the plan for the described step: fast-path when the bound
     * plan's key already matches, otherwise fetch from the plan cache
     * (shared if installed) or compile and insert. Rebuilds the
     * per-layer execution slots only when the key changed. Called by
     * Network::forward when planExecution() is set.
     */
    void bindStepPlan(const StepDescBuilder &desc);

    /**
     * The bound layer execution slot, or null when planning is off,
     * no plan is bound, the step was unplannable, or the layer has no
     * slot — callers fall back to the unplanned path on null.
     */
    ConvPlanSlot *convPlanFor(uint64_t layer_id);
    RowPlanSlot *rowPlanFor(uint64_t layer_id);

    /** The bound plan (tests / benches), or null. */
    const StepPlan *boundPlan() const
    {
        return exec_ ? exec_->plan.get() : nullptr;
    }

    /** bindStepPlan calls, and how many avoided a compile (bound-plan
     *  fast path or plan-cache find). */
    int64_t planLookups() const { return planLookups_; }
    int64_t planHits() const { return planHits_; }

    /**
     * Drop the bound execution state and the context-private plan
     * cache (not a shared one): the next bindStepPlan recompiles.
     * Benches use this to measure cold-bind setup cost.
     */
    void resetPlanState();

    /** Accumulate one forward engine invocation's statistics. */
    void accumulate(const ReuseStats &stats);

    /** Accumulate one backward (replay) invocation's statistics. */
    void accumulateBackward(const ReuseStats &stats);

    /** Accumulate one weight-gradient (replay) invocation's stats. */
    void accumulateWeightGrad(const ReuseStats &stats);

    /** Forward totals since construction (or resetStats). */
    const ReuseStats &totals() const { return totals_; }

    /** Backward-replay totals since construction (or resetStats). */
    const ReuseStats &backwardTotals() const { return backwardTotals_; }

    /** Weight-gradient-replay totals since construction. */
    const ReuseStats &weightGradTotals() const
    {
        return weightGradTotals_;
    }

    void resetStats();

  private:
    int sigBits_;
    int sets_;
    int ways_;
    int versions_;
    uint64_t seed_;
    bool backwardReuse_ = false;
    bool weightGradReuse_ = false;
    std::unique_ptr<MCache> cache_; // lazy, see cache()
    PipelineConfig pipeline_;
    // Pool and cache must outlive the frontends holding pointers to
    // them (members destroy in reverse declaration order).
    std::unique_ptr<ThreadPool> pool_;         // shared by all frontends
    std::unique_ptr<ShardedMCache> shared_;    // shared by all frontends
    /// Per-layer private caches of persistent mode (see
    /// setLayerCacheProvider); must outlive frontends_ too.
    std::map<uint64_t, std::unique_ptr<ShardedMCache>> perLayer_;
    LayerCacheProvider cacheProvider_;
    int tenant_ = -1;
    uint64_t epoch_ = 0;
    std::map<uint64_t, std::unique_ptr<DetectionFrontend>> frontends_;
    ReuseStats totals_;
    ReuseStats backwardTotals_;
    ReuseStats weightGradTotals_;
    bool planExecution_ = false;
    PlanCache ownPlans_;
    PlanCache *sharedPlans_ = nullptr; // externally owned override
    int64_t planLookups_ = 0;
    int64_t planHits_ = 0;
    /// Bound plan execution state. Declared last: its runtimes and
    /// in-flight hash jobs reference the frontends and pool above, so
    /// it must destroy (and join) first.
    std::unique_ptr<PlanExec> exec_;

    ThreadPool *sharedPool();
    ShardedMCache &sharedCache();
    ShardedMCache &cacheForLayer(uint64_t layer_id);
};

} // namespace mercury

#endif // MERCURY_NN_MERCURY_HOOKS_HPP
