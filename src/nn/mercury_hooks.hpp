/**
 * @file
 * MERCURY execution context for the NN training framework.
 *
 * When a context is enabled, reuse-capable layers (convolution,
 * dense, attention) run their forward pass through the functional
 * reuse engines instead of exact arithmetic, accumulating the
 * measured reuse statistics. Backward passes compute exact gradients
 * of the perturbed forward, so training "sees" exactly the
 * reuse-induced approximation the hardware would introduce — this is
 * what the accuracy experiments (paper Fig. 13) measure.
 */

#ifndef MERCURY_NN_MERCURY_HOOKS_HPP
#define MERCURY_NN_MERCURY_HOOKS_HPP

#include <cstdint>
#include <memory>

#include "core/conv_reuse_engine.hpp"
#include "core/mcache.hpp"

namespace mercury {

/** Shared reuse configuration and statistics for a training run. */
class MercuryContext
{
  public:
    /**
     * @param sig_bits signature length used by all layers
     * @param sets     MCACHE sets
     * @param ways     MCACHE ways
     * @param versions MCACHE data versions
     * @param seed     base seed; each layer derives its projection
     */
    MercuryContext(int sig_bits = 20, int sets = 64, int ways = 16,
                   int versions = 4, uint64_t seed = 0xC0FFEE);

    int signatureBits() const { return sigBits_; }

    /** Grow the signature (adaptive training loops call this). */
    void setSignatureBits(int bits);

    /** The shared MCACHE all layer engines run through. */
    MCache &cache() { return *cache_; }

    /** Per-layer deterministic projection seed. */
    uint64_t layerSeed(uint64_t layer_id) const;

    /** Accumulate one engine invocation's statistics. */
    void accumulate(const ReuseStats &stats);

    /** Totals since construction (or resetStats). */
    const ReuseStats &totals() const { return totals_; }
    void resetStats();

  private:
    int sigBits_;
    uint64_t seed_;
    std::unique_ptr<MCache> cache_;
    ReuseStats totals_;
};

} // namespace mercury

#endif // MERCURY_NN_MERCURY_HOOKS_HPP
