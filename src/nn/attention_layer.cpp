#include "nn/attention_layer.hpp"

#include "core/attention_engine.hpp"
#include "util/logging.hpp"

namespace mercury {

SelfAttentionLayer::SelfAttentionLayer(int64_t seq_len, int64_t embed_dim,
                                       uint64_t layer_id, float scale)
    : seqLen_(seq_len), embedDim_(embed_dim), layerId_(layer_id),
      scale_(scale)
{
}

Tensor
SelfAttentionLayer::forward(const Tensor &x, MercuryContext *ctx)
{
    if (x.rank() != 2 || x.dim(1) != seqLen_ * embedDim_)
        panic("attention expects (N, ", seqLen_ * embedDim_, "), got ",
              x.shapeStr());
    lastInput_ = x;
    recordValid_ = false;
    const int64_t n = x.dim(0);
    Tensor out({n, seqLen_ * embedDim_});

    const bool capture = ctx && ctx->capturesRecords();
    if (capture)
        record_.clear();
    for (int64_t s = 0; s < n; ++s) {
        Tensor xi({seqLen_, embedDim_});
        for (int64_t i = 0; i < xi.numel(); ++i)
            xi[i] = x[s * xi.numel() + i];
        Tensor yi;
        if (ctx) {
            AttentionEngine engine(ctx->frontendFor(layerId_),
                                   ctx->signatureBits());
            ReuseStats stats;
            yi = engine.forward(xi, stats, capture ? &record_ : nullptr,
                                ctx->rowPlanFor(layerId_));
            ctx->accumulate(stats);
        } else {
            Tensor w = matmulTransposeB(xi, xi);
            yi = matmul(w, xi);
        }
        for (int64_t i = 0; i < yi.numel(); ++i)
            out[s * yi.numel() + i] = scale_ * yi[i];
    }
    recordValid_ = capture;
    return out;
}

Tensor
SelfAttentionLayer::backwardImpl(const Tensor &grad, MercuryContext *ctx)
{
    // Y = X Xt X with factors U = X, V = Xt, W = X:
    //   dL/dX = G (Xt X) + X Gt X + (X Xt) G
    const int64_t n = grad.dim(0);
    const bool has_record = recordValid_ && record_.passCount() == n;
    const bool replay = ctx && ctx->backwardReuse() && has_record;
    // Weight-gradient reuse (§III-C2 on the projection factor): the
    // parameter-free formulation's dW-shaped reduction is the shared
    // Xt X factor — replay it by sum-then-multiply over the sample's
    // forward hit-groups and feed it to whichever backward runs.
    const bool proj = ctx && ctx->weightGradReuse() && has_record;
    Tensor out({n, seqLen_ * embedDim_});
    for (int64_t s = 0; s < n; ++s) {
        Tensor xi({seqLen_, embedDim_});
        Tensor gi({seqLen_, embedDim_});
        for (int64_t i = 0; i < xi.numel(); ++i) {
            xi[i] = lastInput_[s * xi.numel() + i];
            gi[i] = scale_ * grad[s * xi.numel() + i];
        }
        Tensor xtx;
        if (proj) {
            AttentionEngine engine(ctx->frontendFor(layerId_),
                                   ctx->signatureBits());
            ReuseStats wstats;
            xtx = engine.backwardProjection(xi, record_, s, wstats,
                                            ctx->rowPlanFor(layerId_));
            ctx->accumulateWeightGrad(wstats);
        }
        if (replay) {
            // Replay the sample's forward detection pass (§III-C2):
            // forward-HIT token rows copy their owner's gradient row.
            AttentionEngine engine(ctx->frontendFor(layerId_),
                                   ctx->signatureBits());
            ReuseStats stats;
            Tensor gx = engine.backward(xi, gi, record_, s, stats,
                                        proj ? &xtx : nullptr,
                                        ctx->rowPlanFor(layerId_));
            ctx->accumulateBackward(stats);
            for (int64_t i = 0; i < gx.numel(); ++i)
                out[s * gx.numel() + i] = gx[i];
            continue;
        }
        if (!proj)
            xtx = matmul(transpose2d(xi), xi);        // (E, E)
        Tensor term1 = matmul(gi, xtx);               // (T, E)
        Tensor term2 = matmul(matmul(xi, transpose2d(gi)), xi);
        Tensor term3 = matmul(matmulTransposeB(xi, xi), gi);
        for (int64_t i = 0; i < term1.numel(); ++i)
            out[s * term1.numel() + i] =
                term1[i] + term2[i] + term3[i];
    }
    return out;
}

} // namespace mercury
