/**
 * @file
 * Trainable layer zoo for the accuracy experiments: convolution,
 * dense, ReLU, pooling, and flatten. Layers cache what their backward
 * pass needs and own their parameters (SGD step in place).
 *
 * Reuse-capable layers accept an optional MercuryContext; when it is
 * enabled their forward pass runs through the functional MERCURY
 * engines.
 */

#ifndef MERCURY_NN_LAYERS_HPP
#define MERCURY_NN_LAYERS_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/mercury_hooks.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace mercury {

/** Abstract trainable layer. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Forward pass. `ctx` may be null (exact execution) or an
     * enabled MercuryContext (reuse-approximated execution). With
     * ctx->backwardReuse() or ctx->weightGradReuse() set,
     * reuse-capable layers additionally capture their detection
     * outcomes once for the backward replay — one record feeds both
     * gradient passes.
     */
    virtual Tensor forward(const Tensor &x, MercuryContext *ctx) = 0;

    /**
     * Backward pass: input gradient from output gradient. `ctx` must
     * be the context the matching forward ran with (or null): with
     * backward reuse enabled, reuse-capable layers replay the
     * forward-captured SignatureRecord to skip input-gradient
     * products of forward-HIT rows (§III-C2); with weight-gradient
     * reuse enabled they additionally compute dW by sum-then-multiply
     * over the same record (one multiply per forward hit-group);
     * otherwise gradients are exact gradients of the perturbed
     * forward.
     *
     * Non-virtual dispatcher so the ctx default argument lives in
     * exactly one place (defaults on virtuals bind statically, and
     * eleven overrides repeating `= nullptr` would be eleven chances
     * to diverge); layers override backwardImpl.
     */
    Tensor backward(const Tensor &grad, MercuryContext *ctx = nullptr)
    {
        return backwardImpl(grad, ctx);
    }

    /** SGD parameter update (no-op for stateless layers). */
    virtual void step(float lr) { (void)lr; }

    /**
     * Contribute this layer's op to a step description
     * (core/runtime_planner.hpp): reuse-capable layers describe their
     * shape, channelwise transforms describe their kind (they keep
     * conv→conv fusion edges alive), and everything else reports
     * opaque — the planner then stops shape tracking there and any
     * later conv runs unplanned. Opaque is always a safe default:
     * planning changes only the schedule, never the results.
     */
    virtual void describeStep(StepDescBuilder &b) const { b.opaque(); }

    virtual std::string name() const = 0;

    /** Number of trainable parameters. */
    virtual uint64_t paramCount() const { return 0; }

  protected:
    /** Backward implementation; see backward(). */
    virtual Tensor backwardImpl(const Tensor &grad,
                                MercuryContext *ctx) = 0;
};

/** 2D convolution layer (square kernels, optional groups). */
class Conv2dLayer : public Layer
{
  public:
    /**
     * @param layer_id unique id for the per-layer projection seed
     */
    Conv2dLayer(int64_t c_in, int64_t c_out, int64_t kernel,
                int64_t stride, int64_t pad, Rng &rng,
                uint64_t layer_id, int64_t groups = 1);

    Tensor forward(const Tensor &x, MercuryContext *ctx) override;
    void step(float lr) override;
    void describeStep(StepDescBuilder &b) const override
    {
        b.conv(layerId_, spec_);
    }
    std::string name() const override { return "conv2d"; }
    uint64_t paramCount() const override;

    const Tensor &weights() const { return weight_; }
    const ConvSpec &spec() const { return spec_; }

  protected:
    Tensor backwardImpl(const Tensor &grad,
                        MercuryContext *ctx) override;

  private:
    ConvSpec spec_;
    uint64_t layerId_;
    Tensor weight_;
    Tensor bias_;
    Tensor gradWeight_;
    Tensor gradBias_;
    Tensor lastInput_;
    // Forward-captured detection outcomes for the backward replay
    // (§III-C2); valid only for the most recent ctx-enabled forward.
    SignatureRecord record_;
    bool recordValid_ = false;
};

/** Fully connected layer on (N, D) inputs. */
class DenseLayer : public Layer
{
  public:
    DenseLayer(int64_t in_features, int64_t out_features, Rng &rng,
               uint64_t layer_id);

    Tensor forward(const Tensor &x, MercuryContext *ctx) override;
    void step(float lr) override;
    void describeStep(StepDescBuilder &b) const override
    {
        b.dense(layerId_, weight_.dim(0), weight_.dim(1));
    }
    std::string name() const override { return "dense"; }
    uint64_t paramCount() const override;

    const Tensor &weights() const { return weight_; }

  protected:
    Tensor backwardImpl(const Tensor &grad,
                        MercuryContext *ctx) override;

  private:
    uint64_t layerId_;
    Tensor weight_; // (D, M)
    Tensor bias_;   // (M)
    Tensor gradWeight_;
    Tensor gradBias_;
    Tensor lastInput_;
    // Forward-captured detection outcomes for the backward replay
    // (§III-C2); valid only for the most recent ctx-enabled forward.
    SignatureRecord record_;
    bool recordValid_ = false;
};

/** Elementwise ReLU. */
class ReluLayer : public Layer
{
  public:
    Tensor forward(const Tensor &x, MercuryContext *ctx) override;
    void describeStep(StepDescBuilder &b) const override { b.relu(); }
    std::string name() const override { return "relu"; }

  protected:
    Tensor backwardImpl(const Tensor &grad,
                        MercuryContext *ctx) override;

  private:
    Tensor lastInput_;
};

/** 2x2 stride-2 max pooling. */
class MaxPoolLayer : public Layer
{
  public:
    Tensor forward(const Tensor &x, MercuryContext *ctx) override;
    void describeStep(StepDescBuilder &b) const override
    {
        b.maxPool2x2();
    }
    std::string name() const override { return "maxpool2x2"; }

  protected:
    Tensor backwardImpl(const Tensor &grad,
                        MercuryContext *ctx) override;

  private:
    Tensor lastInput_;
    std::vector<int32_t> argmax_;
};

/** Global average pooling (N, C, H, W) -> (N, C). */
class GlobalAvgPoolLayer : public Layer
{
  public:
    Tensor forward(const Tensor &x, MercuryContext *ctx) override;
    std::string name() const override { return "gap"; }

  protected:
    Tensor backwardImpl(const Tensor &grad,
                        MercuryContext *ctx) override;

  private:
    Tensor lastInput_;
};

/** Flatten (N, C, H, W) -> (N, C*H*W). */
class FlattenLayer : public Layer
{
  public:
    Tensor forward(const Tensor &x, MercuryContext *ctx) override;
    std::string name() const override { return "flatten"; }

  protected:
    Tensor backwardImpl(const Tensor &grad,
                        MercuryContext *ctx) override;

  private:
    std::vector<int64_t> lastShape_;
};

} // namespace mercury

#endif // MERCURY_NN_LAYERS_HPP
