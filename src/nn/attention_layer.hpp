/**
 * @file
 * Trainable self-attention layer using the paper's simplified
 * formulation (§III-C4): for each sample, Y = (X Xt) X where X is the
 * (seq_len, embed_dim) token matrix. No trainable parameters — the
 * attention weights are data-dependent — but gradients flow through
 * all three X factors.
 */

#ifndef MERCURY_NN_ATTENTION_LAYER_HPP
#define MERCURY_NN_ATTENTION_LAYER_HPP

#include "nn/layers.hpp"

namespace mercury {

/** Self-attention over (N, seq_len * embed_dim) flattened samples. */
class SelfAttentionLayer : public Layer
{
  public:
    SelfAttentionLayer(int64_t seq_len, int64_t embed_dim,
                       uint64_t layer_id, float scale = 1.0f);

    Tensor forward(const Tensor &x, MercuryContext *ctx) override;
    void describeStep(StepDescBuilder &b) const override
    {
        b.attention(layerId_, seqLen_, embedDim_);
    }
    std::string name() const override { return "self-attention"; }

  protected:
    Tensor backwardImpl(const Tensor &grad,
                        MercuryContext *ctx) override;

  private:
    int64_t seqLen_;
    int64_t embedDim_;
    uint64_t layerId_;
    float scale_; ///< 1/seq_len-style normalization for stability
    Tensor lastInput_;
    // Forward-captured detection outcomes, one pass per sample, for
    // the backward replay (§III-C2).
    SignatureRecord record_;
    bool recordValid_ = false;
};

} // namespace mercury

#endif // MERCURY_NN_ATTENTION_LAYER_HPP
