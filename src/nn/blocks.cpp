#include "nn/blocks.hpp"

#include "util/logging.hpp"

namespace mercury {

// ---------------------------------------------------------------------
// ResidualBlock
// ---------------------------------------------------------------------

ResidualBlock::ResidualBlock(int64_t c_in, int64_t c_out, int64_t stride,
                             Rng &rng, uint64_t layer_id)
{
    conv1_ = std::make_unique<Conv2dLayer>(c_in, c_out, 3, stride, 1, rng,
                                           layer_id * 16 + 0);
    relu1_ = std::make_unique<ReluLayer>();
    conv2_ = std::make_unique<Conv2dLayer>(c_out, c_out, 3, 1, 1, rng,
                                           layer_id * 16 + 1);
    if (c_in != c_out || stride != 1) {
        proj_ = std::make_unique<Conv2dLayer>(c_in, c_out, 1, stride, 0,
                                              rng, layer_id * 16 + 2);
    }
}

Tensor
ResidualBlock::forward(const Tensor &x, MercuryContext *ctx)
{
    Tensor body = conv2_->forward(
        relu1_->forward(conv1_->forward(x, ctx), ctx), ctx);
    Tensor skip = proj_ ? proj_->forward(x, ctx) : x;
    if (body.shape() != skip.shape())
        panic("residual shape mismatch: ", body.shapeStr(), " vs ",
              skip.shapeStr());
    for (int64_t i = 0; i < body.numel(); ++i)
        body[i] += skip[i];
    lastSum_ = body;
    return reluForward(body);
}

Tensor
ResidualBlock::backwardImpl(const Tensor &grad, MercuryContext *ctx)
{
    Tensor g = reluBackward(lastSum_, grad);
    Tensor g_body = conv1_->backward(
        relu1_->backward(conv2_->backward(g, ctx), ctx), ctx);
    Tensor g_skip = proj_ ? proj_->backward(g, ctx) : g;
    for (int64_t i = 0; i < g_body.numel(); ++i)
        g_body[i] += g_skip[i];
    return g_body;
}

void
ResidualBlock::step(float lr)
{
    conv1_->step(lr);
    conv2_->step(lr);
    if (proj_)
        proj_->step(lr);
}

uint64_t
ResidualBlock::paramCount() const
{
    return conv1_->paramCount() + conv2_->paramCount() +
           (proj_ ? proj_->paramCount() : 0);
}

// ---------------------------------------------------------------------
// ConcatBlock
// ---------------------------------------------------------------------

ConcatBlock::ConcatBlock(std::vector<Branch> branches)
    : branches_(std::move(branches))
{
    if (branches_.empty())
        fatal("ConcatBlock needs at least one branch");
}

Tensor
ConcatBlock::forward(const Tensor &x, MercuryContext *ctx)
{
    branchOutputs_.clear();
    int64_t total_c = 0;
    for (auto &branch : branches_) {
        Tensor y = x;
        for (auto &layer : branch)
            y = layer->forward(y, ctx);
        if (y.rank() != 4)
            panic("concat branches must produce rank-4 outputs");
        total_c += y.dim(1);
        branchOutputs_.push_back(std::move(y));
    }
    const Tensor &first = branchOutputs_.front();
    for (const Tensor &t : branchOutputs_) {
        if (t.dim(0) != first.dim(0) || t.dim(2) != first.dim(2) ||
            t.dim(3) != first.dim(3)) {
            panic("concat branch spatial mismatch: ", t.shapeStr(),
                  " vs ", first.shapeStr());
        }
    }

    Tensor out({first.dim(0), total_c, first.dim(2), first.dim(3)});
    int64_t c_off = 0;
    for (const Tensor &t : branchOutputs_) {
        for (int64_t n = 0; n < t.dim(0); ++n)
            for (int64_t c = 0; c < t.dim(1); ++c)
                for (int64_t h = 0; h < t.dim(2); ++h)
                    for (int64_t w = 0; w < t.dim(3); ++w)
                        out.at4(n, c_off + c, h, w) = t.at4(n, c, h, w);
        c_off += t.dim(1);
    }
    return out;
}

Tensor
ConcatBlock::backwardImpl(const Tensor &grad, MercuryContext *ctx)
{
    Tensor grad_in;
    int64_t c_off = 0;
    for (size_t b = 0; b < branches_.size(); ++b) {
        const Tensor &out = branchOutputs_[b];
        Tensor g({out.dim(0), out.dim(1), out.dim(2), out.dim(3)});
        for (int64_t n = 0; n < out.dim(0); ++n)
            for (int64_t c = 0; c < out.dim(1); ++c)
                for (int64_t h = 0; h < out.dim(2); ++h)
                    for (int64_t w = 0; w < out.dim(3); ++w)
                        g.at4(n, c, h, w) = grad.at4(n, c_off + c, h, w);
        c_off += out.dim(1);

        // Backward through the branch in reverse order.
        for (auto it = branches_[b].rbegin(); it != branches_[b].rend();
             ++it) {
            g = (*it)->backward(g, ctx);
        }
        if (grad_in.numel() == 0) {
            grad_in = g;
        } else {
            for (int64_t i = 0; i < grad_in.numel(); ++i)
                grad_in[i] += g[i];
        }
    }
    return grad_in;
}

void
ConcatBlock::step(float lr)
{
    for (auto &branch : branches_)
        for (auto &layer : branch)
            layer->step(lr);
}

uint64_t
ConcatBlock::paramCount() const
{
    uint64_t n = 0;
    for (const auto &branch : branches_)
        for (const auto &layer : branch)
            n += layer->paramCount();
    return n;
}

// ---------------------------------------------------------------------
// SequentialBlock
// ---------------------------------------------------------------------

SequentialBlock::SequentialBlock(
    std::vector<std::unique_ptr<Layer>> layers)
    : layers_(std::move(layers))
{
    if (layers_.empty())
        fatal("SequentialBlock needs at least one layer");
}

Tensor
SequentialBlock::forward(const Tensor &x, MercuryContext *ctx)
{
    Tensor y = x;
    for (auto &layer : layers_)
        y = layer->forward(y, ctx);
    return y;
}

Tensor
SequentialBlock::backwardImpl(const Tensor &grad, MercuryContext *ctx)
{
    Tensor g = grad;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g, ctx);
    return g;
}

void
SequentialBlock::step(float lr)
{
    for (auto &layer : layers_)
        layer->step(lr);
}

uint64_t
SequentialBlock::paramCount() const
{
    uint64_t n = 0;
    for (const auto &layer : layers_)
        n += layer->paramCount();
    return n;
}

// ---------------------------------------------------------------------
// InvertedResidualBlock
// ---------------------------------------------------------------------

InvertedResidualBlock::InvertedResidualBlock(int64_t c_in, int64_t c_out,
                                             int64_t expand,
                                             int64_t stride, Rng &rng,
                                             uint64_t layer_id)
    : skip_(stride == 1 && c_in == c_out)
{
    const int64_t mid = c_in * expand;
    expand_ = std::make_unique<Conv2dLayer>(c_in, mid, 1, 1, 0, rng,
                                            layer_id * 16 + 0);
    relu1_ = std::make_unique<ReluLayer>();
    depthwise_ = std::make_unique<Conv2dLayer>(mid, mid, 3, stride, 1,
                                               rng, layer_id * 16 + 1,
                                               /*groups=*/mid);
    relu2_ = std::make_unique<ReluLayer>();
    // Linear bottleneck: no activation after the projection (the
    // MobileNet-V2 structure the model zoo's layer tables mirror).
    project_ = std::make_unique<Conv2dLayer>(mid, c_out, 1, 1, 0, rng,
                                             layer_id * 16 + 2);
}

Tensor
InvertedResidualBlock::forward(const Tensor &x, MercuryContext *ctx)
{
    Tensor body = project_->forward(
        relu2_->forward(depthwise_->forward(
                            relu1_->forward(expand_->forward(x, ctx), ctx),
                            ctx),
                        ctx),
        ctx);
    if (skip_) {
        if (body.shape() != x.shape())
            panic("inverted residual shape mismatch: ", body.shapeStr(),
                  " vs ", x.shapeStr());
        for (int64_t i = 0; i < body.numel(); ++i)
            body[i] += x[i];
    }
    return body;
}

Tensor
InvertedResidualBlock::backwardImpl(const Tensor &grad,
                                    MercuryContext *ctx)
{
    Tensor g_body = expand_->backward(
        relu1_->backward(depthwise_->backward(
                             relu2_->backward(project_->backward(grad,
                                                                 ctx),
                                              ctx),
                             ctx),
                         ctx),
        ctx);
    if (skip_) {
        for (int64_t i = 0; i < g_body.numel(); ++i)
            g_body[i] += grad[i];
    }
    return g_body;
}

void
InvertedResidualBlock::step(float lr)
{
    expand_->step(lr);
    depthwise_->step(lr);
    project_->step(lr);
}

uint64_t
InvertedResidualBlock::paramCount() const
{
    return expand_->paramCount() + depthwise_->paramCount() +
           project_->paramCount();
}

// ---------------------------------------------------------------------
// Fire module
// ---------------------------------------------------------------------

std::unique_ptr<Layer>
makeFireModule(int64_t c_in, int64_t squeeze, int64_t expand, Rng &rng,
               uint64_t layer_id)
{
    ConcatBlock::Branch b1;
    b1.push_back(std::make_unique<Conv2dLayer>(squeeze, expand, 1, 1, 0,
                                               rng, layer_id * 16 + 4));
    b1.push_back(std::make_unique<ReluLayer>());
    ConcatBlock::Branch b2;
    b2.push_back(std::make_unique<Conv2dLayer>(squeeze, expand, 3, 1, 1,
                                               rng, layer_id * 16 + 5));
    b2.push_back(std::make_unique<ReluLayer>());
    std::vector<ConcatBlock::Branch> branches;
    branches.push_back(std::move(b1));
    branches.push_back(std::move(b2));

    std::vector<std::unique_ptr<Layer>> seq;
    seq.push_back(std::make_unique<Conv2dLayer>(c_in, squeeze, 1, 1, 0,
                                                rng, layer_id * 16 + 3));
    seq.push_back(std::make_unique<ReluLayer>());
    seq.push_back(std::make_unique<ConcatBlock>(std::move(branches)));
    return std::make_unique<SequentialBlock>(std::move(seq));
}

} // namespace mercury
