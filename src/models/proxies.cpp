#include "models/proxies.hpp"

#include "nn/attention_layer.hpp"
#include "util/logging.hpp"

namespace mercury {

namespace {

using LayerPtr = std::unique_ptr<Layer>;

void
addConvRelu(Network &net, int64_t ci, int64_t co, Rng &rng, uint64_t id,
            int64_t k = 3, int64_t stride = 1)
{
    net.add(std::make_unique<Conv2dLayer>(ci, co, k, stride, k / 2, rng,
                                          id));
    net.add(std::make_unique<ReluLayer>());
}

/** Plain conv stack: `convs` conv layers per stage, two stages. */
std::unique_ptr<Network>
vggLikeProxy(int convs_per_stage, Rng &rng, int num_classes)
{
    auto net = std::make_unique<Network>();
    int64_t c = kProxyImageChannels;
    uint64_t id = 1;
    for (int i = 0; i < convs_per_stage; ++i) {
        addConvRelu(*net, c, 12, rng, id++);
        c = 12;
    }
    net->add(std::make_unique<MaxPoolLayer>());
    for (int i = 0; i < convs_per_stage; ++i) {
        addConvRelu(*net, c, 24, rng, id++);
        c = 24;
    }
    net->add(std::make_unique<MaxPoolLayer>());
    net->add(std::make_unique<FlattenLayer>());
    net->add(std::make_unique<DenseLayer>(24 * 3 * 3, num_classes, rng,
                                          id++));
    return net;
}

std::unique_ptr<Network>
resnetLikeProxy(int blocks, Rng &rng, int num_classes)
{
    auto net = std::make_unique<Network>();
    uint64_t id = 1;
    addConvRelu(*net, kProxyImageChannels, 12, rng, id++);
    int64_t c = 12;
    for (int b = 0; b < blocks; ++b) {
        const int64_t c_out = b == blocks - 1 ? 24 : 12;
        const int64_t stride = b == blocks - 1 ? 2 : 1;
        net->add(std::make_unique<ResidualBlock>(c, c_out, stride, rng,
                                                 id++));
        c = c_out;
    }
    net->add(std::make_unique<GlobalAvgPoolLayer>());
    net->add(std::make_unique<DenseLayer>(c, num_classes, rng, id++));
    return net;
}

std::unique_ptr<Network>
inceptionLikeProxy(int modules, Rng &rng, int num_classes)
{
    auto net = std::make_unique<Network>();
    uint64_t id = 1;
    addConvRelu(*net, kProxyImageChannels, 12, rng, id++);
    int64_t c = 12;
    for (int mod = 0; mod < modules; ++mod) {
        ConcatBlock::Branch b1, b2, b3;
        b1.push_back(std::make_unique<Conv2dLayer>(c, 6, 1, 1, 0, rng,
                                                   id * 16 + 1));
        b1.push_back(std::make_unique<ReluLayer>());
        b2.push_back(std::make_unique<Conv2dLayer>(c, 4, 1, 1, 0, rng,
                                                   id * 16 + 2));
        b2.push_back(std::make_unique<ReluLayer>());
        b2.push_back(std::make_unique<Conv2dLayer>(4, 6, 3, 1, 1, rng,
                                                   id * 16 + 3));
        b2.push_back(std::make_unique<ReluLayer>());
        b3.push_back(std::make_unique<Conv2dLayer>(c, 4, 5, 1, 2, rng,
                                                   id * 16 + 4));
        b3.push_back(std::make_unique<ReluLayer>());
        std::vector<ConcatBlock::Branch> branches;
        branches.push_back(std::move(b1));
        branches.push_back(std::move(b2));
        branches.push_back(std::move(b3));
        net->add(std::make_unique<ConcatBlock>(std::move(branches)));
        c = 16;
        ++id;
    }
    net->add(std::make_unique<GlobalAvgPoolLayer>());
    net->add(std::make_unique<DenseLayer>(c, num_classes, rng, id * 16));
    return net;
}

std::unique_ptr<Network>
mobilenetLikeProxy(Rng &rng, int num_classes)
{
    auto net = std::make_unique<Network>();
    uint64_t id = 1;
    addConvRelu(*net, kProxyImageChannels, 12, rng, id++);
    // Two MobileNet-V2 inverted residual blocks (expand 1x1,
    // depthwise 3x3, linear project): the first keeps shape and
    // exercises the identity skip, the second changes width. All
    // three reuse passes flow through the depthwise convolutions.
    net->add(std::make_unique<InvertedResidualBlock>(12, 12, 2, 1, rng,
                                                     id++));
    net->add(std::make_unique<InvertedResidualBlock>(12, 16, 2, 1, rng,
                                                     id++));
    net->add(std::make_unique<MaxPoolLayer>());
    net->add(std::make_unique<FlattenLayer>());
    net->add(std::make_unique<DenseLayer>(16 * 6 * 6, num_classes, rng,
                                          id++));
    return net;
}

std::unique_ptr<Network>
squeezenetLikeProxy(Rng &rng, int num_classes)
{
    auto net = std::make_unique<Network>();
    uint64_t id = 1;
    addConvRelu(*net, kProxyImageChannels, 12, rng, id++);
    net->add(makeFireModule(12, 4, 8, rng, id++)); // -> 16 channels
    net->add(std::make_unique<GlobalAvgPoolLayer>());
    net->add(std::make_unique<DenseLayer>(16, num_classes, rng, id++));
    return net;
}

std::unique_ptr<Network>
transformerLikeProxy(Rng &rng, int num_classes)
{
    auto net = std::make_unique<Network>();
    uint64_t id = 1;
    const float scale =
        1.0f / static_cast<float>(kProxySeqLen); // stability
    net->add(std::make_unique<SelfAttentionLayer>(
        kProxySeqLen, kProxyEmbedDim, id++, scale));
    net->add(std::make_unique<ReluLayer>());
    net->add(std::make_unique<DenseLayer>(kProxySeqLen * kProxyEmbedDim,
                                          32, rng, id++));
    net->add(std::make_unique<ReluLayer>());
    net->add(std::make_unique<DenseLayer>(32, num_classes, rng, id++));
    return net;
}

} // namespace

std::vector<std::string>
proxyFamilies()
{
    return {"AlexNet",   "GoogleNet",  "ResNet50",    "ResNet101",
            "ResNet152", "VGG-13",     "VGG-16",      "VGG-19",
            "Incep-V4",  "MobNet-V2",  "Squeeze1.0",  "Transformer"};
}

bool
proxyUsesTokens(const std::string &family)
{
    return family == "Transformer";
}

std::unique_ptr<Network>
buildProxy(const std::string &family, Rng &rng, int num_classes)
{
    if (family == "AlexNet")
        return vggLikeProxy(1, rng, num_classes);
    if (family == "VGG-13")
        return vggLikeProxy(2, rng, num_classes);
    if (family == "VGG-16")
        return vggLikeProxy(3, rng, num_classes);
    if (family == "VGG-19")
        return vggLikeProxy(4, rng, num_classes);
    if (family == "ResNet50")
        return resnetLikeProxy(2, rng, num_classes);
    if (family == "ResNet101")
        return resnetLikeProxy(3, rng, num_classes);
    if (family == "ResNet152")
        return resnetLikeProxy(4, rng, num_classes);
    if (family == "GoogleNet")
        return inceptionLikeProxy(1, rng, num_classes);
    if (family == "Incep-V4")
        return inceptionLikeProxy(2, rng, num_classes);
    if (family == "MobNet-V2")
        return mobilenetLikeProxy(rng, num_classes);
    if (family == "Squeeze1.0")
        return squeezenetLikeProxy(rng, num_classes);
    if (family == "Transformer")
        return transformerLikeProxy(rng, num_classes);
    fatal("unknown proxy family '", family, "'");
}

} // namespace mercury
