#include "models/model_zoo.hpp"

#include "util/logging.hpp"

namespace mercury {

namespace {

constexpr int64_t kClasses = 80; // the paper uses 80 ImageNet classes

/** Shorthand builders keeping the tables readable. */
LayerShape
C(const std::string &name, int64_t ci, int64_t co, int64_t hw, int64_t k,
  int64_t s = 1, int64_t p = -1, int64_t groups = 1)
{
    if (p < 0)
        p = k / 2; // "same" padding by default
    return LayerShape::conv(name, ci, co, hw, hw, k, s, p, groups);
}

LayerShape
P(const std::string &name, int64_t c, int64_t hw, int64_t k, int64_t s)
{
    return LayerShape::pool(name, c, hw, hw, k, s);
}

LayerShape
F(const std::string &name, int64_t in, int64_t out)
{
    return LayerShape::fc(name, in, out);
}

/** VGG-style feature extractor: conv counts per 64..512 stage. */
std::vector<LayerShape>
vggFeatures(const std::vector<int> &stage_convs)
{
    std::vector<LayerShape> l;
    const int64_t widths[5] = {64, 128, 256, 512, 512};
    int64_t hw = 224;
    int64_t c_in = 3;
    int conv_id = 0;
    for (int stage = 0; stage < 5; ++stage) {
        const int64_t w = widths[stage];
        for (int i = 0; i < stage_convs[static_cast<size_t>(stage)]; ++i) {
            l.push_back(C("conv" + std::to_string(++conv_id), c_in, w, hw,
                          3));
            c_in = w;
        }
        l.push_back(P("pool" + std::to_string(stage + 1), w, hw, 2, 2));
        hw /= 2;
    }
    return l;
}

std::vector<LayerShape>
vggHead(std::vector<LayerShape> l)
{
    l.push_back(F("fc1", 512 * 7 * 7, 4096));
    l.push_back(F("fc2", 4096, 4096));
    l.push_back(F("fc3", 4096, kClasses));
    return l;
}

/** ResNet bottleneck stage: n blocks of [1x1, 3x3, 1x1] convs. */
void
resnetStage(std::vector<LayerShape> &l, const std::string &prefix,
            int64_t &c_in, int64_t mid, int64_t &hw, int blocks,
            int64_t stride)
{
    const int64_t out = mid * 4;
    for (int b = 0; b < blocks; ++b) {
        const int64_t s = b == 0 ? stride : 1;
        const std::string base = prefix + "." + std::to_string(b);
        l.push_back(C(base + ".conv1", c_in, mid, hw, 1, 1, 0));
        const int64_t hw_out = s == 2 ? hw / 2 : hw;
        l.push_back(C(base + ".conv2", mid, mid, hw, 3, s));
        l.push_back(C(base + ".conv3", mid, out, hw_out, 1, 1, 0));
        if (b == 0) {
            l.push_back(
                C(base + ".downsample", c_in, out, hw, 1, s, 0));
        }
        c_in = out;
        hw = hw_out;
    }
}

ModelConfig
resnet(const std::string &name, int s2, int s3, int s4, int s5)
{
    ModelConfig m;
    m.name = name;
    m.layers.push_back(C("conv1", 3, 64, 224, 7, 2));
    m.layers.push_back(P("pool1", 64, 112, 3, 2));
    int64_t c_in = 64;
    int64_t hw = 56;
    resnetStage(m.layers, "layer1", c_in, 64, hw, s2, 1);
    resnetStage(m.layers, "layer2", c_in, 128, hw, s3, 2);
    resnetStage(m.layers, "layer3", c_in, 256, hw, s4, 2);
    resnetStage(m.layers, "layer4", c_in, 512, hw, s5, 2);
    m.layers.push_back(F("fc", 2048, kClasses));
    return m;
}

/** GoogleNet inception module expanded into its branch convs. */
void
inceptionModule(std::vector<LayerShape> &l, const std::string &name,
                int64_t c_in, int64_t hw, int64_t c1, int64_t c3r,
                int64_t c3, int64_t c5r, int64_t c5, int64_t cp)
{
    l.push_back(C(name + ".b1", c_in, c1, hw, 1, 1, 0));
    l.push_back(C(name + ".b2a", c_in, c3r, hw, 1, 1, 0));
    l.push_back(C(name + ".b2b", c3r, c3, hw, 3));
    l.push_back(C(name + ".b3a", c_in, c5r, hw, 1, 1, 0));
    l.push_back(C(name + ".b3b", c5r, c5, hw, 5));
    l.push_back(C(name + ".b4", c_in, cp, hw, 1, 1, 0));
}

/** MobileNet-V2 inverted residual: expand, depthwise, project. */
void
invertedResidual(std::vector<LayerShape> &l, const std::string &name,
                 int64_t &c_in, int64_t c_out, int64_t &hw, int64_t t,
                 int64_t stride)
{
    const int64_t mid = c_in * t;
    if (t != 1)
        l.push_back(C(name + ".expand", c_in, mid, hw, 1, 1, 0));
    const int64_t hw_out = stride == 2 ? hw / 2 : hw;
    l.push_back(C(name + ".dw", mid, mid, hw, 3, stride, 1, mid));
    l.push_back(C(name + ".project", mid, c_out, hw_out, 1, 1, 0));
    c_in = c_out;
    hw = hw_out;
}

} // namespace

uint64_t
ModelConfig::totalMacs(int64_t batch) const
{
    uint64_t n = 0;
    for (const auto &l : layers)
        if (l.type != LayerType::Pool)
            n += l.macCount(batch);
    return n;
}

int
ModelConfig::reusableLayers() const
{
    int n = 0;
    for (const auto &l : layers)
        n += l.reusable();
    return n;
}

ModelConfig
alexnet()
{
    ModelConfig m;
    m.name = "AlexNet";
    m.layers = {
        LayerShape::conv("conv1", 3, 96, 227, 227, 11, 4, 0),
        P("pool1", 96, 55, 3, 2),
        C("conv2", 96, 256, 27, 5),
        P("pool2", 256, 27, 3, 2),
        C("conv3", 256, 384, 13, 3),
        C("conv4", 384, 384, 13, 3),
        C("conv5", 384, 256, 13, 3),
        P("pool5", 256, 13, 3, 2),
        F("fc6", 256 * 6 * 6, 4096),
        F("fc7", 4096, 4096),
        F("fc8", 4096, kClasses),
    };
    return m;
}

ModelConfig
vgg13()
{
    ModelConfig m;
    m.name = "VGG-13";
    m.layers = vggHead(vggFeatures({2, 2, 2, 2, 2}));
    return m;
}

ModelConfig
vgg16()
{
    ModelConfig m;
    m.name = "VGG-16";
    m.layers = vggHead(vggFeatures({2, 2, 3, 3, 3}));
    return m;
}

ModelConfig
vgg19()
{
    ModelConfig m;
    m.name = "VGG-19";
    m.layers = vggHead(vggFeatures({2, 2, 4, 4, 4}));
    return m;
}

ModelConfig
resnet50()
{
    return resnet("ResNet50", 3, 4, 6, 3);
}

ModelConfig
resnet101()
{
    return resnet("ResNet101", 3, 4, 23, 3);
}

ModelConfig
resnet152()
{
    return resnet("ResNet152", 3, 8, 36, 3);
}

ModelConfig
googlenet()
{
    ModelConfig m;
    m.name = "GoogleNet";
    auto &l = m.layers;
    l.push_back(C("conv1", 3, 64, 224, 7, 2));
    l.push_back(P("pool1", 64, 112, 3, 2));
    l.push_back(C("conv2a", 64, 64, 56, 1, 1, 0));
    l.push_back(C("conv2b", 64, 192, 56, 3));
    l.push_back(P("pool2", 192, 56, 3, 2));
    inceptionModule(l, "3a", 192, 28, 64, 96, 128, 16, 32, 32);
    inceptionModule(l, "3b", 256, 28, 128, 128, 192, 32, 96, 64);
    l.push_back(P("pool3", 480, 28, 3, 2));
    inceptionModule(l, "4a", 480, 14, 192, 96, 208, 16, 48, 64);
    inceptionModule(l, "4b", 512, 14, 160, 112, 224, 24, 64, 64);
    inceptionModule(l, "4c", 512, 14, 128, 128, 256, 24, 64, 64);
    inceptionModule(l, "4d", 512, 14, 112, 144, 288, 32, 64, 64);
    inceptionModule(l, "4e", 528, 14, 256, 160, 320, 32, 128, 128);
    l.push_back(P("pool4", 832, 14, 3, 2));
    inceptionModule(l, "5a", 832, 7, 256, 160, 320, 32, 128, 128);
    inceptionModule(l, "5b", 832, 7, 384, 192, 384, 48, 128, 128);
    l.push_back(F("fc", 1024, kClasses));
    return m;
}

ModelConfig
inceptionV4()
{
    ModelConfig m;
    m.name = "Incep-V4";
    auto &l = m.layers;
    // Stem (299x299 input as in the original).
    l.push_back(LayerShape::conv("stem1", 3, 32, 299, 299, 3, 2, 0));
    l.push_back(C("stem2", 32, 32, 149, 3, 1, 0));
    l.push_back(C("stem3", 32, 64, 147, 3));
    l.push_back(P("stempool", 64, 147, 3, 2));
    l.push_back(C("stem4", 64, 96, 73, 3, 2, 0));
    l.push_back(C("stem5a", 96, 64, 36, 1, 1, 0));
    l.push_back(C("stem5b", 64, 96, 36, 3, 1, 0));
    // 4 x Inception-A at 34x34, 384 channels.
    for (int i = 0; i < 4; ++i) {
        const std::string n = "A" + std::to_string(i);
        l.push_back(C(n + ".b1", 384, 96, 34, 1, 1, 0));
        l.push_back(C(n + ".b2a", 384, 64, 34, 1, 1, 0));
        l.push_back(C(n + ".b2b", 64, 96, 34, 3));
        l.push_back(C(n + ".b3a", 384, 64, 34, 1, 1, 0));
        l.push_back(C(n + ".b3b", 64, 96, 34, 3));
        l.push_back(C(n + ".b3c", 96, 96, 34, 3));
        l.push_back(C(n + ".pool", 384, 96, 34, 1, 1, 0));
    }
    // 7 x Inception-B at 17x17, 1024 channels.
    for (int i = 0; i < 7; ++i) {
        const std::string n = "B" + std::to_string(i);
        l.push_back(C(n + ".b1", 1024, 384, 17, 1, 1, 0));
        l.push_back(C(n + ".b2a", 1024, 192, 17, 1, 1, 0));
        l.push_back(C(n + ".b2b", 192, 224, 17, 7));
        l.push_back(C(n + ".b2c", 224, 256, 17, 7));
        l.push_back(C(n + ".b3a", 1024, 192, 17, 1, 1, 0));
        l.push_back(C(n + ".b3b", 192, 224, 17, 7));
        l.push_back(C(n + ".b3c", 224, 256, 17, 7));
        l.push_back(C(n + ".pool", 1024, 128, 17, 1, 1, 0));
    }
    // 3 x Inception-C at 8x8, 1536 channels.
    for (int i = 0; i < 3; ++i) {
        const std::string n = "C" + std::to_string(i);
        l.push_back(C(n + ".b1", 1536, 256, 8, 1, 1, 0));
        l.push_back(C(n + ".b2a", 1536, 384, 8, 1, 1, 0));
        l.push_back(C(n + ".b2b", 384, 256, 8, 3));
        l.push_back(C(n + ".b3a", 1536, 384, 8, 1, 1, 0));
        l.push_back(C(n + ".b3b", 384, 512, 8, 3));
        l.push_back(C(n + ".b3c", 512, 256, 8, 3));
        l.push_back(C(n + ".pool", 1536, 256, 8, 1, 1, 0));
    }
    l.push_back(F("fc", 1536, kClasses));
    return m;
}

ModelConfig
mobilenetV2()
{
    ModelConfig m;
    m.name = "MobNet-V2";
    auto &l = m.layers;
    l.push_back(C("conv1", 3, 32, 224, 3, 2));
    int64_t c_in = 32;
    int64_t hw = 112;
    int block = 0;
    // (expansion t, output channels, repeats, first stride).
    const int64_t cfg[7][4] = {{1, 16, 1, 1},  {6, 24, 2, 2},
                               {6, 32, 3, 2},  {6, 64, 4, 2},
                               {6, 96, 3, 1},  {6, 160, 3, 2},
                               {6, 320, 1, 1}};
    for (const auto &row : cfg) {
        for (int64_t r = 0; r < row[2]; ++r) {
            invertedResidual(l, "ir" + std::to_string(block++), c_in,
                             row[1], hw, row[0], r == 0 ? row[3] : 1);
        }
    }
    l.push_back(C("conv_last", 320, 1280, 7, 1, 1, 0));
    l.push_back(F("fc", 1280, kClasses));
    return m;
}

ModelConfig
squeezenet()
{
    ModelConfig m;
    m.name = "Squeeze1.0";
    auto &l = m.layers;
    l.push_back(LayerShape::conv("conv1", 3, 96, 224, 224, 7, 2, 0));
    l.push_back(P("pool1", 96, 109, 3, 2));
    // fire(name, c_in, squeeze, expand) at the given resolution.
    auto fire = [&](const std::string &n, int64_t ci, int64_t sq,
                    int64_t ex, int64_t hw) {
        l.push_back(C(n + ".squeeze", ci, sq, hw, 1, 1, 0));
        l.push_back(C(n + ".exp1", sq, ex, hw, 1, 1, 0));
        l.push_back(C(n + ".exp3", sq, ex, hw, 3));
    };
    fire("fire2", 96, 16, 64, 54);
    fire("fire3", 128, 16, 64, 54);
    fire("fire4", 128, 32, 128, 54);
    l.push_back(P("pool4", 256, 54, 3, 2));
    fire("fire5", 256, 32, 128, 26);
    fire("fire6", 256, 48, 192, 26);
    fire("fire7", 384, 48, 192, 26);
    fire("fire8", 384, 64, 256, 26);
    l.push_back(P("pool8", 512, 26, 3, 2));
    fire("fire9", 512, 64, 256, 12);
    l.push_back(C("conv10", 512, kClasses, 12, 1, 1, 0));
    return m;
}

ModelConfig
transformer()
{
    // Multi30k-scale encoder/decoder: seq 32, embed 512, 6+6 layers
    // of self-attention plus a two-layer position-wise FFN.
    ModelConfig m;
    m.name = "Transformer";
    auto &l = m.layers;
    for (int i = 0; i < 12; ++i) {
        const std::string n =
            (i < 6 ? "enc" : "dec") + std::to_string(i % 6);
        l.push_back(LayerShape::attention(n + ".attn", 32, 512));
        l.push_back(F(n + ".ffn1", 512, 2048));
        l.push_back(F(n + ".ffn2", 2048, 512));
    }
    l.push_back(F("generator", 512, 8000)); // vocabulary projection
    return m;
}

std::vector<ModelConfig>
allModels()
{
    return {alexnet(),     googlenet(),  resnet50(),  resnet101(),
            resnet152(),   vgg13(),      vgg16(),     vgg19(),
            inceptionV4(), mobilenetV2(), squeezenet(), transformer()};
}

std::vector<ModelConfig>
cnnModels()
{
    return {alexnet(),     googlenet(),  resnet50(),  resnet101(),
            resnet152(),   vgg13(),      vgg16(),     vgg19(),
            inceptionV4(), mobilenetV2(), squeezenet()};
}

} // namespace mercury
