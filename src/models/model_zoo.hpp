/**
 * @file
 * Layer tables for the twelve networks of the paper's evaluation
 * (§VI): AlexNet, GoogleNet, VGG13/16/19, ResNet50/101/152,
 * Inception-V4, MobileNet-V2, SqueezeNet-1.0, and a Transformer.
 *
 * CNNs use 224x224x3 inputs and an 80-class head (the paper uses 80
 * ImageNet classes); the transformer uses Multi30k-scale sequence
 * dimensions. Branchy architectures (GoogleNet, Inception-V4) are
 * expanded into flat per-branch convolution lists — a single
 * accelerator executes branches sequentially, so total cycles are
 * the sum either way. Inception-V4's channel counts are a close
 * approximation of the published architecture.
 */

#ifndef MERCURY_MODELS_MODEL_ZOO_HPP
#define MERCURY_MODELS_MODEL_ZOO_HPP

#include <string>
#include <vector>

#include "sim/layer_shape.hpp"

namespace mercury {

/** A named network described as a flat layer list. */
struct ModelConfig
{
    std::string name;
    std::vector<LayerShape> layers;

    /** Forward-pass MAC count for a batch. */
    uint64_t totalMacs(int64_t batch) const;

    /** Number of layers MERCURY applies reuse to. */
    int reusableLayers() const;
};

ModelConfig alexnet();
ModelConfig googlenet();
ModelConfig vgg13();
ModelConfig vgg16();
ModelConfig vgg19();
ModelConfig resnet50();
ModelConfig resnet101();
ModelConfig resnet152();
ModelConfig inceptionV4();
ModelConfig mobilenetV2();
ModelConfig squeezenet();
ModelConfig transformer();

/** All twelve models in the paper's presentation order. */
std::vector<ModelConfig> allModels();

/** The eleven CNNs (Fig. 18 excludes the transformer). */
std::vector<ModelConfig> cnnModels();

} // namespace mercury

#endif // MERCURY_MODELS_MODEL_ZOO_HPP
