/**
 * @file
 * Trainable scaled-down proxies of the twelve model families, used by
 * the accuracy experiments (paper Fig. 13). Full-size ImageNet
 * training is out of scope for a CPU-only reproduction; each proxy
 * keeps the family's characteristic layer types (plain conv stacks,
 * residual adds, branch+concat, depthwise separable convs, fire
 * modules, self-attention) so the MERCURY reuse perturbation acts on
 * the same computation structures.
 */

#ifndef MERCURY_MODELS_PROXIES_HPP
#define MERCURY_MODELS_PROXIES_HPP

#include <memory>
#include <string>
#include <vector>

#include "nn/blocks.hpp"
#include "nn/network.hpp"

namespace mercury {

/** Proxy image geometry (channels x height x width). */
constexpr int64_t kProxyImageHw = 12;
constexpr int64_t kProxyImageChannels = 3;

/** Proxy token geometry for the transformer family. */
constexpr int64_t kProxySeqLen = 8;
constexpr int64_t kProxyEmbedDim = 16;

/** The twelve family names, matching the model-zoo names. */
std::vector<std::string> proxyFamilies();

/** True when the family consumes token sequences, not images. */
bool proxyUsesTokens(const std::string &family);

/**
 * Build a trainable proxy network for a family.
 *
 * @param family one of proxyFamilies()
 * @param rng    weight-initialization stream
 * @param num_classes classifier width
 */
std::unique_ptr<Network> buildProxy(const std::string &family, Rng &rng,
                                    int num_classes = 10);

} // namespace mercury

#endif // MERCURY_MODELS_PROXIES_HPP
