#include "pipeline/signature_record.hpp"

#include "util/logging.hpp"

namespace mercury {

Signature
SignatureRecord::Pass::signatureOf(int64_t i) const
{
    if (i < 0 || i >= rows)
        panic("signature row ", i, " outside recorded pass of ", rows);
    Signature sig(bits);
    const uint64_t *words =
        sigWords.data() + static_cast<size_t>(i) *
                              static_cast<size_t>(sigWordsPerRow);
    for (int b = 0; b < bits; ++b)
        sig.setBit(b, (words[b / 64] >> (b % 64)) & 1u);
    return sig;
}

void
SignatureRecord::Pass::decodeResults(int64_t r0, int64_t r1,
                                     McacheResult *out) const
{
    for (int64_t i = r0; i < r1; ++i) {
        out[i - r0].outcome = outcome(i);
        out[i - r0].entryId = entryId(i);
    }
}

void
SignatureRecord::Pass::decodeSignatures(int64_t r0, int64_t r1,
                                        Signature *out) const
{
    for (int64_t i = r0; i < r1; ++i) {
        // Reuse the scratch slot's storage across blocks: every bit
        // is overwritten, so a right-sized signature needs no reset.
        Signature &sig = out[i - r0];
        if (sig.bits() != bits)
            sig = Signature(bits);
        const uint64_t *words =
            sigWords.data() + static_cast<size_t>(i) *
                                  static_cast<size_t>(sigWordsPerRow);
        for (int b = 0; b < bits; ++b)
            sig.setBit(b, (words[b / 64] >> (b % 64)) & 1u);
    }
}

const SignatureRecord::Pass &
SignatureRecord::pass(int64_t i) const
{
    if (i < 0 || i >= passCount())
        panic("record pass ", i, " outside ", passCount(),
              " captured passes");
    return passes_[static_cast<size_t>(i)];
}

void
SignatureRecord::clear()
{
    passes_.clear();
    dataVersions_ = 0;
    entries_ = 0;
}

void
SignatureRecord::restore(std::vector<Pass> passes, int data_versions,
                         int64_t entries)
{
    if (data_versions <= 0 || entries <= 0)
        panic("record restore needs positive versions/entries, got ",
              data_versions, "/", entries);
    passes_ = std::move(passes);
    dataVersions_ = data_versions;
    entries_ = entries;
}

void
SignatureRecord::capturePass(const DetectionResult &det, int bits,
                             int data_versions, int64_t entries)
{
    if (bits <= 0 || data_versions <= 0 || entries <= 0)
        panic("capturePass needs positive bits/versions/entries, got ",
              bits, "/", data_versions, "/", entries);
    if (!passes_.empty() &&
        (dataVersions_ != data_versions || entries_ != entries)) {
        panic("record passes span different cache organizations: ",
              dataVersions_, "v/", entries_, " then ", data_versions,
              "v/", entries);
    }
    dataVersions_ = data_versions;
    entries_ = entries;

    Pass p;
    p.rows = det.hitmap.size();
    p.bits = bits;
    p.sigWordsPerRow = (bits + 63) / 64;
    p.sigWords.assign(static_cast<size_t>(p.rows) *
                          static_cast<size_t>(p.sigWordsPerRow),
                      0);
    p.entryIds.resize(static_cast<size_t>(p.rows));
    p.outcomes.resize(static_cast<size_t>(p.rows));
    for (int64_t i = 0; i < p.rows; ++i) {
        const Signature &sig = det.table.signature(i);
        if (sig.bits() != bits)
            panic("pass signature length ", sig.bits(),
                  " differs from recorded bits ", bits);
        uint64_t *words =
            p.sigWords.data() + static_cast<size_t>(i) *
                                    static_cast<size_t>(p.sigWordsPerRow);
        for (int b = 0; b < bits; ++b) {
            if (sig.bit(b))
                words[b / 64] |= uint64_t{1} << (b % 64);
        }
        const int64_t entry = det.hitmap.entryId(i);
        if (entry >= entries)
            panic("entry id ", entry, " outside recorded cache of ",
                  entries, " entries");
        p.entryIds[static_cast<size_t>(i)] = static_cast<int32_t>(entry);
        p.outcomes[static_cast<size_t>(i)] =
            static_cast<uint8_t>(det.hitmap.outcome(i));
    }
    p.mix = det.mix();
    passes_.push_back(std::move(p));
}

void
SignatureRecord::ownersOf(const Pass &p, std::vector<int64_t> &owner) const
{
    owner.assign(static_cast<size_t>(p.rows), -1);
    std::vector<int64_t> owner_of_entry(static_cast<size_t>(entries_), -1);
    for (int64_t i = 0; i < p.rows; ++i) {
        owner[static_cast<size_t>(i)] = i;
        const McacheOutcome oc = p.outcome(i);
        const int64_t entry = p.entryId(i);
        if (oc == McacheOutcome::Hit &&
            owner_of_entry[static_cast<size_t>(entry)] >= 0) {
            owner[static_cast<size_t>(i)] =
                owner_of_entry[static_cast<size_t>(entry)];
        } else if (oc == McacheOutcome::Mau) {
            owner_of_entry[static_cast<size_t>(entry)] = i;
        }
    }
}

uint64_t
SignatureRecord::storageBytes() const
{
    uint64_t bytes = 0;
    for (const Pass &p : passes_) {
        bytes += static_cast<uint64_t>(p.sigWords.size()) * 8;
        bytes += static_cast<uint64_t>(p.entryIds.size()) * 4;
        bytes += static_cast<uint64_t>(p.outcomes.size());
    }
    return bytes;
}

} // namespace mercury
