#include "pipeline/detection_frontend.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/sampling.hpp"

namespace mercury {

DetectionFrontend::DetectionFrontend(int sets, int ways, int data_versions,
                                     int max_bits, uint64_t seed,
                                     PipelineConfig pipe)
    : ownedCache_(std::make_unique<ShardedMCache>(
          sets, ways, data_versions, pipe.resolvedShards())),
      cache_(ownedCache_.get()), pipe_(pipe), maxBits_(max_bits),
      seed_(seed)
{
    if (max_bits <= 0)
        panic("DetectionFrontend needs positive max signature bits");
}

DetectionFrontend::DetectionFrontend(MCache &cache, int max_bits,
                                     uint64_t seed, PipelineConfig pipe)
    : ownedCache_(std::make_unique<ShardedMCache>(cache)),
      cache_(ownedCache_.get()), pipe_(pipe), maxBits_(max_bits),
      seed_(seed)
{
    if (max_bits <= 0)
        panic("DetectionFrontend needs positive max signature bits");
}

DetectionFrontend::DetectionFrontend(ShardedMCache &cache, int max_bits,
                                     uint64_t seed, PipelineConfig pipe)
    : cache_(&cache), pipe_(pipe), maxBits_(max_bits), seed_(seed)
{
    if (max_bits <= 0)
        panic("DetectionFrontend needs positive max signature bits");
}

DetectionFrontend::DetectionFrontend(const AcceleratorConfig &cfg,
                                     uint64_t seed)
    : DetectionFrontend(cfg.mcacheSets, cfg.mcacheWays,
                        cfg.mcacheDataVersions, cfg.maxSignatureBits, seed,
                        PipelineConfig::fromConfig(cfg))
{
}

RPQEngine &
DetectionFrontend::rpqFor(int64_t dim)
{
    auto it = rpqByDim_.find(dim);
    if (it == rpqByDim_.end()) {
        it = rpqByDim_
                 .emplace(dim, std::make_unique<RPQEngine>(dim, maxBits_,
                                                           seed_))
                 .first;
    }
    return *it->second;
}

ThreadPool *
DetectionFrontend::poolFor()
{
    if (sharedPool_)
        return sharedPool_->workers() > 0 ? sharedPool_ : nullptr;
    return ThreadPool::forKnob(pipe_.threads, pool_);
}

const PipelineConfig &
DetectionFrontend::resolvedPipeFor(int64_t rows)
{
    auto it = resolvedByRows_.find(rows);
    if (it == resolvedByRows_.end()) {
        ++knobResolutions_;
        it = resolvedByRows_.emplace(rows, pipe_.resolvedFor(rows)).first;
    }
    return it->second;
}

DetectionResult
DetectionFrontend::detect(const Tensor &rows, int bits,
                          SignatureRecord *capture, const RowFiller &fill)
{
    if (rows.rank() != 2)
        panic("detect expects a (n, d) matrix, got ", rows.shapeStr());
    ThreadPool *pool = poolFor();
    const PipelineConfig &rp = resolvedPipeFor(rows.dim(0));
    // Shard locks are only needed when filter tasks will touch the
    // data plane while probes are in flight — i.e. overlapped mode
    // (after Auto resolution for this pass size). The batch pass
    // itself is lock-free by construction even on a pool (stage-1
    // blocks write disjoint ranges, stage 2 runs one prober per
    // shard), and without overlap the filter loops that follow run on
    // this thread only. Quiescent here: one thread drives a
    // frontend's passes.
    cache_->setConcurrent(rp.overlap == OverlapMode::On && pool != nullptr);
    DetectionPipeline pipeline(rpqFor(rows.dim(1)), *cache_, bits, rp,
                               pool);
    DetectionResult det = pipeline.run(rows, fill);
    if (capture)
        capture->capturePass(det, bits, cache_->dataVersions(),
                             cache_->entries());
    return det;
}

DetectionResult
DetectionFrontend::detectStream(const Tensor &rows, int bits,
                                const BlockConsumer &on_block,
                                SignatureRecord *capture, RowFiller fill)
{
    std::unique_ptr<DetectionHashJob> job =
        beginHashStream(rows, bits, std::move(fill));
    return finishStream(*job, on_block, capture);
}

std::unique_ptr<DetectionHashJob>
DetectionFrontend::beginHashStream(const Tensor &rows, int bits,
                                   RowFiller fill)
{
    if (rows.rank() != 2)
        panic("detect expects a (n, d) matrix, got ", rows.shapeStr());
    ThreadPool *pool = poolFor();
    DetectionPipeline pipeline(rpqFor(rows.dim(1)), *cache_, bits,
                               resolvedPipeFor(rows.dim(0)), pool);
    return pipeline.beginHash(rows, std::move(fill));
}

DetectionResult
DetectionFrontend::finishStream(DetectionHashJob &job,
                                const BlockConsumer &on_block,
                                SignatureRecord *capture)
{
    ThreadPool *pool = poolFor();
    // Streaming consumers schedule filter work against the data plane
    // while later probes run, so locks engage whenever a pool exists.
    // The previous pass's filter tasks have drained by the time a new
    // finishStream runs (one thread drives passes; engines join their
    // chains before re-entering), so the cache is quiescent here even
    // though the *hash* half of this job may already be in flight —
    // hashing touches no cache state.
    cache_->setConcurrent(pool != nullptr);
    DetectionPipeline pipeline(rpqFor(job.vectorDim()), *cache_,
                               job.signatureBits(),
                               resolvedPipeFor(job.rowCount()), pool);
    DetectionResult det = pipeline.finishStreaming(job, on_block);
    if (capture)
        capture->capturePass(det, job.signatureBits(),
                             cache_->dataVersions(), cache_->entries());
    return det;
}

void
DetectionFrontend::replayStream(const SignatureRecord::Pass &pass,
                                const BlockConsumer &on_block,
                                bool with_signatures)
{
    // Replay never provisions an RPQ engine or touches the cache: the
    // recorded pass carries everything the consumer needs.
    DetectionPipeline::replayStreaming(
        pass, resolvedPipeFor(pass.rows).blockRows, on_block,
        with_signatures);
}

FrontendHandle::FrontendHandle(MCache &cache, int sig_bits, uint64_t seed,
                               const PipelineConfig &pipe,
                               const char *engine)
    : owned_(std::make_unique<DetectionFrontend>(
          cache, std::max(sig_bits, 1), seed, pipe)),
      frontend_(*owned_), sigBits_(sig_bits)
{
    if (sig_bits <= 0)
        panic(engine, " needs positive signature bits");
}

FrontendHandle::FrontendHandle(DetectionFrontend &frontend, int sig_bits,
                               const char *engine)
    : frontend_(frontend), sigBits_(sig_bits)
{
    if (sig_bits <= 0)
        panic(engine, " needs positive signature bits");
    if (sig_bits > frontend.maxBits())
        panic(engine, " signature bits ", sig_bits,
              " exceed frontend provisioning ", frontend.maxBits());
}

HitMix
DetectionFrontend::detectSampled(const Tensor &rows, int bits,
                                 int64_t max_sample)
{
    return sampledDetection(rows, max_sample,
                            [this, bits](const Tensor &r) {
                                return detect(r, bits).mix();
                            });
}

} // namespace mercury
