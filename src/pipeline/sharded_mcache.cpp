#include "pipeline/sharded_mcache.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace mercury {

ShardedMCache::ShardedMCache(int sets, int ways, int data_versions,
                             int shards)
    : sets_(sets), ways_(ways), versions_(data_versions)
{
    if (sets <= 0 || ways <= 0 || data_versions <= 0)
        fatal("ShardedMCache needs positive sets/ways/versions, got ",
              sets, "/", ways, "/", data_versions);
    const int count = std::clamp(shards, 1, sets);
    setQuota_ = sets / count;
    setRemainder_ = sets % count;
    int base = 0;
    for (int s = 0; s < count; ++s) {
        const int local_sets = setQuota_ + (s < setRemainder_ ? 1 : 0);
        owned_.push_back(std::make_unique<MCache>(local_sets, ways,
                                                  data_versions));
        shards_.push_back(owned_.back().get());
        shardBaseSet_.push_back(base);
        base += local_sets;
    }
    shardLocks_ = std::make_unique<std::mutex[]>(shards_.size());
}

ShardedMCache::ShardedMCache(MCache &external)
    : sets_(external.sets()), ways_(external.ways()),
      versions_(external.dataVersions()), setQuota_(external.sets()),
      setRemainder_(0)
{
    shards_.push_back(&external);
    shardBaseSet_.push_back(0);
    shardLocks_ = std::make_unique<std::mutex[]>(1);
}

int
ShardedMCache::setIndexOf(const Signature &sig) const
{
    return static_cast<int>(sig.hash() % static_cast<uint64_t>(sets_));
}

int
ShardedMCache::shardOfSet(int set) const
{
    if (set < 0 || set >= sets_)
        panic("set index ", set, " out of range 0..", sets_ - 1);
    // First setRemainder_ shards hold setQuota_ + 1 sets each.
    const int big_span = setRemainder_ * (setQuota_ + 1);
    if (set < big_span)
        return set / (setQuota_ + 1);
    return setRemainder_ + (set - big_span) / setQuota_;
}

McacheResult
ShardedMCache::lookupOrInsert(const Signature &sig)
{
    return lookupOrInsertInSet(setIndexOf(sig), sig);
}

McacheResult
ShardedMCache::lookupOrInsertInSet(int set, const Signature &sig)
{
    const int s = shardOfSet(set);
    const int base = shardBaseSet_[static_cast<size_t>(s)];
    McacheResult r;
    {
        std::unique_lock<std::mutex> lock(
            shardLocks_[static_cast<size_t>(s)], std::defer_lock);
        if (concurrent_.load(std::memory_order_relaxed))
            lock.lock();
        r = shards_[static_cast<size_t>(s)]->lookupOrInsertInSet(
            set - base, sig);
    }
    if (r.entryId >= 0)
        r.entryId += static_cast<int64_t>(base) * ways_;
    return r;
}

ShardedMCache::Ref
ShardedMCache::refOf(int64_t entry_id) const
{
    if (entry_id < 0 || entry_id >= entries())
        panic("ShardedMCache entry id ", entry_id, " out of range");
    const int s = shardOfSet(static_cast<int>(entry_id / ways_));
    const int base = shardBaseSet_[static_cast<size_t>(s)];
    return {shards_[static_cast<size_t>(s)],
            entry_id - static_cast<int64_t>(base) * ways_, s};
}

bool
ShardedMCache::dataValid(int64_t entry_id, int version) const
{
    const Ref ref = refOf(entry_id);
    std::unique_lock<std::mutex> lock(
        shardLocks_[static_cast<size_t>(ref.shard)], std::defer_lock);
    if (concurrent_.load(std::memory_order_relaxed))
        lock.lock();
    return ref.cache->dataValid(ref.localId, version);
}

float
ShardedMCache::readData(int64_t entry_id, int version) const
{
    const Ref ref = refOf(entry_id);
    std::unique_lock<std::mutex> lock(
        shardLocks_[static_cast<size_t>(ref.shard)], std::defer_lock);
    if (concurrent_.load(std::memory_order_relaxed))
        lock.lock();
    return ref.cache->readData(ref.localId, version);
}

bool
ShardedMCache::readDataIfValid(int64_t entry_id, int version,
                               float &value) const
{
    const Ref ref = refOf(entry_id);
    std::unique_lock<std::mutex> lock(
        shardLocks_[static_cast<size_t>(ref.shard)], std::defer_lock);
    if (concurrent_.load(std::memory_order_relaxed))
        lock.lock();
    if (!ref.cache->dataValid(ref.localId, version))
        return false;
    value = ref.cache->readData(ref.localId, version);
    return true;
}

void
ShardedMCache::writeData(int64_t entry_id, int version, float value)
{
    const Ref ref = refOf(entry_id);
    std::unique_lock<std::mutex> lock(
        shardLocks_[static_cast<size_t>(ref.shard)], std::defer_lock);
    if (concurrent_.load(std::memory_order_relaxed))
        lock.lock();
    ref.cache->writeData(ref.localId, version, value);
}

void
ShardedMCache::invalidateAllData()
{
    for (size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shardLocks_[s]);
        shards_[s]->invalidateAllData();
    }
}

void
ShardedMCache::clear()
{
    for (size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shardLocks_[s]);
        shards_[s]->clear();
    }
}

uint64_t
ShardedMCache::maxInsertBacklog() const
{
    uint64_t mx = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shardLocks_[s]);
        mx = std::max(mx, shards_[s]->maxInsertBacklog());
    }
    return mx;
}

HitMix
ShardedMCache::lookupMix() const
{
    HitMix mix;
    for (size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shardLocks_[s]);
        const StatGroup &stats = shards_[s]->stats();
        const auto count = [&stats](const char *name) -> int64_t {
            return stats.has(name)
                       ? static_cast<int64_t>(
                             std::llround(stats.get(name).value()))
                       : 0;
        };
        mix.hit += count("hits");
        mix.mau += count("mau");
        mix.mnu += count("mnu");
    }
    mix.vectors = mix.hit + mix.mau + mix.mnu;
    return mix;
}

MCache &
ShardedMCache::shard(int s)
{
    if (s < 0 || s >= shardCount())
        panic("shard index ", s, " out of range");
    return *shards_[static_cast<size_t>(s)];
}

const MCache &
ShardedMCache::shard(int s) const
{
    if (s < 0 || s >= shardCount())
        panic("shard index ", s, " out of range");
    return *shards_[static_cast<size_t>(s)];
}

} // namespace mercury
