#include "pipeline/sharded_mcache.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace mercury {

ShardedMCache::ShardedMCache(int sets, int ways, int data_versions,
                             int shards)
    : sets_(sets), ways_(ways), versions_(data_versions)
{
    if (sets <= 0 || ways <= 0 || data_versions <= 0)
        fatal("ShardedMCache needs positive sets/ways/versions, got ",
              sets, "/", ways, "/", data_versions);
    const int count = std::clamp(shards, 1, sets);
    setQuota_ = sets / count;
    setRemainder_ = sets % count;
    int base = 0;
    for (int s = 0; s < count; ++s) {
        const int local_sets = setQuota_ + (s < setRemainder_ ? 1 : 0);
        owned_.push_back(std::make_unique<MCache>(local_sets, ways,
                                                  data_versions));
        shards_.push_back(owned_.back().get());
        shardBaseSet_.push_back(base);
        base += local_sets;
    }
    shardLocks_ = std::make_unique<std::mutex[]>(shards_.size());
}

ShardedMCache::ShardedMCache(MCache &external)
    : sets_(external.sets()), ways_(external.ways()),
      versions_(external.dataVersions()), setQuota_(external.sets()),
      setRemainder_(0)
{
    shards_.push_back(&external);
    shardBaseSet_.push_back(0);
    shardLocks_ = std::make_unique<std::mutex[]>(1);
}

int
ShardedMCache::setIndexOf(const Signature &sig) const
{
    return static_cast<int>(sig.hash() % static_cast<uint64_t>(sets_));
}

int
ShardedMCache::shardOfSet(int set) const
{
    if (set < 0 || set >= sets_)
        panic("set index ", set, " out of range 0..", sets_ - 1);
    // First setRemainder_ shards hold setQuota_ + 1 sets each.
    const int big_span = setRemainder_ * (setQuota_ + 1);
    if (set < big_span)
        return set / (setQuota_ + 1);
    return setRemainder_ + (set - big_span) / setQuota_;
}

McacheResult
ShardedMCache::lookupOrInsert(const Signature &sig)
{
    return lookupOrInsertInSet(setIndexOf(sig), sig);
}

McacheResult
ShardedMCache::lookupOrInsertInSet(int set, const Signature &sig)
{
    const int s = shardOfSet(set);
    const int base = shardBaseSet_[static_cast<size_t>(s)];
    McacheResult r;
    {
        std::unique_lock<std::mutex> lock(
            shardLocks_[static_cast<size_t>(s)], std::defer_lock);
        if (concurrent_.load(std::memory_order_relaxed))
            lock.lock();
        r = shards_[static_cast<size_t>(s)]->lookupOrInsertInSet(
            set - base, sig);
    }
    if (r.entryId >= 0)
        r.entryId += static_cast<int64_t>(base) * ways_;
    return r;
}

ShardedMCache::Ref
ShardedMCache::refOf(int64_t entry_id) const
{
    if (entry_id < 0 || entry_id >= entries())
        panic("ShardedMCache entry id ", entry_id, " out of range");
    const int s = shardOfSet(static_cast<int>(entry_id / ways_));
    const int base = shardBaseSet_[static_cast<size_t>(s)];
    return {shards_[static_cast<size_t>(s)],
            entry_id - static_cast<int64_t>(base) * ways_, s};
}

bool
ShardedMCache::dataValid(int64_t entry_id, int version) const
{
    const Ref ref = refOf(entry_id);
    std::unique_lock<std::mutex> lock(
        shardLocks_[static_cast<size_t>(ref.shard)], std::defer_lock);
    if (concurrent_.load(std::memory_order_relaxed))
        lock.lock();
    return ref.cache->dataValid(ref.localId, version);
}

float
ShardedMCache::readData(int64_t entry_id, int version) const
{
    const Ref ref = refOf(entry_id);
    std::unique_lock<std::mutex> lock(
        shardLocks_[static_cast<size_t>(ref.shard)], std::defer_lock);
    if (concurrent_.load(std::memory_order_relaxed))
        lock.lock();
    return ref.cache->readData(ref.localId, version);
}

bool
ShardedMCache::readDataIfValid(int64_t entry_id, int version,
                               float &value) const
{
    const Ref ref = refOf(entry_id);
    std::unique_lock<std::mutex> lock(
        shardLocks_[static_cast<size_t>(ref.shard)], std::defer_lock);
    if (concurrent_.load(std::memory_order_relaxed))
        lock.lock();
    if (!ref.cache->dataValid(ref.localId, version))
        return false;
    value = ref.cache->readData(ref.localId, version);
    return true;
}

void
ShardedMCache::writeData(int64_t entry_id, int version, float value)
{
    const Ref ref = refOf(entry_id);
    std::unique_lock<std::mutex> lock(
        shardLocks_[static_cast<size_t>(ref.shard)], std::defer_lock);
    if (concurrent_.load(std::memory_order_relaxed))
        lock.lock();
    ref.cache->writeData(ref.localId, version, value);
}

void
ShardedMCache::invalidateAllData()
{
    for (size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shardLocks_[s]);
        shards_[s]->invalidateAllData();
    }
}

void
ShardedMCache::clear()
{
    for (size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shardLocks_[s]);
        shards_[s]->clear();
    }
}

uint64_t
ShardedMCache::maxInsertBacklog() const
{
    uint64_t mx = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shardLocks_[s]);
        mx = std::max(mx, shards_[s]->maxInsertBacklog());
    }
    return mx;
}

void
ShardedMCache::resetInsertBacklog()
{
    for (size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shardLocks_[s]);
        shards_[s]->resetInsertBacklog();
    }
}

std::unique_lock<std::mutex>
ShardedMCache::passGuard() const
{
    return std::unique_lock<std::mutex>(passMutex_);
}

void
ShardedMCache::setEpoch(uint64_t epoch)
{
    for (size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shardLocks_[s]);
        shards_[s]->setEpoch(epoch);
    }
}

uint64_t
ShardedMCache::epoch() const
{
    return shards_[0]->epoch();
}

void
ShardedMCache::setInsertTenant(int tenant)
{
    for (size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shardLocks_[s]);
        shards_[s]->setInsertTenant(tenant);
    }
}

ShardedMCache::TenantQuotaGate::TenantQuotaGate(int64_t quota,
                                                int max_tenants)
    : quota_(quota), maxTenants_(max_tenants)
{
    counts_ = std::make_unique<std::atomic<int64_t>[]>(
        static_cast<size_t>(max_tenants));
    reset();
}

void
ShardedMCache::TenantQuotaGate::reset()
{
    for (int t = 0; t < maxTenants_; ++t)
        counts_[static_cast<size_t>(t)].store(0,
                                              std::memory_order_relaxed);
}

bool
ShardedMCache::TenantQuotaGate::tryReserve(int tenant)
{
    if (tenant < 0)
        return true; // unowned inserts are never gated
    if (tenant >= maxTenants_)
        panic("tenant id ", tenant, " out of quota-gate range 0..",
              maxTenants_ - 1);
    // Reserve-then-check: bump first so two racing inserts cannot
    // both observe quota - 1 and sneak past the limit.
    const int64_t now = counts_[static_cast<size_t>(tenant)].fetch_add(
                            1, std::memory_order_relaxed) +
                        1;
    if (now > quota_) {
        counts_[static_cast<size_t>(tenant)].fetch_sub(
            1, std::memory_order_relaxed);
        return false;
    }
    return true;
}

void
ShardedMCache::TenantQuotaGate::release(int tenant)
{
    if (tenant < 0 || tenant >= maxTenants_)
        return; // unowned lines never reserved
    counts_[static_cast<size_t>(tenant)].fetch_sub(
        1, std::memory_order_relaxed);
}

int64_t
ShardedMCache::TenantQuotaGate::reserved(int tenant) const
{
    if (tenant < 0 || tenant >= maxTenants_)
        return 0;
    return counts_[static_cast<size_t>(tenant)].load(
        std::memory_order_relaxed);
}

void
ShardedMCache::setTenantQuota(int64_t entries, int max_tenants)
{
    quotaEntries_ = entries > 0 ? entries : 0;
    if (quotaEntries_ == 0) {
        quotaGate_.reset();
    } else {
        quotaGate_ =
            std::make_unique<TenantQuotaGate>(quotaEntries_, max_tenants);
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shardLocks_[s]);
        shards_[s]->setQuotaGate(quotaGate_.get());
    }
    if (quotaGate_)
        recountTenantReservations();
}

int64_t
ShardedMCache::tenantReserved(int tenant) const
{
    return quotaGate_ ? quotaGate_->reserved(tenant) : 0;
}

void
ShardedMCache::recountTenantReservations()
{
    if (!quotaGate_)
        return;
    quotaGate_->reset();
    for (size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shardLocks_[s]);
        MCache &shard = *shards_[s];
        for (int64_t e = 0; e < shard.entries(); ++e) {
            if (!shard.tagValid(e))
                continue;
            const int tenant = shard.entryTenant(e);
            if (tenant >= 0 && !quotaGate_->tryReserve(tenant))
                panic("snapshot contents exceed the tenant quota for "
                      "tenant ",
                      tenant);
        }
    }
}

int64_t
ShardedMCache::evictOlderThan(uint64_t min_epoch)
{
    int64_t evicted = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shardLocks_[s]);
        evicted += shards_[s]->evictOlderThan(min_epoch);
    }
    return evicted;
}

int64_t
ShardedMCache::evictTenant(int tenant)
{
    int64_t evicted = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shardLocks_[s]);
        evicted += shards_[s]->evictTenant(tenant);
    }
    return evicted;
}

void
ShardedMCache::pin(int64_t entry_id)
{
    const Ref ref = refOf(entry_id);
    std::lock_guard<std::mutex> lock(
        shardLocks_[static_cast<size_t>(ref.shard)]);
    ref.cache->pin(ref.localId);
}

void
ShardedMCache::unpin(int64_t entry_id)
{
    const Ref ref = refOf(entry_id);
    std::lock_guard<std::mutex> lock(
        shardLocks_[static_cast<size_t>(ref.shard)]);
    ref.cache->unpin(ref.localId);
}

bool
ShardedMCache::tagValid(int64_t entry_id) const
{
    const Ref ref = refOf(entry_id);
    std::lock_guard<std::mutex> lock(
        shardLocks_[static_cast<size_t>(ref.shard)]);
    return ref.cache->tagValid(ref.localId);
}

uint64_t
ShardedMCache::entryEpoch(int64_t entry_id) const
{
    const Ref ref = refOf(entry_id);
    std::lock_guard<std::mutex> lock(
        shardLocks_[static_cast<size_t>(ref.shard)]);
    return ref.cache->entryEpoch(ref.localId);
}

int
ShardedMCache::entryTenant(int64_t entry_id) const
{
    const Ref ref = refOf(entry_id);
    std::lock_guard<std::mutex> lock(
        shardLocks_[static_cast<size_t>(ref.shard)]);
    return ref.cache->entryTenant(ref.localId);
}

Signature
ShardedMCache::tagAt(int64_t entry_id) const
{
    const Ref ref = refOf(entry_id);
    std::lock_guard<std::mutex> lock(
        shardLocks_[static_cast<size_t>(ref.shard)]);
    return ref.cache->tagOf(ref.localId);
}

void
ShardedMCache::restoreLine(int64_t entry_id, const Signature &sig,
                           uint64_t epoch, int tenant)
{
    const Ref ref = refOf(entry_id);
    std::lock_guard<std::mutex> lock(
        shardLocks_[static_cast<size_t>(ref.shard)]);
    ref.cache->restoreLine(ref.localId, sig, epoch, tenant);
}

HitMix
ShardedMCache::lookupMix() const
{
    HitMix mix;
    for (size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shardLocks_[s]);
        const StatGroup &stats = shards_[s]->stats();
        const auto count = [&stats](const char *name) -> int64_t {
            return stats.has(name)
                       ? static_cast<int64_t>(
                             std::llround(stats.get(name).value()))
                       : 0;
        };
        mix.hit += count("hits");
        mix.mau += count("mau");
        mix.mnu += count("mnu");
    }
    mix.vectors = mix.hit + mix.mau + mix.mnu;
    return mix;
}

MCache &
ShardedMCache::shard(int s)
{
    if (s < 0 || s >= shardCount())
        panic("shard index ", s, " out of range");
    return *shards_[static_cast<size_t>(s)];
}

const MCache &
ShardedMCache::shard(int s) const
{
    if (s < 0 || s >= shardCount())
        panic("shard index ", s, " out of range");
    return *shards_[static_cast<size_t>(s)];
}

} // namespace mercury
