/**
 * @file
 * SignatureRecord: the compact per-layer artifact a forward detection
 * pass leaves behind for the backward pass (§III-C2).
 *
 * MERCURY pays for similarity detection once, on forward propagation.
 * The signatures and HIT/MAU/MNU outcomes it computed there are
 * exactly what the input-gradient pass needs to skip the same rows
 * again — re-running RPQ over the gradient vectors would both cost a
 * second detection pass and decide a *different* skip set. A
 * SignatureRecord therefore captures, per detection pass:
 *
 *  - the per-row signatures (bit-packed, not one heap allocation per
 *    Signature — an ImageNet-scale conv layer records millions of
 *    rows);
 *  - the per-row MCACHE outcome and entry id (the hit/owner
 *    decisions);
 *  - the MCACHE organization the pass ran against (entry count and
 *    data-version map), so the backward filter passes group their
 *    in-flight filters exactly like the forward ones did.
 *
 * A record accumulates one Pass per forward detection pass of a layer
 * invocation — one per (image, channel) for convolution, one per
 * minibatch for FC, one per sample for attention — in forward
 * execution order. The backward engines consume the passes in the
 * same order via DetectionFrontend::replayStream, which streams a
 * pass through the DetectionBlock hand-off with zero hashing or
 * probing cycles.
 *
 * Lifetime contract: a record is valid for the backward pass of the
 * forward invocation that captured it, and must be re-captured every
 * forward pass (a new minibatch produces new outcomes). Capturing
 * copies everything out of the DetectionResult, so the record does
 * not alias pipeline or MCACHE state; replay never touches the
 * MCACHE, so records survive later forward passes of other layers
 * sharing the cache.
 */

#ifndef MERCURY_PIPELINE_SIGNATURE_RECORD_HPP
#define MERCURY_PIPELINE_SIGNATURE_RECORD_HPP

#include <cstdint>
#include <vector>

#include "core/mcache.hpp"
#include "core/signature.hpp"
#include "core/similarity_detector.hpp"

namespace mercury {

/** Saved detection results of one layer's forward pass (§III-C2). */
class SignatureRecord
{
  public:
    /** One recorded detection pass in forward execution order. */
    struct Pass
    {
        int64_t rows = 0;          ///< vectors the pass hashed
        int bits = 0;              ///< signature length of the pass
        int sigWordsPerRow = 0;    ///< 64-bit words per packed signature
        /** Bit-packed signatures, rows * sigWordsPerRow words. */
        std::vector<uint64_t> sigWords;
        /** MCACHE entry id per row (-1 for MNU). */
        std::vector<int32_t> entryIds;
        /** McacheOutcome per row, stored as one byte. */
        std::vector<uint8_t> outcomes;
        /** Aggregate mix of the pass (for backward statistics). */
        HitMix mix;

        McacheOutcome outcome(int64_t i) const
        {
            return static_cast<McacheOutcome>(
                outcomes[static_cast<size_t>(i)]);
        }

        int64_t entryId(int64_t i) const
        {
            return entryIds[static_cast<size_t>(i)];
        }

        /** Unpack the signature of row i (tests / diagnostics). */
        Signature signatureOf(int64_t i) const;

        /** Decode rows [r0, r1) into McacheResult form (replay). */
        void decodeResults(int64_t r0, int64_t r1,
                           McacheResult *out) const;

        /** Decode the signatures of rows [r0, r1) (replay). */
        void decodeSignatures(int64_t r0, int64_t r1,
                              Signature *out) const;
    };

    SignatureRecord() = default;

    int64_t passCount() const
    {
        return static_cast<int64_t>(passes_.size());
    }

    const Pass &pass(int64_t i) const;

    /**
     * In-flight filter slots of the MCACHE the record was captured
     * against: the backward filter passes keep the same number of
     * filters in flight (one grad-column buffer per slot).
     */
    int dataVersions() const { return dataVersions_; }

    /** Entry count of the capturing MCACHE (sizes the owner maps). */
    int64_t entries() const { return entries_; }

    /** Drop every pass (a new forward invocation begins). */
    void clear();

    /**
     * Reserve capacity for `n` passes. The planner knows a layer's
     * exact pass count ahead of the step (core/runtime_planner.hpp),
     * so planned captures size the pass vector once instead of
     * growing it across the forward's channel passes. Capacity only —
     * no semantic change.
     */
    void reservePasses(int64_t n)
    {
        if (n > 0)
            passes_.reserve(static_cast<size_t>(n));
    }

    /**
     * Append one pass captured from a finished detection result.
     * Copies signatures (bit-packed) and outcomes; the DetectionResult
     * may die afterwards. Every pass of one record must come from the
     * same cache organization (entries / data versions).
     */
    void capturePass(const DetectionResult &det, int bits,
                     int data_versions, int64_t entries);

    /**
     * Reconstruct the owner map of a pass: owner[i] == i when row i
     * computed (MAU / MNU / HIT on a never-deposited entry), otherwise
     * the earlier row whose result row i reused. Owners are always
     * computed rows (the first MAU row of an entry), so reuse chains
     * have depth one — the §III-C3 "earlier PE" discipline.
     */
    void ownersOf(const Pass &p, std::vector<int64_t> &owner) const;

    /** Bytes this record would spill to memory between passes. */
    uint64_t storageBytes() const;

    /**
     * Snapshot hook (serve/snapshot.cpp): replace the contents with
     * externally restored passes. The passes must share one cache
     * organization, exactly as capturePass enforces.
     */
    void restore(std::vector<Pass> passes, int data_versions,
                 int64_t entries);

  private:
    std::vector<Pass> passes_;
    int dataVersions_ = 0;
    int64_t entries_ = 0;
};

} // namespace mercury

#endif // MERCURY_PIPELINE_SIGNATURE_RECORD_HPP
