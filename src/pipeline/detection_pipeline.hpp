/**
 * @file
 * DetectionPipeline: the batched, multi-threaded similarity front-end
 * (§III-B, Fig. 7/8).
 *
 * The legacy SimilarityDetector walks a vector population one row at
 * a time: hash, probe, record. The pipeline restructures that hot
 * path into three stages:
 *
 *  1. blocked signature generation — row blocks are projected against
 *     all signature filters at once (RPQEngine::projectBlock), the
 *     software analogue of streaming the PE array with a whole batch;
 *  2. sharded MCACHE probing — each shard of the ShardedMCache
 *     processes its own signatures in stream order, independently of
 *     the other shards;
 *  3. in-order stitching — per-row result buffers are merged back
 *     into the Hitmap and SignatureTable in vector order.
 *
 * Stages 1 and 2 run across a ThreadPool when one is supplied. The
 * decomposition is chosen so every configuration — any block size,
 * shard count, or thread count, including the threads = 1 degenerate
 * case — produces results bit-identical to the legacy detector:
 * projections accumulate in the same element order, and each MCACHE
 * set sees its signatures in the same stream order.
 */

#ifndef MERCURY_PIPELINE_DETECTION_PIPELINE_HPP
#define MERCURY_PIPELINE_DETECTION_PIPELINE_HPP

#include <cstdint>

#include "core/rpq.hpp"
#include "core/similarity_detector.hpp"
#include "pipeline/sharded_mcache.hpp"
#include "sim/config.hpp"
#include "util/thread_pool.hpp"

namespace mercury {

/** Tuning knobs of the detection pipeline. */
struct PipelineConfig
{
    /** Rows per projection work item (stage 1 granularity). */
    int64_t blockRows = 64;

    /** MCACHE shards (stage 2 parallelism; clamped to the set count). */
    int shards = 4;

    /** Worker threads: 1 = run inline (legacy order), 0 = auto. */
    int threads = 1;

    /** Lift the pipeline knobs out of an accelerator configuration. */
    static PipelineConfig fromConfig(const AcceleratorConfig &cfg);
};

/** Batched, optionally multi-threaded similarity detection pass. */
class DetectionPipeline
{
  public:
    /**
     * @param rpq   signature engine for this vector dimension
     * @param cache sharded MCACHE (cleared at the start of each run)
     * @param bits  signature length
     * @param cfg   block size / shard / thread knobs
     * @param pool  worker pool for threads > 1; nullptr runs inline
     */
    DetectionPipeline(const RPQEngine &rpq, ShardedMCache &cache, int bits,
                      const PipelineConfig &cfg, ThreadPool *pool = nullptr);

    int signatureBits() const { return bits_; }

    /**
     * Detect similarity over the rows of a (num_vectors, d) matrix.
     * Clears the cache first (a new set of input vectors arrived,
     * §III-B3) and fills the hitmap and signature table in vector
     * order, exactly as SimilarityDetector::detect does.
     */
    DetectionResult run(const Tensor &rows) const;

  private:
    const RPQEngine &rpq_;
    ShardedMCache &cache_;
    int bits_;
    PipelineConfig cfg_;
    ThreadPool *pool_;
};

} // namespace mercury

#endif // MERCURY_PIPELINE_DETECTION_PIPELINE_HPP
