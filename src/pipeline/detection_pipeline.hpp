/**
 * @file
 * DetectionPipeline: the batched, multi-threaded similarity front-end
 * (§III-B, Fig. 7/8).
 *
 * The legacy SimilarityDetector walks a vector population one row at
 * a time: hash, probe, record. The pipeline restructures that hot
 * path into three stages:
 *
 *  1. blocked signature generation — row blocks are projected against
 *     all signature filters at once (RPQEngine::projectBlock), the
 *     software analogue of streaming the PE array with a whole batch;
 *  2. sharded MCACHE probing — each shard of the ShardedMCache
 *     processes its own signatures in stream order, independently of
 *     the other shards;
 *  3. in-order stitching — per-row result buffers are merged back
 *     into the Hitmap and SignatureTable in vector order.
 *
 * Stages 1 and 2 run across a ThreadPool when one is supplied. The
 * decomposition is chosen so every configuration — any block size,
 * shard count, or thread count, including the threads = 1 degenerate
 * case — produces results bit-identical to the legacy detector:
 * projections accumulate in the same element order, and each MCACHE
 * set sees its signatures in the same stream order.
 *
 * Besides the batch run(), the pipeline is a *streaming producer*
 * (runStreaming): completed signature/hit blocks are handed to a
 * consumer callback in ascending block order while later blocks are
 * still hashing on the pool — the software form of the paper's Fig. 8
 * overlap of signature generation with PE work. The reuse engines
 * consume this stream to start their filter passes before detection
 * of the remaining rows has finished (see docs/ARCHITECTURE.md).
 */

#ifndef MERCURY_PIPELINE_DETECTION_PIPELINE_HPP
#define MERCURY_PIPELINE_DETECTION_PIPELINE_HPP

#include <cstdint>
#include <functional>

#include "core/rpq.hpp"
#include "core/similarity_detector.hpp"
#include "pipeline/sharded_mcache.hpp"
#include "sim/config.hpp"
#include "util/thread_pool.hpp"

namespace mercury {

/** Tuning knobs of the detection pipeline. */
struct PipelineConfig
{
    /** Rows per projection work item (stage 1 granularity). */
    int64_t blockRows = 64;

    /** MCACHE shards (stage 2 parallelism; clamped to the set count). */
    int shards = 4;

    /** Worker threads: 1 = run inline (legacy order), 0 = auto. */
    int threads = 1;

    /**
     * Overlap detection with compute (§III-B, Fig. 8): when true, the
     * reuse engines consume the streaming block hand-off and run
     * their filter passes on the worker pool while later blocks are
     * still hashing, instead of waiting for the full detection pass.
     * Results stay bit-identical; the knob trades only wall time.
     * Ignored (legacy run-then-filter) when no pool is available,
     * i.e. when the resolved thread count is 1.
     */
    bool overlap = false;

    /** Lift the pipeline knobs out of an accelerator configuration. */
    static PipelineConfig fromConfig(const AcceleratorConfig &cfg);
};

/**
 * One block of detection results delivered by runStreaming.
 *
 * Lifetime contract: the pointers are valid only for the duration of
 * the consumer callback — they alias pipeline-internal buffers that
 * die when runStreaming returns. A consumer that schedules
 * asynchronous work against a block (as the overlapped engines do)
 * must copy what it needs before returning from the callback.
 */
struct DetectionBlock
{
    int64_t index = 0;  ///< block sequence number, delivered ascending
    int64_t row0 = 0;   ///< first row of the block
    int64_t row1 = 0;   ///< one past the last row
    const Signature *sigs = nullptr;      ///< signatures of [row0, row1)
    const McacheResult *results = nullptr; ///< outcomes of [row0, row1)

    int64_t rows() const { return row1 - row0; }
};

/** Consumer of the streaming per-block hand-off. */
using BlockConsumer = std::function<void(const DetectionBlock &)>;

/** Batched, optionally multi-threaded similarity detection pass. */
class DetectionPipeline
{
  public:
    /**
     * @param rpq   signature engine for this vector dimension
     * @param cache sharded MCACHE (cleared at the start of each run)
     * @param bits  signature length
     * @param cfg   block size / shard / thread knobs
     * @param pool  worker pool for threads > 1; nullptr runs inline
     */
    DetectionPipeline(const RPQEngine &rpq, ShardedMCache &cache, int bits,
                      const PipelineConfig &cfg, ThreadPool *pool = nullptr);

    int signatureBits() const { return bits_; }

    /**
     * Detect similarity over the rows of a (num_vectors, d) matrix.
     * Clears the cache first (a new set of input vectors arrived,
     * §III-B3) and fills the hitmap and signature table in vector
     * order, exactly as SimilarityDetector::detect does.
     */
    DetectionResult run(const Tensor &rows) const;

    /**
     * Streaming form of run(): identical result, but completed blocks
     * are handed to `on_block` as soon as they are hashed and probed,
     * while later blocks are still hashing on the pool.
     *
     * Ordering contract: blocks are delivered in ascending block
     * order (0, 1, 2, ...), each covering rows
     * [index * blockRows, min(n, (index + 1) * blockRows)), and the
     * MCACHE probe of a block happens-before its delivery. Probing is
     * performed in global stream order on the calling thread, so
     * every shard sees its signatures in exactly the order of the
     * batch path — outcomes and entry ids are bit-identical to run().
     *
     * Threading contract: `on_block` runs on the calling thread. Only
     * stage 1 (hashing) is fanned out to the pool; without a pool the
     * whole pass runs inline, with delivery after each block. The
     * consumer may submit work to the same pool, but must not block
     * on that work from inside the callback.
     */
    DetectionResult runStreaming(const Tensor &rows,
                                 const BlockConsumer &on_block) const;

  private:
    const RPQEngine &rpq_;
    ShardedMCache &cache_;
    int bits_;
    PipelineConfig cfg_;
    ThreadPool *pool_;
};

} // namespace mercury

#endif // MERCURY_PIPELINE_DETECTION_PIPELINE_HPP
