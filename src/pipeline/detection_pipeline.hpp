/**
 * @file
 * DetectionPipeline: the batched, multi-threaded similarity front-end
 * (§III-B, Fig. 7/8).
 *
 * The legacy SimilarityDetector walks a vector population one row at
 * a time: hash, probe, record. The pipeline restructures that hot
 * path into three stages:
 *
 *  1. blocked signature generation — row blocks are projected against
 *     all signature filters at once (RPQEngine::projectBlock), the
 *     software analogue of streaming the PE array with a whole batch;
 *  2. sharded MCACHE probing — each shard of the ShardedMCache
 *     processes its own signatures in stream order, independently of
 *     the other shards;
 *  3. in-order stitching — per-row result buffers are merged back
 *     into the Hitmap and SignatureTable in vector order.
 *
 * Stages 1 and 2 run across a ThreadPool when one is supplied. The
 * decomposition is chosen so every configuration — any block size,
 * shard count, or thread count, including the threads = 1 degenerate
 * case — produces results bit-identical to the legacy detector:
 * projections accumulate in the same element order, and each MCACHE
 * set sees its signatures in the same stream order.
 *
 * Besides the batch run(), the pipeline is a *streaming producer*
 * (runStreaming): completed signature/hit blocks are handed to a
 * consumer callback in ascending block order while later blocks are
 * still hashing on the pool — the software form of the paper's Fig. 8
 * overlap of signature generation with PE work. The reuse engines
 * consume this stream to start their filter passes before detection
 * of the remaining rows has finished (see docs/ARCHITECTURE.md).
 *
 * The streaming pass itself splits into two halves so the conv engine
 * can overlap *across channels* as well: beginHash() starts stage 1
 * for a new row population on the pool — touching no MCACHE state, so
 * it may run while the previous channel's trailing filter passes are
 * still draining against the cache — and finishStreaming() then
 * clears the cache, probes the hashed blocks in stream order, and
 * delivers them. runStreaming() is exactly beginHash +
 * finishStreaming.
 *
 * Replay (§III-C2): replayStreaming() re-delivers a recorded pass
 * (pipeline/signature_record.hpp) through the same DetectionBlock
 * hand-off — ascending block order, same lifetime contract — with
 * zero hashing or probing cycles and no MCACHE access at all. This is
 * how the backward filter passes consume the forward pass's
 * hit/owner decisions.
 */

#ifndef MERCURY_PIPELINE_DETECTION_PIPELINE_HPP
#define MERCURY_PIPELINE_DETECTION_PIPELINE_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/rpq.hpp"
#include "core/similarity_detector.hpp"
#include "pipeline/sharded_mcache.hpp"
#include "pipeline/signature_record.hpp"
#include "sim/config.hpp"
#include "util/executors.hpp"
#include "util/spsc_queue.hpp"
#include "util/thread_pool.hpp"

namespace mercury {

/** Tuning knobs of the detection pipeline. */
struct PipelineConfig
{
    /**
     * Rows per projection work item (stage 1 granularity). 0 = auto:
     * resolved per pass to the sweep-tuned value for the pass size
     * (tunedPipelineFor, bench/sweep_tuning).
     */
    int64_t blockRows = 64;

    /**
     * MCACHE shards (stage 2 parallelism; clamped to the set count).
     * 0 = auto: resolved at cache construction to the thread-scaled
     * band (resolvedShards) — shards beyond the number of
     * concurrently probing threads only add lock/merge overhead.
     */
    int shards = 4;

    /** Worker threads: 1 = run inline (legacy order), 0 = auto. */
    int threads = 1;

    /**
     * Overlap detection with compute (§III-B, Fig. 8): when On, the
     * reuse engines consume the streaming block hand-off and run
     * their filter passes on the worker pool while later blocks are
     * still hashing, instead of waiting for the full detection pass.
     * Results stay bit-identical; the knob trades only wall time.
     * Ignored (legacy run-then-filter) when no pool is available,
     * i.e. when the resolved thread count is 1. Auto resolves per
     * pass from threads x rows (resolvedOverlapFor): streaming pays a
     * fixed scheduling tax, so small passes and 1–2-thread hosts run
     * serial.
     */
    OverlapMode overlap = OverlapMode::Off;

    /**
     * Rows below which Auto overlap resolves to Off: under ~4 blocks
     * of hashing there is no stream to hide the filter work behind,
     * and the chain/hand-off tax dominates.
     */
    static constexpr int64_t kAutoOverlapMinRows = 256;

    /**
     * The Auto policy, applied by resolvedFor(): Off/On pass through;
     * Auto becomes On iff the resolved thread count — capped by the
     * host's usable concurrency, so an oversubscribed knob on a
     * 1–2-core host still runs serial — is >= 3 (two workers minimum:
     * one hashing ahead while another filters, besides the driving
     * thread) and the pass has at least kAutoOverlapMinRows rows.
     */
    OverlapMode resolvedOverlapFor(int64_t rows) const;

    /**
     * Persistent MCACHE (serving layer): when true, passes do NOT
     * clear the cache first — tags survive across passes, so rows
     * similar to a *previous* request HIT instead of re-inserting.
     * Correctness is unchanged: result forwarding is strictly
     * within-pass (the engines compute a cross-pass HIT exactly, via
     * their per-pass owner bookkeeping / pass-local data planes), so
     * persistence trades only which rows count as hits. The §V
     * insert-backlog model is still reset per pass. Lifecycle
     * (eviction, epochs, quota) is driven by the cache owner; see
     * docs/ARCHITECTURE.md, "Serving layer".
     */
    bool persistent = false;

    /** Lift the pipeline knobs out of an accelerator configuration. */
    static PipelineConfig fromConfig(const AcceleratorConfig &cfg);

    /**
     * Effective knobs for a pass over `rows` vectors: blockRows == 0
     * (auto) resolves to the sweep-tuned block size for the pass
     * size, and overlap == Auto resolves to On/Off via
     * resolvedOverlapFor; explicit values pass through untouched.
     */
    PipelineConfig resolvedFor(int64_t rows) const;

    /**
     * Effective shard count for MCACHE construction: shards == 0
     * (auto) resolves to the tunedPipelineFor band for the resolved
     * thread count; explicit values pass through untouched (the
     * ShardedMCache still clamps to its set count).
     */
    int resolvedShards() const;
};

/**
 * One block of detection results delivered by runStreaming.
 *
 * Lifetime contract: the pointers are valid only for the duration of
 * the consumer callback — they alias pipeline-internal buffers that
 * die when runStreaming returns. A consumer that schedules
 * asynchronous work against a block (as the overlapped engines do)
 * must copy what it needs before returning from the callback.
 */
struct DetectionBlock
{
    int64_t index = 0;  ///< block sequence number, delivered ascending
    int64_t row0 = 0;   ///< first row of the block
    int64_t row1 = 0;   ///< one past the last row
    const Signature *sigs = nullptr;      ///< signatures of [row0, row1)
    const McacheResult *results = nullptr; ///< outcomes of [row0, row1)

    int64_t rows() const { return row1 - row0; }
};

/** Consumer of the streaming per-block hand-off. */
using BlockConsumer = std::function<void(const DetectionBlock &)>;

/**
 * Producer of the rows being detected (single-touch fused blocks):
 * when a pass is given a RowFiller, rows [row0, row1) of the row
 * tensor are materialized by calling it immediately before that
 * range is projected — extraction, projection, and sign-pack then
 * walk the block once while it is cache-hot, instead of extraction
 * streaming the whole tensor first. Fillers must write only their
 * [row0, row1) range (disjoint ranges run concurrently on the pool)
 * and must be callable from worker threads. Every row of the tensor
 * is filled exactly once per pass, so the tensor is fully
 * materialized by the time the pass's results are delivered —
 * downstream filter passes read it as if it had been pre-extracted.
 */
using RowFiller = std::function<void(int64_t row0, int64_t row1)>;

/**
 * In-flight stage-1 (hashing) half of a streaming detection pass,
 * created by DetectionPipeline::beginHash and consumed exactly once
 * by DetectionPipeline::finishStreaming.
 *
 * While a job is in flight its hash tasks read the row tensor and the
 * cache *geometry* (set count) only — never cache tags or data — so a
 * job for the next channel may hash while the previous channel's
 * filter passes still run against the MCACHE (the cross-channel
 * overlap). The row tensor must stay alive and unmodified until
 * finishStreaming returns (or the job is destroyed, which joins the
 * outstanding hash tasks).
 */
class DetectionHashJob
{
  public:
    /** Joins any outstanding hash tasks. */
    ~DetectionHashJob();

    /** Signature length the job hashes at. */
    int signatureBits() const { return bits_; }

    /** Vector dimension of the rows being hashed. */
    int64_t vectorDim() const { return rows_.dim(1); }

    /** Number of rows being hashed. */
    int64_t rowCount() const { return n_; }

    DetectionHashJob(const DetectionHashJob &) = delete;
    DetectionHashJob &operator=(const DetectionHashJob &) = delete;

  private:
    friend class DetectionPipeline;

    DetectionHashJob(const Tensor &rows, const RPQEngine &rpq,
                     const ShardedMCache &cache, int bits,
                     int64_t block_rows, RowFiller fill);

    void projectBlock(int64_t b);

    const Tensor &rows_;
    RowFiller fill_; ///< fused extraction; empty = rows pre-filled
    const RPQEngine &rpq_;
    const ShardedMCache &cache_; // geometry reads only while hashing
    int bits_;
    int64_t blockRows_;
    int64_t n_;
    int64_t blocks_;
    std::vector<Signature> sigs_;
    std::vector<int> setOf_;
    std::vector<McacheResult> results_;
    // Sequencer state (pooled jobs): hash tasks finish in any order;
    // the frontier walk pushes them into the hand-off ascending.
    SpscQueue<int64_t> handoff_;
    std::mutex seqMutex_;
    std::vector<char> hashed_;
    int64_t frontier_ = 0;
    std::atomic<int64_t> nextBlock_{0};
    std::function<void()> hashOne_;     // self-replenishing hash task
    std::unique_ptr<TaskGroup> hashers_; // null: hash inline at finish
};

/** Batched, optionally multi-threaded similarity detection pass. */
class DetectionPipeline
{
  public:
    /**
     * @param rpq   signature engine for this vector dimension
     * @param cache sharded MCACHE (cleared at the start of each run)
     * @param bits  signature length
     * @param cfg   block size / shard / thread knobs
     * @param pool  worker pool for threads > 1; nullptr runs inline
     */
    DetectionPipeline(const RPQEngine &rpq, ShardedMCache &cache, int bits,
                      const PipelineConfig &cfg, ThreadPool *pool = nullptr);

    int signatureBits() const { return bits_; }

    /**
     * Detect similarity over the rows of a (num_vectors, d) matrix.
     * Clears the cache first (a new set of input vectors arrived,
     * §III-B3) and fills the hitmap and signature table in vector
     * order, exactly as SimilarityDetector::detect does. With a
     * RowFiller, each block's rows are materialized right before they
     * are projected (single-touch fused blocks).
     */
    DetectionResult run(const Tensor &rows,
                        const RowFiller &fill = {}) const;

    /**
     * Streaming form of run(): identical result, but completed blocks
     * are handed to `on_block` as soon as they are hashed and probed,
     * while later blocks are still hashing on the pool.
     *
     * Ordering contract: blocks are delivered in ascending block
     * order (0, 1, 2, ...), each covering rows
     * [index * blockRows, min(n, (index + 1) * blockRows)), and the
     * MCACHE probe of a block happens-before its delivery. Probing is
     * performed in global stream order on the calling thread, so
     * every shard sees its signatures in exactly the order of the
     * batch path — outcomes and entry ids are bit-identical to run().
     *
     * Threading contract: `on_block` runs on the calling thread. Only
     * stage 1 (hashing) is fanned out to the pool; without a pool the
     * whole pass runs inline, with delivery after each block. The
     * consumer may submit work to the same pool, but must not block
     * on that work from inside the callback.
     */
    DetectionResult runStreaming(const Tensor &rows,
                                 const BlockConsumer &on_block,
                                 RowFiller fill = {}) const;

    /**
     * Start stage 1 (hashing) of a streaming pass without touching
     * any MCACHE state: with a pool, self-replenishing hash tasks
     * begin immediately; without one, hashing is deferred into
     * finishStreaming. The returned job must be passed to
     * finishStreaming exactly once; `rows` must outlive it. Safe to
     * call while filter tasks of a *previous* pass still run against
     * the cache — this is the cross-channel overlap (ROADMAP):
     * channel c+1 extracts and hashes while channel c's trailing
     * filter groups drain. With a RowFiller the hash tasks also
     * *extract* their block right before projecting it, which both
     * fuses the two walks and moves extraction off the driving
     * thread.
     */
    std::unique_ptr<DetectionHashJob> beginHash(const Tensor &rows,
                                                RowFiller fill = {}) const;

    /**
     * Second half of a streaming pass: clears the cache (the new
     * vector population arrived, §III-B3), probes the hashed blocks
     * in ascending order on the calling thread, and delivers each to
     * `on_block` under the runStreaming ordering/lifetime contract.
     * Consumes the job.
     */
    DetectionResult finishStreaming(DetectionHashJob &job,
                                    const BlockConsumer &on_block) const;

    /**
     * Replay a recorded pass through the block hand-off: blocks of
     * `block_rows` rows are delivered ascending with the recorded
     * outcomes, exactly as a live streaming pass would deliver them —
     * but with zero hashing or probing cycles and no MCACHE access
     * (§III-C2). The DetectionBlock pointers alias per-block scratch
     * buffers and die when the callback returns, the same lifetime
     * contract as runStreaming. Signatures are decoded only when
     * `with_signatures` is set (the backward filter passes need just
     * the outcomes; skipping the decode saves rows x bits work per
     * replay) — with it clear, DetectionBlock::sigs is null.
     */
    static void replayStreaming(const SignatureRecord::Pass &pass,
                                int64_t block_rows,
                                const BlockConsumer &on_block,
                                bool with_signatures = false);

  private:
    const RPQEngine &rpq_;
    ShardedMCache &cache_;
    int bits_;
    PipelineConfig cfg_;
    ThreadPool *pool_;
};

} // namespace mercury

#endif // MERCURY_PIPELINE_DETECTION_PIPELINE_HPP
