/**
 * @file
 * Sharded MCACHE: N independent MCache shards behind the exact
 * semantics of one big MCache.
 *
 * A signature maps to a global set (hash % sets) exactly as in the
 * monolithic cache; the shard is the high bits of that set index
 * (shards own contiguous, disjoint set ranges). Because shards share
 * no state, the detection pipeline can probe them from different
 * worker threads — as long as each shard sees its signatures in
 * stream order, every outcome, entry id, and per-set fill pattern is
 * bit-identical to the single-cache single-thread path. Per-shard
 * statistics merge into one HitMix.
 *
 * Thread-safety contract (the overlapped-detection data plane,
 * ROADMAP "async multi-filter MCACHE semantics"):
 *
 *  - In concurrent mode (the default; see setConcurrent), every tag
 *    probe (lookupOrInsert / lookupOrInsertInSet) and every
 *    data-plane access (dataValid / readData / readDataIfValid /
 *    writeData) takes the owning shard's lock, so HIT forwarding may
 *    run on worker threads *while later filters — or the streaming
 *    detection pass itself — are still inserting tags* into the same
 *    shard. Distinct shards never contend. A single-threaded driver
 *    (no worker pool anywhere in reach of the cache) may switch the
 *    locks off so the legacy hot paths stay lock-free — the
 *    DetectionFrontend does this automatically per pass.
 *  - Bit-identical outcomes still require ORDER, which locks alone do
 *    not provide: each shard must see its probes in stream order, and
 *    a HIT's data read must happen after its MAU owner's write. The
 *    detection pipeline delivers blocks in order, and the engines
 *    keep each filter's rows in a SerialExecutor chain, to provide
 *    exactly that order (see docs/ARCHITECTURE.md).
 *  - clear() / invalidateAllData() / lookupMix() / maxInsertBacklog()
 *    lock shard by shard; callers must be quiescent (no in-flight
 *    probes or filter passes) for the aggregate to be meaningful.
 *  - shard() hands out a raw MCache reference and is NOT locked: it
 *    is for tests and statistics on a quiescent cache only.
 *
 * The class can also wrap an externally owned MCache as its single
 * shard, which is how the legacy engine constructors keep sharing a
 * caller-provided cache through the new pipeline front-end. The
 * wrapped cache must then only be accessed through this wrapper while
 * concurrent passes are in flight.
 */

#ifndef MERCURY_PIPELINE_SHARDED_MCACHE_HPP
#define MERCURY_PIPELINE_SHARDED_MCACHE_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/mcache.hpp"
#include "sim/dataflow.hpp"

namespace mercury {

/** N-shard MCACHE with monolithic-MCache semantics. */
class ShardedMCache
{
  public:
    /**
     * Owning form: exactly min(max(shards, 1), sets) disjoint MCache
     * shards covering `sets` global sets in total, sized within one
     * set of each other (floor/ceil distribution).
     */
    ShardedMCache(int sets, int ways, int data_versions, int shards);

    /** View form: wrap an external MCache as the single shard. */
    explicit ShardedMCache(MCache &external);

    int sets() const { return sets_; }
    int ways() const { return ways_; }
    int dataVersions() const { return versions_; }
    int shardCount() const { return static_cast<int>(shards_.size()); }
    int64_t entries() const { return static_cast<int64_t>(sets_) * ways_; }

    /** Global set index of a signature (identical to MCache). */
    int setIndexOf(const Signature &sig) const;

    /** Shard owning a global set (its high bits). */
    int shardOfSet(int set) const;

    /** Shard a signature maps to. */
    int shardOf(const Signature &sig) const
    {
        return shardOfSet(setIndexOf(sig));
    }

    /** Monolithic-equivalent lookup (single-threaded convenience). */
    McacheResult lookupOrInsert(const Signature &sig);

    /**
     * Lookup with a precomputed global set index. Locked per shard,
     * so probes may run concurrently with data-plane traffic; for
     * bit-identical results each shard must still be presented its
     * signatures in stream order (one prober per shard, or one global
     * in-order prober).
     */
    McacheResult lookupOrInsertInSet(int set, const Signature &sig);

    /**
     * Software-prefetch a global set's lines ahead of a probe (see
     * MCache::prefetchSet). Lock-free by design — a prefetch of a
     * line another thread is writing is harmless, the probe itself
     * still goes through the shard lock.
     */
    void prefetchSet(int set) const
    {
        const int s = shardOfSet(set);
        shards_[static_cast<size_t>(s)]->prefetchSet(
            set - shardBaseSet_[static_cast<size_t>(s)]);
    }

    /**
     * Entry-id data plane, global ids as in the monolithic cache.
     * Each call locks the entry's shard, so concurrent HIT forwarding
     * and MAU deposits from filter tasks are safe while other threads
     * probe the same shard. Note dataValid-then-readData is two lock
     * acquisitions; prefer readDataIfValid in concurrent paths.
     */
    bool dataValid(int64_t entry_id, int version) const;
    float readData(int64_t entry_id, int version) const;
    void writeData(int64_t entry_id, int version, float value);

    /**
     * Atomic dataValid + readData under one shard lock: true and
     * fills `value` when the version is valid. This is the HIT
     * forwarding path of the overlapped engines.
     */
    bool readDataIfValid(int64_t entry_id, int version,
                         float &value) const;

    /** Clear every VD bit in every shard (the bitline). Quiescent only. */
    void invalidateAllData();

    /** Clear tags and data in every shard. Quiescent only. */
    void clear();

    /**
     * Toggle the per-shard locking of probes and data-plane accesses.
     * On (the construction default) whenever worker threads may touch
     * the cache; a purely single-threaded driver may switch it off to
     * keep the hot paths lock-free. Must only be toggled while the
     * cache is quiescent (no pass or filter tasks in flight).
     */
    void setConcurrent(bool concurrent) { concurrent_ = concurrent; }
    bool concurrent() const { return concurrent_; }

    /** Largest per-set insert backlog across all shards (§V). */
    uint64_t maxInsertBacklog() const;

    /** Reset the §V insert-queue model at a persistent pass boundary. */
    void resetInsertBacklog();

    // ---- Serving-layer lifecycle (see docs/ARCHITECTURE.md) ---------

    /**
     * Pass guard for shared serving: a session that shares this cache
     * with other sessions holds the returned lock for the duration of
     * its cache-touching job, serializing whole passes (and eviction /
     * epoch maintenance) across sessions. The per-shard locks above
     * still cover the intra-pass worker threads of whichever session
     * holds the guard. Single-session users never need it.
     */
    std::unique_lock<std::mutex> passGuard() const;

    /** Stamp subsequent inserts/HIT-refreshes with `epoch` (all shards). */
    void setEpoch(uint64_t epoch);
    uint64_t epoch() const;

    /** Stamp subsequent inserts with `tenant` (all shards). */
    void setInsertTenant(int tenant);

    /**
     * Enable a per-tenant line quota: once a tenant holds `entries`
     * valid lines, further inserts for it become MNU until eviction
     * frees lines. Reservation is atomic (reserve-then-check), so the
     * quota is never exceeded even under concurrent interleaved
     * inserts. `entries` <= 0 disables the gate. Tenants are ids in
     * [0, max_tenants); id -1 (unowned) is never gated.
     */
    void setTenantQuota(int64_t entries, int max_tenants = 64);
    int64_t tenantQuota() const { return quotaEntries_; }

    /** Lines currently reserved for `tenant` by the quota gate. */
    int64_t tenantReserved(int tenant) const;

    /**
     * Recompute the quota-gate reservations from the actual cache
     * contents (after a snapshot restore, which bypasses the gate).
     * Quiescent only.
     */
    void recountTenantReservations();

    /** Evict unpinned lines last touched before `min_epoch` (all shards). */
    int64_t evictOlderThan(uint64_t min_epoch);

    /** Evict every unpinned line stamped with `tenant` (all shards). */
    int64_t evictTenant(int tenant);

    /** Pin/unpin a line against eviction (global entry id). */
    void pin(int64_t entry_id);
    void unpin(int64_t entry_id);

    /** Lifecycle metadata of a line (global entry id). */
    bool tagValid(int64_t entry_id) const;
    uint64_t entryEpoch(int64_t entry_id) const;
    int entryTenant(int64_t entry_id) const;

    /** Copy of a valid line's tag (snapshot serialization). */
    Signature tagAt(int64_t entry_id) const;

    /** Snapshot restore of one line (global entry id; quiescent only). */
    void restoreLine(int64_t entry_id, const Signature &sig,
                     uint64_t epoch, int tenant);

    /** Per-shard lifetime stats merged into one HitMix. */
    HitMix lookupMix() const;

    /** Direct shard access (tests, stats; unlocked, quiescent only). */
    MCache &shard(int s);
    const MCache &shard(int s) const;

  private:
    /**
     * Atomic per-tenant line counter behind McacheQuotaGate: reserve
     * first, then check — an over-quota reservation is rolled back, so
     * concurrent inserts can never push a tenant past its quota.
     */
    class TenantQuotaGate : public McacheQuotaGate
    {
      public:
        TenantQuotaGate(int64_t quota, int max_tenants);
        bool tryReserve(int tenant) override;
        void release(int tenant) override;
        int64_t reserved(int tenant) const;
        int maxTenants() const { return maxTenants_; }
        void reset();

      private:
        int64_t quota_;
        int maxTenants_;
        std::unique_ptr<std::atomic<int64_t>[]> counts_;
    };

    std::vector<std::unique_ptr<MCache>> owned_;
    std::vector<MCache *> shards_;
    std::vector<int> shardBaseSet_; ///< first global set of each shard
    /// One lock per shard guarding its tags, data, and stats. Heap
    /// array because std::mutex is immovable. Mutable: const readers
    /// (dataValid, readDataIfValid) lock too.
    mutable std::unique_ptr<std::mutex[]> shardLocks_;
    /// Locks engaged (worker threads may touch the cache). Atomic so
    /// workers may read it while the driver thread owns toggling;
    /// toggles only happen on a quiescent cache.
    std::atomic<bool> concurrent_{true};
    /// Serializes whole passes from concurrent sessions (passGuard).
    /// Mutable: read-mostly sessions (stats sweeps) guard too.
    mutable std::mutex passMutex_;
    std::unique_ptr<TenantQuotaGate> quotaGate_;
    int64_t quotaEntries_ = 0;
    int sets_;
    int ways_;
    int versions_;
    // Floor/ceil set distribution: the first setRemainder_ shards
    // hold setQuota_ + 1 sets, the rest setQuota_.
    int setQuota_;
    int setRemainder_;

    /** Shard plus local entry id of a global entry id. */
    struct Ref
    {
        MCache *cache;
        int64_t localId;
        int shard;
    };

    Ref refOf(int64_t entry_id) const;
};

} // namespace mercury

#endif // MERCURY_PIPELINE_SHARDED_MCACHE_HPP
