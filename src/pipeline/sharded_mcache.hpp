/**
 * @file
 * Sharded MCACHE: N independent MCache shards behind the exact
 * semantics of one big MCache.
 *
 * A signature maps to a global set (hash % sets) exactly as in the
 * monolithic cache; the shard is the high bits of that set index
 * (shards own contiguous, disjoint set ranges). Because shards share
 * no state, the detection pipeline can probe them from different
 * worker threads — as long as each shard sees its signatures in
 * stream order, every outcome, entry id, and per-set fill pattern is
 * bit-identical to the single-cache single-thread path. Per-shard
 * statistics merge into one HitMix.
 *
 * The class can also wrap an externally owned MCache as its single
 * shard, which is how the legacy engine constructors keep sharing a
 * caller-provided cache through the new pipeline front-end.
 */

#ifndef MERCURY_PIPELINE_SHARDED_MCACHE_HPP
#define MERCURY_PIPELINE_SHARDED_MCACHE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/mcache.hpp"
#include "sim/dataflow.hpp"

namespace mercury {

/** N-shard MCACHE with monolithic-MCache semantics. */
class ShardedMCache
{
  public:
    /**
     * Owning form: exactly min(max(shards, 1), sets) disjoint MCache
     * shards covering `sets` global sets in total, sized within one
     * set of each other (floor/ceil distribution).
     */
    ShardedMCache(int sets, int ways, int data_versions, int shards);

    /** View form: wrap an external MCache as the single shard. */
    explicit ShardedMCache(MCache &external);

    int sets() const { return sets_; }
    int ways() const { return ways_; }
    int dataVersions() const { return versions_; }
    int shardCount() const { return static_cast<int>(shards_.size()); }
    int64_t entries() const { return static_cast<int64_t>(sets_) * ways_; }

    /** Global set index of a signature (identical to MCache). */
    int setIndexOf(const Signature &sig) const;

    /** Shard owning a global set (its high bits). */
    int shardOfSet(int set) const;

    /** Shard a signature maps to. */
    int shardOf(const Signature &sig) const
    {
        return shardOfSet(setIndexOf(sig));
    }

    /** Monolithic-equivalent lookup (single-threaded convenience). */
    McacheResult lookupOrInsert(const Signature &sig);

    /**
     * Lookup with a precomputed global set index. Callers running
     * shards on worker threads must present each shard's signatures
     * in stream order and never touch one shard from two threads at
     * once; distinct shards are safe concurrently.
     */
    McacheResult lookupOrInsertInSet(int set, const Signature &sig);

    /** Entry-id data plane, global ids as in the monolithic cache. */
    bool dataValid(int64_t entry_id, int version) const;
    float readData(int64_t entry_id, int version) const;
    void writeData(int64_t entry_id, int version, float value);

    /** Clear every VD bit in every shard (the bitline). */
    void invalidateAllData();

    /** Clear tags and data in every shard. */
    void clear();

    /** Largest per-set insert backlog across all shards (§V). */
    uint64_t maxInsertBacklog() const;

    /** Per-shard lifetime stats merged into one HitMix. */
    HitMix lookupMix() const;

    /** Direct shard access (tests, stats). */
    MCache &shard(int s);
    const MCache &shard(int s) const;

  private:
    std::vector<std::unique_ptr<MCache>> owned_;
    std::vector<MCache *> shards_;
    std::vector<int> shardBaseSet_; ///< first global set of each shard
    int sets_;
    int ways_;
    int versions_;
    // Floor/ceil set distribution: the first setRemainder_ shards
    // hold setQuota_ + 1 sets, the rest setQuota_.
    int setQuota_;
    int setRemainder_;

    /** Shard plus local entry id of a global entry id. */
    struct Ref
    {
        MCache *cache;
        int64_t localId;
    };

    Ref refOf(int64_t entry_id) const;
};

} // namespace mercury

#endif // MERCURY_PIPELINE_SHARDED_MCACHE_HPP
