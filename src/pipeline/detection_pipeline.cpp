#include "pipeline/detection_pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "util/logging.hpp"
#include "util/spsc_queue.hpp"

namespace mercury {

PipelineConfig
PipelineConfig::fromConfig(const AcceleratorConfig &cfg)
{
    PipelineConfig pipe;
    pipe.blockRows = cfg.pipelineBlockRows;
    pipe.shards = cfg.pipelineShards;
    pipe.threads = cfg.pipelineThreads;
    pipe.overlap = cfg.overlapDetection;
    pipe.persistent = cfg.persistentCache;
    return pipe;
}

int
PipelineConfig::resolvedShards() const
{
    if (shards != 0)
        return shards;
    // The band depends only on the probe parallelism available, not
    // the pass size (tunedPipelineFor keeps shards constant across
    // row bands).
    return tunedPipelineFor(1, ThreadPool::resolveThreads(threads))
        .shards;
}

OverlapMode
PipelineConfig::resolvedOverlapFor(int64_t rows) const
{
    if (overlap != OverlapMode::Auto)
        return overlap;
    // Overlap needs real parallelism to pay, so the host's usable
    // concurrency (resolveThreads(0) = hardware, clamped) caps the
    // count the policy sees: requesting 8 threads on a 1-core
    // container still resolves serial. Explicit On is untouched —
    // the cap is part of the Auto policy only.
    const int t = std::min(ThreadPool::resolveThreads(threads),
                           ThreadPool::resolveThreads(0));
    return (t >= 3 && rows >= kAutoOverlapMinRows) ? OverlapMode::On
                                                   : OverlapMode::Off;
}

PipelineConfig
PipelineConfig::resolvedFor(int64_t rows) const
{
    PipelineConfig resolved = *this;
    resolved.overlap = resolvedOverlapFor(rows);
    if (blockRows == 0) {
        resolved.blockRows =
            tunedPipelineFor(std::max<int64_t>(rows, 1),
                             ThreadPool::resolveThreads(threads))
                .blockRows;
    }
    return resolved;
}

DetectionPipeline::DetectionPipeline(const RPQEngine &rpq,
                                     ShardedMCache &cache, int bits,
                                     const PipelineConfig &cfg,
                                     ThreadPool *pool)
    : rpq_(rpq), cache_(cache), bits_(bits), cfg_(cfg), pool_(pool)
{
    if (bits <= 0 || bits > rpq.maxBits())
        panic("signature bits ", bits, " outside engine range 1..",
              rpq.maxBits());
    if (cfg_.blockRows <= 0)
        panic("pipeline block size must be positive, got ",
              cfg_.blockRows);
}

DetectionResult
DetectionPipeline::run(const Tensor &rows, const RowFiller &fill) const
{
    if (rows.rank() != 2 || rows.dim(1) != rpq_.vectorDim())
        panic("detect expects (n, ", rpq_.vectorDim(), ") got ",
              rows.shapeStr());
    if (cfg_.persistent)
        cache_.resetInsertBacklog(); // keep the §V drain cost per-pass
    else
        cache_.clear();
    const int64_t n = rows.dim(0);
    DetectionResult res;
    res.hitmap.reset(n);
    if (n == 0)
        return res;

    // Stage 1: blocked signature generation. Blocks write disjoint
    // ranges, so scheduling order is irrelevant; each signature (and
    // its global set index, computed here so the hash is taken once)
    // is identical to the scalar path's.
    std::vector<Signature> sigs(static_cast<size_t>(n));
    std::vector<int> set_of(static_cast<size_t>(n));
    const int64_t block = cfg_.blockRows;
    const int64_t blocks = (n + block - 1) / block;
    const auto project_block = [&](int64_t b) {
        const int64_t r0 = b * block;
        const int64_t r1 = std::min(n, r0 + block);
        if (fill)
            fill(r0, r1); // fused extraction: fill, then project, hot
        rpq_.signatureBlock(rows, r0, r1, bits_,
                            sigs.data() + static_cast<size_t>(r0));
        for (int64_t i = r0; i < r1; ++i)
            set_of[static_cast<size_t>(i)] =
                cache_.setIndexOf(sigs[static_cast<size_t>(i)]);
    };

    // Stage 2: sharded MCACHE probing. Each shard consumes its own
    // rows in stream order — exactly the order the monolithic cache
    // would have seen them. The buckets are filled by one ascending
    // walk, so per-shard order is stream order by construction.
    const int shard_count = cache_.shardCount();
    std::vector<std::vector<int64_t>> shard_rows(
        static_cast<size_t>(shard_count));
    std::vector<McacheResult> results(static_cast<size_t>(n));
    const auto probe_shard = [&](int64_t s) {
        for (const int64_t i : shard_rows[static_cast<size_t>(s)]) {
            results[static_cast<size_t>(i)] = cache_.lookupOrInsertInSet(
                set_of[static_cast<size_t>(i)],
                sigs[static_cast<size_t>(i)]);
        }
    };

    if (pool_ && pool_->workers() > 0) {
        pool_->parallelFor(blocks, project_block);
    } else {
        for (int64_t b = 0; b < blocks; ++b)
            project_block(b);
    }
    for (int64_t i = 0; i < n; ++i) {
        shard_rows[static_cast<size_t>(
                       cache_.shardOfSet(set_of[static_cast<size_t>(i)]))]
            .push_back(i);
    }
    if (pool_ && pool_->workers() > 0) {
        pool_->parallelFor(shard_count, probe_shard);
    } else {
        for (int s = 0; s < shard_count; ++s)
            probe_shard(s);
    }

    // Stage 3: stitch per-row buffers back in stream order.
    for (int64_t i = 0; i < n; ++i) {
        const McacheResult &r = results[static_cast<size_t>(i)];
        res.hitmap.record(i, r);
        res.table.append(std::move(sigs[static_cast<size_t>(i)]),
                         r.entryId);
    }
    return res;
}

DetectionHashJob::DetectionHashJob(const Tensor &rows, const RPQEngine &rpq,
                                   const ShardedMCache &cache, int bits,
                                   int64_t block_rows, RowFiller fill)
    : rows_(rows), fill_(std::move(fill)), rpq_(rpq), cache_(cache),
      bits_(bits), blockRows_(block_rows), n_(rows.dim(0)),
      blocks_((n_ + block_rows - 1) / block_rows),
      sigs_(static_cast<size_t>(n_)), setOf_(static_cast<size_t>(n_)),
      results_(static_cast<size_t>(n_)),
      hashed_(static_cast<size_t>(blocks_), 0)
{
}

DetectionHashJob::~DetectionHashJob()
{
    if (hashers_)
        hashers_->wait();
}

void
DetectionHashJob::projectBlock(int64_t b)
{
    // Stage 1: hash one block, precompute its set indices. Safe on
    // any thread and concurrently with filter traffic of a previous
    // pass — it reads only the row tensor and the cache geometry.
    // With a filler, the block's rows are extracted here first (the
    // single-touch fused walk: fill, project, sign-pack while hot).
    const int64_t r0 = b * blockRows_;
    const int64_t r1 = std::min(n_, r0 + blockRows_);
    if (fill_)
        fill_(r0, r1);
    rpq_.signatureBlock(rows_, r0, r1, bits_,
                        sigs_.data() + static_cast<size_t>(r0));
    for (int64_t i = r0; i < r1; ++i)
        setOf_[static_cast<size_t>(i)] =
            cache_.setIndexOf(sigs_[static_cast<size_t>(i)]);
}

std::unique_ptr<DetectionHashJob>
DetectionPipeline::beginHash(const Tensor &rows, RowFiller fill) const
{
    if (rows.rank() != 2 || rows.dim(1) != rpq_.vectorDim())
        panic("detect expects (n, ", rpq_.vectorDim(), ") got ",
              rows.shapeStr());
    std::unique_ptr<DetectionHashJob> job(
        new DetectionHashJob(rows, rpq_, cache_, bits_, cfg_.blockRows,
                             std::move(fill)));
    if (job->n_ == 0 || !pool_ || pool_->workers() <= 0)
        return job; // hash inline when finishStreaming drives the pass

    // Hashing fans out to the pool in any order; a sequencer pushes
    // finished blocks into the hand-off queue in ascending block
    // order, and finishStreaming probes + delivers as they arrive —
    // overlapping stage 1 of later blocks with the consumer's work on
    // earlier ones (Fig. 8).
    //
    // Hash tasks are self-replenishing (each one grabs the next
    // unhashed block and resubmits) rather than enqueued all
    // up-front: with only ~workers in flight, hash and filter tasks
    // interleave instead of the hashing phase monopolizing the pool.
    // Under the work-stealing pool the resubmit lands in the hashing
    // worker's own deque (LIFO — it just touched the row tensor, so
    // the next block is cache-warm for it), idle workers steal from
    // the cold end, and the consumer's filter chains live in other
    // deques — the two phases share the machine without convoying on
    // a global queue.
    DetectionHashJob *j = job.get();
    j->hashers_ = std::make_unique<TaskGroup>(pool_);
    j->hashOne_ = [j] {
        const int64_t b =
            j->nextBlock_.fetch_add(1, std::memory_order_relaxed);
        if (b >= j->blocks_)
            return;
        j->projectBlock(b);
        {
            std::lock_guard<std::mutex> lock(j->seqMutex_);
            j->hashed_[static_cast<size_t>(b)] = 1;
            while (j->frontier_ < j->blocks_ &&
                   j->hashed_[static_cast<size_t>(j->frontier_)])
                j->handoff_.push(j->frontier_++);
        }
        j->hashers_->run(j->hashOne_); // chain the next block
    };
    const int64_t seeds = std::min<int64_t>(
        j->blocks_, static_cast<int64_t>(pool_->workers()) + 1);
    // Seed the self-replenishing chain as one batch: one lock and one
    // wakeup for the whole dependent group instead of a notify per
    // seed (ThreadPool::submitBatch).
    j->hashers_->runBatch(seeds, j->hashOne_);
    return job;
}

DetectionResult
DetectionPipeline::finishStreaming(DetectionHashJob &job,
                                   const BlockConsumer &on_block) const
{
    if (&job.cache_ != &cache_)
        panic("hash job finished on a different cache than it began on");
    if (cfg_.persistent)
        cache_.resetInsertBacklog(); // keep the §V drain cost per-pass
    else
        cache_.clear();
    const int64_t n = job.n_;
    DetectionResult res;
    res.hitmap.reset(n);
    if (n == 0)
        return res;

    // Stage 2 + hand-off: probe one hashed block in global stream
    // order (caller thread only, so every MCACHE set sees the batch
    // path's order) and deliver it to the consumer.
    const auto probe_and_deliver = [&](int64_t b) {
        const int64_t r0 = b * job.blockRows_;
        const int64_t r1 = std::min(n, r0 + job.blockRows_);
        for (int64_t i = r0; i < r1; ++i) {
            // Pull row i+1's set into cache while row i's tag
            // compares run; the probe stream hops sets pseudo-
            // randomly, so the hardware prefetcher cannot help here.
            if (i + 1 < r1)
                cache_.prefetchSet(
                    job.setOf_[static_cast<size_t>(i + 1)]);
            job.results_[static_cast<size_t>(i)] =
                cache_.lookupOrInsertInSet(
                    job.setOf_[static_cast<size_t>(i)],
                    job.sigs_[static_cast<size_t>(i)]);
        }
        if (on_block) {
            DetectionBlock blk;
            blk.index = b;
            blk.row0 = r0;
            blk.row1 = r1;
            blk.sigs = job.sigs_.data() + static_cast<size_t>(r0);
            blk.results = job.results_.data() + static_cast<size_t>(r0);
            on_block(blk);
        }
    };

    if (job.hashers_) {
        for (int64_t delivered = 0; delivered < job.blocks_; ++delivered) {
            int64_t b = -1;
            // Exactly `blocks` pushes occur and nobody closes the
            // queue, so pop() can only return false if the sequencer
            // logic breaks — defensive, loud, never expected to fire.
            if (!job.handoff_.pop(b))
                panic("detection hand-off queue closed early");
            probe_and_deliver(b);
        }
        job.hashers_->wait();
    } else {
        for (int64_t b = 0; b < job.blocks_; ++b) {
            job.projectBlock(b);
            probe_and_deliver(b);
        }
    }

    // Stage 3: stitch, exactly as the batch path.
    for (int64_t i = 0; i < n; ++i) {
        const McacheResult &r = job.results_[static_cast<size_t>(i)];
        res.hitmap.record(i, r);
        res.table.append(std::move(job.sigs_[static_cast<size_t>(i)]),
                         r.entryId);
    }
    return res;
}

DetectionResult
DetectionPipeline::runStreaming(const Tensor &rows,
                                const BlockConsumer &on_block,
                                RowFiller fill) const
{
    const std::unique_ptr<DetectionHashJob> job =
        beginHash(rows, std::move(fill));
    return finishStreaming(*job, on_block);
}

void
DetectionPipeline::replayStreaming(const SignatureRecord::Pass &pass,
                                   int64_t block_rows,
                                   const BlockConsumer &on_block,
                                   bool with_signatures)
{
    if (block_rows <= 0)
        panic("replay block size must be positive, got ", block_rows);
    const int64_t n = pass.rows;
    const int64_t blocks = (n + block_rows - 1) / block_rows;
    // Per-block scratch the DetectionBlock pointers alias: valid only
    // during the callback, exactly like a live pass's buffers.
    std::vector<Signature> sigs(
        with_signatures
            ? static_cast<size_t>(std::min<int64_t>(n, block_rows))
            : size_t{0});
    std::vector<McacheResult> results(static_cast<size_t>(
        std::min<int64_t>(n, block_rows)));
    for (int64_t b = 0; b < blocks; ++b) {
        const int64_t r0 = b * block_rows;
        const int64_t r1 = std::min(n, r0 + block_rows);
        if (with_signatures)
            pass.decodeSignatures(r0, r1, sigs.data());
        pass.decodeResults(r0, r1, results.data());
        if (on_block) {
            DetectionBlock blk;
            blk.index = b;
            blk.row0 = r0;
            blk.row1 = r1;
            blk.sigs = with_signatures ? sigs.data() : nullptr;
            blk.results = results.data();
            on_block(blk);
        }
    }
}

} // namespace mercury
