#include "pipeline/detection_pipeline.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/logging.hpp"

namespace mercury {

PipelineConfig
PipelineConfig::fromConfig(const AcceleratorConfig &cfg)
{
    PipelineConfig pipe;
    pipe.blockRows = cfg.pipelineBlockRows;
    pipe.shards = cfg.pipelineShards;
    pipe.threads = cfg.pipelineThreads;
    return pipe;
}

DetectionPipeline::DetectionPipeline(const RPQEngine &rpq,
                                     ShardedMCache &cache, int bits,
                                     const PipelineConfig &cfg,
                                     ThreadPool *pool)
    : rpq_(rpq), cache_(cache), bits_(bits), cfg_(cfg), pool_(pool)
{
    if (bits <= 0 || bits > rpq.maxBits())
        panic("signature bits ", bits, " outside engine range 1..",
              rpq.maxBits());
    if (cfg_.blockRows <= 0)
        panic("pipeline block size must be positive, got ",
              cfg_.blockRows);
}

DetectionResult
DetectionPipeline::run(const Tensor &rows) const
{
    if (rows.rank() != 2 || rows.dim(1) != rpq_.vectorDim())
        panic("detect expects (n, ", rpq_.vectorDim(), ") got ",
              rows.shapeStr());
    cache_.clear();
    const int64_t n = rows.dim(0);
    DetectionResult res;
    res.hitmap.reset(n);
    if (n == 0)
        return res;

    // Stage 1: blocked signature generation. Blocks write disjoint
    // ranges, so scheduling order is irrelevant; each signature (and
    // its global set index, computed here so the hash is taken once)
    // is identical to the scalar path's.
    std::vector<Signature> sigs(static_cast<size_t>(n));
    std::vector<int> set_of(static_cast<size_t>(n));
    const int64_t block = cfg_.blockRows;
    const int64_t blocks = (n + block - 1) / block;
    const auto project_block = [&](int64_t b) {
        const int64_t r0 = b * block;
        const int64_t r1 = std::min(n, r0 + block);
        rpq_.signatureBlock(rows, r0, r1, bits_,
                            sigs.data() + static_cast<size_t>(r0));
        for (int64_t i = r0; i < r1; ++i)
            set_of[static_cast<size_t>(i)] =
                cache_.setIndexOf(sigs[static_cast<size_t>(i)]);
    };

    // Stage 2: sharded MCACHE probing. Each shard consumes its own
    // rows in stream order — exactly the order the monolithic cache
    // would have seen them. The buckets are filled by one ascending
    // walk, so per-shard order is stream order by construction.
    const int shard_count = cache_.shardCount();
    std::vector<std::vector<int64_t>> shard_rows(
        static_cast<size_t>(shard_count));
    std::vector<McacheResult> results(static_cast<size_t>(n));
    const auto probe_shard = [&](int64_t s) {
        for (const int64_t i : shard_rows[static_cast<size_t>(s)]) {
            results[static_cast<size_t>(i)] = cache_.lookupOrInsertInSet(
                set_of[static_cast<size_t>(i)],
                sigs[static_cast<size_t>(i)]);
        }
    };

    if (pool_ && pool_->workers() > 0) {
        pool_->parallelFor(blocks, project_block);
    } else {
        for (int64_t b = 0; b < blocks; ++b)
            project_block(b);
    }
    for (int64_t i = 0; i < n; ++i) {
        shard_rows[static_cast<size_t>(
                       cache_.shardOfSet(set_of[static_cast<size_t>(i)]))]
            .push_back(i);
    }
    if (pool_ && pool_->workers() > 0) {
        pool_->parallelFor(shard_count, probe_shard);
    } else {
        for (int s = 0; s < shard_count; ++s)
            probe_shard(s);
    }

    // Stage 3: stitch per-row buffers back in stream order.
    for (int64_t i = 0; i < n; ++i) {
        const McacheResult &r = results[static_cast<size_t>(i)];
        res.hitmap.record(i, r);
        res.table.append(std::move(sigs[static_cast<size_t>(i)]),
                         r.entryId);
    }
    return res;
}

} // namespace mercury
