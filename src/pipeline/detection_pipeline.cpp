#include "pipeline/detection_pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "util/logging.hpp"
#include "util/spsc_queue.hpp"

namespace mercury {

PipelineConfig
PipelineConfig::fromConfig(const AcceleratorConfig &cfg)
{
    PipelineConfig pipe;
    pipe.blockRows = cfg.pipelineBlockRows;
    pipe.shards = cfg.pipelineShards;
    pipe.threads = cfg.pipelineThreads;
    pipe.overlap = cfg.overlapDetection;
    return pipe;
}

DetectionPipeline::DetectionPipeline(const RPQEngine &rpq,
                                     ShardedMCache &cache, int bits,
                                     const PipelineConfig &cfg,
                                     ThreadPool *pool)
    : rpq_(rpq), cache_(cache), bits_(bits), cfg_(cfg), pool_(pool)
{
    if (bits <= 0 || bits > rpq.maxBits())
        panic("signature bits ", bits, " outside engine range 1..",
              rpq.maxBits());
    if (cfg_.blockRows <= 0)
        panic("pipeline block size must be positive, got ",
              cfg_.blockRows);
}

DetectionResult
DetectionPipeline::run(const Tensor &rows) const
{
    if (rows.rank() != 2 || rows.dim(1) != rpq_.vectorDim())
        panic("detect expects (n, ", rpq_.vectorDim(), ") got ",
              rows.shapeStr());
    cache_.clear();
    const int64_t n = rows.dim(0);
    DetectionResult res;
    res.hitmap.reset(n);
    if (n == 0)
        return res;

    // Stage 1: blocked signature generation. Blocks write disjoint
    // ranges, so scheduling order is irrelevant; each signature (and
    // its global set index, computed here so the hash is taken once)
    // is identical to the scalar path's.
    std::vector<Signature> sigs(static_cast<size_t>(n));
    std::vector<int> set_of(static_cast<size_t>(n));
    const int64_t block = cfg_.blockRows;
    const int64_t blocks = (n + block - 1) / block;
    const auto project_block = [&](int64_t b) {
        const int64_t r0 = b * block;
        const int64_t r1 = std::min(n, r0 + block);
        rpq_.signatureBlock(rows, r0, r1, bits_,
                            sigs.data() + static_cast<size_t>(r0));
        for (int64_t i = r0; i < r1; ++i)
            set_of[static_cast<size_t>(i)] =
                cache_.setIndexOf(sigs[static_cast<size_t>(i)]);
    };

    // Stage 2: sharded MCACHE probing. Each shard consumes its own
    // rows in stream order — exactly the order the monolithic cache
    // would have seen them. The buckets are filled by one ascending
    // walk, so per-shard order is stream order by construction.
    const int shard_count = cache_.shardCount();
    std::vector<std::vector<int64_t>> shard_rows(
        static_cast<size_t>(shard_count));
    std::vector<McacheResult> results(static_cast<size_t>(n));
    const auto probe_shard = [&](int64_t s) {
        for (const int64_t i : shard_rows[static_cast<size_t>(s)]) {
            results[static_cast<size_t>(i)] = cache_.lookupOrInsertInSet(
                set_of[static_cast<size_t>(i)],
                sigs[static_cast<size_t>(i)]);
        }
    };

    if (pool_ && pool_->workers() > 0) {
        pool_->parallelFor(blocks, project_block);
    } else {
        for (int64_t b = 0; b < blocks; ++b)
            project_block(b);
    }
    for (int64_t i = 0; i < n; ++i) {
        shard_rows[static_cast<size_t>(
                       cache_.shardOfSet(set_of[static_cast<size_t>(i)]))]
            .push_back(i);
    }
    if (pool_ && pool_->workers() > 0) {
        pool_->parallelFor(shard_count, probe_shard);
    } else {
        for (int s = 0; s < shard_count; ++s)
            probe_shard(s);
    }

    // Stage 3: stitch per-row buffers back in stream order.
    for (int64_t i = 0; i < n; ++i) {
        const McacheResult &r = results[static_cast<size_t>(i)];
        res.hitmap.record(i, r);
        res.table.append(std::move(sigs[static_cast<size_t>(i)]),
                         r.entryId);
    }
    return res;
}

DetectionResult
DetectionPipeline::runStreaming(const Tensor &rows,
                                const BlockConsumer &on_block) const
{
    if (rows.rank() != 2 || rows.dim(1) != rpq_.vectorDim())
        panic("detect expects (n, ", rpq_.vectorDim(), ") got ",
              rows.shapeStr());
    cache_.clear();
    const int64_t n = rows.dim(0);
    DetectionResult res;
    res.hitmap.reset(n);
    if (n == 0)
        return res;

    std::vector<Signature> sigs(static_cast<size_t>(n));
    std::vector<int> set_of(static_cast<size_t>(n));
    std::vector<McacheResult> results(static_cast<size_t>(n));
    const int64_t block = cfg_.blockRows;
    const int64_t blocks = (n + block - 1) / block;

    // Stage 1, as in run(): hash one block, precompute its set
    // indices. Safe on any thread — it only reads the cache geometry.
    const auto project_block = [&](int64_t b) {
        const int64_t r0 = b * block;
        const int64_t r1 = std::min(n, r0 + block);
        rpq_.signatureBlock(rows, r0, r1, bits_,
                            sigs.data() + static_cast<size_t>(r0));
        for (int64_t i = r0; i < r1; ++i)
            set_of[static_cast<size_t>(i)] =
                cache_.setIndexOf(sigs[static_cast<size_t>(i)]);
    };

    // Stage 2 + hand-off: probe one hashed block in global stream
    // order (caller thread only, so every MCACHE set sees the batch
    // path's order) and deliver it to the consumer.
    const auto probe_and_deliver = [&](int64_t b) {
        const int64_t r0 = b * block;
        const int64_t r1 = std::min(n, r0 + block);
        for (int64_t i = r0; i < r1; ++i) {
            results[static_cast<size_t>(i)] = cache_.lookupOrInsertInSet(
                set_of[static_cast<size_t>(i)],
                sigs[static_cast<size_t>(i)]);
        }
        if (on_block) {
            DetectionBlock blk;
            blk.index = b;
            blk.row0 = r0;
            blk.row1 = r1;
            blk.sigs = sigs.data() + static_cast<size_t>(r0);
            blk.results = results.data() + static_cast<size_t>(r0);
            on_block(blk);
        }
    };

    if (pool_ && pool_->workers() > 0) {
        // Hashing fans out to the pool in any order; a sequencer
        // pushes finished blocks into the hand-off queue in ascending
        // block order, and the calling thread probes + delivers as
        // they arrive — overlapping stage 1 of later blocks with the
        // consumer's work on earlier ones (Fig. 8).
        //
        // Hash tasks are self-replenishing (each one grabs the next
        // unhashed block and resubmits) rather than enqueued all
        // up-front: the pool's queue is FIFO, so pre-queueing every
        // hash task would park the consumer's filter tasks behind the
        // whole hashing phase and the overlap would never materialize
        // on a saturated pool. With a window of ~workers in flight,
        // hash and filter tasks interleave.
        SpscQueue<int64_t> handoff;
        std::mutex seq_mutex;
        std::vector<char> hashed(static_cast<size_t>(blocks), 0);
        int64_t frontier = 0;
        std::atomic<int64_t> next_block{0};
        TaskGroup hashers(pool_);
        std::function<void()> hash_one = [&] {
            const int64_t b =
                next_block.fetch_add(1, std::memory_order_relaxed);
            if (b >= blocks)
                return;
            project_block(b);
            {
                std::lock_guard<std::mutex> lock(seq_mutex);
                hashed[static_cast<size_t>(b)] = 1;
                while (frontier < blocks &&
                       hashed[static_cast<size_t>(frontier)])
                    handoff.push(frontier++);
            }
            hashers.run(hash_one); // chain the next block
        };
        const int64_t seeds = std::min<int64_t>(
            blocks, static_cast<int64_t>(pool_->workers()) + 1);
        for (int64_t s = 0; s < seeds; ++s)
            hashers.run(hash_one);
        for (int64_t delivered = 0; delivered < blocks; ++delivered) {
            int64_t b = -1;
            // Exactly `blocks` pushes occur and nobody closes the
            // queue, so pop() can only return false if the sequencer
            // logic breaks — defensive, loud, never expected to fire.
            if (!handoff.pop(b))
                panic("detection hand-off queue closed early");
            probe_and_deliver(b);
        }
        hashers.wait();
    } else {
        for (int64_t b = 0; b < blocks; ++b) {
            project_block(b);
            probe_and_deliver(b);
        }
    }

    // Stage 3: stitch, exactly as the batch path.
    for (int64_t i = 0; i < n; ++i) {
        const McacheResult &r = results[static_cast<size_t>(i)];
        res.hitmap.record(i, r);
        res.table.append(std::move(sigs[static_cast<size_t>(i)]),
                         r.entryId);
    }
    return res;
}

} // namespace mercury
