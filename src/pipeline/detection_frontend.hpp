/**
 * @file
 * DetectionFrontend: the one-stop similarity front-end the reuse
 * engines, workloads, and NN hooks consume.
 *
 * A frontend owns (or wraps) the MCACHE, provisions an RPQEngine per
 * vector dimension on demand, and routes every detection pass through
 * the batched DetectionPipeline — so callers no longer assemble
 * RPQEngine + MCache + SimilarityDetector by hand, and every consumer
 * picks up the pipeline knobs (block size, shards, threads) from one
 * place. It also re-exports the MCACHE data plane (read/write/valid
 * by global entry id) that the convolution engine needs between
 * filter passes.
 *
 * With threads = 1 the frontend is the exact legacy path: results are
 * bit-identical to SimilarityDetector over a monolithic MCache, for
 * any block size and shard count.
 *
 * Concurrency contract: one thread drives a frontend's detection
 * passes (detect / detectStream / detectSampled) at a time — the
 * frontend fans work out internally. The MCACHE data plane
 * (readDataIfValid / writeData / dataValid / readData) MAY be called
 * from worker threads concurrently with a detectStream in progress
 * and with each other; the ShardedMCache serializes per shard. The
 * RPQ provisioning map and the lazy pool are owned by the driving
 * thread, so two threads must not run passes on one frontend
 * concurrently.
 */

#ifndef MERCURY_PIPELINE_DETECTION_FRONTEND_HPP
#define MERCURY_PIPELINE_DETECTION_FRONTEND_HPP

#include <cstdint>
#include <map>
#include <memory>

#include "core/rpq.hpp"
#include "core/similarity_detector.hpp"
#include "pipeline/detection_pipeline.hpp"
#include "pipeline/sharded_mcache.hpp"
#include "pipeline/signature_record.hpp"
#include "sim/config.hpp"
#include "util/thread_pool.hpp"

namespace mercury {

/** Pipeline-backed similarity detection front-end. */
class DetectionFrontend
{
  public:
    /**
     * Owning form: builds a ShardedMCache with the given organization.
     *
     * @param sets / ways / data_versions  MCACHE organization
     * @param max_bits  maximum signature length to provision per RPQ
     * @param seed      projection seed (shared by every vector dim)
     * @param pipe      pipeline knobs
     */
    DetectionFrontend(int sets, int ways, int data_versions, int max_bits,
                      uint64_t seed, PipelineConfig pipe = {});

    /**
     * View form: wrap an externally owned MCache (single shard). This
     * is how the legacy engine constructors share a caller-provided
     * cache; stage-1 blocking and threading still apply.
     */
    DetectionFrontend(MCache &cache, int max_bits, uint64_t seed,
                      PipelineConfig pipe = {});

    /**
     * Shared-cache form: run against an externally owned sharded
     * cache, which must outlive the frontend. Lets many frontends
     * (e.g. one per NN layer, each with its own projection seed)
     * share one MCACHE allocation; fine because every detection pass
     * clears the cache first.
     */
    DetectionFrontend(ShardedMCache &cache, int max_bits, uint64_t seed,
                      PipelineConfig pipe = {});

    /** MCACHE organization + pipeline knobs from an accelerator cfg. */
    DetectionFrontend(const AcceleratorConfig &cfg, uint64_t seed);

    DetectionFrontend(const DetectionFrontend &) = delete;
    DetectionFrontend &operator=(const DetectionFrontend &) = delete;

    int maxBits() const { return maxBits_; }
    uint64_t seed() const { return seed_; }
    const PipelineConfig &pipeline() const { return pipe_; }

    /**
     * Run passes on an externally owned worker pool instead of
     * creating a private one — lets many frontends (e.g. one per NN
     * layer) share a single pool. The pool must outlive the frontend;
     * passing nullptr reverts to the private pool.
     */
    void setSharedPool(ThreadPool *pool) { sharedPool_ = pool; }

    /**
     * Run one detection pass over a (num_vectors, d) matrix at the
     * given signature length. Clears the cache first; the RPQEngine
     * for dimension d is created on first use and reused afterwards.
     * When `capture` is non-null the pass is appended to the record
     * for later backward replay (§III-C2). A `fill` callback makes
     * the pass single-touch: each projection block fills its row
     * range of `rows` immediately before hashing it (see RowFiller).
     */
    DetectionResult detect(const Tensor &rows, int bits,
                           SignatureRecord *capture = nullptr,
                           const RowFiller &fill = {});

    /**
     * Streaming form of detect(): identical result, but completed
     * blocks are delivered to `on_block` in ascending block order
     * while later blocks are still hashing on the pool (see
     * DetectionPipeline::runStreaming for the ordering and lifetime
     * contract). The callback runs on the calling thread; it may
     * submit filter work to workerPool() but must not block on it.
     */
    DetectionResult detectStream(const Tensor &rows, int bits,
                                 const BlockConsumer &on_block,
                                 SignatureRecord *capture = nullptr,
                                 RowFiller fill = {});

    /**
     * Start the hashing half of a streaming pass (see
     * DetectionPipeline::beginHash): no MCACHE state is touched, so
     * this may run while filter tasks of the previous finishStream
     * are still draining — the cross-channel overlap. `rows` must
     * outlive the job; consume the job with finishStream exactly
     * once. One thread drives begin/finish, like every other pass.
     * With a `fill`, `rows` is scratch the filler populates blockwise
     * (fused extraction — the filler's writes must cover every row).
     */
    std::unique_ptr<DetectionHashJob> beginHashStream(const Tensor &rows,
                                                      int bits,
                                                      RowFiller fill = {});

    /** Probe-and-deliver half of a pass begun with beginHashStream. */
    DetectionResult finishStream(DetectionHashJob &job,
                                 const BlockConsumer &on_block,
                                 SignatureRecord *capture = nullptr);

    /**
     * Replay a recorded pass through the block hand-off with zero
     * hashing or probing cycles (§III-C2): blocks are delivered
     * ascending with the recorded hit/owner outcomes, and the MCACHE
     * is never touched — replay is safe regardless of what later
     * forward passes did to the cache. Same callback
     * threading/lifetime contract as detectStream. Signatures are
     * decoded only on request (`with_signatures`); the backward
     * filter passes consume outcomes alone, so the default skips the
     * rows x bits decode and DetectionBlock::sigs is null.
     */
    void replayStream(const SignatureRecord::Pass &pass,
                      const BlockConsumer &on_block,
                      bool with_signatures = false);

    /**
     * The pool detection passes fan out to — shared pool if set,
     * otherwise the private pool for the configured thread knob.
     * nullptr when the resolved thread count is 1 (inline execution);
     * overlapped engines fall back to the serial path in that case.
     */
    ThreadPool *workerPool() { return poolFor(); }

    /**
     * True when some pass of this frontend may run the overlapped
     * hand-off (mode Off rules it out; On/Auto need a pool). Use
     * overlapEnabledFor() for the per-pass resolved decision.
     */
    bool overlapEnabled()
    {
        return pipe_.overlap != OverlapMode::Off && poolFor() != nullptr;
    }

    /**
     * Resolved overlap decision for a pass of `rows` vectors: true
     * iff a worker pool exists and the configured mode resolves to On
     * for this pass size (Auto applies the threads x rows policy of
     * PipelineConfig::resolvedOverlapFor). Engines branch on this to
     * pick the streamed or serial path per pass.
     */
    bool overlapEnabledFor(int64_t rows)
    {
        return poolFor() != nullptr &&
               resolvedPipeFor(rows).overlap == OverlapMode::On;
    }

    /**
     * Memoized per-pass-size pipeline knobs: the auto knobs
     * (blockRows == 0 → tunedPipelineFor) are a pure function of the
     * pass size, yet every pass construction used to re-resolve them.
     * Resolution now happens once per distinct row count — at plan
     * bind (core/runtime_planner.hpp primes the memo) or on the first
     * unplanned pass of a shape — and knobResolutions() makes the
     * once-per-shape property assertable. `pipe_` is immutable after
     * construction, so memoized entries never go stale. Driving
     * thread only, like every pass entry point. (resolvedShards is
     * already resolved once, at cache construction.)
     */
    const PipelineConfig &resolvedPipeFor(int64_t rows);

    /** Knob resolutions performed (once per distinct pass size). */
    int64_t knobResolutions() const { return knobResolutions_; }

    /**
     * Statistical form for big layers: detect over at most
     * `max_sample` evenly strided rows and scale the mix back to the
     * full population. Exercises the identical pipeline path.
     */
    HitMix detectSampled(const Tensor &rows, int bits,
                         int64_t max_sample);

    /** The sharded cache behind the frontend. */
    ShardedMCache &cache() { return *cache_; }
    const ShardedMCache &cache() const { return *cache_; }

    /**
     * MCACHE data plane (global entry ids), for the reuse engines.
     * Safe from worker threads concurrently with a streaming pass
     * (per-shard locks); invalidateAllData requires quiescence.
     */
    int dataVersions() const { return cache_->dataVersions(); }
    int64_t entries() const { return cache_->entries(); }
    bool dataValid(int64_t entry_id, int version) const
    {
        return cache_->dataValid(entry_id, version);
    }
    float readData(int64_t entry_id, int version) const
    {
        return cache_->readData(entry_id, version);
    }
    /** Atomic valid-check + read (one shard lock): HIT forwarding. */
    bool readDataIfValid(int64_t entry_id, int version, float &value) const
    {
        return cache_->readDataIfValid(entry_id, version, value);
    }
    void writeData(int64_t entry_id, int version, float value)
    {
        cache_->writeData(entry_id, version, value);
    }
    void invalidateAllData() { cache_->invalidateAllData(); }

  private:
    std::unique_ptr<ShardedMCache> ownedCache_;
    ShardedMCache *cache_; // owned or external
    PipelineConfig pipe_;
    int maxBits_;
    uint64_t seed_;
    std::map<int64_t, std::unique_ptr<RPQEngine>> rpqByDim_;
    std::unique_ptr<ThreadPool> pool_; // created lazily for threads > 1
    ThreadPool *sharedPool_ = nullptr; // externally owned override
    std::map<int64_t, PipelineConfig> resolvedByRows_; // knob memo
    int64_t knobResolutions_ = 0;

    RPQEngine &rpqFor(int64_t dim);
    ThreadPool *poolFor();
};

/**
 * Owned-or-shared frontend binding for the reuse engines: wraps a
 * caller-provided MCache in a private frontend view, or references a
 * shared DetectionFrontend, validating the signature length once in
 * one place for every engine.
 */
class FrontendHandle
{
  public:
    /** Private frontend view over a caller-owned cache. */
    FrontendHandle(MCache &cache, int sig_bits, uint64_t seed,
                   const PipelineConfig &pipe, const char *engine);

    /** Bind a shared frontend; sig_bits must fit its provisioning. */
    FrontendHandle(DetectionFrontend &frontend, int sig_bits,
                   const char *engine);

    /** Signature length the owning engine detects with. */
    int signatureBits() const { return sigBits_; }

    /** Access the bound frontend (owned or shared). */
    DetectionFrontend &operator*() const { return frontend_; }
    DetectionFrontend *operator->() const { return &frontend_; }

  private:
    std::unique_ptr<DetectionFrontend> owned_;
    DetectionFrontend &frontend_;
    int sigBits_;
};

} // namespace mercury

#endif // MERCURY_PIPELINE_DETECTION_FRONTEND_HPP
